/**
 * @file
 * btrace_inspect — command-line viewer for persisted traces.
 *
 *   btrace_inspect <trace.bin> [--json FILE] [--csv FILE]
 *                  [--head N] [--gaps]
 *
 * Prints the per-core/per-category summary of a file written by
 * TracePersister, optionally exports it for Perfetto/chrome://tracing
 * or spreadsheets, shows the first N entries, and reports continuity
 * gaps in the stamp sequence.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/export.h"
#include "core/persister.h"

using namespace btrace;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: btrace_inspect <trace.bin> [--json FILE] "
                 "[--csv FILE] [--head N] [--gaps]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string input = argv[1];
    std::string json_path, csv_path;
    long head = 0;
    bool show_gaps = false;

    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (std::strcmp(argv[i], "--head") == 0 && i + 1 < argc) {
            head = std::atol(argv[++i]);
        } else if (std::strcmp(argv[i], "--gaps") == 0) {
            show_gaps = true;
        } else {
            return usage();
        }
    }

    const auto entries = TracePersister::load(input);
    Dump dump;
    dump.entries = entries;
    std::printf("%s\n", summarizeDump(dump).c_str());

    if (head > 0) {
        std::printf("first %ld entries:\n", head);
        std::printf("%12s %5s %8s %5s %6s\n", "stamp", "core", "thread",
                    "cat", "size");
        long shown = 0;
        for (const DumpEntry &e : entries) {
            if (shown++ >= head)
                break;
            std::printf("%12llu %5u %8u %5u %6u\n",
                        static_cast<unsigned long long>(e.stamp),
                        e.core, e.thread, e.category, e.size);
        }
    }

    if (show_gaps && !entries.empty()) {
        // Continuity over the persisted stamp sequence itself.
        std::vector<DumpEntry> sorted_entries = entries;
        std::sort(sorted_entries.begin(), sorted_entries.end(),
                  [](const DumpEntry &a, const DumpEntry &b) {
                      return a.stamp < b.stamp;
                  });
        uint64_t gaps = 0, missing = 0, largest = 0;
        for (std::size_t i = 1; i < sorted_entries.size(); ++i) {
            const uint64_t prev = sorted_entries[i - 1].stamp;
            const uint64_t cur = sorted_entries[i].stamp;
            if (cur > prev + 1) {
                ++gaps;
                missing += cur - prev - 1;
                largest = std::max(largest, cur - prev - 1);
            }
        }
        std::printf("stamp continuity: %llu gaps, %llu missing stamps, "
                    "largest gap %llu\n",
                    static_cast<unsigned long long>(gaps),
                    static_cast<unsigned long long>(missing),
                    static_cast<unsigned long long>(largest));
    }

    if (!json_path.empty()) {
        std::ofstream(json_path) << exportChromeJson(entries);
        std::printf("wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        std::ofstream(csv_path) << exportCsv(entries);
        std::printf("wrote %s\n", csv_path.c_str());
    }
    return 0;
}
