/**
 * @file
 * btrace_inspect — command-line viewer for persisted traces.
 *
 *   btrace_inspect <trace.bin> [--json FILE] [--csv FILE]
 *                  [--head N] [--gaps]
 *   btrace_inspect --metrics <obs.jsonl>
 *   btrace_inspect --profile <obs.jsonl>
 *   btrace_inspect --journal <flight.json>
 *   btrace_inspect --arena <ring.arena>
 *   btrace_inspect --control <ring.arena>
 *   btrace_inspect --segments <dir|segment.btrace>
 *
 * Prints the per-core/per-category summary of a file written by
 * TracePersister, optionally exports it for Perfetto/chrome://tracing
 * or spreadsheets, shows the first N entries, and reports continuity
 * gaps in the stamp sequence. With --metrics, the input is instead an
 * observability JSON-lines file (replay --obs-json / StatsSampler) and
 * the tool pretty-prints the last sample, headline rates, and every
 * health event in the stream. With --journal, the input is a flight
 * bundle (replay --flight-out / FlightRecorder) and the tool shows the
 * trigger, counters, per-slot block states, and the journal tail — the
 * post-mortem view of why the watchdog fired. With --arena, the input
 * is a persisted file-backed storage arena (BTraceConfig storage=file,
 * DESIGN.md §10): the tool validates the header, reports whether the
 * owning tracer shut down cleanly, decodes every readable block in the
 * data area, and prints the embedded flight bundle — the full
 * post-mortem of a process that died mid-trace. With --control, the
 * input is the same arena but the tool decodes the *control page*
 * (DESIGN.md §12) instead: the active runtime-tuning snapshot and the
 * bounded history of previously published ones — which sample rates,
 * first-K guarantees, and ring bounds were in force, and when.
 * With --segments, the input is a btraced segment directory (or one
 * segment file): every segment is validated through the v2 decoder
 * and summarized per file — version, provenance, drain window, torn
 * tails, declared-vs-scanned agreement — with directory totals at the
 * end. Deep analytics (rates, per-producer attribution, retention
 * quality) live in btrace_stats; this mode is the validator.
 * With --profile, the input is again an obs JSON-lines file but the
 * tool renders only the `btrace_profile_*` family (replay --profile /
 * registerProfilerMetrics, DESIGN.md §14): the per-phase cost
 * attribution table of the last sample — offline, from the stream
 * alone, no live process needed.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <map>
#include <sstream>

#include "analysis/export.h"
#include "common/storage_backend.h"
#include "control/snapshot.h"
#include "core/arena_control.h"
#include "core/persister.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "trace/event.h"
#include "trace/segment_stats.h"

using namespace btrace;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: btrace_inspect <trace.bin> [--json FILE] "
                 "[--csv FILE] [--head N] [--gaps]\n"
                 "       btrace_inspect --metrics <obs.jsonl>\n"
                 "       btrace_inspect --profile <obs.jsonl>\n"
                 "       btrace_inspect --journal <flight.json>\n"
                 "       btrace_inspect --arena <ring.arena>\n"
                 "       btrace_inspect --control <ring.arena>\n"
                 "       btrace_inspect --segments <dir|file>\n");
    return 2;
}

/** Validate and summarize a segment directory (or one segment). */
int
inspectSegments(const std::string &path)
{
    auto files = listSegmentFiles(path);
    if (!files.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     files.status().toString().c_str());
        return exitCodeFor(files.status().code());
    }
    if (files.value().empty()) {
        std::fprintf(stderr, "%s: no segment files\n", path.c_str());
        return exitCodeFor(StatusCode::NotFound);
    }

    SegmentAggregator agg;
    int bad = 0;
    for (const SegmentFile &f : files.value()) {
        auto seg = readSegment(f.path, /*strict=*/false);
        if (!seg.ok()) {
            std::printf("%-28s UNREADABLE: %s\n", f.path.c_str(),
                        seg.status().toString().c_str());
            ++bad;
            (void)agg.addFile(f);  // keep the inventory honest
            continue;
        }
        const SegmentInfo &info = seg.value();
        agg.addSegment(info, f);

        std::printf("%-28s v%u, %zu records, %llu payload bytes",
                    f.path.c_str(), info.version, info.entries.size(),
                    static_cast<unsigned long long>([&] {
                        uint64_t b = 0;
                        for (const DumpEntry &e : info.entries)
                            b += e.size;
                        return b;
                    }()));
        if (!info.entries.empty()) {
            uint64_t lo = UINT64_MAX, hi = 0;
            for (const DumpEntry &e : info.entries) {
                lo = std::min(lo, e.stamp);
                hi = std::max(hi, e.stamp);
            }
            std::printf(", stamps %llu..%llu",
                        static_cast<unsigned long long>(lo),
                        static_cast<unsigned long long>(hi));
        }
        if (info.torn)
            std::printf(", TORN tail (%llu bytes)",
                        static_cast<unsigned long long>(
                            info.tornTailBytes));
        std::printf("\n");

        if (info.version >= 2) {
            const SegmentHeaderV2 &h = info.header;
            std::printf("  writer pid %llu gen %llu, %s",
                        static_cast<unsigned long long>(h.writerPid),
                        static_cast<unsigned long long>(
                            h.attachGeneration),
                        (h.flags & SegmentHeaderV2::kCleanClose)
                            ? "clean close"
                            : "NOT closed (live or crashed)");
            if (h.firstDrainUnixNs != 0)
                std::printf(", drains %.3fs..%.3fs",
                            double(h.firstDrainUnixNs) / 1e9,
                            double(h.lastDrainUnixNs) / 1e9);
            std::printf("\n");
            if (h.recordCount != info.entries.size()) {
                std::printf("  DECLARED %llu records but scan found "
                            "%zu\n",
                            static_cast<unsigned long long>(
                                h.recordCount),
                            info.entries.size());
                ++bad;
            }
            if (h.overwrittenPositions != 0 || h.skippedBlocks != 0 ||
                h.abandonedBlocks != 0)
                std::printf("  loss: %llu overwritten, %llu skipped, "
                            "%llu abandoned\n",
                            static_cast<unsigned long long>(
                                h.overwrittenPositions),
                            static_cast<unsigned long long>(
                                h.skippedBlocks),
                            static_cast<unsigned long long>(
                                h.abandonedBlocks));
        }
    }

    const SegmentDirStats &st = agg.stats();
    std::printf("\ntotals: %llu records, %llu payload bytes across "
                "%llu segment(s)",
                static_cast<unsigned long long>(st.records),
                static_cast<unsigned long long>(st.payloadBytes),
                static_cast<unsigned long long>(st.segmentsScanned));
    if (st.rotationGaps != 0)
        std::printf("; %llu rotation gap(s), %llu aged out",
                    static_cast<unsigned long long>(st.rotationGaps),
                    static_cast<unsigned long long>(st.missingIndices));
    std::printf("\n");
    return bad == 0 ? 0 : exitCodeFor(StatusCode::Corruption);
}

/** Pretty-print an obs JSON-lines file (replay --obs-json output). */
int
inspectMetrics(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }

    std::vector<ParsedObsLine> samples;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        ParsedObsLine p = parseObsLine(line);
        if (!p.ok) {
            std::fprintf(stderr, "%s:%zu: bad obs line: %s\n",
                         path.c_str(), lineno, p.error.c_str());
            return 1;
        }
        samples.push_back(std::move(p));
    }
    if (samples.empty()) {
        std::fprintf(stderr, "%s: no samples\n", path.c_str());
        return 1;
    }

    const ParsedObsLine &last = samples.back();
    std::printf("%zu samples spanning %.2f s", samples.size(),
                last.tSec - samples.front().tSec);
    for (const auto &kv : last.labels)
        std::printf("  %s=%s", kv.first.c_str(), kv.second.c_str());
    std::printf("\n\nlast sample (seq %llu, t=%.2fs):\n",
                static_cast<unsigned long long>(last.seq), last.tSec);

    std::printf("  %-36s %14s %14s\n", "counter", "total", "per-sec");
    for (const auto &kv : last.counters) {
        const auto rate = last.rates.find(kv.first);
        if (rate != last.rates.end())
            std::printf("  %-36s %14.0f %14.1f\n", kv.first.c_str(),
                        kv.second, rate->second);
        else
            std::printf("  %-36s %14.0f %14s\n", kv.first.c_str(),
                        kv.second, "-");
    }
    std::printf("  %-36s %14s\n", "gauge", "value");
    for (const auto &kv : last.gauges)
        std::printf("  %-36s %14.4f\n", kv.first.c_str(), kv.second);
    for (const auto &h : last.histograms) {
        const auto g = [&](const char *k) {
            const auto it = h.second.find(k);
            return it == h.second.end() ? 0.0 : it->second;
        };
        std::printf("  %-36s count %.0f p50 %.0f p99 %.0f "
                    "p999 %.0f max %.0f\n",
                    h.first.c_str(), g("count"), g("p50"), g("p99"),
                    g("p999"), g("max"));
    }

    std::size_t events = 0;
    for (const ParsedObsLine &p : samples)
        events += p.healthKinds.size();
    std::printf("\nhealth events: %zu\n", events);
    for (const ParsedObsLine &p : samples)
        for (const std::string &k : p.healthKinds)
            std::printf("  [seq %llu] %s\n",
                        static_cast<unsigned long long>(p.seq),
                        k.c_str());
    return 0;
}

/**
 * Render the `btrace_profile_*` family of the last obs sample as a
 * phase-attribution table (offline twin of replay --profile).
 */
int
inspectProfile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }
    ParsedObsLine last;
    bool have = false;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        ParsedObsLine p = parseObsLine(line);
        if (!p.ok) {
            std::fprintf(stderr, "%s:%zu: bad obs line: %s\n",
                         path.c_str(), lineno, p.error.c_str());
            return 1;
        }
        last = std::move(p);
        have = true;
    }
    if (!have) {
        std::fprintf(stderr, "%s: no samples\n", path.c_str());
        return 1;
    }

    const auto hist = [&](const std::string &name,
                          const char *field) -> double {
        const auto h = last.histograms.find(name);
        if (h == last.histograms.end())
            return 0.0;
        const auto f = h->second.find(field);
        return f == h->second.end() ? 0.0 : f->second;
    };

    bool family = false;
    for (std::size_t i = 0; i < kProfilePhases; ++i)
        family =
            family ||
            last.histograms.count(
                std::string("btrace_profile_") +
                profilePhaseName(static_cast<ProfilePhase>(i)) +
                "_ns") != 0;
    if (!family) {
        std::fprintf(stderr,
                     "%s: no btrace_profile_* metrics — was the run "
                     "profiled (replay --profile)?\n",
                     path.c_str());
        return 1;
    }

    std::printf("profile of last sample (seq %llu, t=%.2fs)",
                static_cast<unsigned long long>(last.seq), last.tSec);
    for (const auto &kv : last.labels)
        std::printf("  %s=%s", kv.first.c_str(), kv.second.c_str());
    std::printf("\n\n");

    double attributed = 0.0, samples = 0.0;
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const std::string name =
            std::string("btrace_profile_") +
            profilePhaseName(static_cast<ProfilePhase>(i)) + "_ns";
        attributed += hist(name, "sum");
        samples += hist(name, "count");
    }

    std::printf("%-12s %12s %10s %8s %8s %10s %10s %7s\n", "phase",
                "count", "mean ns", "p50", "p99", "max ns", "total us",
                "share");
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const auto p = static_cast<ProfilePhase>(i);
        const std::string name =
            std::string("btrace_profile_") + profilePhaseName(p) +
            "_ns";
        const double count = hist(name, "count");
        const double sum = hist(name, "sum");
        std::printf("%-12s %12.0f %10.1f %8.0f %8.0f %10.0f %10.1f "
                    "%6.1f%%\n",
                    profilePhaseName(p), count,
                    count > 0 ? sum / count : 0.0, hist(name, "p50"),
                    hist(name, "p99"), hist(name, "max"), sum / 1e3,
                    attributed > 0 ? 100.0 * sum / attributed : 0.0);
    }

    const auto gauge = [&](const char *name) {
        const auto it = last.gauges.find(name);
        return it == last.gauges.end() ? 0.0 : it->second;
    };
    std::printf("\nattributed %.3f ms over %.0f probes", attributed / 1e6,
                samples);
    if (gauge("btrace_profile_ns_per_tick") > 0)
        std::printf(" (%.3f ns/tick, ~%.0f ns probe overhead "
                    "subtracted per sample)",
                    gauge("btrace_profile_ns_per_tick"),
                    gauge("btrace_profile_probe_overhead_ns"));
    std::printf("\n");
    return 0;
}

/** Shared pretty-printer for a parsed flight bundle. */
void
printFlightBundle(const ParsedFlightBundle &b)
{
    std::printf("flight bundle, trigger: %s\n\n", b.trigger.c_str());
    std::printf("  %-24s %14s\n", "counter", "value");
    for (const auto &kv : b.counters)
        std::printf("  %-24s %14.0f\n", kv.first.c_str(), kv.second);
    std::printf("  %-24s %14s\n", "gauge", "value");
    for (const auto &kv : b.gauges)
        std::printf("  %-24s %14.0f\n", kv.first.c_str(), kv.second);

    std::printf("\nslots (%zu):\n", b.slots.size());
    std::printf("  %4s %10s %10s %10s %10s\n", "slot", "alloc_rnd",
                "alloc_pos", "conf_rnd", "conf_pos");
    for (const auto &slot : b.slots) {
        const auto g = [&](const char *k) {
            const auto it = slot.find(k);
            return it == slot.end() ? 0.0 : it->second;
        };
        std::printf("  %4.0f %10.0f %10.0f %10.0f %10.0f\n", g("slot"),
                    g("alloc_rnd"), g("alloc_pos"), g("conf_rnd"),
                    g("conf_pos"));
    }

    // Per-kind tallies over the journal tail, then the tail itself.
    std::map<std::string, uint64_t> kinds;
    for (const ParsedFlightBundle::Event &e : b.journal)
        ++kinds[e.kind];
    std::printf("\njournal: %llu events emitted, tail of %zu\n",
                static_cast<unsigned long long>(b.journalEmitted),
                b.journal.size());
    for (const auto &kv : kinds)
        std::printf("  %-24s %6llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));
    std::printf("\n  %12s %-18s %-10s %6s %6s %10s %10s\n", "tsc",
                "kind", "reason", "core", "tid", "block", "arg");
    for (const ParsedFlightBundle::Event &e : b.journal) {
        const std::string core =
            e.core == 0xffff ? "-" : std::to_string(e.core);
        std::printf("  %12llu %-18s %-10s %6s %6u %10llu %10llu\n",
                    static_cast<unsigned long long>(e.tsc),
                    e.kind.c_str(),
                    e.reason.empty() ? "-" : e.reason.c_str(),
                    core.c_str(), e.tid,
                    static_cast<unsigned long long>(e.block),
                    static_cast<unsigned long long>(e.arg));
    }
}

/** Pretty-print a flight bundle (replay --flight-out output). */
int
inspectJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const ParsedFlightBundle b = parseFlightBundle(ss.str());
    if (!b.ok) {
        std::fprintf(stderr, "%s: not a flight bundle: %s\n",
                     path.c_str(), b.error.c_str());
        return 1;
    }
    printFlightBundle(b);
    return 0;
}

/** Post-mortem view of a persisted file-backed storage arena. */
int
inspectArena(const std::string &path)
{
    ArenaView v = ArenaView::open(path);
    if (!v.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     v.error().c_str());
        return exitCodeFor(v.status().code());
    }

    std::printf("arena %s\n", path.c_str());
    std::printf("  generation      %llu\n",
                static_cast<unsigned long long>(v.generation()));
    std::printf("  shutdown        %s\n",
                v.cleanShutdown() ? "clean" : "DIRTY (crashed or live)");
    std::printf("  block size      %llu bytes\n",
                static_cast<unsigned long long>(v.blockSize()));
    std::printf("  active blocks   %llu\n",
                static_cast<unsigned long long>(v.activeBlocks()));
    std::printf("  total blocks    %llu\n",
                static_cast<unsigned long long>(v.numBlocks()));
    std::printf("  data area       %zu bytes\n", v.dataBytes());

    if (v.blockSize() == 0) {
        std::printf("\nno tracer ever attached; nothing to decode\n");
        return 0;
    }

    // Decode what the ring still holds. Without the metadata words
    // (they died with the process) this is best-effort per block:
    // decode until the bytes stop parsing, as a human with a hex dump
    // would. Blocks whose first byte is not an entry magic are either
    // never-used or decommitted — count them as empty.
    const std::size_t nblocks =
        std::min<std::size_t>(v.numBlocks(),
                              v.dataBytes() / v.blockSize());
    std::size_t empty = 0, damaged = 0;
    uint64_t normals = 0, dummies = 0, skips = 0;
    uint64_t lo_stamp = UINT64_MAX, hi_stamp = 0;
    for (std::size_t phys = 0; phys < nblocks; ++phys) {
        EntryCursor cur(v.block(phys), v.blockSize());
        EntryView e;
        bool any = false;
        while (cur.next(e)) {
            any = true;
            switch (e.type) {
            case EntryType::Normal:
                ++normals;
                lo_stamp = std::min(lo_stamp, e.stamp);
                hi_stamp = std::max(hi_stamp, e.stamp);
                break;
            case EntryType::Dummy:
                ++dummies;
                break;
            case EntryType::Skip:
                ++skips;
                break;
            default:
                break;
            }
        }
        if (!any)
            ++empty;
        else if (cur.malformed())
            ++damaged;
    }
    std::printf("\nblocks: %zu scanned, %zu empty, %zu with torn tails\n",
                nblocks, empty, damaged);
    std::printf("entries: %llu normal, %llu dummy, %llu skip markers\n",
                static_cast<unsigned long long>(normals),
                static_cast<unsigned long long>(dummies),
                static_cast<unsigned long long>(skips));
    if (normals > 0)
        std::printf("stamps: %llu .. %llu\n",
                    static_cast<unsigned long long>(lo_stamp),
                    static_cast<unsigned long long>(hi_stamp));

    const std::string bundle = v.flightJson();
    if (bundle.empty()) {
        std::printf("\nno flight bundle stored\n");
        return 0;
    }
    const ParsedFlightBundle b = parseFlightBundle(bundle);
    if (!b.ok) {
        std::fprintf(stderr, "\nstored flight bundle is damaged: %s\n",
                     b.error.c_str());
        return 1;
    }
    std::printf("\n");
    printFlightBundle(b);
    return 0;
}

/** One control-page entry, copied out torn-free. */
struct DecodedControl
{
    uint64_t version = 0;
    uint64_t appliedNs = 0;
    uint64_t sampleRateFx = 0;
    uint64_t categoryRateFx[kControlCategorySlots] = {};
    uint64_t firstK = 0;
    uint64_t intervalNs = 0;
    uint64_t recordBudget = 0;
    uint64_t ringMinBlocks = 0;
    uint64_t ringMaxBlocks = 0;
    uint64_t flags = 0;
};

/**
 * Seqlock read of one history slot. False for never-written, torn, or
 * lapped entries (the same discipline control_plane.cc uses online).
 */
bool
readControlEntry(const ControlPageEntry &e, DecodedControl &out)
{
    for (int attempt = 0; attempt < 3; ++attempt) {
        const uint64_t s0 = e.seq.load(std::memory_order_acquire);
        if (s0 == 0 || (s0 & 1) != 0)
            continue;  // never written, or a writer is mid-flight
        DecodedControl d;
        d.version = e.version.load(std::memory_order_relaxed);
        d.appliedNs = e.appliedNs.load(std::memory_order_relaxed);
        d.sampleRateFx = e.sampleRateFx.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < kControlCategorySlots; ++i)
            d.categoryRateFx[i] =
                e.categoryRateFx[i].load(std::memory_order_relaxed);
        d.firstK = e.firstK.load(std::memory_order_relaxed);
        d.intervalNs = e.intervalNs.load(std::memory_order_relaxed);
        d.recordBudget = e.recordBudget.load(std::memory_order_relaxed);
        d.ringMinBlocks =
            e.ringMinBlocks.load(std::memory_order_relaxed);
        d.ringMaxBlocks =
            e.ringMaxBlocks.load(std::memory_order_relaxed);
        d.flags = e.flags.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (e.seq.load(std::memory_order_acquire) != s0)
            continue;
        if (s0 != 2 * d.version)
            return false;  // slot lapped by a newer publish
        out = d;
        return true;
    }
    return false;
}

/** Decode the arena's control page: active + historical snapshots. */
int
inspectControl(const std::string &path)
{
    ArenaView v = ArenaView::open(path);
    if (!v.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     v.error().c_str());
        return exitCodeFor(v.status().code());
    }
    const uint8_t *ctrl = v.ctrlRegion();
    if (ctrl == nullptr) {
        std::fprintf(stderr, "%s: arena has no control region\n",
                     path.c_str());
        return exitCodeFor(StatusCode::NotFound);
    }
    const auto *hdr = reinterpret_cast<const ControlHeader *>(ctrl);
    if (hdr->magic != ControlHeader::kMagic) {
        std::fprintf(stderr, "%s: bad control-region magic\n",
                     path.c_str());
        return exitCodeFor(StatusCode::Corruption);
    }
    if (hdr->version < 2) {
        std::fprintf(stderr,
                     "%s: control region v%u predates the control "
                     "page (need v2)\n",
                     path.c_str(), hdr->version);
        return exitCodeFor(StatusCode::Incompatible);
    }
    const ControlLayout layout =
        ControlLayout::compute(hdr->cores, hdr->activeBlocks);
    if (layout.totalBytes > v.ctrlBytes()) {
        std::fprintf(stderr, "%s: control region truncated\n",
                     path.c_str());
        return exitCodeFor(StatusCode::Corruption);
    }
    const auto *page = reinterpret_cast<const ControlPage *>(
        ctrl + layout.controlPageOff);

    const uint64_t published =
        page->publishCount.load(std::memory_order_acquire);
    std::printf("control page of %s\n", path.c_str());
    std::printf("  snapshots published  %llu\n",
                static_cast<unsigned long long>(published));
    if (published == 0) {
        std::printf("  (defaults in force; nothing was ever "
                    "published)\n");
        return 0;
    }

    std::vector<DecodedControl> history;
    for (std::size_t i = 0; i < kControlHistory; ++i) {
        DecodedControl d;
        if (readControlEntry(page->entries[i], d))
            history.push_back(d);
    }
    std::sort(history.begin(), history.end(),
              [](const DecodedControl &a, const DecodedControl &b) {
                  return a.version < b.version;
              });
    if (published > kControlHistory)
        std::printf("  (history ring holds the last %zu; versions "
                    "1..%llu aged out)\n",
                    kControlHistory,
                    static_cast<unsigned long long>(
                        published - kControlHistory));

    for (const DecodedControl &d : history) {
        const bool active = d.version == published;
        std::printf("\nsnapshot v%llu%s\n",
                    static_cast<unsigned long long>(d.version),
                    active ? "  (active)" : "");
        std::printf("  applied          %.3f s (monotonic)\n",
                    double(d.appliedNs) / 1e9);
        std::printf("  sample rate      %.6f\n",
                    controlFxToRate(d.sampleRateFx));
        for (std::size_t c = 0; c < kControlCategorySlots; ++c)
            if (d.categoryRateFx[c] != ControlPageEntry::kInheritRate)
                std::printf("  category %-2zu rate %.6f\n", c,
                            controlFxToRate(d.categoryRateFx[c]));
        if (d.firstK != 0)
            std::printf("  first-K          %llu per %.3f s\n",
                        static_cast<unsigned long long>(d.firstK),
                        double(d.intervalNs) / 1e9);
        if (d.recordBudget != 0)
            std::printf("  record budget    %llu per %.3f s\n",
                        static_cast<unsigned long long>(d.recordBudget),
                        double(d.intervalNs) / 1e9);
        if (d.ringMinBlocks != 0 || d.ringMaxBlocks != 0)
            std::printf("  ring bounds      [%llu, %llu] blocks\n",
                        static_cast<unsigned long long>(
                            d.ringMinBlocks),
                        static_cast<unsigned long long>(
                            d.ringMaxBlocks));
        std::printf("  journal %s, watchdog %s\n",
                    (d.flags & ControlPageEntry::kJournalFlag) ? "on"
                                                               : "off",
                    (d.flags & ControlPageEntry::kWatchdogFlag)
                        ? "on"
                        : "off");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "--metrics") == 0)
        return argc == 3 ? inspectMetrics(argv[2]) : usage();
    if (std::strcmp(argv[1], "--profile") == 0)
        return argc == 3 ? inspectProfile(argv[2]) : usage();
    if (std::strcmp(argv[1], "--journal") == 0)
        return argc == 3 ? inspectJournal(argv[2]) : usage();
    if (std::strcmp(argv[1], "--arena") == 0)
        return argc == 3 ? inspectArena(argv[2]) : usage();
    if (std::strcmp(argv[1], "--control") == 0)
        return argc == 3 ? inspectControl(argv[2]) : usage();
    if (std::strcmp(argv[1], "--segments") == 0)
        return argc == 3 ? inspectSegments(argv[2]) : usage();
    const std::string input = argv[1];
    std::string json_path, csv_path;
    long head = 0;
    bool show_gaps = false;

    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (std::strcmp(argv[i], "--head") == 0 && i + 1 < argc) {
            head = std::atol(argv[++i]);
        } else if (std::strcmp(argv[i], "--gaps") == 0) {
            show_gaps = true;
        } else {
            return usage();
        }
    }

    auto loaded = TracePersister::tryLoad(input);
    if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().toString().c_str());
        return exitCodeFor(loaded.status().code());
    }
    const auto entries = loaded.take();
    Dump dump;
    dump.entries = entries;
    std::printf("%s\n", summarizeDump(dump).c_str());

    if (head > 0) {
        std::printf("first %ld entries:\n", head);
        std::printf("%12s %5s %8s %5s %6s\n", "stamp", "core", "thread",
                    "cat", "size");
        long shown = 0;
        for (const DumpEntry &e : entries) {
            if (shown++ >= head)
                break;
            std::printf("%12llu %5u %8u %5u %6u\n",
                        static_cast<unsigned long long>(e.stamp),
                        e.core, e.thread, e.category, e.size);
        }
    }

    if (show_gaps && !entries.empty()) {
        // Continuity over the persisted stamp sequence itself.
        std::vector<DumpEntry> sorted_entries = entries;
        std::sort(sorted_entries.begin(), sorted_entries.end(),
                  [](const DumpEntry &a, const DumpEntry &b) {
                      return a.stamp < b.stamp;
                  });
        uint64_t gaps = 0, missing = 0, largest = 0;
        for (std::size_t i = 1; i < sorted_entries.size(); ++i) {
            const uint64_t prev = sorted_entries[i - 1].stamp;
            const uint64_t cur = sorted_entries[i].stamp;
            if (cur > prev + 1) {
                ++gaps;
                missing += cur - prev - 1;
                largest = std::max(largest, cur - prev - 1);
            }
        }
        std::printf("stamp continuity: %llu gaps, %llu missing stamps, "
                    "largest gap %llu\n",
                    static_cast<unsigned long long>(gaps),
                    static_cast<unsigned long long>(missing),
                    static_cast<unsigned long long>(largest));
    }

    if (!json_path.empty()) {
        std::ofstream(json_path) << exportChromeJson(entries);
        std::printf("wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        std::ofstream(csv_path) << exportCsv(entries);
        std::printf("wrote %s\n", csv_path.c_str());
    }
    return 0;
}
