/**
 * @file
 * replay — run one deterministic replay with live observability.
 *
 *   replay [--tracer=btrace|bbq|ftrace|lttng|vtrace]
 *          [--workload=NAME] [--duration=SEC] [--scale=F] [--seed=N]
 *          [--lease=N] [--obs-interval=SEC] [--obs-json=PATH]
 *          [--obs-prom=PATH] [--journal-out=PATH] [--flight-out=PATH]
 *          [--backend=private|shm|file] [--arena=PATH]
 *          [--profile] [--list-workloads]
 *
 * The virtual-time replay engine (§5) drives the chosen tracer with
 * the chosen workload while a StatsSampler watches the same instance
 * from a real background thread: counter rates, derived gauges, the
 * sampled write-latency histogram, and the health watchdog. Samples
 * stream to --obs-json as JSON-lines while the run is in flight; a
 * final Prometheus text dump of the full registry goes to --obs-prom.
 * Baseline tracers export through the same Tracer-level observer hook,
 * so their latency histograms appear too — only the BTrace-specific
 * counters and gauges are absent.
 *
 * BTrace runs additionally carry the lifecycle journal: --journal-out
 * writes a Chrome trace-event JSON (drag into ui.perfetto.dev) that
 * combines the dumped entries with the tracer's own block/lease/resize
 * transitions, and --flight-out arms the flight recorder — the first
 * watchdog trip dumps a post-mortem bundle there (end of run if the
 * watchdog never fired). Both flags warn and do nothing for baselines.
 *
 * --backend selects the BTrace storage backend (DESIGN.md §10);
 * --backend=file with --arena=PATH leaves a persistent ring behind
 * that `btrace_inspect --arena PATH` decodes after the run.
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/continuity.h"
#include "common/status.h"
#include "control/control_file.h"
#include "analysis/export.h"
#include "obs/btrace_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "obs/sampler.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

namespace {

struct Flags
{
    std::string tracer = "btrace";
    std::string workload = "eShop-1";
    double duration = 2.0;
    double scale = 1.0;
    uint64_t seed = 1;
    uint32_t leaseEntries = 0;
    double obsInterval = 0.0;  //!< 0 = single final sample
    std::string obsJson;
    std::string obsProm;
    std::string journalOut;    //!< Chrome trace-event JSON (Perfetto)
    std::string flightOut;     //!< flight-recorder bundle path
    std::string backend;       //!< empty = build default
    std::string arena;         //!< file backend: persistent ring path
    std::string controlFile;   //!< initial control config (§12)
    bool profile = false;      //!< arm the phase-cost profiler (§14)
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: replay [--tracer=btrace|bbq|ftrace|lttng|vtrace]\n"
        "              [--workload=NAME] [--duration=SEC] [--scale=F]\n"
        "              [--seed=N] [--lease=N] [--obs-interval=SEC]\n"
        "              [--obs-json=PATH] [--obs-prom=PATH]\n"
        "              [--journal-out=PATH] [--flight-out=PATH]\n"
        "              [--backend=private|shm|file] [--arena=PATH]\n"
        "              [--control-file=PATH] [--profile]\n"
        "              [--list-workloads]\n");
    return exitCodeFor(StatusCode::InvalidArgument);
}

TracerKind
kindByName(const std::string &name)
{
    for (const TracerKind k : allTracerKinds()) {
        std::string n = tracerKindName(k);
        for (char &c : n) c = char(std::tolower(c));
        if (n == name) return k;
    }
    std::fprintf(stderr, "unknown tracer '%s'\n", name.c_str());
    std::exit(exitCodeFor(StatusCode::InvalidArgument));
}

} // namespace

int
main(int argc, char **argv)
{
    Flags f;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *name) -> const char * {
            const std::size_t len = std::strlen(name);
            if (std::strncmp(a, name, len) == 0 && a[len] == '=')
                return a + len + 1;
            return nullptr;
        };
        if (const char *v1 = val("--tracer")) {
            f.tracer = v1;
        } else if (const char *v2 = val("--workload")) {
            f.workload = v2;
        } else if (const char *v3 = val("--duration")) {
            f.duration = std::atof(v3);
        } else if (const char *v4 = val("--scale")) {
            f.scale = std::atof(v4);
        } else if (const char *v5 = val("--seed")) {
            f.seed = std::strtoull(v5, nullptr, 10);
        } else if (const char *v6 = val("--lease")) {
            f.leaseEntries = uint32_t(std::atoi(v6));
        } else if (const char *v7 = val("--obs-interval")) {
            f.obsInterval = std::atof(v7);
        } else if (const char *v8 = val("--obs-json")) {
            f.obsJson = v8;
        } else if (const char *v9 = val("--obs-prom")) {
            f.obsProm = v9;
        } else if (const char *v10 = val("--journal-out")) {
            f.journalOut = v10;
        } else if (const char *v11 = val("--flight-out")) {
            f.flightOut = v11;
        } else if (const char *v12 = val("--backend")) {
            f.backend = v12;
        } else if (const char *v13 = val("--arena")) {
            f.arena = v13;
        } else if (const char *v14 = val("--control-file")) {
            f.controlFile = v14;
        } else if (std::strcmp(a, "--profile") == 0) {
            f.profile = true;
        } else if (std::strcmp(a, "--list-workloads") == 0) {
            for (const Workload &w : workloadCatalog())
                std::printf("%s\n", w.name.c_str());
            return 0;
        } else {
            return usage();
        }
    }

    const TracerKind kind = kindByName(f.tracer);
    const Workload &wl = workloadByName(f.workload);
    TracerFactoryOptions topt;
    StorageKind storage = StorageKind::Private;
    if (!f.backend.empty()) {
        if (!parseStorageKind(f.backend, storage)) {
            std::fprintf(stderr, "unknown backend '%s'\n",
                         f.backend.c_str());
            return exitCodeFor(StatusCode::InvalidArgument);
        }
        if (kind != TracerKind::BTrace) {
            std::fprintf(stderr,
                         "warning: --backend/--arena need the btrace "
                         "tracer; ignored for '%s'\n",
                         f.tracer.c_str());
        } else {
            topt.storage = &storage;
            topt.arenaPath = f.arena;
        }
    } else if (!f.arena.empty()) {
        std::fprintf(stderr, "--arena requires --backend=file\n");
        return exitCodeFor(StatusCode::InvalidArgument);
    }
    auto tracer = makeTracer(kind, topt);

    // Initial control config (DESIGN.md §12): parse before anything
    // records; parse/validate failures exit with the mapped code so
    // scripts can branch on 2 (invalid) vs 3 (missing file).
    ControlConfig control;
    if (!f.controlFile.empty()) {
        auto cc = loadControlFile(f.controlFile);
        if (!cc.ok()) {
            std::fprintf(stderr, "replay: %s\n",
                         cc.status().toString().c_str());
            return exitCodeFor(cc.status().code());
        }
        control = cc.value();
    }

    // The observer hook is Tracer-level: every tracer gets sampled
    // write latency. The counter/gauge registry is BTrace-specific.
    TracerObserver observer;
    tracer->attachObserver(&observer);

    // Phase-cost profiler (DESIGN.md §14): armed exactly like the
    // journal — one pointer store; disarmed sites pay a relaxed load.
    // Hardware counters ride along when perf_event_open is permitted;
    // otherwise the run degrades to TSC-only with a warning.
    std::unique_ptr<CostProfiler> profiler;
    ThreadPerfCounters perfCtrs;
    if (f.profile) {
        profiler = std::make_unique<CostProfiler>();
        tracer->attachProfiler(profiler.get());
        if (!perfCtrs.open())
            std::fprintf(stderr,
                         "replay: hardware counters off — %s; "
                         "TSC-only profile\n",
                         perfCtrs.error().c_str());
    }

    std::unique_ptr<BTraceObs> btObs;
    std::unique_ptr<EventJournal> journal;
    std::unique_ptr<FlightRecorder> flight;
    MetricsRegistry baselineReg;
    const MetricsRegistry *reg = &baselineReg;
    BTrace *btp = dynamic_cast<BTrace *>(tracer.get());
    if (btp != nullptr) {
        if (!f.controlFile.empty()) {
            if (Status st = btp->applyControl(control); !st.ok()) {
                // Geometry-dependent rules (ring bounds vs A) are
                // only checkable here, after the tracer exists.
                std::fprintf(stderr, "replay: %s\n",
                             st.toString().c_str());
                return exitCodeFor(st.code());
            }
            std::fprintf(stderr, "replay: control v%llu from %s\n",
                         static_cast<unsigned long long>(
                             btp->controlPlane().version()),
                         f.controlFile.c_str());
        }
        btObs = std::make_unique<BTraceObs>(*btp, &observer);
        reg = &btObs->registry();
        // The journal toggle is honored at tool level: an operator
        // turning `journal = off` in the control file wins over the
        // output flags.
        if ((!f.journalOut.empty() || !f.flightOut.empty()) &&
            control.journalEnabled) {
            journal = std::make_unique<EventJournal>();
            btp->attachJournal(journal.get());
        }
        if (!f.flightOut.empty()) {
            FlightRecorderOptions fo;
            fo.path = f.flightOut;
            flight = std::make_unique<FlightRecorder>(*btp, journal.get(),
                                                      fo);
        }
    } else {
        if (!f.journalOut.empty() || !f.flightOut.empty())
            std::fprintf(stderr,
                         "warning: --journal-out/--flight-out need the "
                         "btrace tracer; ignored for '%s'\n",
                         f.tracer.c_str());
        if (!f.controlFile.empty())
            std::fprintf(stderr,
                         "warning: --control-file needs the btrace "
                         "tracer; ignored for '%s'\n",
                         f.tracer.c_str());
        baselineReg.addCounter(
            "btrace_obs_samples_total",
            "Latency samples recorded by the observer",
            [&observer]() { return double(observer.samples()); });
        baselineReg.addHistogram("btrace_record_latency_ns",
                                 "Sampled record() write latency (ns)",
                                 &observer.recordNs);
    }

    if (profiler)
        registerProfilerMetrics(btObs ? btObs->registry() : baselineReg,
                                *profiler);

    SamplerOptions so;
    so.intervalSec = f.obsInterval > 0 ? f.obsInterval : 1.0;
    so.jsonPath = f.obsJson;
    so.labels = {{"tracer", tracerKindName(kind)},
                 {"workload", wl.name}};
    StatsSampler sampler(*reg, so);
    // `watchdog = off` in the control file disables the health
    // watchdog (and with it the flight recorder's trip hook).
    if (btObs && control.watchdogEnabled)
        sampler.setHealthSource(
            [&btObs]() { return btObs->healthInput(); });
    if (journal)
        sampler.setJournal(journal.get());
    if (flight) {
        // First watchdog trip captures the post-mortem bundle; later
        // trips overwrite it (the freshest state is the useful one).
        // The trigger is formatted into a stack buffer: the trip path
        // is allocation-free end to end, so it still works when the
        // trip is caused by memory exhaustion.
        sampler.setHealthEventHook([&flight](const HealthEvent &e) {
            char trigger[64];
            std::snprintf(trigger, sizeof(trigger), "watchdog:%s",
                          healthKindName(e.kind));
            flight->dump(trigger);
        });
    }
    if (f.obsInterval > 0)
        sampler.start();

    ReplayOptions opt;
    opt.mode = ReplayMode::ThreadLevel;
    opt.durationSec = f.duration;
    opt.rateScale = f.scale;
    opt.seed = f.seed;
    opt.leaseEntries = f.leaseEntries;
    const ReplayResult res = replay(*tracer, wl, opt);

    if (f.obsInterval > 0)
        sampler.stop();  // takes the final sample
    else
        sampler.sampleOnce();

    const ContinuityReport rep = analyzeContinuity(res);
    std::printf("%s on %s: %.2f virtual s, %zu produced, %llu drops, "
                "latest fragment %.2f MB, loss %.2f%%\n",
                res.tracerName.c_str(), res.workloadName.c_str(),
                f.duration, res.produced.size(),
                static_cast<unsigned long long>(res.drops),
                rep.latestFragmentBytes / (1024.0 * 1024.0),
                100.0 * rep.lossRate);
    std::printf("obs: %llu samples",
                static_cast<unsigned long long>(sampler.samplesTaken()));
    if (!f.obsJson.empty())
        std::printf(", json-lines -> %s", f.obsJson.c_str());
    std::printf("\n");

    const auto health = sampler.healthHistory();
    for (const HealthEvent &e : health)
        std::printf("health[%s] %s\n", healthKindName(e.kind),
                    e.detail.c_str());

    if (!f.obsProm.empty()) {
        std::ofstream out(f.obsProm);
        out << renderPrometheus(reg->collect(), so.labels);
        std::printf("prometheus text -> %s\n", f.obsProm.c_str());
    }

    if (journal && !f.journalOut.empty()) {
        TraceEventExportOptions jopt;
        jopt.activeBlocks = btp->config().activeBlocks;
        const std::vector<JournalRecord> tail = journal->snapshot();
        std::ofstream out(f.journalOut);
        out << exportChromeJsonWithJournal(res.dump.entries, tail,
                                           ExportOptions{}, jopt);
        std::printf("journal trace (tail %zu of %llu emitted) -> %s\n",
                    tail.size(),
                    static_cast<unsigned long long>(journal->emitted()),
                    f.journalOut.c_str());
    }
    if (flight) {
        // The watchdog never fired: still leave a bundle of the final
        // state so the artifact always exists.
        if (flight->dumps() == 0)
            flight->dump("end_of_run");
        std::printf("flight bundle -> %s\n", f.flightOut.c_str());
    }
    if (journal)
        btp->attachJournal(nullptr);
    if (profiler) {
        tracer->attachProfiler(nullptr);
        std::printf("%s", profiler->snapshot().table().c_str());
        if (perfCtrs.ok()) {
            const PerfSample ps = perfCtrs.read();
            std::printf("perf: %llu cycles, %llu cache misses, "
                        "%llu branch misses\n",
                        static_cast<unsigned long long>(ps.cycles),
                        static_cast<unsigned long long>(
                            ps.cacheMisses),
                        static_cast<unsigned long long>(
                            ps.branchMisses));
        }
    }

    // A run that produced nothing or sampled nothing is broken.
    if (res.produced.empty()) {
        std::fprintf(stderr, "FAIL: replay produced no events\n");
        return 1;
    }
    if (sampler.samplesTaken() == 0) {
        std::fprintf(stderr, "FAIL: sampler took no samples\n");
        return 1;
    }
    return 0;
}
