/**
 * @file
 * btrace_producer — scriptable producer for multi-process smoke tests.
 *
 *   btrace_producer --arena PATH --events N [--payload N] [--core C]
 *                   [--lease N] [--expect-generation N] [--hold-lease]
 *                   [--category C] [--wallclock-stamps]
 *
 * Attaches to a shared file arena and writes N events through batched
 * leases, then detaches cleanly — unless --hold-lease is given, in
 * which case it writes half a lease, prints "HOLDING\n" on stdout and
 * sleeps forever *without closing the lease*: the SIGKILL target of
 * the crash-reclamation smoke test (scripts/multiproc_smoke.sh). The
 * daemon's sweep must then prove this process dead and reclaim the
 * block its lease pinned.
 *
 * Exit codes follow exitCodeFor() like btraced and btrace_inspect.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/session.h"
#include "trace/trace_file.h"

using namespace btrace;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: btrace_producer --arena PATH --events N\n"
                 "                       [--payload N] [--core C] "
                 "[--lease N]\n"
                 "                       [--expect-generation N] "
                 "[--hold-lease]\n"
                 "                       [--category C] "
                 "[--wallclock-stamps]\n"
                 "--wallclock-stamps records CLOCK_REALTIME ns instead "
                 "of a logical\n"
                 "counter, so btraced's drain-lag and btrace_stats's "
                 "throughput buckets\n"
                 "see real time.\n");
    return exitCodeFor(StatusCode::InvalidArgument);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string arena;
    uint64_t events = 0;
    uint32_t payload = 16;
    uint16_t core = 0;
    uint32_t leaseN = 32;
    uint64_t expectGeneration = 0;
    bool holdLease = false;
    uint16_t category = 0;
    bool wallclockStamps = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (std::strcmp(a, "--arena") == 0 && (v = next())) {
            arena = v;
        } else if (std::strcmp(a, "--events") == 0 && (v = next())) {
            events = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--payload") == 0 && (v = next())) {
            payload = uint32_t(std::atoi(v));
        } else if (std::strcmp(a, "--core") == 0 && (v = next())) {
            core = uint16_t(std::atoi(v));
        } else if (std::strcmp(a, "--lease") == 0 && (v = next())) {
            leaseN = uint32_t(std::atoi(v));
        } else if (std::strcmp(a, "--expect-generation") == 0 &&
                   (v = next())) {
            expectGeneration = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--hold-lease") == 0) {
            holdLease = true;
        } else if (std::strcmp(a, "--category") == 0 && (v = next())) {
            category = uint16_t(std::atoi(v));
        } else if (std::strcmp(a, "--wallclock-stamps") == 0) {
            wallclockStamps = true;
        } else {
            return usage();
        }
    }
    if (arena.empty() || (events == 0 && !holdLease))
        return usage();

    AttachOptions ao;
    ao.expectGeneration = expectGeneration;
    auto sess = Session::attachFile(arena, ao);
    if (!sess.ok()) {
        std::fprintf(stderr, "btrace_producer: %s\n",
                     sess.status().toString().c_str());
        return exitCodeFor(sess.status().code());
    }
    Session s = sess.take();
    const uint32_t tid = uint32_t(::getpid());

    uint64_t written = 0, suppressed = 0, attempted = 0, stamp = 1;
    while (attempted < events) {
        // Lease-renewal cadence is the control poll point (§12): one
        // relaxed load when nothing changed, adoption of whatever an
        // operator published to the arena page otherwise.
        (void)s.pollControl();
        Lease l = s->lease(core, tid, payload, leaseN);
        if (!l.ok()) {
            // Arena saturated: yield to the consumer and retry.
            ::usleep(1000);
            continue;
        }
        while (attempted < events) {
            const uint64_t st =
                wallclockStamps ? wallClockNs() : stamp++;
            ++attempted;
            if (!s->shouldRecord(category, tid, st)) {
                ++suppressed;  // shed by policy, not a drop
                continue;
            }
            WriteTicket t = l.allocate(payload);
            if (!t.ok()) {
                // Span exhausted before this event: renew the lease.
                --attempted;
                if (!wallclockStamps)
                    --stamp;
                break;
            }
            writeNormal(t.dst, st, core, tid, category, payload);
            l.confirm(t);
            ++written;
        }
        l.close();
    }
    if (suppressed != 0)
        std::fprintf(stderr,
                     "btrace_producer: sampled %llu suppressed %llu "
                     "(control v%llu)\n",
                     static_cast<unsigned long long>(written),
                     static_cast<unsigned long long>(suppressed),
                     static_cast<unsigned long long>(
                         s->controlPlane().version()));

    if (holdLease) {
        // Take a lease, use part of it, and never close it. The
        // parent reads "HOLDING" then SIGKILLs us; only the sweeper
        // can complete the block after that.
        Lease l = s->lease(core, tid, payload, leaseN);
        while (!l.ok()) {
            ::usleep(1000);
            l = s->lease(core, tid, payload, leaseN);
        }
        for (int k = 0; k < 3; ++k) {
            WriteTicket t = l.allocate(payload);
            if (!t.ok())
                break;
            writeNormal(t.dst,
                        wallclockStamps ? wallClockNs() : stamp++,
                        core, tid, category, payload);
            l.confirm(t);
        }
        std::printf("HOLDING\n");
        std::fflush(stdout);
        for (;;)
            ::pause();
    }

    std::printf("%llu\n", static_cast<unsigned long long>(written));
    return 0;
}
