/**
 * @file
 * btraced — the out-of-process consumer daemon (DESIGN.md §11).
 *
 *   btraced --arena PATH [--out DIR] [options]     attach and drain
 *   btraced --arena PATH --create [geometry]       create, then drain
 *   btraced --fd N [--out DIR] [options]           inherited arena fd
 *
 * Attaches to a shared file arena (or creates one for producers to
 * join), then drains it continuously into rotating bounded segment
 * files (trace_file.h format — btrace_inspect reads them directly) and
 * sweeps leases of producers that died, until the duration elapses or
 * SIGINT/SIGTERM arrives. Exit codes follow exitCodeFor(): scripts can
 * branch on 3 (no such arena), 5 (corrupt), 6 (incompatible
 * generation), 7 (arena busy / registry full), ...
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "trace/trace_file.h"

#include "control/control_file.h"
#include "control/governor.h"
#include "daemon/daemon.h"
#include "obs/export.h"

using namespace btrace;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_hup = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
onHup(int)
{
    g_hup = 1;
}

/**
 * Rewrite the Prometheus snapshot atomically: write a sibling tmp
 * file, then rename over the target so a scraper never reads a torn
 * half. Called every drain interval and at exit, so even a SIGKILLed
 * daemon leaves a snapshot at most one interval stale.
 */
bool
writeMetricsFile(const MetricsRegistry &registry,
                 const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            return false;
        out << renderPrometheus(registry.collect(),
                                {{"daemon", "btraced"}});
        if (!out.flush())
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btraced --arena PATH [--create] [--fd N]\n"
        "               [--out DIR] [--segment-bytes N] "
        "[--max-segments N]\n"
        "               [--interval-ms N] [--sweep-every N]\n"
        "               [--duration SEC] [--close-active 0|1]\n"
        "               [--expect-generation N] [--metrics-out PATH]\n"
        "               [--control-file PATH] [--governor 0|1]\n"
        "               [--governor-interval-ms N]\n"
        "create-mode geometry: [--blocks N] [--active N]\n"
        "               [--block-bytes N] [--cores N]\n"
        "The control file (key = value; see control_file.h) is read at\n"
        "startup and re-applied on SIGHUP or when its mtime changes.\n");
    return exitCodeFor(StatusCode::InvalidArgument);
}

struct Flags
{
    std::string arena;
    int fd = -1;
    bool create = false;
    std::string outDir = "btraced-out";
    std::string metricsOut;
    std::string controlFile;
    bool governor = true;
    double governorIntervalSec = 1.0;
    DaemonOptions daemon;
    double durationSec = 0.0;  // 0 = until signal
    uint64_t expectGeneration = 0;
    // create-mode geometry
    std::size_t blocks = 3072, active = 192, blockBytes = 4096;
    unsigned cores = 12;
};

} // namespace

int
main(int argc, char **argv)
{
    Flags f;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (std::strcmp(a, "--arena") == 0 && (v = next())) {
            f.arena = v;
        } else if (std::strcmp(a, "--fd") == 0 && (v = next())) {
            f.fd = std::atoi(v);
        } else if (std::strcmp(a, "--create") == 0) {
            f.create = true;
        } else if (std::strcmp(a, "--out") == 0 && (v = next())) {
            f.outDir = v;
        } else if (std::strcmp(a, "--segment-bytes") == 0 &&
                   (v = next())) {
            f.daemon.segmentBytes = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--max-segments") == 0 &&
                   (v = next())) {
            f.daemon.maxSegments = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--interval-ms") == 0 &&
                   (v = next())) {
            f.daemon.drainIntervalSec = std::atof(v) / 1000.0;
        } else if (std::strcmp(a, "--sweep-every") == 0 &&
                   (v = next())) {
            f.daemon.sweepEveryNDrains = unsigned(std::atoi(v));
        } else if (std::strcmp(a, "--duration") == 0 && (v = next())) {
            f.durationSec = std::atof(v);
        } else if (std::strcmp(a, "--close-active") == 0 &&
                   (v = next())) {
            f.daemon.closeActive = std::atoi(v) != 0;
        } else if (std::strcmp(a, "--expect-generation") == 0 &&
                   (v = next())) {
            f.expectGeneration = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--metrics-out") == 0 &&
                   (v = next())) {
            f.metricsOut = v;
        } else if (std::strcmp(a, "--control-file") == 0 &&
                   (v = next())) {
            f.controlFile = v;
        } else if (std::strcmp(a, "--governor") == 0 && (v = next())) {
            f.governor = std::atoi(v) != 0;
        } else if (std::strcmp(a, "--governor-interval-ms") == 0 &&
                   (v = next())) {
            f.governorIntervalSec = std::atof(v) / 1000.0;
        } else if (std::strcmp(a, "--blocks") == 0 && (v = next())) {
            f.blocks = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--active") == 0 && (v = next())) {
            f.active = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--block-bytes") == 0 &&
                   (v = next())) {
            f.blockBytes = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--cores") == 0 && (v = next())) {
            f.cores = unsigned(std::atoi(v));
        } else {
            return usage();
        }
    }
    if (f.arena.empty() && f.fd < 0)
        return usage();
    f.daemon.outDir = f.outDir;

    // Rendezvous: create the arena, or join one that exists.
    Expected<Session> sess = Expected<Session>(Session());
    if (f.create) {
        BTraceConfig cfg;
        cfg.storage = StorageKind::File;
        cfg.arenaPath = f.arena;
        cfg.numBlocks = f.blocks;
        cfg.activeBlocks = f.active;
        cfg.blockSize = f.blockBytes;
        cfg.cores = f.cores;
        sess = Session::create(cfg);
    } else {
        AttachOptions ao;
        ao.expectGeneration = f.expectGeneration;
        sess = f.fd >= 0 ? Session::attachFd(f.fd, ao)
                         : Session::attachFile(f.arena, ao);
    }
    if (!sess.ok()) {
        std::fprintf(stderr, "btraced: %s\n",
                     sess.status().toString().c_str());
        return exitCodeFor(sess.status().code());
    }
    std::fprintf(stderr,
                 "btraced: %s arena (generation %llu), draining to %s\n",
                 sess.value().owner() ? "created" : "attached",
                 static_cast<unsigned long long>(
                     sess.value().generation()),
                 f.outDir.c_str());

    auto daemon = ConsumerDaemon::make(sess.take(), f.daemon);
    if (!daemon.ok()) {
        std::fprintf(stderr, "btraced: %s\n",
                     daemon.status().toString().c_str());
        return exitCodeFor(daemon.status().code());
    }
    ConsumerDaemon &d = *daemon.value();

    // Control plane (DESIGN.md §12): the control file is the
    // operator's knob. Applied at startup, then re-applied on SIGHUP
    // or whenever its mtime moves; applyControl on this attachment
    // publishes to the arena control page, so live producers in other
    // processes adopt it on their next poll.
    const auto applyControlFile = [&]() -> Status {
        auto cc = loadControlFile(f.controlFile);
        if (!cc.ok())
            return cc.status();
        return d.session().applyControl(cc.value());
    };
    if (!f.controlFile.empty()) {
        if (Status st = applyControlFile(); !st.ok()) {
            std::fprintf(stderr, "btraced: %s\n",
                         st.toString().c_str());
            return exitCodeFor(st.code());
        }
        std::fprintf(
            stderr, "btraced: control v%llu from %s\n",
            static_cast<unsigned long long>(
                d.session()->controlPlane().version()),
            f.controlFile.c_str());
    }
    ControlFileWatcher watcher(f.controlFile);

    MetricsRegistry registry;
    d.registerMetrics(registry);
    Governor governor;
    governor.registerMetrics(registry);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGHUP, onHup);

    d.start();
    const auto t0 = std::chrono::steady_clock::now();
    auto lastGovern = t0;
    auto lastMetrics = t0;
    const double metricsIntervalSec =
        std::max(f.daemon.drainIntervalSec, 0.05);
    DaemonStats prev = d.stats();
    while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

        // Keep the on-disk metrics snapshot fresh while running, not
        // only at clean exit: a crashed or SIGKILLed daemon must still
        // leave a recent snapshot behind for the post-mortem.
        if (!f.metricsOut.empty()) {
            const auto nowM = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(nowM - lastMetrics)
                    .count() >= metricsIntervalSec) {
                lastMetrics = nowM;
                if (!writeMetricsFile(registry, f.metricsOut))
                    std::fprintf(stderr,
                                 "btraced: cannot write %s\n",
                                 f.metricsOut.c_str());
            }
        }

        // Reconfiguration sources: SIGHUP / control-file rewrite, and
        // versions other attachments published to the arena page.
        if (!f.controlFile.empty() && (g_hup != 0 || watcher.changed())) {
            g_hup = 0;
            if (Status st = applyControlFile(); !st.ok())
                std::fprintf(stderr, "btraced: control reload: %s\n",
                             st.toString().c_str());
            else
                std::fprintf(
                    stderr, "btraced: control v%llu applied\n",
                    static_cast<unsigned long long>(
                        d.session()->controlPlane().version()));
        }
        (void)d.session().pollControl();

        const auto now = std::chrono::steady_clock::now();
        if (f.governor &&
            std::chrono::duration<double>(now - lastGovern).count() >=
                f.governorIntervalSec) {
            lastGovern = now;
            const DaemonStats cur = d.stats();
            BTrace &bt = d.session().tracer();
            const ControlConfig cc = bt.controlPlane().current();
            GovernorInput in;
            in.overwrittenDelta =
                cur.overwrittenPositions - prev.overwrittenPositions;
            in.recordedDelta = cur.entries - prev.entries;
            const double drained_bytes =
                double(cur.entries - prev.entries) *
                double(sizeof(TraceDiskRecord));
            const double capacity =
                double(bt.numBlocks()) * double(bt.config().blockSize);
            in.occupancy =
                capacity > 0.0
                    ? std::min(1.0, drained_bytes / capacity)
                    : 0.0;
            in.numBlocks = bt.numBlocks();
            in.activeBlocks = bt.config().activeBlocks;
            in.ringMinBlocks = cc.ringMinBlocks;
            in.ringMaxBlocks = cc.ringMaxBlocks;
            in.sampleRate = cc.sampleRate;
            governor.actuate(bt, governor.evaluate(in));
            prev = cur;
        }

        if (f.durationSec > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                    .count() >= f.durationSec)
            break;
    }
    d.stop();

    const DaemonStats st = d.stats();
    std::fprintf(stderr,
                 "btraced: %llu drains, %llu entries, %llu segments, "
                 "%llu sweeps, %llu leases reclaimed (%llu bytes), "
                 "%llu attachments cleared, %llu positions lost, "
                 "%llu blocks skipped\n",
                 static_cast<unsigned long long>(st.drains),
                 static_cast<unsigned long long>(st.entries),
                 static_cast<unsigned long long>(st.segmentsOpened),
                 static_cast<unsigned long long>(st.sweeps),
                 static_cast<unsigned long long>(st.reclaimedLeases),
                 static_cast<unsigned long long>(st.reclaimedBytes),
                 static_cast<unsigned long long>(st.clearedAttachments),
                 static_cast<unsigned long long>(
                     st.overwrittenPositions),
                 static_cast<unsigned long long>(st.skippedBlocks));

    // Final rewrite after the stop-drain so the snapshot carries the
    // complete totals (this also covers SIGINT/SIGTERM exits — the
    // loop above breaks on the signal and falls through to here).
    if (!f.metricsOut.empty() &&
        !writeMetricsFile(registry, f.metricsOut)) {
        std::fprintf(stderr, "btraced: cannot write %s\n",
                     f.metricsOut.c_str());
        return exitCodeFor(StatusCode::IoError);
    }
    return 0;
}
