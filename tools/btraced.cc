/**
 * @file
 * btraced — the out-of-process consumer daemon (DESIGN.md §11).
 *
 *   btraced --arena PATH [--out DIR] [options]     attach and drain
 *   btraced --arena PATH --create [geometry]       create, then drain
 *   btraced --fd N [--out DIR] [options]           inherited arena fd
 *
 * Attaches to a shared file arena (or creates one for producers to
 * join), then drains it continuously into rotating bounded segment
 * files (trace_file.h format — btrace_inspect reads them directly) and
 * sweeps leases of producers that died, until the duration elapses or
 * SIGINT/SIGTERM arrives. Exit codes follow exitCodeFor(): scripts can
 * branch on 3 (no such arena), 5 (corrupt), 6 (incompatible
 * generation), 7 (arena busy / registry full), ...
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <chrono>
#include <string>
#include <thread>

#include "daemon/daemon.h"
#include "obs/export.h"

using namespace btrace;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btraced --arena PATH [--create] [--fd N]\n"
        "               [--out DIR] [--segment-bytes N] "
        "[--max-segments N]\n"
        "               [--interval-ms N] [--sweep-every N]\n"
        "               [--duration SEC] [--close-active 0|1]\n"
        "               [--expect-generation N] [--metrics-out PATH]\n"
        "create-mode geometry: [--blocks N] [--active N]\n"
        "               [--block-bytes N] [--cores N]\n");
    return exitCodeFor(StatusCode::InvalidArgument);
}

struct Flags
{
    std::string arena;
    int fd = -1;
    bool create = false;
    std::string outDir = "btraced-out";
    std::string metricsOut;
    DaemonOptions daemon;
    double durationSec = 0.0;  // 0 = until signal
    uint64_t expectGeneration = 0;
    // create-mode geometry
    std::size_t blocks = 3072, active = 192, blockBytes = 4096;
    unsigned cores = 12;
};

} // namespace

int
main(int argc, char **argv)
{
    Flags f;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (std::strcmp(a, "--arena") == 0 && (v = next())) {
            f.arena = v;
        } else if (std::strcmp(a, "--fd") == 0 && (v = next())) {
            f.fd = std::atoi(v);
        } else if (std::strcmp(a, "--create") == 0) {
            f.create = true;
        } else if (std::strcmp(a, "--out") == 0 && (v = next())) {
            f.outDir = v;
        } else if (std::strcmp(a, "--segment-bytes") == 0 &&
                   (v = next())) {
            f.daemon.segmentBytes = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--max-segments") == 0 &&
                   (v = next())) {
            f.daemon.maxSegments = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--interval-ms") == 0 &&
                   (v = next())) {
            f.daemon.drainIntervalSec = std::atof(v) / 1000.0;
        } else if (std::strcmp(a, "--sweep-every") == 0 &&
                   (v = next())) {
            f.daemon.sweepEveryNDrains = unsigned(std::atoi(v));
        } else if (std::strcmp(a, "--duration") == 0 && (v = next())) {
            f.durationSec = std::atof(v);
        } else if (std::strcmp(a, "--close-active") == 0 &&
                   (v = next())) {
            f.daemon.closeActive = std::atoi(v) != 0;
        } else if (std::strcmp(a, "--expect-generation") == 0 &&
                   (v = next())) {
            f.expectGeneration = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--metrics-out") == 0 &&
                   (v = next())) {
            f.metricsOut = v;
        } else if (std::strcmp(a, "--blocks") == 0 && (v = next())) {
            f.blocks = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--active") == 0 && (v = next())) {
            f.active = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--block-bytes") == 0 &&
                   (v = next())) {
            f.blockBytes = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--cores") == 0 && (v = next())) {
            f.cores = unsigned(std::atoi(v));
        } else {
            return usage();
        }
    }
    if (f.arena.empty() && f.fd < 0)
        return usage();
    f.daemon.outDir = f.outDir;

    // Rendezvous: create the arena, or join one that exists.
    Expected<Session> sess = Expected<Session>(Session());
    if (f.create) {
        BTraceConfig cfg;
        cfg.storage = StorageKind::File;
        cfg.arenaPath = f.arena;
        cfg.numBlocks = f.blocks;
        cfg.activeBlocks = f.active;
        cfg.blockSize = f.blockBytes;
        cfg.cores = f.cores;
        sess = Session::create(cfg);
    } else {
        AttachOptions ao;
        ao.expectGeneration = f.expectGeneration;
        sess = f.fd >= 0 ? Session::attachFd(f.fd, ao)
                         : Session::attachFile(f.arena, ao);
    }
    if (!sess.ok()) {
        std::fprintf(stderr, "btraced: %s\n",
                     sess.status().toString().c_str());
        return exitCodeFor(sess.status().code());
    }
    std::fprintf(stderr,
                 "btraced: %s arena (generation %llu), draining to %s\n",
                 sess.value().owner() ? "created" : "attached",
                 static_cast<unsigned long long>(
                     sess.value().generation()),
                 f.outDir.c_str());

    auto daemon = ConsumerDaemon::make(sess.take(), f.daemon);
    if (!daemon.ok()) {
        std::fprintf(stderr, "btraced: %s\n",
                     daemon.status().toString().c_str());
        return exitCodeFor(daemon.status().code());
    }
    ConsumerDaemon &d = *daemon.value();

    MetricsRegistry registry;
    d.registerMetrics(registry);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    d.start();
    const auto t0 = std::chrono::steady_clock::now();
    while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (f.durationSec > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                    .count() >= f.durationSec)
            break;
    }
    d.stop();

    const DaemonStats st = d.stats();
    std::fprintf(stderr,
                 "btraced: %llu drains, %llu entries, %llu segments, "
                 "%llu sweeps, %llu leases reclaimed (%llu bytes), "
                 "%llu attachments cleared, %llu positions lost, "
                 "%llu blocks skipped\n",
                 static_cast<unsigned long long>(st.drains),
                 static_cast<unsigned long long>(st.entries),
                 static_cast<unsigned long long>(st.segmentsOpened),
                 static_cast<unsigned long long>(st.sweeps),
                 static_cast<unsigned long long>(st.reclaimedLeases),
                 static_cast<unsigned long long>(st.reclaimedBytes),
                 static_cast<unsigned long long>(st.clearedAttachments),
                 static_cast<unsigned long long>(
                     st.overwrittenPositions),
                 static_cast<unsigned long long>(st.skippedBlocks));

    if (!f.metricsOut.empty()) {
        std::ofstream out(f.metricsOut);
        if (!out) {
            std::fprintf(stderr, "btraced: cannot write %s\n",
                         f.metricsOut.c_str());
            return exitCodeFor(StatusCode::IoError);
        }
        out << renderPrometheus(registry.collect(),
                                {{"daemon", "btraced"}});
    }
    return 0;
}
