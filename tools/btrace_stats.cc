/**
 * @file
 * btrace_stats — offline segment-directory analytics (DESIGN.md §13).
 *
 *   btrace_stats PATH... [--top N] [--bucket-sec F] [--strict]
 *                [--json[=FILE]]
 *                [--follow [--interval-ms N] [--duration SEC]]
 *
 * Each PATH is a segment directory (btraced --out) or a single
 * segment file. The one-shot mode scans everything once and prints
 * either the human table or the stable JSON document (schema
 * btrace_stats_version 1, validated by scripts/check_stats_schema.py;
 * --json=FILE writes it to FILE instead of stdout). --follow re-scans
 * at the given cadence, printing one delta line whenever the totals
 * move — tailing a live daemon's directory, including segments that
 * rotate in while watching — and emits the usual full report when the
 * duration elapses or SIGINT/SIGTERM arrives.
 *
 * Unreadable segments fail the run in --strict mode; otherwise they
 * are warned about and counted in the report's `unreadable` slot.
 * Exit codes follow exitCodeFor() like the other tools.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "trace/segment_stats.h"

using namespace btrace;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btrace_stats PATH... [--top N] [--bucket-sec F]\n"
        "                    [--strict] [--json[=FILE]]\n"
        "                    [--follow] [--interval-ms N] "
        "[--duration SEC]\n"
        "PATH: a segment directory (btraced --out) or one segment "
        "file.\n");
    return exitCodeFor(StatusCode::InvalidArgument);
}

struct Flags
{
    std::vector<std::string> paths;
    std::size_t topN = 10;
    double bucketSec = 1.0;
    bool strict = false;
    bool json = false;
    std::string jsonFile;
    bool follow = false;
    double intervalSec = 0.5;
    double durationSec = 0.0;  // 0 = until signal
};

/**
 * One full scan of every path. In lossy mode, per-segment read errors
 * are warned and folded into the report (NotFound of a whole path is
 * tolerated only when @p quiet_missing — the daemon may not have
 * created its out dir yet when --follow starts).
 */
Status
scanAll(const Flags &f, SegmentAggregator &agg, bool quiet_missing)
{
    for (const std::string &p : f.paths) {
        Status s = agg.addAll(p, f.strict);
        if (s.ok())
            continue;
        if (quiet_missing && s.code() == StatusCode::NotFound)
            continue;
        if (f.strict)
            return s;
        std::fprintf(stderr, "btrace_stats: %s\n",
                     s.toString().c_str());
        if (s.code() == StatusCode::NotFound ||
            s.code() == StatusCode::IoError)
            return s;  // a whole path is missing, not one bad segment
    }
    return Status();
}

int
emitReport(const Flags &f, const SegmentAggregator &agg)
{
    if (!f.json) {
        std::fputs(agg.renderTable(f.topN).c_str(), stdout);
        return 0;
    }
    const std::string doc = agg.renderJson(f.topN);
    if (f.jsonFile.empty()) {
        std::printf("%s\n", doc.c_str());
        return 0;
    }
    std::ofstream out(f.jsonFile);
    if (!out) {
        std::fprintf(stderr, "btrace_stats: cannot write %s\n",
                     f.jsonFile.c_str());
        return exitCodeFor(StatusCode::IoError);
    }
    out << doc << "\n";
    return 0;
}

int
runFollow(const Flags &f)
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const auto t0 = std::chrono::steady_clock::now();
    uint64_t prevRecords = 0, prevBytes = 0, prevSegments = 0;
    bool first = true;
    SegmentAggregator last(f.bucketSec);
    while (g_stop == 0) {
        // Rebuild from scratch each pass: the open segment grows in
        // place, so an incremental fold would double-count it, and at
        // segment-directory scale a rescan is cheap.
        SegmentAggregator agg(f.bucketSec);
        if (Status s = scanAll(f, agg, /*quiet_missing=*/true);
            !s.ok() && f.strict)
            return exitCodeFor(s.code());
        const SegmentDirStats &st = agg.stats();
        if (first || st.records != prevRecords ||
            st.segmentsScanned != prevSegments) {
            const double t = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
            std::printf("[%8.3f] segments=%llu records=%llu (+%llu) "
                        "bytes=%llu (+%llu)\n",
                        t,
                        static_cast<unsigned long long>(
                            st.segmentsScanned),
                        static_cast<unsigned long long>(st.records),
                        static_cast<unsigned long long>(
                            st.records - prevRecords),
                        static_cast<unsigned long long>(
                            st.payloadBytes),
                        static_cast<unsigned long long>(
                            st.payloadBytes - prevBytes));
            std::fflush(stdout);
            prevRecords = st.records;
            prevBytes = st.payloadBytes;
            prevSegments = st.segmentsScanned;
            first = false;
        }
        last = std::move(agg);
        if (f.durationSec > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                    .count() >= f.durationSec)
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(f.intervalSec));
    }
    return emitReport(f, last);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags f;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (std::strcmp(a, "--top") == 0 && (v = next())) {
            f.topN = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(a, "--bucket-sec") == 0 &&
                   (v = next())) {
            f.bucketSec = std::atof(v);
        } else if (std::strcmp(a, "--strict") == 0) {
            f.strict = true;
        } else if (std::strcmp(a, "--json") == 0) {
            f.json = true;
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            f.json = true;
            f.jsonFile = a + 7;
        } else if (std::strcmp(a, "--follow") == 0) {
            f.follow = true;
        } else if (std::strcmp(a, "--interval-ms") == 0 &&
                   (v = next())) {
            f.intervalSec = std::atof(v) / 1000.0;
        } else if (std::strcmp(a, "--duration") == 0 && (v = next())) {
            f.durationSec = std::atof(v);
        } else if (a[0] == '-') {
            return usage();
        } else {
            f.paths.push_back(a);
        }
    }
    if (f.paths.empty())
        return usage();

    if (f.follow)
        return runFollow(f);

    SegmentAggregator agg(f.bucketSec);
    if (Status s = scanAll(f, agg, /*quiet_missing=*/false); !s.ok())
        return exitCodeFor(s.code());
    return emitReport(f, agg);
}
