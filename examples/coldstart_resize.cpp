/**
 * @file
 * Cold-start tracing with dynamic resizing — the §2.2 Observation 3
 * scenario. An anomaly detector flags slow app launches, so the
 * recorder grows the trace buffer just before a launch, captures the
 * detailed startup window, dumps it once the main activity settles,
 * and shrinks back — returning the physical memory to the OS while
 * producers keep tracing (§4.4 implicit reclamation).
 *
 *   $ ./coldstart_resize
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/format.h"
#include "core/btrace.h"

using namespace btrace;

namespace {

constexpr uint16_t kCatBackground = 1;
constexpr uint16_t kCatStartup = 2;

} // namespace

int
main()
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.numBlocks = 512;       // 2 MB idle footprint
    cfg.activeBlocks = 32;
    cfg.maxBlocks = 32768;     // up to 128 MB during critical phases
    cfg.cores = 4;
    BTrace tracer(cfg);

    std::atomic<bool> stop{false};
    std::atomic<bool> burst{false};
    std::atomic<uint64_t> stamp{0};

    // Background producers run the whole time; during the burst they
    // emit the detailed startup categories at a much higher rate.
    std::vector<std::thread> producers;
    for (unsigned core = 0; core < cfg.cores; ++core) {
        producers.emplace_back([&, core]() {
            while (!stop.load(std::memory_order_relaxed)) {
                const bool hot = burst.load(std::memory_order_relaxed);
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                tracer.record(uint16_t(core), core, s, hot ? 96 : 32,
                              hot ? kCatStartup : kCatBackground);
                if (!hot)
                    std::this_thread::yield();
            }
        });
    }

    auto report = [&](const char *phase) {
        std::printf("%-28s capacity %8s  resident %8s  events %llu\n",
                    phase,
                    humanBytes(double(tracer.capacityBytes())).c_str(),
                    humanBytes(double(tracer.residentBytes())).c_str(),
                    static_cast<unsigned long long>(stamp.load()));
    };

    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    report("idle (2 MB steady state)");

    // Anomaly detector: "app launch incoming" — grow first, then let
    // the detailed startup trace pour in.
    tracer.resize(32768);
    report("grown for cold start");
    burst.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    burst.store(false);
    report("startup window captured");

    // Main activity loaded: dump the window, then shrink.
    const Dump d = tracer.dump();
    std::size_t startup_entries = 0;
    for (const DumpEntry &e : d.entries)
        startup_entries += e.category == kCatStartup;
    std::printf("dumped %zu entries, %zu from the startup burst\n",
                d.entries.size(), startup_entries);

    tracer.resize(512);
    report("shrunk back to idle");

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (auto &p : producers)
        p.join();
    report("final");

    std::printf("\nThe buffer grew 64x only for the critical phase and "
                "the shrink returned\nthe pages to the OS without "
                "stopping a single producer (§4.4).\n");
    return startup_entries > 0 ? 0 : 1;
}
