/**
 * @file
 * Energy-defect analysis — the first §6 case study. Middle cores
 * enter deep idle; user-critical render threads get scheduled onto
 * them, time out while the core wakes, and are migrated to big cores.
 * Each occurrence is a sparse triple (idle -> sched -> migration)
 * spread over a long window; finding the pattern needs statistics
 * over *continuous* traces.
 *
 * The example replays the scenario through BTrace and through the
 * per-core baseline with the same buffer, then runs the statistical
 * analysis on both dumps: the partitioned buffer retains enough of
 * the window to expose the pattern; the per-core buffer does not.
 *
 *   $ ./sched_analysis
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/defects.h"
#include "baselines/ftrace_like.h"
#include "common/prng.h"
#include "core/btrace.h"

using namespace btrace;

namespace {

constexpr uint16_t kCatSched = 1;
constexpr uint16_t kCatIdle = 2;
constexpr uint16_t kCatFreq = 3;
constexpr uint16_t kCatMigration = 4;  // the clue

/**
 * Generate the workload: dense sched/idle/freq noise plus periodic
 * "deep idle -> timeout -> migration" triples on middle cores. Returns
 * how many migration events were produced.
 */
uint64_t
runScenario(Tracer &tracer, uint64_t events)
{
    Prng rng(42);
    uint64_t stamp = 0;
    uint64_t signatures = 0;
    for (uint64_t i = 0; i < events; ++i) {
        // Sparse defect signature on the *busiest* little core — the
        // worst case for a per-core buffer, whose 1/C slice wraps
        // fastest exactly where the clues are. Full idle -> sched ->
        // migration triple, ~1 in 4000 events.
        if (rng.chance(0.00025)) {
            tracer.record(0, 1, ++stamp, 56, kCatIdle);
            tracer.record(0, 1, ++stamp, 56, kCatSched);
            tracer.record(0, 1, ++stamp, 56, kCatMigration);
            ++signatures;
            continue;
        }
        // Little cores (0-1) dominate the noise volume.
        const uint16_t core = rng.chance(0.75)
                                  ? uint16_t(rng.nextBounded(2))
                                  : uint16_t(2 + rng.nextBounded(2));
        const uint16_t cat = rng.chance(0.5)
                                 ? kCatSched
                                 : (rng.chance(0.5) ? kCatIdle
                                                    : kCatFreq);
        tracer.record(core, 1, ++stamp, 56, cat);
    }
    return signatures;
}

/** The analysis a developer would run: the §6 migration-storm
 *  detector, only meaningful over a long continuous window. */
void
analyze(const char *name, Tracer &tracer, uint64_t produced_signatures)
{
    const Dump d = tracer.dump();
    uint64_t lo = ~0ull, hi = 0;
    for (const DumpEntry &e : d.entries) {
        lo = std::min(lo, e.stamp);
        hi = std::max(hi, e.stamp);
    }
    const uint64_t window = d.entries.empty() ? 0 : hi - lo + 1;
    const DefectReport rep = detectMigrationStorm(
        d.entries, kCatIdle, kCatSched, kCatMigration, 16);
    std::printf("%-8s retained window %7llu events, migration storms "
                "detected %3zu of %3llu (%.0f%%)\n",
                name, static_cast<unsigned long long>(window),
                rep.occurrences.size(),
                static_cast<unsigned long long>(produced_signatures),
                produced_signatures
                    ? 100.0 * double(rep.occurrences.size()) /
                          double(produced_signatures)
                    : 0.0);
}

} // namespace

int
main()
{
    const std::size_t capacity = 16u << 20;
    const uint64_t events = 250000;

    std::printf("energy-defect analysis: %llu events with a sparse "
                "migration signature,\nboth tracers get %zu MB.\n\n",
                static_cast<unsigned long long>(events), capacity >> 20);

    BTraceConfig bcfg;
    bcfg.blockSize = 4096;
    bcfg.numBlocks = capacity / 4096;
    bcfg.activeBlocks = 64;
    bcfg.cores = 4;
    BTrace bt(bcfg);
    const uint64_t m1 = runScenario(bt, events);
    analyze("BTrace", bt, m1);

    FtraceConfig fcfg;
    fcfg.capacityBytes = capacity;
    fcfg.cores = 4;
    FtraceLike ft(fcfg);
    const uint64_t m2 = runScenario(ft, events);
    analyze("percore", ft, m2);

    std::printf("\nWith the same memory, the partitioned global buffer "
                "keeps a much longer\ncontinuous window, so the "
                "statistical signature (migrations clustered on\nthe "
                "woken middle core) is visible — the §6 energy case "
                "study.\n");
    return 0;
}
