/**
 * @file
 * Persist-and-export pipeline (§2.1 "Persist vs. In-memory"): a
 * background reader persists the in-memory buffer to disk while
 * producers keep tracing, then the persisted trace — far longer than
 * the buffer itself — is exported to Chrome trace-event JSON and CSV
 * for existing tooling (Perfetto, spreadsheets).
 *
 *   $ ./export_trace [output-directory]
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "analysis/export.h"
#include "core/btrace.h"
#include "core/persister.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "/tmp";
    const std::string trace_path = dir + "/btrace_example.bin";

    // Register the tracepoints we will emit.
    TracepointRegistry registry;
    const uint16_t cat_sched = registry.registerTracepoint(
        "sched", 2, "scheduling decision");
    const uint16_t cat_idle = registry.registerTracepoint(
        "idle", 2, "cpuidle state change");
    const uint16_t cat_energy = registry.registerTracepoint(
        "energy", 3, "energy-aware migration");

    // A small buffer: the persisted file will outgrow it many times.
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.numBlocks = 64;  // 256 KB
    cfg.activeBlocks = 16;
    cfg.cores = 4;
    BTrace tracer(cfg);

    std::atomic<uint64_t> stamp{0};
    PersisterOptions popt;
    popt.pollIntervalSec = 0.001;
    // Close partially filled blocks on every poll (§4.3): without
    // this, a napping producer's open block stalls the reader cursor
    // and a fast buffer lap can overrun it.
    popt.closeActive = true;
    TracePersister persister(tracer, trace_path, popt);

    std::vector<std::thread> producers;
    for (unsigned core = 0; core < cfg.cores; ++core) {
        producers.emplace_back([&, core]() {
            for (int i = 0; i < 30000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                const uint16_t cat = s % 97 == 0
                                         ? cat_energy
                                         : (s % 3 ? cat_sched : cat_idle);
                tracer.record(uint16_t(core), core, s, 40, cat);
                if (i % 2000 == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
            }
        });
    }
    for (auto &p : producers)
        p.join();
    persister.stop();

    const auto loaded = TracePersister::load(trace_path);
    std::printf("in-memory buffer: %zu KB; persisted %zu entries "
                "(%llu produced)\n",
                tracer.capacityBytes() >> 10, loaded.size(),
                static_cast<unsigned long long>(stamp.load()));

    ExportOptions eopt;
    eopt.registry = &registry;

    const std::string json_path = dir + "/btrace_example.json";
    std::ofstream(json_path) << exportChromeJson(loaded, eopt);
    const std::string csv_path = dir + "/btrace_example.csv";
    std::ofstream(csv_path) << exportCsv(loaded, eopt);

    Dump as_dump;
    as_dump.entries = loaded;
    std::printf("\n%s\n", summarizeDump(as_dump, eopt).c_str());
    std::printf("wrote %s (open in chrome://tracing or Perfetto) and "
                "%s\n", json_path.c_str(), csv_path.c_str());
    return loaded.empty() ? 1 : 0;
}
