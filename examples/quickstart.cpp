/**
 * @file
 * Quickstart: create a BTrace buffer, record events from several
 * threads, and dump the retained trace.
 *
 *   $ ./quickstart
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/btrace.h"

int
main()
{
    using namespace btrace;

    // 1. Configure the buffer: 1 MB split into 4 KB blocks, with
    //    A = 16 active blocks serving 4 producer cores (§3).
    BTraceConfig config;
    config.blockSize = 4096;
    config.numBlocks = 256;
    config.activeBlocks = 16;
    config.cores = 4;
    BTrace tracer(config);

    // 2. Record events. Each producer passes its core id, a thread
    //    id, a unique stamp, and the payload length; record() is the
    //    blocking convenience wrapper around allocate()/confirm().
    std::atomic<uint64_t> next_stamp{0};
    std::vector<std::thread> producers;
    for (unsigned core = 0; core < config.cores; ++core) {
        producers.emplace_back([&, core]() {
            for (int i = 0; i < 50000; ++i) {
                const uint64_t stamp =
                    next_stamp.fetch_add(1, std::memory_order_relaxed) +
                    1;
                tracer.record(uint16_t(core), core, stamp,
                              /*payload_len=*/48,
                              /*category=*/uint16_t(core));
            }
        });
    }
    for (auto &p : producers)
        p.join();

    // 3. Dump: a non-destructive snapshot of the retained entries
    //    (§4.3). Entries carry stamp, origin, category, and size.
    const Dump dump = tracer.dump();

    uint64_t newest = 0, oldest = ~0ull;
    double bytes = 0;
    for (const DumpEntry &e : dump.entries) {
        newest = std::max(newest, e.stamp);
        oldest = std::min(oldest, e.stamp);
        bytes += e.size;
    }
    std::printf("produced %llu events; retained %zu (stamps %llu..%llu, "
                "%.1f KB of %.1f KB capacity)\n",
                static_cast<unsigned long long>(next_stamp.load()),
                dump.entries.size(),
                static_cast<unsigned long long>(oldest),
                static_cast<unsigned long long>(newest), bytes / 1024.0,
                double(tracer.capacityBytes()) / 1024.0);

    // 4. Internal counters show the mechanisms at work.
    const BTraceCounters &c = tracer.counters();
    std::printf("fast-path writes %llu, advancements %llu, closes %llu, "
                "skips %llu, dummy bytes %llu\n",
                static_cast<unsigned long long>(c.fastAllocs.load()),
                static_cast<unsigned long long>(c.advances.load()),
                static_cast<unsigned long long>(c.closes.load()),
                static_cast<unsigned long long>(c.skips.load()),
                static_cast<unsigned long long>(c.dummyBytes.load()));
    return 0;
}
