/**
 * @file
 * Quickstart: create a BTrace buffer, record events from several
 * threads, and dump the retained trace.
 *
 *   $ ./quickstart
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/btrace.h"

int
main()
{
    using namespace btrace;

    // 1. Configure the buffer: 1 MB split into 4 KB blocks, with
    //    A = 16 active blocks serving 4 producer cores (§3).
    BTraceConfig config;
    config.blockSize = 4096;
    config.numBlocks = 256;
    config.activeBlocks = 16;
    config.cores = 4;
    BTrace tracer(config);

    // 2. Record events. Even cores use record(), the blocking
    //    convenience wrapper around allocate()/confirm() — two shared
    //    RMWs per event. Odd cores batch through a lease: one RMW
    //    claims a span of 32 entries, each write is then a private
    //    bump, and one RMW at close() publishes the whole span (§7 of
    //    DESIGN.md).
    std::atomic<uint64_t> next_stamp{0};
    std::vector<std::thread> producers;
    for (unsigned core = 0; core < config.cores; ++core) {
        producers.emplace_back([&, core]() {
            Lease lease;
            for (int i = 0; i < 50000; ++i) {
                const uint64_t stamp =
                    next_stamp.fetch_add(1, std::memory_order_relaxed) +
                    1;
                if (core % 2 == 0) {
                    tracer.record(uint16_t(core), core, stamp,
                                  /*payload_len=*/48,
                                  /*category=*/uint16_t(core));
                    continue;
                }
                for (;;) {
                    if (lease.closed()) {
                        lease = tracer.lease(uint16_t(core), core,
                                             /*payload_hint=*/48,
                                             /*n=*/32);
                        if (!lease.ok())
                            continue;  // tracer busy: retry the claim
                    }
                    WriteTicket t = lease.allocate(48);
                    if (!t.ok()) {
                        lease.close();  // span exhausted: renew
                        continue;
                    }
                    writeNormal(t.dst, stamp, uint16_t(core), core,
                                uint16_t(core), 48);
                    lease.confirm(t);
                    break;
                }
            }
            lease.close();
        });
    }
    for (auto &p : producers)
        p.join();

    // 3. Dump: a non-destructive snapshot of the retained entries
    //    (§4.3). Entries carry stamp, origin, category, and size.
    const Dump dump = tracer.dump();

    uint64_t newest = 0, oldest = ~0ull;
    double bytes = 0;
    for (const DumpEntry &e : dump.entries) {
        newest = std::max(newest, e.stamp);
        oldest = std::min(oldest, e.stamp);
        bytes += e.size;
    }
    std::printf("produced %llu events; retained %zu (stamps %llu..%llu, "
                "%.1f KB of %.1f KB capacity)\n",
                static_cast<unsigned long long>(next_stamp.load()),
                dump.entries.size(),
                static_cast<unsigned long long>(oldest),
                static_cast<unsigned long long>(newest), bytes / 1024.0,
                double(tracer.capacityBytes()) / 1024.0);

    // 4. Internal counters show the mechanisms at work.
    const BTraceCounters::Snapshot c = tracer.countersSnapshot();
    std::printf("fast-path writes %llu, advancements %llu, closes %llu, "
                "skips %llu, dummy bytes %llu\n",
                static_cast<unsigned long long>(c.fastAllocs),
                static_cast<unsigned long long>(c.advances),
                static_cast<unsigned long long>(c.closes),
                static_cast<unsigned long long>(c.skips),
                static_cast<unsigned long long>(c.dummyBytes));
    std::printf("leases %llu serving %llu entries (%llu shared RMWs "
                "total)\n",
                static_cast<unsigned long long>(c.leases),
                static_cast<unsigned long long>(c.leaseEntries),
                static_cast<unsigned long long>(c.sharedRmws));
    return 0;
}
