/**
 * @file
 * Flight recorder — the §6 "silent defect" case study.
 *
 * A daemon watches for a symptom (here: a watchdog timeout ~20
 * virtual seconds after the root cause). The root cause is a single
 * sparse event written long before the symptom, on the *busiest*
 * core. With per-core buffers that core's slice wraps long before the
 * watchdog fires and the clue is overwritten; BTrace's partitioned
 * global buffer lets the busy core use the whole capacity, so the
 * clue survives to the dump.
 *
 *   $ ./flight_recorder
 */

#include <cstdio>
#include <memory>

#include "baselines/ftrace_like.h"
#include "core/btrace.h"

using namespace btrace;

namespace {

constexpr uint16_t kCategoryNoise = 1;
constexpr uint16_t kCategoryRootCause = 7;  // "CPU failed to migrate"
constexpr uint64_t kRootCauseStamp = 50000;

/** Drive the scenario: background noise, one root-cause marker, then
 *  ~20 s more noise until the watchdog fires. The little core (0) is
 *  ~20x busier than the rest — the §2.2 skew. */
void
runScenario(Tracer &tracer)
{
    uint64_t stamp = 0;
    auto tick = [&](uint64_t count) {
        for (uint64_t i = 0; i < count; ++i) {
            ++stamp;
            const uint16_t core = (stamp % 24 < 20)
                                      ? 0
                                      : uint16_t(1 + stamp % 3);
            const uint16_t cat = stamp == kRootCauseStamp
                                     ? kCategoryRootCause
                                     : kCategoryNoise;
            tracer.record(core, 1, stamp, 48, cat);
        }
    };
    // The watchdog window: more events than one per-core slice can
    // hold (8 MB / 4 cores ≈ 30k busy-core events) but within the
    // global buffer's reach (≈ 110k events) — exactly the §6 regime
    // where buffer partitioning decides diagnosability.
    tick(kRootCauseStamp);      // ...including the root cause
    tick(80000);                // noise until the watchdog timeout
}

bool
rootCauseRetained(Tracer &tracer)
{
    const Dump d = tracer.dump();
    for (const DumpEntry &e : d.entries) {
        if (e.category == kCategoryRootCause)
            return true;
    }
    return false;
}

} // namespace

int
main()
{
    const std::size_t capacity = 8u << 20;

    std::printf("flight recorder scenario: root cause at stamp %llu on "
                "the busy core,\nwatchdog fires 200k events later; "
                "both tracers get %zu MB.\n\n",
                static_cast<unsigned long long>(kRootCauseStamp),
                capacity >> 20);

    BTraceConfig bcfg;
    bcfg.blockSize = 4096;
    bcfg.numBlocks = capacity / 4096;
    bcfg.activeBlocks = 64;
    bcfg.cores = 4;
    BTrace btrace_rec(bcfg);
    runScenario(btrace_rec);
    const bool bt_found = rootCauseRetained(btrace_rec);

    FtraceConfig fcfg;
    fcfg.capacityBytes = capacity;
    fcfg.cores = 4;
    FtraceLike percore_rec(fcfg);
    runScenario(percore_rec);
    const bool ft_found = rootCauseRetained(percore_rec);

    std::printf("BTrace  dump: root cause %s\n",
                bt_found ? "FOUND — defect diagnosable" : "LOST");
    std::printf("per-core dump: root cause %s\n",
                ft_found ? "found" : "LOST — the busy core's 1/C slice "
                                     "wrapped before the watchdog");
    std::printf("\n%s\n",
                bt_found && !ft_found
                    ? "As in §6: only the partitioned global buffer "
                      "spans the whole timeout window."
                    : "(unexpected retention pattern — inspect the "
                      "buffer sizes)");
    return bt_found ? 0 : 1;
}
