#!/usr/bin/env bash
# End-to-end control-plane smoke test (DESIGN.md §12): btraced creates
# a shared file arena with a control file at full sampling, a producer
# writes through leases, then the operator rewrites the control file
# to 1% sampling and the *same producer binary* — polling the arena
# control page at lease renewal — must shed ~99% of its events. The
# script asserts the whole loop end to end:
#
#   - at sample_rate = 1.0 the producer writes every event;
#   - after the control-file rewrite (picked up by mtime polling, no
#     SIGHUP needed) a second producer run writes a small fraction;
#   - the daemon's Prometheus dump reflects the change:
#     btrace_governor_sample_rate == 0.01 and the governor counters
#     are present;
#   - btrace_inspect --control decodes the arena's control page and
#     shows both published snapshot versions;
#   - a malformed control file maps to exit code 2 at startup.
#
# Usage: scripts/control_smoke.sh [BUILD_DIR]   (default: build)

set -u

BUILD_DIR="${1:-build}"
BTRACED="$BUILD_DIR/tools/btraced"
PRODUCER="$BUILD_DIR/tools/btrace_producer"
INSPECT="$BUILD_DIR/tools/btrace_inspect"

for bin in "$BTRACED" "$PRODUCER" "$INSPECT"; do
    if [ ! -x "$bin" ]; then
        echo "missing tool: $bin (build the 'btraced', 'btrace_producer'" \
             "and 'btrace_inspect' targets first)" >&2
        exit 1
    fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
ARENA="$WORK/ring.arena"
SEGS="$WORK/segs"
METRICS="$WORK/metrics.prom"
CONTROL="$WORK/control.conf"
EVENTS=20000

fail() { echo "FAIL: $*" >&2; exit 1; }

# Metric helper: value of a metric in the Prom dump (0 if absent).
metric() {
    awk -v name="$1" \
        '$1 ~ "^"name"([{]|$)" { print $2; found = 1 }
         END { if (!found) print 0 }' "$METRICS"
}

echo "== 1. malformed control file maps to exit code 2"
printf 'sample_rate = 7.0\n' > "$CONTROL"
"$BTRACED" --arena "$ARENA" --create --control-file "$CONTROL" \
    --duration 1 2>/dev/null
[ $? -eq 2 ] || fail "out-of-range sample_rate should exit 2"
rm -f "$ARENA"

echo "== 2. daemon creates the arena at sample_rate = 1.0"
printf 'sample_rate = 1.0\n' > "$CONTROL"
"$BTRACED" --arena "$ARENA" --create --out "$SEGS" \
    --blocks 3072 --active 192 --block-bytes 4096 --cores 8 \
    --interval-ms 5 --sweep-every 4 --duration 12 --close-active 1 \
    --segment-bytes $((1 << 20)) --metrics-out "$METRICS" \
    --control-file "$CONTROL" --governor-interval-ms 200 \
    2> "$WORK/btraced.err" &
DAEMON_PID=$!

# Wait for the daemon's own announcement that the arena exists AND
# the startup control apply landed (v2: v1 is the create-time
# snapshot). Polling the arena file's size instead would race the
# creation — the file is at full size before the header is stamped.
for _ in $(seq 1 200); do
    grep -q "control v2" "$WORK/btraced.err" 2>/dev/null && break
    sleep 0.05
done
grep -q "control v2" "$WORK/btraced.err" \
    || fail "daemon never applied the startup control file"

echo "== 3. producer at full sampling writes every event"
"$PRODUCER" --arena "$ARENA" --events "$EVENTS" --core 1 \
    > "$WORK/p1.out" || fail "producer 1 exited nonzero"
[ "$(cat "$WORK/p1.out")" = "$EVENTS" ] \
    || fail "full-rate producer wrote $(cat "$WORK/p1.out")/$EVENTS"

echo "== 4. operator rewrites the control file to 1% sampling"
sleep 1.1  # ensure a coarse-mtime filesystem still sees the change
printf 'sample_rate = 0.01\n' > "$CONTROL"
# Wait for the daemon to publish the rewrite to the arena control
# page (50 ms poll cadence; give it a generous window). Versions:
# v1 is the owner's create-time snapshot, v2 the startup apply of
# sample_rate = 1.0, v3 this rewrite.
for _ in $(seq 1 100); do
    "$INSPECT" --control "$ARENA" 2>/dev/null \
        | grep -q "snapshots published  3" && break
    sleep 0.05
done
"$INSPECT" --control "$ARENA" | grep -q "snapshots published  3" \
    || fail "daemon never published the 1% snapshot"

echo "== 5. producer now sheds ~99% of its events"
"$PRODUCER" --arena "$ARENA" --events "$EVENTS" --core 2 \
    > "$WORK/p2.out" 2> "$WORK/p2.err" \
    || fail "producer 2 exited nonzero"
P2=$(cat "$WORK/p2.out")
# Expect ~1% of EVENTS (= 200); allow a wide margin, but insist the
# sampled run wrote far fewer than the full run.
[ "$P2" -lt $((EVENTS / 10)) ] \
    || fail "sampled producer still wrote $P2/$EVENTS events"
[ "$P2" -gt 0 ] || fail "sampled producer wrote nothing at all"
grep -q "suppressed" "$WORK/p2.err" \
    || fail "producer never reported suppression stats"

wait "$DAEMON_PID" || fail "btraced exited nonzero"

echo "== 6. governor metrics reflect the applied control"
[ -s "$METRICS" ] || fail "no metrics dump"
RATE=$(metric btrace_governor_sample_rate)
case "$RATE" in
    0.01*) : ;;
    *) fail "btrace_governor_sample_rate is '$RATE', expected 0.01" ;;
esac
grep -q "^btrace_governor_decisions_total" "$METRICS" \
    || fail "governor decision counter missing from dump"
grep -q "^btrace_governor_ring_blocks" "$METRICS" \
    || fail "governor ring gauge missing from dump"

echo "== 7. the arena control page records the history"
"$INSPECT" --control "$ARENA" > "$WORK/control.out" \
    || fail "inspect --control failed"
grep -q "snapshot v2" "$WORK/control.out" \
    || fail "snapshot v2 (startup apply) missing from control page"
grep -q "snapshot v3  (active)" "$WORK/control.out" \
    || fail "snapshot v3 (the rewrite) is not the active snapshot"
grep -q "sample rate      0.010000" "$WORK/control.out" \
    || fail "active snapshot does not show the 1% rate"

echo "PASS: control smoke (full run $EVENTS, sampled run $P2," \
     "governor rate $RATE)"
