#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (DESIGN.md §9).

The exporters (replay --journal-out, exportJournalChromeJson,
exportChromeJson) emit the legacy "JSON Array Format" that Perfetto's
legacy importer and chrome://tracing load: a {"traceEvents": [...]}
object whose events are instant ("i"), complete ("X"), or metadata
("M") records. This checker asserts field-level conformance offline so
CI needs no network or Perfetto binary:

  - the document is a JSON object with a non-empty traceEvents array
  - every event has name (non-empty str), ph, pid, tid
  - every non-metadata event has a numeric ts >= 0
  - complete events carry a numeric dur >= 0
  - instant events carry a scope s in {t, p, g}
  - metadata events are process_name/thread_name with an args.name
  - at least one duration (X) event exists unless --allow-no-durations

Usage: check_trace_export.py [--allow-no-durations] FILE [FILE...]
Exit 0 iff every file is valid.
"""

import json
import sys

PHASES = {"i", "I", "X", "M", "B", "E", "b", "e", "n", "C"}
INSTANT_SCOPES = {"t", "p", "g"}
METADATA_NAMES = {"process_name", "thread_name", "process_labels",
                  "process_sort_index", "thread_sort_index"}


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_event(i, ev):
    errs = []
    where = "traceEvents[%d]" % i
    if not isinstance(ev, dict):
        return ["%s is not an object" % where]

    name = ev.get("name")
    if not isinstance(name, str) or not name:
        errs.append("%s.name missing or empty" % where)
    ph = ev.get("ph")
    if ph not in PHASES:
        errs.append("%s.ph %r is not a known phase" % (where, ph))
        return errs
    if not is_num(ev.get("pid")):
        errs.append("%s.pid missing or not a number" % where)
    if not is_num(ev.get("tid")):
        errs.append("%s.tid missing or not a number" % where)

    if ph == "M":
        if name not in METADATA_NAMES:
            errs.append("%s.name %r is not a metadata record" % (where, name))
        args = ev.get("args")
        if not isinstance(args, dict) or "name" not in args:
            errs.append("%s.args.name missing" % where)
        return errs

    ts = ev.get("ts")
    if not is_num(ts) or ts < 0:
        errs.append("%s.ts missing or negative" % where)
    if ph == "X":
        dur = ev.get("dur")
        if not is_num(dur) or dur < 0:
            errs.append("%s.dur missing or negative" % where)
    if ph in ("i", "I"):
        if ev.get("s") not in INSTANT_SCOPES:
            errs.append("%s.s %r is not an instant scope" % (where, ev.get("s")))
    return errs


def check_file(path, require_durations):
    try:
        with open(path, "r") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return 0, ["%s: %s" % (path, e)]

    if not isinstance(doc, dict):
        return 0, ["%s: top level is not an object" % path]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return 0, ["%s: 'traceEvents' missing or not an array" % path]
    if not events:
        return 0, ["%s: traceEvents is empty" % path]

    errors = []
    durations = 0
    for i, ev in enumerate(events):
        errs = check_event(i, ev)
        errors += ["%s: %s" % (path, e) for e in errs]
        if not errs and ev.get("ph") == "X":
            durations += 1
    if require_durations and durations == 0:
        errors.append("%s: no complete (X) events — block tracks missing"
                      % path)
    return len(events), errors


def main(argv):
    args = argv[1:]
    require_durations = True
    if args and args[0] == "--allow-no-durations":
        require_durations = False
        args = args[1:]
    if not args:
        sys.stderr.write(__doc__)
        return 2
    failed = False
    for path in args:
        count, errors = check_file(path, require_durations)
        for err in errors[:50]:
            sys.stderr.write(err + "\n")
        if len(errors) > 50:
            sys.stderr.write("... and %d more errors\n" % (len(errors) - 50))
        if errors:
            failed = True
        else:
            print("%s: %d trace events OK" % (path, count))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
