#!/usr/bin/env bash
# End-to-end multi-process smoke test (DESIGN.md §11): btraced creates
# a shared file arena and drains it while producer processes attach,
# write through leases, and — one of them — dies by SIGKILL holding a
# lease open. The script then asserts the full contract:
#
#   - clean producers write every event and exit 0;
#   - the daemon's sweep proves the killed producer dead and reclaims
#     its lease (metrics: reclaimed leases/attachments >= 1);
#   - the rotating segments decode with btrace_inspect;
#   - error paths map to the documented exit codes (3 = no such
#     arena, 2 = bad usage).
#
# Usage: scripts/multiproc_smoke.sh [BUILD_DIR]   (default: build)

set -u

BUILD_DIR="${1:-build}"
BTRACED="$BUILD_DIR/tools/btraced"
PRODUCER="$BUILD_DIR/tools/btrace_producer"
INSPECT="$BUILD_DIR/tools/btrace_inspect"

for bin in "$BTRACED" "$PRODUCER" "$INSPECT"; do
    if [ ! -x "$bin" ]; then
        echo "missing tool: $bin (build the 'btraced', 'btrace_producer'" \
             "and 'btrace_inspect' targets first)" >&2
        exit 1
    fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
ARENA="$WORK/ring.arena"
SEGS="$WORK/segs"
METRICS="$WORK/metrics.prom"
EVENTS_PER_PRODUCER=5000

fail() { echo "FAIL: $*" >&2; exit 1; }

# Metric helper: integer value of a btraced counter in the Prom dump.
metric() {
    awk -v name="$1" '$1 ~ "^"name"([{]|$)" { print int($2) }' "$METRICS"
}

echo "== 1. exit-code contract on error paths"
"$PRODUCER" --arena "$WORK/nonexistent.arena" --events 1 2>/dev/null
[ $? -eq 3 ] || fail "attach to missing arena should exit 3 (not-found)"
"$PRODUCER" --bogus-flag 2>/dev/null
[ $? -eq 2 ] || fail "bad usage should exit 2 (invalid-argument)"

echo "== 2. daemon creates the arena and drains it"
"$BTRACED" --arena "$ARENA" --create --out "$SEGS" \
    --blocks 3072 --active 192 --block-bytes 4096 --cores 8 \
    --interval-ms 5 --sweep-every 4 --duration 6 --close-active 1 \
    --segment-bytes $((1 << 20)) --metrics-out "$METRICS" &
DAEMON_PID=$!

# Wait for the arena to appear (the daemon stamps it before draining).
for _ in $(seq 1 100); do
    [ -s "$ARENA" ] && break
    sleep 0.05
done
[ -s "$ARENA" ] || fail "daemon never created $ARENA"

echo "== 3. clean producers write through leases"
"$PRODUCER" --arena "$ARENA" --events "$EVENTS_PER_PRODUCER" --core 1 \
    > "$WORK/p1.out" &
P1=$!
"$PRODUCER" --arena "$ARENA" --events "$EVENTS_PER_PRODUCER" --core 2 \
    > "$WORK/p2.out" &
P2=$!

echo "== 4. one producer dies by SIGKILL holding a lease"
"$PRODUCER" --arena "$ARENA" --events 100 --core 3 --hold-lease \
    > "$WORK/holder.out" &
HOLDER=$!
for _ in $(seq 1 100); do
    grep -q HOLDING "$WORK/holder.out" 2>/dev/null && break
    sleep 0.05
done
grep -q HOLDING "$WORK/holder.out" || fail "holder never signaled"
kill -9 "$HOLDER"

wait "$P1" || fail "producer 1 exited nonzero"
wait "$P2" || fail "producer 2 exited nonzero"
[ "$(cat "$WORK/p1.out")" = "$EVENTS_PER_PRODUCER" ] \
    || fail "producer 1 wrote $(cat "$WORK/p1.out") events"
[ "$(cat "$WORK/p2.out")" = "$EVENTS_PER_PRODUCER" ] \
    || fail "producer 2 wrote $(cat "$WORK/p2.out") events"

wait "$DAEMON_PID" || fail "btraced exited nonzero"

echo "== 5. sweep reclaimed the dead producer"
[ -s "$METRICS" ] || fail "no metrics dump"
[ "$(metric btraced_reclaimed_leases_total)" -ge 1 ] \
    || fail "no lease was reclaimed"
[ "$(metric btraced_cleared_attachments_total)" -ge 1 ] \
    || fail "dead attachment was not cleared"
[ "$(metric btraced_sweeps_total)" -ge 1 ] || fail "no sweep ran"

echo "== 6. segments decode"
ls "$SEGS"/segment-*.btrace >/dev/null 2>&1 || fail "no segments written"
TOTAL=0
for seg in "$SEGS"/segment-*.btrace; do
    "$INSPECT" "$seg" > "$WORK/inspect.out" || fail "cannot decode $seg"
    N=$(awk '/^dump:/ { print int($2) }' "$WORK/inspect.out")
    TOTAL=$((TOTAL + N))
done
# Both clean producers' events must be on disk (the holder's best-
# effort entries and overwrite loss make the exact total workload-
# dependent; the floor is what the contract guarantees under a
# keeping-up consumer).
DRAINED=$(metric btraced_entries_total)
[ "$TOTAL" -eq "$DRAINED" ] \
    || fail "segments hold $TOTAL entries, daemon counted $DRAINED"
[ "$TOTAL" -ge "$EVENTS_PER_PRODUCER" ] \
    || fail "suspiciously few entries on disk: $TOTAL"

echo "== 7. a late attach to the finished arena still works"
"$INSPECT" --arena "$ARENA" > /dev/null || fail "arena post-mortem failed"

echo "PASS: multi-process smoke ($TOTAL entries across segments," \
     "$(metric btraced_reclaimed_leases_total) lease(s) reclaimed)"
