#!/usr/bin/env bash
# End-to-end multi-process smoke test (DESIGN.md §11): btraced creates
# a shared file arena and drains it while producer processes attach,
# write through leases, and — one of them — dies by SIGKILL holding a
# lease open. The script then asserts the full contract:
#
#   - clean producers write every event and exit 0;
#   - the daemon's sweep proves the killed producer dead and reclaims
#     its lease (metrics: reclaimed leases/attachments >= 1);
#   - the rotating segments decode with btrace_inspect;
#   - btrace_stats reconciles the segment directory exactly against
#     the daemon's own drain counters (DESIGN.md §13), its JSON passes
#     scripts/check_stats_schema.py, and a --follow run observes the
#     directory growing while the daemon drains;
#   - the metrics snapshot is rewritten mid-run and on SIGTERM, not
#     only at clean exit;
#   - error paths map to the documented exit codes (3 = no such
#     arena, 2 = bad usage).
#
# Usage: scripts/multiproc_smoke.sh [BUILD_DIR]   (default: build)

set -u

BUILD_DIR="${1:-build}"
BTRACED="$BUILD_DIR/tools/btraced"
PRODUCER="$BUILD_DIR/tools/btrace_producer"
INSPECT="$BUILD_DIR/tools/btrace_inspect"
STATS="$BUILD_DIR/tools/btrace_stats"
SCRIPTS="$(cd "$(dirname "$0")" && pwd)"

for bin in "$BTRACED" "$PRODUCER" "$INSPECT" "$STATS"; do
    if [ ! -x "$bin" ]; then
        echo "missing tool: $bin (build the 'btraced', 'btrace_producer'," \
             "'btrace_inspect' and 'btrace_stats' targets first)" >&2
        exit 1
    fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
ARENA="$WORK/ring.arena"
SEGS="$WORK/segs"
METRICS="$WORK/metrics.prom"
EVENTS_PER_PRODUCER=5000

fail() { echo "FAIL: $*" >&2; exit 1; }

# Metric helper: integer value of a btraced counter in the Prom dump.
metric() {
    awk -v name="$1" '$1 ~ "^"name"([{]|$)" { print int($2) }' "$METRICS"
}

echo "== 1. exit-code contract on error paths"
"$PRODUCER" --arena "$WORK/nonexistent.arena" --events 1 2>/dev/null
[ $? -eq 3 ] || fail "attach to missing arena should exit 3 (not-found)"
"$PRODUCER" --bogus-flag 2>/dev/null
[ $? -eq 2 ] || fail "bad usage should exit 2 (invalid-argument)"

echo "== 2. daemon creates the arena and drains it"
"$BTRACED" --arena "$ARENA" --create --out "$SEGS" \
    --blocks 3072 --active 192 --block-bytes 4096 --cores 8 \
    --interval-ms 5 --sweep-every 4 --duration 6 --close-active 1 \
    --segment-bytes $((1 << 20)) --metrics-out "$METRICS" &
DAEMON_PID=$!

# Wait until the arena actually accepts attachments. File size is not
# readiness: the owner sizes the file before stamping its headers, and
# an attacher in that window gets the retryable Busy exit (7). Probe
# with a real one-event producer until the attach goes through.
READY=1
for _ in $(seq 1 100); do
    "$PRODUCER" --arena "$ARENA" --events 1 --core 7 \
        > /dev/null 2>&1
    READY=$?
    [ "$READY" -eq 0 ] && break
    sleep 0.05
done
[ "$READY" -eq 0 ] || fail "daemon never created $ARENA (probe exit $READY)"

# Tail the segment directory while it is still being written: the
# follow loop must observe the directory growing, and its final JSON
# report (emitted when --duration elapses, after the daemon exits)
# must pass the schema check like any one-shot report.
"$STATS" "$SEGS" --follow --interval-ms 250 --duration 8 \
    --json="$WORK/follow.json" > "$WORK/follow.out" 2>/dev/null &
FOLLOW_PID=$!

echo "== 3. clean producers write through leases"
# Wall-clock stamps feed the daemon's drain-lag histogram and the
# offline throughput buckets; distinct categories exercise the
# per-category attribution in the v2 segment headers.
"$PRODUCER" --arena "$ARENA" --events "$EVENTS_PER_PRODUCER" --core 1 \
    --category 2 --wallclock-stamps > "$WORK/p1.out" &
P1=$!
"$PRODUCER" --arena "$ARENA" --events "$EVENTS_PER_PRODUCER" --core 2 \
    --category 5 --wallclock-stamps > "$WORK/p2.out" &
P2=$!

echo "== 4. one producer dies by SIGKILL holding a lease"
"$PRODUCER" --arena "$ARENA" --events 100 --core 3 --hold-lease \
    > "$WORK/holder.out" &
HOLDER=$!
for _ in $(seq 1 100); do
    grep -q HOLDING "$WORK/holder.out" 2>/dev/null && break
    sleep 0.05
done
grep -q HOLDING "$WORK/holder.out" || fail "holder never signaled"
kill -9 "$HOLDER"

wait "$P1" || fail "producer 1 exited nonzero"
wait "$P2" || fail "producer 2 exited nonzero"
[ "$(cat "$WORK/p1.out")" = "$EVENTS_PER_PRODUCER" ] \
    || fail "producer 1 wrote $(cat "$WORK/p1.out") events"
[ "$(cat "$WORK/p2.out")" = "$EVENTS_PER_PRODUCER" ] \
    || fail "producer 2 wrote $(cat "$WORK/p2.out") events"

echo "== 5. metrics snapshot is rewritten mid-run, not only at exit"
# The daemon still has seconds to live; the snapshot must already be
# on disk (rewritten every drain interval) for crash post-mortems.
for _ in $(seq 1 100); do
    [ -s "$METRICS" ] && break
    sleep 0.05
done
kill -0 "$DAEMON_PID" 2>/dev/null \
    || fail "daemon exited before the mid-run metrics check could run"
[ -s "$METRICS" ] || fail "metrics snapshot not rewritten during the run"
[ "$(metric btraced_drains_total)" -ge 1 ] \
    || fail "mid-run metrics snapshot shows no drains"

# A second producer wave, long after the --follow tail's first scan:
# the tail must observe the directory grow between ticks (the first
# wave can drain inside a single 250 ms interval on a fast machine).
sleep 1
"$PRODUCER" --arena "$ARENA" --events "$EVENTS_PER_PRODUCER" --core 4 \
    --category 2 --wallclock-stamps > "$WORK/p3.out" &
P3=$!
wait "$P3" || fail "second-wave producer exited nonzero"
[ "$(cat "$WORK/p3.out")" = "$EVENTS_PER_PRODUCER" ] \
    || fail "second-wave producer wrote $(cat "$WORK/p3.out") events"

wait "$DAEMON_PID" || fail "btraced exited nonzero"

echo "== 6. sweep reclaimed the dead producer"
[ -s "$METRICS" ] || fail "no metrics dump"
[ "$(metric btraced_reclaimed_leases_total)" -ge 1 ] \
    || fail "no lease was reclaimed"
[ "$(metric btraced_cleared_attachments_total)" -ge 1 ] \
    || fail "dead attachment was not cleared"
[ "$(metric btraced_sweeps_total)" -ge 1 ] || fail "no sweep ran"

echo "== 7. segments decode and validate"
ls "$SEGS"/segment-*.btrace >/dev/null 2>&1 || fail "no segments written"
TOTAL=0
for seg in "$SEGS"/segment-*.btrace; do
    "$INSPECT" "$seg" > "$WORK/inspect.out" || fail "cannot decode $seg"
    N=$(awk '/^dump:/ { print int($2) }' "$WORK/inspect.out")
    TOTAL=$((TOTAL + N))
done
# Both clean producers' events must be on disk (the holder's best-
# effort entries and overwrite loss make the exact total workload-
# dependent; the floor is what the contract guarantees under a
# keeping-up consumer).
DRAINED=$(metric btraced_entries_total)
[ "$TOTAL" -eq "$DRAINED" ] \
    || fail "segments hold $TOTAL entries, daemon counted $DRAINED"
[ "$TOTAL" -ge "$EVENTS_PER_PRODUCER" ] \
    || fail "suspiciously few entries on disk: $TOTAL"
# The validating directory walk must agree and find clean v2 headers.
"$INSPECT" --segments "$SEGS" > "$WORK/segments.out" \
    || fail "btrace_inspect --segments rejected the directory"
grep -q "clean close" "$WORK/segments.out" \
    || fail "no segment carries a clean-close v2 header"

echo "== 8. btrace_stats reconciles with the daemon counters"
"$STATS" "$SEGS" --top 64 --json="$WORK/stats.json" \
    > /dev/null || fail "btrace_stats failed"
python3 "$SCRIPTS/check_stats_schema.py" "$WORK/stats.json" \
    || fail "stats JSON fails the schema check"
python3 - "$WORK/stats.json" "$METRICS" <<'PYEOF' || fail "stats/metrics reconciliation"
import json, re, sys

doc = json.load(open(sys.argv[1]))
series = {}
for line in open(sys.argv[2]):
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    series[name] = series.get(name, 0) + float(value)

def total(base):
    return int(sum(v for k, v in series.items()
                   if k == base or k.startswith(base + "{")))

errs = []
# The offline aggregator and the daemon account the same drained
# entries on two independent paths; with retention never having
# deleted a segment they must agree EXACTLY, not approximately.
for got, metric in (
    (doc["totals"]["records"], "btraced_entries_total"),
    (doc["totals"]["payload_bytes"], "btraced_payload_bytes_total"),
    (doc["totals"]["wall_stamped_records"],
     "btraced_lag_sampled_records_total"),
    (doc["retention"]["overwritten_positions"],
     "btraced_overwritten_positions_total"),
    (doc["retention"]["skipped_blocks"], "btraced_skipped_blocks_total"),
    (doc["retention"]["abandoned_blocks"],
     "btraced_abandoned_blocks_total"),
):
    if got != total(metric):
        errs.append("%s: segments say %d, daemon counted %d"
                    % (metric, got, total(metric)))

# Per-producer attribution: every labeled daemon series must match the
# offline per-producer table row for the same writer id.
daemon_rows = {}
for key, value in series.items():
    m = re.match(r'btraced_producer_records_total\{.*producer="(\d+)"',
                 key)
    if m:
        daemon_rows[int(m.group(1))] = int(value)
stats_rows = {r["producer"]: r["records"] for r in doc["producers"]}
if doc["producers_truncated"]:
    errs.append("producer table truncated; raise --top")
elif daemon_rows != stats_rows:
    errs.append("producer rows differ: daemon %r vs stats %r"
                % (daemon_rows, stats_rows))
if len(stats_rows) < 2:
    errs.append("expected at least the two clean producers, got %r"
                % stats_rows)

# Both trace categories the clean producers used must be attributed.
cats = {r["category"] for r in doc["categories"]}
for want in (2, 5):
    if want not in cats:
        errs.append("category %d missing from the report" % want)

if doc["retention"]["header_scan_mismatch"]:
    errs.append("declared/scanned mismatch after a clean run")

for e in errs:
    sys.stderr.write("reconcile: %s\n" % e)
sys.exit(1 if errs else 0)
PYEOF

echo "== 9. the --follow tail observed the directory growing"
wait "$FOLLOW_PID" || fail "btrace_stats --follow exited nonzero"
[ "$(wc -l < "$WORK/follow.out")" -ge 2 ] \
    || fail "follow mode never saw the segment directory grow"
python3 "$SCRIPTS/check_stats_schema.py" "$WORK/follow.json" \
    || fail "follow-mode JSON fails the schema check"
# Tailing a segment the daemon held open must converge on exactly the
# state a post-hoc scan sees — no torn reads, no double counting.
python3 - "$WORK/follow.json" "$WORK/stats.json" <<'PYEOF' || fail "follow/one-shot mismatch"
import json, sys
follow = json.load(open(sys.argv[1]))
oneshot = json.load(open(sys.argv[2]))
if follow["totals"] != oneshot["totals"]:
    sys.stderr.write("follow totals %r != one-shot totals %r\n"
                     % (follow["totals"], oneshot["totals"]))
    sys.exit(1)
PYEOF

echo "== 10. SIGTERM still flushes the metrics snapshot"
TERM_ARENA="$WORK/term.arena"
TERM_METRICS="$WORK/term.prom"
"$BTRACED" --arena "$TERM_ARENA" --create --out "$WORK/term-segs" \
    --blocks 512 --active 64 --block-bytes 4096 --cores 4 \
    --interval-ms 20 --metrics-out "$TERM_METRICS" 2>/dev/null &
TERM_PID=$!
for _ in $(seq 1 100); do
    [ -s "$TERM_ARENA" ] && break
    sleep 0.05
done
sleep 0.3
kill -TERM "$TERM_PID"
wait "$TERM_PID" || fail "btraced exited nonzero after SIGTERM"
[ -s "$TERM_METRICS" ] || fail "SIGTERM exit left no metrics snapshot"
grep -q "btraced_drains_total" "$TERM_METRICS" \
    || fail "SIGTERM metrics snapshot is missing the drain counter"

echo "== 11. a late attach to the finished arena still works"
"$INSPECT" --arena "$ARENA" > /dev/null || fail "arena post-mortem failed"

echo "PASS: multi-process smoke ($TOTAL entries across segments," \
     "$(metric btraced_reclaimed_leases_total) lease(s) reclaimed," \
     "$(grep -o '"producer":' "$WORK/stats.json" | wc -l) producer row(s)" \
     "reconciled)"
