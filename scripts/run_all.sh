#!/bin/sh
# Regenerate the full reproduction: build, tests, every experiment.
# Outputs land in test_output.txt and bench_output.txt at the repo
# root (the files referenced by EXPERIMENTS.md).
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $b" | tee -a bench_output.txt
    "$b" 2>/dev/null | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
