#!/bin/sh
# Regenerate the full reproduction: build, tests, every experiment.
# Outputs land in test_output.txt and bench_output.txt at the repo
# root (the files referenced by EXPERIMENTS.md), and the bench result
# files BENCH_main.json / BENCH_latency.json / BENCH_throughput.json
# are pinned to the repo root with explicit output flags — not left to
# whatever working directory a bench happens to inherit.
#
# Any --obs-* argument (e.g. --obs-interval=0.5 --obs-json=obs.jsonl)
# is forwarded to every bench binary, so one invocation produces the
# observability stream alongside the results; the stream is then
# schema-checked. --quick is forwarded too (CI-sized runs) and skips
# the multi-minute contention sweep entirely — but a *full* run that
# fails to produce BENCH_contention.json fails the script, same
# missing-artifact contract as the other BENCH files. A bench exiting
# nonzero — or a missing BENCH_*.json — fails the script: loudly, at
# the end, after every bench has had its chance to run.
set -eu
cd "$(dirname "$0")/.."
ROOT=$(pwd)

OBS_FLAGS=
OBS_JSON=
QUICK=
for arg in "$@"; do
    case "$arg" in
        --obs-json=*)
            OBS_JSON="${arg#--obs-json=}"
            OBS_FLAGS="$OBS_FLAGS $arg"
            ;;
        --obs-*)
            OBS_FLAGS="$OBS_FLAGS $arg"
            ;;
        --quick)
            OBS_FLAGS="$OBS_FLAGS $arg"
            QUICK=1
            ;;
        *)
            echo "unknown argument: $arg (only --obs-* and --quick" \
                 "are accepted)" >&2
            exit 2
            ;;
    esac
done

cmake -B build -G Ninja
cmake --build build

# Plain POSIX sh has no pipefail: the tee would swallow ctest's exit
# status, so ask ctest itself which tests failed.
ctest --test-dir build 2>&1 | tee test_output.txt
if [ -s build/Testing/Temporary/LastTestsFailed.log ]; then
    echo "FAILED: ctest ($(wc -l < build/Testing/Temporary/LastTestsFailed.log) tests)" >&2
    exit 1
fi

# Fresh outputs per invocation; the benches append to them in turn.
: > bench_output.txt
[ -n "$OBS_JSON" ] && : > "$OBS_JSON"

failures=
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    # Pin each bench's result file to the repo root explicitly. The
    # benches default to writing into their *working directory*, so a
    # run from anywhere else (CI step, build dir, IDE) silently
    # deposits the JSON where nothing reads it.
    OUT_FLAGS=
    case "$(basename "$b")" in
        micro_throughput)
            OUT_FLAGS="--json=$ROOT/BENCH_throughput.json"
            ;;
        micro_latency)
            OUT_FLAGS="--benchmark_out=$ROOT/BENCH_latency.json"
            OUT_FLAGS="$OUT_FLAGS --benchmark_out_format=json"
            ;;
        contention_sweep)
            # A full 1..64-thread sweep is minutes of wall time; quick
            # runs (CI) get their contention point from the dedicated
            # bench-contention job's reduced sweep instead.
            if [ -n "$QUICK" ]; then
                echo "### $b skipped (--quick)" | tee -a bench_output.txt
                echo | tee -a bench_output.txt
                continue
            fi
            OUT_FLAGS="--json=$ROOT/BENCH_contention.json"
            ;;
    esac
    echo "### $b $OBS_FLAGS $OUT_FLAGS" | tee -a bench_output.txt
    # Run to a temp file first: a tee pipeline would swallow the exit
    # status under plain POSIX sh.
    status=0
    # shellcheck disable=SC2086  # flag lists are intentionally split
    "$b" $OBS_FLAGS $OUT_FLAGS > "$tmp" 2>&1 || status=$?
    tee -a bench_output.txt < "$tmp"
    if [ "$status" -ne 0 ]; then
        echo "FAILED: $b exited $status" | tee -a bench_output.txt >&2
        failures="$failures $(basename "$b")"
    fi
    echo | tee -a bench_output.txt
done

if [ -n "$OBS_JSON" ] && [ -s "$OBS_JSON" ]; then
    python3 scripts/check_obs_schema.py "$OBS_JSON" ||
        failures="$failures obs-schema"
fi

# The pipeline-observability smoke (DESIGN.md §13): daemon + producer
# processes, then btrace_stats reconciled exactly against the daemon's
# drain counters and schema-checked. It exercises the tools the
# benches above do not.
echo "### scripts/multiproc_smoke.sh build" | tee -a bench_output.txt
status=0
scripts/multiproc_smoke.sh build > "$tmp" 2>&1 || status=$?
tee -a bench_output.txt < "$tmp"
if [ "$status" -ne 0 ]; then
    echo "FAILED: multiproc_smoke exited $status" \
        | tee -a bench_output.txt >&2
    failures="$failures multiproc-smoke"
fi

# Verify the bench result files landed at the repo root (the paths
# CI uploads and EXPERIMENTS.md references). micro_throughput and
# micro_latency were pinned there explicitly above; table2_main
# writes BENCH_main.json into the working directory, which this
# script pinned to the root with the cd at the top. A stray copy in
# build/ (from a bench run by hand) is swept up as a fallback. A
# missing artifact fails the run — this is exactly the silent
# publication gap this check exists to catch.
ARTIFACTS="BENCH_main.json BENCH_latency.json BENCH_throughput.json"
# The contention sweep only runs (and is only demanded) on full runs.
[ -z "$QUICK" ] && ARTIFACTS="$ARTIFACTS BENCH_contention.json"
for j in $ARTIFACTS; do
    if [ ! -s "$j" ] && [ -s "build/$j" ]; then
        cp "build/$j" "$j"
    fi
    if [ -s "$j" ]; then
        echo "bench results: $j"
    else
        echo "FAILED: $j was not produced" >&2
        failures="$failures $j"
    fi
done

if [ -z "$QUICK" ] && [ -s BENCH_contention.json ]; then
    python3 scripts/check_bench_schema.py BENCH_contention.json ||
        failures="$failures bench-schema"
fi

if [ -n "$failures" ]; then
    echo "FAILED:$failures" >&2
    exit 1
fi
echo "All benches completed."
