#!/usr/bin/env python3
"""Validate a BENCH_contention.json produced by bench/contention_sweep.

Structural checks: required top-level fields, schema version, known
backend and phase names, and per-mode point lists whose thread counts
match the announced sweep in order. Physical checks: thread_counts
strictly increasing, every point did work (total_ops > 0) and passed
its audit, and the per-phase attribution is conservative — the summed
phase time of a point cannot exceed the wall-clock CPU budget
(elapsed_sec x threads) by more than a 10% tolerance, since probes
never nest and each thread runs for at most the measured interval.

Usage: check_bench_schema.py FILE [FILE...]   (exit 0 iff all valid)
"""

import json
import sys

TOP_FIELDS = (
    "bench",
    "schema_version",
    "payload_bytes",
    "lease_entries",
    "seconds_per_point",
    "quick",
    "tsc_ns_per_tick",
    "probe_overhead_ns",
    "thread_counts",
    "backends",
    "perf_counters",
)
BACKENDS = {"private", "shm", "file"}
MODES = ("single", "leased")
PHASES = {"claim", "bump", "publish", "retry", "lease_renew",
          "control_poll"}
PHASE_FIELDS = ("count", "total_ns", "mean_ns", "p50_ns", "p99_ns")
# Attribution budget slack: scheduler preemption inside a probe bills
# wall time, and TSC calibration itself carries ~1% error.
BUDGET_TOLERANCE = 1.10
BUDGET_SLACK_NS = 1e6


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_phase(where, name, ph, errors):
    if not isinstance(ph, dict):
        errors.append("%s: phase %r is not an object" % (where, name))
        return 0.0
    for f in PHASE_FIELDS:
        if not is_num(ph.get(f)) or ph[f] < 0:
            errors.append("%s: phase %r field %r missing or negative"
                          % (where, name, f))
            return 0.0
    if ph["count"] > 0:
        mean = ph["total_ns"] / ph["count"]
        if abs(mean - ph["mean_ns"]) > max(1.0, mean * 0.01):
            errors.append(
                "%s: phase %r mean_ns %.4f inconsistent with "
                "total_ns/count %.4f" % (where, name, ph["mean_ns"], mean))
    elif ph["total_ns"] != 0:
        errors.append("%s: phase %r has time but no samples"
                      % (where, name))
    return float(ph["total_ns"])


def check_point(where, pt, want_threads, errors):
    if not isinstance(pt, dict):
        errors.append("%s: point is not an object" % where)
        return
    if pt.get("threads") != want_threads:
        errors.append("%s: threads %r does not match announced sweep "
                      "position (%d)" % (where, pt.get("threads"),
                                         want_threads))
    for f in ("total_ops", "elapsed_sec", "ops_per_sec", "shared_rmws",
              "rmws_per_op", "cores"):
        if not is_num(pt.get(f)) or pt[f] < 0:
            errors.append("%s: %r missing or negative" % (where, f))
            return
    if pt["total_ops"] <= 0:
        errors.append("%s: total_ops is zero — the point measured "
                      "nothing" % where)
    if pt["elapsed_sec"] <= 0:
        errors.append("%s: elapsed_sec is not positive" % where)
        return
    if pt.get("audit_ok") is not True:
        errors.append("%s: audit_ok is not true" % where)
    if not isinstance(pt.get("pinned"), bool):
        errors.append("%s: 'pinned' missing or not a bool" % where)

    npo = pt.get("ns_per_op")
    if not isinstance(npo, dict):
        errors.append("%s: 'ns_per_op' missing or not an object" % where)
    else:
        for f in ("mean", "p50", "p99"):
            if not is_num(npo.get(f)) or npo[f] < 0:
                errors.append("%s: ns_per_op.%s missing or negative"
                              % (where, f))

    phases = pt.get("phases")
    if not isinstance(phases, dict):
        errors.append("%s: 'phases' missing or not an object" % where)
        return
    unknown = set(phases) - PHASES
    if unknown:
        errors.append("%s: unknown phase(s) %s"
                      % (where, ", ".join(sorted(unknown))))
    missing = PHASES - set(phases)
    if missing:
        errors.append("%s: missing phase(s) %s"
                      % (where, ", ".join(sorted(missing))))
    attributed = sum(check_phase(where, n, ph, errors)
                     for n, ph in phases.items() if n in PHASES)
    budget = pt["elapsed_sec"] * pt["threads"] * 1e9
    if attributed > budget * BUDGET_TOLERANCE + BUDGET_SLACK_NS:
        errors.append(
            "%s: attributed phase time %.0f ns exceeds the wall-clock "
            "budget %.0f ns x %.2f" % (where, attributed, budget,
                                       BUDGET_TOLERANCE))

    perf = pt.get("perf")
    if perf is not None:
        if not isinstance(perf, dict):
            errors.append("%s: 'perf' is not an object" % where)
        else:
            for f in ("cycles_per_op", "cache_misses_per_op",
                      "branch_misses_per_op"):
                if not is_num(perf.get(f)) or perf[f] < 0:
                    errors.append("%s: perf.%s missing or negative"
                                  % (where, f))


def check_file(path):
    errors = []
    try:
        with open(path, "r") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return 0, ["%s: %s" % (path, e)]
    if not isinstance(doc, dict):
        return 0, ["%s: top level is not an object" % path]

    for f in TOP_FIELDS:
        if f not in doc:
            errors.append("%s: missing top-level field %r" % (path, f))
    if errors:
        return 0, errors
    if doc["bench"] != "contention_sweep":
        errors.append("%s: bench is %r, expected 'contention_sweep'"
                      % (path, doc["bench"]))
    if doc["schema_version"] != 1:
        errors.append("%s: unknown schema_version %r"
                      % (path, doc["schema_version"]))
    if not is_num(doc["tsc_ns_per_tick"]) or doc["tsc_ns_per_tick"] <= 0:
        errors.append("%s: tsc_ns_per_tick not positive" % path)
    if doc["perf_counters"] is False and "perf_error" not in doc:
        errors.append("%s: counters off but no perf_error explaining "
                      "why" % path)

    tc = doc["thread_counts"]
    if not isinstance(tc, list) or not tc or \
            not all(isinstance(t, int) and t > 0 for t in tc):
        errors.append("%s: thread_counts must be a non-empty list of "
                      "positive integers" % path)
        return 0, errors
    if any(b <= a for a, b in zip(tc, tc[1:])):
        errors.append("%s: thread_counts not strictly increasing: %r"
                      % (path, tc))

    backends = doc["backends"]
    if not isinstance(backends, list) or not backends:
        errors.append("%s: 'backends' must be a non-empty list" % path)
        return 0, errors
    points = 0
    for bi, be in enumerate(backends):
        bwhere = "%s: backends[%d]" % (path, bi)
        if not isinstance(be, dict):
            errors.append("%s is not an object" % bwhere)
            continue
        name = be.get("backend")
        if name not in BACKENDS:
            errors.append("%s: unknown backend %r" % (bwhere, name))
        modes = be.get("modes")
        if not isinstance(modes, dict):
            errors.append("%s: 'modes' missing or not an object" % bwhere)
            continue
        for mode in MODES:
            pts = modes.get(mode)
            if not isinstance(pts, list):
                errors.append("%s: mode %r missing or not a list"
                              % (bwhere, mode))
                continue
            if len(pts) != len(tc):
                errors.append("%s: mode %r has %d points for %d "
                              "announced thread counts"
                              % (bwhere, mode, len(pts), len(tc)))
            for pi, pt in enumerate(pts):
                if pi < len(tc):
                    check_point("%s.%s[%d]" % (bwhere, mode, pi), pt,
                                tc[pi], errors)
                    points += 1
    return points, errors


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        points, errors = check_file(path)
        for err in errors:
            sys.stderr.write(err + "\n")
        if errors:
            failed = True
        else:
            print("%s: %d points OK" % (path, points))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
