#!/usr/bin/env python3
"""Validate a BTrace observability JSON-lines stream (DESIGN.md §8).

Each line is one sample:

    {"seq": N, "t_sec": F, "labels": {..}, "counters": {..},
     "rates": {..}, "gauges": {..},
     "histograms": {"name": {"count","p50","p99","p999","max"}},
     "health": [{"kind","detail"}, ...]}

Checks per line: required keys, types, histogram summary fields, and
known health kinds. Checks across lines: seq strictly increasing and
counters / t_sec / histogram counts non-decreasing. A seq of 0 starts
a new run (bench binaries append one stream per run to the same file),
which resets the cross-line state.

Usage: check_obs_schema.py FILE [FILE...]   (exit 0 iff all valid)
"""

import json
import sys

HIST_FIELDS = ("count", "p50", "p99", "p999", "max")
HEALTH_KINDS = {
    "stalled_advancement",
    "lease_straggler_wedge",
    "consumer_lag_growth",
}


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_map(obj, key, value_pred, what):
    m = obj.get(key)
    if not isinstance(m, dict):
        return ["'%s' missing or not an object" % key]
    return [
        "%s['%s'] is not %s" % (key, k, what)
        for k, v in m.items()
        if not value_pred(v)
    ]


def check_line(obj):
    errs = []
    if not isinstance(obj.get("seq"), int) or obj["seq"] < 0:
        errs.append("'seq' missing or not a non-negative integer")
    if not is_num(obj.get("t_sec")) or obj["t_sec"] < 0:
        errs.append("'t_sec' missing or not a non-negative number")
    errs += check_map(obj, "labels", lambda v: isinstance(v, str), "a string")
    for key in ("counters", "rates", "gauges"):
        errs += check_map(obj, key, is_num, "a number")
    for name, val in obj.get("rates", {}).items():
        if is_num(val) and val < 0:
            errs.append("rates['%s'] is negative" % name)

    hists = obj.get("histograms")
    if not isinstance(hists, dict):
        errs.append("'histograms' missing or not an object")
    else:
        for name, h in hists.items():
            if not isinstance(h, dict):
                errs.append("histograms['%s'] is not an object" % name)
                continue
            for f in HIST_FIELDS:
                if not is_num(h.get(f)):
                    errs.append("histograms['%s'].%s missing" % (name, f))

    health = obj.get("health")
    if not isinstance(health, list):
        errs.append("'health' missing or not an array")
    else:
        for i, ev in enumerate(health):
            if not isinstance(ev, dict):
                errs.append("health[%d] is not an object" % i)
            elif ev.get("kind") not in HEALTH_KINDS:
                errs.append("health[%d].kind %r unknown" % (i, ev.get("kind")))
    return errs


def check_file(path):
    errors = []
    prev = None  # last sample of the current run
    lines = 0
    try:
        stream = open(path, "r")
    except OSError as e:
        return 0, ["%s: %s" % (path, e)]
    with stream:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                obj = json.loads(line)
            except ValueError as e:
                errors.append("%s:%d: invalid JSON: %s" % (path, lineno, e))
                prev = None
                continue
            for err in check_line(obj):
                errors.append("%s:%d: %s" % (path, lineno, err))
            if not isinstance(obj.get("seq"), int):
                prev = None
                continue
            if obj["seq"] == 0:
                prev = obj  # new run
                continue
            if prev is not None:
                if obj["seq"] != prev["seq"] + 1:
                    errors.append(
                        "%s:%d: seq %d does not follow %d"
                        % (path, lineno, obj["seq"], prev["seq"])
                    )
                if is_num(obj.get("t_sec")) and is_num(prev.get("t_sec")) \
                        and obj["t_sec"] < prev["t_sec"]:
                    errors.append("%s:%d: t_sec went backwards" % (path, lineno))
                for k, v in prev.get("counters", {}).items():
                    cur = obj.get("counters", {}).get(k)
                    if is_num(cur) and is_num(v) and cur < v:
                        errors.append(
                            "%s:%d: counter '%s' regressed (%s -> %s)"
                            % (path, lineno, k, v, cur)
                        )
                for name, h in prev.get("histograms", {}).items():
                    cur = obj.get("histograms", {}).get(name, {})
                    if isinstance(cur, dict) and is_num(cur.get("count")) \
                            and is_num(h.get("count")) \
                            and cur["count"] < h["count"]:
                        errors.append(
                            "%s:%d: histogram '%s' count regressed"
                            % (path, lineno, name)
                        )
            prev = obj
    if lines == 0:
        errors.append("%s: no samples" % path)
    return lines, errors


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        lines, errors = check_file(path)
        for err in errors:
            sys.stderr.write(err + "\n")
        if errors:
            failed = True
        else:
            print("%s: %d samples OK" % (path, lines))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
