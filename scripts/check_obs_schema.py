#!/usr/bin/env python3
"""Validate a BTrace observability JSON-lines stream (DESIGN.md §8).

Each line is one sample:

    {"seq": N, "t_sec": F, "labels": {..}, "counters": {..},
     "rates": {..}, "gauges": {..},
     "histograms": {"name": {"count","p50","p99","p999","max"}},
     "health": [{"kind","detail"}, ...]}

Checks per line: required keys, types, histogram summary fields,
known health kinds, and the btrace_profile_* family (registered as a
block by registerProfilerMetrics, so any profile metric on a line
implies the full set: one histogram per phase, the samples counter,
and both calibration gauges — and no names outside the family).
Checks across lines: seq strictly increasing and
counters / t_sec / histogram counts non-decreasing. A seq of 0 starts
a new run (bench binaries append one stream per run to the same file),
which resets the cross-line state.

With --prom, the files are instead Prometheus text-format exports
(replay --obs-prom / renderPrometheus). Checks: every sample belongs
to a family announced by # HELP and # TYPE (TYPE before samples), and
each native histogram is well-formed — le bounds strictly ascending,
cumulative bucket counts non-decreasing, a +Inf bucket present and
equal to _count, and _sum present.

Usage: check_obs_schema.py [--prom] FILE [FILE...]  (exit 0 iff valid)
"""

import json
import re
import sys

HIST_FIELDS = ("count", "sum", "p50", "p99", "p999", "max")
HEALTH_KINDS = {
    "stalled_advancement",
    "lease_straggler_wedge",
    "consumer_lag_growth",
}

# The cost-attribution profiler family (DESIGN.md §14). Registered as
# one block, so presence of any member implies the whole set.
PROFILE_PHASES = (
    "claim",
    "bump",
    "publish",
    "retry",
    "lease_renew",
    "control_poll",
)
PROFILE_HISTS = {"btrace_profile_%s_ns" % p for p in PROFILE_PHASES}
PROFILE_COUNTERS = {"btrace_profile_samples_total"}
PROFILE_GAUGES = {
    "btrace_profile_ns_per_tick",
    "btrace_profile_probe_overhead_ns",
}


def check_profile_family(obj):
    """The btrace_profile_* names on one sample line, if any."""
    counters = set(obj.get("counters", {}))
    gauges = set(obj.get("gauges", {}))
    hists = set(obj.get("histograms", {}))
    present = {n for n in counters | gauges | hists
               if n.startswith("btrace_profile_")}
    if not present:
        return []
    errs = [
        "unknown btrace_profile_* metric '%s'" % n
        for n in sorted(present
                        - PROFILE_HISTS - PROFILE_COUNTERS
                        - PROFILE_GAUGES)
    ]
    for want, have, where in (
        (PROFILE_HISTS, hists, "histograms"),
        (PROFILE_COUNTERS, counters, "counters"),
        (PROFILE_GAUGES, gauges, "gauges"),
    ):
        for name in sorted(want - have):
            errs.append(
                "profile family incomplete: '%s' missing from %s"
                % (name, where))
    tick = obj.get("gauges", {}).get("btrace_profile_ns_per_tick")
    if is_num(tick) and tick <= 0:
        errs.append("btrace_profile_ns_per_tick is not positive")
    return errs


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_map(obj, key, value_pred, what):
    m = obj.get(key)
    if not isinstance(m, dict):
        return ["'%s' missing or not an object" % key]
    return [
        "%s['%s'] is not %s" % (key, k, what)
        for k, v in m.items()
        if not value_pred(v)
    ]


def check_line(obj):
    errs = []
    if not isinstance(obj.get("seq"), int) or obj["seq"] < 0:
        errs.append("'seq' missing or not a non-negative integer")
    if not is_num(obj.get("t_sec")) or obj["t_sec"] < 0:
        errs.append("'t_sec' missing or not a non-negative number")
    errs += check_map(obj, "labels", lambda v: isinstance(v, str), "a string")
    for key in ("counters", "rates", "gauges"):
        errs += check_map(obj, key, is_num, "a number")
    for name, val in obj.get("rates", {}).items():
        if is_num(val) and val < 0:
            errs.append("rates['%s'] is negative" % name)

    hists = obj.get("histograms")
    if not isinstance(hists, dict):
        errs.append("'histograms' missing or not an object")
    else:
        for name, h in hists.items():
            if not isinstance(h, dict):
                errs.append("histograms['%s'] is not an object" % name)
                continue
            for f in HIST_FIELDS:
                if not is_num(h.get(f)):
                    errs.append("histograms['%s'].%s missing" % (name, f))

    health = obj.get("health")
    if not isinstance(health, list):
        errs.append("'health' missing or not an array")
    else:
        for i, ev in enumerate(health):
            if not isinstance(ev, dict):
                errs.append("health[%d] is not an object" % i)
            elif ev.get("kind") not in HEALTH_KINDS:
                errs.append("health[%d].kind %r unknown" % (i, ev.get("kind")))
    errs += check_profile_family(obj)
    return errs


def check_file(path):
    errors = []
    prev = None  # last sample of the current run
    lines = 0
    try:
        stream = open(path, "r")
    except OSError as e:
        return 0, ["%s: %s" % (path, e)]
    with stream:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                obj = json.loads(line)
            except ValueError as e:
                errors.append("%s:%d: invalid JSON: %s" % (path, lineno, e))
                prev = None
                continue
            for err in check_line(obj):
                errors.append("%s:%d: %s" % (path, lineno, err))
            if not isinstance(obj.get("seq"), int):
                prev = None
                continue
            if obj["seq"] == 0:
                prev = obj  # new run
                continue
            if prev is not None:
                if obj["seq"] != prev["seq"] + 1:
                    errors.append(
                        "%s:%d: seq %d does not follow %d"
                        % (path, lineno, obj["seq"], prev["seq"])
                    )
                if is_num(obj.get("t_sec")) and is_num(prev.get("t_sec")) \
                        and obj["t_sec"] < prev["t_sec"]:
                    errors.append("%s:%d: t_sec went backwards" % (path, lineno))
                for k, v in prev.get("counters", {}).items():
                    cur = obj.get("counters", {}).get(k)
                    if is_num(cur) and is_num(v) and cur < v:
                        errors.append(
                            "%s:%d: counter '%s' regressed (%s -> %s)"
                            % (path, lineno, k, v, cur)
                        )
                for name, h in prev.get("histograms", {}).items():
                    cur = obj.get("histograms", {}).get(name, {})
                    if isinstance(cur, dict) and is_num(cur.get("count")) \
                            and is_num(h.get("count")) \
                            and cur["count"] < h["count"]:
                        errors.append(
                            "%s:%d: histogram '%s' count regressed"
                            % (path, lineno, name)
                        )
            prev = obj
    if lines == 0:
        errors.append("%s: no samples" % path)
    return lines, errors


# One sample line: name, optional {labels}, value. Histogram series
# append _bucket/_sum/_count to the family name and buckets carry an
# le label; the regexes below split those apart.
SAMPLE_RE = re.compile(r'^([A-Za-z_:][A-Za-z0-9_:]*)(\{.*\})?\s+(\S+)$')
LE_RE = re.compile(r'le="([^"]*)"')


def prom_value(text):
    if text == "+Inf":
        return float("inf")
    try:
        return float(text)
    except ValueError:
        return None


def check_prom_file(path):
    """Validate a Prometheus text-format export (replay --obs-prom)."""
    try:
        stream = open(path, "r")
    except OSError as e:
        return 0, ["%s: %s" % (path, e)]

    errors = []
    types = {}          # family -> declared type
    helps = set()       # families with a HELP line
    hist = {}           # family -> {"buckets": [(le, v)], "sum": v, "count": v}
    samples = 0

    def family_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)], suffix
        return name, ""

    with stream:
        for lineno, line in enumerate(stream, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            where = "%s:%d" % (path, lineno)
            if line.startswith("# HELP "):
                parts = line.split(None, 3)
                if len(parts) < 3:
                    errors.append("%s: malformed HELP" % where)
                else:
                    helps.add(parts[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split(None, 4)
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"):
                    errors.append("%s: malformed TYPE" % where)
                    continue
                fam = parts[2]
                if fam in types:
                    errors.append("%s: duplicate TYPE for %r" % (where, fam))
                types[fam] = parts[3]
                if fam not in helps:
                    errors.append("%s: TYPE for %r precedes HELP" % (where, fam))
                if parts[3] == "histogram":
                    hist[fam] = {"buckets": [], "sum": None, "count": None}
                continue
            if line.startswith("#"):
                continue

            m = SAMPLE_RE.match(line)
            if not m:
                errors.append("%s: unparsable sample line" % where)
                continue
            samples += 1
            name, labels, value_text = m.group(1), m.group(2) or "", m.group(3)
            value = prom_value(value_text)
            if value is None:
                errors.append("%s: non-numeric value %r" % (where, value_text))
                continue
            fam, suffix = family_of(name)
            if fam not in types:
                errors.append("%s: sample %r has no preceding TYPE" % (where, name))
                continue
            if fam in hist:
                if suffix == "_bucket":
                    le = LE_RE.search(labels)
                    bound = prom_value(le.group(1)) if le else None
                    if bound is None:
                        errors.append("%s: bucket without an le label" % where)
                    else:
                        hist[fam]["buckets"].append((bound, value, lineno))
                elif suffix == "_sum":
                    hist[fam]["sum"] = value
                elif suffix == "_count":
                    hist[fam]["count"] = value
                else:
                    errors.append("%s: bare sample %r for histogram family"
                                  % (where, name))

    for fam, h in sorted(hist.items()):
        if not h["buckets"]:
            errors.append("%s: histogram %r has no buckets" % (path, fam))
            continue
        bounds = [b[0] for b in h["buckets"]]
        counts = [b[1] for b in h["buckets"]]
        for i in range(1, len(h["buckets"])):
            if bounds[i] <= bounds[i - 1]:
                errors.append("%s:%d: %r le bounds not ascending"
                              % (path, h["buckets"][i][2], fam))
            if counts[i] < counts[i - 1]:
                errors.append("%s:%d: %r cumulative count decreases"
                              % (path, h["buckets"][i][2], fam))
        if bounds[-1] != float("inf"):
            errors.append("%s: histogram %r lacks the +Inf bucket" % (path, fam))
        elif h["count"] is None:
            errors.append("%s: histogram %r lacks _count" % (path, fam))
        elif counts[-1] != h["count"]:
            errors.append("%s: histogram %r +Inf bucket %s != _count %s"
                          % (path, fam, counts[-1], h["count"]))
        if h["sum"] is None:
            errors.append("%s: histogram %r lacks _sum" % (path, fam))

    if samples == 0:
        errors.append("%s: no samples" % path)
    return samples, errors


def main(argv):
    args = argv[1:]
    prom = False
    if args and args[0] == "--prom":
        prom = True
        args = args[1:]
    if not args:
        sys.stderr.write(__doc__)
        return 2
    failed = False
    for path in args:
        lines, errors = check_prom_file(path) if prom else check_file(path)
        for err in errors:
            sys.stderr.write(err + "\n")
        if errors:
            failed = True
        else:
            print("%s: %d samples OK" % (path, lines))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
