#!/usr/bin/env python3
"""Validate a btrace_stats --json document (DESIGN.md §13).

The document is the stable schema (btrace_stats_version 1) that
tools/btrace_stats emits and CI's stats-smoke job consumes:

    {"btrace_stats_version": 1,
     "segments": {"scanned","v1","v2","torn","dirty","unreadable",
                  "rotation_gaps","missing_indices"},
     "totals": {"records","payload_bytes","wall_stamped_records",
                "min_stamp","max_stamp",
                "first_drain_unix_ns","last_drain_unix_ns"},
     "retention": {"declared_records","declared_payload_bytes",
                   "overwritten_positions","skipped_blocks",
                   "abandoned_blocks","torn_tail_bytes",
                   "header_scan_mismatch","retained_ratio"},
     "window_sec": F,
     "categories": [{"category","records","payload_bytes","share"}],
     "categories_truncated": B,
     "producers": [{"producer","records","payload_bytes",
                    "rate_per_sec"}],
     "producers_truncated": B,
     "buckets": [{"start_ns","records","payload_bytes"}]}

Checks: required keys and types, counters non-negative integers,
version breakdown summing to scanned, category shares and the
retained ratio in [0, 1], bucket starts strictly ascending, and the
row sums of the (untruncated) category/producer tables reconciling
with the totals.

Usage: check_stats_schema.py FILE [FILE...]    (exit 0 iff valid)
"""

import json
import sys

SEGMENT_FIELDS = (
    "scanned",
    "v1",
    "v2",
    "torn",
    "dirty",
    "unreadable",
    "rotation_gaps",
    "missing_indices",
)
TOTAL_FIELDS = (
    "records",
    "payload_bytes",
    "wall_stamped_records",
    "min_stamp",
    "max_stamp",
    "first_drain_unix_ns",
    "last_drain_unix_ns",
)
RETENTION_COUNTERS = (
    "declared_records",
    "declared_payload_bytes",
    "overwritten_positions",
    "skipped_blocks",
    "abandoned_blocks",
    "torn_tail_bytes",
)


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_counters(doc, key, fields):
    sec = doc.get(key)
    if not isinstance(sec, dict):
        return ["'%s' missing or not an object" % key], {}
    errs = [
        "%s.%s missing or not a non-negative integer" % (key, f)
        for f in fields
        if not is_count(sec.get(f))
    ]
    return errs, sec


def check_rows(doc, key, id_field, fields):
    rows = doc.get(key)
    if not isinstance(rows, list):
        return ["'%s' missing or not an array" % key], []
    errs = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errs.append("%s[%d] is not an object" % (key, i))
            continue
        if not is_count(row.get(id_field)):
            errs.append("%s[%d].%s missing" % (key, i, id_field))
        for f in fields:
            if f in ("share", "rate_per_sec"):
                if not is_num(row.get(f)) or row[f] < 0:
                    errs.append("%s[%d].%s missing or negative"
                                % (key, i, f))
            elif not is_count(row.get(f)):
                errs.append("%s[%d].%s missing" % (key, i, f))
    if not isinstance(doc.get(key + "_truncated"), bool):
        errs.append("'%s_truncated' missing or not a bool" % key)
    return errs, rows


def check_doc(doc):
    errs = []
    if doc.get("btrace_stats_version") != 1:
        errs.append("'btrace_stats_version' missing or not 1")

    seg_errs, seg = check_counters(doc, "segments", SEGMENT_FIELDS)
    errs += seg_errs
    tot_errs, tot = check_counters(doc, "totals", TOTAL_FIELDS)
    errs += tot_errs
    ret_errs, ret = check_counters(doc, "retention", RETENTION_COUNTERS)
    errs += ret_errs

    if not seg_errs:
        accounted = seg["v1"] + seg["v2"] + seg["unreadable"]
        if accounted != seg["scanned"]:
            errs.append(
                "segments: v1 + v2 + unreadable = %d != scanned %d"
                % (accounted, seg["scanned"])
            )
    if not tot_errs and tot["records"]:
        if tot["min_stamp"] > tot["max_stamp"]:
            errs.append("totals: min_stamp > max_stamp")
        if tot["wall_stamped_records"] > tot["records"]:
            errs.append("totals: wall_stamped_records > records")

    if not isinstance(ret.get("header_scan_mismatch"), bool):
        errs.append("retention.header_scan_mismatch missing")
    ratio = ret.get("retained_ratio")
    if not is_num(ratio) or not 0.0 <= ratio <= 1.0:
        errs.append("retention.retained_ratio missing or not in [0,1]")

    if not is_num(doc.get("window_sec")) or doc["window_sec"] < 0:
        errs.append("'window_sec' missing or negative")

    cat_errs, cats = check_rows(
        doc, "categories", "category",
        ("records", "payload_bytes", "share"))
    errs += cat_errs
    prod_errs, prods = check_rows(
        doc, "producers", "producer",
        ("records", "payload_bytes", "rate_per_sec"))
    errs += prod_errs

    for key, rows in (("categories", cats), ("producers", prods)):
        if errs or doc.get(key + "_truncated"):
            continue
        # Untruncated tables must reconcile with the totals exactly.
        total = sum(r["records"] for r in rows)
        if total != tot.get("records"):
            errs.append(
                "%s rows sum to %d records, totals say %d"
                % (key, total, tot.get("records"))
            )
    if not cat_errs:
        for i, row in enumerate(cats):
            if not 0.0 <= row["share"] <= 1.0:
                errs.append("categories[%d].share not in [0,1]" % i)

    buckets = doc.get("buckets")
    if not isinstance(buckets, list):
        errs.append("'buckets' missing or not an array")
    else:
        prev = -1
        in_bucket = 0
        for i, b in enumerate(buckets):
            if not isinstance(b, dict) or not all(
                is_count(b.get(f))
                for f in ("start_ns", "records", "payload_bytes")
            ):
                errs.append("buckets[%d] malformed" % i)
                continue
            if b["start_ns"] <= prev:
                errs.append("buckets[%d].start_ns not ascending" % i)
            prev = b["start_ns"]
            in_bucket += b["records"]
        if not errs and tot and in_bucket > tot["wall_stamped_records"]:
            errs.append(
                "buckets hold %d records but only %d are wall-stamped"
                % (in_bucket, tot["wall_stamped_records"])
            )
    return errs


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: %s" % (path, e)]
    if not isinstance(doc, dict):
        return ["%s: not a JSON object" % path]
    return ["%s: %s" % (path, e) for e in check_doc(doc)]


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(
            "usage: check_stats_schema.py FILE [FILE...]\n")
        return 2
    errs = []
    for path in argv[1:]:
        errs += check_file(path)
    for e in errs:
        sys.stderr.write(e + "\n")
    if not errs:
        print("ok: %d file(s) valid" % (len(argv) - 1))
    return 1 if errs else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
