# Empty compiler generated dependencies file for btrace_inspect.
# This may be replaced when dependencies are built.
