file(REMOVE_RECURSE
  "CMakeFiles/btrace_inspect.dir/btrace_inspect.cc.o"
  "CMakeFiles/btrace_inspect.dir/btrace_inspect.cc.o.d"
  "btrace_inspect"
  "btrace_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
