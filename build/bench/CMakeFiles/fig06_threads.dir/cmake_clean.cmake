file(REMOVE_RECURSE
  "CMakeFiles/fig06_threads.dir/fig06_threads.cc.o"
  "CMakeFiles/fig06_threads.dir/fig06_threads.cc.o.d"
  "fig06_threads"
  "fig06_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
