# Empty compiler generated dependencies file for fig10_active_blocks.
# This may be replaced when dependencies are built.
