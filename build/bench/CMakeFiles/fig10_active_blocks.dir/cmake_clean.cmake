file(REMOVE_RECURSE
  "CMakeFiles/fig10_active_blocks.dir/fig10_active_blocks.cc.o"
  "CMakeFiles/fig10_active_blocks.dir/fig10_active_blocks.cc.o.d"
  "fig10_active_blocks"
  "fig10_active_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_active_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
