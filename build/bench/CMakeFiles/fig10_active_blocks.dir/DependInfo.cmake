
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_active_blocks.cc" "bench/CMakeFiles/fig10_active_blocks.dir/fig10_active_blocks.cc.o" "gcc" "bench/CMakeFiles/fig10_active_blocks.dir/fig10_active_blocks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/btrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
