# Empty dependencies file for ablation_resize.
# This may be replaced when dependencies are built.
