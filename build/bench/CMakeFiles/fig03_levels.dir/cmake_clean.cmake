file(REMOVE_RECURSE
  "CMakeFiles/fig03_levels.dir/fig03_levels.cc.o"
  "CMakeFiles/fig03_levels.dir/fig03_levels.cc.o.d"
  "fig03_levels"
  "fig03_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
