# Empty compiler generated dependencies file for fig03_levels.
# This may be replaced when dependencies are built.
