file(REMOVE_RECURSE
  "CMakeFiles/ablation_manycore.dir/ablation_manycore.cc.o"
  "CMakeFiles/ablation_manycore.dir/ablation_manycore.cc.o.d"
  "ablation_manycore"
  "ablation_manycore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_manycore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
