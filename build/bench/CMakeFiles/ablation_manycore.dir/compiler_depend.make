# Empty compiler generated dependencies file for ablation_manycore.
# This may be replaced when dependencies are built.
