# Empty compiler generated dependencies file for fig02_categories.
# This may be replaced when dependencies are built.
