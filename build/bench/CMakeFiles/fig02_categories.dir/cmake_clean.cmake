file(REMOVE_RECURSE
  "CMakeFiles/fig02_categories.dir/fig02_categories.cc.o"
  "CMakeFiles/fig02_categories.dir/fig02_categories.cc.o.d"
  "fig02_categories"
  "fig02_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
