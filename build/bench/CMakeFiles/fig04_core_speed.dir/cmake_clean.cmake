file(REMOVE_RECURSE
  "CMakeFiles/fig04_core_speed.dir/fig04_core_speed.cc.o"
  "CMakeFiles/fig04_core_speed.dir/fig04_core_speed.cc.o.d"
  "fig04_core_speed"
  "fig04_core_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_core_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
