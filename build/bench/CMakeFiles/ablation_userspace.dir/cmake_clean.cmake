file(REMOVE_RECURSE
  "CMakeFiles/ablation_userspace.dir/ablation_userspace.cc.o"
  "CMakeFiles/ablation_userspace.dir/ablation_userspace.cc.o.d"
  "ablation_userspace"
  "ablation_userspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_userspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
