# Empty compiler generated dependencies file for ablation_userspace.
# This may be replaced when dependencies are built.
