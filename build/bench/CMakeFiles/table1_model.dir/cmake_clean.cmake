file(REMOVE_RECURSE
  "CMakeFiles/table1_model.dir/table1_model.cc.o"
  "CMakeFiles/table1_model.dir/table1_model.cc.o.d"
  "table1_model"
  "table1_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
