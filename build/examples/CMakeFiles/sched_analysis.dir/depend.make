# Empty dependencies file for sched_analysis.
# This may be replaced when dependencies are built.
