file(REMOVE_RECURSE
  "CMakeFiles/sched_analysis.dir/sched_analysis.cpp.o"
  "CMakeFiles/sched_analysis.dir/sched_analysis.cpp.o.d"
  "sched_analysis"
  "sched_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
