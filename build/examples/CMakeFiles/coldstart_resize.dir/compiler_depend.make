# Empty compiler generated dependencies file for coldstart_resize.
# This may be replaced when dependencies are built.
