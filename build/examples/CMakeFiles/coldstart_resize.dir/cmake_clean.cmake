file(REMOVE_RECURSE
  "CMakeFiles/coldstart_resize.dir/coldstart_resize.cpp.o"
  "CMakeFiles/coldstart_resize.dir/coldstart_resize.cpp.o.d"
  "coldstart_resize"
  "coldstart_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
