file(REMOVE_RECURSE
  "CMakeFiles/export_trace.dir/export_trace.cpp.o"
  "CMakeFiles/export_trace.dir/export_trace.cpp.o.d"
  "export_trace"
  "export_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
