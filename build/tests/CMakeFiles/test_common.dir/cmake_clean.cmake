file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_cacheline.cc.o"
  "CMakeFiles/test_common.dir/common/test_cacheline.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_format.cc.o"
  "CMakeFiles/test_common.dir/common/test_format.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_packed64.cc.o"
  "CMakeFiles/test_common.dir/common/test_packed64.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_panic.cc.o"
  "CMakeFiles/test_common.dir/common/test_panic.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_prng.cc.o"
  "CMakeFiles/test_common.dir/common/test_prng.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cc.o"
  "CMakeFiles/test_common.dir/common/test_stats.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_virtual_memory.cc.o"
  "CMakeFiles/test_common.dir/common/test_virtual_memory.cc.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
