file(REMOVE_RECURSE
  "CMakeFiles/test_core_concurrent.dir/core/test_concurrent.cc.o"
  "CMakeFiles/test_core_concurrent.dir/core/test_concurrent.cc.o.d"
  "test_core_concurrent"
  "test_core_concurrent.pdb"
  "test_core_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
