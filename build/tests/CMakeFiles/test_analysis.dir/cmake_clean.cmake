file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_continuity.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_continuity.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_defects.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_defects.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_export.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_export.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_gaps.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_gaps.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_report.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_report.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_timeline.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_timeline.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
