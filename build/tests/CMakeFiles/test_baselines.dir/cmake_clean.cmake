file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/test_bbq.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_bbq.cc.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_byte_ring.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_byte_ring.cc.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_ftrace_like.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_ftrace_like.cc.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_lttng_like.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_lttng_like.cc.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_vtrace_like.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_vtrace_like.cc.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
