file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_advancement.cc.o"
  "CMakeFiles/test_core.dir/core/test_advancement.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_config.cc.o"
  "CMakeFiles/test_core.dir/core/test_config.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_consumer.cc.o"
  "CMakeFiles/test_core.dir/core/test_consumer.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_epoch.cc.o"
  "CMakeFiles/test_core.dir/core/test_epoch.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_fastpath.cc.o"
  "CMakeFiles/test_core.dir/core/test_fastpath.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_fuzz.cc.o"
  "CMakeFiles/test_core.dir/core/test_fuzz.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_persister.cc.o"
  "CMakeFiles/test_core.dir/core/test_persister.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_properties.cc.o"
  "CMakeFiles/test_core.dir/core/test_properties.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_ratio_log.cc.o"
  "CMakeFiles/test_core.dir/core/test_ratio_log.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_resize.cc.o"
  "CMakeFiles/test_core.dir/core/test_resize.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_stream_reader.cc.o"
  "CMakeFiles/test_core.dir/core/test_stream_reader.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
