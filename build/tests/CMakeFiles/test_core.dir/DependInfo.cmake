
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_advancement.cc" "tests/CMakeFiles/test_core.dir/core/test_advancement.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_advancement.cc.o.d"
  "/root/repo/tests/core/test_config.cc" "tests/CMakeFiles/test_core.dir/core/test_config.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cc.o.d"
  "/root/repo/tests/core/test_consumer.cc" "tests/CMakeFiles/test_core.dir/core/test_consumer.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_consumer.cc.o.d"
  "/root/repo/tests/core/test_epoch.cc" "tests/CMakeFiles/test_core.dir/core/test_epoch.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_epoch.cc.o.d"
  "/root/repo/tests/core/test_fastpath.cc" "tests/CMakeFiles/test_core.dir/core/test_fastpath.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fastpath.cc.o.d"
  "/root/repo/tests/core/test_fuzz.cc" "tests/CMakeFiles/test_core.dir/core/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fuzz.cc.o.d"
  "/root/repo/tests/core/test_persister.cc" "tests/CMakeFiles/test_core.dir/core/test_persister.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_persister.cc.o.d"
  "/root/repo/tests/core/test_properties.cc" "tests/CMakeFiles/test_core.dir/core/test_properties.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_properties.cc.o.d"
  "/root/repo/tests/core/test_ratio_log.cc" "tests/CMakeFiles/test_core.dir/core/test_ratio_log.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ratio_log.cc.o.d"
  "/root/repo/tests/core/test_resize.cc" "tests/CMakeFiles/test_core.dir/core/test_resize.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_resize.cc.o.d"
  "/root/repo/tests/core/test_stream_reader.cc" "tests/CMakeFiles/test_core.dir/core/test_stream_reader.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stream_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/btrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
