# Empty compiler generated dependencies file for btrace_trace.
# This may be replaced when dependencies are built.
