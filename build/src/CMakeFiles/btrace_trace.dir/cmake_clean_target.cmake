file(REMOVE_RECURSE
  "libbtrace_trace.a"
)
