file(REMOVE_RECURSE
  "CMakeFiles/btrace_trace.dir/trace/cost.cc.o"
  "CMakeFiles/btrace_trace.dir/trace/cost.cc.o.d"
  "CMakeFiles/btrace_trace.dir/trace/event.cc.o"
  "CMakeFiles/btrace_trace.dir/trace/event.cc.o.d"
  "CMakeFiles/btrace_trace.dir/trace/tracepoint.cc.o"
  "CMakeFiles/btrace_trace.dir/trace/tracepoint.cc.o.d"
  "CMakeFiles/btrace_trace.dir/trace/tracer.cc.o"
  "CMakeFiles/btrace_trace.dir/trace/tracer.cc.o.d"
  "libbtrace_trace.a"
  "libbtrace_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
