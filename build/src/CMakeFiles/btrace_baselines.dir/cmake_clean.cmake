file(REMOVE_RECURSE
  "CMakeFiles/btrace_baselines.dir/baselines/bbq.cc.o"
  "CMakeFiles/btrace_baselines.dir/baselines/bbq.cc.o.d"
  "CMakeFiles/btrace_baselines.dir/baselines/ftrace_like.cc.o"
  "CMakeFiles/btrace_baselines.dir/baselines/ftrace_like.cc.o.d"
  "CMakeFiles/btrace_baselines.dir/baselines/lttng_like.cc.o"
  "CMakeFiles/btrace_baselines.dir/baselines/lttng_like.cc.o.d"
  "CMakeFiles/btrace_baselines.dir/baselines/vtrace_like.cc.o"
  "CMakeFiles/btrace_baselines.dir/baselines/vtrace_like.cc.o.d"
  "libbtrace_baselines.a"
  "libbtrace_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
