# Empty dependencies file for btrace_baselines.
# This may be replaced when dependencies are built.
