file(REMOVE_RECURSE
  "libbtrace_baselines.a"
)
