
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bbq.cc" "src/CMakeFiles/btrace_baselines.dir/baselines/bbq.cc.o" "gcc" "src/CMakeFiles/btrace_baselines.dir/baselines/bbq.cc.o.d"
  "/root/repo/src/baselines/ftrace_like.cc" "src/CMakeFiles/btrace_baselines.dir/baselines/ftrace_like.cc.o" "gcc" "src/CMakeFiles/btrace_baselines.dir/baselines/ftrace_like.cc.o.d"
  "/root/repo/src/baselines/lttng_like.cc" "src/CMakeFiles/btrace_baselines.dir/baselines/lttng_like.cc.o" "gcc" "src/CMakeFiles/btrace_baselines.dir/baselines/lttng_like.cc.o.d"
  "/root/repo/src/baselines/vtrace_like.cc" "src/CMakeFiles/btrace_baselines.dir/baselines/vtrace_like.cc.o" "gcc" "src/CMakeFiles/btrace_baselines.dir/baselines/vtrace_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/btrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
