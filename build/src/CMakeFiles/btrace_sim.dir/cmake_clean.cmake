file(REMOVE_RECURSE
  "CMakeFiles/btrace_sim.dir/sim/replay.cc.o"
  "CMakeFiles/btrace_sim.dir/sim/replay.cc.o.d"
  "CMakeFiles/btrace_sim.dir/sim/schedule.cc.o"
  "CMakeFiles/btrace_sim.dir/sim/schedule.cc.o.d"
  "libbtrace_sim.a"
  "libbtrace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
