file(REMOVE_RECURSE
  "libbtrace_sim.a"
)
