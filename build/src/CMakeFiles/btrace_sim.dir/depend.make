# Empty dependencies file for btrace_sim.
# This may be replaced when dependencies are built.
