# Empty dependencies file for btrace_workloads.
# This may be replaced when dependencies are built.
