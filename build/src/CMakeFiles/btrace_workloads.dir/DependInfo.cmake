
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/catalog.cc" "src/CMakeFiles/btrace_workloads.dir/workloads/catalog.cc.o" "gcc" "src/CMakeFiles/btrace_workloads.dir/workloads/catalog.cc.o.d"
  "/root/repo/src/workloads/categories.cc" "src/CMakeFiles/btrace_workloads.dir/workloads/categories.cc.o" "gcc" "src/CMakeFiles/btrace_workloads.dir/workloads/categories.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/btrace_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/btrace_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/btrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
