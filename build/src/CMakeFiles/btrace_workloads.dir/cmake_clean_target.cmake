file(REMOVE_RECURSE
  "libbtrace_workloads.a"
)
