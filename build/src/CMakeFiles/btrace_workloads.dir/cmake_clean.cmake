file(REMOVE_RECURSE
  "CMakeFiles/btrace_workloads.dir/workloads/catalog.cc.o"
  "CMakeFiles/btrace_workloads.dir/workloads/catalog.cc.o.d"
  "CMakeFiles/btrace_workloads.dir/workloads/categories.cc.o"
  "CMakeFiles/btrace_workloads.dir/workloads/categories.cc.o.d"
  "CMakeFiles/btrace_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/btrace_workloads.dir/workloads/workload.cc.o.d"
  "libbtrace_workloads.a"
  "libbtrace_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
