file(REMOVE_RECURSE
  "libbtrace_analysis.a"
)
