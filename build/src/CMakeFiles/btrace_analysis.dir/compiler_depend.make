# Empty compiler generated dependencies file for btrace_analysis.
# This may be replaced when dependencies are built.
