file(REMOVE_RECURSE
  "CMakeFiles/btrace_analysis.dir/analysis/continuity.cc.o"
  "CMakeFiles/btrace_analysis.dir/analysis/continuity.cc.o.d"
  "CMakeFiles/btrace_analysis.dir/analysis/defects.cc.o"
  "CMakeFiles/btrace_analysis.dir/analysis/defects.cc.o.d"
  "CMakeFiles/btrace_analysis.dir/analysis/export.cc.o"
  "CMakeFiles/btrace_analysis.dir/analysis/export.cc.o.d"
  "CMakeFiles/btrace_analysis.dir/analysis/gaps.cc.o"
  "CMakeFiles/btrace_analysis.dir/analysis/gaps.cc.o.d"
  "CMakeFiles/btrace_analysis.dir/analysis/report.cc.o"
  "CMakeFiles/btrace_analysis.dir/analysis/report.cc.o.d"
  "CMakeFiles/btrace_analysis.dir/analysis/timeline.cc.o"
  "CMakeFiles/btrace_analysis.dir/analysis/timeline.cc.o.d"
  "libbtrace_analysis.a"
  "libbtrace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
