file(REMOVE_RECURSE
  "libbtrace_core.a"
)
