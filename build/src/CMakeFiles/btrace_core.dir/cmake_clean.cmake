file(REMOVE_RECURSE
  "CMakeFiles/btrace_core.dir/core/btrace.cc.o"
  "CMakeFiles/btrace_core.dir/core/btrace.cc.o.d"
  "CMakeFiles/btrace_core.dir/core/consumer.cc.o"
  "CMakeFiles/btrace_core.dir/core/consumer.cc.o.d"
  "CMakeFiles/btrace_core.dir/core/persister.cc.o"
  "CMakeFiles/btrace_core.dir/core/persister.cc.o.d"
  "CMakeFiles/btrace_core.dir/core/resizer.cc.o"
  "CMakeFiles/btrace_core.dir/core/resizer.cc.o.d"
  "libbtrace_core.a"
  "libbtrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
