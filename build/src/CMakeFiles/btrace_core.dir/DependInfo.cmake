
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/btrace.cc" "src/CMakeFiles/btrace_core.dir/core/btrace.cc.o" "gcc" "src/CMakeFiles/btrace_core.dir/core/btrace.cc.o.d"
  "/root/repo/src/core/consumer.cc" "src/CMakeFiles/btrace_core.dir/core/consumer.cc.o" "gcc" "src/CMakeFiles/btrace_core.dir/core/consumer.cc.o.d"
  "/root/repo/src/core/persister.cc" "src/CMakeFiles/btrace_core.dir/core/persister.cc.o" "gcc" "src/CMakeFiles/btrace_core.dir/core/persister.cc.o.d"
  "/root/repo/src/core/resizer.cc" "src/CMakeFiles/btrace_core.dir/core/resizer.cc.o" "gcc" "src/CMakeFiles/btrace_core.dir/core/resizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/btrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/btrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
