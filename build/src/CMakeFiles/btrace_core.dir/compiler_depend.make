# Empty compiler generated dependencies file for btrace_core.
# This may be replaced when dependencies are built.
