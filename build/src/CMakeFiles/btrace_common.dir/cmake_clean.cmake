file(REMOVE_RECURSE
  "CMakeFiles/btrace_common.dir/common/format.cc.o"
  "CMakeFiles/btrace_common.dir/common/format.cc.o.d"
  "CMakeFiles/btrace_common.dir/common/prng.cc.o"
  "CMakeFiles/btrace_common.dir/common/prng.cc.o.d"
  "CMakeFiles/btrace_common.dir/common/stats.cc.o"
  "CMakeFiles/btrace_common.dir/common/stats.cc.o.d"
  "CMakeFiles/btrace_common.dir/common/virtual_memory.cc.o"
  "CMakeFiles/btrace_common.dir/common/virtual_memory.cc.o.d"
  "libbtrace_common.a"
  "libbtrace_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrace_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
