file(REMOVE_RECURSE
  "libbtrace_common.a"
)
