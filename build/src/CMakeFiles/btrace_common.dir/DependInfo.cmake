
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/format.cc" "src/CMakeFiles/btrace_common.dir/common/format.cc.o" "gcc" "src/CMakeFiles/btrace_common.dir/common/format.cc.o.d"
  "/root/repo/src/common/prng.cc" "src/CMakeFiles/btrace_common.dir/common/prng.cc.o" "gcc" "src/CMakeFiles/btrace_common.dir/common/prng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/btrace_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/btrace_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/virtual_memory.cc" "src/CMakeFiles/btrace_common.dir/common/virtual_memory.cc.o" "gcc" "src/CMakeFiles/btrace_common.dir/common/virtual_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
