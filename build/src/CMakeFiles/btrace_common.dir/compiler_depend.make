# Empty compiler generated dependencies file for btrace_common.
# This may be replaced when dependencies are built.
