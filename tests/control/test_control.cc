/**
 * @file
 * Dynamic control plane tests (DESIGN.md §12): config validation,
 * control-file parsing, deterministic sampling semantics, the
 * ControlContract (zero added shared RMWs), snapshot-swap
 * interleavings (deterministic ControlPreSwap + a TSan hammer), the
 * arena control page protocol across attachments, and the governor's
 * grow/shrink/throttle policy live against a real tracer
 * (GovernorLive).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "control/control_file.h"
#include "control/governor.h"
#include "control/snapshot.h"
#include "core/btrace.h"
#include "core/session.h"
#include "daemon/daemon.h"
#include "sim/schedule.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32,
            std::size_t active = 8, unsigned cores = 4)
{
    BTraceConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

// ---------------------------------------------------------------------------
// ControlConfig validation (satellite: validate() coverage)

TEST(ControlConfigValidate, DefaultsAreValidAndDefault)
{
    ControlConfig c;
    EXPECT_TRUE(c.validate().ok());
    EXPECT_TRUE(c.isDefault());
}

TEST(ControlConfigValidate, RejectsOutOfRangeRates)
{
    ControlConfig c;
    c.sampleRate = -0.1;
    EXPECT_EQ(c.validate().code(), StatusCode::InvalidArgument);
    c.sampleRate = 1.5;
    EXPECT_EQ(c.validate().code(), StatusCode::InvalidArgument);
    c.sampleRate = 0.5;
    EXPECT_TRUE(c.validate().ok());
    EXPECT_FALSE(c.isDefault());
    c.categoryRate[3] = 2.0;
    EXPECT_EQ(c.validate().code(), StatusCode::InvalidArgument);
    c.categoryRate[3] = -1.0;  // inherit: valid
    EXPECT_TRUE(c.validate().ok());
}

TEST(ControlConfigValidate, RejectsFirstKOverBudget)
{
    ControlConfig c;
    c.firstK = 100;
    c.recordBudget = 10;
    EXPECT_EQ(c.validate().code(), StatusCode::InvalidArgument);
    c.recordBudget = 100;
    EXPECT_TRUE(c.validate().ok());
}

TEST(ControlConfigValidate, RejectsMinOverMaxRingBounds)
{
    ControlConfig c;
    c.ringMinBlocks = 64;
    c.ringMaxBlocks = 32;
    EXPECT_EQ(c.validate().code(), StatusCode::InvalidArgument);
    c.ringMaxBlocks = 64;
    EXPECT_TRUE(c.validate().ok());
}

TEST(ControlConfigValidate, RejectsNonPositiveInterval)
{
    ControlConfig c;
    c.intervalSec = 0.0;
    EXPECT_EQ(c.validate().code(), StatusCode::InvalidArgument);
}

TEST(ControlConfigValidate, BTraceConfigCrossChecksRingBounds)
{
    BTraceConfig cfg = smallConfig();  // A = 8, max = numBlocks = 32
    cfg.control.ringMinBlocks = 12;    // not a multiple of A
    EXPECT_EQ(cfg.validate().code(), StatusCode::InvalidArgument);
    cfg.control.ringMinBlocks = 8;
    cfg.control.ringMaxBlocks = 64;  // beyond effectiveMaxBlocks
    EXPECT_EQ(cfg.validate().code(), StatusCode::InvalidArgument);
    cfg.control.ringMaxBlocks = 32;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(ControlConfigValidate, SessionCreateSurfacesControlErrors)
{
    BTraceConfig cfg = smallConfig();
    cfg.control.sampleRate = 7.0;
    auto s = Session::create(cfg);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::InvalidArgument);
    EXPECT_EQ(exitCodeFor(s.status().code()), 2);
}

// ---------------------------------------------------------------------------
// Control-file parser

TEST(ControlFile, ParsesFullGrammar)
{
    auto r = parseControlText("# comment\n"
                              "sample_rate = 0.25\n"
                              "category_rate.3 = 1.0  # keep errors\n"
                              "first_k = 5\n"
                              "interval_sec = 0.5\n"
                              "record_budget = 1000\n"
                              "ring_min_blocks = 8\n"
                              "ring_max_blocks = 32\n"
                              "journal = on\n"
                              "watchdog = off\n");
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const ControlConfig &c = r.value();
    EXPECT_DOUBLE_EQ(c.sampleRate, 0.25);
    EXPECT_DOUBLE_EQ(c.categoryRate[3], 1.0);
    EXPECT_LT(c.categoryRate[0], 0.0);
    EXPECT_EQ(c.firstK, 5u);
    EXPECT_DOUBLE_EQ(c.intervalSec, 0.5);
    EXPECT_EQ(c.recordBudget, 1000u);
    EXPECT_EQ(c.ringMinBlocks, 8u);
    EXPECT_EQ(c.ringMaxBlocks, 32u);
    EXPECT_TRUE(c.journalEnabled);
    EXPECT_FALSE(c.watchdogEnabled);
}

TEST(ControlFile, EmptyTextIsDefaults)
{
    auto r = parseControlText("\n# only comments\n\n");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().isDefault());
}

TEST(ControlFile, RejectsMalformedInput)
{
    EXPECT_EQ(parseControlText("sample_rate 0.5\n").status().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(parseControlText("no_such_knob = 1\n").status().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(parseControlText("sample_rate = abc\n").status().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(
        parseControlText("category_rate.16 = 0.5\n").status().code(),
        StatusCode::InvalidArgument);
    // Parsed fine, rejected by ControlConfig::validate.
    EXPECT_EQ(parseControlText("sample_rate = 2.0\n").status().code(),
              StatusCode::InvalidArgument);
}

TEST(ControlFile, LoadAndWatcher)
{
    const std::string path =
        testing::TempDir() + "/btrace_ctl_test.conf";
    std::remove(path.c_str());
    EXPECT_EQ(loadControlFile(path).status().code(),
              StatusCode::NotFound);

    ControlFileWatcher w(path);
    EXPECT_FALSE(w.changed());  // absent: no change

    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("sample_rate = 0.5\n", f);
    fclose(f);
    EXPECT_FALSE(w.changed());  // first sighting primes the watcher
    auto r = loadControlFile(path);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value().sampleRate, 0.5);

    // A rewrite with different content/size must register.
    f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("sample_rate = 0.25\nfirst_k = 2\n", f);
    fclose(f);
    EXPECT_TRUE(w.changed());
    EXPECT_FALSE(w.changed());  // and only once
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Snapshot semantics

TEST(ControlSnapshot, SamplingIsDeterministicInThreadAndStamp)
{
    ControlDecisionState st;
    ControlConfig c;
    c.sampleRate = 0.3;
    const ControlSnapshot s = ControlSnapshot::build(1, c, &st);
    unsigned recorded = 0;
    for (uint64_t stamp = 1; stamp <= 10000; ++stamp) {
        const bool a = s.shouldRecord(0, 7, stamp);
        const bool b = s.shouldRecord(0, 7, stamp);
        EXPECT_EQ(a, b);  // replay-stable: same inputs, same decision
        recorded += a;
    }
    // The hash should land near the configured rate.
    EXPECT_GT(recorded, 2500u);
    EXPECT_LT(recorded, 3500u);
}

TEST(ControlSnapshot, RateZeroShedsAllButFirstK)
{
    ControlDecisionState st;
    ControlConfig c;
    c.sampleRate = 0.0;
    c.firstK = 3;
    c.intervalSec = 3600.0;  // one epoch for the whole test
    const ControlSnapshot s = ControlSnapshot::build(1, c, &st);
    unsigned recorded = 0;
    for (uint64_t stamp = 1; stamp <= 100; ++stamp)
        recorded += s.shouldRecord(5, 1, stamp);
    EXPECT_EQ(recorded, 3u);  // exactly the guarantee
    EXPECT_EQ(st.firstKGrants.load(), 3u);
    EXPECT_EQ(st.sampledOut.load(), 97u);

    // A different category slot has its own guarantee.
    recorded = 0;
    for (uint64_t stamp = 1; stamp <= 10; ++stamp)
        recorded += s.shouldRecord(6, 1, stamp);
    EXPECT_EQ(recorded, 3u);
}

TEST(ControlSnapshot, CategoryOverrideBeatsGlobalRate)
{
    ControlDecisionState st;
    ControlConfig c;
    c.sampleRate = 0.0;
    c.categoryRate[2] = 1.0;
    const ControlSnapshot s = ControlSnapshot::build(1, c, &st);
    unsigned cat2 = 0, cat0 = 0;
    for (uint64_t stamp = 1; stamp <= 50; ++stamp) {
        cat2 += s.shouldRecord(2, 1, stamp);
        cat0 += s.shouldRecord(0, 1, stamp);
    }
    EXPECT_EQ(cat2, 50u);
    EXPECT_EQ(cat0, 0u);
}

TEST(ControlSnapshot, RecordBudgetCapsAnInterval)
{
    ControlDecisionState st;
    ControlConfig c;
    c.recordBudget = 10;
    c.intervalSec = 3600.0;
    const ControlSnapshot s = ControlSnapshot::build(1, c, &st);
    unsigned recorded = 0;
    for (uint64_t stamp = 1; stamp <= 100; ++stamp)
        recorded += s.shouldRecord(0, 1, stamp);
    EXPECT_EQ(recorded, 10u);
    EXPECT_EQ(st.budgetDenied.load(), 90u);
}

// ---------------------------------------------------------------------------
// ControlContract: the plane must add zero shared RMWs

// Single-thread record path: a permissive-but-non-default snapshot
// (every event passes the gate) must leave sharedRmws byte-identical
// to the controls-at-default run — decision state is plane-owned and
// never charged (same bar as the journal and observer planes).
TEST(ControlContract, SharedRmwsUnchangedSingleThread)
{
    uint64_t rmws[2] = {0, 0};
    const auto run = [&rmws](bool apply_control) {
        BTrace bt(smallConfig());
        if (apply_control) {
            ControlConfig c;
            c.ringMinBlocks = 8;  // non-default => snapshot published
            c.ringMaxBlocks = 32;
            ASSERT_TRUE(bt.applyControl(c).ok());
            ASSERT_NE(bt.controlSnapshot(), nullptr);
        } else {
            EXPECT_EQ(bt.controlSnapshot(), nullptr);
        }
        for (uint64_t s = 1; s <= 500; ++s)
            EXPECT_TRUE(bt.record(0, 1, s, 40));
        rmws[apply_control] = bt.countersSnapshot().sharedRmws;
    };
    run(false);
    run(true);
    EXPECT_EQ(rmws[0], rmws[1]);
}

// Leased fast path, deterministic four-core shape (the acceptance
// criterion's "leased fast path byte-identical" clause).
TEST(ControlContract, SharedRmwsUnchangedLeasedFastPath)
{
    BTraceConfig cfg = smallConfig(1 << 16, 8, 4, 4);

    uint64_t rmws[2] = {0, 0};
    const auto run = [&cfg, &rmws](bool apply_control) {
        BTrace bt(cfg);
        if (apply_control) {
            ControlConfig c;
            c.ringMinBlocks = 4;
            c.ringMaxBlocks = 8;
            ASSERT_TRUE(bt.applyControl(c).ok());
        }
        std::vector<std::thread> threads;
        for (uint16_t core = 0; core < 4; ++core) {
            threads.emplace_back([&bt, core] {
                Lease l = bt.lease(core, core, 16, 20);
                ASSERT_TRUE(l.ok());
                for (uint64_t i = 0; i < 20; ++i) {
                    const uint64_t stamp =
                        uint64_t(core) * 1000 + i + 1;
                    if (!bt.shouldRecord(0, core, stamp))
                        continue;  // the lease-path sampling gate
                    WriteTicket t = l.allocate(16);
                    ASSERT_TRUE(t.ok());
                    writeNormal(t.dst, stamp, core, core, 0, 16);
                    l.confirm(t);
                }
                l.close();
            });
        }
        for (std::thread &t : threads)
            t.join();
        rmws[apply_control] = bt.countersSnapshot().sharedRmws;
    };
    run(false);
    run(true);
    EXPECT_EQ(rmws[0], rmws[1]);
}

// Throttle, then restore to all-defaults: the restored version must
// publish a null snapshot again, so the fast path is back to the
// contract cost.
TEST(ControlContract, RestoredDefaultsPublishNullAgain)
{
    BTrace bt(smallConfig());
    ControlConfig c;
    c.sampleRate = 0.5;
    ASSERT_TRUE(bt.applyControl(c).ok());
    EXPECT_NE(bt.controlSnapshot(), nullptr);
    EXPECT_EQ(bt.controlPlane().version(), 2u);

    ASSERT_TRUE(bt.applyControl(ControlConfig{}).ok());
    EXPECT_EQ(bt.controlSnapshot(), nullptr);
    EXPECT_EQ(bt.controlPlane().version(), 3u);
    EXPECT_EQ(bt.controlPlane().history().size(), 3u);
}

// ---------------------------------------------------------------------------
// Snapshot swap: deterministic interleaving + TSan hammer

#if defined(BTRACE_ENABLE_TEST_HOOKS)
TEST(ControlSwap, PreSwapWindowServesOldVersion)
{
    BTrace bt(smallConfig());

    PreemptionInjector inj;
    inj.armPark(hooks::YieldPoint::ControlPreSwap);

    ControlConfig c;
    c.sampleRate = 0.0;  // the new version sheds everything
    std::thread applier([&] { ASSERT_TRUE(bt.applyControl(c).ok()); });
    ASSERT_TRUE(inj.awaitParked(hooks::YieldPoint::ControlPreSwap));

    // The applier is parked *between* building the snapshot and the
    // pointer swap: the old version (defaults) must still serve.
    EXPECT_EQ(bt.controlSnapshot(), nullptr);
    for (uint64_t s = 1; s <= 50; ++s)
        EXPECT_TRUE(bt.shouldRecord(0, 1, s));
    EXPECT_EQ(bt.controlPlane().decisions().sampledOut.load(), 0u);

    inj.release(hooks::YieldPoint::ControlPreSwap);
    applier.join();

    // Swap done: rate 0 now sheds on the same inputs.
    ASSERT_NE(bt.controlSnapshot(), nullptr);
    for (uint64_t s = 1; s <= 50; ++s)
        EXPECT_FALSE(bt.shouldRecord(0, 1, s));
    EXPECT_EQ(bt.controlPlane().decisions().sampledOut.load(), 50u);
}
#endif // BTRACE_ENABLE_TEST_HOOKS

// Four producer threads recording through the lease fast path while a
// fifth hammers applyControl(): no torn snapshots, no lost writes, no
// data races (this is the binary CI runs under TSan).
TEST(ControlSwap, ApplyControlHammerAgainstLeasedProducers)
{
    BTraceConfig cfg = smallConfig(1 << 14, 32, 8, 4);
    BTrace bt(cfg);

    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    std::atomic<uint64_t> written{0};
    for (uint16_t core = 0; core < 4; ++core) {
        producers.emplace_back([&, core] {
            uint64_t stamp = uint64_t(core) << 32;
            while (!stop.load(std::memory_order_relaxed)) {
                Lease l = bt.lease(core, core, 16, 32);
                ASSERT_TRUE(l.ok());
                for (int i = 0; i < 32; ++i) {
                    ++stamp;
                    if (!bt.shouldRecord(uint16_t(i & 15),
                                         core, stamp))
                        continue;
                    WriteTicket t = l.allocate(16);
                    if (!t.ok())
                        break;
                    writeNormal(t.dst, stamp, core, core, 0, 16);
                    l.confirm(t);
                    written.fetch_add(1, std::memory_order_relaxed);
                }
                l.close();
            }
        });
    }

    std::thread applier([&] {
        ControlConfig cfgs[3];
        cfgs[0].sampleRate = 0.5;
        cfgs[1].sampleRate = 0.05;
        cfgs[1].firstK = 2;
        // cfgs[2] stays defaults (null snapshot).
        for (int i = 0; i < 300; ++i)
            ASSERT_TRUE(bt.applyControl(cfgs[i % 3]).ok());
    });
    applier.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : producers)
        t.join();

    EXPECT_EQ(bt.controlPlane().version(), 301u);
    EXPECT_GT(written.load(), 0u);
}

// ---------------------------------------------------------------------------
// Arena control page: cross-attachment propagation

TEST(ControlPage, ApplyPropagatesAcrossFileAttachments)
{
    const std::string path =
        testing::TempDir() + "/btrace_ctl_page.arena";
    std::remove(path.c_str());

    BTraceConfig cfg = smallConfig();
    cfg.storage = StorageKind::File;
    cfg.arenaPath = path;
    {
        auto owner_e = Session::create(cfg);
        ASSERT_TRUE(owner_e.ok()) << owner_e.status().toString();
        Session owner = std::move(owner_e.value());

        auto peer_e = Session::attachFile(path);
        ASSERT_TRUE(peer_e.ok()) << peer_e.status().toString();
        Session peer = std::move(peer_e.value());

        // Both start at the owner's version 1 (defaults).
        EXPECT_EQ(owner->controlPlane().version(), 1u);
        EXPECT_EQ(peer->controlPlane().version(), 1u);
        EXPECT_FALSE(peer.pollControl());  // nothing new

        // Owner retunes; the peer adopts it on poll.
        ControlConfig c;
        c.sampleRate = 0.125;
        c.firstK = 4;
        ASSERT_TRUE(owner.applyControl(c).ok());
        EXPECT_TRUE(peer.pollControl());
        EXPECT_EQ(peer->controlPlane().version(), 2u);
        EXPECT_DOUBLE_EQ(peer->controlPlane().current().sampleRate,
                         0.125);
        EXPECT_EQ(peer->controlPlane().current().firstK, 4u);
        EXPECT_NE(peer->controlSnapshot(), nullptr);

        // And the other direction: the peer can retune the owner.
        ASSERT_TRUE(peer.applyControl(ControlConfig{}).ok());
        EXPECT_TRUE(owner.pollControl());
        EXPECT_EQ(owner->controlPlane().version(), 3u);
        EXPECT_EQ(owner->controlSnapshot(), nullptr);

        // A late attachment adopts the newest version at bind time.
        auto late = Session::attachFile(path);
        ASSERT_TRUE(late.ok());
        EXPECT_EQ(late.value()->controlPlane().version(), 3u);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Governor

TEST(Governor, PolicyGrowThrottleRestoreShrink)
{
    GovernorOptions opts;
    opts.shrinkIntervals = 2;
    opts.restoreIntervals = 2;
    Governor g(opts);

    GovernorInput in;
    in.activeBlocks = 4;
    in.numBlocks = 8;
    in.ringMinBlocks = 8;
    in.ringMaxBlocks = 16;
    in.sampleRate = 1.0;

    // Loss pressure below the ceiling: grow.
    in.overwrittenDelta = 50;
    in.recordedDelta = 100;
    in.occupancy = 1.0;
    auto d = g.evaluate(in);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, GovernorAction::GrowRing);
    EXPECT_EQ(d[0].arg, 16u);

    // Loss pressure at the ceiling: throttle before dropping.
    in.numBlocks = 16;
    d = g.evaluate(in);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, GovernorAction::ThrottleSampling);
    EXPECT_DOUBLE_EQ(controlFxToRate(d[0].arg), 0.5);
    in.sampleRate = 0.5;

    // Pressure clears: after restoreIntervals calm intervals the rate
    // comes back.
    in.overwrittenDelta = 0;
    in.occupancy = 0.5;
    EXPECT_TRUE(g.evaluate(in).empty());
    d = g.evaluate(in);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, GovernorAction::RestoreSampling);
    EXPECT_DOUBLE_EQ(controlFxToRate(d[0].arg), 1.0);
    in.sampleRate = 1.0;

    // Sustained idleness: shrink toward the floor.
    in.occupancy = 0.01;
    EXPECT_TRUE(g.evaluate(in).empty());
    d = g.evaluate(in);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].action, GovernorAction::ShrinkRing);
    EXPECT_EQ(d[0].arg, 8u);

    // At the floor: idle intervals decide nothing.
    in.numBlocks = 8;
    EXPECT_TRUE(g.evaluate(in).empty());
    EXPECT_TRUE(g.evaluate(in).empty());
    EXPECT_TRUE(g.evaluate(in).empty());
}

// The acceptance scenario, live: an undersized ring under a lagging
// consumer shows loss pressure, the governor grows it, loss recovers;
// sustained idleness then shrinks it back. The leased fast path's
// sharedRmws stays byte-identical to a controls-at-default run for
// the identical pre-actuation workload.
TEST(Governor, GovernorLive)
{
    BTraceConfig cfg = smallConfig(256, 8, 4, 4);
    cfg.maxBlocks = 32;
    cfg.control.ringMinBlocks = 8;
    cfg.control.ringMaxBlocks = 32;

    // The identical leased workload against a controls-at-default
    // tracer of the same geometry: the contract reference.
    const auto leasedWorkload = [](BTrace &bt) {
        uint64_t stamp = 0;
        for (int batch = 0; batch < 40; ++batch) {
            Lease l = bt.lease(uint16_t(batch % 4), 1, 24, 16);
            ASSERT_TRUE(l.ok());
            for (int i = 0; i < 16; ++i) {
                ++stamp;
                if (!bt.shouldRecord(0, 1, stamp))
                    continue;
                WriteTicket t = l.allocate(24);
                if (!t.ok())
                    break;
                writeNormal(t.dst, stamp, l.core(), 1, 0, 24);
                l.confirm(t);
            }
            l.close();
        }
    };

    uint64_t baseline_rmws = 0;
    {
        BTraceConfig ref = smallConfig(256, 8, 4, 4);
        ref.maxBlocks = 32;
        BTrace bare(ref);
        leasedWorkload(bare);
        baseline_rmws = bare.countersSnapshot().sharedRmws;
    }

    auto s = Session::create(cfg);
    ASSERT_TRUE(s.ok()) << s.status().toString();
    BTrace &bt = s.value().tracer();
    // Ring bounds are non-default, so a snapshot is live — and the
    // leased fast path must still cost exactly the same shared RMWs.
    ASSERT_NE(bt.controlSnapshot(), nullptr);
    leasedWorkload(bt);
    EXPECT_EQ(bt.countersSnapshot().sharedRmws, baseline_rmws);

    DaemonOptions dopts;
    dopts.outDir = testing::TempDir() + "/btrace_governor_live";
    auto daemon = ConsumerDaemon::make(std::move(s.value()), dopts);
    ASSERT_TRUE(daemon.ok()) << daemon.status().toString();
    ConsumerDaemon &d = *daemon.value();
    ASSERT_TRUE(d.drainOnce().ok());  // catch the cursor up

    EventJournal journal;
    bt.attachJournal(&journal);
    Governor gov;
    MetricsRegistry registry;
    gov.registerMetrics(registry);

    const auto governOnce = [&](uint64_t overwritten_delta,
                                uint64_t recorded_delta,
                                double occupancy) {
        GovernorInput in;
        in.overwrittenDelta = overwritten_delta;
        in.recordedDelta = recorded_delta;
        in.occupancy = occupancy;
        in.numBlocks = bt.numBlocks();
        in.activeBlocks = bt.config().activeBlocks;
        in.ringMinBlocks = cfg.control.ringMinBlocks;
        in.ringMaxBlocks = cfg.control.ringMaxBlocks;
        in.sampleRate =
            bt.controlPlane().current().sampleRate;
        gov.actuate(bt, gov.evaluate(in));
    };

    // Interval 1: overrun the undersized ring without draining, then
    // drain — the cursor reports the overwritten positions.
    const DaemonStats before = d.stats();
    for (uint64_t s2 = 1; s2 <= 2000; ++s2)
        ASSERT_TRUE(bt.record(uint16_t(s2 % 4), 1, s2, 64));
    ASSERT_TRUE(d.drainOnce().ok());
    const uint64_t overwritten =
        d.stats().overwrittenPositions - before.overwrittenPositions;
    ASSERT_GT(overwritten, 0u) << "undersized ring did not overrun";

    ASSERT_EQ(bt.numBlocks(), 8u);
    governOnce(overwritten, 2000, 1.0);
    EXPECT_EQ(bt.numBlocks(), 16u) << "governor did not grow the ring";
    EXPECT_EQ(gov.tallies().grows, 1u);

    // Interval 2: same offered load into the grown ring, drained
    // eagerly — the loss rate recovers.
    const DaemonStats mid = d.stats();
    for (uint64_t s2 = 10000; s2 <= 10500; ++s2) {
        ASSERT_TRUE(bt.record(uint16_t(s2 % 4), 1, s2, 64));
        if (s2 % 10 == 0) {
            ASSERT_TRUE(d.drainOnce().ok());
        }
    }
    ASSERT_TRUE(d.drainOnce().ok());
    const uint64_t overwritten2 =
        d.stats().overwrittenPositions - mid.overwrittenPositions;
    EXPECT_EQ(overwritten2, 0u) << "loss did not recover after grow";
    governOnce(overwritten2, 500, 0.5);
    EXPECT_EQ(bt.numBlocks(), 16u);

    // Intervals 3..5: sustained idleness shrinks back to the floor.
    governOnce(0, 10, 0.01);
    governOnce(0, 10, 0.01);
    governOnce(0, 10, 0.01);
    EXPECT_EQ(bt.numBlocks(), 8u) << "governor did not shrink";
    EXPECT_EQ(gov.tallies().shrinks, 1u);

    // Every actuation was journaled and is visible in the metrics.
    unsigned journaled = 0;
    for (const JournalRecord &r : journal.snapshot())
        if (r.kind == JournalEventKind::GovernorDecision)
            ++journaled;
    EXPECT_EQ(journaled, 2u);
    bool saw_ring_gauge = false;
    for (const MetricValue &m : registry.collect().metrics)
        if (m.name == "btrace_governor_ring_blocks") {
            saw_ring_gauge = true;
            EXPECT_DOUBLE_EQ(m.value, 8.0);
        }
    EXPECT_TRUE(saw_ring_gauge);

    bt.attachJournal(nullptr);
}

TEST(Governor, ActuationRefusalIsTalliedNotFatal)
{
    Governor gov;
    BTrace bt(smallConfig());
    // Target outside [A, maxBlocks]: tryResize declines with a Status
    // and the governor tallies the refusal.
    gov.actuate(bt, {{GovernorAction::GrowRing, 1000, "test"}});
    EXPECT_EQ(gov.tallies().failedResizes, 1u);
    EXPECT_EQ(bt.numBlocks(), 32u);

    EXPECT_EQ(bt.tryResize(12).code(), StatusCode::InvalidArgument);
    EXPECT_TRUE(bt.tryResize(16).ok());
    EXPECT_EQ(bt.numBlocks(), 16u);
}

} // namespace
} // namespace btrace
