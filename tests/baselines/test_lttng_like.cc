/**
 * @file
 * Unit tests for the LTTng-like baseline: sub-buffer switching,
 * drop-newest behind a preempted writer, and retention volume.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/lttng_like.h"

namespace btrace {
namespace {

LttngConfig
smallConfig(std::size_t capacity = 1u << 20, unsigned cores = 2,
            unsigned subs = 4)
{
    LttngConfig cfg;
    cfg.capacityBytes = capacity;
    cfg.cores = cores;
    cfg.subBuffers = subs;
    return cfg;
}

TEST(LttngLike, BasicRoundTrip)
{
    LttngLike lt(smallConfig());
    for (uint64_t s = 1; s <= 50; ++s)
        ASSERT_TRUE(lt.record(uint16_t(s % 2), 1, s, 16));
    const Dump d = lt.dump();
    ASSERT_EQ(d.entries.size(), 50u);
    for (const DumpEntry &e : d.entries)
        EXPECT_TRUE(e.payloadOk);
}

TEST(LttngLike, RetainsRecentSubBuffersAcrossWraps)
{
    LttngLike lt(smallConfig(256u << 10, 1, 8));
    const uint64_t total = 50000;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(lt.record(0, 1, s, 64));
    const Dump d = lt.dump();
    double bytes = 0;
    uint64_t newest = 0, oldest = ~0ull;
    for (const DumpEntry &e : d.entries) {
        bytes += e.size;
        newest = std::max(newest, e.stamp);
        oldest = std::min(oldest, e.stamp);
    }
    EXPECT_EQ(newest, total);
    // Retention approaches capacity; the recycled sub-buffer loses at
    // most 2/S of it at any instant.
    EXPECT_GT(bytes, 0.6 * double(lt.capacityBytes()));
    // Retained range is contiguous without preemption.
    EXPECT_EQ(d.entries.size(), newest - oldest + 1);
}

TEST(LttngLike, DropsNewestBehindPreemptedWriter)
{
    // Hold an unconfirmed write; keep writing until the ring wraps
    // onto the poisoned sub-buffer: the incoming event must be
    // dropped (not blocked, not overwritten).
    LttngLike lt(smallConfig(64u << 10, 1, 2));
    WriteTicket held = lt.allocate(0, 7, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);

    bool dropped = false;
    for (int i = 0; i < 5000 && !dropped; ++i) {
        WriteTicket t = lt.allocate(0, 1, 64);
        if (t.status == AllocStatus::Drop) {
            dropped = true;
            break;
        }
        ASSERT_EQ(t.status, AllocStatus::Ok);
        writeNormal(t.dst, uint64_t(i + 100), 0, 1, 0, 64);
        lt.confirm(t);
    }
    EXPECT_TRUE(dropped);
    EXPECT_GT(lt.droppedCount(), 0u);

    // After the writer confirms, recording proceeds again.
    writeNormal(held.dst, 1, 0, 7, 0, 16);
    lt.confirm(held);
    bool ok = false;
    for (int i = 0; i < 100 && !ok; ++i)
        ok = lt.record(0, 1, uint64_t(90000 + i), 64);
    EXPECT_TRUE(ok);
}

TEST(LttngLike, PerCoreIsolation)
{
    // A poisoned sub-buffer on core 0 must not affect core 1.
    LttngLike lt(smallConfig(64u << 10, 2, 2));
    WriteTicket held = lt.allocate(0, 7, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);
    for (uint64_t s = 1; s <= 2000; ++s)
        ASSERT_TRUE(lt.record(1, 1, s, 64));
    writeNormal(held.dst, 9999, 0, 7, 0, 16);
    lt.confirm(held);
}

TEST(LttngLike, CostCarriesFrameworkOverhead)
{
    LttngLike lt(smallConfig());
    WriteTicket t = lt.allocate(0, 1, 16);
    ASSERT_EQ(t.status, AllocStatus::Ok);
    EXPECT_GE(t.cost, CostModel::def().lttngFramework);
    writeNormal(t.dst, 1, 0, 1, 0, 16);
    lt.confirm(t);
}

TEST(LttngLike, ConcurrentProducersIntegrity)
{
    LttngLike lt(smallConfig(1u << 20, 4, 4));
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> written{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < 4; ++c) {
        workers.emplace_back([&, c]() {
            for (int i = 0; i < 5000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                if (lt.record(uint16_t(c), c, s, 48))
                    written.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    const Dump d = lt.dump();
    for (const DumpEntry &e : d.entries) {
        ASSERT_TRUE(e.payloadOk);
        ASSERT_LE(e.stamp, stamp.load());
    }
    EXPECT_GT(written.load(), 0u);
}

} // namespace
} // namespace btrace
