/** @file Unit tests for the overwrite-oldest byte ring. */

#include <gtest/gtest.h>

#include "baselines/byte_ring.h"

namespace btrace {
namespace {

void
put(ByteRing &ring, uint64_t stamp, std::size_t payload)
{
    uint8_t *dst = ring.reserve(EntryLayout::normalSize(payload));
    writeNormal(dst, stamp, 0, 0, 0, payload);
}

std::vector<DumpEntry>
entries(const ByteRing &ring)
{
    std::vector<DumpEntry> out;
    ring.collect(out);
    return out;
}

TEST(ByteRing, EmptyCollectsNothing)
{
    ByteRing ring(1024);
    EXPECT_TRUE(entries(ring).empty());
    EXPECT_EQ(ring.usedBytes(), 0u);
}

TEST(ByteRing, SingleEntryRoundTrips)
{
    ByteRing ring(1024);
    put(ring, 7, 16);
    const auto es = entries(ring);
    ASSERT_EQ(es.size(), 1u);
    EXPECT_EQ(es[0].stamp, 7u);
    EXPECT_TRUE(es[0].payloadOk);
}

TEST(ByteRing, OverwritesOldestWhenFull)
{
    ByteRing ring(256);  // fits 6 x 40-byte entries
    for (uint64_t s = 1; s <= 20; ++s)
        put(ring, s, 16);
    const auto es = entries(ring);
    ASSERT_FALSE(es.empty());
    // The newest entry must be present; the oldest must be gone.
    EXPECT_EQ(es.back().stamp, 20u);
    EXPECT_GT(es.front().stamp, 1u);
    // Entries are in order with no holes.
    for (std::size_t i = 1; i < es.size(); ++i)
        EXPECT_EQ(es[i].stamp, es[i - 1].stamp + 1);
}

TEST(ByteRing, PadsWrapPointWithDummy)
{
    ByteRing ring(256);
    // 40-byte entries: 6 fit, the 7th wraps; retained entries must
    // still parse cleanly across many wraps.
    for (uint64_t s = 1; s <= 1000; ++s)
        put(ring, s, 16);
    const auto es = entries(ring);
    for (std::size_t i = 1; i < es.size(); ++i)
        EXPECT_EQ(es[i].stamp, es[i - 1].stamp + 1);
    EXPECT_EQ(es.back().stamp, 1000u);
}

TEST(ByteRing, MixedSizesKeepTiling)
{
    ByteRing ring(1024);
    for (uint64_t s = 1; s <= 500; ++s)
        put(ring, s, (s * 13) % 200);
    const auto es = entries(ring);
    ASSERT_FALSE(es.empty());
    EXPECT_EQ(es.back().stamp, 500u);
    for (const DumpEntry &e : es)
        EXPECT_TRUE(e.payloadOk);
}

TEST(ByteRing, UsedBytesNeverExceedCapacity)
{
    ByteRing ring(512);
    for (uint64_t s = 1; s <= 300; ++s) {
        put(ring, s, (s * 7) % 100);
        ASSERT_LE(ring.usedBytes(), ring.capacity());
    }
}

TEST(ByteRing, FullCapacityEntry)
{
    ByteRing ring(256);
    put(ring, 1, 256 - EntryLayout::normalHeaderBytes);
    const auto es = entries(ring);
    ASSERT_EQ(es.size(), 1u);
    EXPECT_EQ(es[0].size, 256u);
}

} // namespace
} // namespace btrace
