/**
 * @file
 * Unit tests for the BBQ-style global-buffer baseline: near-perfect
 * retention, blocking behind unfinished blocks, and contention-aware
 * costs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "baselines/bbq.h"

namespace btrace {
namespace {

BbqConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32)
{
    BbqConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.cores = 4;
    return cfg;
}

TEST(Bbq, SingleWriterRoundTrips)
{
    Bbq q(smallConfig());
    for (uint64_t s = 1; s <= 10; ++s)
        ASSERT_TRUE(q.record(0, 1, s, 16));
    const Dump d = q.dump();
    ASSERT_EQ(d.entries.size(), 10u);
    for (const DumpEntry &e : d.entries)
        EXPECT_TRUE(e.payloadOk);
}

TEST(Bbq, RetainsNewestAcrossWraps)
{
    Bbq q(smallConfig());
    const uint64_t total = 3000;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(q.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = q.dump();
    uint64_t newest = 0, oldest = ~0ull;
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(stamps.insert(e.stamp).second);
        newest = std::max(newest, e.stamp);
        oldest = std::min(oldest, e.stamp);
    }
    EXPECT_EQ(newest, total);
    // Global FIFO: retained stamps are a contiguous suffix.
    EXPECT_EQ(stamps.size(), newest - oldest + 1);
}

TEST(Bbq, NearFullUtilization)
{
    // Unlike per-core buffers, one producer can use ~everything.
    Bbq q(smallConfig());
    for (uint64_t s = 1; s <= 2000; ++s)
        ASSERT_TRUE(q.record(0, 1, s, 16));
    const Dump d = q.dump();
    double bytes = 0;
    for (const DumpEntry &e : d.entries)
        bytes += e.size;
    EXPECT_GT(bytes, 0.85 * double(q.capacityBytes()));
}

TEST(Bbq, BlocksBehindUnconfirmedWriter)
{
    Bbq q(smallConfig(256, 4));  // tiny ring wraps fast
    WriteTicket held = q.allocate(1, 9, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);

    // Fill the remaining blocks; the wrap must hit the held block and
    // report Retry (blocking), never Drop and never a hang.
    bool saw_retry = false;
    for (int i = 0; i < 200 && !saw_retry; ++i) {
        WriteTicket t = q.allocate(0, 1, 16);
        if (t.status == AllocStatus::Retry) {
            saw_retry = true;
            break;
        }
        ASSERT_EQ(t.status, AllocStatus::Ok);
        writeNormal(t.dst, uint64_t(i + 1), 0, 1, 0, 16);
        q.confirm(t);
    }
    EXPECT_TRUE(saw_retry);
    EXPECT_GT(q.blockedCount(), 0u);

    // Confirming the held write unblocks the queue.
    writeNormal(held.dst, 999, 1, 9, 0, 16);
    q.confirm(held);
    EXPECT_TRUE(q.record(0, 1, 1000, 16));
}

TEST(Bbq, SharedLineCostExceedsCoreLocalCost)
{
    Bbq q(smallConfig());
    ASSERT_TRUE(q.record(0, 1, 1, 16));
    WriteTicket t = q.allocate(0, 1, 16);
    ASSERT_EQ(t.status, AllocStatus::Ok);
    const CostModel &m = CostModel::def();
    EXPECT_GE(t.cost, m.tscRead + m.atomicShared);
    writeNormal(t.dst, 2, 0, 1, 0, 16);
    q.confirm(t);
}

TEST(Bbq, ContentionChargedWithWritersInFlight)
{
    Bbq q(smallConfig());
    // Open several unconfirmed writes, then measure a new allocate.
    std::vector<WriteTicket> open;
    for (int i = 0; i < 6; ++i) {
        WriteTicket t = q.allocate(uint16_t(i % 4), uint32_t(i), 16);
        ASSERT_EQ(t.status, AllocStatus::Ok);
        open.push_back(t);
    }
    WriteTicket probe = q.allocate(3, 99, 16);
    ASSERT_EQ(probe.status, AllocStatus::Ok);

    Bbq quiet(smallConfig());
    ASSERT_TRUE(quiet.record(0, 1, 1, 16));
    WriteTicket probe2 = quiet.allocate(0, 1, 16);
    EXPECT_GT(probe.cost, probe2.cost);

    for (std::size_t i = 0; i < open.size(); ++i) {
        writeNormal(open[i].dst, 100 + i, open[i].core,
                    open[i].thread, 0, 16);
        q.confirm(open[i]);
    }
    writeNormal(probe.dst, 990, 3, 99, 0, 16);
    q.confirm(probe);
    writeNormal(probe2.dst, 2, 0, 1, 0, 16);
    quiet.confirm(probe2);
}

TEST(Bbq, ConcurrentProducersIntegrity)
{
    Bbq q(smallConfig(1024, 64));
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < 4; ++c) {
        workers.emplace_back([&, c]() {
            for (int i = 0; i < 10000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                q.record(uint16_t(c), c, s, 48);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    const Dump d = q.dump();
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : d.entries) {
        ASSERT_TRUE(e.payloadOk);
        ASSERT_TRUE(stamps.insert(e.stamp).second);
        ASSERT_LE(e.stamp, stamp.load());
    }
}

} // namespace
} // namespace btrace
