/**
 * @file
 * Unit tests for the VampirTrace-like per-thread baseline: capacity
 * split across threads, per-thread FIFO, and the 1/T utilization
 * collapse under thread churn.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/vtrace_like.h"

namespace btrace {
namespace {

VtraceConfig
smallConfig(std::size_t capacity = 256u << 10, unsigned threads = 16)
{
    VtraceConfig cfg;
    cfg.capacityBytes = capacity;
    cfg.expectedThreads = threads;
    return cfg;
}

TEST(VtraceLike, BasicRoundTrip)
{
    VtraceLike vt(smallConfig());
    for (uint64_t s = 1; s <= 100; ++s)
        ASSERT_TRUE(vt.record(0, uint32_t(s % 4), s, 16));
    const Dump d = vt.dump();
    ASSERT_EQ(d.entries.size(), 100u);
    EXPECT_EQ(vt.threadBufferCount(), 4u);
}

TEST(VtraceLike, PerThreadFifoContiguity)
{
    VtraceLike vt(smallConfig(64u << 10, 16));
    for (uint64_t s = 1; s <= 20000; ++s)
        ASSERT_TRUE(vt.record(0, uint32_t(s % 4), s, 16));
    const Dump d = vt.dump();
    uint64_t prev[4] = {0, 0, 0, 0};
    for (const DumpEntry &e : d.entries) {
        const auto t = e.stamp % 4;
        if (prev[t] != 0) {
            EXPECT_EQ(e.stamp, prev[t] + 4);
        }
        prev[t] = e.stamp;
    }
}

TEST(VtraceLike, ThreadChurnShattersRetention)
{
    // Hundreds of short-lived threads, each active in bursts (as real
    // thread churn is): each keeps only the newest slice of its own
    // bursts, so the merged trace shatters (Table 1: utilization 1/T).
    VtraceLike vt(smallConfig(256u << 10, 128));
    const uint64_t total = 50000;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(vt.record(0, uint32_t((s / 50) % 500), s, 64));
    const Dump d = vt.dump();
    EXPECT_EQ(vt.threadBufferCount(), 500u);
    // Each of the 500 threads holds only a 2 KB slice: newest-per-
    // thread survives but the global trace is shredded.
    std::vector<uint8_t> retained(total + 1, 0);
    for (const DumpEntry &e : d.entries)
        retained[e.stamp] = 1;
    uint64_t fragments = 0;
    bool in_run = false;
    for (uint64_t s = 1; s <= total; ++s) {
        if (retained[s] && !in_run)
            ++fragments;
        in_run = retained[s];
    }
    EXPECT_GT(fragments, 100u);
}

TEST(VtraceLike, NeverBlocksOrDrops)
{
    VtraceLike vt(smallConfig());
    for (int i = 0; i < 10000; ++i) {
        WriteTicket t = vt.allocate(uint16_t(i % 4), uint32_t(i % 64),
                                    32);
        ASSERT_EQ(t.status, AllocStatus::Ok);
        writeNormal(t.dst, uint64_t(i + 1), uint16_t(i % 4),
                    uint32_t(i % 64), 0, 32);
        vt.confirm(t);
    }
}

TEST(VtraceLike, MinimumPerThreadBufferEnforced)
{
    VtraceConfig cfg;
    cfg.capacityBytes = 16u << 10;
    cfg.expectedThreads = 1000;  // would be 16 bytes each
    cfg.minPerThread = 2048;
    VtraceLike vt(cfg);
    ASSERT_TRUE(vt.record(0, 1, 1, 16));
    const Dump d = vt.dump();
    EXPECT_EQ(d.entries.size(), 1u);
}

TEST(VtraceLike, CostCarriesFrameworkOverhead)
{
    VtraceLike vt(smallConfig());
    ASSERT_TRUE(vt.record(0, 1, 1, 16));  // warm up the buffer
    WriteTicket t = vt.allocate(0, 1, 16);
    ASSERT_EQ(t.status, AllocStatus::Ok);
    EXPECT_GE(t.cost, CostModel::def().vtraceFramework);
    writeNormal(t.dst, 2, 0, 1, 0, 16);
    vt.confirm(t);
}

TEST(VtraceLike, ConcurrentThreadsOwnTheirRings)
{
    VtraceLike vt(smallConfig(1u << 20, 8));
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned k = 0; k < 4; ++k) {
        workers.emplace_back([&, k]() {
            for (int i = 0; i < 10000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                // Thread id == worker id: each real thread writes only
                // its own ring, as VampirTrace does.
                ASSERT_TRUE(vt.record(uint16_t(k % 2), k, s, 48));
            }
        });
    }
    for (auto &w : workers)
        w.join();
    const Dump d = vt.dump();
    for (const DumpEntry &e : d.entries)
        ASSERT_TRUE(e.payloadOk);
}

} // namespace
} // namespace btrace
