/**
 * @file
 * Unit tests for the ftrace-like per-core baseline: 1/C capacity
 * split, per-core FIFO retention, and the preempt-off discipline.
 */

#include <gtest/gtest.h>

#include "baselines/ftrace_like.h"

namespace btrace {
namespace {

FtraceConfig
smallConfig(std::size_t capacity = 64u << 10, unsigned cores = 4)
{
    FtraceConfig cfg;
    cfg.capacityBytes = capacity;
    cfg.cores = cores;
    return cfg;
}

TEST(FtraceLike, DeclaresPreemptionDisabled)
{
    FtraceLike f(smallConfig());
    EXPECT_TRUE(f.disablesPreemption());
    EXPECT_EQ(f.name(), "ftrace");
}

TEST(FtraceLike, CapacitySplitsEvenly)
{
    FtraceLike f(smallConfig(64u << 10, 4));
    EXPECT_EQ(f.capacityBytes(), 64u << 10);
}

TEST(FtraceLike, PerCoreRoundTrips)
{
    FtraceLike f(smallConfig());
    for (uint64_t s = 1; s <= 100; ++s)
        ASSERT_TRUE(f.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = f.dump();
    ASSERT_EQ(d.entries.size(), 100u);
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(e.payloadOk);
        EXPECT_EQ(e.core, e.stamp % 4);
    }
}

TEST(FtraceLike, SkewedProducerWastesOtherCoresCapacity)
{
    // The Fig 5 pathology: one hot core overwrites its 1/C slice
    // while the other slices sit idle.
    FtraceLike f(smallConfig(64u << 10, 4));
    const uint64_t total = 4000;  // ~160 KB >> 16 KB per-core slice
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(f.record(0, 1, s, 16));
    const Dump d = f.dump();
    double bytes = 0;
    for (const DumpEntry &e : d.entries)
        bytes += e.size;
    // Retention is capped by the single per-core slice (1/C).
    EXPECT_LT(bytes, 1.1 * double(f.capacityBytes()) / 4);
    // Newest survives (per-core FIFO).
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries)
        newest = std::max(newest, e.stamp);
    EXPECT_EQ(newest, total);
}

TEST(FtraceLike, PerCoreFifoIsContiguousPerCore)
{
    FtraceLike f(smallConfig(32u << 10, 2));
    for (uint64_t s = 1; s <= 5000; ++s)
        ASSERT_TRUE(f.record(uint16_t(s % 2), 1, s, 16));
    const Dump d = f.dump();
    // Per core, stamps step by 2 with no holes.
    uint64_t prev[2] = {0, 0};
    for (const DumpEntry &e : d.entries) {
        if (prev[e.core] != 0) {
            EXPECT_EQ(e.stamp, prev[e.core] + 2);
        }
        prev[e.core] = e.stamp;
    }
}

TEST(FtraceLike, InterleavedCoresCreateGapsInGlobalOrder)
{
    // The global stamp sequence interleaves cores; once one core
    // wraps, the merged trace has periodic holes — the
    // "indistinguishable small gaps" of Fig 1b.
    FtraceLike f(smallConfig(16u << 10, 4));
    const uint64_t total = 8000;
    for (uint64_t s = 1; s <= total; ++s) {
        // Core 0 produces 4x more than the others.
        const uint16_t core = (s % 8 < 5) ? 0 : uint16_t(1 + s % 3);
        ASSERT_TRUE(f.record(core, 1, s, 16));
    }
    const Dump d = f.dump();
    std::vector<uint8_t> retained(total + 1, 0);
    for (const DumpEntry &e : d.entries)
        retained[e.stamp] = 1;
    uint64_t fragments = 0;
    bool in_run = false;
    for (uint64_t s = 1; s <= total; ++s) {
        if (retained[s] && !in_run)
            ++fragments;
        in_run = retained[s];
    }
    EXPECT_GT(fragments, 50u);
}

TEST(FtraceLike, CostIncludesPreemptToggle)
{
    FtraceLike f(smallConfig());
    WriteTicket t = f.allocate(0, 1, 16);
    ASSERT_EQ(t.status, AllocStatus::Ok);
    const CostModel &m = CostModel::def();
    EXPECT_GE(t.cost, m.preemptToggle + m.tscRead);
    writeNormal(t.dst, 1, 0, 1, 0, 16);
    f.confirm(t);
}

TEST(FtraceLike, NeverDropsOrRetries)
{
    FtraceLike f(smallConfig());
    for (int i = 0; i < 10000; ++i) {
        WriteTicket t = f.allocate(uint16_t(i % 4), 1, 32);
        ASSERT_EQ(t.status, AllocStatus::Ok);
        writeNormal(t.dst, uint64_t(i + 1), uint16_t(i % 4), 1, 0, 32);
        f.confirm(t);
    }
}

} // namespace
} // namespace btrace
