/** @file Unit tests for the 21-workload catalog (§5 "Workloads"). */

#include <gtest/gtest.h>

#include <set>

#include "workloads/catalog.h"

namespace btrace {
namespace {

TEST(Catalog, Has21Workloads)
{
    EXPECT_EQ(workloadCatalog().size(), 21u);
}

TEST(Catalog, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (const Workload &w : workloadCatalog()) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_TRUE(names.insert(w.name).second);
    }
}

TEST(Catalog, LookupByNameRoundTrips)
{
    for (const Workload &w : workloadCatalog())
        EXPECT_EQ(workloadByName(w.name).name, w.name);
}

TEST(CatalogDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(workloadByName("NoSuchWorkload"), "unknown workload");
}

TEST(Catalog, RatesWithinFig4Envelope)
{
    // Fig 4's y-axis tops out at 18k entries/s per core.
    for (const Workload &w : workloadCatalog()) {
        for (unsigned c = 0; c < kCores; ++c) {
            EXPECT_GE(w.ratePerSec[c], 0.0);
            EXPECT_LE(w.ratePerSec[c], 19000.0) << w.name;
        }
    }
}

TEST(Catalog, LockScreenIdlesBigAndMiddleCores)
{
    // Fig 1a / Fig 4: at lock screen, big and middle cores are idle.
    const Workload &w = workloadByName("LockScr");
    double little = 0, mid = 0, big = 0;
    for (unsigned c = 0; c < kCores; ++c) {
        switch (coreClassOf(c)) {
          case CoreClass::Little: little += w.ratePerSec[c]; break;
          case CoreClass::Middle: mid += w.ratePerSec[c]; break;
          case CoreClass::Big: big += w.ratePerSec[c]; break;
        }
    }
    EXPECT_GT(little / 4, 10 * (mid / 6));
    EXPECT_GT(little / 4, 10 * (big / 2));
}

TEST(Catalog, Video1IsHighlySkewedTowardsLittleCores)
{
    const Workload &w = workloadByName("Video-1");
    const double little = w.ratePerSec[0];
    const double big = w.ratePerSec[10];
    EXPECT_GT(little, 5 * big);
}

TEST(Catalog, ImIsRoughlyUniform)
{
    const Workload &w = workloadByName("IM");
    double lo = 1e18, hi = 0;
    for (unsigned c = 0; c < kCores; ++c) {
        lo = std::min(lo, w.ratePerSec[c]);
        hi = std::max(hi, w.ratePerSec[c]);
    }
    EXPECT_LT(hi / lo, 2.0);
}

TEST(Catalog, ThreadCountsMatchFig6Scale)
{
    // Fig 6: up to ~400 distinct threads per core over 30 s, ~30
    // active per second under load.
    for (const Workload &w : workloadCatalog()) {
        for (unsigned c = 0; c < kCores; ++c) {
            EXPECT_GE(w.totalThreads[c], 1u);
            EXPECT_LE(w.totalThreads[c], 800u) << w.name;
            EXPECT_LE(w.activeThreads[c], w.totalThreads[c]) << w.name;
        }
    }
    const Workload &heavy = workloadByName("eShop-2");
    EXPECT_GT(heavy.totalThreads[0], 300u);
    EXPECT_GT(heavy.activeThreads[0], 25u);
}

TEST(Catalog, EShop2HeaviestOversubscription)
{
    // The paper singles out eShop-2 for BBQ's latency blow-up.
    uint32_t eshop2 = workloadByName("eShop-2").activeThreads[0];
    for (const Workload &w : workloadCatalog())
        EXPECT_LE(w.activeThreads[0], eshop2) << w.name;
}

TEST(Catalog, Fig4SelectionPresent)
{
    const auto ws = fig4Workloads();
    EXPECT_EQ(ws.size(), 6u);
    EXPECT_EQ(ws[0].name, "Desktop");
    EXPECT_EQ(ws[4].name, "LockScr");
}

TEST(Catalog, ProducedVolumeExceedsTable2Buffer)
{
    // Heavy workloads must overflow the 12 MB buffer over 30 s several
    // times, otherwise retention metrics are trivial. LockScr is the
    // intentional exception (mostly-idle phone, Fig 1a): it must still
    // overflow the *per-core* 1/C slices so per-core tracers wrap.
    for (const Workload &w : workloadCatalog()) {
        if (w.name == "LockScr") {
            const double little_bytes =
                w.ratePerSec[0] *
                ((1.0 - w.burstiness) + w.burstiness * w.burstLowFactor) *
                w.durationSec * (24.0 + w.meanPayloadBytes());
            EXPECT_GT(little_bytes, 2.0 * (12u << 20) / kCores);
            continue;
        }
        EXPECT_GT(w.expectedBytes(), 2.0 * (12u << 20)) << w.name;
    }
}

TEST(Catalog, DeterministicConstruction)
{
    const Workload &a = workloadByName("Browser");
    const Workload &b = workloadByName("Browser");
    for (unsigned c = 0; c < kCores; ++c)
        EXPECT_DOUBLE_EQ(a.ratePerSec[c], b.ratePerSec[c]);
}

} // namespace
} // namespace btrace
