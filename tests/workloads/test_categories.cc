/** @file Unit tests for the atrace category catalog (Fig 2 / Fig 3). */

#include <gtest/gtest.h>

#include <set>

#include "workloads/categories.h"

namespace btrace {
namespace {

TEST(Categories, NonEmptyWithUniqueNamesAndIds)
{
    const auto &cats = categoryCatalog();
    EXPECT_GE(cats.size(), 15u);
    std::set<std::string> names;
    std::set<uint16_t> ids;
    for (const TraceCategory &c : cats) {
        EXPECT_TRUE(names.insert(c.name).second);
        EXPECT_TRUE(ids.insert(c.id).second);
        EXPECT_GT(c.mbPerCoreMin, 0.0);
        EXPECT_GE(c.level, 1);
        EXPECT_LE(c.level, 3);
    }
}

TEST(Categories, LevelsAreCumulative)
{
    const double l1 = levelRateMbPerCoreMin(1);
    const double l2 = levelRateMbPerCoreMin(2);
    const double l3 = levelRateMbPerCoreMin(3);
    EXPECT_GT(l1, 0.0);
    EXPECT_GT(l2, l1);
    EXPECT_GT(l3, l2);
}

TEST(Categories, Level3MatchesFig3Volume)
{
    // Fig 3: level-3 production reaches ~450 MB over 30 s on 12 cores,
    // i.e. ~75 MB/core/min.
    const double l3 = levelRateMbPerCoreMin(3);
    EXPECT_NEAR(l3, 75.0, 10.0);
    const double total30s_mb = l3 * 12 / 2.0;
    EXPECT_NEAR(total30s_mb, 450.0, 60.0);
}

TEST(Categories, BinderCategoriesAreLevel1)
{
    for (const TraceCategory &c : categoryCatalog()) {
        if (c.name.rfind("binder", 0) == 0) {
            EXPECT_EQ(c.level, 1) << c.name;
        }
    }
}

TEST(Categories, SchedAndIrqAreLevel2)
{
    int found = 0;
    for (const TraceCategory &c : categoryCatalog()) {
        if (c.name == "sched" || c.name == "irq") {
            EXPECT_EQ(c.level, 2) << c.name;
            ++found;
        }
    }
    EXPECT_EQ(found, 2);
}

TEST(LevelWorkload, AggregateRateMatchesLevelVolume)
{
    for (int level = 1; level <= 3; ++level) {
        const Workload w = levelWorkload(level);
        const double entry_bytes = 24.0 + w.meanPayloadBytes();
        const double bytes_per_sec = w.totalRatePerSec() * entry_bytes;
        const double mb_per_core_min =
            bytes_per_sec * 60 / (1024.0 * 1024.0) / kCores;
        EXPECT_NEAR(mb_per_core_min, levelRateMbPerCoreMin(level),
                    levelRateMbPerCoreMin(level) * 0.01)
            << "level " << level;
    }
}

TEST(LevelWorkload, SkewMatchesFig4Classes)
{
    const Workload w = levelWorkload(3);
    EXPECT_GT(w.ratePerSec[0], 3.0 * w.ratePerSec[4]);   // little >> mid
    EXPECT_GT(w.ratePerSec[4], 2.0 * w.ratePerSec[10]);  // mid >> big
}

TEST(LevelWorkload, CoreCountRespected)
{
    const Workload w = levelWorkload(2, 4);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(w.ratePerSec[c], 0.0);
    for (unsigned c = 4; c < kCores; ++c)
        EXPECT_EQ(w.ratePerSec[c], 0.0);
}

TEST(LevelWorkloadDeath, RejectsBadLevel)
{
    EXPECT_DEATH(levelWorkload(0), "level");
    EXPECT_DEATH(levelWorkload(4), "level");
}

} // namespace
} // namespace btrace
