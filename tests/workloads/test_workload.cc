/** @file Unit tests for the Workload model arithmetic. */

#include <gtest/gtest.h>

#include "common/prng.h"
#include "workloads/workload.h"

namespace btrace {
namespace {

TEST(CoreClassOf, MatchesPaperTopology)
{
    // 4 little + 6 middle + 2 big (Fig 4).
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(coreClassOf(c), CoreClass::Little);
    for (unsigned c = 4; c < 10; ++c)
        EXPECT_EQ(coreClassOf(c), CoreClass::Middle);
    for (unsigned c = 10; c < 12; ++c)
        EXPECT_EQ(coreClassOf(c), CoreClass::Big);
}

TEST(Workload, TotalRateSumsCores)
{
    Workload w;
    for (unsigned c = 0; c < kCores; ++c)
        w.ratePerSec[c] = 100.0;
    EXPECT_DOUBLE_EQ(w.totalRatePerSec(), 1200.0);
}

TEST(Workload, MeanPayloadMatchesEmpiricalSample)
{
    Workload w;
    w.payloadLo = 16.0;
    w.payloadHi = 512.0;
    w.payloadShape = 1.1;
    const double analytic = w.meanPayloadBytes();

    Prng rng(123);
    double sum = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        sum += rng.heavyTail(w.payloadLo, w.payloadHi, w.payloadShape);
    EXPECT_NEAR(analytic, sum / n, analytic * 0.03);
}

TEST(Workload, MeanPayloadShapeOneSpecialCase)
{
    Workload w;
    w.payloadLo = 10.0;
    w.payloadHi = 100.0;
    w.payloadShape = 1.0;
    const double m = w.meanPayloadBytes();
    EXPECT_GT(m, w.payloadLo);
    EXPECT_LT(m, w.payloadHi);
}

TEST(Workload, ExpectedBytesScalesWithRateAndDuration)
{
    Workload w;
    w.ratePerSec[0] = 1000.0;
    w.burstiness = 0.0;
    w.durationSec = 30.0;
    const double base = w.expectedBytes();

    Workload w2 = w;
    w2.durationSec = 60.0;
    EXPECT_NEAR(w2.expectedBytes(), 2 * base, base * 1e-9);

    const Workload w3 = w.scaled(2.0);
    EXPECT_NEAR(w3.expectedBytes(), 2 * base, base * 1e-9);
}

TEST(Workload, BurstinessReducesExpectedBytes)
{
    Workload w;
    w.ratePerSec[0] = 1000.0;
    w.burstiness = 0.0;
    const double full = w.expectedBytes();
    w.burstiness = 0.5;
    w.burstLowFactor = 0.2;
    EXPECT_LT(w.expectedBytes(), full);
    EXPECT_NEAR(w.expectedBytes(), full * 0.6, full * 1e-9);
}

TEST(Workload, ScaledCopiesEverythingElse)
{
    Workload w;
    w.name = "X";
    w.ratePerSec[3] = 50.0;
    w.totalThreads[3] = 7;
    const Workload s = w.scaled(3.0);
    EXPECT_EQ(s.name, "X");
    EXPECT_DOUBLE_EQ(s.ratePerSec[3], 150.0);
    EXPECT_EQ(s.totalThreads[3], 7u);
}

} // namespace
} // namespace btrace
