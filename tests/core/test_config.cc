/** @file Unit tests for BTraceConfig validation and derived values. */

#include <gtest/gtest.h>

#include "core/config.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    return cfg;
}

TEST(BTraceConfig, DefaultsMatchPaperProduction)
{
    const BTraceConfig cfg;
    EXPECT_EQ(cfg.blockSize, 4096u);       // one page (§5)
    EXPECT_EQ(cfg.activeBlocks, 16u * 12); // A = 16 x C (§5.1)
    EXPECT_EQ(cfg.cores, 12u);             // 12-core phone (§5)
    EXPECT_EQ(cfg.capacityBytes(), 12u << 20);  // 12 MB buffer (§5)
    cfg.validate();
}

TEST(BTraceConfig, DerivedValues)
{
    const BTraceConfig cfg = smallConfig();
    EXPECT_EQ(cfg.ratio(), 4u);
    EXPECT_EQ(cfg.capacityBytes(), 32u * 256);
    EXPECT_EQ(cfg.effectiveMaxBlocks(), 32u);
    EXPECT_EQ(cfg.maxPayloadBytes(), 256u - 16 - 24);
}

TEST(BTraceConfig, MaxBlocksOverridesCeiling)
{
    BTraceConfig cfg = smallConfig();
    cfg.maxBlocks = 64;
    EXPECT_EQ(cfg.effectiveMaxBlocks(), 64u);
    cfg.validate();
}

using BTraceConfigDeath = ::testing::Test;

TEST(BTraceConfigDeath, RejectsNonMultipleBlocks)
{
    BTraceConfig cfg = smallConfig();
    cfg.numBlocks = 33;
    EXPECT_DEATH(cfg.validate(), "multiple of A");
}

TEST(BTraceConfigDeath, RejectsTooFewActiveBlocks)
{
    BTraceConfig cfg = smallConfig();
    cfg.activeBlocks = 2;  // fewer than cores
    EXPECT_DEATH(cfg.validate(), "cores");
}

TEST(BTraceConfigDeath, RejectsMisalignedBlockSize)
{
    BTraceConfig cfg = smallConfig();
    cfg.blockSize = 100;
    EXPECT_DEATH(cfg.validate(), "blockSize");
}

TEST(BTraceConfigDeath, RejectsBadMaxBlocks)
{
    BTraceConfig cfg = smallConfig();
    cfg.maxBlocks = 33;  // not a multiple of A
    EXPECT_DEATH(cfg.validate(), "maxBlocks");
}

} // namespace
} // namespace btrace
