/** @file Unit tests for BTraceConfig validation and derived values. */

#include <gtest/gtest.h>

#include "core/btrace.h"
#include "core/config.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    return cfg;
}

TEST(BTraceConfig, DefaultsMatchPaperProduction)
{
    const BTraceConfig cfg;
    EXPECT_EQ(cfg.blockSize, 4096u);       // one page (§5)
    EXPECT_EQ(cfg.activeBlocks, 16u * 12); // A = 16 x C (§5.1)
    EXPECT_EQ(cfg.cores, 12u);             // 12-core phone (§5)
    EXPECT_EQ(cfg.capacityBytes(), 12u << 20);  // 12 MB buffer (§5)
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(BTraceConfig, DerivedValues)
{
    const BTraceConfig cfg = smallConfig();
    EXPECT_EQ(cfg.ratio(), 4u);
    EXPECT_EQ(cfg.capacityBytes(), 32u * 256);
    EXPECT_EQ(cfg.effectiveMaxBlocks(), 32u);
    EXPECT_EQ(cfg.maxPayloadBytes(), 256u - 16 - 24);
}

TEST(BTraceConfig, MaxBlocksOverridesCeiling)
{
    BTraceConfig cfg = smallConfig();
    cfg.maxBlocks = 64;
    EXPECT_EQ(cfg.effectiveMaxBlocks(), 64u);
    EXPECT_TRUE(cfg.validate().ok());
}

// validate() reports the first violated rule as InvalidArgument with
// the offending field in the message (the old behavior — dying inside
// validate() — moved to the BTrace constructor; Session::create
// surfaces the Status to the caller instead).

TEST(BTraceConfigValidate, RejectsNonMultipleBlocks)
{
    BTraceConfig cfg = smallConfig();
    cfg.numBlocks = 33;
    const Status st = cfg.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("multiple of A"), std::string::npos);
}

TEST(BTraceConfigValidate, RejectsTooFewActiveBlocks)
{
    BTraceConfig cfg = smallConfig();
    cfg.activeBlocks = 2;  // fewer than cores
    const Status st = cfg.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("cores"), std::string::npos);
}

TEST(BTraceConfigValidate, RejectsMisalignedBlockSize)
{
    BTraceConfig cfg = smallConfig();
    cfg.blockSize = 100;
    const Status st = cfg.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("blockSize"), std::string::npos);
}

TEST(BTraceConfigValidate, RejectsBadMaxBlocks)
{
    BTraceConfig cfg = smallConfig();
    cfg.maxBlocks = 33;  // not a multiple of A
    const Status st = cfg.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("maxBlocks"), std::string::npos);
}

TEST(BTraceConfigValidate, RejectsArenaPathOnNonFileBackend)
{
    BTraceConfig cfg = smallConfig();
    cfg.storage = StorageKind::Private;
    cfg.arenaPath = "/tmp/some-arena";
    const Status st = cfg.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("arenaPath"), std::string::npos);

    cfg.storage = StorageKind::File;
    EXPECT_TRUE(cfg.validate().ok());
}

// The constructor stays fatal on an invalid configuration: direct
// BTrace construction is the internal API and an invalid geometry
// there is a programming error.
using BTraceConfigDeath = ::testing::Test;

TEST(BTraceConfigDeath, ConstructorDiesOnInvalidConfig)
{
    BTraceConfig cfg = smallConfig();
    cfg.numBlocks = 33;
    EXPECT_DEATH(BTrace bt(cfg), "invalid BTraceConfig");
}

} // namespace
} // namespace btrace
