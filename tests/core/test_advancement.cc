/**
 * @file
 * Unit tests for block advancement (§4.2): closing lagging blocks
 * (§3.2), skipping blocks held by preempted writers (§3.4), stolen
 * core blocks, and the metadata round mapping (§3.3).
 */

#include <gtest/gtest.h>

#include "core/btrace.h"
#include "inspector.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32,
            std::size_t active = 8, unsigned cores = 4)
{
    BTraceConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

/** Fill one 256-byte block of @p core: 6 confirmed 40-byte entries. */
void
fillOneBlock(BTrace &bt, uint16_t core, uint64_t base_stamp)
{
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(bt.record(core, 1, base_stamp + uint64_t(i), 16));
}

TEST(Advancement, WrapAroundReusesBlocks)
{
    // One core writes 10x the buffer; positions must wrap and reuse
    // physical blocks without losing the newest capacity-worth.
    BTrace bt(smallConfig(256, 32, 8, 1));
    BTraceInspector insp(bt);
    for (uint64_t s = 1; s <= 2000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    const RatioPos g = insp.globalWord();
    EXPECT_GT(g.pos, 32u);  // wrapped several times
    EXPECT_GT(bt.countersSnapshot().advances, 32u);
}

TEST(Advancement, ClosesLaggingBlockOfIdleCore)
{
    // Core 1 writes one entry then goes idle; core 0 floods the
    // buffer. Core 1's lagging block must be closed by core 0's
    // advancement (§3.2), visible as a close event and dummy bytes.
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(1, 9, 1, 16));
    for (uint64_t s = 2; s <= 1000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    EXPECT_GT(bt.countersSnapshot().closes, 0u);
    EXPECT_GT(bt.countersSnapshot().dummyBytes, 0u);
}

TEST(Advancement, IdleCoreRecoversAfterItsBlockWasStolen)
{
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(1, 9, 1, 16));
    for (uint64_t s = 2; s <= 1000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    // Core 1 comes back; its old block is long gone.
    ASSERT_TRUE(bt.record(1, 9, 1001, 16));
    const Dump d = bt.dump();
    bool found = false;
    for (const DumpEntry &e : d.entries)
        found |= e.stamp == 1001;
    EXPECT_TRUE(found);
}

TEST(Advancement, SkipsBlockHeldByPreemptedWriter)
{
    // A writer allocates but does not confirm (preempted). Flooding
    // the buffer forces wrap-around producers to skip that metadata
    // block every round (§3.4) instead of blocking.
    BTrace bt(smallConfig());
    WriteTicket held = bt.allocate(1, 42, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);

    for (uint64_t s = 1; s <= 2000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    EXPECT_GT(bt.countersSnapshot().skips, 0u);

    // The preempted writer finally confirms; the system keeps going
    // and the metadata becomes reusable.
    writeNormal(held.dst, 9999, 1, 42, 0, 16);
    bt.confirm(held);
    for (uint64_t s = 2001; s <= 3000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
}

TEST(Advancement, SkipMarkersVisibleToConsumer)
{
    BTrace bt(smallConfig());
    WriteTicket held = bt.allocate(1, 42, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);
    for (uint64_t s = 1; s <= 2000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    const Dump d = bt.dump();
    EXPECT_GT(d.skippedBlocks + d.unreadableBlocks, 0u);
    writeNormal(held.dst, 1, 1, 42, 0, 16);
    bt.confirm(held);
}

TEST(Advancement, AllMetadataHeldReturnsRetryNotDeadlock)
{
    // Hold a preempted (unconfirmed) write on every metadata block's
    // round: advancement must give up with Retry, never hang.
    BTraceConfig cfg = smallConfig(256, 8, 8, 8);  // ratio 1: N == A
    BTrace bt(cfg);
    std::vector<WriteTicket> held;
    for (uint16_t c = 0; c < 8; ++c) {
        WriteTicket t = bt.allocate(c, 100u + c, 16);
        ASSERT_EQ(t.status, AllocStatus::Ok);
        held.push_back(t);
    }
    // Fill the remainder of every block so each core must advance,
    // finding every candidate incomplete.
    WriteTicket t;
    int ok = 0, retry = 0;
    for (int i = 0; i < 200; ++i) {
        t = bt.allocate(0, 1, 16);
        if (t.status == AllocStatus::Ok) {
            writeNormal(t.dst, uint64_t(i + 1000), 0, 1, 0, 16);
            bt.confirm(t);
            ++ok;
        } else {
            ASSERT_EQ(t.status, AllocStatus::Retry);
            ++retry;
            break;  // Retry reached without deadlock: success
        }
    }
    EXPECT_GT(retry, 0);

    // Release the held writes: progress resumes.
    for (auto &h : held) {
        writeNormal(h.dst, 5000, h.core, h.thread, 0, 16);
        bt.confirm(h);
    }
    EXPECT_TRUE(bt.record(0, 1, 6000, 16));
}

TEST(Advancement, RoundMappingMatchesPositionArithmetic)
{
    // After a deterministic fill, each metadata block's confirmed
    // round r and index m must reconstruct a position p = r*A + m
    // whose physical block (p mod N) holds a header with exactly p.
    BTrace bt(smallConfig());
    BTraceInspector insp(bt);
    for (uint64_t s = 1; s <= 3000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));

    const std::size_t a = insp.activeBlocks();
    for (std::size_t m = 0; m < a; ++m) {
        const RndPos conf = insp.confirmed(m);
        if (conf.rnd == 0)
            continue;
        const uint64_t pos = uint64_t(conf.rnd) * a + m;
        const uint8_t *blk = insp.blockData(insp.physicalOf(pos));
        EntryCursor cur(blk, EntryLayout::blockHeaderBytes);
        EntryView v;
        ASSERT_TRUE(cur.next(v));
        if (v.type == EntryType::BlockHeader)
            EXPECT_EQ(v.stamp, pos) << "metadata " << m;
        // (Skip markers may legitimately replace a header.)
    }
}

TEST(Advancement, GlobalPositionMonotonicUnderChurn)
{
    BTrace bt(smallConfig());
    BTraceInspector insp(bt);
    uint64_t prev = insp.globalWord().pos;
    for (uint64_t s = 1; s <= 2000; ++s) {
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
        const uint64_t now = insp.globalWord().pos;
        ASSERT_GE(now, prev);
        prev = now;
    }
}

TEST(Advancement, EntryLargerThanRemainderNeverSplits)
{
    // Alternate small and near-block-size entries; every dumped entry
    // must parse cleanly (no straddle).
    BTraceConfig cfg = smallConfig(512, 32, 8, 1);
    BTrace bt(cfg);
    const uint32_t big_payload =
        uint32_t(cfg.maxPayloadBytes());
    for (uint64_t s = 1; s <= 300; ++s) {
        const uint32_t payload = s % 3 == 0 ? big_payload : 16;
        ASSERT_TRUE(bt.record(0, 1, s, payload));
    }
    const Dump d = bt.dump();
    EXPECT_GT(d.entries.size(), 0u);
    for (const DumpEntry &e : d.entries)
        EXPECT_TRUE(e.payloadOk);
}

} // namespace
} // namespace btrace
