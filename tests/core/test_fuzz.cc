/**
 * @file
 * Randomized API-sequence tests: a deterministic fuzzer mixes
 * allocations, out-of-order confirms, long-held tickets, dumps,
 * stream polls, and resizes, checking global invariants after every
 * consumer operation. Seeds are fixed, so failures reproduce.
 */

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "common/prng.h"
#include "core/btrace.h"

namespace btrace {
namespace {

class FuzzCase : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzCase, RandomOpSequenceKeepsInvariants)
{
    Prng rng(GetParam());

    BTraceConfig cfg;
    cfg.blockSize = 256 << rng.nextBounded(3);  // 256..1024
    cfg.activeBlocks = 8;
    cfg.numBlocks = cfg.activeBlocks * (1 + rng.nextBounded(6));
    cfg.maxBlocks = cfg.activeBlocks * 8;
    cfg.cores = 1 + unsigned(rng.nextBounded(4));
    BTrace bt(cfg);

    uint64_t stamp = 0;
    DumpCursor cursor;
    std::set<uint64_t> streamed;
    std::deque<WriteTicket> held;
    const uint32_t max_payload =
        uint32_t(cfg.maxPayloadBytes());

    auto check_dump = [&](const Dump &d, bool stream) {
        std::set<uint64_t> seen;
        for (const DumpEntry &e : d.entries) {
            ASSERT_GE(e.stamp, 1u);
            ASSERT_LE(e.stamp, stamp);
            ASSERT_TRUE(e.payloadOk) << "torn entry " << e.stamp;
            ASSERT_TRUE(seen.insert(e.stamp).second)
                << "duplicate " << e.stamp;
            if (stream) {
                ASSERT_TRUE(streamed.insert(e.stamp).second)
                    << "stream returned " << e.stamp << " twice";
            }
        }
    };

    for (int op = 0; op < 4000; ++op) {
        const uint64_t dice = rng.nextBounded(100);
        const auto core = uint16_t(rng.nextBounded(cfg.cores));
        if (dice < 70) {
            // Plain write with a random payload size. With enough
            // held (preempted) tickets every metadata block can be
            // pinned; releasing the oldest mirrors that writer being
            // rescheduled, after which the write must succeed.
            const auto payload =
                uint32_t(rng.nextBounded(max_payload + 1));
            WriteTicket t = bt.allocate(core, core, payload);
            while (t.status != AllocStatus::Ok && !held.empty()) {
                bt.confirm(held.front());
                held.pop_front();
                t = bt.allocate(core, core, payload);
            }
            ASSERT_EQ(t.status, AllocStatus::Ok);
            writeNormal(t.dst, ++stamp, core, core, 0, payload);
            bt.confirm(t);
        } else if (dice < 80) {
            // Open a held (preempted) write.
            if (held.size() < 8) {
                WriteTicket t = bt.allocate(core, 77, 16);
                if (t.status == AllocStatus::Ok) {
                    writeNormal(t.dst, ++stamp, core, 77, 0, 16);
                    held.push_back(t);
                } else {
                    // Every metadata block held: release one first.
                    ASSERT_FALSE(held.empty());
                    bt.confirm(held.front());
                    held.pop_front();
                }
            }
        } else if (dice < 90 && !held.empty()) {
            // Confirm the oldest held write (out of order vs newer
            // fast-path confirms).
            bt.confirm(held.front());
            held.pop_front();
        } else if (dice < 96) {
            check_dump(bt.dump(), false);
        } else if (dice < 99) {
            check_dump(
                bt.dumpFrom(cursor,
                            DumpOptions{rng.chance(0.5), false}),
                true);
        } else if (held.empty()) {
            // Resize needs all writers quiescent (blocking op).
            const std::size_t target =
                cfg.activeBlocks * (1 + rng.nextBounded(8));
            bt.resize(target);
            ASSERT_EQ(bt.numBlocks(), target);
        }
    }

    // Drain held writes, then the final dump must be fully coherent.
    while (!held.empty()) {
        bt.confirm(held.front());
        held.pop_front();
    }
    check_dump(bt.dump(), false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

} // namespace
} // namespace btrace
