/**
 * @file
 * Property-style parameterized tests: invariants that must hold for
 * every buffer geometry (block size, block count, active blocks,
 * cores) and load pattern.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/btrace.h"

namespace btrace {
namespace {

// (blockSize, numBlocks, activeBlocks, cores)
using Geometry = std::tuple<std::size_t, std::size_t, std::size_t,
                            unsigned>;

class GeometryProperty : public ::testing::TestWithParam<Geometry>
{
  protected:
    BTraceConfig
    config() const
    {
        const auto [block, blocks, active, cores] = GetParam();
        BTraceConfig cfg;
        cfg.blockSize = block;
        cfg.numBlocks = blocks;
        cfg.activeBlocks = active;
        cfg.cores = cores;
        return cfg;
    }
};

TEST_P(GeometryProperty, RoundRobinWritesKeepAllInvariants)
{
    const BTraceConfig cfg = config();
    BTrace bt(cfg);
    // Write ~4x the capacity in entries.
    const std::size_t entry = EntryLayout::normalSize(16);
    const uint64_t total = 4 * cfg.capacityBytes() / entry;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % cfg.cores), 1, s, 16));

    const Dump d = bt.dump();
    ASSERT_FALSE(d.entries.empty());

    std::set<uint64_t> stamps;
    double bytes = 0;
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries) {
        // 1. Every retained entry was produced, intact, exactly once.
        ASSERT_GE(e.stamp, 1u);
        ASSERT_LE(e.stamp, total);
        ASSERT_TRUE(e.payloadOk);
        ASSERT_TRUE(stamps.insert(e.stamp).second);
        bytes += e.size;
        newest = std::max(newest, e.stamp);
    }
    // 2. The newest event is never lost.
    EXPECT_EQ(newest, total);
    // 3. Retained volume never exceeds capacity.
    EXPECT_LE(bytes, double(cfg.capacityBytes()));
    // 4. Retained volume is a healthy share of capacity (headers,
    //    dummies, and the window edge eat some).
    EXPECT_GT(bytes, 0.5 * double(cfg.capacityBytes()));
    // 5. No speculative reads should fail in a quiescent dump.
    EXPECT_EQ(d.abandonedBlocks, 0u);
}

TEST_P(GeometryProperty, InteriorContiguousWithoutPreemption)
{
    // Without preempted writers there are no skips, so gaps can only
    // appear where the last-N window cuts across the strided per-core
    // blocks (the oldest edge) and at the in-flight tail. The
    // *interior* of the retained stamp range must be gap-free.
    const BTraceConfig cfg = config();
    BTrace bt(cfg);
    const std::size_t entry = EntryLayout::normalSize(16);
    const uint64_t total = 4 * cfg.capacityBytes() / entry;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % cfg.cores), 1, s, 16));

    const Dump d = bt.dump();
    std::vector<uint8_t> retained(total + 1, 0);
    uint64_t oldest = total, newest = 0;
    for (const DumpEntry &e : d.entries) {
        retained[e.stamp] = 1;
        oldest = std::min(oldest, e.stamp);
        newest = std::max(newest, e.stamp);
    }
    ASSERT_LT(oldest, newest);

    // Edge allowance: the window boundary can shred up to ~one round
    // of per-core blocks' worth of strided stamps.
    const uint64_t per_block = cfg.blockSize / entry;
    const uint64_t edge = 2 * cfg.cores * per_block;
    const uint64_t lo = oldest + edge;
    const uint64_t hi = newest > edge ? newest - edge : oldest;
    uint64_t interior_gaps = 0;
    for (uint64_t s = lo; s > 0 && s <= hi; ++s)
        interior_gaps += !retained[s];
    EXPECT_EQ(interior_gaps, 0u)
        << "interior [" << lo << ", " << hi << "] has holes";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperty,
    ::testing::Values(
        Geometry{256, 32, 8, 4},        // tiny blocks, tiny buffer
        Geometry{256, 64, 8, 1},        // single core
        Geometry{256, 64, 64, 16},      // ratio 1 (N == A)
        Geometry{512, 128, 16, 8},      // mid geometry
        Geometry{4096, 192, 96, 12},    // page blocks, ratio 2
        Geometry{4096, 768, 192, 12},   // paper geometry, scaled N
        Geometry{128, 1024, 32, 2},     // many small blocks
        Geometry{8192, 64, 16, 4}));    // large blocks

class SkewProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SkewProperty, SingleHotCoreStillFillsMostOfTheBuffer)
{
    // The §3.1 claim: unlike per-core buffers (utilization 1/C), one
    // hot core can use nearly the whole global buffer. Worst case
    // utilization is 1 - (C-1)/N; with closing, the effectivity bound
    // is ~1 - A/N. Assert a conservative 70 % of that bound.
    const unsigned cores = GetParam();
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 128;
    cfg.activeBlocks = 16;
    cfg.cores = cores;
    BTrace bt(cfg);

    // Touch every core once (they park on active blocks), then let
    // core 0 flood.
    for (unsigned c = 0; c < cores; ++c)
        ASSERT_TRUE(bt.record(uint16_t(c), 1, 1000000u + c, 16));
    const std::size_t entry = EntryLayout::normalSize(16);
    const uint64_t total = 6 * cfg.capacityBytes() / entry;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));

    const Dump d = bt.dump();
    double bytes = 0;
    for (const DumpEntry &e : d.entries)
        bytes += e.size;
    const double bound =
        1.0 - double(cfg.activeBlocks) / double(cfg.numBlocks);
    EXPECT_GT(bytes, 0.7 * bound * double(cfg.capacityBytes()))
        << "cores=" << cores;
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SkewProperty,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

class PayloadProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(PayloadProperty, AnyPayloadSizeRoundTrips)
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 2;
    BTrace bt(cfg);
    const uint32_t payload = GetParam();
    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 2), 1, s, payload));
    const Dump d = bt.dump();
    ASSERT_FALSE(d.entries.empty());
    for (const DumpEntry &e : d.entries) {
        EXPECT_EQ(e.size, EntryLayout::normalSize(payload));
        EXPECT_TRUE(e.payloadOk);
    }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, PayloadProperty,
                         ::testing::Values(0, 1, 7, 8, 16, 100, 512,
                                           1000, 4000));

} // namespace
} // namespace btrace
