/**
 * @file
 * Unit tests for BTrace's fast-path write (§4.1): allocation within a
 * block, out-of-order confirmation, boundary dummy fills, and the
 * byte-accounting invariant.
 */

#include <gtest/gtest.h>

#include "core/btrace.h"
#include "inspector.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32,
            std::size_t active = 8, unsigned cores = 4)
{
    BTraceConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

TEST(FastPath, FirstWriteTriggersAdvancementThenSucceeds)
{
    BTrace bt(smallConfig());
    const WriteTicket t = bt.allocate(0, 1, 16);
    ASSERT_EQ(t.status, AllocStatus::Ok);
    EXPECT_NE(t.dst, nullptr);
    EXPECT_EQ(t.entrySize, EntryLayout::normalSize(16));
    EXPECT_EQ(bt.countersSnapshot().advances, 1u);
}

TEST(FastPath, SecondWriteOnSameCoreIsFast)
{
    BTrace bt(smallConfig());
    WriteTicket a = bt.allocate(0, 1, 16);
    writeNormal(a.dst, 1, 0, 1, 0, 16);
    bt.confirm(a);

    const uint64_t advances = bt.countersSnapshot().advances;
    WriteTicket b = bt.allocate(0, 1, 16);
    ASSERT_EQ(b.status, AllocStatus::Ok);
    EXPECT_EQ(bt.countersSnapshot().advances, advances);
    // Consecutive allocations are adjacent in the same block.
    EXPECT_EQ(b.dst, a.dst + a.entrySize);
    writeNormal(b.dst, 2, 0, 1, 0, 16);
    bt.confirm(b);
}

TEST(FastPath, DistinctCoresGetDistinctBlocks)
{
    BTrace bt(smallConfig());
    WriteTicket a = bt.allocate(0, 1, 16);
    WriteTicket b = bt.allocate(1, 2, 16);
    ASSERT_EQ(a.status, AllocStatus::Ok);
    ASSERT_EQ(b.status, AllocStatus::Ok);
    // Blocks are 256 bytes; different cores' targets must not be in
    // the same block.
    const auto diff = a.dst > b.dst ? a.dst - b.dst : b.dst - a.dst;
    EXPECT_GE(diff, 256u - 64);
    writeNormal(a.dst, 1, 0, 1, 0, 16);
    writeNormal(b.dst, 2, 1, 2, 0, 16);
    bt.confirm(a);
    bt.confirm(b);
}

TEST(FastPath, OutOfOrderConfirmation)
{
    // T0 allocates, T1 allocates and confirms first (§4.1 Fig 8b).
    BTrace bt(smallConfig());
    WriteTicket t0 = bt.allocate(0, 10, 16);
    WriteTicket t1 = bt.allocate(0, 11, 16);
    ASSERT_EQ(t0.status, AllocStatus::Ok);
    ASSERT_EQ(t1.status, AllocStatus::Ok);

    writeNormal(t1.dst, 2, 0, 11, 0, 16);
    bt.confirm(t1);  // out of allocation order

    // The block is not yet readable: t0 is unconfirmed.
    Dump d = bt.dump();
    EXPECT_EQ(d.entries.size(), 0u);
    EXPECT_EQ(d.unreadableBlocks, 1u);

    writeNormal(t0.dst, 1, 0, 10, 0, 16);
    bt.confirm(t0);
    d = bt.dump();
    EXPECT_EQ(d.entries.size(), 2u);
}

TEST(FastPath, BoundaryFillWritesDummyAndAdvances)
{
    // Block 256: header 16 + 5x40 = 216, leaving 40; an entry of 48
    // does not fit and must trigger a dummy fill + advancement
    // (§4.1 Fig 8c).
    BTrace bt(smallConfig());
    for (int i = 0; i < 5; ++i) {
        WriteTicket t = bt.allocate(0, 1, 16);  // 40 bytes each
        ASSERT_EQ(t.status, AllocStatus::Ok);
        writeNormal(t.dst, uint64_t(i + 1), 0, 1, 0, 16);
        bt.confirm(t);
    }
    const uint64_t fills = bt.countersSnapshot().boundaryFills;
    WriteTicket big = bt.allocate(0, 1, 24);  // 48 bytes
    ASSERT_EQ(big.status, AllocStatus::Ok);
    EXPECT_EQ(bt.countersSnapshot().boundaryFills, fills + 1);
    EXPECT_GT(bt.countersSnapshot().dummyBytes, 0u);
    writeNormal(big.dst, 6, 0, 1, 0, 24);
    bt.confirm(big);

    // All six entries must be retrievable despite the gap.
    Dump d = bt.dump();
    std::size_t normals = 0;
    for (const DumpEntry &e : d.entries)
        normals += e.stamp >= 1 && e.stamp <= 6;
    EXPECT_EQ(normals, 6u);
}

TEST(FastPath, ExactFitLeavesNoDummy)
{
    // Block 256: header 16 + 240 payload area; entries of 40 bytes,
    // 6 x 40 = 240 exactly.
    BTrace bt(smallConfig());
    for (int i = 0; i < 6; ++i) {
        WriteTicket t = bt.allocate(0, 1, 16);
        ASSERT_EQ(t.status, AllocStatus::Ok);
        writeNormal(t.dst, uint64_t(i + 1), 0, 1, 0, 16);
        bt.confirm(t);
    }
    EXPECT_EQ(bt.countersSnapshot().boundaryFills, 0u);
    // The next allocation overshoots without a fill.
    WriteTicket t = bt.allocate(0, 1, 16);
    ASSERT_EQ(t.status, AllocStatus::Ok);
    EXPECT_EQ(bt.countersSnapshot().boundaryFills, 0u);
    writeNormal(t.dst, 7, 0, 1, 0, 16);
    bt.confirm(t);
}

TEST(FastPath, ConfirmedBytesReachCapacityOnFilledBlocks)
{
    BTrace bt(smallConfig());
    BTraceInspector insp(bt);
    for (uint64_t s = 1; s <= 200; ++s) {
        const bool ok = bt.record(0, 1, s, 16);
        ASSERT_TRUE(ok);
    }
    // Every non-current metadata block of core 0's history must be
    // fully confirmed (the §3.3 invariant).
    const RatioPos core0 = insp.coreWord(0);
    for (std::size_t m = 0; m < insp.activeBlocks(); ++m) {
        const RndPos conf = insp.confirmed(m);
        if (m == core0.pos % insp.activeBlocks())
            continue;  // current block may be partial
        if (conf.rnd == 0)
            continue;  // never used
        EXPECT_EQ(conf.pos, 256u) << "metadata " << m;
    }
}

TEST(FastPath, CostIncludesTimestampAndAtomics)
{
    BTrace bt(smallConfig());
    WriteTicket warm = bt.allocate(0, 1, 16);
    writeNormal(warm.dst, 1, 0, 1, 0, 16);
    bt.confirm(warm);

    WriteTicket t = bt.allocate(0, 1, 16);
    const CostModel &m = CostModel::def();
    EXPECT_GE(t.cost, m.tscRead + m.atomicLocal);
    EXPECT_LT(t.cost, 200.0);  // fast path stays tens of ns
    const double pre = t.cost;
    writeNormal(t.dst, 2, 0, 1, 0, 16);
    bt.confirm(t);
    EXPECT_GT(t.cost, pre);
}

TEST(FastPath, RecordHelperRoundTrips)
{
    BTrace bt(smallConfig());
    double cost = 0.0;
    EXPECT_TRUE(bt.record(2, 5, 99, 32, 7, &cost));
    EXPECT_GT(cost, 0.0);
    const Dump d = bt.dump();
    ASSERT_EQ(d.entries.size(), 1u);
    EXPECT_EQ(d.entries[0].stamp, 99u);
    EXPECT_EQ(d.entries[0].core, 2u);
    EXPECT_EQ(d.entries[0].thread, 5u);
    EXPECT_EQ(d.entries[0].category, 7u);
    EXPECT_TRUE(d.entries[0].payloadOk);
}

TEST(FastPath, ManyWritesNeverLoseConfirmedData)
{
    // Fill far beyond capacity; the last capacity-worth of stamps must
    // be retrievable as a contiguous suffix.
    BTrace bt(smallConfig(256, 32, 8, 1));
    const uint64_t total = 5000;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    Dump d = bt.dump();
    ASSERT_FALSE(d.entries.empty());
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries)
        newest = std::max(newest, e.stamp);
    EXPECT_EQ(newest, total);
}

} // namespace
} // namespace btrace
