/**
 * @file
 * Unit tests for the incremental consumer dumpFrom() (§4.3
 * daemon-collector mode): cursor semantics, no duplicates across
 * polls, close-on-read of active blocks, and frontier catch-up.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/btrace.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 64;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    return cfg;
}

TEST(StreamReader, PollsAreDisjointAndOrdered)
{
    BTrace bt(smallConfig());
    DumpCursor cursor;
    std::set<uint64_t> seen;
    uint64_t stamp = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 100; ++i) {
            const uint64_t s = ++stamp;
            ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
        }
        const Dump d = bt.dumpFrom(cursor);
        for (const DumpEntry &e : d.entries) {
            EXPECT_TRUE(e.payloadOk);
            EXPECT_TRUE(seen.insert(e.stamp).second)
                << "stamp " << e.stamp << " returned twice";
        }
    }
}

TEST(StreamReader, CloseActiveFlushesCurrentBlocks)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 10; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));

    // Passive poll cannot return the core's current (partial) block.
    DumpCursor passive_cursor;
    const Dump passive = bt.dumpFrom(passive_cursor);
    EXPECT_LT(passive.entries.size(), 10u);

    // Close-on-read forces the block shut and returns everything.
    DumpCursor cursor;
    const Dump flushed = bt.dumpFrom(cursor, DumpOptions{true, false});
    EXPECT_EQ(flushed.entries.size(), 10u);
    EXPECT_GT(bt.countersSnapshot().closes, 0u);

    // Producers keep working afterwards, in a fresh block.
    ASSERT_TRUE(bt.record(0, 1, 11, 16));
    const Dump next = bt.dumpFrom(cursor, DumpOptions{true, false});
    ASSERT_EQ(next.entries.size(), 1u);
    EXPECT_EQ(next.entries[0].stamp, 11u);
}

TEST(StreamReader, StaleCursorSnapsToWindow)
{
    BTrace bt(smallConfig());
    DumpCursor cursor;
    uint64_t stamp = 0;
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(bt.record(0, 1, ++stamp, 16));
    bt.dumpFrom(cursor, DumpOptions{true, false});

    // Lap the buffer several times while the reader sleeps.
    for (int i = 0; i < 5000; ++i)
        ASSERT_TRUE(bt.record(0, 1, ++stamp, 16));

    const Dump d = bt.dumpFrom(cursor, DumpOptions{true, false});
    ASSERT_FALSE(d.entries.empty());
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries)
        newest = std::max(newest, e.stamp);
    EXPECT_EQ(newest, stamp);  // caught up to the frontier
    // And the oldest returned entry is within the last-N window, not
    // from before the lap.
    uint64_t oldest = ~0ull;
    for (const DumpEntry &e : d.entries)
        oldest = std::min(oldest, e.stamp);
    EXPECT_GT(oldest, 50u);
}

TEST(StreamReader, EmptyPollOnQuiescentTracer)
{
    BTrace bt(smallConfig());
    DumpCursor cursor;
    ASSERT_TRUE(bt.record(0, 1, 1, 16));
    bt.dumpFrom(cursor, DumpOptions{true, false});
    const Dump d = bt.dumpFrom(cursor, DumpOptions{true, false});
    EXPECT_TRUE(d.entries.empty());
}

TEST(StreamReader, StreamUnionMatchesProducedSuffix)
{
    // Poll frequently enough that nothing is overwritten between
    // polls: the union of all polls must be every produced stamp.
    BTrace bt(smallConfig());
    DumpCursor cursor;
    std::set<uint64_t> seen;
    uint64_t stamp = 0;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 20; ++i) {
            const uint64_t s = ++stamp;
            ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
        }
        const Dump d = bt.dumpFrom(cursor, DumpOptions{true, false});
        for (const DumpEntry &e : d.entries)
            seen.insert(e.stamp);
    }
    EXPECT_EQ(seen.size(), stamp);
    EXPECT_EQ(*seen.begin(), 1u);
    EXPECT_EQ(*seen.rbegin(), stamp);
}

TEST(StreamReader, WorksAcrossResize)
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.maxBlocks = 128;
    cfg.cores = 2;
    BTrace bt(cfg);
    DumpCursor cursor;
    uint64_t stamp = 0;
    std::set<uint64_t> seen;
    auto write_and_poll = [&]() {
        for (int i = 0; i < 300; ++i) {
            const uint64_t s = ++stamp;
            ASSERT_TRUE(bt.record(uint16_t(s % 2), 1, s, 64));
        }
        const Dump d = bt.dumpFrom(cursor, DumpOptions{true, false});
        for (const DumpEntry &e : d.entries) {
            EXPECT_TRUE(e.payloadOk);
            EXPECT_TRUE(seen.insert(e.stamp).second);
        }
    };
    write_and_poll();
    bt.resize(128);
    write_and_poll();
    bt.resize(8);
    write_and_poll();
    EXPECT_GT(seen.size(), 600u);
}

} // namespace
} // namespace btrace
