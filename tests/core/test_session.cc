/**
 * @file
 * Unit tests for btrace::Session (core/session.h): the factory API
 * over create/attach, its Status contract (never BTRACE_FATAL on bad
 * input), generation accounting, and the fd handoff round trip.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/session.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(StorageKind storage = StorageKind::Private)
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    cfg.storage = storage;
    return cfg;
}

TEST(Session, CreatePrivateBackend)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok()) << s.status().toString();
    Session sess = s.take();
    EXPECT_TRUE(sess.valid());
    EXPECT_TRUE(sess.owner());
    EXPECT_FALSE(sess->multiprocess());
    EXPECT_EQ(sess.generation(), 0u);  // private: no arena generations
    EXPECT_EQ(sess.shareFd(), -1);

    ASSERT_TRUE(sess->record(0, 1, 42, 16));
    const Dump d = sess->dump();
    ASSERT_EQ(d.entries.size(), 1u);
    EXPECT_EQ(d.entries[0].stamp, 42u);
}

TEST(Session, CreateRejectsInvalidConfig)
{
    BTraceConfig cfg = smallConfig();
    cfg.numBlocks = 33;  // not a multiple of activeBlocks
    auto s = Session::create(cfg);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::InvalidArgument);
}

TEST(Session, DefaultConstructedIsInvalid)
{
    Session s;
    EXPECT_FALSE(s.valid());
}

TEST(Session, AttachFileNotFound)
{
    auto s = Session::attachFile(testing::TempDir() +
                                 "no_such_session_arena.ring");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::NotFound);
}

TEST(Session, AttachFileRejectsGarbage)
{
    const std::string path =
        testing::TempDir() + "session_garbage.ring";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not an arena, not even close, padding padding";
    }
    auto s = Session::attachFile(path);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.status().code() == StatusCode::Corruption ||
                s.status().code() == StatusCode::Incompatible)
        << s.status().toString();
    std::remove(path.c_str());
}

TEST(Session, AttachFdRoundTrip)
{
    auto owner = Session::create(smallConfig(StorageKind::Shm));
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();
    EXPECT_TRUE(o.owner());
    EXPECT_TRUE(o->multiprocess());
    EXPECT_EQ(o.generation(), 1u);  // creator always draws 1
    ASSERT_GE(o.shareFd(), 0);

    auto attached = Session::attachFd(o.shareFd());
    ASSERT_TRUE(attached.ok()) << attached.status().toString();
    Session a = attached.take();
    EXPECT_FALSE(a.owner());
    EXPECT_TRUE(a->multiprocess());
    EXPECT_EQ(a.generation(), 2u);

    // Entries written through the attachment are visible to the
    // owner's consumer — the same blocks, through a second mapping.
    for (uint64_t s = 1; s <= 50; ++s)
        ASSERT_TRUE(a->record(0, 7, s, 16));
    const Dump d = o->dump();
    EXPECT_EQ(d.entries.size(), 50u);

    // And the other direction: owner writes, attachment reads.
    for (uint64_t s = 51; s <= 60; ++s)
        ASSERT_TRUE(o->record(1, 8, s, 16));
    const Dump d2 = a->dump();
    EXPECT_EQ(d2.entries.size(), 60u);
}

TEST(Session, AttachFdGenerationContract)
{
    auto owner = Session::create(smallConfig(StorageKind::Shm));
    ASSERT_TRUE(owner.ok());
    Session o = owner.take();

    // A coordinator that planned for generation 5 must notice the
    // arena actually hands out 2 (recycled arena / raced attacher).
    AttachOptions opts;
    opts.expectGeneration = 5;
    auto stale = Session::attachFd(o.shareFd(), opts);
    ASSERT_FALSE(stale.ok());
    EXPECT_EQ(stale.status().code(), StatusCode::Incompatible);

    // The failed attach still consumed a generation number (the draw
    // is the rendezvous, not the registration); the next one gets 3.
    auto next = Session::attachFd(o.shareFd());
    ASSERT_TRUE(next.ok()) << next.status().toString();
    EXPECT_EQ(next.value().generation(), 3u);

    // Expecting the right number succeeds.
    AttachOptions right;
    right.expectGeneration = 4;
    auto fourth = Session::attachFd(o.shareFd(), right);
    ASSERT_TRUE(fourth.ok()) << fourth.status().toString();
}

TEST(Session, AttachFileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "session_file_arena.ring";
    BTraceConfig cfg = smallConfig(StorageKind::File);
    cfg.arenaPath = path;
    auto owner = Session::create(cfg);
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();

    auto attached = Session::attachFile(path);
    ASSERT_TRUE(attached.ok()) << attached.status().toString();
    Session a = attached.take();
    EXPECT_EQ(a.generation(), 2u);

    for (uint64_t s = 1; s <= 25; ++s)
        ASSERT_TRUE(a->record(0, 9, s, 16));
    EXPECT_EQ(o->dump().entries.size(), 25u);
    std::remove(path.c_str());
}

TEST(Session, CreateReportsUnwritableArenaPath)
{
    BTraceConfig cfg = smallConfig(StorageKind::File);
    cfg.arenaPath = testing::TempDir() +
                    "no_such_dir_zzz/session_arena.ring";
    auto s = Session::create(cfg);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::IoError);
}

TEST(Session, SweepOnHealthyArenaIsANoop)
{
    auto owner = Session::create(smallConfig(StorageKind::Shm));
    ASSERT_TRUE(owner.ok());
    Session o = owner.take();
    auto attached = Session::attachFd(o.shareFd());
    ASSERT_TRUE(attached.ok());
    Session a = attached.take();

    ASSERT_TRUE(a->record(0, 1, 1, 16));
    const SweepReport r = o.sweepDeadOwners();
    EXPECT_EQ(r.reclaimedLeases, 0u);
    EXPECT_EQ(r.clearedAttachments, 0u);
}

TEST(Session, CleanDetachFreesRegistrySlot)
{
    auto owner = Session::create(smallConfig(StorageKind::Shm));
    ASSERT_TRUE(owner.ok());
    Session o = owner.take();
    {
        auto attached = Session::attachFd(o.shareFd());
        ASSERT_TRUE(attached.ok());
        Session a = attached.take();
        ASSERT_TRUE(a->record(0, 1, 1, 16));
        // a detaches cleanly here.
    }
    // Nothing for the sweeper to find: the slot was released on
    // detach, not abandoned.
    const SweepReport r = o.sweepDeadOwners();
    EXPECT_EQ(r.clearedAttachments, 0u);
    EXPECT_EQ(r.reclaimedLeases, 0u);
}

} // namespace
} // namespace btrace
