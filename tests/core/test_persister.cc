/** @file Unit tests for asynchronous trace persistence. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "core/btrace.h"
#include "core/persister.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 1024;
    cfg.numBlocks = 64;
    cfg.activeBlocks = 8;
    cfg.cores = 2;
    return cfg;
}

class PersisterTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path = ::testing::TempDir() + "btrace_persist_" +
               std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name() +
               ".bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(PersisterTest, QuiescentRoundTrip)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 100; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 2), 1, s, 32, uint16_t(s % 5)));
    {
        TracePersister persister(bt, path);
        // Destructor stops + flushes, closing active blocks.
    }
    const auto loaded = TracePersister::load(path);
    ASSERT_EQ(loaded.size(), 100u);
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : loaded) {
        EXPECT_TRUE(e.payloadOk);
        EXPECT_TRUE(stamps.insert(e.stamp).second);
        EXPECT_EQ(e.core, e.stamp % 2);
        EXPECT_EQ(e.category, e.stamp % 5);
    }
}

TEST_F(PersisterTest, CapturesMoreThanBufferCapacity)
{
    // The whole point of persist mode: the file outlives buffer wraps.
    BTrace bt(smallConfig());  // 64 KB buffer
    PersisterOptions opt;
    opt.pollIntervalSec = 0.0005;
    TracePersister persister(bt, path, opt);

    const uint64_t total = 20000;  // ~1.1 MB of entries
    for (uint64_t s = 1; s <= total; ++s) {
        ASSERT_TRUE(bt.record(uint16_t(s % 2), 1, s, 32));
        if (s % 500 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    persister.stop();

    const auto loaded = TracePersister::load(path);
    EXPECT_EQ(loaded.size(), persister.persistedEntries());
    // Far more than the in-memory buffer could hold (~1100 entries).
    EXPECT_GT(loaded.size(), 5000u);
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : loaded)
        EXPECT_TRUE(stamps.insert(e.stamp).second) << e.stamp;
}

TEST_F(PersisterTest, StopIsIdempotent)
{
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(0, 1, 1, 32));
    TracePersister persister(bt, path);
    persister.stop();
    persister.stop();
    const auto loaded = TracePersister::load(path);
    EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(PersisterTest, ConcurrentProducersWhilePersisting)
{
    BTrace bt(smallConfig());
    PersisterOptions opt;
    opt.pollIntervalSec = 0.0005;
    opt.closeActive = true;
    TracePersister persister(bt, path, opt);

    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < 2; ++c) {
        workers.emplace_back([&, c]() {
            for (int i = 0; i < 15000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                bt.record(uint16_t(c), c, s, 32);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    persister.stop();

    const auto loaded = TracePersister::load(path);
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : loaded) {
        EXPECT_TRUE(e.payloadOk);
        EXPECT_LE(e.stamp, stamp.load());
        EXPECT_TRUE(stamps.insert(e.stamp).second);
    }
    EXPECT_GT(loaded.size(), 1000u);
}

TEST_F(PersisterTest, LoadRejectsGarbage)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(TracePersister::load(path),
                ::testing::ExitedWithCode(1), "not a btrace");
}

} // namespace
} // namespace btrace
