/**
 * @file
 * Concurrency-correctness harness: deterministic adversarial
 * interleavings of the lock-free core, forced through the
 * BTRACE_TEST_YIELD hook points by a sim::PreemptionInjector, each
 * scenario validated by the BTraceAuditor's accounting invariants.
 *
 * Unlike tests/core/test_concurrent.cc (uncontrolled OS scheduling),
 * every scenario here *asserts* that its target race path fired:
 * stale allocations, lost Confirmed locks, lost core-local installs,
 * block skips, and abandoned speculative reads are driven to nonzero
 * counters by construction, not by probability.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/auditor.h"
#include "core/btrace.h"
#include "sim/schedule.h"

#include "inspector.h"

namespace btrace {
namespace {

using hooks::YieldPoint;

BTraceConfig
tinyConfig(unsigned cores, std::size_t active, std::size_t blocks,
           std::size_t block_size = 256)
{
    BTraceConfig cfg;
    cfg.blockSize = block_size;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

void
expectAuditClean(BTrace &bt)
{
    const AuditReport rep = BTraceAuditor(bt).audit();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

void
expectDumpIntegrity(const Dump &d, uint64_t max_stamp)
{
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : d.entries) {
        EXPECT_GE(e.stamp, 1u);
        EXPECT_LE(e.stamp, max_stamp);
        EXPECT_TRUE(e.payloadOk) << "torn entry at stamp " << e.stamp;
        EXPECT_TRUE(stamps.insert(e.stamp).second)
            << "duplicate stamp " << e.stamp;
    }
}

#if defined(BTRACE_ENABLE_TEST_HOOKS)

// A producer preempted between its core-local read and the Allocated
// fetch_add must land in the newer round as a *stale* reservation and
// repay it with a confirmed dummy (§3.2, DESIGN.md §3).
TEST(Harness, StaleAllocationForced)
{
    BTrace bt(tinyConfig(2, 2, 4));
    BTraceInspector insp(bt);

    ASSERT_TRUE(bt.record(0, 1, 1, 40));
    const std::size_t m0 = insp.coreWord(0).pos % insp.activeBlocks();
    const uint32_t r0 = insp.confirmed(m0).rnd;

    PreemptionInjector inj;
    inj.armPark(YieldPoint::AllocPreReserve);
    std::thread t1([&] { EXPECT_TRUE(bt.record(0, 1, 2, 40)); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::AllocPreReserve));

    // Steal core 0's lagging block: drive core 1 around the window
    // until a wrap-around advancement closes and re-locks metadata m0.
    uint64_t stamp = 100;
    for (int i = 0; i < 100000 && insp.confirmed(m0).rnd == r0; ++i)
        ASSERT_TRUE(bt.record(1, 2, stamp++, 40));
    ASSERT_NE(insp.confirmed(m0).rnd, r0);

    inj.release(YieldPoint::AllocPreReserve);
    t1.join();

    EXPECT_GE(bt.countersSnapshot().staleAllocs, 1u);
    EXPECT_GE(bt.countersSnapshot().dummyBytes, 1u);
    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), stamp);
}

// Two advancements racing for the same metadata block: the earlier
// candidate parks right before its Confirmed lock CAS, a later
// candidate locks first, and the loser must retry, not double-lock.
TEST(Harness, LockRaceForced)
{
    BTrace bt(tinyConfig(2, 2, 4));
    BTraceInspector insp(bt);

    PreemptionInjector inj;
    inj.armPark(YieldPoint::AdvancePreLock);
    std::thread t1([&] { EXPECT_TRUE(bt.record(0, 1, 1, 40)); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::AdvancePreLock));

    // t1 holds candidate position 2 (metadata 0, round 1). Drive core
    // 1 until its wrap-around advancement locks metadata 0 for a later
    // round while t1 is still parked.
    uint64_t stamp = 100;
    for (int i = 0; i < 100000 && insp.confirmed(0).rnd == 0; ++i)
        ASSERT_TRUE(bt.record(1, 2, stamp++, 40));
    ASSERT_GT(insp.confirmed(0).rnd, 0u);

    inj.release(YieldPoint::AdvancePreLock);
    t1.join();

    EXPECT_GE(bt.countersSnapshot().lockRaces, 1u);
    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), stamp);
}

// Two threads of one core advancing concurrently: the loser of the
// core-local install CAS must close its freshly locked block and use
// the winner's, leaking nothing.
TEST(Harness, CoreRaceForced)
{
    BTrace bt(tinyConfig(1, 2, 4));

    // Fill the core's block so the next record must advance
    // (16 header + 3 x 64 = 208; a fourth 64-byte entry won't fit).
    for (uint64_t s = 1; s <= 3; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));

    PreemptionInjector inj;
    inj.armPark(YieldPoint::AdvancePreInstall);
    std::thread t1([&] { EXPECT_TRUE(bt.record(0, 1, 4, 40)); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::AdvancePreInstall));

    // t1 locked and initialized a block but has not installed it.
    // A second thread of the same core advances and installs first.
    std::thread t2([&] { EXPECT_TRUE(bt.record(0, 2, 5, 40)); });
    t2.join();

    inj.release(YieldPoint::AdvancePreInstall);
    t1.join();

    EXPECT_GE(bt.countersSnapshot().coreRaces, 1u);
    EXPECT_GE(bt.countersSnapshot().closes, 1u);
    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), 5);
}

// A consumer preempted between its speculative copy and the
// re-validation must abandon the block when a writer touched it.
TEST(Harness, AbandonedReadForced)
{
    BTrace bt(tinyConfig(1, 2, 4));
    ASSERT_TRUE(bt.record(0, 1, 1, 16));

    PreemptionInjector inj;
    inj.armPark(YieldPoint::ReadPostCopy);
    Dump d;
    std::thread reader([&] { d = bt.dump(); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::ReadPostCopy));

    // Mutate the copied block: one more confirmed entry changes the
    // metadata the reader validated its copy against.
    ASSERT_TRUE(bt.record(0, 1, 2, 16));

    inj.release(YieldPoint::ReadPostCopy);
    reader.join();

    EXPECT_EQ(d.abandonedBlocks, 1u);
    EXPECT_TRUE(d.entries.empty());  // the only written block aborted

    const Dump d2 = bt.dump();
    EXPECT_EQ(d2.entries.size(), 2u);
    expectAuditClean(bt);
}

// Wrap/lap boundary of the incremental read: a block overwritten by a
// full producer lap while the dump is parked between its speculative
// copy and the re-validation is permanently lost data. It must be
// charged to overwrittenPositions — the same bucket as positions lost
// before the read started — and never parsed into torn entries. It
// used to be misfiled as a transient abandonedBlocks.
TEST(Harness, LapDuringDumpSinceCountsOverwrittenNotAbandoned)
{
    BTrace bt(tinyConfig(1, 2, 4));
    BTraceInspector insp(bt);

    // Two full blocks plus the start of a third, so the incremental
    // read has complete blocks to copy before it hits the active one.
    for (uint64_t s = 1; s <= 7; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));

    PreemptionInjector inj;
    inj.armPark(YieldPoint::ReadPostCopy);
    DumpCursor cursor;
    Dump d;
    std::thread reader([&] { d = bt.dumpFrom(cursor); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::ReadPostCopy));

    // Lap the parked reader: with N = 4 data blocks, advancing the
    // head a full buffer past the copied position re-locks and
    // overwrites its physical block.
    uint64_t s = 8;
    while (insp.globalWord().pos < 10)
        ASSERT_TRUE(bt.record(0, 1, s++, 40));

    inj.release(YieldPoint::ReadPostCopy);
    reader.join();

    EXPECT_GE(d.overwrittenPositions, 1u);  // the lapped copy landed here
    EXPECT_EQ(d.abandonedBlocks, 0u);
    expectDumpIntegrity(d, s - 1);  // no torn or duplicate entries
    EXPECT_GT(cursor.position, 0u);
    expectAuditClean(bt);
}

#endif // BTRACE_ENABLE_TEST_HOOKS

// A preempted writer holding an unconfirmed reservation keeps its
// block incomplete; wrap-around advancement must sacrifice the
// candidate with a SKP marker (§3.4) instead of blocking or
// re-locking.
TEST(Harness, SkipForcedByPreemptedWriter)
{
    BTrace bt(tinyConfig(2, 2, 4));

    ASSERT_TRUE(bt.record(0, 1, 1, 40));
    WriteTicket held = bt.allocate(0, 1, 40);
    ASSERT_EQ(held.status, AllocStatus::Ok);  // preempted mid-write

    uint64_t stamp = 100;
    for (int i = 0;
         i < 100000 && bt.countersSnapshot().skips == 0; ++i)
        ASSERT_TRUE(bt.record(1, 2, stamp++, 40));
    EXPECT_GE(bt.countersSnapshot().skips, 1u);

    writeNormal(held.dst, 2, 0, 1, 0, 40);
    bt.confirm(held);

    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), stamp);
}

// Operation within a few rounds of the 32-bit wrap boundary stays
// correct: rounds compare, blocks tile, dumps parse.
TEST(Harness, NearWrapRoundsOperate)
{
    BTrace bt(tinyConfig(1, 8, 8));
    BTraceInspector insp(bt);

    const std::size_t A = insp.activeBlocks();
    const uint32_t R = 0xffffffffu - 64;
    for (std::size_t m = 0; m < A; ++m)
        insp.seedMetadata(m, RndPos{R, 256}, RndPos{R, 256});
    insp.seedGlobal(RatioPos{1, false, (uint64_t(R) + 1) * A});
    insp.seedCoreWord(0, RatioPos{1, false, 0});

    uint64_t stamp = 0;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(bt.record(0, 1, ++stamp, 40));

    // Every metadata block must have been re-locked past the seeded
    // round by now (100 records span > 2x8 block advancements).
    for (std::size_t m = 0; m < A; ++m)
        ASSERT_GT(insp.confirmed(m).rnd, R);

    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), stamp);
}

using HarnessDeath = ::testing::Test;

// Crossing 2^32 rounds must fail loudly instead of aliasing rounds
// and silently corrupting round comparisons.
TEST(HarnessDeath, RoundOverflowPanics)
{
    BTrace bt(tinyConfig(1, 8, 8));
    BTraceInspector insp(bt);

    const std::size_t A = insp.activeBlocks();
    const uint32_t R = 0xffffffffu - 2;
    for (std::size_t m = 0; m < A; ++m)
        insp.seedMetadata(m, RndPos{R, 256}, RndPos{R, 256});
    insp.seedGlobal(RatioPos{1, false, (uint64_t(R) + 1) * A});
    insp.seedCoreWord(0, RatioPos{1, false, 0});

    EXPECT_DEATH(
        {
            for (uint64_t s = 1; s <= 1000; ++s)
                bt.record(0, 1, s, 40);
        },
        "round overflow");
}

// Multi-producer x consumer x resizer stress with scheduler churn
// concentrated on the critical windows; the auditor's accounting
// invariants must hold after quiesce, and no dump entry may be
// duplicated or torn across the grow and shrink.
TEST(Harness, AuditorStressWithResizes)
{
    BTraceConfig cfg;
    cfg.blockSize = 1024;
    cfg.numBlocks = 64;
    cfg.activeBlocks = 16;
    cfg.maxBlocks = 128;
    cfg.cores = 4;
    BTrace bt(cfg);

    PreemptionInjector inj;
    inj.setRandomYield(0xB7FACEull, 5);

    std::atomic<uint64_t> stamp{0};
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> lost{0};

    std::vector<std::thread> producers;
    for (unsigned c = 0; c < 4; ++c) {
        producers.emplace_back([&, c] {
            for (int i = 0; i < 3000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                EXPECT_TRUE(bt.record(uint16_t(c), c, s, 48));
            }
        });
    }
    std::thread consumer([&] {
        DumpCursor cursor;
        while (!stop.load(std::memory_order_acquire)) {
            const Dump d = bt.dumpFrom(cursor);
            lost.fetch_add(d.overwrittenPositions,
                           std::memory_order_relaxed);
            for (const DumpEntry &e : d.entries)
                EXPECT_TRUE(e.payloadOk)
                    << "torn incremental entry at stamp " << e.stamp;
            std::this_thread::yield();
        }
    });

    // Mid-run grow and shrink (ratios 4 -> 8 -> 2 -> 6; never
    // revisiting a ratio keeps reclaimed old-geometry rounds
    // distinguishable for the auditor).
    bt.resize(128);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bt.resize(32);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bt.resize(96);

    for (auto &p : producers)
        p.join();
    stop.store(true, std::memory_order_release);
    consumer.join();

    EXPECT_EQ(bt.countersSnapshot().resizes, 3u);
    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), stamp.load());
}

// Same stress shape without resizes, heavier oversubscription: three
// threads per core id so core-local install races and stale
// reservations occur naturally under the injected yields.
TEST(Harness, AuditorStressOversubscribed)
{
    BTrace bt(tinyConfig(2, 8, 32, 512));

    PreemptionInjector inj;
    inj.setRandomYield(0x5EEDull, 3);

    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < 2; ++c) {
        for (int k = 0; k < 3; ++k) {
            workers.emplace_back([&, c] {
                for (int i = 0; i < 2000; ++i) {
                    const uint64_t s =
                        stamp.fetch_add(1, std::memory_order_relaxed) +
                        1;
                    EXPECT_TRUE(bt.record(uint16_t(c), c, s, 32));
                }
            });
        }
    }
    for (auto &w : workers)
        w.join();

    expectAuditClean(bt);
    expectDumpIntegrity(bt.dump(), stamp.load());
}

} // namespace
} // namespace btrace
