/**
 * @file
 * Unit tests for runtime buffer resizing (§3.3, §4.4): ratio swings,
 * data retention across resizes, physical-memory release, and
 * producer correctness after grow/shrink.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/btrace.h"
#include "sim/schedule.h"

#include "inspector.h"

namespace btrace {
namespace {

BTraceConfig
resizableConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;  // page-sized so decommit is page-aligned
    cfg.numBlocks = 64;
    cfg.activeBlocks = 8;
    cfg.maxBlocks = 256;
    cfg.cores = 4;
    return cfg;
}

TEST(Resize, ShrinkChangesGeometry)
{
    BTrace bt(resizableConfig());
    EXPECT_EQ(bt.numBlocks(), 64u);
    bt.resize(16);
    EXPECT_EQ(bt.numBlocks(), 16u);
    EXPECT_EQ(bt.capacityBytes(), 16u * 4096);
    EXPECT_EQ(bt.countersSnapshot().resizes, 1u);
}

TEST(Resize, GrowChangesGeometry)
{
    BTrace bt(resizableConfig());
    bt.resize(256);
    EXPECT_EQ(bt.numBlocks(), 256u);
    EXPECT_EQ(bt.capacityBytes(), 256u * 4096);
}

TEST(Resize, NoOpResizeIsCheap)
{
    BTrace bt(resizableConfig());
    bt.resize(64);
    EXPECT_EQ(bt.numBlocks(), 64u);
    EXPECT_EQ(bt.countersSnapshot().resizes, 0u);
}

TEST(Resize, WritesWorkAfterShrink)
{
    BTrace bt(resizableConfig());
    for (uint64_t s = 1; s <= 1000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 64));
    bt.resize(16);
    for (uint64_t s = 1001; s <= 2000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 64));
    const Dump d = bt.dump();
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(e.payloadOk);
        newest = std::max(newest, e.stamp);
    }
    EXPECT_EQ(newest, 2000u);
}

TEST(Resize, WritesWorkAfterGrow)
{
    BTrace bt(resizableConfig());
    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 64));
    bt.resize(256);
    for (uint64_t s = 501; s <= 4000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 64));
    const Dump d = bt.dump();
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries)
        newest = std::max(newest, e.stamp);
    EXPECT_EQ(newest, 4000u);
}

TEST(Resize, GrowRetainsRecentData)
{
    BTrace bt(resizableConfig());
    for (uint64_t s = 1; s <= 100; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 64));
    bt.resize(128);
    const Dump d = bt.dump();
    uint64_t count = 0;
    for (const DumpEntry &e : d.entries)
        count += e.stamp >= 1 && e.stamp <= 100;
    // The resize quiesce closes blocks but must not destroy them.
    EXPECT_GT(count, 90u);
}

TEST(Resize, ShrinkReleasesPhysicalMemory)
{
    BTrace bt(resizableConfig());
    bt.resize(256);
    for (uint64_t s = 1; s <= 20000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 128));
    const std::size_t before = bt.residentBytes();
    bt.resize(16);
    const std::size_t after = bt.residentBytes();
    EXPECT_LT(after, before / 2);
    EXPECT_LE(after, 40u * 4096);  // ~16 blocks + metadata slack
}

TEST(Resize, SequenceOfResizesKeepsConsistency)
{
    BTrace bt(resizableConfig());
    BTraceInspector insp(bt);
    uint64_t stamp = 0;
    const std::size_t sizes[] = {64, 16, 128, 8, 256, 64};
    for (const std::size_t n : sizes) {
        bt.resize(n);
        EXPECT_EQ(bt.numBlocks(), n);
        for (int i = 0; i < 500; ++i) {
            ++stamp;
            ASSERT_TRUE(bt.record(uint16_t(stamp % 4), 1, stamp, 64));
        }
        const Dump d = bt.dump();
        uint64_t newest = 0;
        for (const DumpEntry &e : d.entries) {
            EXPECT_TRUE(e.payloadOk);
            newest = std::max(newest, e.stamp);
        }
        EXPECT_EQ(newest, stamp);
    }
    EXPECT_GE(insp.ratioLogSize(), 6u);
}

TEST(Resize, ConcurrentProducersSurviveResizes)
{
    // Real threads hammer the tracer while the main thread resizes.
    BTrace bt(resizableConfig());
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < 4; ++c) {
        workers.emplace_back([&, c]() {
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                bt.record(uint16_t(c), c, s, 48);
            }
        });
    }
    for (int i = 0; i < 6; ++i) {
        bt.resize(i % 2 == 0 ? 16 : 128);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true);
    for (auto &w : workers)
        w.join();

    const Dump d = bt.dump();
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(e.payloadOk);
        EXPECT_LE(e.stamp, stamp.load());
    }
    EXPECT_EQ(bt.countersSnapshot().resizes, 6u);
}

#if defined(BTRACE_ENABLE_TEST_HOOKS)

TEST(Resize, ShrinkWaitsForGuardedConsumerEpoch)
{
    // A consumer parked mid-read inside its EpochRegistry::Guard pins
    // the old geometry: the shrink must not decommit (and hand the
    // reader zeroed pages) until that epoch retires (§4.4).
    BTrace bt(resizableConfig());
    for (uint64_t s = 1; s <= 3000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 64));

    PreemptionInjector inj;
    inj.armPark(hooks::YieldPoint::ReadPostCopy);
    Dump d;
    std::thread reader([&] { d = bt.dump(); });
    ASSERT_TRUE(inj.awaitParked(hooks::YieldPoint::ReadPostCopy));

    std::atomic<bool> resized{false};
    std::thread resizer([&] {
        bt.resize(16);
        resized.store(true, std::memory_order_release);
    });

    // The shrink must be blocked on the reader's open epoch.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_FALSE(resized.load(std::memory_order_acquire));

    inj.release(hooks::YieldPoint::ReadPostCopy);
    reader.join();
    resizer.join();
    EXPECT_TRUE(resized.load(std::memory_order_acquire));

    // Everything the reader returned came from still-committed pages:
    // decommitted-to-zero blocks can never appear as intact entries.
    ASSERT_FALSE(d.entries.empty());
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(e.payloadOk);
        EXPECT_GE(e.stamp, 1u);
        EXPECT_LE(e.stamp, 3000u);
    }
}

#endif // BTRACE_ENABLE_TEST_HOOKS

using ResizeDeath = ::testing::Test;

TEST(ResizeDeath, RejectsNonMultipleTarget)
{
    BTrace bt(resizableConfig());
    EXPECT_DEATH(bt.resize(12), "multiple of A");
}

TEST(ResizeDeath, RejectsBeyondMaxBlocks)
{
    BTrace bt(resizableConfig());
    EXPECT_DEATH(bt.resize(512), "multiple of A");
}

} // namespace
} // namespace btrace
