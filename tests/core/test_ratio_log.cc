/** @file Unit tests for the ratio-change history (resizing support). */

#include <gtest/gtest.h>

#include <thread>

#include "core/ratio_log.h"

namespace btrace {
namespace {

TEST(RatioLog, InitialEntryAppliesEverywhere)
{
    RatioLog log;
    log.stage(0, 16);
    log.publish();
    EXPECT_EQ(log.ratioAt(0), 16u);
    EXPECT_EQ(log.ratioAt(123456789), 16u);
    EXPECT_EQ(log.size(), 1u);
}

TEST(RatioLog, ThresholdsSelectTheRightRatio)
{
    RatioLog log;
    log.stage(0, 16);
    log.publish();
    log.stage(1000, 4);
    log.publish();
    log.stage(5000, 32);
    log.publish();

    EXPECT_EQ(log.ratioAt(0), 16u);
    EXPECT_EQ(log.ratioAt(999), 16u);
    EXPECT_EQ(log.ratioAt(1000), 4u);
    EXPECT_EQ(log.ratioAt(4999), 4u);
    EXPECT_EQ(log.ratioAt(5000), 32u);
    EXPECT_EQ(log.ratioAt(~0ull >> 16), 32u);
}

TEST(RatioLog, RestageAdjustsThresholdBeforePublish)
{
    RatioLog log;
    log.stage(0, 8);
    log.publish();
    log.stage(100, 2);
    log.restage(200);  // CAS on the global word moved the position
    log.publish();
    EXPECT_EQ(log.ratioAt(150), 8u);
    EXPECT_EQ(log.ratioAt(200), 2u);
}

TEST(RatioLog, UnpublishedEntryInvisible)
{
    RatioLog log;
    log.stage(0, 8);
    log.publish();
    log.stage(50, 2);  // staged but never published
    EXPECT_EQ(log.ratioAt(60), 8u);
    EXPECT_EQ(log.size(), 1u);
}

TEST(RatioLog, ConcurrentReadersSeeConsistentValues)
{
    RatioLog log;
    log.stage(0, 16);
    log.publish();

    std::atomic<bool> stop{false};
    std::thread reader([&]() {
        while (!stop.load(std::memory_order_relaxed)) {
            const uint32_t r = log.ratioAt(10'000'000);
            // Readers must only ever see fully published ratios.
            ASSERT_TRUE(r == 16u || r == 8u || r == 4u) << r;
        }
    });
    for (uint32_t ratio : {8u, 4u}) {
        log.stage(20'000 * ratio, ratio);
        log.publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true);
    reader.join();
}

TEST(RatioLogDeath, OverflowIsFatal)
{
    RatioLog log;
    for (std::size_t i = 0; i < RatioLog::maxEntries; ++i) {
        log.stage(i * 100, 1);
        log.publish();
    }
    EXPECT_DEATH(log.stage(999999, 1), "too many resizes");
}

} // namespace
} // namespace btrace
