/**
 * @file
 * Real-thread stress tests of BTrace: producers racing across cores,
 * oversubscribed cores with threads preempted by the OS scheduler
 * mid-write, concurrent consumers, and combinations. These complement
 * the deterministic replay tests with genuine hardware concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/auditor.h"
#include "core/btrace.h"

namespace btrace {
namespace {

BTraceConfig
stressConfig(unsigned cores)
{
    BTraceConfig cfg;
    cfg.blockSize = 1024;
    cfg.numBlocks = 128;
    cfg.activeBlocks = 32;
    cfg.cores = cores;
    return cfg;
}

void
checkDumpIntegrity(const Dump &d, uint64_t max_stamp)
{
    std::set<uint64_t> stamps;
    for (const DumpEntry &e : d.entries) {
        ASSERT_GE(e.stamp, 1u);
        ASSERT_LE(e.stamp, max_stamp);
        ASSERT_TRUE(e.payloadOk) << "torn entry at stamp " << e.stamp;
        ASSERT_TRUE(stamps.insert(e.stamp).second)
            << "duplicate stamp " << e.stamp;
    }
}

TEST(Concurrent, OneProducerThreadPerCore)
{
    const unsigned cores = 4;
    BTrace bt(stressConfig(cores));
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < cores; ++c) {
        workers.emplace_back([&, c]() {
            for (int i = 0; i < 20000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                ASSERT_TRUE(bt.record(uint16_t(c), c, s, 48));
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const Dump d = bt.dump();
    ASSERT_FALSE(d.entries.empty());
    checkDumpIntegrity(d, stamp.load());
    EXPECT_EQ(d.unreadableBlocks, 0u);

    const AuditReport rep = BTraceAuditor(bt).audit();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Concurrent, OversubscribedCores)
{
    // 3 threads share each virtual core id: the OS preempts them at
    // arbitrary points, including between allocate and confirm, which
    // exercises out-of-order confirmation and block skipping.
    const unsigned cores = 2;
    BTrace bt(stressConfig(cores));
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < cores; ++c) {
        for (int k = 0; k < 3; ++k) {
            workers.emplace_back([&, c, k]() {
                for (int i = 0; i < 8000; ++i) {
                    const uint64_t s =
                        stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                    ASSERT_TRUE(bt.record(uint16_t(c),
                                          uint32_t(c * 10 + k), s, 40));
                }
            });
        }
    }
    for (auto &w : workers)
        w.join();

    const Dump d = bt.dump();
    checkDumpIntegrity(d, stamp.load());
}

TEST(Concurrent, TwoPhaseWritersWithManualDelays)
{
    // Split-phase writers that hold tickets across an explicit yield:
    // a deterministic way to provoke the preempted-writer paths.
    const unsigned cores = 4;
    BTrace bt(stressConfig(cores));
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < cores; ++c) {
        workers.emplace_back([&, c]() {
            for (int i = 0; i < 5000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                WriteTicket t;
                for (;;) {
                    t = bt.allocate(uint16_t(c), c, 32);
                    if (t.status == AllocStatus::Ok)
                        break;
                    std::this_thread::yield();
                }
                if (i % 7 == 0)
                    std::this_thread::yield();  // hold mid-write
                writeNormal(t.dst, s, uint16_t(c), c, 0, 32);
                bt.confirm(t);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const Dump d = bt.dump();
    checkDumpIntegrity(d, stamp.load());
    EXPECT_EQ(d.unreadableBlocks, 0u);  // everything confirmed
}

TEST(Concurrent, ConsumerRacesProducers)
{
    const unsigned cores = 4;
    BTrace bt(stressConfig(cores));
    std::atomic<uint64_t> stamp{0};
    std::atomic<bool> stop{false};

    std::vector<std::thread> workers;
    for (unsigned c = 0; c < cores; ++c) {
        workers.emplace_back([&, c]() {
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                bt.record(uint16_t(c), c, s, 48);
            }
        });
    }

    // Concurrent dumps: every snapshot must be internally consistent
    // even while producers overwrite blocks under the reader.
    for (int round = 0; round < 30; ++round) {
        const Dump d = bt.dump();
        const uint64_t bound =
            stamp.load(std::memory_order_acquire) + cores + 1;
        std::set<uint64_t> stamps;
        for (const DumpEntry &e : d.entries) {
            ASSERT_GE(e.stamp, 1u);
            ASSERT_LE(e.stamp, bound);
            ASSERT_TRUE(e.payloadOk);
            ASSERT_TRUE(stamps.insert(e.stamp).second);
        }
    }
    stop.store(true);
    for (auto &w : workers)
        w.join();
}

TEST(Concurrent, ParallelConsumers)
{
    const unsigned cores = 2;
    BTrace bt(stressConfig(cores));
    std::atomic<uint64_t> stamp{0};
    std::atomic<bool> stop{false};

    std::vector<std::thread> workers;
    for (unsigned c = 0; c < cores; ++c) {
        workers.emplace_back([&, c]() {
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                bt.record(uint16_t(c), c, s, 32);
            }
        });
    }
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&]() {
            for (int i = 0; i < 10; ++i) {
                const Dump d = bt.dump();
                for (const DumpEntry &e : d.entries)
                    ASSERT_TRUE(e.payloadOk);
            }
        });
    }
    for (auto &r : readers)
        r.join();
    stop.store(true);
    for (auto &w : workers)
        w.join();
}

TEST(Concurrent, CountersAreConsistentAfterStress)
{
    const unsigned cores = 4;
    BTrace bt(stressConfig(cores));
    std::atomic<uint64_t> stamp{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < cores; ++c) {
        workers.emplace_back([&, c]() {
            for (int i = 0; i < 10000; ++i) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                ASSERT_TRUE(bt.record(uint16_t(c), c, s, 48));
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const BTraceCounters::Snapshot ctrs = bt.countersSnapshot();
    EXPECT_EQ(ctrs.fastAllocs, stamp.load());
    EXPECT_GT(ctrs.advances, 0u);
    // Total dummy bytes can never exceed what advancement could have
    // sacrificed: all blocks ever opened.
    const uint64_t opened = ctrs.advances + ctrs.skips +
                            ctrs.coreRaces + 8;
    EXPECT_LE(ctrs.dummyBytes, opened * 1024);

    const AuditReport rep = BTraceAuditor(bt).audit();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

} // namespace
} // namespace btrace
