/**
 * @file
 * Fork-based crash tests of the multi-process ownership protocol
 * (DESIGN.md §11): a child process attaches to the shared arena,
 * takes a lease, and is SIGKILLed at the worst moments — mid-lease
 * and parked at the LeasePreCloseConfirm window (remainder dummied,
 * bulk confirm not yet published). The parent then proves the child
 * dead, reclaims its lease through the graveyard-close path, and
 * audits the completeness invariant: every live round complete or
 * open, every byte confirmed exactly once, the arena fully usable
 * again.
 *
 * Children never run gtest machinery: they report readiness over a
 * pipe and die by SIGKILL (or _exit), so no atexit/teardown runs in
 * the forked copy.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>

#include "common/test_hooks.h"
#include "core/auditor.h"
#include "core/session.h"

namespace btrace {
namespace {

BTraceConfig
shmConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    cfg.storage = StorageKind::Shm;
    return cfg;
}

/** Block until one byte arrives on @p fd; false on EOF/error. */
bool
readByte(int fd)
{
    char b = 0;
    return ::read(fd, &b, 1) == 1;
}

void
signalParent(int fd)
{
    const char b = 'R';
    (void)!::write(fd, &b, 1);
}

/**
 * Audit the parent's view after a reclaim: all A live rounds are
 * either complete or still open, and the byte tiling checks out.
 */
void
expectAuditClean(BTrace &bt, std::size_t active_blocks)
{
    const AuditReport rep = BTraceAuditor(bt).audit();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.totals.completeBlocks + rep.totals.partialBlocks,
              active_blocks);
}

/** Context of the LeasePreCloseConfirm parking hook (see below). */
struct ParkCtx
{
    int readyFd;
};

void
parkAtPreCloseConfirm(hooks::YieldPoint p, void *ctx)
{
    if (p != hooks::YieldPoint::LeasePreCloseConfirm)
        return;
    auto *pc = static_cast<ParkCtx *>(ctx);
    signalParent(pc->readyFd);
    for (;;)
        ::pause();  // hold the window open until SIGKILL
}

TEST(MultiProcess, SweepReclaimsLeaseOfKilledChild)
{
    auto owner = Session::create(shmConfig());
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();
    const int arenaFd = o.shareFd();
    ASSERT_GE(arenaFd, 0);

    int pipeFds[2];
    ASSERT_EQ(::pipe(pipeFds), 0);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: attach as our own registered process, write a few
        // entries through a lease, then stall mid-lease forever.
        ::close(pipeFds[0]);
        auto sess = Session::attachFd(arenaFd);
        if (!sess.ok())
            ::_exit(10);
        Session a = sess.take();
        Lease l = a->lease(1, uint32_t(::getpid()), 16, 8);
        if (!l.ok())
            ::_exit(11);
        for (int k = 0; k < 3; ++k) {
            WriteTicket t = l.allocate(16);
            if (!t.ok())
                ::_exit(12);
            writeNormal(t.dst, uint64_t(k + 1), 1,
                        uint32_t(::getpid()), 0, 16);
            l.confirm(t);
        }
        signalParent(pipeFds[1]);
        for (;;)
            ::pause();  // never closes the lease; SIGKILL target
    }

    ::close(pipeFds[1]);
    ASSERT_TRUE(readByte(pipeFds[0]));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ::close(pipeFds[0]);

    // The child died holding an Active lease record. Prove it dead
    // and reclaim: registry slot cleared, span dummy-filled, block
    // graveyard-closed.
    const SweepReport rep = o.sweepDeadOwners();
    EXPECT_EQ(rep.clearedAttachments, 1u);
    EXPECT_EQ(rep.reclaimedLeases, 1u);
    EXPECT_GT(rep.reclaimedBytes, 0u);
    EXPECT_EQ(rep.ambiguousCloses, 0u);

    // A second sweep finds nothing.
    const SweepReport again = o.sweepDeadOwners();
    EXPECT_EQ(again.clearedAttachments, 0u);
    EXPECT_EQ(again.reclaimedLeases, 0u);

    expectAuditClean(o.tracer(), shmConfig().activeBlocks);

    // The arena is fully usable: the reclaimed block completes and
    // recirculates under continued load.
    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(o->record(0, 1, s, 16));
    expectAuditClean(o.tracer(), shmConfig().activeBlocks);
}

TEST(MultiProcess, SweepReclaimsChildParkedAtPreCloseConfirm)
{
    auto owner = Session::create(shmConfig());
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();
    const int arenaFd = o.shareFd();

    int pipeFds[2];
    ASSERT_EQ(::pipe(pipeFds), 0);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: write through a lease, then die *inside* leaseClose
        // — remainder dummy-filled, Confirmed publish still pending,
        // owner record still Active. The narrowest window the
        // sweeper has to get right: claiming the record before the
        // (dead) producer's confirm must not double-publish.
        ::close(pipeFds[0]);
        auto sess = Session::attachFd(arenaFd);
        if (!sess.ok())
            ::_exit(10);
        Session a = sess.take();
        Lease l = a->lease(1, uint32_t(::getpid()), 16, 8);
        if (!l.ok())
            ::_exit(11);
        WriteTicket t = l.allocate(16);
        if (!t.ok())
            ::_exit(12);
        writeNormal(t.dst, 77, 1, uint32_t(::getpid()), 0, 16);
        l.confirm(t);

        static ParkCtx ctx;
        ctx.readyFd = pipeFds[1];
        hooks::setHook(parkAtPreCloseConfirm, &ctx);
        l.close();   // parks at LeasePreCloseConfirm; never returns
        ::_exit(13); // unreachable
    }

    ::close(pipeFds[1]);
    ASSERT_TRUE(readByte(pipeFds[0]));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ::close(pipeFds[0]);

    const SweepReport rep = o.sweepDeadOwners();
    EXPECT_EQ(rep.clearedAttachments, 1u);
    EXPECT_EQ(rep.reclaimedLeases, 1u);

    expectAuditClean(o.tracer(), shmConfig().activeBlocks);

    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(o->record(0, 1, s, 16));
    expectAuditClean(o.tracer(), shmConfig().activeBlocks);
}

TEST(MultiProcess, CleanChildExitLeavesNothingToSweep)
{
    auto owner = Session::create(shmConfig());
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();
    const int arenaFd = o.shareFd();

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        {
            auto sess = Session::attachFd(arenaFd);
            if (!sess.ok())
                ::_exit(10);
            Session a = sess.take();
            for (uint64_t s = 1; s <= 40; ++s)
                if (!a->record(2, uint32_t(::getpid()), s, 16))
                    ::_exit(11);
            // ~Session runs here: the clean detach path.
        }
        ::_exit(0);
    }

    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), 0);

    // Clean detach released the registry slot: nothing to sweep, and
    // the child's entries are durable.
    const SweepReport rep = o.sweepDeadOwners();
    EXPECT_EQ(rep.clearedAttachments, 0u);
    EXPECT_EQ(rep.reclaimedLeases, 0u);

    const Dump d = o->dump();
    EXPECT_EQ(d.entries.size(), 40u);
}

TEST(MultiProcess, SweepReclaimsSeveralKilledChildren)
{
    auto owner = Session::create(shmConfig());
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();
    const int arenaFd = o.shareFd();

    constexpr int kChildren = 3;
    pid_t kids[kChildren];
    int pipes[kChildren][2];
    for (int c = 0; c < kChildren; ++c) {
        ASSERT_EQ(::pipe(pipes[c]), 0);
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ::close(pipes[c][0]);
            auto sess = Session::attachFd(arenaFd);
            if (!sess.ok())
                ::_exit(10);
            Session a = sess.take();
            // Distinct cores so every child holds its own block.
            Lease l = a->lease(uint16_t(c), uint32_t(::getpid()), 16, 4);
            if (!l.ok())
                ::_exit(11);
            WriteTicket t = l.allocate(16);
            if (!t.ok())
                ::_exit(12);
            writeNormal(t.dst, uint64_t(c + 1), uint16_t(c),
                        uint32_t(::getpid()), 0, 16);
            l.confirm(t);
            signalParent(pipes[c][1]);
            for (;;)
                ::pause();
        }
        kids[c] = pid;
        ::close(pipes[c][1]);
    }
    for (int c = 0; c < kChildren; ++c) {
        ASSERT_TRUE(readByte(pipes[c][0]));
        ::close(pipes[c][0]);
    }
    for (int c = 0; c < kChildren; ++c) {
        ASSERT_EQ(::kill(kids[c], SIGKILL), 0);
        int wstatus = 0;
        ASSERT_EQ(::waitpid(kids[c], &wstatus, 0), kids[c]);
    }

    const SweepReport rep = o.sweepDeadOwners();
    EXPECT_EQ(rep.clearedAttachments, uint64_t(kChildren));
    EXPECT_EQ(rep.reclaimedLeases, uint64_t(kChildren));

    expectAuditClean(o.tracer(), shmConfig().activeBlocks);

    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(o->record(0, 1, s, 16));
    expectAuditClean(o.tracer(), shmConfig().activeBlocks);
}

TEST(MultiProcess, KilledChildWithoutLeaseOnlyClearsRegistry)
{
    auto owner = Session::create(shmConfig());
    ASSERT_TRUE(owner.ok()) << owner.status().toString();
    Session o = owner.take();
    const int arenaFd = o.shareFd();

    int pipeFds[2];
    ASSERT_EQ(::pipe(pipeFds), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ::close(pipeFds[0]);
        auto sess = Session::attachFd(arenaFd);
        if (!sess.ok())
            ::_exit(10);
        Session a = sess.take();
        // Ordinary confirmed writes only — nothing left outstanding.
        for (uint64_t s = 1; s <= 10; ++s)
            if (!a->record(1, uint32_t(::getpid()), s, 16))
                ::_exit(11);
        signalParent(pipeFds[1]);
        for (;;)
            ::pause();
    }
    ::close(pipeFds[1]);
    ASSERT_TRUE(readByte(pipeFds[0]));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ::close(pipeFds[0]);

    const SweepReport rep = o.sweepDeadOwners();
    EXPECT_EQ(rep.clearedAttachments, 1u);
    EXPECT_EQ(rep.reclaimedLeases, 0u);  // no lease was outstanding

    // The child's confirmed entries survive the crash.
    const Dump d = o->dump();
    EXPECT_EQ(d.entries.size(), 10u);
}

} // namespace
} // namespace btrace
