/**
 * @file
 * Unit tests for the speculative consumer (§4.3): snapshot semantics,
 * unreadable in-flight blocks, window bounds, and integrity of the
 * returned entries.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/btrace.h"

#include "inspector.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32,
            std::size_t active = 8, unsigned cores = 4)
{
    BTraceConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

TEST(Consumer, EmptyTracerDumpsNothing)
{
    BTrace bt(smallConfig());
    const Dump d = bt.dump();
    EXPECT_TRUE(d.entries.empty());
    EXPECT_EQ(d.skippedBlocks, 0u);
    EXPECT_EQ(d.abandonedBlocks, 0u);
}

TEST(Consumer, ReadsPartiallyFilledActiveBlock)
{
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(0, 1, 42, 16));
    const Dump d = bt.dump();
    ASSERT_EQ(d.entries.size(), 1u);
    EXPECT_EQ(d.entries[0].stamp, 42u);
}

TEST(Consumer, DumpIsNonDestructiveAndRepeatable)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 100; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    const Dump a = bt.dump();
    const Dump b = bt.dump();
    EXPECT_EQ(a.entries.size(), b.entries.size());
    // Writes continue to work after dumping.
    EXPECT_TRUE(bt.record(0, 1, 101, 16));
}

TEST(Consumer, NoDuplicateStamps)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 3000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = bt.dump();
    std::set<uint64_t> seen;
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(seen.insert(e.stamp).second)
            << "duplicate stamp " << e.stamp;
    }
}

TEST(Consumer, AllRetainedEntriesWereProducedAndIntact)
{
    BTrace bt(smallConfig());
    const uint64_t total = 5000;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), uint32_t(s % 7), s, 24));
    const Dump d = bt.dump();
    ASSERT_FALSE(d.entries.empty());
    for (const DumpEntry &e : d.entries) {
        EXPECT_GE(e.stamp, 1u);
        EXPECT_LE(e.stamp, total);
        EXPECT_TRUE(e.payloadOk);
        EXPECT_EQ(e.core, e.stamp % 4);
        EXPECT_EQ(e.thread, e.stamp % 7);
    }
}

TEST(Consumer, NewestEntryAlwaysRetained)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 4000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = bt.dump();
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries)
        newest = std::max(newest, e.stamp);
    EXPECT_EQ(newest, 4000u);
}

TEST(Consumer, UnconfirmedWriteHidesOnlyItsBlock)
{
    BTrace bt(smallConfig());
    // Core 0 writes confirmed data; core 1 holds an unconfirmed write.
    for (uint64_t s = 1; s <= 10; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    WriteTicket held = bt.allocate(1, 9, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);

    const Dump d = bt.dump();
    EXPECT_EQ(d.entries.size(), 10u);       // core 0 data all readable
    EXPECT_EQ(d.unreadableBlocks, 1u);      // core 1's block hidden

    writeNormal(held.dst, 11, 1, 9, 0, 16);
    bt.confirm(held);
    const Dump d2 = bt.dump();
    EXPECT_EQ(d2.entries.size(), 11u);
    EXPECT_EQ(d2.unreadableBlocks, 0u);
}

TEST(Consumer, RetainedVolumeApproachesCapacityUnderUniformLoad)
{
    // With the paper's geometry ratio (A = N/4 here) and uniform
    // production, the dump should retain most of the buffer.
    BTrace bt(smallConfig(256, 64, 8, 4));
    for (uint64_t s = 1; s <= 20000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = bt.dump();
    double bytes = 0;
    for (const DumpEntry &e : d.entries)
        bytes += e.size;
    // 64 blocks x 256 B = 16 KB capacity; expect > 60 % retained as
    // entry payload (headers/dummies eat some).
    EXPECT_GT(bytes, 0.6 * 16384);
}

TEST(Consumer, DumpSinceReportsOverwrittenPositions)
{
    BTrace bt(smallConfig(256, 32, 8, 1));
    BTraceInspector insp(bt);
    const uint64_t n = 32;  // last-N window = numBlocks

    for (uint64_t s = 1; s <= 5000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));

    // A cursor at 0 lost everything before the overwrite frontier.
    DumpCursor cursor;
    const uint64_t frontier1 = insp.globalWord().pos - n;
    const Dump d1 = bt.dumpFrom(cursor);
    EXPECT_EQ(d1.overwrittenPositions, frontier1 - 0);
    EXPECT_FALSE(d1.entries.empty());

    // A consumer that kept up loses nothing.
    const Dump d2 = bt.dumpFrom(cursor);
    EXPECT_EQ(d2.overwrittenPositions, 0u);

    // Fall behind again: the loss is exactly cursor-to-frontier.
    const uint64_t lagging = cursor.position;
    for (uint64_t s = 5001; s <= 10000; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    const uint64_t frontier2 = insp.globalWord().pos - n;
    ASSERT_GT(frontier2, lagging);
    const Dump d3 = bt.dumpFrom(cursor);
    EXPECT_EQ(d3.overwrittenPositions, frontier2 - lagging);
}

TEST(Consumer, TornConfirmedCountNeverOverrunsScratch)
{
    // Regression: a non-8-multiple Confirmed count (torn or corrupted
    // metadata word) must degrade to a short read; the word-copy loop
    // used to resize scratch to the odd length and then copy past its
    // end in whole words.
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(0, 1, 1, 16));

    BTraceInspector insp(bt);
    const uint64_t pos = insp.coreWord(0).pos;
    const std::size_t m = pos % insp.activeBlocks();
    const RndPos conf = insp.confirmed(m);
    ASSERT_EQ(conf.pos % 8, 0u);

    const RndPos odd{conf.rnd, conf.pos - 4};
    insp.seedMetadata(m, odd, odd);  // alloc == conf: looks readable

    std::vector<uint8_t> scratch;  // empty: forces the exact-size resize
    Dump out;
    insp.readBlockRaw(insp.physicalOf(pos), pos, pos + 1, scratch, out);

    // The truncated copy cannot parse into whole entries; the block
    // must be discarded, not returned torn (and not overrun scratch —
    // ASan enforces that part).
    EXPECT_TRUE(out.entries.empty());
    EXPECT_EQ(out.abandonedBlocks + out.unreadableBlocks, 1u);
}

TEST(Consumer, ManyConcurrentDumpGuardsAllowed)
{
    // The epoch registry has bounded slots; sequential dumps must
    // recycle them indefinitely.
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(0, 1, 1, 16));
    for (int i = 0; i < 100; ++i)
        bt.dump();
    SUCCEED();
}

} // namespace
} // namespace btrace
