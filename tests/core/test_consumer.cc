/**
 * @file
 * Unit tests for the speculative consumer (§4.3): snapshot semantics,
 * unreadable in-flight blocks, window bounds, and integrity of the
 * returned entries.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/btrace.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32,
            std::size_t active = 8, unsigned cores = 4)
{
    BTraceConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

TEST(Consumer, EmptyTracerDumpsNothing)
{
    BTrace bt(smallConfig());
    const Dump d = bt.dump();
    EXPECT_TRUE(d.entries.empty());
    EXPECT_EQ(d.skippedBlocks, 0u);
    EXPECT_EQ(d.abandonedBlocks, 0u);
}

TEST(Consumer, ReadsPartiallyFilledActiveBlock)
{
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(0, 1, 42, 16));
    const Dump d = bt.dump();
    ASSERT_EQ(d.entries.size(), 1u);
    EXPECT_EQ(d.entries[0].stamp, 42u);
}

TEST(Consumer, DumpIsNonDestructiveAndRepeatable)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 100; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    const Dump a = bt.dump();
    const Dump b = bt.dump();
    EXPECT_EQ(a.entries.size(), b.entries.size());
    // Writes continue to work after dumping.
    EXPECT_TRUE(bt.record(0, 1, 101, 16));
}

TEST(Consumer, NoDuplicateStamps)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 3000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = bt.dump();
    std::set<uint64_t> seen;
    for (const DumpEntry &e : d.entries) {
        EXPECT_TRUE(seen.insert(e.stamp).second)
            << "duplicate stamp " << e.stamp;
    }
}

TEST(Consumer, AllRetainedEntriesWereProducedAndIntact)
{
    BTrace bt(smallConfig());
    const uint64_t total = 5000;
    for (uint64_t s = 1; s <= total; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), uint32_t(s % 7), s, 24));
    const Dump d = bt.dump();
    ASSERT_FALSE(d.entries.empty());
    for (const DumpEntry &e : d.entries) {
        EXPECT_GE(e.stamp, 1u);
        EXPECT_LE(e.stamp, total);
        EXPECT_TRUE(e.payloadOk);
        EXPECT_EQ(e.core, e.stamp % 4);
        EXPECT_EQ(e.thread, e.stamp % 7);
    }
}

TEST(Consumer, NewestEntryAlwaysRetained)
{
    BTrace bt(smallConfig());
    for (uint64_t s = 1; s <= 4000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = bt.dump();
    uint64_t newest = 0;
    for (const DumpEntry &e : d.entries)
        newest = std::max(newest, e.stamp);
    EXPECT_EQ(newest, 4000u);
}

TEST(Consumer, UnconfirmedWriteHidesOnlyItsBlock)
{
    BTrace bt(smallConfig());
    // Core 0 writes confirmed data; core 1 holds an unconfirmed write.
    for (uint64_t s = 1; s <= 10; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 16));
    WriteTicket held = bt.allocate(1, 9, 16);
    ASSERT_EQ(held.status, AllocStatus::Ok);

    const Dump d = bt.dump();
    EXPECT_EQ(d.entries.size(), 10u);       // core 0 data all readable
    EXPECT_EQ(d.unreadableBlocks, 1u);      // core 1's block hidden

    writeNormal(held.dst, 11, 1, 9, 0, 16);
    bt.confirm(held);
    const Dump d2 = bt.dump();
    EXPECT_EQ(d2.entries.size(), 11u);
    EXPECT_EQ(d2.unreadableBlocks, 0u);
}

TEST(Consumer, RetainedVolumeApproachesCapacityUnderUniformLoad)
{
    // With the paper's geometry ratio (A = N/4 here) and uniform
    // production, the dump should retain most of the buffer.
    BTrace bt(smallConfig(256, 64, 8, 4));
    for (uint64_t s = 1; s <= 20000; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 16));
    const Dump d = bt.dump();
    double bytes = 0;
    for (const DumpEntry &e : d.entries)
        bytes += e.size;
    // 64 blocks x 256 B = 16 KB capacity; expect > 60 % retained as
    // entry payload (headers/dummies eat some).
    EXPECT_GT(bytes, 0.6 * 16384);
}

TEST(Consumer, ManyConcurrentDumpGuardsAllowed)
{
    // The epoch registry has bounded slots; sequential dumps must
    // recycle them indefinitely.
    BTrace bt(smallConfig());
    ASSERT_TRUE(bt.record(0, 1, 1, 16));
    for (int i = 0; i < 100; ++i)
        bt.dump();
    SUCCEED();
}

} // namespace
} // namespace btrace
