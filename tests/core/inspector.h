/** @file White-box access to BTrace internals for unit tests. */

#ifndef BTRACE_TESTS_CORE_INSPECTOR_H
#define BTRACE_TESTS_CORE_INSPECTOR_H

#include "core/btrace.h"

namespace btrace {

/** Declared a friend of BTrace; exposes internal state read-only. */
class BTraceInspector
{
  public:
    explicit BTraceInspector(BTrace &t) : bt(t) {}

    RndPos allocated(std::size_t meta_idx) const
    {
        return bt.meta[meta_idx].loadAllocated();
    }

    RndPos confirmed(std::size_t meta_idx) const
    {
        return bt.meta[meta_idx].loadConfirmed();
    }

    RatioPos globalWord() const
    {
        return RatioPos::unpack(
            bt.global->load(std::memory_order_acquire));
    }

    RatioPos coreWord(unsigned core) const
    {
        return RatioPos::unpack(
            bt.coreLocal[core]->load(std::memory_order_acquire));
    }

    std::size_t activeBlocks() const { return bt.numActive; }

    /** Live atomic counters (test-only; prefer countersSnapshot()). */
    const BTraceCounters &rawCounters() const { return bt.ctrs; }

    uint64_t physicalOf(uint64_t pos) const { return bt.physicalOf(pos); }

    const uint8_t *blockData(uint64_t phys) const
    {
        return bt.blockData(phys);
    }

    std::size_t ratioLogSize() const { return bt.ratioLog.size(); }

    // --- State seeding (white-box; callers own consistency) ----------

    /** Overwrite one metadata block's Allocated/Confirmed words. */
    void
    seedMetadata(std::size_t meta_idx, RndPos alloc, RndPos conf)
    {
        bt.meta[meta_idx].allocated.store(alloc.packed(),
                                          std::memory_order_release);
        bt.meta[meta_idx].confirmed.store(conf.packed(),
                                          std::memory_order_release);
    }

    /** Overwrite the global ratio_and_pos word. */
    void
    seedGlobal(RatioPos word)
    {
        bt.global->store(word.packed(), std::memory_order_release);
    }

    /** Overwrite one core-local ratio_and_pos word. */
    void
    seedCoreWord(unsigned core, RatioPos word)
    {
        bt.coreLocal[core]->store(word.packed(),
                                  std::memory_order_release);
    }

    /**
     * Direct call into the private speculative reader, with a caller-
     * controlled scratch buffer (regression surface for the scratch
     * sizing contract). Classifies an Abandoned outcome the way
     * dump() does.
     */
    BlockReadStatus
    readBlockRaw(uint64_t phys, uint64_t window_start,
                 uint64_t window_end, std::vector<uint8_t> &scratch,
                 Dump &out)
    {
        const BlockReadStatus r =
            bt.readBlock(phys, window_start, window_end, scratch, out);
        if (r == BlockReadStatus::Abandoned)
            ++out.abandonedBlocks;
        return r;
    }

  private:
    BTrace &bt;
};

} // namespace btrace

#endif // BTRACE_TESTS_CORE_INSPECTOR_H
