/** @file White-box access to BTrace internals for unit tests. */

#ifndef BTRACE_TESTS_CORE_INSPECTOR_H
#define BTRACE_TESTS_CORE_INSPECTOR_H

#include "core/btrace.h"

namespace btrace {

/** Declared a friend of BTrace; exposes internal state read-only. */
class BTraceInspector
{
  public:
    explicit BTraceInspector(BTrace &t) : bt(t) {}

    RndPos allocated(std::size_t meta_idx) const
    {
        return bt.meta[meta_idx].loadAllocated();
    }

    RndPos confirmed(std::size_t meta_idx) const
    {
        return bt.meta[meta_idx].loadConfirmed();
    }

    RatioPos globalWord() const
    {
        return RatioPos::unpack(
            bt.global->load(std::memory_order_acquire));
    }

    RatioPos coreWord(unsigned core) const
    {
        return RatioPos::unpack(
            bt.coreLocal[core]->load(std::memory_order_acquire));
    }

    std::size_t activeBlocks() const { return bt.numActive; }

    uint64_t physicalOf(uint64_t pos) const { return bt.physicalOf(pos); }

    const uint8_t *blockData(uint64_t phys) const
    {
        return bt.blockData(phys);
    }

    std::size_t ratioLogSize() const { return bt.ratioLog.size(); }

  private:
    BTrace &bt;
};

} // namespace btrace

#endif // BTRACE_TESTS_CORE_INSPECTOR_H
