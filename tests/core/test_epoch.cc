/** @file Unit tests for the consumer epoch registry (EBR, §4.4). */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/epoch.h"

namespace btrace {
namespace {

TEST(Epoch, SynchronizeWithNoReadersReturnsImmediately)
{
    EpochRegistry reg;
    reg.synchronize();
    SUCCEED();
}

TEST(Epoch, SynchronizeAfterReaderExitReturns)
{
    EpochRegistry reg;
    {
        EpochRegistry::Guard guard(reg);
    }
    reg.synchronize();
    SUCCEED();
}

TEST(Epoch, SynchronizeWaitsForActiveReader)
{
    EpochRegistry reg;
    std::atomic<bool> reader_in{false};
    std::atomic<bool> synced{false};

    std::thread reader([&]() {
        EpochRegistry::Guard guard(reg);
        reader_in.store(true);
        // Hold the epoch long enough that synchronize() must wait.
        while (!synced.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            break;  // exit after one beat; synchronize() then returns
        }
    });

    while (!reader_in.load(std::memory_order_acquire))
        std::this_thread::yield();
    reg.synchronize();  // must not return before the guard dropped
    synced.store(true);
    reader.join();
    SUCCEED();
}

TEST(Epoch, LateReadersDoNotBlockSynchronize)
{
    // synchronize() waits only for readers active at snapshot time;
    // a reader entering afterwards must not extend the wait. We can't
    // prove non-blocking directly, but repeated overlapping cycles
    // must terminate quickly.
    EpochRegistry reg;
    std::atomic<bool> stop{false};
    std::thread churn([&]() {
        while (!stop.load(std::memory_order_relaxed)) {
            EpochRegistry::Guard guard(reg);
        }
    });
    for (int i = 0; i < 200; ++i)
        reg.synchronize();
    stop.store(true);
    churn.join();
    SUCCEED();
}

TEST(Epoch, ManyConcurrentGuardsShareSlots)
{
    EpochRegistry reg;
    std::vector<std::thread> readers;
    std::atomic<int> peak{0};
    std::atomic<int> active{0};
    for (int i = 0; i < 24; ++i) {  // more threads than slots
        readers.emplace_back([&]() {
            for (int k = 0; k < 200; ++k) {
                EpochRegistry::Guard guard(reg);
                const int now = active.fetch_add(1) + 1;
                int prev = peak.load();
                while (prev < now && !peak.compare_exchange_weak(prev, now))
                    ;
                active.fetch_sub(1);
            }
        });
    }
    for (auto &r : readers)
        r.join();
    // On a single-CPU host the guards may never physically overlap;
    // the essential property is that 24 threads shared 16 slots with
    // no deadlock and no slot leak (synchronize() returns instantly).
    EXPECT_GE(peak.load(), 1);
    reg.synchronize();
}

} // namespace
} // namespace btrace
