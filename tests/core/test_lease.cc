/**
 * @file
 * Unit and interleaving tests for thread-local block leasing (§4.1
 * amortized): span grant and bump-pointer serving, bulk confirmation
 * at close, revocation accounting for abandoned leases, and the
 * skip/sacrifice semantics of blocks held across a preemption — all
 * validated with BTraceAuditor after each scenario.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/auditor.h"
#include "core/btrace.h"
#include "inspector.h"
#include "sim/schedule.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(std::size_t block = 256, std::size_t blocks = 32,
            std::size_t active = 8, unsigned cores = 4)
{
    BTraceConfig cfg;
    cfg.blockSize = block;
    cfg.numBlocks = blocks;
    cfg.activeBlocks = active;
    cfg.cores = cores;
    return cfg;
}

BTraceConfig
largeConfig()
{
    return smallConfig(1 << 16, 64, 16, 4);
}

void
expectCleanAudit(BTrace &bt)
{
    const AuditReport rep = BTraceAuditor(bt).audit();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Lease, GrantServeConfirmClose)
{
    BTrace bt(largeConfig());
    Lease l = bt.lease(0, 7, 16, 8);
    ASSERT_TRUE(l.ok());
    EXPECT_TRUE(l.batched());
    EXPECT_EQ(l.core(), 0);
    EXPECT_EQ(l.thread(), 7u);
    EXPECT_EQ(bt.countersSnapshot().leases, 1u);
    EXPECT_GT(bt.countersSnapshot().leasedOutstanding, 0u);

    const uint8_t *prev = nullptr;
    for (int i = 0; i < 8; ++i) {
        WriteTicket t = l.allocate(16);
        ASSERT_TRUE(t.ok());
        EXPECT_TRUE(t.leased);
        if (prev != nullptr)
            EXPECT_EQ(t.dst, prev + EntryLayout::normalSize(16));
        prev = t.dst;
        writeNormal(t.dst, uint64_t(i) + 1, 0, 7, 0, 16);
        l.confirm(t);
    }
    EXPECT_EQ(l.entries(), 8u);
    l.close();
    EXPECT_TRUE(l.closed());
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    EXPECT_EQ(bt.countersSnapshot().leaseEntries, 8u);

    const Dump d = bt.dump();
    EXPECT_EQ(d.entries.size(), 8u);
    expectCleanAudit(bt);
}

TEST(Lease, SpanNeverExceedsBlockAndRenewalWorks)
{
    // cap 240 usable bytes: a lease of 1000 entries degenerates to
    // whatever the current block holds; exhaustion means renew.
    BTrace bt(smallConfig());
    Lease l = bt.lease(0, 1, 16, 1000);
    ASSERT_TRUE(l.ok());
    EXPECT_LE(l.remainingBytes(), 256u - EntryLayout::blockHeaderBytes);

    uint64_t stamp = 0;
    int renewals = 0;
    for (int i = 0; i < 100; ++i) {
        WriteTicket t = l.allocate(16);
        if (!t.ok()) {
            l.close();
            l = bt.lease(0, 1, 16, 1000);
            ASSERT_TRUE(l.ok()) << "renewal " << renewals;
            ++renewals;
            t = l.allocate(16);
            ASSERT_TRUE(t.ok());
        }
        writeNormal(t.dst, ++stamp, 0, 1, 0, 16);
        l.confirm(t);
    }
    l.close();
    EXPECT_GT(renewals, 0);
    expectCleanAudit(bt);
}

TEST(Lease, SharedRmwsAmortizedAcrossBatch)
{
    // The acceptance criterion made executable: N events through
    // leases of 50 must issue far fewer shared RMWs than N events
    // through the single-entry path (2 FAAs each).
    constexpr int events = 1000;

    BTrace single(largeConfig());
    for (int i = 0; i < events; ++i)
        ASSERT_TRUE(single.record(0, 1, uint64_t(i) + 1, 48));
    const uint64_t rmwSingle = single.countersSnapshot().sharedRmws;

    BTrace leased(largeConfig());
    uint64_t stamp = 0;
    Lease l;
    for (int i = 0; i < events; ++i) {
        WriteTicket t = l.closed() ? WriteTicket{} : l.allocate(48);
        if (!t.ok()) {
            l.close();
            l = leased.lease(0, 1, 48, 50);
            ASSERT_TRUE(l.ok());
            t = l.allocate(48);
            ASSERT_TRUE(t.ok());
        }
        writeNormal(t.dst, ++stamp, 0, 1, 0, 48);
        l.confirm(t);
    }
    l.close();
    const uint64_t rmwLeased = leased.countersSnapshot().sharedRmws;

    EXPECT_EQ(leased.countersSnapshot().leaseEntries, uint64_t(events));
    // ~2/event vs ~2/50-event batch; demand at least a 5x reduction
    // to leave headroom for advancement traffic on both sides.
    EXPECT_LT(rmwLeased * 5, rmwSingle)
        << "single=" << rmwSingle << " leased=" << rmwLeased;
    expectCleanAudit(single);
    expectCleanAudit(leased);
}

TEST(Lease, AbandonedTicketIsDummyFilledNotLost)
{
    BTrace bt(largeConfig());
    Lease l = bt.lease(0, 1, 16, 4);
    ASSERT_TRUE(l.ok());
    WriteTicket keep = l.allocate(16);
    WriteTicket drop = l.allocate(16);
    ASSERT_TRUE(keep.ok());
    ASSERT_TRUE(drop.ok());
    writeNormal(keep.dst, 1, 0, 1, 0, 16);
    l.confirm(keep);
    l.abandon(drop);  // dummy-filled: no deficit
    l.close();
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);

    const Dump d = bt.dump();
    EXPECT_EQ(d.entries.size(), 1u);
    expectCleanAudit(bt);
}

TEST(Lease, UnconfirmedSlotLeavesReconciledDeficit)
{
    // A served-but-never-confirmed slot is the revocation case: close
    // publishes around the hole, the block never completes, and the
    // auditor must reconcile the deficit against leasedOutstanding.
    BTrace bt(largeConfig());
    Lease l = bt.lease(0, 1, 16, 4);
    ASSERT_TRUE(l.ok());
    WriteTicket a = l.allocate(16);
    WriteTicket lost = l.allocate(16);
    WriteTicket b = l.allocate(16);
    ASSERT_TRUE(a.ok() && lost.ok() && b.ok());
    writeNormal(a.dst, 1, 0, 1, 0, 16);
    writeNormal(b.dst, 2, 0, 1, 0, 16);
    l.confirm(a);
    l.confirm(b);
    l.close();  // `lost` never confirmed nor abandoned

    const auto hole = uint64_t(EntryLayout::normalSize(16));
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, hole);
    expectCleanAudit(bt);
}

TEST(Lease, LostConfirmWithoutLeaseStillFailsAudit)
{
    // The deficit tolerance must not weaken the invariant for the
    // single-entry path: an unconfirmed ordinary write has no lease
    // to blame and stays a violation.
    BTrace bt(largeConfig());
    WriteTicket t = bt.allocate(0, 1, 16);
    ASSERT_TRUE(t.ok());
    writeNormal(t.dst, 1, 0, 1, 0, 16);
    // no confirm
    const AuditReport rep = BTraceAuditor(bt).audit();
    EXPECT_FALSE(rep.ok());
}

TEST(Lease, WholeLeaseDroppedWithoutServing)
{
    BTrace bt(largeConfig());
    {
        Lease l = bt.lease(0, 1, 16, 16);
        ASSERT_TRUE(l.ok());
        // Destructor closes: the whole span returns as one dummy.
    }
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    EXPECT_EQ(bt.dump().entries.size(), 0u);
    expectCleanAudit(bt);
}

TEST(Lease, StaleLeaseSurvivesCoreAdvancement)
{
    // Other writers fill the rest of the block and advance the core
    // while the lease is open; its claimed span stays private and
    // valid, and the block completes once the lease publishes.
    BTrace bt(smallConfig());
    Lease l = bt.lease(0, 1, 16, 2);
    ASSERT_TRUE(l.ok());

    // Fill the remainder of core 0's block and push it to a new one.
    const uint64_t advances = bt.countersSnapshot().advances;
    uint64_t stamp = 100;
    while (bt.countersSnapshot().advances == advances)
        ASSERT_TRUE(bt.record(0, 2, ++stamp, 16));

    // The lease still serves from the old block.
    WriteTicket t = l.allocate(16);
    ASSERT_TRUE(t.ok());
    writeNormal(t.dst, 1, 0, 1, 0, 16);
    l.confirm(t);
    l.close();
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    expectCleanAudit(bt);
}

TEST(Lease, MigrationClosesAndReleasesOnNewCore)
{
    BTrace bt(smallConfig());
    Lease l = bt.lease(0, 1, 16, 2);
    ASSERT_TRUE(l.ok());
    WriteTicket t = l.allocate(16);
    ASSERT_TRUE(t.ok());
    writeNormal(t.dst, 1, 0, 1, 0, 16);
    l.confirm(t);

    // Migrate to core 1 mid-lease: close, re-lease there.
    l.close();
    Lease l2 = bt.lease(1, 1, 16, 2);
    ASSERT_TRUE(l2.ok());
    EXPECT_EQ(l2.core(), 1);
    WriteTicket t2 = l2.allocate(16);
    ASSERT_TRUE(t2.ok());
    writeNormal(t2.dst, 2, 1, 1, 0, 16);
    l2.confirm(t2);
    l2.close();

    EXPECT_EQ(bt.countersSnapshot().leases, 2u);
    EXPECT_EQ(bt.dump().entries.size(), 2u);
    expectCleanAudit(bt);
}

TEST(Lease, BlockClosedAndSkippedUnderOpenLease)
{
    // Wrap the buffer while a lease is open: advancers close the
    // unleased tail of the held block but can never steal the leased
    // span, so the block is sacrificed (§3.4) until the lease
    // publishes. Late writes through the lease stay memory-safe.
    BTrace bt(smallConfig());
    Lease l = bt.lease(0, 1, 16, 2);
    ASSERT_TRUE(l.ok());

    uint64_t stamp = 1000;
    int spins = 0;
    while (bt.countersSnapshot().skips == 0 && spins < 200000) {
        const uint16_t core = uint16_t(1 + (spins % 3));
        ASSERT_TRUE(bt.record(core, 9, ++stamp, 16));
        ++spins;
    }
    EXPECT_GT(bt.countersSnapshot().skips, 0u);

    WriteTicket t = l.allocate(16);
    ASSERT_TRUE(t.ok());
    writeNormal(t.dst, 1, 0, 1, 0, 16);
    l.confirm(t);
    l.close();
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    expectCleanAudit(bt);
}

#if defined(BTRACE_ENABLE_TEST_HOOKS) && BTRACE_ENABLE_TEST_HOOKS

TEST(LeaseInterleaving, OwnerParkedInsideCloseWhileBlockSacrificed)
{
    // The thread is descheduled inside close() after dummying the
    // remainder but before the bulk confirm — the widest revocation
    // window. Concurrent writers wrap the buffer and sacrifice the
    // held block; the late confirm must still land in the metadata
    // and complete the round.
    PreemptionInjector inj;
    BTrace bt(smallConfig());

    inj.armPark(hooks::YieldPoint::LeasePreCloseConfirm);
    std::thread owner([&]() {
        Lease l = bt.lease(0, 1, 16, 2);
        ASSERT_TRUE(l.ok());
        WriteTicket t = l.allocate(16);
        ASSERT_TRUE(t.ok());
        writeNormal(t.dst, 1, 0, 1, 0, 16);
        l.confirm(t);
        l.close();  // parks at LeasePreCloseConfirm
    });
    ASSERT_TRUE(
        inj.awaitParked(hooks::YieldPoint::LeasePreCloseConfirm));

    uint64_t stamp = 1000;
    int spins = 0;
    while (bt.countersSnapshot().skips == 0 && spins < 200000) {
        const uint16_t core = uint16_t(1 + (spins % 3));
        ASSERT_TRUE(bt.record(core, 9, ++stamp, 16));
        ++spins;
    }
    EXPECT_GT(bt.countersSnapshot().skips, 0u);

    inj.release(hooks::YieldPoint::LeasePreCloseConfirm);
    owner.join();
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    expectCleanAudit(bt);
}

TEST(LeaseInterleaving, ClaimRacesRoundTurnover)
{
    // Park the leasing thread between its core-local read and the
    // span fetch_add, wrap the buffer so the metadata is re-locked
    // for a newer round, then let the stale claim land: it must be
    // dummy-filled into the new round, never granted.
    PreemptionInjector inj;
    BTrace bt(smallConfig());

    // Prime core 0 so the lease path starts from a live block.
    ASSERT_TRUE(bt.record(0, 1, 1, 16));

    inj.armPark(hooks::YieldPoint::LeasePreClaim);
    std::thread leaser([&]() {
        Lease l = bt.lease(0, 1, 16, 2);
        // Granted-after-retry or denied are both legal outcomes; the
        // auditor below decides whether accounting survived.
        if (l.ok()) {
            WriteTicket t = l.allocate(16);
            if (t.ok()) {
                writeNormal(t.dst, 2, 0, 1, 0, 16);
                l.confirm(t);
            }
        }
        l.close();
    });
    ASSERT_TRUE(inj.awaitParked(hooks::YieldPoint::LeasePreClaim));

    // Wrap far enough that core 0's metadata moves to a new round.
    uint64_t stamp = 1000;
    for (int i = 0; i < 4000; ++i)
        ASSERT_TRUE(bt.record(uint16_t(i % 4), 9, ++stamp, 16));

    inj.release(hooks::YieldPoint::LeasePreClaim);
    leaser.join();
    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    expectCleanAudit(bt);
}

TEST(LeaseStress, ConcurrentLeaseAndSingleWritersUnderRandomYields)
{
    // Mixed traffic with scheduler churn concentrated on the lease
    // yield points; also the TSan workout for the lease path.
    PreemptionInjector inj;
    inj.setRandomYield(42, 4);
    BTrace bt(smallConfig(512, 64, 16, 4));

    constexpr int threadsPerMode = 2;
    constexpr int opsPerThread = 4000;
    std::vector<std::thread> workers;
    for (int w = 0; w < threadsPerMode; ++w) {
        workers.emplace_back([&, w]() {
            const auto core = uint16_t(w);
            const uint32_t tid = 100 + uint32_t(w);
            uint64_t stamp = uint64_t(w + 1) << 32;
            Lease l;
            for (int i = 0; i < opsPerThread; ++i) {
                WriteTicket t =
                    l.closed() ? WriteTicket{} : l.allocate(16);
                if (!t.ok()) {
                    l.close();
                    l = bt.lease(core, tid, 16, 8);
                    if (!l.ok()) {
                        std::this_thread::yield();
                        continue;
                    }
                    t = l.allocate(16);
                    if (!t.ok())
                        continue;
                }
                writeNormal(t.dst, ++stamp, core, tid, 0, 16);
                if (i % 7 == 3)
                    l.abandon(t);
                else
                    l.confirm(t);
            }
            l.close();
        });
    }
    for (int w = 0; w < threadsPerMode; ++w) {
        workers.emplace_back([&, w]() {
            const auto core = uint16_t(2 + w);
            const uint32_t tid = 200 + uint32_t(w);
            uint64_t stamp = uint64_t(w + 5) << 32;
            for (int i = 0; i < opsPerThread; ++i)
                bt.record(core, tid, ++stamp, 16);
        });
    }
    for (std::thread &t : workers)
        t.join();

    EXPECT_EQ(bt.countersSnapshot().leasedOutstanding, 0u);
    EXPECT_GT(bt.countersSnapshot().leases, 0u);
    EXPECT_GT(bt.countersSnapshot().leaseEntries, 0u);
    expectCleanAudit(bt);
}

#endif // BTRACE_ENABLE_TEST_HOOKS

} // namespace
} // namespace btrace
