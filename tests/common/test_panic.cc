/** @file Death tests for the error-handling primitives. */

#include <gtest/gtest.h>

#include "common/panic.h"

namespace btrace {
namespace {

TEST(PanicDeath, PanicAborts)
{
    EXPECT_DEATH(BTRACE_PANIC("boom"), "btrace panic.*boom");
}

TEST(PanicDeath, FatalExits)
{
    EXPECT_EXIT(BTRACE_FATAL("bad config"),
                ::testing::ExitedWithCode(1), "btrace fatal.*bad config");
}

TEST(PanicDeath, AssertFiresWithMessage)
{
    const int x = 1;
    EXPECT_DEATH(BTRACE_ASSERT(x == 2, "x must be two"),
                 "assertion failed.*x must be two");
}

TEST(Panic, AssertPassesSilently)
{
    BTRACE_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Panic, DassertCompiledPerBuildType)
{
#ifdef NDEBUG
    // Release: the check must vanish (condition not evaluated).
    int calls = 0;
    auto sideEffect = [&]() { ++calls; return false; };
    BTRACE_DASSERT(sideEffect(), "never evaluated in release");
    EXPECT_EQ(calls, 0);
#else
    EXPECT_DEATH(BTRACE_DASSERT(false, "debug check"), "debug check");
#endif
}

} // namespace
} // namespace btrace
