/** @file Unit tests for the statistics toolkit. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace btrace {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.geoMean(), 0.0);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 6.0})
        s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.total(), 12.0);
}

TEST(RunningStat, GeoMeanOfPowers)
{
    RunningStat s;
    s.add(1.0);
    s.add(100.0);
    EXPECT_NEAR(s.geoMean(), 10.0, 1e-9);
}

TEST(RunningStat, SingleNegativeHandledViaClamp)
{
    RunningStat s;
    s.add(-5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_GT(s.geoMean(), 0.0);  // clamped, not NaN
}

TEST(SampleSet, PercentileNearestRank)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(double(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
    EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
}

TEST(SampleSet, PercentileAfterMoreAddsResorts)
{
    SampleSet s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
    s.add(50.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 50.0);
}

TEST(SampleSet, MeanAndGeoMean)
{
    SampleSet s;
    s.add(1.0);
    s.add(4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.geoMean(), 2.0, 1e-9);
}

TEST(SampleSet, EmptyIsZero)
{
    SampleSet s;
    EXPECT_EQ(s.percentile(0.5), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountsAndOverflow)
{
    Histogram h(100.0, 10);
    h.add(5.0);    // bucket 0
    h.add(15.0);   // bucket 1
    h.add(95.0);   // bucket 9
    h.add(150.0);  // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketHits(0), 1u);
    EXPECT_EQ(h.bucketHits(1), 1u);
    EXPECT_EQ(h.bucketHits(9), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeClampsToZeroBucket)
{
    Histogram h(10.0, 10);
    h.add(-3.0);
    EXPECT_EQ(h.bucketHits(0), 1u);
}

TEST(Histogram, CdfMonotonic)
{
    Histogram h(100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(double(i));
    double prev = 0.0;
    for (std::size_t b = 0; b < h.bucketCount(); ++b) {
        const double c = h.cdfAt(b);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_NEAR(h.cdfAt(9), 1.0, 1e-9);
}

TEST(Histogram, QuantileApproximatesMedian)
{
    Histogram h(100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(double(i % 100));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(GeoMeanVector, MatchesClosedForm)
{
    EXPECT_NEAR(geoMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_EQ(geoMean({}), 0.0);
}

TEST(GeoMeanVector, ZeroClampedByFloor)
{
    const double g = geoMean({0.0, 100.0}, 1.0);
    EXPECT_NEAR(g, 10.0, 1e-9);
}

} // namespace
} // namespace btrace
