/** @file Unit tests for output formatting helpers. */

#include <gtest/gtest.h>

#include "common/format.h"

namespace btrace {
namespace {

TEST(HumanBytes, Scales)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(2048), "2.0 KB");
    EXPECT_EQ(humanBytes(12.0 * 1024 * 1024), "12.0 MB");
    EXPECT_EQ(humanBytes(1.5 * 1024 * 1024 * 1024), "1.5 GB");
}

TEST(FmtDouble, Precision)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.0, 0), "3");
}

TEST(FmtCompact, SmallValuesPlain)
{
    EXPECT_EQ(fmtCompact(0), "0");
    EXPECT_EQ(fmtCompact(7), "7.0");
    EXPECT_EQ(fmtCompact(65), "65");
    EXPECT_EQ(fmtCompact(999), "999");
}

TEST(FmtCompact, LargeValuesScientific)
{
    EXPECT_EQ(fmtCompact(20000), "2e4");
    EXPECT_EQ(fmtCompact(70000), "7e4");
    EXPECT_EQ(fmtCompact(1234), "1e3");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"A", "Blah"});
    t.row({"longer", "x"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| A      | Blah |"), std::string::npos);
    EXPECT_NE(out.find("| longer | x    |"), std::string::npos);
    EXPECT_NE(out.find("|--------|------|"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows)
{
    TextTable t;
    t.header({"A", "B", "C"});
    t.row({"1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(TextTable, NoHeaderStillRenders)
{
    TextTable t;
    t.row({"x", "y"});
    EXPECT_NE(t.render().find("| x | y |"), std::string::npos);
}

} // namespace
} // namespace btrace
