/**
 * @file
 * Backend conformance suite (DESIGN.md §10): every StorageBackend must
 * satisfy the same data-area contract — page-multiple reservation,
 * offset-stable addressing, advisory commit, and decommit that leaves
 * the range mapped and zero-filled. The arena backends (shm, file)
 * additionally carry a validated header, a flight region, and support
 * secondary attachment / offline reopening. The suite runs the shared
 * contract over all three kinds and the arena extras over the two that
 * have them, plus fork-based persistence tests proving a file-backed
 * ring survives an abrupt process death.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/storage_backend.h"
#include "core/btrace.h"
#include "obs/flight_recorder.h"

namespace btrace {
namespace {

std::unique_ptr<StorageBackend>
makeBackend(StorageKind kind, std::size_t bytes)
{
    StorageOptions o;
    o.kind = kind;
    o.bytes = bytes;
    return makeStorageBackend(o);  // file kind: anonymous unlinked temp
}

class StorageBackendContract
    : public testing::TestWithParam<StorageKind>
{
};

TEST_P(StorageBackendContract, KindNameRoundTrips)
{
    const StorageKind k = GetParam();
    auto b = makeBackend(k, 1u << 16);
    EXPECT_EQ(b->kind(), k);
    StorageKind parsed;
    ASSERT_TRUE(parseStorageKind(storageKindName(k), parsed));
    EXPECT_EQ(parsed, k);
}

TEST_P(StorageBackendContract, ReservesPageMultipleAndWritable)
{
    auto b = makeBackend(GetParam(), 100);
    EXPECT_EQ(b->maxSize() % StorageBackend::pageSize(), 0u);
    EXPECT_GE(b->maxSize(), 100u);
    ASSERT_NE(b->data(), nullptr);
    std::memset(b->data(), 0xAB, b->maxSize());
    EXPECT_EQ(b->data()[0], 0xAB);
    EXPECT_EQ(b->data()[b->maxSize() - 1], 0xAB);
}

TEST_P(StorageBackendContract, OffsetsResolveStably)
{
    const std::size_t page = StorageBackend::pageSize();
    auto b = makeBackend(GetParam(), 8 * page);
    const BlockRef ref{3 * page + 40};
    b->data()[ref.offset] = 0x5C;
    // The same offset resolves to the same byte through any later
    // read of data() — offsets, not pointers, are the stable names.
    EXPECT_EQ((b->data() + ref.offset)[0], 0x5C);
}

TEST_P(StorageBackendContract, DecommitReadsZerosAndStaysMapped)
{
    const std::size_t page = StorageBackend::pageSize();
    auto b = makeBackend(GetParam(), 4 * page);
    std::memset(b->data(), 0xCD, 4 * page);
    b->decommit(page, 2 * page);
    EXPECT_EQ(b->data()[page], 0);
    EXPECT_EQ(b->data()[3 * page - 1], 0);
    EXPECT_EQ(b->data()[page - 1], 0xCD);
    EXPECT_EQ(b->data()[3 * page], 0xCD);
    // And the zeroed range is writable again afterwards.
    b->data()[page] = 7;
    EXPECT_EQ(b->data()[page], 7);
}

TEST_P(StorageBackendContract, DecommitReleasesResidentMemory)
{
    const std::size_t page = StorageBackend::pageSize();
    const std::size_t pages = 256;
    auto b = makeBackend(GetParam(), pages * page);
    std::memset(b->data(), 1, pages * page);
    const std::size_t before = b->residentBytes();
    EXPECT_GE(before, pages * page / 2);
    b->decommit(0, pages * page);
    EXPECT_LT(b->residentBytes(), before / 4);
}

TEST_P(StorageBackendContract, CommitIsAdvisoryAndSafe)
{
    const std::size_t page = StorageBackend::pageSize();
    auto b = makeBackend(GetParam(), 4 * page);
    b->commit(0, 4 * page);
    b->data()[0] = 9;
    b->sync();
    EXPECT_EQ(b->data()[0], 9);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StorageBackendContract,
    testing::Values(StorageKind::Private, StorageKind::Shm,
                    StorageKind::File),
    [](const testing::TestParamInfo<StorageKind> &p) {
        return storageKindName(p.param);
    });

TEST(PrivateBackend, HasNoArenaSurface)
{
    auto b = makeBackend(StorageKind::Private, 1u << 16);
    EXPECT_EQ(b->header(), nullptr);
    EXPECT_EQ(b->flightRegion(), nullptr);
    EXPECT_EQ(b->shareFd(), -1);
}

class ArenaBackendContract : public testing::TestWithParam<StorageKind>
{
};

TEST_P(ArenaBackendContract, HeaderIsValidAndSelfDescribing)
{
    const std::size_t page = StorageBackend::pageSize();
    auto b = makeBackend(GetParam(), 8 * page);
    const ArenaHeader *h = b->header();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->magic, ArenaHeader::kMagic);
    EXPECT_EQ(h->version, ArenaHeader::kVersion);
    EXPECT_EQ(h->pageSize, page);
    EXPECT_EQ(h->dataBytes, b->maxSize());
    EXPECT_GE(h->generation.load(), 1u);
    EXPECT_GT(h->flightCapacity, 0u);
    EXPECT_EQ(h->flightLen.load(), 0u);
    ASSERT_NE(b->flightRegion(), nullptr);
    EXPECT_GE(b->shareFd(), 0);
    // Header, flight region, and data area never overlap.
    EXPECT_GE(h->flightOffset, sizeof(ArenaHeader));
    EXPECT_GE(h->dataOffset, h->flightOffset + h->flightCapacity);
}

TEST_P(ArenaBackendContract, FlightRegionHoldsItsCapacity)
{
    auto b = makeBackend(GetParam(), 1u << 16);
    ArenaHeader *h = b->header();
    uint8_t *f = b->flightRegion();
    std::memset(f, 0x77, h->flightCapacity);
    h->flightLen.store(h->flightCapacity, std::memory_order_release);
    EXPECT_EQ(f[0], 0x77);
    EXPECT_EQ(f[h->flightCapacity - 1], 0x77);
    // The flight region is outside the data area: the data base
    // starts at dataOffset, past the flight region.
    EXPECT_EQ(b->data()[0], 0);
}

INSTANTIATE_TEST_SUITE_P(
    ArenaKinds, ArenaBackendContract,
    testing::Values(StorageKind::Shm, StorageKind::File),
    [](const testing::TestParamInfo<StorageKind> &p) {
        return storageKindName(p.param);
    });

TEST(ShmArena, SecondAttachmentSharesDataByOffset)
{
    const std::size_t page = StorageBackend::pageSize();
    auto primary = makeBackend(StorageKind::Shm, 8 * page);
    const uint64_t gen0 = primary->header()->generation.load();

    auto secondary = attachShmArena(primary->shareFd());
    ASSERT_NE(secondary, nullptr);
    EXPECT_EQ(secondary->kind(), StorageKind::Shm);
    EXPECT_EQ(secondary->maxSize(), primary->maxSize());
    EXPECT_EQ(primary->header()->generation.load(), gen0 + 1);

    // Same offsets, different mappings, one storage.
    const BlockRef ref{5 * page + 16};
    primary->data()[ref.offset] = 0x42;
    EXPECT_EQ(secondary->data()[ref.offset], 0x42);
    secondary->data()[ref.offset + 1] = 0x43;
    EXPECT_EQ(primary->data()[ref.offset + 1], 0x43);

    // Decommit through one attachment zeroes the shared storage.
    primary->decommit(4 * page, 2 * page);
    EXPECT_EQ(secondary->data()[ref.offset], 0);
}

TEST(ShmArena, HeaderAtomicsAreSharedAcrossAttachments)
{
    auto primary = makeBackend(StorageKind::Shm, 1u << 16);
    auto secondary = attachShmArena(primary->shareFd());
    primary->header()->blockSize.store(4096, std::memory_order_release);
    EXPECT_EQ(secondary->header()->blockSize.load(
                  std::memory_order_acquire),
              4096u);
}

TEST(ShmArena, AttachGenerationsAreSequentialAndUnique)
{
    // The creator draws generation 1; every later attachment draws the
    // next value from the shared header counter. The draw is what
    // identifies an attachment in the producer registry, so two
    // attachments must never share one.
    auto primary = makeBackend(StorageKind::Shm, 1u << 16);
    EXPECT_EQ(primary->attachGeneration(), 1u);

    auto second = attachShmArena(primary->shareFd());
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->attachGeneration(), 2u);

    auto third = attachShmArena(primary->shareFd());
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(third->attachGeneration(), 3u);

    // The private backend has no arena and no registry slot: its
    // generation is the virtual default, 0.
    auto priv = makeBackend(StorageKind::Private, 1u << 16);
    EXPECT_EQ(priv->attachGeneration(), 0u);
}

TEST(ShmArena, SurvivesConcurrentResizeAndRecordsUnderSharedStorage)
{
    // Shm variant of the core resize/lease race: producers hammer
    // record() and lease() while the owner resizes the ring in both
    // directions. The arena decommit path (hole punching) must uphold
    // the same stays-mapped-reads-zero contract MADV_DONTNEED does;
    // run under TSan this also checks the header stores race-free.
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 64;
    cfg.activeBlocks = 8;
    cfg.maxBlocks = 64;
    cfg.cores = 4;
    cfg.storage = StorageKind::Shm;
    BTrace bt(cfg);

    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < 2; ++t) {
        producers.emplace_back([&bt, &stop, t] {
            uint64_t stamp = 1;
            while (!stop.load(std::memory_order_relaxed)) {
                bt.record(uint16_t(t), t + 1, stamp++, 40);
                Lease l = bt.lease(uint16_t(t), t + 1, 40, 4);
                if (!l.ok())
                    continue;
                for (int k = 0; k < 4; ++k) {
                    WriteTicket w = l.allocate(40);
                    if (!w.ok())
                        break;
                    l.abandon(w);
                }
                l.close();
            }
        });
    }
    for (int i = 0; i < 6; ++i) {
        bt.resize(i % 2 == 0 ? 16 : 64);
        const ArenaHeader *h = bt.arenaHeader();
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->numBlocks.load(std::memory_order_acquire),
                  i % 2 == 0 ? 16u : 64u);
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &th : producers)
        th.join();

    const Dump d = bt.dump();
    for (const DumpEntry &e : d.entries)
        ASSERT_TRUE(e.payloadOk) << "torn entry at stamp " << e.stamp;
}

TEST(ArenaView, RejectsMissingAndMalformedFiles)
{
    ArenaView missing =
        ArenaView::open(testing::TempDir() + "no_such_arena.ring");
    EXPECT_FALSE(missing.ok());
    EXPECT_FALSE(missing.error().empty());

    const std::string path = testing::TempDir() + "garbage_arena.ring";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[] = "this is not an arena";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    ArenaView garbage = ArenaView::open(path);
    EXPECT_FALSE(garbage.ok());
    EXPECT_FALSE(garbage.error().empty());
    std::remove(path.c_str());
}

BTraceConfig
fileRingConfig(const std::string &path)
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    cfg.storage = StorageKind::File;
    cfg.arenaPath = path;
    return cfg;
}

TEST(ArenaView, CleanShutdownLeavesDecodableRing)
{
    const std::string path =
        testing::TempDir() + "btrace_clean_arena.ring";
    std::remove(path.c_str());
    {
        BTrace bt(fileRingConfig(path));
        for (uint64_t s = 1; s <= 200; ++s)
            ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 40));
    }
    ArenaView v = ArenaView::open(path);
    ASSERT_TRUE(v.ok()) << v.error();
    EXPECT_TRUE(v.cleanShutdown());
    EXPECT_EQ(v.blockSize(), 256u);
    EXPECT_EQ(v.activeBlocks(), 8u);
    EXPECT_EQ(v.numBlocks(), 32u);
    EXPECT_EQ(v.dataBytes(), 32u * 256u);
    ASSERT_NE(v.data(), nullptr);
    EXPECT_EQ(v.block(1), v.data() + 256);
    std::remove(path.c_str());
}

TEST(ArenaView, FlightBundleSurvivesProcessDeath)
{
    const std::string path =
        testing::TempDir() + "btrace_crash_arena.ring";
    std::remove(path.c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: trace into the file ring, capture a flight bundle,
        // then die without running a single destructor — the worst
        // case the persistent ring exists for.
        BTrace bt(fileRingConfig(path));
        for (uint64_t s = 1; s <= 300; ++s)
            if (!bt.record(uint16_t(s % 4), 1, s, 40))
                _exit(3);
        FlightRecorder fr(bt, nullptr, FlightRecorderOptions{});
        if (!fr.dump("pre_crash") && bt.arenaHeader() == nullptr)
            _exit(4);
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    ArenaView v = ArenaView::open(path);
    ASSERT_TRUE(v.ok()) << v.error();
    EXPECT_FALSE(v.cleanShutdown());  // it crashed; the ring knows
    EXPECT_GE(v.generation(), 1u);
    EXPECT_EQ(v.blockSize(), 256u);
    EXPECT_EQ(v.numBlocks(), 32u);

    const std::string bundle = v.flightJson();
    ASSERT_FALSE(bundle.empty());
    const ParsedFlightBundle p = parseFlightBundle(bundle);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.trigger, "pre_crash");
    EXPECT_EQ(p.counters.at("fast_allocs"), 300.0);
    std::remove(path.c_str());
}

} // namespace
} // namespace btrace
