/** @file Unit tests for the deterministic PRNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/prng.h"

namespace btrace {
namespace {

TEST(Prng, DeterministicAcrossInstances)
{
    Prng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Prng, ReseedRestartsSequence)
{
    Prng a(7);
    const uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Prng, BoundedStaysInRange)
{
    Prng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.nextBounded(17), 17u);
}

TEST(Prng, BoundedCoversRange)
{
    Prng rng(4);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, DoubleInUnitInterval)
{
    Prng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Prng, UniformInclusiveBounds)
{
    Prng rng(6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = rng.uniform(10, 13);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, ExponentialMeanConverges)
{
    Prng rng(7);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Prng, ExponentialIsPositive)
{
    Prng rng(8);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(rng.exponential(1.0), 0.0);
}

TEST(Prng, ChanceExtremes)
{
    Prng rng(9);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.chance(0.0));
        ASSERT_TRUE(rng.chance(1.0));
    }
}

TEST(Prng, ChanceFrequency)
{
    Prng rng(10);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Prng, HeavyTailStaysInBounds)
{
    Prng rng(11);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.heavyTail(16.0, 512.0, 1.1);
        ASSERT_GE(v, 16.0 * 0.999);
        ASSERT_LE(v, 512.0 * 1.001);
    }
}

TEST(Prng, HeavyTailIsSkewedTowardsLow)
{
    Prng rng(12);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += rng.heavyTail(16.0, 512.0, 1.1) < 64.0;
    // A bounded Pareto with shape 1.1 puts the bulk of the mass near
    // the lower bound.
    EXPECT_GT(double(low) / n, 0.6);
}

} // namespace
} // namespace btrace
