/** @file Unit tests for the reserved/resizable virtual span. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/virtual_memory.h"

namespace btrace {
namespace {

TEST(VirtualSpan, ReservesRoundedToPages)
{
    VirtualSpan span(100);
    EXPECT_EQ(span.maxSize() % VirtualSpan::pageSize(), 0u);
    EXPECT_GE(span.maxSize(), 100u);
    EXPECT_NE(span.data(), nullptr);
}

TEST(VirtualSpan, WritableAcrossWholeReservation)
{
    const std::size_t bytes = 1u << 20;
    VirtualSpan span(bytes);
    std::memset(span.data(), 0xAB, bytes);
    EXPECT_EQ(span.data()[0], 0xAB);
    EXPECT_EQ(span.data()[bytes - 1], 0xAB);
}

TEST(VirtualSpan, DecommitZeroesAndStaysMapped)
{
    const std::size_t page = VirtualSpan::pageSize();
    VirtualSpan span(4 * page);
    std::memset(span.data(), 0xCD, 4 * page);
    span.decommit(2 * page, 2 * page);
    // The decommitted range must still be readable — as zeros.
    EXPECT_EQ(span.data()[2 * page], 0);
    EXPECT_EQ(span.data()[4 * page - 1], 0);
    // The kept range is untouched.
    EXPECT_EQ(span.data()[0], 0xCD);
    EXPECT_EQ(span.data()[2 * page - 1], 0xCD);
}

TEST(VirtualSpan, DecommitReleasesResidentMemory)
{
    const std::size_t page = VirtualSpan::pageSize();
    const std::size_t pages = 256;
    VirtualSpan span(pages * page);
    std::memset(span.data(), 1, pages * page);
    const std::size_t before = span.residentBytes();
    EXPECT_GE(before, pages * page / 2);
    span.decommit(0, pages * page);
    const std::size_t after = span.residentBytes();
    EXPECT_LT(after, before / 4);
}

// Regression: decommit used to round its range *outward* to page
// boundaries, so decommitting one sub-page range wiped live data in
// the partial pages it shared with its neighbors. Rounding is inward
// now — the shared edge pages stay resident and intact.
TEST(VirtualSpan, UnalignedDecommitPreservesAdjacentRanges)
{
    const std::size_t page = VirtualSpan::pageSize();
    VirtualSpan span(6 * page);
    std::memset(span.data(), 0xA1, 6 * page);

    // Three adjacent ranges with sub-page boundaries: decommit the
    // middle one; both neighbors must survive byte-for-byte.
    const std::size_t mid_lo = page + page / 2;
    const std::size_t mid_hi = 4 * page + page / 4;
    span.decommit(mid_lo, mid_hi - mid_lo);

    for (std::size_t i = 0; i < mid_lo; ++i)
        ASSERT_EQ(span.data()[i], 0xA1) << "left neighbor at " << i;
    for (std::size_t i = mid_hi; i < 6 * page; ++i)
        ASSERT_EQ(span.data()[i], 0xA1) << "right neighbor at " << i;
    // The fully-covered interior pages really were released.
    EXPECT_EQ(span.data()[2 * page], 0);
    EXPECT_EQ(span.data()[4 * page - 1], 0);
}

TEST(VirtualSpan, DecommitSmallerThanPageIsANoop)
{
    const std::size_t page = VirtualSpan::pageSize();
    VirtualSpan span(2 * page);
    std::memset(span.data(), 0xB2, 2 * page);
    // No whole page is covered, so nothing may be released.
    span.decommit(page / 4, page / 2);
    for (std::size_t i = 0; i < 2 * page; ++i)
        ASSERT_EQ(span.data()[i], 0xB2) << "byte " << i;
}

// Regression: offset + len used to be summed before the bounds check,
// so a wrapping sum sailed past it and reached madvise/fallocate with
// a wild range. Both commit and decommit must reject it.
TEST(VirtualSpanDeathTest, RejectsOverflowingRange)
{
    const std::size_t page = VirtualSpan::pageSize();
    VirtualSpan span(4 * page);
    EXPECT_DEATH(span.decommit(page, SIZE_MAX - page / 2),
                 "reservation");
    EXPECT_DEATH(span.commit(SIZE_MAX - page, 2 * page), "reservation");
}

TEST(VirtualSpanDeathTest, RejectsRangePastReservation)
{
    const std::size_t page = VirtualSpan::pageSize();
    VirtualSpan span(4 * page);
    EXPECT_DEATH(span.decommit(3 * page, 2 * page), "reservation");
    EXPECT_DEATH(span.commit(4 * page, 1), "reservation");
}

TEST(VirtualSpan, MoveTransfersOwnership)
{
    VirtualSpan a(1u << 16);
    uint8_t *base = a.data();
    VirtualSpan b(std::move(a));
    EXPECT_EQ(b.data(), base);
    EXPECT_EQ(a.data(), nullptr);

    VirtualSpan c(1u << 12);
    c = std::move(b);
    EXPECT_EQ(c.data(), base);
}

TEST(VirtualSpan, CommitIsAdvisoryAndSafe)
{
    VirtualSpan span(1u << 16);
    span.commit(0, 1u << 16);
    span.data()[0] = 7;
    EXPECT_EQ(span.data()[0], 7);
}

} // namespace
} // namespace btrace
