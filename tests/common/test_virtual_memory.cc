/** @file Unit tests for the reserved/resizable virtual span. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/virtual_memory.h"

namespace btrace {
namespace {

TEST(VirtualSpan, ReservesRoundedToPages)
{
    VirtualSpan span(100);
    EXPECT_EQ(span.maxSize() % VirtualSpan::pageSize(), 0u);
    EXPECT_GE(span.maxSize(), 100u);
    EXPECT_NE(span.data(), nullptr);
}

TEST(VirtualSpan, WritableAcrossWholeReservation)
{
    const std::size_t bytes = 1u << 20;
    VirtualSpan span(bytes);
    std::memset(span.data(), 0xAB, bytes);
    EXPECT_EQ(span.data()[0], 0xAB);
    EXPECT_EQ(span.data()[bytes - 1], 0xAB);
}

TEST(VirtualSpan, DecommitZeroesAndStaysMapped)
{
    const std::size_t page = VirtualSpan::pageSize();
    VirtualSpan span(4 * page);
    std::memset(span.data(), 0xCD, 4 * page);
    span.decommit(2 * page, 2 * page);
    // The decommitted range must still be readable — as zeros.
    EXPECT_EQ(span.data()[2 * page], 0);
    EXPECT_EQ(span.data()[4 * page - 1], 0);
    // The kept range is untouched.
    EXPECT_EQ(span.data()[0], 0xCD);
    EXPECT_EQ(span.data()[2 * page - 1], 0xCD);
}

TEST(VirtualSpan, DecommitReleasesResidentMemory)
{
    const std::size_t page = VirtualSpan::pageSize();
    const std::size_t pages = 256;
    VirtualSpan span(pages * page);
    std::memset(span.data(), 1, pages * page);
    const std::size_t before = span.residentBytes();
    EXPECT_GE(before, pages * page / 2);
    span.decommit(0, pages * page);
    const std::size_t after = span.residentBytes();
    EXPECT_LT(after, before / 4);
}

TEST(VirtualSpan, MoveTransfersOwnership)
{
    VirtualSpan a(1u << 16);
    uint8_t *base = a.data();
    VirtualSpan b(std::move(a));
    EXPECT_EQ(b.data(), base);
    EXPECT_EQ(a.data(), nullptr);

    VirtualSpan c(1u << 12);
    c = std::move(b);
    EXPECT_EQ(c.data(), base);
}

TEST(VirtualSpan, CommitIsAdvisoryAndSafe)
{
    VirtualSpan span(1u << 16);
    span.commit(0, 1u << 16);
    span.data()[0] = 7;
    EXPECT_EQ(span.data()[0], 7);
}

} // namespace
} // namespace btrace
