/**
 * @file
 * Unit tests for Status/Expected (common/status.h): code/message
 * plumbing, the err* constructors, the exit-code mapping the tools
 * share, and Expected's value/error duality.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/status.h"

namespace btrace {
namespace {

TEST(Status, DefaultIsOk)
{
    Status st;
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::Ok);
    EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrHelpersCarryCodeAndMessage)
{
    EXPECT_EQ(errInvalidArgument("x").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(errNotFound("x").code(), StatusCode::NotFound);
    EXPECT_EQ(errIo("x").code(), StatusCode::IoError);
    EXPECT_EQ(errCorruption("x").code(), StatusCode::Corruption);
    EXPECT_EQ(errIncompatible("x").code(), StatusCode::Incompatible);
    EXPECT_EQ(errBusy("x").code(), StatusCode::Busy);
    EXPECT_EQ(errUnsupported("x").code(), StatusCode::Unsupported);

    const Status st = errNotFound("no such arena: ring");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "no such arena: ring");
    // toString carries both the class and the detail.
    EXPECT_NE(st.toString().find("no such arena"), std::string::npos);
}

TEST(Status, ExitCodesAreDistinctAndStable)
{
    // Scripts branch on these; the mapping is part of the tool
    // contract (btraced, btrace_producer, btrace_inspect, replay).
    EXPECT_EQ(exitCodeFor(StatusCode::Ok), 0);
    EXPECT_EQ(exitCodeFor(StatusCode::InvalidArgument), 2);
    EXPECT_EQ(exitCodeFor(StatusCode::NotFound), 3);
    EXPECT_EQ(exitCodeFor(StatusCode::IoError), 4);
    EXPECT_EQ(exitCodeFor(StatusCode::Corruption), 5);
    EXPECT_EQ(exitCodeFor(StatusCode::Incompatible), 6);
    EXPECT_EQ(exitCodeFor(StatusCode::Busy), 7);
    EXPECT_EQ(exitCodeFor(StatusCode::Unsupported), 8);

    // All distinct, and 1 stays reserved for BTRACE_FATAL.
    std::set<int> codes;
    for (const StatusCode c :
         {StatusCode::Ok, StatusCode::InvalidArgument,
          StatusCode::NotFound, StatusCode::IoError,
          StatusCode::Corruption, StatusCode::Incompatible,
          StatusCode::Busy, StatusCode::Unsupported}) {
        EXPECT_NE(exitCodeFor(c), 1);
        codes.insert(exitCodeFor(c));
    }
    EXPECT_EQ(codes.size(), 8u);
}

TEST(Expected, HoldsValue)
{
    Expected<int> e(42);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(e.status().ok());
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(e.take(), 42);
}

TEST(Expected, HoldsError)
{
    Expected<int> e(errBusy("arena still initializing"));
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), StatusCode::Busy);
    EXPECT_EQ(e.status().message(), "arena still initializing");
}

TEST(Expected, MoveOnlyPayload)
{
    Expected<std::unique_ptr<int>> e(std::make_unique<int>(7));
    ASSERT_TRUE(e.ok());
    std::unique_ptr<int> p = e.take();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 7);
}

} // namespace
} // namespace btrace
