/**
 * @file
 * ConcurrentHistogram: bucket geometry, quantiles against a sorted
 * oracle, wide dynamic range, and concurrent shard merging.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/prng.h"

using namespace btrace;

namespace {

TEST(LatencyHistogram, BucketGeometry)
{
    // Exact buckets below 2^kSubBits.
    for (uint64_t v = 0; v < ConcurrentHistogram::kSubCount; ++v) {
        EXPECT_EQ(ConcurrentHistogram::bucketOf(v), v);
        EXPECT_EQ(ConcurrentHistogram::bucketLowerBound(v), v);
    }
}

TEST(LatencyHistogram, BucketIndexIsMonotone)
{
    std::size_t prev = 0;
    for (unsigned shift = 0; shift < 63; ++shift) {
        for (const uint64_t off : {0ull, 1ull}) {
            const uint64_t v = (1ull << shift) + off;
            const std::size_t b = ConcurrentHistogram::bucketOf(v);
            EXPECT_GE(b, prev) << "v=" << v;
            EXPECT_LT(b, ConcurrentHistogram::kBuckets);
            prev = b;
        }
    }
}

TEST(LatencyHistogram, LowerBoundInvertsBucketOf)
{
    // The representative (lower bound) of v's bucket must land in the
    // same bucket and never exceed v.
    Prng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t v = rng.next() >> (rng.next() % 40);
        const std::size_t b = ConcurrentHistogram::bucketOf(v);
        const uint64_t lo = ConcurrentHistogram::bucketLowerBound(b);
        EXPECT_LE(lo, v);
        if (b + 1 < ConcurrentHistogram::kBuckets) {
            EXPECT_EQ(ConcurrentHistogram::bucketOf(lo), b)
                << "v=" << v << " b=" << b << " lo=" << lo;
        }
    }
}

TEST(LatencyHistogram, RelativeErrorBounded)
{
    // Log-linear with 16 sub-buckets per octave: the bucket width is
    // at most 1/16 of the value, so the representative understates by
    // under ~6.3%.
    for (const uint64_t v :
         {100ull, 999ull, 12345ull, 1ull << 20, 987654321ull}) {
        const uint64_t lo = ConcurrentHistogram::bucketLowerBound(
            ConcurrentHistogram::bucketOf(v));
        EXPECT_LE(double(v - lo) / double(v), 1.0 / 16.0 + 1e-9)
            << "v=" << v;
    }
}

TEST(LatencyHistogram, QuantilesMatchSortedOracle)
{
    ConcurrentHistogram h(4);
    Prng rng(42);
    std::vector<uint64_t> oracle;
    for (int i = 0; i < 50000; ++i) {
        // Log-uniform over [1, 2^30): stresses many octaves.
        const uint64_t v = 1 + (rng.next() >> (34 + rng.next() % 30));
        oracle.push_back(v);
        h.add(v);
    }
    std::sort(oracle.begin(), oracle.end());
    const HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count(), oracle.size());

    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        const uint64_t exact =
            oracle[std::size_t(q * double(oracle.size() - 1))];
        const uint64_t approx = snap.quantile(q);
        // Bucket representative: within one sub-bucket below exact.
        EXPECT_LE(approx, exact);
        EXPECT_GE(double(approx), double(exact) * (1.0 - 1.0 / 16.0) - 1)
            << "q=" << q << " exact=" << exact;
    }
    EXPECT_LE(snap.maxValue(), oracle.back());
    EXPECT_GE(double(snap.maxValue()),
              double(oracle.back()) * (1.0 - 1.0 / 16.0) - 1);
}

TEST(LatencyHistogram, WideDynamicRange)
{
    ConcurrentHistogram h;
    h.add(0);
    h.add(30);                      // fast-path write, ns
    h.add(300ull * 1000 * 1000);    // straggler stall, 300 ms
    h.add(~0ull);                   // saturates the overflow bucket
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count(), 4u);
    EXPECT_EQ(snap.quantile(0.0), 0u);
    EXPECT_EQ(snap.quantile(0.5), 30u);  // nearest-rank 2 of 4
    const uint64_t p75 = snap.quantile(0.75);
    EXPECT_GE(p75, 280ull * 1000 * 1000);
    EXPECT_LE(p75, 300ull * 1000 * 1000);
    EXPECT_GT(snap.maxValue(), 1ull << 44);
}

TEST(LatencyHistogram, ShardsMergeAcrossThreads)
{
    ConcurrentHistogram h(8);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t]() {
            Prng rng(uint64_t(t) + 1);
            for (int i = 0; i < kPerThread; ++i)
                h.add(1 + (rng.next() >> 40));
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count(), uint64_t(kThreads) * kPerThread);
    EXPECT_GT(snap.quantile(0.5), 0u);
}

TEST(LatencyHistogram, ExplicitShardsAndClear)
{
    ConcurrentHistogram h(2);
    h.addToShard(0, 100);
    h.addToShard(1, 100);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.snapshot().counts[ConcurrentHistogram::bucketOf(100)],
              2u);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.snapshot().maxValue(), 0u);
}

TEST(LatencyHistogram, ConcurrentAddWhileSnapshot)
{
    // 4 writers hammer the shards while the reader repeatedly merges.
    // Every snapshot must be internally sane (sum consistent with
    // counts being mid-flight is fine; totals can only grow), and the
    // final merge must account for every add exactly.
    ConcurrentHistogram h(4);
    constexpr int kWriters = 4;
    constexpr uint64_t kPerWriter = 60000;
    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&h, &go, w]() {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            Prng rng(uint64_t(w) + 17);
            for (uint64_t i = 0; i < kPerWriter; ++i)
                h.addToShard(unsigned(w), 1 + (rng.next() >> 44));
        });
    }
    go.store(true, std::memory_order_release);

    uint64_t prevTotal = 0;
    uint64_t prevSum = 0;
    for (int pass = 0; pass < 400; ++pass) {
        const HistogramSnapshot s = h.snapshot();
        // Relaxed per-bucket reads: totals are monotone across
        // successive merges even while writers are live.
        EXPECT_GE(s.total, prevTotal);
        EXPECT_GE(s.sum, prevSum);
        uint64_t bucketTotal = 0;
        for (const uint64_t c : s.counts)
            bucketTotal += c;
        EXPECT_EQ(bucketTotal, s.total);
        prevTotal = s.total;
        prevSum = s.sum;
    }
    for (std::thread &t : writers)
        t.join();

    const HistogramSnapshot fin = h.snapshot();
    EXPECT_EQ(fin.total, uint64_t(kWriters) * kPerWriter);
    uint64_t expectSum = 0;
    for (int w = 0; w < kWriters; ++w) {
        Prng rng(uint64_t(w) + 17);
        for (uint64_t i = 0; i < kPerWriter; ++i)
            expectSum += 1 + (rng.next() >> 44);
    }
    EXPECT_EQ(fin.sum, expectSum);
}

TEST(LatencyHistogram, PercentileAccuracyBound)
{
    // Known distribution: exact uniform 1..N, one of each. Every
    // reported percentile must sit within one sub-bucket (1/16) below
    // the true order statistic — the histogram's documented bound.
    constexpr uint64_t kN = 100000;
    ConcurrentHistogram h(1);
    for (uint64_t v = 1; v <= kN; ++v)
        h.add(v);
    const HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.total, kN);
    for (const double q :
         {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
        const uint64_t exact = 1 + uint64_t(q * double(kN - 1));
        const uint64_t approx = s.quantile(q);
        EXPECT_LE(approx, exact) << "q=" << q;
        EXPECT_GE(double(approx),
                  double(exact) * (1.0 - 1.0 / 16.0) - 1.0)
            << "q=" << q << " exact=" << exact;
    }
    EXPECT_LE(s.maxValue(), kN);
    EXPECT_GE(double(s.maxValue()), double(kN) * (1.0 - 1.0 / 16.0));
}

TEST(LatencyHistogram, SnapshotMerge)
{
    ConcurrentHistogram a(1), b(1);
    a.add(10);
    b.add(1000);
    HistogramSnapshot sa = a.snapshot();
    sa.merge(b.snapshot());
    EXPECT_EQ(sa.count(), 2u);
    EXPECT_EQ(sa.quantile(0.0), 10u);
    EXPECT_GE(sa.quantile(1.0), 960u);
}

} // namespace
