/** @file Unit tests for alignment helpers and CacheAligned. */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/cacheline.h"

namespace btrace {
namespace {

TEST(AlignUp, RoundsToBoundary)
{
    EXPECT_EQ(alignUp(0, 8), 0u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(9, 8), 16u);
    EXPECT_EQ(alignUp(4095, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
}

TEST(IsPowerOfTwo, Classifies)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(4097));
}

TEST(CacheAligned, InstancesDoNotShareLines)
{
    std::vector<CacheAligned<std::atomic<uint64_t>>> words(4);
    for (std::size_t i = 1; i < words.size(); ++i) {
        const auto a = reinterpret_cast<uintptr_t>(&words[i - 1]);
        const auto b = reinterpret_cast<uintptr_t>(&words[i]);
        EXPECT_GE(b - a, cacheLineSize);
    }
}

TEST(CacheAligned, AccessorsWork)
{
    CacheAligned<std::atomic<uint64_t>> word;
    word->store(42);
    EXPECT_EQ((*word).load(), 42u);
}

} // namespace
} // namespace btrace
