/** @file Unit tests for the packed 64-bit metadata word layouts. */

#include <gtest/gtest.h>

#include "common/packed64.h"

namespace btrace {
namespace {

TEST(RndPos, RoundTripsArbitraryValues)
{
    const RndPos rp = RndPos::unpack(RndPos::pack(7, 4096));
    EXPECT_EQ(rp.rnd, 7u);
    EXPECT_EQ(rp.pos, 4096u);
}

TEST(RndPos, ZeroIsZero)
{
    EXPECT_EQ(RndPos::pack(0, 0), 0u);
    const RndPos rp = RndPos::unpack(0);
    EXPECT_EQ(rp.rnd, 0u);
    EXPECT_EQ(rp.pos, 0u);
}

TEST(RndPos, MaxFieldsDoNotBleed)
{
    const RndPos rp =
        RndPos::unpack(RndPos::pack(0xffffffffu, 0xffffffffu));
    EXPECT_EQ(rp.rnd, 0xffffffffu);
    EXPECT_EQ(rp.pos, 0xffffffffu);
}

TEST(RndPos, AdditionOnPackedWordAdvancesPosOnly)
{
    // The fast path relies on fetch_add(size) touching only Pos.
    uint64_t word = RndPos::pack(3, 100);
    word += 24;
    const RndPos rp = RndPos::unpack(word);
    EXPECT_EQ(rp.rnd, 3u);
    EXPECT_EQ(rp.pos, 124u);
}

TEST(RndPos, PosOverflowWouldTakeFourBillionBytes)
{
    // Documented safety margin: Pos has 32 bits.
    uint64_t word = RndPos::pack(1, 0xfffffff0u);
    word += 0x10;  // crosses into Rnd
    const RndPos rp = RndPos::unpack(word);
    EXPECT_EQ(rp.rnd, 2u);  // the documented wrap behaviour
    EXPECT_EQ(rp.pos, 0u);
}

TEST(RndPos, Equality)
{
    EXPECT_EQ((RndPos{1, 2}), (RndPos{1, 2}));
    EXPECT_NE((RndPos{1, 2}), (RndPos{2, 2}));
    EXPECT_NE((RndPos{1, 2}), (RndPos{1, 3}));
}

TEST(RatioPos, RoundTripsArbitraryValues)
{
    const RatioPos rp =
        RatioPos::unpack(RatioPos::pack(16, false, 123456789));
    EXPECT_EQ(rp.ratio, 16u);
    EXPECT_FALSE(rp.frozen);
    EXPECT_EQ(rp.pos, 123456789u);
}

TEST(RatioPos, FrozenBitRoundTrips)
{
    const RatioPos rp = RatioPos::unpack(RatioPos::pack(3, true, 42));
    EXPECT_EQ(rp.ratio, 3u);
    EXPECT_TRUE(rp.frozen);
    EXPECT_EQ(rp.pos, 42u);
}

TEST(RatioPos, FetchOrOfFrozenBitPreservesFields)
{
    uint64_t word = RatioPos::pack(9, false, 777);
    word |= RatioPos::frozenBit;
    const RatioPos rp = RatioPos::unpack(word);
    EXPECT_EQ(rp.ratio, 9u);
    EXPECT_TRUE(rp.frozen);
    EXPECT_EQ(rp.pos, 777u);
}

TEST(RatioPos, IncrementAdvancesPosOnly)
{
    uint64_t word = RatioPos::pack(12, false, 1000);
    word += 1;
    const RatioPos rp = RatioPos::unpack(word);
    EXPECT_EQ(rp.ratio, 12u);
    EXPECT_FALSE(rp.frozen);
    EXPECT_EQ(rp.pos, 1001u);
}

TEST(RatioPos, MaxRatioFits)
{
    const RatioPos rp = RatioPos::unpack(
        RatioPos::pack(RatioPos::maxRatio, true, RatioPos::posMask));
    EXPECT_EQ(rp.ratio, RatioPos::maxRatio);
    EXPECT_TRUE(rp.frozen);
    EXPECT_EQ(rp.pos, RatioPos::posMask);
}

TEST(RatioPos, PosHas48Bits)
{
    EXPECT_EQ(RatioPos::posBits, 48);
    EXPECT_EQ(RatioPos::posMask, (uint64_t(1) << 48) - 1);
}

} // namespace
} // namespace btrace
