/** @file Unit tests for the deterministic replay engine. */

#include <gtest/gtest.h>

#include "analysis/continuity.h"
#include "core/auditor.h"
#include "core/btrace.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

namespace btrace {
namespace {

ReplayOptions
quick(ReplayMode mode = ReplayMode::ThreadLevel)
{
    ReplayOptions opt;
    opt.mode = mode;
    opt.durationSec = 3.0;
    opt.rateScale = 0.3;
    return opt;
}

TracerFactoryOptions
smallFactory()
{
    TracerFactoryOptions fo;
    fo.capacityBytes = 2u << 20;
    return fo;
}

TEST(Replay, StampsAreContiguousFromOne)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    const ReplayResult res =
        replay(*tracer, workloadByName("IM"), quick());
    ASSERT_FALSE(res.produced.empty());
    for (std::size_t i = 0; i < res.produced.size(); ++i)
        ASSERT_EQ(res.produced[i].stamp, i + 1);
}

TEST(Replay, ProducedVolumeTracksWorkloadRate)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    ReplayOptions opt = quick();
    const Workload &wl = workloadByName("IM");
    const ReplayResult res = replay(*tracer, wl, opt);
    const double expected = wl.expectedBytes() * opt.rateScale *
                            (opt.durationSec / wl.durationSec);
    EXPECT_NEAR(res.producedBytes, expected, expected * 0.25);
}

TEST(Replay, DeterministicForSameSeed)
{
    const Workload &wl = workloadByName("Video-1");
    auto t1 = makeTracer(TracerKind::BTrace, smallFactory());
    auto t2 = makeTracer(TracerKind::BTrace, smallFactory());
    const ReplayResult a = replay(*t1, wl, quick());
    const ReplayResult b = replay(*t2, wl, quick());
    ASSERT_EQ(a.produced.size(), b.produced.size());
    EXPECT_EQ(a.dump.entries.size(), b.dump.entries.size());
    EXPECT_EQ(a.preemptedWrites, b.preemptedWrites);
    EXPECT_DOUBLE_EQ(a.latencyNs.mean(), b.latencyNs.mean());
}

TEST(Replay, DifferentSeedsProduceDifferentSchedules)
{
    const Workload &wl = workloadByName("Video-1");
    auto t1 = makeTracer(TracerKind::BTrace, smallFactory());
    auto t2 = makeTracer(TracerKind::BTrace, smallFactory());
    ReplayOptions o1 = quick(), o2 = quick();
    o2.seed = 99;
    const ReplayResult a = replay(*t1, wl, o1);
    const ReplayResult b = replay(*t2, wl, o2);
    EXPECT_NE(a.produced.size(), b.produced.size());
}

TEST(Replay, CoreLevelNeverPreemptsWrites)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    const ReplayResult res = replay(
        *tracer, workloadByName("eShop-2"), quick(ReplayMode::CoreLevel));
    EXPECT_EQ(res.preemptedWrites, 0u);
    EXPECT_EQ(res.unconfirmed, 0u);
}

TEST(Replay, ThreadLevelPreemptsSomeWrites)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    const ReplayResult res =
        replay(*tracer, workloadByName("eShop-2"), quick());
    EXPECT_GT(res.preemptedWrites, 0u);
}

TEST(Replay, FtracePreemptionExemptByDesign)
{
    auto tracer = makeTracer(TracerKind::Ftrace, smallFactory());
    const ReplayResult res =
        replay(*tracer, workloadByName("eShop-2"), quick());
    EXPECT_EQ(res.preemptedWrites, 0u);
}

TEST(Replay, EventsAttributedToScheduledThreads)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    const ReplayResult res =
        replay(*tracer, workloadByName("Desktop"), quick());
    for (const ProducedEvent &e : res.produced) {
        ASSERT_LT(e.core, kCores);
        // Global thread ids encode the core.
        ASSERT_EQ(e.thread / 100000u, e.core);
    }
}

TEST(Replay, LatencySamplesPlausible)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    ReplayResult res = replay(*tracer, workloadByName("IM"), quick());
    ASSERT_GT(res.latencyNs.count(), 1000u);
    EXPECT_GT(res.latencyNs.geoMean(), 10.0);
    EXPECT_LT(res.latencyNs.geoMean(), 2000.0);
    EXPECT_GE(res.latencyNs.percentile(0.99),
              res.latencyNs.percentile(0.50));
}

TEST(Replay, DumpRetainsNewestForEveryTracer)
{
    for (const TracerKind kind : allTracerKinds()) {
        auto tracer = makeTracer(kind, smallFactory());
        const ReplayResult res =
            replay(*tracer, workloadByName("Desktop"), quick());
        const ContinuityReport rep = analyzeContinuity(res);
        EXPECT_EQ(rep.unknownStamps, 0u) << res.tracerName;
        EXPECT_EQ(rep.duplicateStamps, 0u) << res.tracerName;
        EXPECT_EQ(rep.corruptPayloads, 0u) << res.tracerName;
        EXPECT_EQ(rep.resurfacedDrops, 0u) << res.tracerName;
        EXPECT_GT(rep.retainedCount, 0u) << res.tracerName;
    }
}

TEST(Replay, RateScaleScalesVolume)
{
    const Workload &wl = workloadByName("IM");
    auto t1 = makeTracer(TracerKind::BTrace, smallFactory());
    auto t2 = makeTracer(TracerKind::BTrace, smallFactory());
    ReplayOptions lo = quick();
    lo.rateScale = 0.2;
    ReplayOptions hi = quick();
    hi.rateScale = 0.4;
    const auto a = replay(*t1, wl, lo);
    const auto b = replay(*t2, wl, hi);
    EXPECT_NEAR(double(b.produced.size()),
                2.0 * double(a.produced.size()),
                0.3 * double(b.produced.size()));
}

TEST(ReplayLeased, BTraceLeasingKeepsAccountingConsistent)
{
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    ReplayOptions opt = quick();
    opt.leaseEntries = 16;
    const ReplayResult res =
        replay(*tracer, workloadByName("IM"), opt);
    ASSERT_FALSE(res.produced.empty());
    EXPECT_FALSE(res.dump.entries.empty());
    EXPECT_GT(res.leasesOpened, 0u);

    auto *bt = dynamic_cast<BTrace *>(tracer.get());
    ASSERT_NE(bt, nullptr);
    EXPECT_GT(bt->countersSnapshot().leases, 0u);
    EXPECT_GT(bt->countersSnapshot().leaseEntries, 0u);
    const AuditReport rep = BTraceAuditor(*bt).audit();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ReplayLeased, MidLeasePreemptionsHappenAtThreadLevel)
{
    // Thread-level scheduling hands cores between threads constantly;
    // with per-thread leases some of those handovers must catch an
    // open lease, and the revocation accounting must absorb every
    // single one (verified by the audit above and determinism below).
    auto tracer = makeTracer(TracerKind::BTrace, smallFactory());
    ReplayOptions opt = quick();
    opt.leaseEntries = 16;
    const ReplayResult res =
        replay(*tracer, workloadByName("Video-1"), opt);
    EXPECT_GT(res.leasesPreempted, 0u);
}

TEST(ReplayLeased, DeterministicForSameSeed)
{
    const Workload &wl = workloadByName("IM");
    ReplayOptions opt = quick();
    opt.leaseEntries = 8;
    auto t1 = makeTracer(TracerKind::BTrace, smallFactory());
    auto t2 = makeTracer(TracerKind::BTrace, smallFactory());
    const ReplayResult a = replay(*t1, wl, opt);
    const ReplayResult b = replay(*t2, wl, opt);
    ASSERT_EQ(a.produced.size(), b.produced.size());
    EXPECT_EQ(a.dump.entries.size(), b.dump.entries.size());
    EXPECT_EQ(a.leasesOpened, b.leasesOpened);
    EXPECT_EQ(a.leasesPreempted, b.leasesPreempted);
}

TEST(ReplayLeased, FallbackKeepsBaselinesComparable)
{
    // Baselines serve leases through their ordinary allocate/confirm
    // pair, so a leased replay exercises the same write path and
    // produces comparable volumes.
    ReplayOptions opt = quick();
    opt.leaseEntries = 16;
    for (const TracerKind kind : allTracerKinds()) {
        auto tracer = makeTracer(kind, smallFactory());
        const ReplayResult res =
            replay(*tracer, workloadByName("IM"), opt);
        EXPECT_FALSE(res.produced.empty()) << tracerKindName(kind);
        EXPECT_FALSE(res.dump.entries.empty()) << tracerKindName(kind);
    }
}

TEST(MakeTracer, NamesAndCapacities)
{
    for (const TracerKind kind : allTracerKinds()) {
        auto tracer = makeTracer(kind, smallFactory());
        EXPECT_EQ(tracer->name(), tracerKindName(kind));
        // All tracers get the same capacity within a block's rounding.
        EXPECT_NEAR(double(tracer->capacityBytes()), double(2u << 20),
                    double(2u << 20) * 0.15)
            << tracer->name();
    }
}

TEST(MakeTracer, BTraceActiveBlocksDefaultsTo16xCores)
{
    TracerFactoryOptions fo = smallFactory();
    auto tracer = makeTracer(TracerKind::BTrace, fo);
    auto *bt = dynamic_cast<BTrace *>(tracer.get());
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(bt->config().activeBlocks, 16u * fo.cores);
}

} // namespace
} // namespace btrace
