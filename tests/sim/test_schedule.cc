/** @file Unit tests for the virtual-time slice schedule. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "sim/schedule.h"
#include "workloads/catalog.h"

namespace btrace {
namespace {

TEST(Schedule, CoreLevelHasOneThreadPerCore)
{
    const Workload &wl = workloadByName("IM");
    const SliceSchedule s =
        SliceSchedule::build(wl, ReplayMode::CoreLevel, 30.0, 1);
    for (unsigned c = 0; c < kCores; ++c) {
        EXPECT_EQ(s.distinctThreads(uint16_t(c)), 1u);
        const auto run = s.runningAt(uint16_t(c), 15.0);
        EXPECT_EQ(run.thread, SliceSchedule::globalThreadId(uint16_t(c), 0));
        EXPECT_GT(run.sliceEnd, 30.0);  // never preempted
    }
}

TEST(Schedule, ThreadLevelUsesManyThreads)
{
    const Workload &wl = workloadByName("eShop-2");
    const SliceSchedule s =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 30.0, 1);
    for (unsigned c = 0; c < kCores; ++c) {
        // Fig 6 shape: far more than one distinct thread per core.
        EXPECT_GT(s.distinctThreads(uint16_t(c)), 30u) << "core " << c;
        EXPECT_LE(s.distinctThreads(uint16_t(c)),
                  wl.totalThreads[c]);
    }
}

TEST(Schedule, RunningAtIsConsistentWithSliceEnds)
{
    const Workload &wl = workloadByName("Browser");
    const SliceSchedule s =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 5.0, 3);
    double t = 0.0;
    uint32_t switches = 0;
    uint32_t prev = ~0u;
    while (t < 5.0) {
        const auto run = s.runningAt(0, t);
        EXPECT_GT(run.sliceEnd, t);
        if (run.thread != prev) {
            ++switches;
            prev = run.thread;
        }
        t = run.sliceEnd;
    }
    // ~1 ms mean slices over 5 s → thousands of switches.
    EXPECT_GT(switches, 1000u);
}

TEST(Schedule, NextRunAfterFindsFutureSlice)
{
    const Workload &wl = workloadByName("IM");
    const SliceSchedule s =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 10.0, 7);
    // Pick the thread running at t=1 and verify it runs again later
    // (working sets persist for a 1 s window).
    const auto run = s.runningAt(2, 1.0);
    const double next = s.nextRunAfter(2, run.thread, run.sliceEnd);
    if (next != SliceSchedule::never) {
        EXPECT_GT(next, run.sliceEnd);
        const auto later = s.runningAt(2, next + 1e-9);
        EXPECT_EQ(later.thread, run.thread);
    }
}

TEST(Schedule, NextRunAfterUnknownThreadIsNever)
{
    const Workload &wl = workloadByName("IM");
    const SliceSchedule s =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 5.0, 7);
    EXPECT_EQ(s.nextRunAfter(0, 4242424u, 1.0), SliceSchedule::never);
}

TEST(Schedule, DeterministicForSameSeed)
{
    const Workload &wl = workloadByName("Video-1");
    const SliceSchedule a =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 5.0, 11);
    const SliceSchedule b =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 5.0, 11);
    for (double t = 0.1; t < 5.0; t += 0.37) {
        const auto ra = a.runningAt(3, t);
        const auto rb = b.runningAt(3, t);
        EXPECT_EQ(ra.thread, rb.thread);
        EXPECT_DOUBLE_EQ(ra.sliceEnd, rb.sliceEnd);
    }
}

TEST(Schedule, DifferentSeedsDiffer)
{
    const Workload &wl = workloadByName("Video-1");
    const SliceSchedule a =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 5.0, 11);
    const SliceSchedule b =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 5.0, 12);
    int diffs = 0;
    for (double t = 0.1; t < 5.0; t += 0.37)
        diffs += a.runningAt(3, t).thread != b.runningAt(3, t).thread;
    EXPECT_GT(diffs, 3);
}

TEST(Schedule, GlobalThreadIdsUniqueAcrossCores)
{
    EXPECT_NE(SliceSchedule::globalThreadId(0, 5),
              SliceSchedule::globalThreadId(1, 5));
    EXPECT_EQ(SliceSchedule::globalThreadId(2, 7),
              SliceSchedule::globalThreadId(2, 7));
}

TEST(Schedule, WorkingSetBoundedByActiveThreads)
{
    // Within one 1 s window the distinct thread count on a core is
    // bounded by roughly the configured active set.
    const Workload &wl = workloadByName("Desktop");
    const SliceSchedule s =
        SliceSchedule::build(wl, ReplayMode::ThreadLevel, 10.0, 5);
    std::set<uint32_t> seen;
    double t = 2.0;
    while (t < 3.0) {
        const auto run = s.runningAt(0, t);
        seen.insert(run.thread);
        t = run.sliceEnd;
    }
    EXPECT_LE(seen.size(), std::size_t(wl.activeThreads[0]) + 1);
}

#if defined(BTRACE_ENABLE_TEST_HOOKS)

TEST(PreemptionInjector, ParksAndReleasesOneArrival)
{
    PreemptionInjector inj;
    const auto p = hooks::YieldPoint::AllocPreReserve;
    inj.armPark(p);

    std::atomic<int> phase{0};
    std::thread t([&] {
        hooks::maybeYield(p);  // traps here
        phase.store(1, std::memory_order_release);
        hooks::maybeYield(p);  // trap consumed: passes through
        phase.store(2, std::memory_order_release);
    });

    ASSERT_TRUE(inj.awaitParked(p));
    EXPECT_EQ(phase.load(std::memory_order_acquire), 0);
    EXPECT_EQ(inj.hits(p), 1u);

    inj.release(p);
    t.join();
    EXPECT_EQ(phase.load(std::memory_order_acquire), 2);
    EXPECT_EQ(inj.hits(p), 2u);
}

TEST(PreemptionInjector, DisarmCancelsPendingTrap)
{
    PreemptionInjector inj;
    const auto p = hooks::YieldPoint::AdvancePreLock;
    inj.armPark(p);
    inj.disarm(p);
    hooks::maybeYield(p);  // must not block
    EXPECT_EQ(inj.hits(p), 1u);
}

TEST(PreemptionInjector, AwaitParkedTimesOutWhenNobodyArrives)
{
    PreemptionInjector inj;
    const auto p = hooks::YieldPoint::ReadPostCopy;
    inj.armPark(p);
    EXPECT_FALSE(inj.awaitParked(p, std::chrono::milliseconds(20)));
    inj.disarm(p);
}

TEST(PreemptionInjector, RandomYieldCountsHits)
{
    PreemptionInjector inj;
    inj.setRandomYield(42, 2);
    const auto p = hooks::YieldPoint::AdvancePostClaim;
    for (int i = 0; i < 1000; ++i)
        hooks::maybeYield(p);  // ~half yield; all must return
    EXPECT_EQ(inj.hits(p), 1000u);
}

TEST(PreemptionInjector, HooksAreFreeWhenNoInjectorExists)
{
    // With no injector the hook pointer is null and maybeYield is a
    // cheap no-op — the state the tracer runs in outside these tests.
    EXPECT_FALSE(hooks::hookInstalled());
    hooks::maybeYield(hooks::YieldPoint::AllocPreReserve);
    SUCCEED();
}

#endif // BTRACE_ENABLE_TEST_HOOKS

} // namespace
} // namespace btrace
