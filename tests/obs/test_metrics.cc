/**
 * @file
 * Metrics registry, counter snapshots, derived gauges, the observer
 * sampling contract (exact at K=1, zero shared-RMW footprint), and
 * both exporters (Prometheus text, JSON-lines round-trip).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "trace/observer.h"

using namespace btrace;

namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.cores = 2;
    cfg.activeBlocks = 4;
    cfg.numBlocks = 16;
    return cfg;
}

TEST(CountersSnapshot, DiffIsFieldWise)
{
    BTraceCounters::Snapshot a, b;
    a.fastAllocs = 100;
    a.advances = 7;
    a.dummyBytes = 512;
    b.fastAllocs = 160;
    b.advances = 9;
    b.dummyBytes = 520;
    b.wouldBlock = 3;
    const BTraceCounters::Snapshot d = b - a;
    EXPECT_EQ(d.fastAllocs, 60u);
    EXPECT_EQ(d.advances, 2u);
    EXPECT_EQ(d.dummyBytes, 8u);
    EXPECT_EQ(d.wouldBlock, 3u);
    EXPECT_EQ(d.skips, 0u);
}

TEST(CountersSnapshot, TracksLiveTracer)
{
    BTrace bt(smallConfig());
    const BTraceCounters::Snapshot before = bt.countersSnapshot();
    for (uint64_t s = 1; s <= 50; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));
    const BTraceCounters::Snapshot d = bt.countersSnapshot() - before;
    EXPECT_EQ(d.fastAllocs, 50u);
    EXPECT_GT(d.sharedRmws, 0u);
}

TEST(MetricsRegistry, CollectEvaluatesCallbacks)
{
    MetricsRegistry reg;
    double level = 1.5;
    reg.addCounter("c_total", "a counter", []() { return 42.0; });
    reg.addGauge("g", "a gauge", [&level]() { return level; });
    EXPECT_EQ(reg.metricCount(), 2u);

    auto c = reg.collect();
    ASSERT_EQ(c.metrics.size(), 2u);
    EXPECT_EQ(c.metrics[0].name, "c_total");
    EXPECT_EQ(c.metrics[0].kind, MetricKind::Counter);
    EXPECT_DOUBLE_EQ(c.metrics[0].value, 42.0);
    EXPECT_EQ(c.metrics[1].kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(c.metrics[1].value, 1.5);

    level = 9.0;  // re-collect sees the new value
    EXPECT_DOUBLE_EQ(reg.collect().metrics[1].value, 9.0);
}

TEST(MetricsRegistry, HistogramSummaries)
{
    MetricsRegistry reg;
    ConcurrentHistogram h(1);
    for (int i = 1; i <= 1000; ++i)
        h.add(uint64_t(i));
    reg.addHistogram("lat_ns", "latency", &h);
    auto c = reg.collect();
    ASSERT_EQ(c.histograms.size(), 1u);
    EXPECT_EQ(c.histograms[0].count, 1000u);
    EXPECT_GT(c.histograms[0].p50, 400u);
    EXPECT_LE(c.histograms[0].p50, 500u);
    EXPECT_GE(c.histograms[0].p99, 900u);
    EXPECT_GE(c.histograms[0].max, 930u);
}

TEST(BTraceObsTest, DerivedGauges)
{
    // advances x blockSize bytes opened; headers + dummies are the
    // overhead. Synthetic snapshot: 10 blocks of 4096, 1000 dummy
    // bytes.
    BTraceCounters::Snapshot s;
    s.advances = 10;
    s.dummyBytes = 1000;
    const double eff = BTraceObs::effectivityRatio(s, 4096);
    const double expected =
        1.0 - (1000.0 + 10.0 * EntryLayout::blockHeaderBytes) / 40960.0;
    EXPECT_NEAR(eff, expected, 1e-12);
    EXPECT_NEAR(BTraceObs::dummyOverheadFraction(s, 4096),
                1000.0 / 40960.0, 1e-12);

    // No advancement yet: defined as fully effective, zero overhead.
    BTraceCounters::Snapshot zero;
    EXPECT_DOUBLE_EQ(BTraceObs::effectivityRatio(zero, 4096), 1.0);
    EXPECT_DOUBLE_EQ(BTraceObs::dummyOverheadFraction(zero, 4096), 0.0);
}

TEST(BTraceObsTest, RegistryReflectsTracer)
{
    BTrace bt(smallConfig());
    TracerObserver obs(/*sample_every=*/1);
    bt.attachObserver(&obs);
    BTraceObs mx(bt, &obs);

    for (uint64_t s = 1; s <= 200; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 2), 1, s, 40));

    const auto c = mx.registry().collect();
    double fast = -1, eff = -1, samples = -1, head = -1;
    for (const MetricValue &m : c.metrics) {
        if (m.name == "btrace_fast_allocs_total") fast = m.value;
        if (m.name == "btrace_effectivity_ratio") eff = m.value;
        if (m.name == "btrace_obs_samples_total") samples = m.value;
        if (m.name == "btrace_head_position") head = m.value;
    }
    EXPECT_DOUBLE_EQ(fast, 200.0);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    EXPECT_DOUBLE_EQ(samples, 200.0);  // K=1: every record sampled
    EXPECT_GT(head, 0.0);

    // Occupancy gauges partition the active set.
    double complete = 0, open = 0, incomplete = 0;
    for (const MetricValue &m : c.metrics) {
        if (m.name == "btrace_blocks_complete") complete = m.value;
        if (m.name == "btrace_blocks_open") open = m.value;
        if (m.name == "btrace_blocks_incomplete") incomplete = m.value;
    }
    EXPECT_DOUBLE_EQ(complete + open + incomplete,
                     double(smallConfig().activeBlocks));

    // Histograms present and populated.
    ASSERT_EQ(c.histograms.size(), 2u);
    EXPECT_EQ(c.histograms[0].name, "btrace_record_latency_ns");
    EXPECT_EQ(c.histograms[0].count, 200u);
    bt.attachObserver(nullptr);
}

TEST(BTraceObsTest, ConsumerLagGauge)
{
    BTrace bt(smallConfig());
    BTraceObs mx(bt);
    for (uint64_t s = 1; s <= 300; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));
    const auto head = double(bt.headPosition());
    ASSERT_GT(head, 2.0);

    // No consumer noted: lag reports the whole head, but inactive.
    EXPECT_DOUBLE_EQ(mx.consumerLagPositions(), head);
    EXPECT_FALSE(mx.healthInput().consumerActive);

    mx.noteConsumerPosition(uint64_t(head) - 2);
    EXPECT_DOUBLE_EQ(mx.consumerLagPositions(), 2.0);
    EXPECT_TRUE(mx.healthInput().consumerActive);

    // A consumer ahead of the head (stale head read) clamps to zero.
    mx.noteConsumerPosition(uint64_t(head) + 10);
    EXPECT_DOUBLE_EQ(mx.consumerLagPositions(), 0.0);
}

// The observer must not add RMW traffic on the tracer's shared words:
// identical single-threaded runs with and without an attached
// observer at K=1 must report the same sharedRmws.
TEST(ObserverContract, SharedRmwsUnchanged)
{
    const auto run = [](TracerObserver *obs) {
        BTrace bt(smallConfig());
        if (obs != nullptr)
            bt.attachObserver(obs);
        for (uint64_t s = 1; s <= 500; ++s)
            EXPECT_TRUE(bt.record(0, 1, s, 40));
        return bt.countersSnapshot().sharedRmws;
    };
    const uint64_t bare = run(nullptr);
    TracerObserver obs(/*sample_every=*/1);
    const uint64_t observed = run(&obs);
    EXPECT_EQ(bare, observed);
    EXPECT_EQ(obs.samples(), 500u);  // and the overhead is metered
}

TEST(ObserverContract, OneInKSampling)
{
    TracerObserver obs(/*sample_every=*/4);
    int sampled = 0;
    for (int i = 0; i < 400; ++i)
        if (obs.shouldSample())
            ++sampled;
    // The thread-local tick is shared across observers, so this
    // thread's phase is unknown — but the density must be 1-in-4.
    EXPECT_GE(sampled, 99);
    EXPECT_LE(sampled, 101);
}

TEST(Exporters, PrometheusTextFormat)
{
    MetricsRegistry reg;
    reg.addCounter("app_events_total", "Events seen",
                   []() { return 12.0; });
    reg.addGauge("app_ratio", "A ratio", []() { return 0.25; });
    ConcurrentHistogram h(1);
    h.add(100);
    reg.addHistogram("app_lat_ns", "Latency", &h);

    const std::string text =
        renderPrometheus(reg.collect(), {{"job", "t\"est"}});
    EXPECT_NE(text.find("# HELP app_events_total Events seen\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE app_events_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("app_events_total{job=\"t\\\"est\"} 12\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE app_ratio gauge\n"), std::string::npos);
    EXPECT_NE(text.find("app_ratio{job=\"t\\\"est\"} 0.25\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE app_lat_ns histogram\n"),
              std::string::npos);
    // One sample of 100 ns lands in the log-linear bucket whose upper
    // bound is 104; the cumulative grid then carries it to +Inf.
    EXPECT_NE(
        text.find("app_lat_ns_bucket{job=\"t\\\"est\",le=\"104\"} 1\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("app_lat_ns_bucket{job=\"t\\\"est\",le=\"+Inf\"} 1\n"),
        std::string::npos);
    EXPECT_NE(text.find("app_lat_ns_sum{job=\"t\\\"est\"} 100\n"),
              std::string::npos);
    EXPECT_NE(text.find("app_lat_ns_count{job=\"t\\\"est\"} 1\n"),
              std::string::npos);
}

TEST(Exporters, JsonLineRoundTrip)
{
    ObsSample s;
    s.seq = 3;
    s.tSec = 1.25;
    s.labels = {{"tracer", "BTrace"}, {"note", "quo\"te\\b"}};
    s.counters = {{"a_total", 10.0}, {"b_total", 2.5}};
    s.rates = {{"a_total", 5.0}};
    s.gauges = {{"ratio", 0.75}};
    HistogramValue h;
    h.name = "lat_ns";
    h.count = 7;
    h.sum = 350;
    h.p50 = 40;
    h.p99 = 90;
    h.p999 = 95;
    h.max = 120;
    s.histograms.push_back(h);
    s.health.push_back(HealthEvent{HealthKind::LeaseStragglerWedge, 3,
                                   "detail \"quoted\""});

    const ParsedObsLine p = parseObsLine(renderJsonLine(s));
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.seq, 3u);
    EXPECT_DOUBLE_EQ(p.tSec, 1.25);
    EXPECT_EQ(p.labels.at("tracer"), "BTrace");
    EXPECT_EQ(p.labels.at("note"), "quo\"te\\b");
    EXPECT_DOUBLE_EQ(p.counters.at("a_total"), 10.0);
    EXPECT_DOUBLE_EQ(p.counters.at("b_total"), 2.5);
    EXPECT_DOUBLE_EQ(p.rates.at("a_total"), 5.0);
    EXPECT_DOUBLE_EQ(p.gauges.at("ratio"), 0.75);
    EXPECT_DOUBLE_EQ(p.histograms.at("lat_ns").at("p99"), 90.0);
    EXPECT_DOUBLE_EQ(p.histograms.at("lat_ns").at("sum"), 350.0);
    ASSERT_EQ(p.healthKinds.size(), 1u);
    EXPECT_EQ(p.healthKinds[0], "lease_straggler_wedge");
}

TEST(Exporters, ParseRejectsGarbage)
{
    EXPECT_FALSE(parseObsLine("").ok);
    EXPECT_FALSE(parseObsLine("not json").ok);
    EXPECT_FALSE(parseObsLine("[1,2,3]").ok);
    EXPECT_FALSE(parseObsLine("{\"t_sec\":1.0}").ok);  // missing seq
    EXPECT_FALSE(
        parseObsLine("{\"seq\":1,\"t_sec\":0,\"counters\":{\"x\":\"y\"}}")
            .ok);
}

} // namespace
