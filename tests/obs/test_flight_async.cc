/**
 * @file
 * Async-safety regression for the flight recorder's dump path
 * (DESIGN.md §9): a watchdog trip caused by memory exhaustion must
 * still produce a bundle, so capture + render + file write must never
 * touch the allocator.
 *
 * Proven with a *failing allocator*: this binary replaces the global
 * operator new with one that, while armed, counts every call and
 * returns null from the nothrow forms / throws from the throwing
 * forms. The test arms it around FlightRecorder::dump() — one
 * allocation anywhere on that path either bumps the counter (assertion
 * failure) or throws through a noexcept frame (process abort, also a
 * failure). This interposition is why the test lives in its own
 * binary.
 */

// Our operator new is malloc-backed, so free() in operator delete is
// the matching deallocator; GCC can't see through the interposition.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "core/btrace.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"

namespace {

std::atomic<bool> g_fail_allocs{false};
std::atomic<uint64_t> g_denied{0};

void *
allocate(std::size_t n)
{
    if (g_fail_allocs.load(std::memory_order_relaxed)) {
        g_denied.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    return std::malloc(n ? n : 1);
}

} // namespace

void *
operator new(std::size_t n)
{
    void *p = allocate(n);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    void *p = allocate(n);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return allocate(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return allocate(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace btrace {
namespace {

class FailingAllocatorScope
{
  public:
    FailingAllocatorScope()
    {
        g_denied.store(0, std::memory_order_relaxed);
        g_fail_allocs.store(true, std::memory_order_relaxed);
    }
    ~FailingAllocatorScope()
    {
        g_fail_allocs.store(false, std::memory_order_relaxed);
    }
    uint64_t denied() const
    {
        return g_denied.load(std::memory_order_relaxed);
    }
};

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 32;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    return cfg;
}

TEST(FlightAsync, DumpAllocatesNothingUnderFailingAllocator)
{
    BTrace bt(smallConfig());
    EventJournal j;
    bt.attachJournal(&j);
    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(bt.record(uint16_t(s % 4), 1, s, 40));

    FlightRecorderOptions fo;
    fo.path = testing::TempDir() + "btrace_flight_async.json";
    FlightRecorder fr(bt, &j, fo);

    bool ok = false;
    uint64_t denied = 0;
    {
        FailingAllocatorScope oom;
        ok = fr.dump("watchdog:simulated_oom");
        denied = oom.denied();
    }
    bt.attachJournal(nullptr);

    EXPECT_TRUE(ok);
    EXPECT_EQ(denied, 0u) << "dump path hit the allocator " << denied
                          << " time(s)";

    // The bundle written under allocator failure is complete and
    // parseable, not truncated mid-render.
    std::ifstream in(fo.path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const ParsedFlightBundle p = parseFlightBundle(ss.str());
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.trigger, "watchdog:simulated_oom");
    EXPECT_EQ(p.counters.at("fast_allocs"), 500.0);
    EXPECT_FALSE(p.journal.empty());
}

TEST(FlightAsync, RepeatDumpsStayAllocationFree)
{
    // Second and later dumps reuse the same scratch: no warm-up
    // allocation is allowed to hide in the first call either, but
    // guard the steady state explicitly.
    BTrace bt(smallConfig());
    FlightRecorderOptions fo;
    fo.path = testing::TempDir() + "btrace_flight_async2.json";
    FlightRecorder fr(bt, nullptr, fo);
    ASSERT_TRUE(fr.dump("first"));

    FailingAllocatorScope oom;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(fr.dump("again"));
    EXPECT_EQ(oom.denied(), 0u);
}

} // namespace
} // namespace btrace
