/**
 * @file
 * Cost-attribution profiler (DESIGN.md §14): calibration sanity, the
 * arming contract — armed-off runs are byte-identical in sharedRmws,
 * and arming adds zero shared RMWs on both the single-entry and the
 * leased fast path — phase coverage of a live tracer, the rendered
 * attribution table, and the perf_event_open degrade-to-TSC path.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/profiler.h"
#include "trace/event.h"

using namespace btrace;

namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.cores = 2;
    cfg.activeBlocks = 4;
    cfg.numBlocks = 16;
    return cfg;
}

TEST(Profiler, PhaseNamesAreTotalAndDistinct)
{
    std::vector<std::string> seen;
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const char *name =
            profilePhaseName(static_cast<ProfilePhase>(i));
        EXPECT_STRNE(name, "unknown") << "phase " << i;
        for (const std::string &s : seen)
            EXPECT_NE(s, name);
        seen.push_back(name);
    }
}

TEST(Profiler, CalibrationIsSane)
{
    CostProfiler p(2);
    // A tick is between 1/10 GHz-ish and the ns-clock fallback's 1:1.
    EXPECT_GT(p.nsPerTick(), 0.0);
    EXPECT_LT(p.nsPerTick(), 1000.0);
    EXPECT_GE(p.probeOverheadNs(), 0.0);
    EXPECT_LT(p.probeOverheadNs(), 10000.0);
    // The raw counter itself must move.
    const uint64_t t0 = profilerTicks();
    for (volatile int i = 0; i < 100000; ++i) {
    }
    EXPECT_GT(profilerTicks(), t0);
}

TEST(Profiler, AddConvertsTicksToCalibratedNanoseconds)
{
    CostProfiler p(1);
    // A delta large enough that overhead subtraction and bucket
    // granularity (~6.3%) stay small relative to the value.
    const uint64_t ticks = uint64_t(1e6 / p.nsPerTick());
    p.add(ProfilePhase::Claim, ticks);
    const ProfileSnapshot s = p.snapshot();
    EXPECT_EQ(s.of(ProfilePhase::Claim).count, 1u);
    EXPECT_EQ(s.samples(), 1u);
    const double expect =
        double(ticks) * p.nsPerTick() - p.probeOverheadNs();
    EXPECT_NEAR(double(s.of(ProfilePhase::Claim).totalNs), expect,
                expect * 0.07 + 16.0);
    EXPECT_EQ(s.attributedNs(), s.of(ProfilePhase::Claim).totalNs);

    p.clear();
    EXPECT_EQ(p.snapshot().samples(), 0u);
    // Calibration survives clear().
    EXPECT_GT(p.nsPerTick(), 0.0);
}

TEST(Profiler, ProbeSubtractsOverheadAndClampsAtZero)
{
    CostProfiler p(1);
    // A zero-tick delta must clamp, not wrap.
    p.add(ProfilePhase::Bump, 0);
    EXPECT_EQ(p.snapshot().of(ProfilePhase::Bump).totalNs, 0u);

    // An armed probe on a null profiler is a no-op at both ends.
    { PhaseProbe probe(nullptr, ProfilePhase::Claim); }
    { PhaseProbe probe(&p, ProfilePhase::Claim); }
    EXPECT_EQ(p.snapshot().of(ProfilePhase::Claim).count, 1u);
}

// Armed-off contract: a tracer with no profiler attached must behave
// byte-identically in sharedRmws to one that never heard of the
// feature — the probe sites are one relaxed load and a branch.
TEST(ProfilerContract, SharedRmwsUnchangedWhenDisarmed)
{
    const auto run = [](bool attach_then_detach) {
        BTrace bt(smallConfig());
        if (attach_then_detach) {
            CostProfiler p(1);
            bt.attachProfiler(&p);
            bt.attachProfiler(nullptr);
        }
        for (uint64_t s = 1; s <= 500; ++s)
            EXPECT_TRUE(bt.record(0, 1, s, 40));
        return bt.countersSnapshot().sharedRmws;
    };
    EXPECT_EQ(run(false), run(true));
}

// Armed-on contract, single-entry path: probes write only to
// profiler-owned per-thread shards, so an armed run reports exactly
// the same sharedRmws as a bare one — and did record probes.
TEST(ProfilerContract, ArmedSingleEntryPathAddsZeroSharedRmws)
{
    const auto run = [](CostProfiler *p) {
        BTrace bt(smallConfig());
        if (p != nullptr)
            bt.attachProfiler(p);
        for (uint64_t s = 1; s <= 500; ++s)
            EXPECT_TRUE(bt.record(0, 1, s, 40));
        return bt.countersSnapshot().sharedRmws;
    };
    const uint64_t bare = run(nullptr);
    CostProfiler p(1);
    const uint64_t armed = run(&p);
    EXPECT_EQ(bare, armed);

    const ProfileSnapshot s = p.snapshot();
    // Every record pays at least one claim FAA and one confirm
    // publish (boundary fills add a few more of each).
    EXPECT_GE(s.of(ProfilePhase::Claim).count, 500u);
    EXPECT_GE(s.of(ProfilePhase::Publish).count, 500u);
    // No lease was ever granted, so no bump/renew probes.
    EXPECT_EQ(s.of(ProfilePhase::Bump).count, 0u);
    EXPECT_EQ(s.of(ProfilePhase::LeaseRenew).count, 0u);
}

// Armed-on contract, leased path: the bump-pointer serve is probed on
// every entry yet adds zero shared RMWs; claim/publish/renew fire once
// per lease span.
TEST(ProfilerContract, ArmedLeasedPathAddsZeroSharedRmws)
{
    BTraceConfig cfg = smallConfig();
    cfg.blockSize = 4096;
    constexpr uint32_t kEntries = 200;
    constexpr uint32_t kPerLease = 8;

    const auto run = [&cfg](CostProfiler *p) {
        BTrace bt(cfg);
        if (p != nullptr)
            bt.attachProfiler(p);
        uint64_t stamp = 0;
        uint32_t written = 0;
        while (written < kEntries) {
            Lease l = bt.lease(0, 7, 40, kPerLease);
            EXPECT_TRUE(l.ok());
            if (!l.ok())
                break;
            for (uint32_t k = 0; k < kPerLease && written < kEntries;
                 ++k) {
                WriteTicket t = l.allocate(40);
                if (!t.ok())
                    break;
                writeNormal(t.dst, ++stamp, 0, 7, 0, 40);
                l.confirm(t);
                ++written;
            }
            l.close();
        }
        return bt.countersSnapshot().sharedRmws;
    };

    const uint64_t bare = run(nullptr);
    CostProfiler p(1);
    const uint64_t armed = run(&p);
    EXPECT_EQ(bare, armed);

    const ProfileSnapshot s = p.snapshot();
    // Each served entry crossed the bump-pointer probe...
    EXPECT_GE(s.of(ProfilePhase::Bump).count, uint64_t(kEntries));
    // ...while claim and renewal fired per lease, not per entry.
    EXPECT_GE(s.of(ProfilePhase::Claim).count,
              uint64_t(kEntries) / kPerLease);
    EXPECT_LT(s.of(ProfilePhase::Claim).count, uint64_t(kEntries));
    EXPECT_GT(s.of(ProfilePhase::LeaseRenew).count, 0u);
    EXPECT_GT(s.of(ProfilePhase::Publish).count, 0u);
}

// The JournalContract concurrency geometry: four threads on four
// distinct cores, each doing exactly one advancement and then staying
// inside its own block, so the shared-RMW count is interleaving-
// independent and bare vs armed must match exactly.
TEST(ProfilerContract, SharedRmwsUnchangedConcurrentFastPath)
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.cores = 4;
    cfg.activeBlocks = 4;
    cfg.numBlocks = 8;

    const auto run = [&cfg](CostProfiler *p) {
        BTrace bt(cfg);
        if (p != nullptr)
            bt.attachProfiler(p);
        std::vector<std::thread> threads;
        for (uint16_t core = 0; core < 4; ++core) {
            threads.emplace_back([&bt, core]() {
                for (uint64_t i = 0; i < 20; ++i) {
                    ASSERT_TRUE(bt.record(core, core,
                                          uint64_t(core) * 1000 + i + 1,
                                          40));
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
        return bt.countersSnapshot().sharedRmws;
    };

    const uint64_t bare = run(nullptr);
    CostProfiler p(4);
    const uint64_t armed = run(&p);
    EXPECT_EQ(bare, armed);
    EXPECT_EQ(p.snapshot().of(ProfilePhase::Claim).count, 80u);
}

TEST(Profiler, TableRendersEveryPhaseAndCalibration)
{
    CostProfiler p(1);
    for (std::size_t i = 0; i < kProfilePhases; ++i)
        p.add(static_cast<ProfilePhase>(i), 1000 + 100 * i);
    const std::string table = p.snapshot().table();
    for (std::size_t i = 0; i < kProfilePhases; ++i)
        EXPECT_NE(table.find(profilePhaseName(
                      static_cast<ProfilePhase>(i))),
                  std::string::npos)
            << table;
    EXPECT_NE(table.find("ns/tick"), std::string::npos);
}

TEST(Profiler, MetricsRegistryExportsProfileFamily)
{
    BTrace bt(smallConfig());
    CostProfiler p(1);
    bt.attachProfiler(&p);
    for (uint64_t s = 1; s <= 50; ++s)
        EXPECT_TRUE(bt.record(0, 1, s, 40));
    bt.attachProfiler(nullptr);

    MetricsRegistry reg;
    registerProfilerMetrics(reg, p);
    const auto c = reg.collect();

    bool samplesTotal = false, nsPerTick = false, overhead = false;
    for (const MetricValue &m : c.metrics) {
        if (m.name == "btrace_profile_samples_total") {
            samplesTotal = true;
            EXPECT_EQ(m.kind, MetricKind::Counter);
            EXPECT_DOUBLE_EQ(m.value, double(p.snapshot().samples()));
        }
        if (m.name == "btrace_profile_ns_per_tick") {
            nsPerTick = true;
            EXPECT_GT(m.value, 0.0);
        }
        if (m.name == "btrace_profile_probe_overhead_ns")
            overhead = true;
    }
    EXPECT_TRUE(samplesTotal);
    EXPECT_TRUE(nsPerTick);
    EXPECT_TRUE(overhead);

    std::size_t phaseHists = 0;
    for (const HistogramValue &h : c.histograms)
        if (h.name.rfind("btrace_profile_", 0) == 0) {
            ++phaseHists;
            if (h.name == "btrace_profile_claim_ns")
                EXPECT_GE(h.count, 50u);
        }
    EXPECT_EQ(phaseHists, kProfilePhases);
}

// perf_event_open is frequently unavailable (seccomp, paranoid level,
// VMs without a PMU): either it opens and counts, or it fails with an
// explanation — never silently, never fatally.
TEST(Profiler, PerfCountersOpenOrExplain)
{
    ThreadPerfCounters c;
    if (c.open()) {
        EXPECT_TRUE(c.ok());
        EXPECT_TRUE(c.error().empty());
        c.reset();
        for (volatile int i = 0; i < 1000000; ++i) {
        }
        const PerfSample s = c.read();
        EXPECT_GT(s.cycles, 0u);
    } else {
        EXPECT_FALSE(c.ok());
        EXPECT_FALSE(c.error().empty());
        // Degraded reads are zeros, not crashes.
        const PerfSample s = c.read();
        EXPECT_EQ(s.cycles, 0u);
        c.reset();
    }
}

} // namespace
