/**
 * @file
 * HealthWatchdog: the interval-delta rules on synthetic inputs, and —
 * the real thing — a deterministic stall and a lease-straggler wedge
 * provoked on a live BTrace via the yield-point hooks, detected from
 * genuine counter snapshots.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/test_hooks.h"
#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/watchdog.h"
#include "sim/schedule.h"

using namespace btrace;
using btrace::hooks::YieldPoint;

namespace {

BTraceConfig
tinyConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.cores = 2;
    cfg.activeBlocks = 2;
    cfg.numBlocks = 4;
    cfg.maxBlocks = 8;  // leave resize headroom for the freeze tests
    return cfg;
}

HealthInput
syntheticInput(uint64_t would_block, uint64_t advances, uint64_t seq)
{
    HealthInput in;
    in.ctrs.wouldBlock = would_block;
    in.ctrs.advances = advances;
    in.seq = seq;
    in.tSec = double(seq);
    return in;
}

TEST(Watchdog, FirstObservationOnlyBaselines)
{
    HealthWatchdog dog;
    EXPECT_TRUE(dog.observe(syntheticInput(1000, 0, 0)).empty());
}

TEST(Watchdog, StallFiresAfterConsecutiveIntervalsAndLatches)
{
    WatchdogOptions opt;
    opt.stallIntervals = 2;
    HealthWatchdog dog(opt);

    dog.observe(syntheticInput(0, 10, 0));               // baseline
    EXPECT_TRUE(dog.observe(syntheticInput(5, 10, 1)).empty());
    const auto fired = dog.observe(syntheticInput(9, 10, 2));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].kind, HealthKind::StalledAdvancement);
    EXPECT_EQ(fired[0].atSeq, 2u);

    // Latched: the persisting stall does not re-fire...
    EXPECT_TRUE(dog.observe(syntheticInput(14, 10, 3)).empty());
    // ...recovery clears it...
    EXPECT_TRUE(dog.observe(syntheticInput(14, 12, 4)).empty());
    // ...and a new stall can fire again.
    EXPECT_TRUE(dog.observe(syntheticInput(20, 12, 5)).empty());
    const auto again = dog.observe(syntheticInput(26, 12, 6));
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(dog.history().size(), 2u);
}

TEST(Watchdog, HealthySaturationDoesNotFire)
{
    // wouldBlock rising while advancement also makes progress is a
    // saturated-but-live tracer, not a stall.
    WatchdogOptions opt;
    opt.stallIntervals = 2;
    HealthWatchdog dog(opt);
    dog.observe(syntheticInput(0, 0, 0));
    for (uint64_t i = 1; i <= 6; ++i)
        EXPECT_TRUE(
            dog.observe(syntheticInput(10 * i, 3 * i, i)).empty());
}

TEST(Watchdog, ConsumerLagGrowthNeedsActiveConsumer)
{
    WatchdogOptions opt;
    opt.lagIntervals = 3;
    HealthWatchdog dog(opt);

    const auto lagged = [](double lag, bool active, uint64_t seq) {
        HealthInput in;
        in.ctrs.advances = seq;  // healthy advancement throughout
        in.consumerLagPositions = lag;
        in.consumerActive = active;
        in.seq = seq;
        return in;
    };

    // Growing "lag" with no consumer attached: ignored.
    dog.observe(lagged(0, false, 0));
    for (uint64_t i = 1; i <= 5; ++i)
        EXPECT_TRUE(dog.observe(lagged(100.0 * i, false, i)).empty());

    // With a consumer: fires on the Nth consecutive growth interval.
    dog.observe(lagged(10, true, 10));
    EXPECT_TRUE(dog.observe(lagged(20, true, 11)).empty());
    EXPECT_TRUE(dog.observe(lagged(30, true, 12)).empty());
    const auto fired = dog.observe(lagged(40, true, 13));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].kind, HealthKind::ConsumerLagGrowth);

    // Shrinking lag resets the streak and the latch.
    EXPECT_TRUE(dog.observe(lagged(5, true, 14)).empty());
    EXPECT_TRUE(dog.observe(lagged(6, true, 15)).empty());
}

#if defined(BTRACE_ENABLE_TEST_HOOKS)

// Non-blocking write attempt: record() spins on Retry by design, so a
// wedged-tracer test must surface the Retry instead of looping on it.
bool
tryWrite(BTrace &bt, uint64_t stamp)
{
    ScopedWrite w(bt, 1, 2, 40, ScopedWrite::NonBlocking);
    if (!w.ok())
        return false;
    w.fill(stamp);
    w.commit();
    return true;
}

// Hammer @p bt from core 1 until writes start bouncing, then keep
// bouncing for @p extra more attempts so wouldBlock keeps rising
// while advances stay flat.
void
driveToWedge(BTrace &bt, uint64_t &stamp, int extra)
{
    bool sawFailure = false;
    for (int i = 0; i < 200000; ++i) {
        if (!tryWrite(bt, ++stamp)) {
            sawFailure = true;
            break;
        }
    }
    ASSERT_TRUE(sawFailure) << "tracer never reached WouldBlock";
    for (int i = 0; i < extra; ++i)
        EXPECT_FALSE(tryWrite(bt, ++stamp));
}

// A resizer parked at ResizePostFreeze holds the frozen bit: every
// advancement attempt returns WouldBlock immediately, so once the
// producer's block fills, record() fails flat-out — wouldBlock rises
// while advances stay at zero. The watchdog must detect the stall
// from genuine counter snapshots and stand down after the resize
// resumes.
TEST(WatchdogLive, DetectsProvokedStall)
{
    BTrace bt(tinyConfig());
    BTraceObs mx(bt);

    PreemptionInjector inj;
    inj.armPark(YieldPoint::ResizePostFreeze);
    std::thread rz([&bt]() { bt.resize(8); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::ResizePostFreeze));

    uint64_t stamp = 1;
    WatchdogOptions opt;
    opt.stallIntervals = 2;
    HealthWatchdog dog(opt);

    driveToWedge(bt, stamp, 100);
    uint64_t seq = 0;
    HealthInput in = mx.healthInput();
    in.seq = seq++;
    dog.observe(in);  // baseline, already wedged

    bool sawStall = false;
    bool sawWedge = false;
    for (int interval = 0; interval < 10 && !sawStall; ++interval) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_FALSE(tryWrite(bt, ++stamp));
        in = mx.healthInput();
        in.seq = seq++;
        for (const HealthEvent &e : dog.observe(in)) {
            if (e.kind == HealthKind::StalledAdvancement)
                sawStall = true;
            if (e.kind == HealthKind::LeaseStragglerWedge)
                sawWedge = true;
        }
    }
    EXPECT_TRUE(sawStall);
    EXPECT_FALSE(sawWedge);  // no lease in play: a stall, not a wedge

    // Resume the resize: the freeze lifts, records flow, and the
    // recovered intervals fire nothing.
    inj.release(YieldPoint::ResizePostFreeze);
    rz.join();
    ASSERT_TRUE(bt.record(1, 2, ++stamp, 40));
    for (int interval = 0; interval < 2; ++interval) {
        for (int i = 0; i < 50; ++i)
            ASSERT_TRUE(bt.record(1, 2, ++stamp, 40));
        in = mx.healthInput();
        in.seq = seq++;
        EXPECT_TRUE(dog.observe(in).empty());
    }
}

// The PR 2 livelock signature: an open lease pins leased-outstanding
// bytes at a nonzero level with no lease turnover while the tracer
// stalls — the watchdog must classify it as a wedge, not just a stall.
TEST(WatchdogLive, ClassifiesLeaseStragglerWedge)
{
    BTrace bt(tinyConfig());
    BTraceObs mx(bt);

    // The straggler: grants a lease and never closes it.
    Lease straggler = bt.lease(0, 1, 40, 2);
    ASSERT_TRUE(straggler.ok());
    ASSERT_GT(bt.countersSnapshot().leasedOutstanding, 0u);

    PreemptionInjector inj;
    inj.armPark(YieldPoint::ResizePostFreeze);
    std::thread rz([&bt]() { bt.resize(8); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::ResizePostFreeze));

    uint64_t stamp = 1;
    WatchdogOptions opt;
    opt.stallIntervals = 2;
    HealthWatchdog dog(opt);

    driveToWedge(bt, stamp, 100);
    uint64_t seq = 0;
    HealthInput in = mx.healthInput();
    in.seq = seq++;
    dog.observe(in);

    bool sawWedge = false;
    for (int interval = 0; interval < 10 && !sawWedge; ++interval) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_FALSE(tryWrite(bt, ++stamp));
        in = mx.healthInput();
        in.seq = seq++;
        for (const HealthEvent &e : dog.observe(in))
            if (e.kind == HealthKind::LeaseStragglerWedge)
                sawWedge = true;
    }
    EXPECT_TRUE(sawWedge);

    // Unwind in dependency order: the resize's quiesce loop waits for
    // the leased block's bytes, so the straggler must close first.
    inj.release(YieldPoint::ResizePostFreeze);
    straggler.close();
    rz.join();
    ASSERT_TRUE(bt.record(1, 2, ++stamp, 40));
}

#endif // BTRACE_ENABLE_TEST_HOOKS

} // namespace
