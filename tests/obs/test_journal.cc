/**
 * @file
 * Lifecycle event journal: ring semantics, the zero-shared-RMW
 * attachment contract (single-threaded and a deterministic concurrent
 * fast-path run), the transition-site coverage on a live tracer, and
 * the flight recorder — including the acceptance scenario: a bundle
 * captured while a resize is parked at ResizePostFreeze must contain
 * the ResizeFreeze journal event that explains the wedge.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/test_hooks.h"
#include "core/btrace.h"
#include "trace/event.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "sim/schedule.h"

using namespace btrace;
#if defined(BTRACE_ENABLE_TEST_HOOKS)
using btrace::hooks::YieldPoint;
#endif

namespace {

BTraceConfig
smallConfig()
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.cores = 2;
    cfg.activeBlocks = 4;
    cfg.numBlocks = 16;
    return cfg;
}

uint64_t
countKind(const std::vector<JournalRecord> &recs, JournalEventKind kind)
{
    uint64_t n = 0;
    for (const JournalRecord &r : recs)
        if (r.kind == kind) ++n;
    return n;
}

TEST(Journal, KindAndReasonNamesAreTotal)
{
    for (uint16_t k = 0;
         k < static_cast<uint16_t>(JournalEventKind::Count); ++k) {
        const char *name =
            journalEventKindName(static_cast<JournalEventKind>(k));
        EXPECT_STRNE(name, "unknown") << "kind " << k;
    }
    for (uint16_t r = 0;
         r < static_cast<uint16_t>(BlockCloseReason::Count); ++r) {
        const char *name =
            blockCloseReasonName(static_cast<BlockCloseReason>(r));
        EXPECT_STRNE(name, "unknown") << "reason " << r;
    }
    EXPECT_STREQ(journalEventKindName(JournalEventKind::ResizeFreeze),
                 "resize_freeze");
    EXPECT_STREQ(blockCloseReasonName(BlockCloseReason::Graveyard),
                 "graveyard");
}

TEST(Journal, RingOverwritesOldest)
{
    JournalOptions jo;
    jo.shards = 1;
    jo.recordsPerShard = 4;
    EventJournal j(jo);
    EXPECT_EQ(j.capacity(), 4u);
    EXPECT_EQ(j.shardCount(), 1u);

    for (uint64_t i = 1; i <= 10; ++i)
        j.emit(JournalEventKind::BlockOpen, 0, /*block=*/i, 0);

    EXPECT_EQ(j.emitted(), 10u);
    const std::vector<JournalRecord> recs = j.snapshot();
    ASSERT_EQ(recs.size(), 4u);
    // Overwrite-oldest: only the last four survive, in order.
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].block, 7 + i);
        EXPECT_EQ(recs[i].seq, 7 + i);  // per-shard seq is 1-based
    }

    const std::vector<JournalRecord> tail = j.lastN(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].block, 9u);
    EXPECT_EQ(tail[1].block, 10u);
}

TEST(Journal, RecordsCarryKindCoreAndTid)
{
    EventJournal j;
    j.emit(JournalEventKind::BlockClose, 3, 42,
           uint64_t(BlockCloseReason::Straggler));
    j.emit(JournalEventKind::ConsumerPass, EventJournal::kNoCore, 7, 99);

    const std::vector<JournalRecord> recs = j.snapshot();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].kind, JournalEventKind::BlockClose);
    EXPECT_EQ(recs[0].core, 3u);
    EXPECT_EQ(recs[0].block, 42u);
    EXPECT_EQ(recs[0].arg, uint64_t(BlockCloseReason::Straggler));
    EXPECT_EQ(recs[1].kind, JournalEventKind::ConsumerPass);
    EXPECT_EQ(recs[1].core, EventJournal::kNoCore);
    EXPECT_EQ(recs[1].tid, EventJournal::currentTid());
    EXPECT_GE(recs[1].tsc, recs[0].tsc);
}

TEST(Journal, CoversTransitionSitesOnLiveTracer)
{
    BTrace bt(smallConfig());
    EventJournal j;
    bt.attachJournal(&j);
    ASSERT_EQ(bt.attachedJournal(), &j);

    // Fill plenty of 256-byte blocks: advancements journal opens, the
    // boundary fills journal full-closes.
    for (uint64_t s = 1; s <= 500; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));

    // A lease granted and closed half-used journals grant + revoke;
    // one granted and abandoned journals the abandonment.
    {
        Lease l = bt.lease(1, 2, 40, 4);
        ASSERT_TRUE(l.ok());
        WriteTicket t = l.allocate(40);
        ASSERT_TRUE(t.ok());
        writeNormal(t.dst, 1000, 1, 2, 0, 40);
        l.confirm(t);
        l.close();
    }
    {
        Lease l = bt.lease(1, 2, 40, 4);
        ASSERT_TRUE(l.ok());
        l.close();  // served nothing
    }

    // An incremental consumer pass journals its cursor advance.
    DumpCursor cursor;
    (void)bt.dumpFrom(cursor);

    const std::vector<JournalRecord> recs = j.snapshot();
    EXPECT_GT(countKind(recs, JournalEventKind::BlockOpen), 0u);
    EXPECT_GT(countKind(recs, JournalEventKind::BlockClose), 0u);
    EXPECT_EQ(countKind(recs, JournalEventKind::LeaseGrant), 2u);
    EXPECT_EQ(countKind(recs, JournalEventKind::LeaseRevoke), 1u);
    EXPECT_EQ(countKind(recs, JournalEventKind::LeaseAbandon), 1u);
    EXPECT_EQ(countKind(recs, JournalEventKind::ConsumerPass), 1u);

    // Full-closes carry their reason in arg.
    bool sawFull = false;
    for (const JournalRecord &r : recs) {
        if (r.kind == JournalEventKind::BlockClose &&
            static_cast<BlockCloseReason>(r.arg) ==
                BlockCloseReason::Full)
            sawFull = true;
    }
    EXPECT_TRUE(sawFull);

    // A resize journals begin/freeze/reclaim/end in order.
    bt.resize(8);
    const std::vector<JournalRecord> after = j.snapshot();
    EXPECT_EQ(countKind(after, JournalEventKind::ResizeBegin), 1u);
    EXPECT_EQ(countKind(after, JournalEventKind::ResizeFreeze), 1u);
    EXPECT_EQ(countKind(after, JournalEventKind::ReclaimStart), 1u);
    EXPECT_EQ(countKind(after, JournalEventKind::ReclaimEnd), 1u);
    EXPECT_EQ(countKind(after, JournalEventKind::ResizeEnd), 1u);

    bt.attachJournal(nullptr);
    EXPECT_EQ(bt.attachedJournal(), nullptr);
}

// The journal must not add RMW traffic on the tracer's shared words:
// identical single-threaded runs with and without an attached journal
// must report the same sharedRmws (same bar as the TracerObserver).
TEST(JournalContract, SharedRmwsUnchangedSingleThread)
{
    const auto run = [](EventJournal *j) {
        BTrace bt(smallConfig());
        if (j != nullptr)
            bt.attachJournal(j);
        for (uint64_t s = 1; s <= 500; ++s)
            EXPECT_TRUE(bt.record(0, 1, s, 40));
        return bt.countersSnapshot().sharedRmws;
    };
    const uint64_t bare = run(nullptr);
    EventJournal j;
    const uint64_t journaled = run(&j);
    EXPECT_EQ(bare, journaled);
    EXPECT_GT(j.emitted(), 0u);  // and the journal did record
}

// Concurrent fast-path run sized so the shared-RMW count is
// interleaving-independent: four threads on four distinct cores, each
// doing exactly one advancement (its first record) and then staying
// inside its own block — so bare and journaled totals must match
// exactly even though the schedules differ.
TEST(JournalContract, SharedRmwsUnchangedConcurrentFastPath)
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.cores = 4;
    cfg.activeBlocks = 4;
    cfg.numBlocks = 8;

    const auto run = [&cfg](EventJournal *j) {
        BTrace bt(cfg);
        if (j != nullptr)
            bt.attachJournal(j);
        std::vector<std::thread> threads;
        for (uint16_t core = 0; core < 4; ++core) {
            threads.emplace_back([&bt, core]() {
                for (uint64_t i = 0; i < 20; ++i) {
                    ASSERT_TRUE(bt.record(core, core,
                                          uint64_t(core) * 1000 + i + 1,
                                          40));
                }
            });
        }
        for (std::thread &t : threads) t.join();
        return bt.countersSnapshot().sharedRmws;
    };

    const uint64_t bare = run(nullptr);
    EventJournal j;
    const uint64_t journaled = run(&j);
    EXPECT_EQ(bare, journaled);
    // Each thread's advancement journaled a BlockOpen.
    EXPECT_EQ(countKind(j.snapshot(), JournalEventKind::BlockOpen), 4u);
}

TEST(Journal, SnapshotIsSafeConcurrentWithEmitters)
{
    JournalOptions jo;
    jo.shards = 2;
    jo.recordsPerShard = 64;
    EventJournal j(jo);

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 2; ++w) {
        writers.emplace_back([&j, &stop]() {
            uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed))
                j.emit(JournalEventKind::BlockOpen, 0, ++i, 0);
        });
    }
    // Concurrent readers: every record returned must be well-formed
    // (a valid kind), lapped slots dropped rather than torn.
    for (int pass = 0; pass < 200; ++pass) {
        const std::vector<JournalRecord> recs = j.snapshot();
        for (const JournalRecord &r : recs) {
            ASSERT_LT(static_cast<uint16_t>(r.kind),
                      static_cast<uint16_t>(JournalEventKind::Count));
            ASSERT_GT(r.seq, 0u);
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : writers) t.join();
}

TEST(FlightRecorderTest, BundleRoundTripsThroughParser)
{
    BTrace bt(smallConfig());
    EventJournal j;
    bt.attachJournal(&j);
    for (uint64_t s = 1; s <= 200; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));

    FlightRecorderOptions fo;
    fo.lastN = 64;
    FlightRecorder fr(bt, &j, fo);
    const std::string bundle = fr.render("unit_test");

    const ParsedFlightBundle p = parseFlightBundle(bundle);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.trigger, "unit_test");
    EXPECT_EQ(p.counters.at("fast_allocs"), 200.0);
    EXPECT_GT(p.counters.at("shared_rmws"), 0.0);
    EXPECT_GT(p.gauges.at("head_position"), 0.0);
    EXPECT_EQ(p.gauges.at("blocks_complete") +
                  p.gauges.at("blocks_open") +
                  p.gauges.at("blocks_incomplete"),
              double(smallConfig().activeBlocks));
    ASSERT_EQ(p.slots.size(), smallConfig().activeBlocks);
    for (const auto &slot : p.slots) {
        EXPECT_TRUE(slot.count("alloc_pos"));
        EXPECT_TRUE(slot.count("conf_rnd"));
    }
    EXPECT_EQ(p.journalEmitted, j.emitted());
    ASSERT_FALSE(p.journal.empty());
    bool sawClose = false;
    for (const auto &e : p.journal) {
        if (e.kind == "block_close") {
            sawClose = true;
            EXPECT_FALSE(e.reason.empty());
        }
    }
    EXPECT_TRUE(sawClose);
    bt.attachJournal(nullptr);
}

TEST(FlightRecorderTest, DumpWritesFile)
{
    BTrace bt(smallConfig());
    EventJournal j;
    bt.attachJournal(&j);
    for (uint64_t s = 1; s <= 50; ++s)
        ASSERT_TRUE(bt.record(0, 1, s, 40));

    FlightRecorderOptions fo;
    fo.path = testing::TempDir() + "btrace_flight_test.json";
    FlightRecorder fr(bt, &j, fo);
    EXPECT_EQ(fr.dumps(), 0u);
    ASSERT_TRUE(fr.dump("explicit"));
    EXPECT_EQ(fr.dumps(), 1u);

    std::ifstream in(fo.path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const ParsedFlightBundle p = parseFlightBundle(ss.str());
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.trigger, "explicit");
    bt.attachJournal(nullptr);

    // Empty path: render-only recorder refuses to dump.
    FlightRecorder disabled(bt, &j, FlightRecorderOptions{});
    EXPECT_FALSE(disabled.dump("nope"));
}

TEST(FlightRecorderTest, ParseRejectsGarbage)
{
    EXPECT_FALSE(parseFlightBundle("").ok);
    EXPECT_FALSE(parseFlightBundle("not json").ok);
    EXPECT_FALSE(parseFlightBundle("{\"bundle\":\"other\"}").ok);
    EXPECT_FALSE(parseFlightBundle("{\"trigger\":\"x\"}").ok);
}

#if defined(BTRACE_ENABLE_TEST_HOOKS)

// Non-blocking write attempt (same helper as the watchdog-live tests):
// record() spins on Retry by design, so a wedged-tracer test must
// surface the Retry instead of looping on it.
bool
tryWrite(BTrace &bt, uint64_t stamp)
{
    ScopedWrite w(bt, 1, 2, 40, ScopedWrite::NonBlocking);
    if (!w.ok())
        return false;
    w.fill(stamp);
    w.commit();
    return true;
}

// Acceptance scenario: a resize parked at ResizePostFreeze wedges the
// tracer (every advancement bounces off the frozen bit). A flight
// bundle captured in that state must contain the ResizeFreeze journal
// event — the one record that explains why nothing advances.
TEST(FlightRecorderLive, WedgedResizeBundleContainsResizeFreeze)
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.cores = 2;
    cfg.activeBlocks = 2;
    cfg.numBlocks = 4;
    cfg.maxBlocks = 8;

    BTrace bt(cfg);
    EventJournal j;
    bt.attachJournal(&j);

    PreemptionInjector inj;
    inj.armPark(YieldPoint::ResizePostFreeze);
    std::thread rz([&bt]() { bt.resize(8); });
    ASSERT_TRUE(inj.awaitParked(YieldPoint::ResizePostFreeze));

    // Drive producers into the wedge: writes bounce once the core's
    // block fills and advancement is frozen.
    uint64_t stamp = 1;
    bool sawFailure = false;
    for (int i = 0; i < 200000 && !sawFailure; ++i)
        sawFailure = !tryWrite(bt, ++stamp);
    ASSERT_TRUE(sawFailure) << "tracer never reached WouldBlock";

    FlightRecorderOptions fo;
    fo.path = testing::TempDir() + "btrace_flight_wedge.json";
    FlightRecorder fr(bt, &j, fo);
    ASSERT_TRUE(fr.dump("watchdog:stalled_advancement"));

    std::ifstream in(fo.path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const ParsedFlightBundle p = parseFlightBundle(ss.str());
    ASSERT_TRUE(p.ok) << p.error;

    bool sawFreeze = false, sawEnd = false;
    for (const auto &e : p.journal) {
        if (e.kind == "resize_freeze") sawFreeze = true;
        if (e.kind == "resize_end") sawEnd = true;
    }
    EXPECT_TRUE(sawFreeze)
        << "bundle journal lacks the resize_freeze event";
    EXPECT_FALSE(sawEnd) << "resize should still be parked";

    inj.release(YieldPoint::ResizePostFreeze);
    rz.join();
    ASSERT_TRUE(bt.record(1, 2, ++stamp, 40));
    bt.attachJournal(nullptr);
}

#endif // BTRACE_ENABLE_TEST_HOOKS

} // namespace
