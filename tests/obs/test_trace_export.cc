/**
 * @file
 * Chrome trace-event export of the lifecycle journal: structural JSON
 * validity (parsed with the repo's own reader), open→close pairing
 * into complete ("X") events, instants for skips / lifecycle events /
 * watchdog trips, process-name metadata, leftover-open handling, and
 * the composition entry point in analysis/export.h.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/export.h"
#include "obs/json_reader.h"
#include "obs/journal.h"
#include "obs/trace_export.h"

using namespace btrace;

namespace {

JournalRecord
rec(JournalEventKind kind, uint64_t tsc, uint64_t block, uint64_t arg,
    uint16_t core = 0, uint32_t tid = 1)
{
    JournalRecord r;
    r.kind = kind;
    r.tsc = tsc;
    r.block = block;
    r.arg = arg;
    r.core = core;
    r.tid = tid;
    return r;
}

/** Parse a full trace document; fatal-asserts validity. */
JsonValue
parseDoc(const std::string &json)
{
    JsonValue root;
    JsonReader reader(json);
    EXPECT_TRUE(reader.parse(root)) << reader.error << "\n" << json;
    EXPECT_EQ(root.type, JsonValue::Type::Object);
    return root;
}

const JsonValue &
eventsOf(const JsonValue &root)
{
    const JsonValue *ev = root.find("traceEvents");
    EXPECT_NE(ev, nullptr);
    EXPECT_EQ(ev->type, JsonValue::Type::Array);
    return *ev;
}

double
numField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    EXPECT_NE(v, nullptr) << "missing " << key;
    return v != nullptr ? v->num : 0.0;
}

std::string
strField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    EXPECT_NE(v, nullptr) << "missing " << key;
    return v != nullptr ? v->str : std::string();
}

TEST(TraceExport, EmptyJournalYieldsEmptyDocument)
{
    EXPECT_EQ(journalTraceEvents({}), "");
    const JsonValue root = parseDoc(exportJournalChromeJson({}));
    EXPECT_TRUE(eventsOf(root).arr.empty());
}

TEST(TraceExport, OpenCloseBecomesCompleteEvent)
{
    std::vector<JournalRecord> recs;
    recs.push_back(rec(JournalEventKind::BlockOpen, 1000, 4, 0, 2));
    recs.push_back(
        rec(JournalEventKind::BlockClose, 5000, 4,
            uint64_t(BlockCloseReason::Full), 2));

    TraceEventExportOptions opt;
    opt.activeBlocks = 4;
    const JsonValue root = parseDoc(exportJournalChromeJson(recs, opt));
    const JsonValue &events = eventsOf(root);

    // Two metadata events + one complete event.
    const JsonValue *x = nullptr;
    int metadata = 0;
    for (const JsonValue &e : events.arr) {
        const std::string ph = strField(e, "ph");
        if (ph == "M") {
            ++metadata;
            EXPECT_EQ(strField(e, "name"), "process_name");
        } else if (ph == "X") {
            ASSERT_EQ(x, nullptr) << "more than one complete event";
            x = &e;
        }
    }
    EXPECT_EQ(metadata, 2);
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(strField(*x, "name"), "block 4 (full)");
    EXPECT_EQ(numField(*x, "pid"), 1.0);
    EXPECT_EQ(numField(*x, "tid"), 0.0);  // track = 4 mod activeBlocks
    EXPECT_EQ(numField(*x, "ts"), 0.0);   // rebased to earliest record
    EXPECT_EQ(numField(*x, "dur"), 4.0);  // 4000 ns = 4 us
    const JsonValue *args = x->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(numField(*args, "block"), 4.0);
    EXPECT_EQ(strField(*args, "reason"), "full");
}

TEST(TraceExport, NsPerTickScalesTimestamps)
{
    std::vector<JournalRecord> recs;
    recs.push_back(rec(JournalEventKind::BlockOpen, 10, 0, 0));
    recs.push_back(rec(JournalEventKind::BlockClose, 20, 0,
                       uint64_t(BlockCloseReason::Full)));
    TraceEventExportOptions opt;
    opt.nsPerTick = 100.0;  // 10 ticks = 1000 ns = 1 us
    const JsonValue root = parseDoc(exportJournalChromeJson(recs, opt));
    for (const JsonValue &e : eventsOf(root).arr) {
        if (strField(e, "ph") == "X")
            EXPECT_EQ(numField(e, "dur"), 1.0);
    }
}

TEST(TraceExport, UnmatchedCloseAndLeftoverOpen)
{
    std::vector<JournalRecord> recs;
    // Close whose open was overwritten by the ring: degrades to an
    // instant. Open that never closes: becomes an X to the last tsc.
    recs.push_back(rec(JournalEventKind::BlockClose, 100, 9,
                       uint64_t(BlockCloseReason::Straggler)));
    recs.push_back(rec(JournalEventKind::BlockOpen, 200, 10, 0));
    recs.push_back(rec(JournalEventKind::ConsumerPass, 5200, 0, 7));

    const JsonValue root = parseDoc(exportJournalChromeJson(recs));
    bool sawOrphanClose = false, sawOpenSpan = false;
    for (const JsonValue &e : eventsOf(root).arr) {
        const std::string ph = strField(e, "ph");
        if (ph == "i" && strField(e, "name") == "block 9 (straggler)")
            sawOrphanClose = true;
        if (ph == "X" && strField(e, "name") == "block 10 (open)") {
            sawOpenSpan = true;
            // Spans from its open to the last record: 5000 ns = 5 us.
            EXPECT_EQ(numField(e, "dur"), 5.0);
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(numField(*args, "unclosed"), 1.0);
        }
    }
    EXPECT_TRUE(sawOrphanClose);
    EXPECT_TRUE(sawOpenSpan);
}

TEST(TraceExport, InstantKindsAndScopes)
{
    std::vector<JournalRecord> recs;
    recs.push_back(rec(JournalEventKind::BlockSkip, 100, 6, 240, 1));
    recs.push_back(rec(JournalEventKind::LeaseGrant, 200, 2, 224, 1, 7));
    recs.push_back(rec(JournalEventKind::ResizeFreeze, 300, 12, 4,
                       EventJournal::kNoCore));
    recs.push_back(rec(JournalEventKind::WatchdogTrip, 400, 0, 3,
                       EventJournal::kNoCore, 9));

    const JsonValue root = parseDoc(exportJournalChromeJson(recs));
    bool sawSkip = false, sawLease = false, sawFreeze = false,
         sawTrip = false;
    for (const JsonValue &e : eventsOf(root).arr) {
        if (strField(e, "ph") != "i")
            continue;
        const std::string name = strField(e, "name");
        const std::string scope = strField(e, "s");
        if (name == "skip") {
            sawSkip = true;
            EXPECT_EQ(numField(e, "pid"), 1.0);  // on the block track
            EXPECT_EQ(scope, "t");
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(numField(*args, "confirmed_pos"), 240.0);
        } else if (name == "lease_grant") {
            sawLease = true;
            EXPECT_EQ(numField(e, "pid"), 2.0);
            EXPECT_EQ(numField(e, "tid"), 7.0);
        } else if (name == "resize_freeze") {
            sawFreeze = true;
            EXPECT_EQ(numField(e, "pid"), 2.0);
        } else if (name == "watchdog_trip") {
            sawTrip = true;
            EXPECT_EQ(scope, "g");  // global scope marker
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(numField(*args, "health_kind"), 3.0);
        }
    }
    EXPECT_TRUE(sawSkip);
    EXPECT_TRUE(sawLease);
    EXPECT_TRUE(sawFreeze);
    EXPECT_TRUE(sawTrip);
}

TEST(TraceExport, EveryEventHasRequiredFields)
{
    std::vector<JournalRecord> recs;
    for (uint64_t i = 0; i < 8; ++i) {
        recs.push_back(rec(JournalEventKind::BlockOpen, 100 * i, i, 0));
        recs.push_back(rec(JournalEventKind::BlockClose, 100 * i + 50, i,
                           uint64_t(BlockCloseReason::Full)));
    }
    recs.push_back(rec(JournalEventKind::ReclaimStart, 900, 8, 4));
    recs.push_back(rec(JournalEventKind::ReclaimEnd, 950, 8, 4));

    const JsonValue root = parseDoc(exportJournalChromeJson(recs));
    const JsonValue &events = eventsOf(root);
    ASSERT_FALSE(events.arr.empty());
    for (const JsonValue &e : events.arr) {
        const std::string ph = strField(e, "ph");
        EXPECT_FALSE(strField(e, "name").empty());
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        if (ph == "M")
            continue;
        ASSERT_NE(e.find("ts"), nullptr);
        EXPECT_GE(numField(e, "ts"), 0.0);
        if (ph == "X")
            EXPECT_GE(numField(e, "dur"), 0.0);
        if (ph == "i") {
            const std::string scope = strField(e, "s");
            EXPECT_TRUE(scope == "t" || scope == "p" || scope == "g")
                << scope;
        }
    }
}

TEST(TraceExport, ComposesWithEntryExport)
{
    std::vector<DumpEntry> entries;
    DumpEntry de;
    de.stamp = 5;
    de.core = 0;
    de.thread = 1;
    de.category = 0;
    de.size = 40;
    entries.push_back(de);

    std::vector<JournalRecord> recs;
    recs.push_back(rec(JournalEventKind::BlockOpen, 100, 0, 0));
    recs.push_back(rec(JournalEventKind::BlockClose, 300, 0,
                       uint64_t(BlockCloseReason::Consumer)));

    const std::string json =
        exportChromeJsonWithJournal(entries, recs);
    const JsonValue root = parseDoc(json);
    const JsonValue &events = eventsOf(root);

    bool sawEntry = false, sawBlock = false;
    for (const JsonValue &e : events.arr) {
        if (strField(e, "ph") == "i" && e.find("args") != nullptr &&
            e.find("args")->find("stamp") != nullptr)
            sawEntry = true;
        if (strField(e, "ph") == "X" &&
            strField(e, "name") == "block 0 (consumer)")
            sawBlock = true;
    }
    EXPECT_TRUE(sawEntry) << json;
    EXPECT_TRUE(sawBlock) << json;

    // Each side empty still yields a valid document.
    EXPECT_NE(exportChromeJsonWithJournal({}, recs).find("block 0"),
              std::string::npos);
    const JsonValue entriesOnly =
        parseDoc(exportChromeJsonWithJournal(entries, {}));
    EXPECT_EQ(eventsOf(entriesOnly).arr.size(), 1u);
}

} // namespace
