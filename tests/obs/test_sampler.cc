/**
 * @file
 * StatsSampler: snapshot monotonicity while real producer threads
 * hammer the tracer (the TSan target of the obs plane), rate
 * computation, the ring of recent samples, and the JSON-lines file.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/sampler.h"
#include "trace/observer.h"

using namespace btrace;

namespace {

BTraceConfig
mediumConfig(unsigned cores)
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.cores = cores;
    cfg.activeBlocks = 16 * cores;
    cfg.numBlocks = 8 * cfg.activeBlocks;
    return cfg;
}

std::string
tmpPath(const char *name)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return std::string(::testing::TempDir()) + info->name() + "_" + name;
}

TEST(StatsSampler, SampleOnceComputesRates)
{
    MetricsRegistry reg;
    double counter = 0.0;
    reg.addCounter("x_total", "x", [&counter]() { return counter; });
    reg.addGauge("g", "g", []() { return 7.0; });

    StatsSampler sampler(reg, SamplerOptions{});
    const ObsSample s0 = sampler.sampleOnce();
    EXPECT_EQ(s0.seq, 0u);
    EXPECT_TRUE(s0.rates.empty());  // no previous sample yet

    counter = 100.0;
    const ObsSample s1 = sampler.sampleOnce();
    EXPECT_EQ(s1.seq, 1u);
    ASSERT_EQ(s1.rates.size(), 1u);
    EXPECT_EQ(s1.rates[0].first, "x_total");
    EXPECT_GT(s1.rates[0].second, 0.0);  // 100 events over a tiny dt
    ASSERT_EQ(s1.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(s1.gauges[0].second, 7.0);
    EXPECT_GE(s1.tSec, s0.tSec);
}

TEST(StatsSampler, RingIsBounded)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });
    SamplerOptions opt;
    opt.ringSize = 3;
    StatsSampler sampler(reg, opt);
    for (int i = 0; i < 10; ++i)
        sampler.sampleOnce();
    const auto recent = sampler.recent();
    ASSERT_EQ(recent.size(), 3u);
    EXPECT_EQ(recent[0].seq, 7u);
    EXPECT_EQ(recent[2].seq, 9u);
    EXPECT_EQ(sampler.samplesTaken(), 10u);
}

// The TSan target: a background sampler collecting from a registry
// whose callbacks read live tracer state, while producer threads
// write flat out. Every sample must be internally consistent: seq
// strictly increasing, time and every counter non-decreasing.
TEST(StatsSampler, MonotoneUnderConcurrentProducers)
{
    constexpr unsigned kThreads = 4;
    BTrace bt(mediumConfig(kThreads));
    TracerObserver obs(/*sample_every=*/8);
    bt.attachObserver(&obs);
    BTraceObs mx(bt, &obs);

    SamplerOptions opt;
    opt.intervalSec = 0.002;
    opt.ringSize = 4096;
    StatsSampler sampler(mx.registry(), opt);
    sampler.setHealthSource([&mx]() { return mx.healthInput(); });
    sampler.start();

    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < kThreads; ++t) {
        producers.emplace_back([&bt, &stop, t]() {
            uint64_t stamp = uint64_t(t) << 40;
            while (!stop.load(std::memory_order_acquire))
                bt.record(uint16_t(t), 100 + t, ++stamp, 48);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true, std::memory_order_release);
    for (std::thread &t : producers)
        t.join();
    sampler.stop();
    bt.attachObserver(nullptr);

    const auto samples = sampler.recent();
    ASSERT_GE(samples.size(), 3u);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        const ObsSample &prev = samples[i - 1];
        const ObsSample &cur = samples[i];
        EXPECT_EQ(cur.seq, prev.seq + 1);
        EXPECT_GE(cur.tSec, prev.tSec);
        ASSERT_EQ(cur.counters.size(), prev.counters.size());
        for (std::size_t c = 0; c < cur.counters.size(); ++c) {
            EXPECT_EQ(cur.counters[c].first, prev.counters[c].first);
            EXPECT_GE(cur.counters[c].second, prev.counters[c].second)
                << cur.counters[c].first << " regressed at seq "
                << cur.seq;
        }
        for (const auto &rate : cur.rates)
            EXPECT_GE(rate.second, 0.0);
    }

    // The observer histograms flowed through into the samples.
    const ObsSample &last = samples.back();
    bool sawRecordHist = false;
    for (const HistogramValue &h : last.histograms) {
        if (h.name == "btrace_record_latency_ns") {
            sawRecordHist = true;
            EXPECT_GT(h.count, 0u);
        }
    }
    EXPECT_TRUE(sawRecordHist);
}

TEST(StatsSampler, WritesParsableJsonLines)
{
    const std::string path = tmpPath("obs.jsonl");
    MetricsRegistry reg;
    double counter = 0.0;
    reg.addCounter("x_total", "x", [&counter]() { return counter; });
    {
        SamplerOptions opt;
        opt.jsonPath = path;
        opt.labels = {{"test", "sampler"}};
        StatsSampler sampler(reg, opt);
        for (int i = 0; i < 5; ++i) {
            counter += 10.0;
            sampler.sampleOnce();
        }
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    uint64_t expectSeq = 0;
    while (std::getline(in, line)) {
        const ParsedObsLine p = parseObsLine(line);
        ASSERT_TRUE(p.ok) << p.error << " in: " << line;
        EXPECT_EQ(p.seq, expectSeq++);
        EXPECT_EQ(p.labels.at("test"), "sampler");
        EXPECT_DOUBLE_EQ(p.counters.at("x_total"),
                         10.0 * double(expectSeq));
    }
    EXPECT_EQ(expectSeq, 5u);
    std::remove(path.c_str());
}

TEST(StatsSampler, BackgroundThreadStartStop)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });
    SamplerOptions opt;
    opt.intervalSec = 0.005;
    StatsSampler sampler(reg, opt);
    sampler.start();
    sampler.start();  // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    sampler.stop();
    const uint64_t n = sampler.samplesTaken();
    EXPECT_GE(n, 1u);  // at least the final flush sample
    sampler.stop();  // idempotent
    EXPECT_EQ(sampler.samplesTaken(), n);
}

} // namespace
