/**
 * @file
 * StatsSampler: snapshot monotonicity while real producer threads
 * hammer the tracer (the TSan target of the obs plane), rate
 * computation, the ring of recent samples, and the JSON-lines file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/journal.h"
#include "obs/sampler.h"
#include "trace/observer.h"

using namespace btrace;

namespace {

BTraceConfig
mediumConfig(unsigned cores)
{
    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.cores = cores;
    cfg.activeBlocks = 16 * cores;
    cfg.numBlocks = 8 * cfg.activeBlocks;
    return cfg;
}

std::string
tmpPath(const char *name)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return std::string(::testing::TempDir()) + info->name() + "_" + name;
}

TEST(StatsSampler, SampleOnceComputesRates)
{
    MetricsRegistry reg;
    double counter = 0.0;
    reg.addCounter("x_total", "x", [&counter]() { return counter; });
    reg.addGauge("g", "g", []() { return 7.0; });

    StatsSampler sampler(reg, SamplerOptions{});
    const ObsSample s0 = sampler.sampleOnce();
    EXPECT_EQ(s0.seq, 0u);
    EXPECT_TRUE(s0.rates.empty());  // no previous sample yet

    counter = 100.0;
    const ObsSample s1 = sampler.sampleOnce();
    EXPECT_EQ(s1.seq, 1u);
    ASSERT_EQ(s1.rates.size(), 1u);
    EXPECT_EQ(s1.rates[0].first, "x_total");
    EXPECT_GT(s1.rates[0].second, 0.0);  // 100 events over a tiny dt
    ASSERT_EQ(s1.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(s1.gauges[0].second, 7.0);
    EXPECT_GE(s1.tSec, s0.tSec);
}

TEST(StatsSampler, RingIsBounded)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });
    SamplerOptions opt;
    opt.ringSize = 3;
    StatsSampler sampler(reg, opt);
    for (int i = 0; i < 10; ++i)
        sampler.sampleOnce();
    const auto recent = sampler.recent();
    ASSERT_EQ(recent.size(), 3u);
    EXPECT_EQ(recent[0].seq, 7u);
    EXPECT_EQ(recent[2].seq, 9u);
    EXPECT_EQ(sampler.samplesTaken(), 10u);
}

// The TSan target: a background sampler collecting from a registry
// whose callbacks read live tracer state, while producer threads
// write flat out. Every sample must be internally consistent: seq
// strictly increasing, time and every counter non-decreasing.
TEST(StatsSampler, MonotoneUnderConcurrentProducers)
{
    constexpr unsigned kThreads = 4;
    BTrace bt(mediumConfig(kThreads));
    TracerObserver obs(/*sample_every=*/8);
    bt.attachObserver(&obs);
    BTraceObs mx(bt, &obs);

    SamplerOptions opt;
    opt.intervalSec = 0.002;
    opt.ringSize = 4096;
    StatsSampler sampler(mx.registry(), opt);
    sampler.setHealthSource([&mx]() { return mx.healthInput(); });
    sampler.start();

    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < kThreads; ++t) {
        producers.emplace_back([&bt, &stop, t]() {
            uint64_t stamp = uint64_t(t) << 40;
            while (!stop.load(std::memory_order_acquire))
                bt.record(uint16_t(t), 100 + t, ++stamp, 48);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true, std::memory_order_release);
    for (std::thread &t : producers)
        t.join();
    sampler.stop();
    bt.attachObserver(nullptr);

    const auto samples = sampler.recent();
    ASSERT_GE(samples.size(), 3u);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        const ObsSample &prev = samples[i - 1];
        const ObsSample &cur = samples[i];
        EXPECT_EQ(cur.seq, prev.seq + 1);
        EXPECT_GE(cur.tSec, prev.tSec);
        ASSERT_EQ(cur.counters.size(), prev.counters.size());
        for (std::size_t c = 0; c < cur.counters.size(); ++c) {
            EXPECT_EQ(cur.counters[c].first, prev.counters[c].first);
            EXPECT_GE(cur.counters[c].second, prev.counters[c].second)
                << cur.counters[c].first << " regressed at seq "
                << cur.seq;
        }
        for (const auto &rate : cur.rates)
            EXPECT_GE(rate.second, 0.0);
    }

    // The observer histograms flowed through into the samples.
    const ObsSample &last = samples.back();
    bool sawRecordHist = false;
    for (const HistogramValue &h : last.histograms) {
        if (h.name == "btrace_record_latency_ns") {
            sawRecordHist = true;
            EXPECT_GT(h.count, 0u);
        }
    }
    EXPECT_TRUE(sawRecordHist);
}

TEST(StatsSampler, WritesParsableJsonLines)
{
    const std::string path = tmpPath("obs.jsonl");
    MetricsRegistry reg;
    double counter = 0.0;
    reg.addCounter("x_total", "x", [&counter]() { return counter; });
    {
        SamplerOptions opt;
        opt.jsonPath = path;
        opt.labels = {{"test", "sampler"}};
        StatsSampler sampler(reg, opt);
        for (int i = 0; i < 5; ++i) {
            counter += 10.0;
            sampler.sampleOnce();
        }
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    uint64_t expectSeq = 0;
    while (std::getline(in, line)) {
        const ParsedObsLine p = parseObsLine(line);
        ASSERT_TRUE(p.ok) << p.error << " in: " << line;
        EXPECT_EQ(p.seq, expectSeq++);
        EXPECT_EQ(p.labels.at("test"), "sampler");
        EXPECT_DOUBLE_EQ(p.counters.at("x_total"),
                         10.0 * double(expectSeq));
    }
    EXPECT_EQ(expectSeq, 5u);
    std::remove(path.c_str());
}

// Regression: the background loop must schedule on absolute deadlines.
// With a registry whose collection takes ~60% of the period, a
// relative-sleep loop would space samples at (period + cost) and drift
// ~30ms per beat; absolute deadlines keep the median spacing at the
// period. Uses the median so one noisy beat on a loaded CI box cannot
// fail the test.
TEST(SamplerTiming, AbsoluteDeadlineAvoidsDrift)
{
    MetricsRegistry reg;
    reg.addGauge("slow_gauge", "sleeps during collect", []() {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return 1.0;
    });

    SamplerOptions opt;
    opt.intervalSec = 0.05;
    opt.ringSize = 64;
    StatsSampler sampler(reg, opt);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    sampler.stop();

    const auto samples = sampler.recent();
    ASSERT_GE(samples.size(), 6u);
    std::vector<double> diffs;
    // The stop() flush sample is not on the cadence; exclude it.
    for (std::size_t i = 1; i + 1 < samples.size(); ++i)
        diffs.push_back(samples[i].tSec - samples[i - 1].tSec);
    ASSERT_GE(diffs.size(), 4u);
    std::sort(diffs.begin(), diffs.end());
    const double median = diffs[diffs.size() / 2];
    // Relative sleeps would put the median at >= 0.08 (period + cost).
    EXPECT_LT(median, 0.075) << "sampler cadence drifted";
    EXPECT_GE(median, 0.045) << "sampler fired a catch-up burst";
}

// A health source that is mid-evaluation when stop() lands: stop must
// wait it out and join cleanly, never hang or tear down under it.
TEST(SamplerShutdown, StopDuringWatchdogEvaluation)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });

    std::atomic<int> evaluations{0};
    SamplerOptions opt;
    opt.intervalSec = 0.002;
    StatsSampler sampler(reg, opt);
    sampler.setHealthSource([&evaluations]() {
        evaluations.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return HealthInput{};
    });
    sampler.start();
    // Give the loop time to get inside an evaluation, then stop into it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sampler.stop();
    EXPECT_GE(evaluations.load(), 1);
    const uint64_t n = sampler.samplesTaken();
    EXPECT_GE(n, 1u);
    sampler.stop();
    EXPECT_EQ(sampler.samplesTaken(), n);
}

// Two threads racing stop() against each other (plus a late third
// call): exactly one joins the worker, the rest return; a subsequent
// start()/stop() cycle still works. Run under TSan in CI.
TEST(SamplerShutdown, ConcurrentDoubleStopIsIdempotent)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });
    SamplerOptions opt;
    opt.intervalSec = 0.005;
    StatsSampler sampler(reg, opt);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));

    std::thread a([&sampler]() { sampler.stop(); });
    std::thread b([&sampler]() { sampler.stop(); });
    a.join();
    b.join();
    sampler.stop();  // already stopped: no-op

    const uint64_t afterFirst = sampler.samplesTaken();
    EXPECT_GE(afterFirst, 1u);

    // The sampler must be restartable after a clean stop.
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    sampler.stop();
    EXPECT_GT(sampler.samplesTaken(), afterFirst);
}

// A deterministic watchdog trip (synthetic health input: wouldBlock
// rises, advances do not) must be mirrored into the attached journal
// as a WatchdogTrip record and handed to the health-event hook.
TEST(SamplerHealth, TripJournalsAndInvokesHook)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });

    uint64_t fakeWouldBlock = 0;
    SamplerOptions opt;
    opt.watchdog.stallIntervals = 2;
    StatsSampler sampler(reg, opt);
    sampler.setHealthSource([&fakeWouldBlock]() {
        HealthInput in;
        fakeWouldBlock += 100;  // writers bouncing...
        in.ctrs.wouldBlock = fakeWouldBlock;
        in.ctrs.advances = 0;  // ...and nothing advancing
        return in;
    });

    EventJournal journal;
    std::vector<HealthEvent> hooked;
    sampler.setJournal(&journal);
    sampler.setHealthEventHook(
        [&hooked](const HealthEvent &e) { hooked.push_back(e); });

    // Baseline + stallIntervals bad intervals, deterministically.
    for (int i = 0; i < 4; ++i)
        sampler.sampleOnce();

    ASSERT_FALSE(sampler.healthHistory().empty());
    ASSERT_FALSE(hooked.empty());
    EXPECT_EQ(hooked.front().kind, HealthKind::StalledAdvancement);

    bool sawTrip = false;
    for (const JournalRecord &r : journal.snapshot()) {
        if (r.kind == JournalEventKind::WatchdogTrip) {
            sawTrip = true;
            EXPECT_EQ(r.arg, uint64_t(int(
                                 HealthKind::StalledAdvancement)));
            EXPECT_EQ(r.core, EventJournal::kNoCore);
        }
    }
    EXPECT_TRUE(sawTrip);
}

TEST(StatsSampler, BackgroundThreadStartStop)
{
    MetricsRegistry reg;
    reg.addCounter("x_total", "x", []() { return 1.0; });
    SamplerOptions opt;
    opt.intervalSec = 0.005;
    StatsSampler sampler(reg, opt);
    sampler.start();
    sampler.start();  // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    sampler.stop();
    const uint64_t n = sampler.samplesTaken();
    EXPECT_GE(n, 1u);  // at least the final flush sample
    sampler.stop();  // idempotent
    EXPECT_EQ(sampler.samplesTaken(), n);
}

} // namespace
