/**
 * @file
 * Unit tests for the btraced drain loop (daemon/daemon.h): segment
 * writing and rotation, retention, the final close-active drain on
 * stop, stats accounting, and the shared trace-file codec's torn-tail
 * behavior that crash-robust collection depends on.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "daemon/daemon.h"
#include "trace/trace_file.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(StorageKind storage = StorageKind::Private)
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 64;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    cfg.storage = storage;
    return cfg;
}

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "btraced_test_" +
              std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
    }

    void
    TearDown() override
    {
        // Best-effort cleanup of the segment directory.
        for (uint64_t i = 0; i < 64; ++i)
            std::remove(daemonSegmentPath(dir, i).c_str());
        ::rmdir(dir.c_str());
    }

    std::string dir;
};

TEST_F(DaemonTest, DrainsIntoSegment)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    Session sess = s.take();
    for (uint64_t st = 1; st <= 100; ++st)
        ASSERT_TRUE(sess->record(0, 1, st, 16));

    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(std::move(sess), opts);
    ASSERT_TRUE(d.ok()) << d.status().toString();
    ConsumerDaemon &daemon = *d.value();

    auto n = daemon.drainOnce();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 100u);
    daemon.stop();

    const DaemonStats st = daemon.stats();
    EXPECT_EQ(st.entries, 100u);
    EXPECT_EQ(st.segmentsOpened, 1u);

    auto loaded = readTraceFile(daemonSegmentPath(dir, 0));
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().size(), 100u);
    EXPECT_EQ(loaded.value()[0].stamp, 1u);
}

TEST_F(DaemonTest, SecondDrainSeesOnlyNewEntries)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    Session sess = s.take();

    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(std::move(sess), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (uint64_t st = 1; st <= 50; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    ASSERT_TRUE(daemon.drainOnce().ok());

    for (uint64_t st = 51; st <= 80; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    auto n = daemon.drainOnce();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 30u);  // incremental, not a re-read

    daemon.stop();
    EXPECT_EQ(daemon.stats().entries, 80u);
}

TEST_F(DaemonTest, RotatesAndAgesOutSegments)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());

    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    // Tiny budget: ~10 records per segment forces many rotations.
    opts.segmentBytes = 10 * sizeof(TraceDiskRecord);
    opts.maxSegments = 2;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (int round = 0; round < 12; ++round) {
        for (uint64_t k = 1; k <= 10; ++k)
            ASSERT_TRUE(daemon.session()->record(
                0, 1, uint64_t(round) * 10 + k, 16));
        ASSERT_TRUE(daemon.drainOnce().ok());
    }
    daemon.stop();

    const DaemonStats st = daemon.stats();
    EXPECT_EQ(st.entries, 120u);
    EXPECT_GT(st.segmentsOpened, 2u);
    EXPECT_GT(st.segmentsDeleted, 0u);
    // Retention: at most maxSegments finished segments plus the open
    // one survive on disk.
    uint64_t onDisk = 0;
    for (uint64_t i = 0; i < st.segmentsOpened; ++i) {
        struct stat sb;
        if (::stat(daemonSegmentPath(dir, i).c_str(), &sb) == 0)
            ++onDisk;
    }
    EXPECT_LE(onDisk, opts.maxSegments + 1);

    // Every surviving segment decodes, and the newest one holds the
    // newest stamps.
    auto last = readTraceFile(
        daemonSegmentPath(dir, st.segmentsOpened - 1));
    ASSERT_TRUE(last.ok()) << last.status().toString();
    ASSERT_FALSE(last.value().empty());
    EXPECT_EQ(last.value().back().stamp, 120u);
}

TEST_F(DaemonTest, StopRunsFinalCloseActiveDrain)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());

    DaemonOptions opts;
    opts.outDir = dir;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    // Entries sit in open blocks; no explicit drain happened.
    for (uint64_t st = 1; st <= 25; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    daemon.stop();

    auto loaded = readTraceFile(daemonSegmentPath(dir, 0));
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 25u);
}

TEST_F(DaemonTest, BackgroundThreadDrainsAndSweeps)
{
    auto s = Session::create(smallConfig(StorageKind::Shm));
    ASSERT_TRUE(s.ok());

    DaemonOptions opts;
    opts.outDir = dir;
    opts.drainIntervalSec = 0.001;
    opts.sweepEveryNDrains = 2;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    daemon.start();
    for (uint64_t st = 1; st <= 200; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    // Let the loop take a few passes, then stop (joins + final drain).
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    daemon.stop();

    const DaemonStats st = daemon.stats();
    EXPECT_GT(st.drains, 1u);
    EXPECT_GT(st.sweeps, 0u);
    EXPECT_EQ(st.entries, 200u);
    EXPECT_EQ(st.reclaimedLeases, 0u);  // nobody died
}

TEST_F(DaemonTest, DrainAfterStopFails)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    d.value()->stop();
    auto n = d.value()->drainOnce();
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), StatusCode::InvalidArgument);
}

TEST_F(DaemonTest, MakeRejectsInvalidSession)
{
    DaemonOptions opts;
    opts.outDir = dir;
    auto d = ConsumerDaemon::make(Session(), opts);
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::InvalidArgument);
}

TEST_F(DaemonTest, MakeReportsUnusableOutDir)
{
    // A regular file where the directory should go.
    const std::string clash = dir;
    {
        FILE *f = std::fopen(clash.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = clash + "/sub";
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::IoError);
    std::remove(clash.c_str());
}

TEST(TraceFileCodec, TornTailIsCorruptionStrictButReadableLossy)
{
    const std::string path =
        testing::TempDir() + "torn_tail.btrace";
    {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_TRUNC | O_WRONLY, 0644);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeTraceFileHeader(fd).ok());
        std::vector<DumpEntry> entries;
        for (uint64_t st = 1; st <= 5; ++st)
            entries.push_back(DumpEntry{st, 40, 0, 1, 0, true});
        ASSERT_TRUE(appendTraceRecords(fd, entries).ok());
        ::close(fd);
    }
    // Tear the last record in half — the shape a crash mid-write
    // leaves behind.
    ASSERT_EQ(::truncate(path.c_str(),
                         off_t(8 + 5 * sizeof(TraceDiskRecord) -
                               sizeof(TraceDiskRecord) / 2)),
              0);

    auto strict = readTraceFile(path);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::Corruption);

    bool torn = false;
    auto lossy = readTraceFileLossy(path, &torn);
    ASSERT_TRUE(lossy.ok()) << lossy.status().toString();
    EXPECT_TRUE(torn);
    EXPECT_EQ(lossy.value().size(), 4u);  // every complete record
    EXPECT_EQ(lossy.value().back().stamp, 4u);
    std::remove(path.c_str());
}

TEST(TraceFileCodec, RejectsForeignFile)
{
    const std::string path =
        testing::TempDir() + "foreign.btrace";
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a trace";
    }
    auto r = readTraceFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Corruption);

    auto missing = readTraceFile(testing::TempDir() +
                                 "nonexistent.btrace");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::NotFound);
    std::remove(path.c_str());
}

} // namespace
} // namespace btrace
