/**
 * @file
 * Unit tests for the btraced drain loop (daemon/daemon.h): segment
 * writing and rotation, retention, the final close-active drain on
 * stop, stats accounting, and the shared trace-file codec's torn-tail
 * behavior that crash-robust collection depends on.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "daemon/daemon.h"
#include "obs/export.h"
#include "trace/segment_stats.h"
#include "trace/trace_file.h"

namespace btrace {
namespace {

BTraceConfig
smallConfig(StorageKind storage = StorageKind::Private)
{
    BTraceConfig cfg;
    cfg.blockSize = 256;
    cfg.numBlocks = 64;
    cfg.activeBlocks = 8;
    cfg.cores = 4;
    cfg.storage = storage;
    return cfg;
}

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "btraced_test_" +
              std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
    }

    void
    TearDown() override
    {
        // Best-effort cleanup of the segment directory.
        for (uint64_t i = 0; i < 64; ++i)
            std::remove(daemonSegmentPath(dir, i).c_str());
        ::rmdir(dir.c_str());
    }

    std::string dir;
};

TEST_F(DaemonTest, DrainsIntoSegment)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    Session sess = s.take();
    for (uint64_t st = 1; st <= 100; ++st)
        ASSERT_TRUE(sess->record(0, 1, st, 16));

    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(std::move(sess), opts);
    ASSERT_TRUE(d.ok()) << d.status().toString();
    ConsumerDaemon &daemon = *d.value();

    auto n = daemon.drainOnce();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 100u);
    daemon.stop();

    const DaemonStats st = daemon.stats();
    EXPECT_EQ(st.entries, 100u);
    EXPECT_EQ(st.segmentsOpened, 1u);

    auto loaded = readTraceFile(daemonSegmentPath(dir, 0));
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().size(), 100u);
    EXPECT_EQ(loaded.value()[0].stamp, 1u);
}

TEST_F(DaemonTest, SecondDrainSeesOnlyNewEntries)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    Session sess = s.take();

    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(std::move(sess), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (uint64_t st = 1; st <= 50; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    ASSERT_TRUE(daemon.drainOnce().ok());

    for (uint64_t st = 51; st <= 80; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    auto n = daemon.drainOnce();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 30u);  // incremental, not a re-read

    daemon.stop();
    EXPECT_EQ(daemon.stats().entries, 80u);
}

TEST_F(DaemonTest, RotatesAndAgesOutSegments)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());

    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    // Tiny budget: ~10 records per segment forces many rotations.
    opts.segmentBytes = 10 * sizeof(TraceDiskRecord);
    opts.maxSegments = 2;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (int round = 0; round < 12; ++round) {
        for (uint64_t k = 1; k <= 10; ++k)
            ASSERT_TRUE(daemon.session()->record(
                0, 1, uint64_t(round) * 10 + k, 16));
        ASSERT_TRUE(daemon.drainOnce().ok());
    }
    daemon.stop();

    const DaemonStats st = daemon.stats();
    EXPECT_EQ(st.entries, 120u);
    EXPECT_GT(st.segmentsOpened, 2u);
    EXPECT_GT(st.segmentsDeleted, 0u);
    // Retention: at most maxSegments finished segments plus the open
    // one survive on disk.
    uint64_t onDisk = 0;
    for (uint64_t i = 0; i < st.segmentsOpened; ++i) {
        struct stat sb;
        if (::stat(daemonSegmentPath(dir, i).c_str(), &sb) == 0)
            ++onDisk;
    }
    EXPECT_LE(onDisk, opts.maxSegments + 1);

    // Every surviving segment decodes, and the newest one holds the
    // newest stamps.
    auto last = readTraceFile(
        daemonSegmentPath(dir, st.segmentsOpened - 1));
    ASSERT_TRUE(last.ok()) << last.status().toString();
    ASSERT_FALSE(last.value().empty());
    EXPECT_EQ(last.value().back().stamp, 120u);
}

TEST_F(DaemonTest, StopRunsFinalCloseActiveDrain)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());

    DaemonOptions opts;
    opts.outDir = dir;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    // Entries sit in open blocks; no explicit drain happened.
    for (uint64_t st = 1; st <= 25; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    daemon.stop();

    auto loaded = readTraceFile(daemonSegmentPath(dir, 0));
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 25u);
}

TEST_F(DaemonTest, BackgroundThreadDrainsAndSweeps)
{
    auto s = Session::create(smallConfig(StorageKind::Shm));
    ASSERT_TRUE(s.ok());

    DaemonOptions opts;
    opts.outDir = dir;
    opts.drainIntervalSec = 0.001;
    opts.sweepEveryNDrains = 2;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    daemon.start();
    for (uint64_t st = 1; st <= 200; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    // Let the loop take a few passes, then stop (joins + final drain).
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    daemon.stop();

    const DaemonStats st = daemon.stats();
    EXPECT_GT(st.drains, 1u);
    EXPECT_GT(st.sweeps, 0u);
    EXPECT_EQ(st.entries, 200u);
    EXPECT_EQ(st.reclaimedLeases, 0u);  // nobody died
}

TEST_F(DaemonTest, DrainAfterStopFails)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    d.value()->stop();
    auto n = d.value()->drainOnce();
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), StatusCode::InvalidArgument);
}

TEST_F(DaemonTest, MakeRejectsInvalidSession)
{
    DaemonOptions opts;
    opts.outDir = dir;
    auto d = ConsumerDaemon::make(Session(), opts);
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::InvalidArgument);
}

TEST_F(DaemonTest, MakeReportsUnusableOutDir)
{
    // A regular file where the directory should go.
    const std::string clash = dir;
    {
        FILE *f = std::fopen(clash.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = clash + "/sub";
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::IoError);
    std::remove(clash.c_str());
}

TEST_F(DaemonTest, SegmentHeaderV2CarriesProvenance)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (uint64_t st = 1; st <= 40; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 7, st, 16,
                                             uint16_t(st % 3)));
    ASSERT_TRUE(daemon.drainOnce().ok());
    daemon.stop();

    auto seg = readSegment(daemonSegmentPath(dir, 0), true);
    ASSERT_TRUE(seg.ok()) << seg.status().toString();
    const SegmentHeaderV2 &h = seg.value().header;
    EXPECT_EQ(seg.value().version, 2u);
    EXPECT_EQ(h.writerPid, uint64_t(::getpid()));
    EXPECT_EQ(h.recordCount, 40u);
    // DumpEntry::size is the full on-ring event (payload + header).
    ASSERT_FALSE(seg.value().entries.empty());
    EXPECT_EQ(h.payloadBytes,
              40u * seg.value().entries.front().size);
    EXPECT_EQ(h.minStamp, 1u);
    EXPECT_EQ(h.maxStamp, 40u);
    EXPECT_NE(h.firstDrainUnixNs, 0u);
    EXPECT_GE(h.lastDrainUnixNs, h.firstDrainUnixNs);
    EXPECT_NE(h.flags & SegmentHeaderV2::kCleanClose, 0u);
    // Stamps 1..40 over categories stamp%3: 13 zeros, 14 ones, 13 twos.
    EXPECT_EQ(h.categoryRecords[0], 13u);
    EXPECT_EQ(h.categoryRecords[1], 14u);
    EXPECT_EQ(h.categoryRecords[2], 13u);
    // The declared totals reconcile exactly with the scan.
    EXPECT_EQ(h.recordCount, seg.value().entries.size());
}

TEST_F(DaemonTest, RotationFinalizesEveryHeader)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    opts.segmentBytes = 10 * sizeof(TraceDiskRecord);
    opts.maxSegments = 0;  // keep everything for the scan
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (int round = 0; round < 5; ++round) {
        for (uint64_t k = 1; k <= 10; ++k)
            ASSERT_TRUE(daemon.session()->record(
                0, 1, uint64_t(round) * 10 + k, 16));
        ASSERT_TRUE(daemon.drainOnce().ok());
    }
    daemon.stop();

    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    const SegmentDirStats &st = agg.stats();
    EXPECT_EQ(st.records, 50u);
    EXPECT_EQ(st.v2Segments, st.segmentsScanned);
    EXPECT_EQ(st.dirtySegments, 0u);  // every header finalized
    EXPECT_EQ(st.declaredRecords, 50u);
    EXPECT_FALSE(st.headerScanMismatch());
    EXPECT_EQ(st.rotationGaps, 0u);
}

TEST_F(DaemonTest, SegmentDirReconcilesWithDaemonStats)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    for (uint64_t st = 1; st <= 60; ++st)
        ASSERT_TRUE(
            daemon.session()->record(0, st % 2 ? 5 : 6, st, 24));
    ASSERT_TRUE(daemon.drainOnce().ok());
    daemon.stop();
    const DaemonStats ds = daemon.stats();

    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    const SegmentDirStats &st = agg.stats();
    // No retention ran, so offline totals equal the live counters.
    EXPECT_EQ(st.records, ds.entries);
    EXPECT_EQ(st.payloadBytes, ds.payloadBytes);
    EXPECT_EQ(st.overwrittenPositions, ds.overwrittenPositions);
    EXPECT_EQ(st.skippedBlocks, ds.skippedBlocks);

    const auto tallies = daemon.producerTallies();
    ASSERT_EQ(tallies.size(), st.producers.size());
    for (const auto &kv : tallies) {
        const auto it = st.producers.find(kv.first);
        ASSERT_NE(it, st.producers.end());
        EXPECT_EQ(it->second.records, kv.second.records);
        EXPECT_EQ(it->second.payloadBytes, kv.second.payloadBytes);
    }
}

TEST_F(DaemonTest, DrainLagSampledForWallClockStamps)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    // 10 wall-clock-stamped records and 5 logical ones.
    const uint64_t base = wallClockNs() - 1'000'000ull;  // 1 ms ago
    for (uint64_t k = 0; k < 10; ++k)
        ASSERT_TRUE(
            daemon.session()->record(0, 1, base + k * 1000, 16));
    for (uint64_t st = 1; st <= 5; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 1, st, 16));
    ASSERT_TRUE(daemon.drainOnce().ok());
    daemon.stop();

    const DaemonStats ds = daemon.stats();
    EXPECT_EQ(ds.lagSampledRecords, 10u);
    EXPECT_EQ(ds.lagUnstampedRecords, 5u);
    EXPECT_EQ(daemon.drainLagHistogram().count(), 10u);
    // Stamps were ~1 ms in the past, so lag is at least that.
    const HistogramSnapshot snap = daemon.drainLagHistogram().snapshot();
    EXPECT_GE(snap.quantile(0.5), 900'000u);
    EXPECT_GE(daemon.lastDrainLagNs(), 900'000u);
    EXPECT_LT(daemon.lastDrainLagNs(), 60'000'000'000ull);
}

TEST_F(DaemonTest, FutureStampedRecordsClampedOutOfLagHistogram)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    // 4 records stamped 10 s in the future (a wall-clock step-back
    // between record and drain looks exactly like this) and 6 sane
    // ones from 1 ms in the past.
    const uint64_t future = wallClockNs() + 10'000'000'000ull;
    for (uint64_t k = 0; k < 4; ++k)
        ASSERT_TRUE(
            daemon.session()->record(0, 1, future + k * 1000, 16));
    const uint64_t base = wallClockNs() - 1'000'000ull;
    for (uint64_t k = 0; k < 6; ++k)
        ASSERT_TRUE(
            daemon.session()->record(0, 1, base + k * 1000, 16));
    ASSERT_TRUE(daemon.drainOnce().ok());
    daemon.stop();

    // The clamped records never reach the histogram or the sampled
    // tally; they surface in their own counter instead.
    const DaemonStats ds = daemon.stats();
    EXPECT_EQ(ds.drainLagClamped, 4u);
    EXPECT_EQ(ds.lagSampledRecords, 6u);
    EXPECT_EQ(ds.lagUnstampedRecords, 0u);
    EXPECT_EQ(daemon.drainLagHistogram().count(), 6u);
    const HistogramSnapshot snap = daemon.drainLagHistogram().snapshot();
    EXPECT_GE(snap.quantile(0.5), 900'000u);
    // The newest stamp is in the future, so the freshness gauge
    // clamps to zero rather than going negative.
    EXPECT_EQ(daemon.lastDrainLagNs(), 0u);

    MetricsRegistry registry;
    daemon.registerMetrics(registry);
    const auto collected = registry.collect();
    bool found = false;
    for (const MetricValue &m : collected.metrics)
        if (m.name == "btraced_drain_lag_clamped_total") {
            found = true;
            EXPECT_DOUBLE_EQ(m.value, 4.0);
        }
    EXPECT_TRUE(found);
}

TEST_F(DaemonTest, PerProducerCountersExported)
{
    auto s = Session::create(smallConfig());
    ASSERT_TRUE(s.ok());
    DaemonOptions opts;
    opts.outDir = dir;
    opts.closeActive = true;
    auto d = ConsumerDaemon::make(s.take(), opts);
    ASSERT_TRUE(d.ok());
    ConsumerDaemon &daemon = *d.value();

    // Producer 5 drained before registerMetrics, producer 6 after —
    // both must end up as labeled series.
    for (uint64_t st = 1; st <= 10; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 5, st, 16));
    ASSERT_TRUE(daemon.drainOnce().ok());

    MetricsRegistry registry;
    daemon.registerMetrics(registry);

    for (uint64_t st = 11; st <= 14; ++st)
        ASSERT_TRUE(daemon.session()->record(0, 6, st, 16));
    ASSERT_TRUE(daemon.drainOnce().ok());
    daemon.stop();

    const auto collected = registry.collect();
    double rec5 = -1, rec6 = -1, bytes6 = -1, seen = -1;
    for (const MetricValue &m : collected.metrics) {
        const std::string key = seriesKey(m.name, m.labels);
        if (key == "btraced_producer_records_total{producer=\"5\"}")
            rec5 = m.value;
        if (key == "btraced_producer_records_total{producer=\"6\"}")
            rec6 = m.value;
        if (key == "btraced_producer_bytes_total{producer=\"6\"}")
            bytes6 = m.value;
        if (key == "btraced_producers_seen")
            seen = m.value;
    }
    EXPECT_EQ(rec5, 10.0);
    EXPECT_EQ(rec6, 4.0);
    // 4 records; DumpEntry::size = payload 16 + 24-byte event header.
    EXPECT_EQ(bytes6, 4.0 * 40.0);
    EXPECT_EQ(seen, 2.0);

    // The Prometheus rendering announces each family exactly once.
    const std::string prom =
        renderPrometheus(collected, {{"daemon", "btraced"}});
    const std::string type =
        "# TYPE btraced_producer_records_total counter";
    const auto first = prom.find(type);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(prom.find(type, first + 1), std::string::npos);
    EXPECT_NE(prom.find("btraced_producer_records_total{daemon="
                        "\"btraced\",producer=\"5\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE btraced_drain_lag_ns histogram"),
              std::string::npos);
}

// The daemon's bookkeeping must ride the consumer side only: draining
// through ConsumerDaemon (v2 headers, lag histogram, per-producer
// tallies) must leave the producer fast path's shared-RMW count
// byte-identical to draining the same workload with a raw dumpFrom —
// the same contract bar the control/journal/observer planes meet.
TEST_F(DaemonTest, StatsObsContractSharedRmwsUnchanged)
{
    uint64_t rmws[2] = {0, 0};
    const auto workload = [](Session &sess) {
        for (int round = 0; round < 4; ++round) {
            Lease l = sess->lease(0, 9, 16, 32);
            ASSERT_TRUE(l.ok());
            for (int k = 0; k < 20; ++k) {
                WriteTicket t = l.allocate(16);
                if (!t.ok())
                    break;
                writeNormal(t.dst,
                            uint64_t(round) * 20 + uint64_t(k) + 1, 0,
                            9, 0, 16);
                l.confirm(t);
            }
            l.close();
        }
    };

    for (const bool viaDaemon : {false, true}) {
        auto s = Session::create(smallConfig());
        ASSERT_TRUE(s.ok());
        if (viaDaemon) {
            DaemonOptions opts;
            opts.outDir = dir;
            opts.closeActive = true;
            auto d = ConsumerDaemon::make(s.take(), opts);
            ASSERT_TRUE(d.ok());
            ConsumerDaemon &daemon = *d.value();
            workload(daemon.session());
            ASSERT_TRUE(daemon.drainOnce().ok());
            workload(daemon.session());
            ASSERT_TRUE(daemon.drainOnce().ok());
            rmws[1] =
                daemon.session()->countersSnapshot().sharedRmws;
            daemon.stop();
        } else {
            Session sess = s.take();
            DumpCursor cursor;
            workload(sess);
            (void)sess->dumpFrom(cursor, DumpOptions{true, false});
            workload(sess);
            (void)sess->dumpFrom(cursor, DumpOptions{true, false});
            rmws[0] = sess->countersSnapshot().sharedRmws;
        }
    }
    EXPECT_EQ(rmws[0], rmws[1]);
}

TEST(TraceFileCodec, TornTailIsCorruptionStrictButReadableLossy)
{
    const std::string path =
        testing::TempDir() + "torn_tail.btrace";
    {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_TRUNC | O_WRONLY, 0644);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeTraceFileHeader(fd).ok());
        std::vector<DumpEntry> entries;
        for (uint64_t st = 1; st <= 5; ++st)
            entries.push_back(DumpEntry{st, 40, 0, 1, 0, true});
        ASSERT_TRUE(appendTraceRecords(fd, entries).ok());
        ::close(fd);
    }
    // Tear the last record in half — the shape a crash mid-write
    // leaves behind.
    ASSERT_EQ(::truncate(path.c_str(),
                         off_t(8 + 5 * sizeof(TraceDiskRecord) -
                               sizeof(TraceDiskRecord) / 2)),
              0);

    auto strict = readTraceFile(path);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::Corruption);

    bool torn = false;
    auto lossy = readTraceFileLossy(path, &torn);
    ASSERT_TRUE(lossy.ok()) << lossy.status().toString();
    EXPECT_TRUE(torn);
    EXPECT_EQ(lossy.value().size(), 4u);  // every complete record
    EXPECT_EQ(lossy.value().back().stamp, 4u);
    std::remove(path.c_str());
}

TEST(TraceFileCodec, RejectsForeignFile)
{
    const std::string path =
        testing::TempDir() + "foreign.btrace";
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a trace";
    }
    auto r = readTraceFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Corruption);

    auto missing = readTraceFile(testing::TempDir() +
                                 "nonexistent.btrace");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::NotFound);
    std::remove(path.c_str());
}

} // namespace
} // namespace btrace
