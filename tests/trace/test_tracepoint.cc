/** @file Unit tests for the tracepoint registry. */

#include <gtest/gtest.h>

#include <thread>

#include "trace/tracepoint.h"

namespace btrace {
namespace {

TEST(TracepointRegistry, ReservedEntryZero)
{
    TracepointRegistry reg;
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.byId(0).name, "uncategorized");
    EXPECT_EQ(reg.byId(999).name, "uncategorized");  // unknown -> 0
}

TEST(TracepointRegistry, RegisterAssignsDenseIds)
{
    TracepointRegistry reg;
    const uint16_t a = reg.registerTracepoint("sched", 2);
    const uint16_t b = reg.registerTracepoint("freq", 2);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(reg.byId(a).name, "sched");
    EXPECT_EQ(reg.byId(b).level, 2);
}

TEST(TracepointRegistry, ReRegisterIsIdempotent)
{
    TracepointRegistry reg;
    const uint16_t a = reg.registerTracepoint("binder", 1, "ipc");
    const uint16_t b = reg.registerTracepoint("binder", 3, "ignored");
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.byId(a).level, 1);
    EXPECT_EQ(reg.byId(a).description, "ipc");
    EXPECT_EQ(reg.size(), 2u);
}

TEST(TracepointRegistry, IdOfUnknownIsZero)
{
    TracepointRegistry reg;
    EXPECT_EQ(reg.idOf("nope"), 0u);
    reg.registerTracepoint("yes");
    EXPECT_EQ(reg.idOf("yes"), 1u);
}

TEST(TracepointRegistry, LevelFiltering)
{
    TracepointRegistry reg;
    reg.registerTracepoint("binder", 1);
    reg.registerTracepoint("sched", 2);
    reg.registerTracepoint("energy", 3);
    EXPECT_EQ(reg.idsUpToLevel(1).size(), 1u);
    EXPECT_EQ(reg.idsUpToLevel(2).size(), 2u);
    EXPECT_EQ(reg.idsUpToLevel(3).size(), 3u);
}

TEST(TracepointRegistry, AllIncludesReserved)
{
    TracepointRegistry reg;
    reg.registerTracepoint("x");
    const auto all = reg.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].id, 0u);
    EXPECT_EQ(all[1].name, "x");
}

TEST(TracepointRegistry, ConcurrentRegistration)
{
    TracepointRegistry reg;
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w]() {
            for (int i = 0; i < 100; ++i) {
                reg.registerTracepoint("tp" + std::to_string(i));
                (void)w;
            }
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_EQ(reg.size(), 101u);  // 100 distinct + reserved
}

TEST(TracepointRegistryDeath, EmptyNameFatal)
{
    TracepointRegistry reg;
    EXPECT_DEATH(reg.registerTracepoint(""), "non-empty");
}

TEST(TracepointRegistry, GlobalSingleton)
{
    EXPECT_EQ(&TracepointRegistry::global(),
              &TracepointRegistry::global());
}

} // namespace
} // namespace btrace
