/**
 * @file
 * Tests for the v2 segment codec (trace/trace_file.h) and the offline
 * segment aggregator (trace/segment_stats.h): header round trips and
 * in-place updates, v1 back-compat, truncation mid-record and
 * mid-header, mixed-version directories, rotation gaps left by
 * retention, declared-vs-scanned reconciliation, and the stable JSON
 * document btrace_stats emits.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/segment_stats.h"
#include "trace/trace_file.h"

namespace btrace {
namespace {

std::vector<DumpEntry>
makeEntries(uint64_t n, uint64_t stamp0 = 1, uint32_t size = 40,
            uint32_t thread = 1, uint16_t category = 0)
{
    std::vector<DumpEntry> out;
    for (uint64_t k = 0; k < n; ++k)
        out.push_back(
            DumpEntry{stamp0 + k, size, 0, thread, category, true});
    return out;
}

/** Write a v2 segment: header, records, header updated in place. */
void
writeV2Segment(const std::string &path,
               const std::vector<DumpEntry> &entries,
               SegmentHeaderV2 hdr = {}, bool cleanClose = true)
{
    const int fd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeSegmentHeaderV2(fd, hdr).ok());
    ASSERT_TRUE(appendTraceRecords(fd, entries).ok());
    for (const DumpEntry &e : entries)
        hdr.noteEntry(e);
    if (cleanClose)
        hdr.flags |= SegmentHeaderV2::kCleanClose;
    ASSERT_TRUE(updateSegmentHeaderV2(fd, hdr).ok());
    ::close(fd);
}

void
writeV1Segment(const std::string &path,
               const std::vector<DumpEntry> &entries)
{
    const int fd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeTraceFileHeader(fd).ok());
    ASSERT_TRUE(appendTraceRecords(fd, entries).ok());
    ::close(fd);
}

class SegmentDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "segstats_" +
              std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    }

    void
    TearDown() override
    {
        for (uint64_t i = 0; i < 16; ++i)
            std::remove(seg(i).c_str());
        ::rmdir(dir.c_str());
    }

    std::string
    seg(uint64_t index) const
    {
        char name[32];
        std::snprintf(name, sizeof(name), "segment-%06llu.btrace",
                      static_cast<unsigned long long>(index));
        return dir + "/" + name;
    }

    std::string dir;
};

TEST(SegmentCodec, V2HeaderRoundTripsWithProvenance)
{
    const std::string path = testing::TempDir() + "v2_round.btrace";
    SegmentHeaderV2 hdr;
    hdr.writerPid = 4242;
    hdr.attachGeneration = 7;
    hdr.firstDrainUnixNs = 111;
    hdr.lastDrainUnixNs = 222;
    hdr.overwrittenPositions = 3;
    hdr.skippedBlocks = 1;
    writeV2Segment(path, makeEntries(10, 100, 32, 9, 2), hdr);

    auto seg = readSegment(path, /*strict=*/true);
    ASSERT_TRUE(seg.ok()) << seg.status().toString();
    const SegmentInfo &info = seg.value();
    EXPECT_EQ(info.version, 2u);
    EXPECT_FALSE(info.torn);
    ASSERT_EQ(info.entries.size(), 10u);
    EXPECT_EQ(info.entries.front().stamp, 100u);
    EXPECT_EQ(info.entries.front().category, 2u);
    EXPECT_EQ(info.entries.front().thread, 9u);

    const SegmentHeaderV2 &h = info.header;
    EXPECT_EQ(h.headerBytes, sizeof(SegmentHeaderV2));
    EXPECT_EQ(h.writerPid, 4242u);
    EXPECT_EQ(h.attachGeneration, 7u);
    EXPECT_EQ(h.firstDrainUnixNs, 111u);
    EXPECT_EQ(h.lastDrainUnixNs, 222u);
    EXPECT_EQ(h.recordCount, 10u);
    EXPECT_EQ(h.payloadBytes, 320u);
    EXPECT_EQ(h.minStamp, 100u);
    EXPECT_EQ(h.maxStamp, 109u);
    EXPECT_EQ(h.categoryRecords[2], 10u);
    EXPECT_EQ(h.categoryBytes[2], 320u);
    EXPECT_EQ(h.overwrittenPositions, 3u);
    EXPECT_EQ(h.skippedBlocks, 1u);
    EXPECT_NE(h.flags & SegmentHeaderV2::kCleanClose, 0u);
    std::remove(path.c_str());
}

TEST(SegmentCodec, HighCategoriesPoolIntoOther)
{
    SegmentHeaderV2 hdr;
    hdr.noteEntry(DumpEntry{1, 16, 0, 1, 5, true});
    hdr.noteEntry(
        DumpEntry{2, 24, 0, 1, uint16_t(kSegmentCategorySlots), true});
    hdr.noteEntry(DumpEntry{3, 8, 0, 1, 999, true});
    EXPECT_EQ(hdr.categoryRecords[5], 1u);
    EXPECT_EQ(hdr.otherCategoryRecords, 2u);
    EXPECT_EQ(hdr.otherCategoryBytes, 32u);
    EXPECT_EQ(hdr.recordCount, 3u);
}

TEST(SegmentCodec, V1ReadableThroughReadSegment)
{
    const std::string path = testing::TempDir() + "v1_compat.btrace";
    writeV1Segment(path, makeEntries(6));

    auto seg = readSegment(path, /*strict=*/true);
    ASSERT_TRUE(seg.ok());
    EXPECT_EQ(seg.value().version, 1u);
    EXPECT_EQ(seg.value().entries.size(), 6u);
    // The v1 wrappers still work on both versions.
    auto viaV1 = readTraceFile(path);
    ASSERT_TRUE(viaV1.ok());
    EXPECT_EQ(viaV1.value().size(), 6u);
    std::remove(path.c_str());
}

TEST(SegmentCodec, V2ReadableThroughV1Wrappers)
{
    const std::string path = testing::TempDir() + "v2_wrap.btrace";
    writeV2Segment(path, makeEntries(4));
    auto r = readTraceFile(path);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().size(), 4u);
    std::remove(path.c_str());
}

TEST(SegmentCodec, ZeroRecordV2SegmentDecodes)
{
    const std::string path = testing::TempDir() + "v2_empty.btrace";
    writeV2Segment(path, {});
    auto seg = readSegment(path, /*strict=*/true);
    ASSERT_TRUE(seg.ok());
    EXPECT_EQ(seg.value().version, 2u);
    EXPECT_TRUE(seg.value().entries.empty());
    EXPECT_EQ(seg.value().header.recordCount, 0u);
    EXPECT_EQ(seg.value().header.minStamp, UINT64_MAX);
    std::remove(path.c_str());
}

TEST(SegmentCodec, TruncationMidRecordStrictVsLossy)
{
    const std::string path = testing::TempDir() + "v2_torn.btrace";
    writeV2Segment(path, makeEntries(5));
    const off_t full = off_t(sizeof(uint64_t)) +
                       off_t(sizeof(SegmentHeaderV2)) +
                       off_t(5 * sizeof(TraceDiskRecord));
    ASSERT_EQ(::truncate(path.c_str(), full - 10), 0);

    auto strict = readSegment(path, /*strict=*/true);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::Corruption);

    auto lossy = readSegment(path, /*strict=*/false);
    ASSERT_TRUE(lossy.ok());
    EXPECT_TRUE(lossy.value().torn);
    EXPECT_EQ(lossy.value().tornTailBytes,
              sizeof(TraceDiskRecord) - 10);
    EXPECT_EQ(lossy.value().entries.size(), 4u);
    std::remove(path.c_str());
}

TEST(SegmentCodec, TruncationMidHeaderIsCorruptionBothModes)
{
    const std::string path = testing::TempDir() + "v2_cut.btrace";
    writeV2Segment(path, makeEntries(3));
    ASSERT_EQ(::truncate(path.c_str(),
                         off_t(sizeof(uint64_t)) +
                             off_t(sizeof(SegmentHeaderV2) / 2)),
              0);
    for (const bool strict : {true, false}) {
        auto r = readSegment(path, strict);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::Corruption);
    }
    std::remove(path.c_str());
}

TEST(SegmentCodec, FutureLargerHeaderIsSkipped)
{
    // A reader from this build must skip a bigger future header using
    // headerBytes alone.
    const std::string path = testing::TempDir() + "v2_future.btrace";
    const uint32_t extra = 64;
    {
        const int fd =
            ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
        ASSERT_GE(fd, 0);
        SegmentHeaderV2 hdr;
        ASSERT_TRUE(writeSegmentHeaderV2(fd, hdr).ok());
        // Grow the declared header and pad the file accordingly.
        hdr.headerBytes = uint32_t(sizeof(SegmentHeaderV2)) + extra;
        hdr.recordCount = 2;
        ASSERT_EQ(::pwrite(fd, &hdr, sizeof(hdr), sizeof(uint64_t)),
                  ssize_t(sizeof(hdr)));
        const std::vector<char> pad(extra, 0);
        ASSERT_EQ(::write(fd, pad.data(), pad.size()),
                  ssize_t(pad.size()));
        ASSERT_TRUE(appendTraceRecords(fd, makeEntries(2)).ok());
        ::close(fd);
    }
    auto seg = readSegment(path, /*strict=*/true);
    ASSERT_TRUE(seg.ok()) << seg.status().toString();
    EXPECT_EQ(seg.value().entries.size(), 2u);
    EXPECT_EQ(seg.value().header.recordCount, 2u);
    std::remove(path.c_str());
}

TEST_F(SegmentDirTest, ListsSortedAndHandlesSingleFile)
{
    writeV2Segment(seg(2), makeEntries(1));
    writeV2Segment(seg(0), makeEntries(1));
    writeV2Segment(seg(1), makeEntries(1));
    std::ofstream(dir + "/unrelated.txt") << "x";

    auto files = listSegmentFiles(dir);
    ASSERT_TRUE(files.ok());
    ASSERT_EQ(files.value().size(), 3u);
    EXPECT_EQ(files.value()[0].index, 0u);
    EXPECT_EQ(files.value()[2].index, 2u);
    EXPECT_TRUE(files.value()[0].indexed);

    auto one = listSegmentFiles(seg(1));
    ASSERT_TRUE(one.ok());
    ASSERT_EQ(one.value().size(), 1u);
    EXPECT_FALSE(one.value()[0].indexed);

    auto missing = listSegmentFiles(dir + "/nope");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::NotFound);
    std::remove((dir + "/unrelated.txt").c_str());
}

TEST_F(SegmentDirTest, MixedVersionDirectoryAggregates)
{
    writeV1Segment(seg(0), makeEntries(5, 1));
    writeV2Segment(seg(1), makeEntries(7, 100));

    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    const SegmentDirStats &st = agg.stats();
    EXPECT_EQ(st.segmentsScanned, 2u);
    EXPECT_EQ(st.v1Segments, 1u);
    EXPECT_EQ(st.v2Segments, 1u);
    EXPECT_EQ(st.records, 12u);
    EXPECT_EQ(st.payloadBytes, 12u * 40u);
    EXPECT_EQ(st.minStamp, 1u);
    EXPECT_EQ(st.maxStamp, 106u);
    // Only the v2 segment declares totals; v1 declares nothing, and
    // that asymmetry must not read as a mismatch of the v2 headers.
    EXPECT_EQ(st.declaredRecords, 7u);
    EXPECT_TRUE(st.headerScanMismatch());  // 7 declared != 12 scanned
}

TEST_F(SegmentDirTest, RetentionGapIsReported)
{
    // Indices 0, 1, 4 on disk: retention unlinked 2 and 3.
    writeV2Segment(seg(0), makeEntries(2, 1));
    writeV2Segment(seg(1), makeEntries(2, 10));
    writeV2Segment(seg(4), makeEntries(2, 20));

    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    EXPECT_EQ(agg.stats().rotationGaps, 1u);
    EXPECT_EQ(agg.stats().missingIndices, 2u);
    EXPECT_EQ(agg.stats().records, 6u);
}

TEST_F(SegmentDirTest, DeclaredVsScannedMismatchSurfaces)
{
    // Header declares 5 records but only 3 landed — the shape a
    // SIGKILL between append and header rewrite cannot leave (the
    // header undercounts), but a torn tail or lost append can.
    SegmentHeaderV2 hdr;
    for (const DumpEntry &e : makeEntries(5))
        hdr.noteEntry(e);
    {
        const int fd =
            ::open(seg(0).c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
        ASSERT_GE(fd, 0);
        SegmentHeaderV2 init;
        ASSERT_TRUE(writeSegmentHeaderV2(fd, init).ok());
        ASSERT_TRUE(appendTraceRecords(fd, makeEntries(3)).ok());
        ASSERT_TRUE(updateSegmentHeaderV2(fd, hdr).ok());
        ::close(fd);
    }
    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    EXPECT_EQ(agg.stats().declaredRecords, 5u);
    EXPECT_EQ(agg.stats().records, 3u);
    EXPECT_TRUE(agg.stats().headerScanMismatch());
}

TEST_F(SegmentDirTest, UnreadableSegmentCountedLossyFailsStrict)
{
    writeV2Segment(seg(0), makeEntries(3));
    std::ofstream(seg(1), std::ios::binary) << "garbage";

    SegmentAggregator lossy;
    Status s = lossy.addAll(dir, /*strict=*/false);
    EXPECT_FALSE(s.ok());  // the error is reported...
    EXPECT_EQ(lossy.stats().segmentsScanned, 2u);  // ...and counted
    EXPECT_EQ(lossy.stats().unreadableSegments, 1u);
    EXPECT_EQ(lossy.stats().records, 3u);
}

TEST_F(SegmentDirTest, PerProducerPerCategoryAndBuckets)
{
    // Producer 11 in category 1 with logical stamps; producer 22 in
    // category 2 with wall-clock stamps spread over ~2.5 buckets.
    std::vector<DumpEntry> entries = makeEntries(10, 1, 16, 11, 1);
    const uint64_t base = kWallClockStampFloorNs + 500'000'000ull;
    for (uint64_t k = 0; k < 5; ++k)
        entries.push_back(DumpEntry{base + k * 500'000'000ull, 32, 0,
                                    22, 2, true});
    writeV2Segment(seg(0), entries);

    SegmentAggregator agg(/*bucketSec=*/1.0);
    ASSERT_TRUE(agg.addAll(dir).ok());
    const SegmentDirStats &st = agg.stats();

    ASSERT_EQ(st.producers.size(), 2u);
    EXPECT_EQ(st.producers.at(11).records, 10u);
    EXPECT_EQ(st.producers.at(11).payloadBytes, 160u);
    EXPECT_EQ(st.producers.at(22).records, 5u);
    EXPECT_EQ(st.producers.at(22).minStamp, base);

    ASSERT_EQ(st.categories.size(), 2u);
    EXPECT_EQ(st.categories.at(1).records, 10u);
    EXPECT_EQ(st.categories.at(2).payloadBytes, 160u);

    // Only wall-clock stamps land in throughput buckets.
    EXPECT_EQ(st.wallStampedRecords, 5u);
    uint64_t bucketed = 0;
    for (const auto &kv : st.buckets) {
        EXPECT_EQ(kv.first % 1'000'000'000ull, 0u);
        bucketed += kv.second.records;
    }
    EXPECT_EQ(bucketed, 5u);
    EXPECT_GE(st.buckets.size(), 2u);
}

TEST_F(SegmentDirTest, JsonDocumentIsStableAndTruncates)
{
    // 4 categories, topN 2 — the document must say it truncated.
    std::vector<DumpEntry> entries;
    for (uint16_t c = 0; c < 4; ++c)
        for (const DumpEntry &e : makeEntries(2 + c, 1, 16, 1, c))
            entries.push_back(e);
    writeV2Segment(seg(0), entries);

    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    const std::string doc = agg.renderJson(/*topN=*/2);

    EXPECT_NE(doc.find("\"btrace_stats_version\":1"),
              std::string::npos);
    EXPECT_NE(doc.find("\"categories_truncated\":true"),
              std::string::npos);
    EXPECT_NE(doc.find("\"producers_truncated\":false"),
              std::string::npos);
    EXPECT_NE(doc.find("\"records\":14"), std::string::npos);
    EXPECT_NE(doc.find("\"header_scan_mismatch\":false"),
              std::string::npos);
    // Top-2 categories by records are 3 (5 recs) and 2 (4 recs).
    EXPECT_NE(doc.find("{\"category\":3,\"records\":5"),
              std::string::npos);
    EXPECT_EQ(doc.find("{\"category\":0,"), std::string::npos);

    const std::string table = agg.renderTable(2);
    EXPECT_NE(table.find("retention quality"), std::string::npos);
    EXPECT_NE(table.find("top categories (2 of 4)"),
              std::string::npos);
}

TEST_F(SegmentDirTest, DirtySegmentWithoutCleanClose)
{
    writeV2Segment(seg(0), makeEntries(2), {}, /*cleanClose=*/false);
    SegmentAggregator agg;
    ASSERT_TRUE(agg.addAll(dir).ok());
    EXPECT_EQ(agg.stats().dirtySegments, 1u);
}

} // namespace
} // namespace btrace
