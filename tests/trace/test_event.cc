/** @file Unit tests for the trace entry wire format. */

#include <gtest/gtest.h>

#include <vector>

#include "trace/event.h"

namespace btrace {
namespace {

TEST(Descriptor, RoundTrips)
{
    const uint64_t w = Descriptor::pack(EntryType::Normal, 42, 128);
    EXPECT_TRUE(Descriptor::validMagic(w));
    const Descriptor d = Descriptor::unpack(w);
    EXPECT_EQ(d.type, EntryType::Normal);
    EXPECT_EQ(d.category, 42u);
    EXPECT_EQ(d.size, 128u);
}

TEST(Descriptor, RejectsGarbageMagic)
{
    EXPECT_FALSE(Descriptor::validMagic(0));
    EXPECT_FALSE(Descriptor::validMagic(0xdeadbeefcafebabeull));
}

TEST(Origin, RoundTrips)
{
    const Origin o = Origin::unpack(Origin::pack(11, 1234567));
    EXPECT_EQ(o.core, 11u);
    EXPECT_EQ(o.thread, 1234567u);
}

TEST(EntryLayout, NormalSizeAligned)
{
    EXPECT_EQ(EntryLayout::normalSize(0), 24u);
    EXPECT_EQ(EntryLayout::normalSize(1), 32u);
    EXPECT_EQ(EntryLayout::normalSize(8), 32u);
    EXPECT_EQ(EntryLayout::normalSize(9), 40u);
}

TEST(WriteNormal, ParsesBack)
{
    std::vector<uint8_t> buf(EntryLayout::normalSize(20));
    writeNormal(buf.data(), 777, 3, 9001, 5, 20);

    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    ASSERT_TRUE(cur.next(v));
    EXPECT_EQ(v.type, EntryType::Normal);
    EXPECT_EQ(v.stamp, 777u);
    EXPECT_EQ(v.core, 3u);
    EXPECT_EQ(v.thread, 9001u);
    EXPECT_EQ(v.category, 5u);
    EXPECT_EQ(v.size, EntryLayout::normalSize(20));
    EXPECT_TRUE(v.payloadOk);
    EXPECT_FALSE(cur.next(v));
    EXPECT_FALSE(cur.malformed());
}

TEST(WriteNormal, PayloadCorruptionDetected)
{
    std::vector<uint8_t> buf(EntryLayout::normalSize(32));
    writeNormal(buf.data(), 12, 0, 0, 0, 32);
    buf[EntryLayout::normalHeaderBytes + 2] ^= 0x55;  // flip a byte

    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    ASSERT_TRUE(cur.next(v));
    EXPECT_FALSE(v.payloadOk);
}

TEST(WriteDummy, ParsesBackAndSpansGap)
{
    std::vector<uint8_t> buf(64, 0xFF);
    writeDummy(buf.data(), 64);
    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    ASSERT_TRUE(cur.next(v));
    EXPECT_EQ(v.type, EntryType::Dummy);
    EXPECT_EQ(v.size, 64u);
    EXPECT_FALSE(cur.next(v));
}

TEST(WriteBlockHeaderAndSkip, CarryPositions)
{
    std::vector<uint8_t> buf(32);
    writeBlockHeader(buf.data(), 0x123456789abull);
    writeSkipMarker(buf.data() + 16, 42);

    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    ASSERT_TRUE(cur.next(v));
    EXPECT_EQ(v.type, EntryType::BlockHeader);
    EXPECT_EQ(v.stamp, 0x123456789abull);
    ASSERT_TRUE(cur.next(v));
    EXPECT_EQ(v.type, EntryType::Skip);
    EXPECT_EQ(v.stamp, 42u);
}

TEST(EntryCursor, SequenceOfMixedEntries)
{
    std::vector<uint8_t> buf(256);
    std::size_t off = 0;
    writeBlockHeader(buf.data() + off, 9);
    off += 16;
    writeNormal(buf.data() + off, 1, 0, 0, 0, 10);
    off += EntryLayout::normalSize(10);
    writeDummy(buf.data() + off, 24);
    off += 24;
    writeNormal(buf.data() + off, 2, 1, 1, 1, 0);
    off += EntryLayout::normalSize(0);

    EntryCursor cur(buf.data(), off);
    EntryView v;
    int normals = 0, dummies = 0, headers = 0;
    while (cur.next(v)) {
        normals += v.type == EntryType::Normal;
        dummies += v.type == EntryType::Dummy;
        headers += v.type == EntryType::BlockHeader;
    }
    EXPECT_FALSE(cur.malformed());
    EXPECT_EQ(normals, 2);
    EXPECT_EQ(dummies, 1);
    EXPECT_EQ(headers, 1);
}

TEST(EntryCursor, MalformedOnBadMagic)
{
    std::vector<uint8_t> buf(32, 0x11);
    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    EXPECT_FALSE(cur.next(v));
    EXPECT_TRUE(cur.malformed());
}

TEST(EntryCursor, MalformedOnOversizedEntry)
{
    std::vector<uint8_t> buf(32);
    // Claim a 64-byte entry inside a 32-byte range.
    const uint64_t w = Descriptor::pack(EntryType::Dummy, 0, 64);
    std::memcpy(buf.data(), &w, 8);
    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    EXPECT_FALSE(cur.next(v));
    EXPECT_TRUE(cur.malformed());
}

TEST(EntryCursor, MalformedOnMisalignedSize)
{
    std::vector<uint8_t> buf(32);
    const uint64_t w = Descriptor::pack(EntryType::Dummy, 0, 12);
    std::memcpy(buf.data(), &w, 8);
    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    EXPECT_FALSE(cur.next(v));
    EXPECT_TRUE(cur.malformed());
}

TEST(EntryCursor, EmptyRangeIsCleanEnd)
{
    EntryCursor cur(nullptr, 0);
    EntryView v;
    EXPECT_FALSE(cur.next(v));
    EXPECT_FALSE(cur.malformed());
}

TEST(EntryCursor, ZeroBytesTreatedAsUnused)
{
    std::vector<uint8_t> buf(64, 0);
    EntryCursor cur(buf.data(), buf.size());
    EntryView v;
    EXPECT_FALSE(cur.next(v));
    EXPECT_TRUE(cur.malformed());  // zeros are not valid entries
}

TEST(PayloadByte, DeterministicPerStamp)
{
    EXPECT_EQ(payloadByte(5, 0), payloadByte(5, 0));
    EXPECT_NE(payloadByte(5, 0), payloadByte(6, 0));
}

} // namespace
} // namespace btrace
