/**
 * @file
 * Unit tests for the tracer write API: ScopedWrite RAII semantics
 * (auto-commit, auto-abandon on unwind), record()'s retry-cost
 * charging, the base-class dumpFrom() cursor, and the single-entry
 * lease fallback that keeps baselines comparable with BTrace's
 * batched leases.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "baselines/ftrace_like.h"
#include "trace/tracer.h"

namespace btrace {
namespace {

FtraceConfig
ringConfig()
{
    FtraceConfig cfg;
    cfg.capacityBytes = 64 << 10;
    cfg.cores = 2;
    return cfg;
}

/** Minimal tracer that returns Retry a fixed number of times. */
class RetryNTracer : public Tracer
{
  public:
    explicit RetryNTracer(int retries) : retriesLeft(retries) {}

    std::string name() const override { return "retry-n"; }
    std::size_t capacityBytes() const override { return sizeof(buf); }

    WriteTicket
    allocate(uint16_t core, uint32_t thread,
             uint32_t payload_len) override
    {
        WriteTicket t;
        t.core = core;
        t.thread = thread;
        t.cost = costs.setupOverhead;
        if (retriesLeft > 0) {
            --retriesLeft;
            t.status = AllocStatus::Retry;
            return t;
        }
        t.status = AllocStatus::Ok;
        t.dst = buf;
        t.entrySize =
            static_cast<uint32_t>(EntryLayout::normalSize(payload_len));
        return t;
    }

    void
    confirm(WriteTicket &ticket) override
    {
        ticket.cost += costs.atomicLocal;
        ++confirms;
    }

    Dump dump() override { return {}; }

    int confirms = 0;

  private:
    int retriesLeft;
    alignas(8) uint8_t buf[512] = {};
};

TEST(ScopedWrite, CommitsOnScopeExit)
{
    FtraceLike tr(ringConfig());
    {
        ScopedWrite w(tr, 0, 1, 16);
        ASSERT_TRUE(w.ok());
        w.fill(1, 7);
    }  // destructor confirms
    const Dump d = tr.dump();
    ASSERT_EQ(d.entries.size(), 1u);
    EXPECT_EQ(d.entries[0].stamp, 1u);
    EXPECT_EQ(d.entries[0].category, 7u);
}

TEST(ScopedWrite, ExplicitCommitIsIdempotent)
{
    FtraceLike tr(ringConfig());
    ScopedWrite w(tr, 0, 1, 16);
    ASSERT_TRUE(w.ok());
    w.fill(5);
    w.commit();
    w.commit();  // no double confirm
    EXPECT_EQ(tr.dump().entries.size(), 1u);
}

TEST(ScopedWrite, AbandonDummyFillsTheGrant)
{
    FtraceLike tr(ringConfig());
    {
        ScopedWrite w(tr, 0, 1, 16);
        ASSERT_TRUE(w.ok());
        w.abandon();
    }
    // The space was granted and returned as a dummy: no visible entry.
    EXPECT_EQ(tr.dump().entries.size(), 0u);
}

TEST(ScopedWrite, ExceptionUnwindAutoAbandons)
{
    FtraceLike tr(ringConfig());
    try {
        ScopedWrite w(tr, 0, 1, 16);
        ASSERT_TRUE(w.ok());
        throw std::runtime_error("producer failed mid-write");
    } catch (const std::runtime_error &) {
    }
    // The grant was abandoned, not leaked: the ring stays consistent
    // and later writes still work.
    EXPECT_EQ(tr.dump().entries.size(), 0u);
    ScopedWrite w2(tr, 0, 1, 16);
    ASSERT_TRUE(w2.ok());
    w2.fill(9);
    w2.commit();
    EXPECT_EQ(tr.dump().entries.size(), 1u);
}

TEST(Record, ChargesRetryBackoffPerSpin)
{
    RetryNTracer tr(3);
    double cost = 0.0;
    ASSERT_TRUE(tr.record(0, 1, 42, 16, 0, &cost));
    EXPECT_EQ(tr.confirms, 1);
    // Three failed acquires must each charge a backoff (plus the
    // per-attempt allocate cost), on top of the successful write.
    EXPECT_GE(cost, 3 * tr.model().retryBackoff);
}

TEST(Record, NoRetryChargesNoBackoff)
{
    RetryNTracer tr(0);
    double cost = 0.0;
    ASSERT_TRUE(tr.record(0, 1, 42, 16, 0, &cost));
    EXPECT_LT(cost, tr.model().retryBackoff);
}

TEST(DumpFrom, BaseCursorReturnsOnlyNewEntries)
{
    FtraceLike tr(ringConfig());
    for (uint64_t s = 1; s <= 5; ++s)
        ASSERT_TRUE(tr.record(0, 1, s, 16));

    DumpCursor cur;
    const Dump first = tr.dumpFrom(cur);
    EXPECT_EQ(first.entries.size(), 5u);

    const Dump empty = tr.dumpFrom(cur);
    EXPECT_EQ(empty.entries.size(), 0u);

    for (uint64_t s = 6; s <= 8; ++s)
        ASSERT_TRUE(tr.record(1, 2, s, 16));
    const Dump second = tr.dumpFrom(cur);
    ASSERT_EQ(second.entries.size(), 3u);
    for (const DumpEntry &e : second.entries)
        EXPECT_GT(e.stamp, 5u);
}

TEST(LeaseFallback, ServesThroughAllocateAndReportsExhaustion)
{
    FtraceLike tr(ringConfig());
    Lease l = tr.lease(0, 1, 16, 3);
    ASSERT_TRUE(l.ok());
    EXPECT_FALSE(l.batched());

    uint64_t stamp = 0;
    for (int i = 0; i < 3; ++i) {
        WriteTicket t = l.allocate(16);
        ASSERT_TRUE(t.ok());
        EXPECT_FALSE(t.leased);  // served by the ordinary fast path
        writeNormal(t.dst, ++stamp, 0, 1, 0, 16);
        l.confirm(t);
    }
    // Budget of 3 exhausted: renew on the same cadence as a batched
    // lease would.
    WriteTicket t4 = l.allocate(16);
    EXPECT_FALSE(t4.ok());
    l.close();
    EXPECT_EQ(tr.dump().entries.size(), 3u);
}

TEST(LeaseFallback, ScopedWriteServesFromLease)
{
    FtraceLike tr(ringConfig());
    Lease l = tr.lease(0, 1, 16, 2);
    ASSERT_TRUE(l.ok());
    {
        ScopedWrite w(l, 16);
        ASSERT_TRUE(w.ok());
        w.fill(11);
    }
    l.close();
    const Dump d = tr.dump();
    ASSERT_EQ(d.entries.size(), 1u);
    EXPECT_EQ(d.entries[0].stamp, 11u);
}

} // namespace
} // namespace btrace
