/** @file Unit tests for the latency cost model. */

#include <gtest/gtest.h>

#include "trace/cost.h"

namespace btrace {
namespace {

TEST(CostModel, DefaultSingleton)
{
    const CostModel &a = CostModel::def();
    const CostModel &b = CostModel::def();
    EXPECT_EQ(&a, &b);
}

TEST(CostModel, CopyScalesLinearly)
{
    const CostModel &m = CostModel::def();
    EXPECT_DOUBLE_EQ(m.copy(0), 0.0);
    EXPECT_DOUBLE_EQ(m.copy(200), 2 * m.copy(100));
}

TEST(CostModel, ContentionMonotonicAndCapped)
{
    const CostModel &m = CostModel::def();
    EXPECT_DOUBLE_EQ(m.contention(0), 0.0);
    EXPECT_LT(m.contention(1), m.contention(4));
    EXPECT_DOUBLE_EQ(m.contention(16), m.contention(1000));
}

TEST(CostModel, AmortizedClaimSpreadsTheTwoRmws)
{
    const CostModel &m = CostModel::def();
    // n == 1 degenerates to the two-RMW single-entry fast path plus
    // the bump arithmetic.
    EXPECT_DOUBLE_EQ(m.amortizedClaim(1),
                     2.0 * m.atomicLocal + m.leaseBump);
    // Larger batches approach the pure bump cost monotonically.
    EXPECT_LT(m.amortizedClaim(8), m.amortizedClaim(1));
    EXPECT_LT(m.amortizedClaim(64), m.amortizedClaim(8));
    EXPECT_GT(m.amortizedClaim(1 << 20), m.leaseBump);
}

TEST(CostModel, RelativeOrderMatchesDesignExpectations)
{
    // The model must preserve the cost ordering the paper's results
    // are built on: local RMW < shared RMW, userspace framework
    // overheads dominate kernel toggles.
    const CostModel &m = CostModel::def();
    EXPECT_LT(m.atomicLocal, m.atomicShared);
    EXPECT_LT(m.preemptToggle, m.tlsLookup);
    EXPECT_GT(m.lttngFramework, 10 * m.atomicLocal);
    EXPECT_GT(m.vtraceFramework, m.lttngFramework);
}

} // namespace
} // namespace btrace
