/** @file Unit tests for the trace exporters. */

#include <gtest/gtest.h>

#include "analysis/export.h"

namespace btrace {
namespace {

std::vector<DumpEntry>
sampleEntries()
{
    return {
        DumpEntry{3, 40, 1, 11, 2, true},
        DumpEntry{1, 48, 0, 10, 1, true},
        DumpEntry{2, 56, 0, 12, 0, true},
    };
}

TEST(ExportChromeJson, WellFormedAndSorted)
{
    TracepointRegistry reg;
    reg.registerTracepoint("sched");   // id 1
    reg.registerTracepoint("freq");    // id 2
    ExportOptions opt;
    opt.registry = &reg;
    const std::string json = exportChromeJson(sampleEntries(), opt);

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"sched\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"freq\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"uncategorized\""), std::string::npos);
    // Sorted: stamp 1 appears before stamp 3.
    EXPECT_LT(json.find("\"stamp\":1"), json.find("\"stamp\":3"));
    // Cores become pids.
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(ExportChromeJson, EmptyInput)
{
    EXPECT_EQ(exportChromeJson({}), "{\"traceEvents\":[]}");
}

TEST(ExportCsv, HeaderAndRows)
{
    TracepointRegistry reg;
    reg.registerTracepoint("sched");
    ExportOptions opt;
    opt.registry = &reg;
    const std::string csv = exportCsv(sampleEntries(), opt);

    EXPECT_EQ(csv.find("stamp,core,thread,category,category_name,size"),
              0u);
    EXPECT_NE(csv.find("1,0,10,1,sched,48"), std::string::npos);
    EXPECT_NE(csv.find("2,0,12,0,uncategorized,56"), std::string::npos);
    // 1 header + 3 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(ExportCsv, UnsortedWhenRequested)
{
    ExportOptions opt;
    opt.sortByStamp = false;
    const std::string csv = exportCsv(sampleEntries(), opt);
    EXPECT_LT(csv.find("3,1,"), csv.find("1,0,"));
}

TEST(SummarizeDump, RollsUpCoresAndCategories)
{
    TracepointRegistry reg;
    reg.registerTracepoint("sched");
    reg.registerTracepoint("freq");
    Dump dump;
    dump.entries = sampleEntries();
    dump.skippedBlocks = 2;
    ExportOptions opt;
    opt.registry = &reg;
    const std::string text = summarizeDump(dump, opt);

    EXPECT_NE(text.find("3 entries"), std::string::npos);
    EXPECT_NE(text.find("stamps 1..3"), std::string::npos);
    EXPECT_NE(text.find("2 skipped"), std::string::npos);
    EXPECT_NE(text.find("per core:"), std::string::npos);
    EXPECT_NE(text.find("per category:"), std::string::npos);
    EXPECT_NE(text.find("sched"), std::string::npos);
}

TEST(SummarizeDump, EmptyDumpSafe)
{
    const std::string text = summarizeDump(Dump{});
    EXPECT_NE(text.find("0 entries"), std::string::npos);
}

} // namespace
} // namespace btrace
