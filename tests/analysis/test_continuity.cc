/** @file Unit tests for the logic-stamp continuity analysis. */

#include <gtest/gtest.h>

#include "analysis/continuity.h"

namespace btrace {
namespace {

std::vector<ProducedEvent>
produce(uint64_t n, uint32_t bytes = 100)
{
    std::vector<ProducedEvent> out;
    for (uint64_t s = 1; s <= n; ++s)
        out.push_back(ProducedEvent{s, bytes, float(s) * 0.001f,
                                    uint16_t(s % 4), uint32_t(s % 3),
                                    false});
    return out;
}

Dump
retain(std::initializer_list<uint64_t> stamps, uint32_t bytes = 100)
{
    Dump d;
    for (uint64_t s : stamps)
        d.entries.push_back(DumpEntry{s, bytes, 0, 0, 0, true});
    return d;
}

TEST(Continuity, EmptyDump)
{
    const auto rep = analyzeContinuity(produce(10), Dump{}, 1000);
    EXPECT_EQ(rep.producedCount, 10u);
    EXPECT_EQ(rep.retainedCount, 0u);
    EXPECT_EQ(rep.latestFragmentBytes, 0.0);
    EXPECT_EQ(rep.fragments, 0u);
}

TEST(Continuity, FullRetention)
{
    const auto rep = analyzeContinuity(
        produce(5), retain({1, 2, 3, 4, 5}), 1000);
    EXPECT_EQ(rep.retainedCount, 5u);
    EXPECT_EQ(rep.fragments, 1u);
    EXPECT_DOUBLE_EQ(rep.lossRate, 0.0);
    EXPECT_DOUBLE_EQ(rep.latestFragmentBytes, 500.0);
    EXPECT_EQ(rep.latestFragmentCount, 5u);
    EXPECT_DOUBLE_EQ(rep.effectivityRatio, 0.5);
}

TEST(Continuity, SuffixRetention)
{
    const auto rep = analyzeContinuity(
        produce(10), retain({7, 8, 9, 10}), 400);
    EXPECT_EQ(rep.fragments, 1u);
    EXPECT_DOUBLE_EQ(rep.lossRate, 0.0);  // contiguous collected range
    EXPECT_DOUBLE_EQ(rep.latestFragmentBytes, 400.0);
    EXPECT_DOUBLE_EQ(rep.effectivityRatio, 1.0);
}

TEST(Continuity, HoleSplitsFragmentsAndRaisesLoss)
{
    const auto rep = analyzeContinuity(
        produce(10), retain({3, 4, 7, 8, 9}), 1000);
    EXPECT_EQ(rep.fragments, 2u);
    // Range 3..9 = 7 stamps, 5 retained.
    EXPECT_NEAR(rep.lossRate, 2.0 / 7.0, 1e-9);
    // Latest fragment = {7,8,9}.
    EXPECT_EQ(rep.latestFragmentCount, 3u);
    EXPECT_DOUBLE_EQ(rep.latestFragmentBytes, 300.0);
}

TEST(Continuity, IsolatedNewestGivesTinyLatestFragment)
{
    // The LTTng pathology: the newest retained event sits alone after
    // a drop gap.
    const auto rep = analyzeContinuity(
        produce(10), retain({1, 2, 3, 4, 10}), 1000);
    EXPECT_EQ(rep.latestFragmentCount, 1u);
    EXPECT_EQ(rep.fragments, 2u);
    EXPECT_NEAR(rep.lossRate, 0.5, 1e-9);
}

TEST(Continuity, DroppedEventsCountAgainstLoss)
{
    auto produced = produce(10);
    produced[4].dropped = true;  // stamp 5 shed by the tracer
    const auto rep = analyzeContinuity(
        produced, retain({4, 6, 7, 8, 9, 10}), 1000);
    EXPECT_EQ(rep.droppedByDesign, 1u);
    EXPECT_EQ(rep.fragments, 2u);
    EXPECT_NEAR(rep.lossRate, 1.0 / 7.0, 1e-9);
}

TEST(Continuity, ResurfacedDropFlagged)
{
    auto produced = produce(5);
    produced[2].dropped = true;
    const auto rep =
        analyzeContinuity(produced, retain({3}), 1000);
    EXPECT_EQ(rep.resurfacedDrops, 1u);
}

TEST(Continuity, DuplicateStampsFlagged)
{
    const auto rep = analyzeContinuity(
        produce(5), retain({2, 2, 3}), 1000);
    EXPECT_EQ(rep.duplicateStamps, 1u);
    EXPECT_EQ(rep.retainedCount, 2u);
}

TEST(Continuity, UnknownStampsFlagged)
{
    const auto rep = analyzeContinuity(
        produce(5), retain({3, 77}), 1000);
    EXPECT_EQ(rep.unknownStamps, 1u);
    EXPECT_EQ(rep.retainedCount, 1u);
}

TEST(Continuity, CorruptPayloadFlagged)
{
    Dump d = retain({1, 2});
    d.entries[1].payloadOk = false;
    const auto rep = analyzeContinuity(produce(2), d, 1000);
    EXPECT_EQ(rep.corruptPayloads, 1u);
}

TEST(Continuity, BytesUseProducedSizes)
{
    std::vector<ProducedEvent> produced;
    produced.push_back(ProducedEvent{1, 10, 0.0f, 0, 0, false});
    produced.push_back(ProducedEvent{2, 30, 0.0f, 0, 0, false});
    const auto rep =
        analyzeContinuity(produced, retain({1, 2}), 100);
    EXPECT_DOUBLE_EQ(rep.retainedBytes, 40.0);
    EXPECT_DOUBLE_EQ(rep.latestFragmentBytes, 40.0);
    EXPECT_DOUBLE_EQ(rep.effectivityRatio, 0.4);
}

} // namespace
} // namespace btrace
