/** @file Unit tests for the Table 2 report assembly. */

#include <gtest/gtest.h>

#include "analysis/report.h"

namespace btrace {
namespace {

TEST(Report, AppendMetricsExtractsFields)
{
    TracerMetrics row;
    row.tracer = "X";
    ContinuityReport rep;
    rep.latestFragmentBytes = 2.0 * 1024 * 1024;
    rep.lossRate = 0.25;
    rep.fragments = 123;
    appendMetrics(row, rep, 55.0);
    ASSERT_EQ(row.latestFragmentMb.size(), 1u);
    EXPECT_DOUBLE_EQ(row.latestFragmentMb[0], 2.0);
    EXPECT_DOUBLE_EQ(row.lossRate[0], 0.25);
    EXPECT_DOUBLE_EQ(row.fragments[0], 123.0);
    EXPECT_DOUBLE_EQ(row.latencyGeoNs[0], 55.0);
}

TEST(Report, RenderContainsAllSectionsAndCells)
{
    TracerMetrics a;
    a.tracer = "BTrace";
    a.latestFragmentMb = {10.8, 11.0};
    a.lossRate = {0.0, 0.01};
    a.fragments = {65, 80};
    a.latencyGeoNs = {53, 50};
    TracerMetrics b;
    b.tracer = "ftrace";
    b.latestFragmentMb = {5.4, 5.0};
    b.lossRate = {0.81, 0.8};
    b.fragments = {20000, 15000};
    b.latencyGeoNs = {63, 66};

    const std::string out =
        renderTable2({"Desktop", "Browser"}, {a, b});
    EXPECT_NE(out.find("Latest continuous entries"), std::string::npos);
    EXPECT_NE(out.find("Loss rate"), std::string::npos);
    EXPECT_NE(out.find("Number of fragments"), std::string::npos);
    EXPECT_NE(out.find("Recording latency"), std::string::npos);
    EXPECT_NE(out.find("BTrace"), std::string::npos);
    EXPECT_NE(out.find("ftrace"), std::string::npos);
    EXPECT_NE(out.find("Desktop"), std::string::npos);
    EXPECT_NE(out.find("G.M."), std::string::npos);
    EXPECT_NE(out.find("2e4"), std::string::npos);  // compact fragments
}

TEST(Report, GeoMeanColumnIsGeometric)
{
    TracerMetrics a;
    a.tracer = "T";
    a.latestFragmentMb = {1.0, 100.0};
    a.lossRate = {0.0, 0.0};
    a.fragments = {1, 1};
    a.latencyGeoNs = {10, 1000};
    const std::string out = renderTable2({"W1", "W2"}, {a});
    // G.M. of {1,100} = 10.0; of {10,1000} = 100.
    EXPECT_NE(out.find("10.0"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
}

using ReportDeath = ::testing::Test;

TEST(ReportDeath, MismatchedVectorLengthsAreFatal)
{
    TracerMetrics a;
    a.tracer = "T";
    a.latestFragmentMb = {1.0};
    a.lossRate = {0.0};
    a.fragments = {1};
    a.latencyGeoNs = {10};
    EXPECT_DEATH(renderTable2({"W1", "W2"}, {a}), "metric vector");
}

} // namespace
} // namespace btrace
