/** @file Unit tests for the §6 defect-signature detectors. */

#include <gtest/gtest.h>

#include "analysis/defects.h"

namespace btrace {
namespace {

constexpr uint16_t kIdle = 1;
constexpr uint16_t kSched = 2;
constexpr uint16_t kMigrate = 3;
constexpr uint16_t kBusy = 4;
constexpr uint16_t kDownscale = 5;
constexpr uint16_t kNoise = 9;

DumpEntry
entry(uint64_t stamp, uint16_t cat, uint16_t core = 0,
      uint32_t thread = 0)
{
    return DumpEntry{stamp, 40, core, thread, cat, true};
}

TEST(MigrationStorm, DetectsTripleOnOneCore)
{
    std::vector<DumpEntry> es = {
        entry(10, kIdle, 2), entry(12, kNoise, 2),
        entry(14, kSched, 2), entry(20, kMigrate, 2),
    };
    const DefectReport rep =
        detectMigrationStorm(es, kIdle, kSched, kMigrate, 64);
    ASSERT_EQ(rep.occurrences.size(), 1u);
    EXPECT_EQ(rep.occurrences[0].firstStamp, 10u);
    EXPECT_EQ(rep.occurrences[0].lastStamp, 20u);
    EXPECT_EQ(rep.occurrences[0].core, 2u);
}

TEST(MigrationStorm, CrossCoreEventsDoNotMatch)
{
    std::vector<DumpEntry> es = {
        entry(10, kIdle, 0), entry(14, kSched, 1),
        entry(20, kMigrate, 0),
    };
    const DefectReport rep =
        detectMigrationStorm(es, kIdle, kSched, kMigrate, 64);
    EXPECT_TRUE(rep.occurrences.empty());
}

TEST(MigrationStorm, SpanDeadlineExpires)
{
    std::vector<DumpEntry> es = {
        entry(10, kIdle, 0), entry(200, kSched, 0),
        entry(210, kMigrate, 0),
    };
    const DefectReport rep =
        detectMigrationStorm(es, kIdle, kSched, kMigrate, 64);
    EXPECT_TRUE(rep.occurrences.empty());
}

TEST(MigrationStorm, CountsRepeatedOccurrences)
{
    std::vector<DumpEntry> es;
    for (uint64_t k = 0; k < 5; ++k) {
        const uint64_t base = 1000 * (k + 1);
        es.push_back(entry(base, kIdle, 3));
        es.push_back(entry(base + 5, kSched, 3));
        es.push_back(entry(base + 9, kMigrate, 3));
    }
    const DefectReport rep =
        detectMigrationStorm(es, kIdle, kSched, kMigrate, 64);
    EXPECT_EQ(rep.occurrences.size(), 5u);
    EXPECT_GT(rep.ratePerMEvents(), 0.0);
}

TEST(ThermalBusyLoop, BurstThenDownscaleMatches)
{
    std::vector<DumpEntry> es;
    for (uint64_t s = 100; s < 110; ++s)
        es.push_back(entry(s, kBusy, 1, 42));
    es.push_back(entry(500, kDownscale, 0));
    const DefectReport rep =
        detectThermalBusyLoop(es, kBusy, kDownscale, 8, 256, 1000);
    ASSERT_EQ(rep.occurrences.size(), 1u);
    EXPECT_EQ(rep.occurrences[0].firstStamp, 100u);
    EXPECT_EQ(rep.occurrences[0].lastStamp, 500u);
}

TEST(ThermalBusyLoop, ShortBurstIgnored)
{
    std::vector<DumpEntry> es = {
        entry(100, kBusy, 1, 42), entry(101, kBusy, 1, 42),
        entry(500, kDownscale, 0),
    };
    const DefectReport rep =
        detectThermalBusyLoop(es, kBusy, kDownscale, 8, 256, 1000);
    EXPECT_TRUE(rep.occurrences.empty());
}

TEST(ThermalBusyLoop, DownscaleTooLateIgnored)
{
    std::vector<DumpEntry> es;
    for (uint64_t s = 100; s < 110; ++s)
        es.push_back(entry(s, kBusy, 1, 42));
    es.push_back(entry(900000, kDownscale, 0));
    const DefectReport rep =
        detectThermalBusyLoop(es, kBusy, kDownscale, 8, 256, 1000);
    EXPECT_TRUE(rep.occurrences.empty());
}

TEST(ThermalBusyLoop, BurstsArePerThread)
{
    // 10 busy events interleaved across 5 threads: no single thread
    // reaches the burst threshold.
    std::vector<DumpEntry> es;
    for (uint64_t s = 0; s < 10; ++s)
        es.push_back(entry(100 + s, kBusy, 1, uint32_t(s % 5)));
    es.push_back(entry(500, kDownscale, 0));
    const DefectReport rep =
        detectThermalBusyLoop(es, kBusy, kDownscale, 8, 256, 1000);
    EXPECT_TRUE(rep.occurrences.empty());
}

TEST(RootCause, FoundWhenFarEnoughBeforeNewest)
{
    std::vector<DumpEntry> es = {
        entry(100, kBusy), entry(50000, kNoise),
    };
    es[0].category = 7;
    EXPECT_TRUE(rootCauseWithinWindow(es, 7, 10000));
    EXPECT_FALSE(rootCauseWithinWindow(es, 7, 60000));
    EXPECT_FALSE(rootCauseWithinWindow(es, 8, 1));
}

TEST(Detectors, EmptyInputSafe)
{
    EXPECT_TRUE(detectMigrationStorm({}, 1, 2, 3).occurrences.empty());
    EXPECT_TRUE(detectThermalBusyLoop({}, 1, 2).occurrences.empty());
    EXPECT_FALSE(rootCauseWithinWindow({}, 1, 1));
}

} // namespace
} // namespace btrace
