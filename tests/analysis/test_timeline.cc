/** @file Unit tests for the Fig 1 retained-interval timelines. */

#include <gtest/gtest.h>

#include "analysis/timeline.h"

namespace btrace {
namespace {

ReplayResult
makeResult(uint64_t produced, std::initializer_list<uint64_t> retained,
           std::size_t capacity, uint32_t bytes = 100)
{
    ReplayResult res;
    res.capacityBytes = capacity;
    for (uint64_t s = 1; s <= produced; ++s)
        res.produced.push_back(
            ProducedEvent{s, bytes, float(s), 0, 0, false});
    for (uint64_t s : retained)
        res.dump.entries.push_back(DumpEntry{s, bytes, 0, 0, 0, true});
    return res;
}

TEST(Timeline, WindowCoversCapacityWorthOfNewestEvents)
{
    // 100-byte events, 1000-byte capacity → window = last 10 events.
    const auto res = makeResult(100, {}, 1000);
    const Timeline tl = buildTimeline(res);
    EXPECT_EQ(tl.windowEnd, 100u);
    EXPECT_EQ(tl.windowEvents(), 10u);
}

TEST(Timeline, FullCoverage)
{
    const auto res =
        makeResult(20, {11, 12, 13, 14, 15, 16, 17, 18, 19, 20}, 1000);
    const Timeline tl = buildTimeline(res);
    EXPECT_NEAR(tl.coverage(), 1.0, 1e-9);
    ASSERT_EQ(tl.retainedRuns.size(), 1u);
    const std::string band = renderTimeline(tl, 10);
    EXPECT_EQ(band, std::string(10, '#'));
}

TEST(Timeline, EmptyCoverage)
{
    const auto res = makeResult(20, {1, 2}, 1000);  // outside window
    const Timeline tl = buildTimeline(res);
    EXPECT_EQ(tl.coverage(), 0.0);
    EXPECT_EQ(renderTimeline(tl, 10), std::string(10, '.'));
}

TEST(Timeline, GapShowsAsDots)
{
    // Window 11..20; retain 11-14 and 19-20, gap 15-18.
    const auto res = makeResult(20, {11, 12, 13, 14, 19, 20}, 1000);
    const Timeline tl = buildTimeline(res);
    ASSERT_EQ(tl.retainedRuns.size(), 2u);
    const std::string band = renderTimeline(tl, 10);
    EXPECT_EQ(band.substr(0, 4), "####");
    EXPECT_EQ(band.substr(4, 4), "....");
    EXPECT_EQ(band.substr(8, 2), "##");
    EXPECT_NEAR(tl.coverage(), 0.6, 1e-9);
}

TEST(Timeline, PartialBucketRendersPlus)
{
    // 10 window events into 5 buckets: retain one of each pair.
    const auto res = makeResult(20, {11, 13, 15, 17, 19}, 1000);
    const Timeline tl = buildTimeline(res);
    const std::string band = renderTimeline(tl, 5);
    EXPECT_EQ(band, "+++++");
}

TEST(Timeline, EmptyProducedSafe)
{
    ReplayResult res;
    res.capacityBytes = 1000;
    const Timeline tl = buildTimeline(res);
    EXPECT_EQ(tl.windowEvents(), 0u);
    EXPECT_EQ(renderTimeline(tl, 12), std::string(12, '.'));
}

TEST(Timeline, SmallProductionWindowIsWholeRun)
{
    const auto res = makeResult(5, {1, 2, 3, 4, 5}, 100000);
    const Timeline tl = buildTimeline(res);
    EXPECT_EQ(tl.windowStart, 1u);
    EXPECT_EQ(tl.windowEnd, 5u);
    EXPECT_NEAR(tl.coverage(), 1.0, 1e-9);
}

} // namespace
} // namespace btrace
