/** @file Unit tests for gap classification. */

#include <gtest/gtest.h>

#include "analysis/gaps.h"

namespace btrace {
namespace {

std::vector<ProducedEvent>
produce(uint64_t n, uint32_t bytes = 100)
{
    std::vector<ProducedEvent> out;
    for (uint64_t s = 1; s <= n; ++s)
        out.push_back(ProducedEvent{s, bytes, float(s), 0, 0, false});
    return out;
}

Dump
retain(std::initializer_list<uint64_t> stamps)
{
    Dump d;
    for (uint64_t s : stamps)
        d.entries.push_back(DumpEntry{s, 100, 0, 0, 0, true});
    return d;
}

TEST(Gaps, NoGapsWhenContiguous)
{
    const auto rep = analyzeGaps(produce(10), retain({4, 5, 6, 7}));
    EXPECT_TRUE(rep.gaps.empty());
    EXPECT_EQ(rep.maxGapLength(), 0u);
}

TEST(Gaps, SingleSmallGap)
{
    const auto rep =
        analyzeGaps(produce(10), retain({2, 3, 5, 6}), 4);
    ASSERT_EQ(rep.gaps.size(), 1u);
    EXPECT_EQ(rep.gaps[0].firstStamp, 4u);
    EXPECT_EQ(rep.gaps[0].lastStamp, 4u);
    EXPECT_EQ(rep.smallGaps, 1u);
    EXPECT_EQ(rep.largeGaps, 0u);
    EXPECT_DOUBLE_EQ(rep.smallGapBytes, 100.0);
}

TEST(Gaps, ClassifiesByThreshold)
{
    // Gaps: {3..4} (len 2) and {8..12} (len 5); threshold 2.
    const auto rep = analyzeGaps(
        produce(20), retain({2, 5, 6, 7, 13, 14}), 2);
    ASSERT_EQ(rep.gaps.size(), 2u);
    EXPECT_EQ(rep.smallGaps, 1u);
    EXPECT_EQ(rep.largeGaps, 1u);
    EXPECT_EQ(rep.maxGapLength(), 5u);
    EXPECT_DOUBLE_EQ(rep.largeGapBytes, 500.0);
}

TEST(Gaps, OutsideCollectedRangeIgnored)
{
    // Stamps 1 and 20 were never retained: not gaps, just the range.
    const auto rep = analyzeGaps(produce(20), retain({10, 11}), 4);
    EXPECT_TRUE(rep.gaps.empty());
}

TEST(Gaps, EmptyInputsSafe)
{
    const auto rep1 = analyzeGaps({}, Dump{});
    EXPECT_TRUE(rep1.gaps.empty());
    const auto rep2 = analyzeGaps(produce(5), Dump{});
    EXPECT_TRUE(rep2.gaps.empty());
}

TEST(Gaps, DescribeMentionsCounts)
{
    const auto rep = analyzeGaps(
        produce(20), retain({2, 5, 6, 7, 13, 14}), 2);
    const std::string text = describeGaps(rep);
    EXPECT_NE(text.find("2 gaps"), std::string::npos);
    EXPECT_NE(text.find("1 small"), std::string::npos);
    EXPECT_NE(text.find("1 large"), std::string::npos);
    EXPECT_NE(text.find("max 5"), std::string::npos);
}

TEST(Gaps, BytesAccumulatePerGap)
{
    std::vector<ProducedEvent> produced;
    for (uint64_t s = 1; s <= 6; ++s)
        produced.push_back(
            ProducedEvent{s, uint32_t(10 * s), float(s), 0, 0, false});
    // Retain 1 and 6; gap = {2..5} with bytes 20+30+40+50.
    const auto rep = analyzeGaps(produced, retain({1, 6}), 1);
    ASSERT_EQ(rep.gaps.size(), 1u);
    EXPECT_DOUBLE_EQ(rep.gaps[0].bytes, 140.0);
}

} // namespace
} // namespace btrace
