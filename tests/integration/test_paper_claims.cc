/**
 * @file
 * Integration tests asserting the paper's headline *shape* claims at
 * reduced scale (shorter runs, smaller buffers). The full-scale
 * reproduction lives in bench/; these tests keep the shapes from
 * regressing:
 *
 *  - §5.2: BTrace's latest fragment beats the per-core and per-thread
 *    tracers by a wide margin and approaches BBQ's.
 *  - §5.2: loss rate ~0 for BTrace/BBQ, large for the others.
 *  - §5.2: fragments: BTrace orders of magnitude below ftrace/LTTng.
 *  - §5.2: latency: BTrace < ftrace < LTTng < VTrace, BBQ worst under
 *    oversubscription.
 *  - §3.1: utilization ~1-(C-1)/N vs 1/C for per-core buffers.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/continuity.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

namespace btrace {
namespace {

struct Outcome
{
    ContinuityReport rep;
    double latencyGeo;
    uint64_t retries;
};

const std::map<TracerKind, Outcome> &
runAll(const char *workload)
{
    static std::map<std::string, std::map<TracerKind, Outcome>> cache;
    auto &slot = cache[workload];
    if (!slot.empty())
        return slot;
    for (const TracerKind kind : allTracerKinds()) {
        TracerFactoryOptions fo;
        fo.capacityBytes = 6u << 20;
        auto tracer = makeTracer(kind, fo);
        ReplayOptions opt;
        opt.durationSec = 5.0;
        opt.rateScale = 0.6;
        ReplayResult res = replay(*tracer, workloadByName(workload), opt);
        slot[kind] = Outcome{analyzeContinuity(res),
                             res.latencyNs.geoMean(), res.retries};
    }
    return slot;
}

TEST(PaperClaims, LatestFragmentOrderingOnSkewedWorkload)
{
    const auto &r = runAll("Video-1");
    const double btrace = r.at(TracerKind::BTrace).rep.latestFragmentBytes;
    const double bbq = r.at(TracerKind::Bbq).rep.latestFragmentBytes;
    const double ftrace = r.at(TracerKind::Ftrace).rep.latestFragmentBytes;
    const double vtrace = r.at(TracerKind::Vtrace).rep.latestFragmentBytes;

    // §5.2: ftrace ~55 % below BTrace; we assert a conservative 1.5x.
    EXPECT_GT(btrace, 1.5 * ftrace);
    // VTrace worst by far.
    EXPECT_GT(btrace, 5.0 * vtrace);
    // BTrace within ~25 % of the (blocking) global buffer.
    EXPECT_GT(btrace, 0.75 * bbq);
}

TEST(PaperClaims, LatestFragmentOrderingOnLockScreen)
{
    // Fig 1a: idle big/middle cores waste per-core buffers. The
    // lock-screen volume is low, so use a buffer small enough that
    // the busy little cores wrap their 1/C slices (as on the phone).
    auto measure = [](TracerKind kind) {
        TracerFactoryOptions fo;
        fo.capacityBytes = 1536u << 10;
        auto tracer = makeTracer(kind, fo);
        ReplayOptions opt;
        opt.durationSec = 8.0;
        ReplayResult res =
            replay(*tracer, workloadByName("LockScr"), opt);
        return analyzeContinuity(res).latestFragmentBytes;
    };
    EXPECT_GT(measure(TracerKind::BTrace),
              1.5 * measure(TracerKind::Ftrace));
}

TEST(PaperClaims, LossRateNearZeroForBTraceAndBbq)
{
    const auto &r = runAll("Video-1");
    EXPECT_LT(r.at(TracerKind::BTrace).rep.lossRate, 0.05);
    EXPECT_LT(r.at(TracerKind::Bbq).rep.lossRate, 0.05);
    // Distributed buffers lose the majority of a heavy workload.
    EXPECT_GT(r.at(TracerKind::Ftrace).rep.lossRate, 0.4);
    EXPECT_GT(r.at(TracerKind::Vtrace).rep.lossRate, 0.4);
}

TEST(PaperClaims, FragmentCountsOrdersOfMagnitudeApart)
{
    const auto &r = runAll("Video-1");
    const auto btrace = r.at(TracerKind::BTrace).rep.fragments;
    const auto ftrace = r.at(TracerKind::Ftrace).rep.fragments;
    const auto vtrace = r.at(TracerKind::Vtrace).rep.fragments;
    EXPECT_GT(ftrace, 20 * btrace);
    EXPECT_GT(vtrace, ftrace);
}

TEST(PaperClaims, LatencyOrderingMatchesTable2)
{
    const auto &r = runAll("eShop-2");
    const double btrace = r.at(TracerKind::BTrace).latencyGeo;
    const double ftrace = r.at(TracerKind::Ftrace).latencyGeo;
    const double lttng = r.at(TracerKind::Lttng).latencyGeo;
    const double vtrace = r.at(TracerKind::Vtrace).latencyGeo;
    const double bbq = r.at(TracerKind::Bbq).latencyGeo;

    EXPECT_LT(btrace, ftrace);   // ~20 % in the paper
    EXPECT_LT(ftrace, lttng);    // kernel vs userspace framework
    EXPECT_LT(lttng, vtrace);
    EXPECT_GT(bbq, 2.0 * btrace);  // contended global line
}

TEST(PaperClaims, BbqSuffersUnderOversubscription)
{
    // Table 2: BBQ's latency blows up on eShop-2 relative to calm
    // workloads; BTrace stays flat.
    const double bbq_calm = runAll("Music").at(TracerKind::Bbq).latencyGeo;
    const double bbq_hot = runAll("eShop-2").at(TracerKind::Bbq).latencyGeo;
    EXPECT_GT(bbq_hot, 1.3 * bbq_calm);

    const double bt_calm =
        runAll("Music").at(TracerKind::BTrace).latencyGeo;
    const double bt_hot =
        runAll("eShop-2").at(TracerKind::BTrace).latencyGeo;
    EXPECT_LT(bt_hot, 1.3 * bt_calm);
}

TEST(PaperClaims, UtilizationFormulaSingleHotCore)
{
    // Table 1: per-core buffers waste (C-1)/C of the capacity when one
    // core produces; BTrace wastes at most ~A/N plus active blocks.
    TracerFactoryOptions fo;
    fo.capacityBytes = 6u << 20;

    Workload solo = workloadByName("IM");
    for (unsigned c = 1; c < kCores; ++c)
        solo.ratePerSec[c] = 0.0;
    solo.ratePerSec[0] = 12000.0;
    solo.name = "solo";

    ReplayOptions opt;
    opt.durationSec = 8.0;
    opt.mode = ReplayMode::CoreLevel;

    auto bt = makeTracer(TracerKind::BTrace, fo);
    const auto bt_rep = analyzeContinuity(replay(*bt, solo, opt));
    auto ft = makeTracer(TracerKind::Ftrace, fo);
    const auto ft_rep = analyzeContinuity(replay(*ft, solo, opt));

    // ftrace retains at most one core's slice.
    EXPECT_LT(ft_rep.retainedBytes, 1.1 * double(6u << 20) / kCores);
    // BTrace retains the bulk of the global buffer.
    EXPECT_GT(bt_rep.retainedBytes, 0.6 * double(6u << 20));
    EXPECT_GT(bt_rep.retainedBytes, 5.0 * ft_rep.retainedBytes);
}

TEST(PaperClaims, BTraceSkipsInsteadOfBlockingOrDropping)
{
    const auto &r = runAll("eShop-2");
    // BTrace never sheds events; BBQ resolves contention by waiting,
    // with at least as many blocked retries as BTrace's bounded
    // skipping produces.
    EXPECT_EQ(r.at(TracerKind::BTrace).rep.droppedByDesign, 0u);
    EXPECT_GE(r.at(TracerKind::Bbq).retries,
              r.at(TracerKind::BTrace).retries);

    // LTTng drops the newest data by design when a stalled writer
    // poisons a sub-buffer for longer than the ring cycle; provoke it
    // at full production rate with a tight buffer (drop counts scale
    // with rate x stall tail, §2.2 Obs. 2).
    TracerFactoryOptions fo;
    fo.capacityBytes = 3u << 20;
    auto lttng = makeTracer(TracerKind::Lttng, fo);
    ReplayOptions opt;
    opt.durationSec = 6.0;
    ReplayResult res = replay(*lttng, workloadByName("Video-3"), opt);
    EXPECT_GT(res.drops, 0u);
}

} // namespace
} // namespace btrace
