/**
 * @file
 * Integration tests: every tracer driven by the full replay pipeline
 * on real catalog workloads, checking cross-module invariants that no
 * unit test covers alone.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "analysis/continuity.h"
#include "analysis/timeline.h"
#include "core/btrace.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

namespace btrace {
namespace {

struct Combo
{
    TracerKind kind;
    const char *workload;
};

class TracerWorkload : public ::testing::TestWithParam<Combo>
{
};

TEST_P(TracerWorkload, FullPipelineInvariants)
{
    const Combo combo = GetParam();
    TracerFactoryOptions fo;
    fo.capacityBytes = 4u << 20;
    auto tracer = makeTracer(combo.kind, fo);

    ReplayOptions opt;
    opt.durationSec = 4.0;
    opt.rateScale = 0.5;
    const ReplayResult res =
        replay(*tracer, workloadByName(combo.workload), opt);

    ASSERT_GT(res.produced.size(), 1000u);
    const ContinuityReport rep = analyzeContinuity(res);

    // Ground-truth integrity for every tracer and workload.
    EXPECT_EQ(rep.unknownStamps, 0u);
    EXPECT_EQ(rep.duplicateStamps, 0u);
    EXPECT_EQ(rep.corruptPayloads, 0u);
    EXPECT_EQ(rep.resurfacedDrops, 0u);

    // Retention is positive and bounded by both capacity and volume.
    EXPECT_GT(rep.retainedCount, 0u);
    EXPECT_LE(rep.retainedBytes, 1.05 * double(res.capacityBytes));
    EXPECT_LE(rep.retainedCount, rep.producedCount);
    EXPECT_LE(rep.latestFragmentBytes, rep.retainedBytes + 1.0);

    // The timeline is consistent with the continuity report.
    const Timeline tl = buildTimeline(res);
    EXPECT_GT(tl.coverage(), 0.0);
    EXPECT_LE(tl.coverage(), 1.0);

    // The analysis and the engine agree on design drops.
    EXPECT_EQ(rep.droppedByDesign, res.drops);
}

INSTANTIATE_TEST_SUITE_P(
    AllTracersKeyWorkloads, TracerWorkload,
    ::testing::Values(
        Combo{TracerKind::BTrace, "LockScr"},
        Combo{TracerKind::BTrace, "Video-1"},
        Combo{TracerKind::BTrace, "eShop-2"},
        Combo{TracerKind::Bbq, "LockScr"},
        Combo{TracerKind::Bbq, "eShop-2"},
        Combo{TracerKind::Ftrace, "LockScr"},
        Combo{TracerKind::Ftrace, "Video-1"},
        Combo{TracerKind::Lttng, "Video-1"},
        Combo{TracerKind::Lttng, "eShop-2"},
        Combo{TracerKind::Vtrace, "Desktop"},
        Combo{TracerKind::Vtrace, "eShop-2"}),
    [](const ::testing::TestParamInfo<Combo> &param_info) {
        std::string name = tracerKindName(param_info.param.kind);
        name += "_";
        for (const char *p = param_info.param.workload; *p; ++p)
            name += (std::isalnum(*p) ? *p : '_');
        return name;
    });

TEST(ReplayIntegration, ResizeMidWorkloadKeepsIntegrity)
{
    // Drive BTrace through a grow and a shrink between replay phases,
    // mimicking the in-production cold-start scenario (§2.2 Obs. 3).
    TracerFactoryOptions fo;
    fo.capacityBytes = 4u << 20;
    fo.maxBlocks = 20 * 192;  // 15 MB ceiling (multiple of A = 192)
    auto tracer = makeTracer(TracerKind::BTrace, fo);
    auto *bt = dynamic_cast<BTrace *>(tracer.get());
    ASSERT_NE(bt, nullptr);

    ReplayOptions opt;
    opt.durationSec = 2.0;
    opt.rateScale = 0.3;
    const ReplayResult phase1 =
        replay(*tracer, workloadByName("Desktop"), opt);
    const ContinuityReport rep1 = analyzeContinuity(phase1);
    EXPECT_EQ(rep1.duplicateStamps, 0u);

    bt->resize(20 * 192);  // grow for the critical phase
    opt.seed = 2;
    const ReplayResult phase2 =
        replay(*tracer, workloadByName("eShop-1"), opt);
    const ContinuityReport rep2 = analyzeContinuity(phase2);
    EXPECT_EQ(rep2.corruptPayloads, 0u);
    EXPECT_GT(rep2.retainedCount, rep1.retainedCount);

    bt->resize(bt->config().activeBlocks);  // shrink to minimum
    opt.seed = 3;
    const ReplayResult phase3 =
        replay(*tracer, workloadByName("Desktop"), opt);
    const ContinuityReport rep3 = analyzeContinuity(phase3);
    EXPECT_EQ(rep3.corruptPayloads, 0u);
    EXPECT_GT(rep3.retainedCount, 0u);
}

} // namespace
} // namespace btrace
