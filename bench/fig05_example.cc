/**
 * @file
 * Fig 5 reproduction: the worked example of per-core buffer
 * under-utilization. Four cores share timestamps 1..20 with skewed
 * speeds; with 4-entry per-core buffers the little core overwrites
 * ts-12/ts-14 while neighbours survive, yielding the paper's 37.5 %
 * effectivity ratio (latest fragment 6 of 16 retained slots).
 */

#include <cstdio>

#include "baselines/ftrace_like.h"
#include "bench_util.h"
#include "core/btrace.h"

using namespace btrace;

namespace {

// The Fig 5 assignment: ts → producing core, chosen to reproduce the
// figure's retention exactly: the little core (3) wraps and loses
// ts-2..8, ts-12 and ts-14; the busier middle core (2) loses
// ts-3..9; the slow cores keep their old entries. Per-core buffers
// then retain {1, 10, 11, 13, 15..20} — a latest fragment of 6 of 16
// slots, the paper's 37.5 % effectivity.
constexpr uint16_t producerOf(uint64_t ts)
{
    switch (ts) {
      case 2: case 4: case 6: case 8: case 12: case 14: case 15:
      case 16: case 18: case 20:
        return 3;  // little core, fastest producer
      case 3: case 5: case 7: case 9: case 11: case 13: case 17:
      case 19:
        return 2;  // middle core
      case 10:
        return 1;  // middle core, nearly idle
      default:
        return 0;  // big core (ts-1)
    }
}

template <typename Tracer>
void
run(const char *name, Tracer &tracer, std::size_t capacity_slots)
{
    for (uint64_t ts = 1; ts <= 20; ++ts)
        tracer.record(producerOf(ts), 1, ts, 16);
    const Dump d = tracer.dump();
    std::vector<bool> kept(21, false);
    for (const DumpEntry &e : d.entries)
        if (e.stamp <= 20)
            kept[e.stamp] = true;

    std::printf("%-8s ", name);
    for (uint64_t ts = 1; ts <= 20; ++ts)
        std::printf("%s", kept[ts] ? "#" : ".");

    // Latest fragment = contiguous kept suffix.
    uint64_t frag = 0;
    for (uint64_t ts = 20; ts >= 1 && kept[ts]; --ts)
        ++frag;
    std::printf("   latest fragment %llu of %zu slots -> effectivity "
                "%.1f%%\n", static_cast<unsigned long long>(frag),
                capacity_slots,
                100.0 * double(frag) / double(capacity_slots));
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig 5", "skewed per-core buffers vs a partitioned global "
           "buffer", args);

    std::printf("timestamp ->   1...5....0....5...20   ('#' retained, "
                "'.' overwritten)\n\n");

    // Per-core buffers: 4 cores x one 4 KB ring; 1024-byte entries
    // give exactly 4 slots per core (16 slots total).
    FtraceConfig tiny;
    tiny.cores = 4;
    tiny.capacityBytes = 4 * 4096;
    FtraceLike percore(tiny);
    // 4 KB ring / 1024-byte entries = 4 slots per core.
    struct PerCoreAdapter
    {
        FtraceLike &f;
        void record(uint16_t core, uint32_t thread, uint64_t ts,
                    uint32_t) { f.record(core, thread, ts, 1000); }
        Dump dump() { return f.dump(); }
    } adapter{percore};
    run("percore", adapter, 16);

    // BTrace with the same 16-slot global capacity (16 blocks of one
    // entry each... here: 16 KB total, 1 KB blocks are too small for
    // 1000-byte payloads + headers, so use 2 KB blocks/one entry).
    BTraceConfig bcfg;
    bcfg.blockSize = 2048;
    bcfg.numBlocks = 16;
    bcfg.activeBlocks = 4;
    bcfg.cores = 4;
    BTrace bt(bcfg);
    struct BtAdapter
    {
        BTrace &b;
        void record(uint16_t core, uint32_t thread, uint64_t ts,
                    uint32_t) { b.record(core, thread, ts, 1000); }
        Dump dump() { return b.dump(); }
    } btAdapter{bt};
    run("BTrace", btAdapter, 16);

    std::printf("\nExpected shape: the per-core row loses ts-12/ts-14 "
                "(and the old ts-2..9\nregion) to the little core's "
                "wrap-around — effectivity ~37.5%% as in the\npaper — "
                "while BTrace retains a much longer suffix of the same "
                "20 events.\n");
    return 0;
}
