/**
 * @file
 * Kernel-vs-userspace ablation (§2.2, §1): ftrace's correctness rests
 * on disabling preemption around every write — nearly free in the
 * kernel, but from userspace it costs kernel round-trips that exceed
 * the tracing latency itself. BTrace needs no preemption control at
 * all (block skipping tolerates preempted writers), so its write path
 * is identical in both worlds. This bench quantifies the §2.2 claim
 * with the cost model.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

namespace {

double
latencyGeo(TracerKind kind, const CostModel &model, const BenchArgs &args)
{
    TracerFactoryOptions fo;
    fo.cost = &model;
    auto tracer = makeTracer(kind, fo);
    ReplayOptions opt;
    opt.durationSec = args.duration > 0 ? args.duration : 10.0;
    opt.rateScale = args.scale;
    opt.seed = args.seed;
    opt.keepProducedLog = false;
    const ReplayResult res =
        replay(*tracer, workloadByName("Browser"), opt);
    return res.latencyNs.geoMean();
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation", "tracing from the kernel vs from userspace",
           args);

    const CostModel kernel = CostModel::def();

    // Userspace variant of the preempt-off discipline: the toggle
    // becomes a pair of kernel round-trips (sched_setattr-style or a
    // futex-based protocol), hundreds of ns each.
    CostModel user = CostModel::def();
    user.preemptToggle = 2 * 450.0;

    TextTable table;
    table.header({"write path", "geo-mean latency (ns)", "note"});
    const double bt = latencyGeo(TracerKind::BTrace, kernel, args);
    table.row({"BTrace (kernel or userspace)", fmtDouble(bt, 0),
               "no preemption control needed (§3.4)"});
    const double ftk = latencyGeo(TracerKind::Ftrace, kernel, args);
    table.row({"ftrace discipline, in-kernel", fmtDouble(ftk, 0),
               "preempt_disable ~ a few ns"});
    const double ftu = latencyGeo(TracerKind::Ftrace, user, args);
    table.row({"ftrace discipline, userspace", fmtDouble(ftu, 0),
               "kernel round-trips per write"});
    std::printf("%s", table.render().c_str());

    std::printf("\nftrace-in-userspace pays %.1fx the BTrace write "
                "path — \"often exceeding\nthe buffer tracing latency "
                "itself\" (§1); BTrace is unchanged, which is why\nit "
                "also serves userspace frameworks and multi-server "
                "microkernel OSes.\n", ftu / bt);
    return 0;
}
