/**
 * @file
 * Fig 10 reproduction (§5.1 self comparison): size of BTrace's latest
 * fragment as the number of active blocks A sweeps from 1x to 64x the
 * core count, under core-level and thread-level replay, across the
 * workload catalog (box-plot five-number summaries). The expected
 * sweet spot is A = 16 x C.
 */

#include <cstdio>

#include "analysis/continuity.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/stats.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    // 7 multipliers x 2 modes x 21 workloads: default half-rate keeps
    // the sweep under a few minutes; --scale=1 for the paper-exact
    // volume.
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.5);
    banner("Fig 10", "latest fragment vs number of active blocks", args);

    const std::size_t multipliers[] = {1, 2, 4, 8, 16, 32, 64};

    for (const ReplayMode mode :
         {ReplayMode::CoreLevel, ReplayMode::ThreadLevel}) {
        std::printf("\n%s replay (latest fragment MB: "
                    "min/q1/median/q3/max over %zu workloads)\n",
                    mode == ReplayMode::CoreLevel ? "core-level"
                                                  : "thread-level",
                    workloadCatalog().size());
        for (const std::size_t mult : multipliers) {
            SampleSet frag_mb;
            for (const Workload &w : workloadCatalog()) {
                TracerFactoryOptions fo;  // 12 MB, 4 KB blocks
                fo.activeBlocks = mult * fo.cores;
                auto tracer = makeTracer(TracerKind::BTrace, fo);
                ReplayOptions opt;
                opt.mode = mode;
                opt.rateScale = args.scale;
                opt.durationSec = args.duration;
                opt.seed = args.seed;
                const ReplayResult res = replay(*tracer, w, opt);
                const ContinuityReport rep = analyzeContinuity(res);
                frag_mb.add(rep.latestFragmentBytes / (1024.0 * 1024.0));
            }
            std::printf("  A=%2zuxC (%4zu): %5.1f /%5.1f /%5.1f /%5.1f "
                        "/%5.1f\n",
                        mult, mult * 12, frag_mb.percentile(0.0),
                        frag_mb.percentile(0.25), frag_mb.percentile(0.5),
                        frag_mb.percentile(0.75), frag_mb.percentile(1.0));
            std::fflush(stdout);
        }
    }
    std::printf("\nExpected shape: small A loses capacity to premature "
                "closing (worse under\nthread-level replay); large A "
                "caps the effectivity ratio at ~1-A/N (at\n64xC the "
                "theoretical bound is 9 MB of 12 MB); the sweet spot "
                "is ~16xC (§5.1).\n");
    return 0;
}
