/**
 * @file
 * §7 future-work extension: many-core servers. "Most tasks in servers
 * are executed on only a few cores but tend to migrate frequently
 * across cores", so per-core tracers must provision every core's
 * buffer while only a handful produce at any moment. This ablation
 * runs a migrating-task workload over 32..256 cores with a fixed
 * total buffer and compares the retained volume of BTrace against the
 * per-core baseline.
 */

#include <cstdio>

#include "analysis/continuity.h"
#include "baselines/ftrace_like.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/prng.h"
#include "core/btrace.h"
#include "sim/replay.h"

using namespace btrace;

namespace {

/**
 * A few hot tasks migrate across @p cores cores: each task runs on a
 * core for a short burst, then moves. Returns the produced log.
 */
std::vector<ProducedEvent>
runMigratingTasks(Tracer &tracer, unsigned cores, uint64_t events,
                  uint64_t seed)
{
    Prng rng(seed);
    constexpr unsigned kTasks = 4;
    std::array<uint16_t, kTasks> task_core{};
    for (unsigned t = 0; t < kTasks; ++t)
        task_core[t] = uint16_t(rng.nextBounded(cores));

    std::vector<ProducedEvent> produced;
    produced.reserve(events);
    for (uint64_t s = 1; s <= events; ++s) {
        const auto task = unsigned(rng.nextBounded(kTasks));
        if (rng.chance(0.002))  // frequent migration
            task_core[task] = uint16_t(rng.nextBounded(cores));
        const uint16_t core = task_core[task];
        tracer.record(core, task, s, 48);
        produced.push_back(ProducedEvent{
            s, uint32_t(EntryLayout::normalSize(48)), float(s), core,
            task, false});
    }
    return produced;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation", "many-core servers with migrating tasks (§7)",
           args);

    const std::size_t capacity = 8u << 20;
    const auto events = uint64_t(600000 * args.scale);

    TextTable table;
    table.header({"cores", "tracer", "retained", "latest fragment",
                  "loss rate"});
    for (const unsigned cores : {32u, 64u, 128u, 256u}) {
        for (int which = 0; which < 2; ++which) {
            std::unique_ptr<Tracer> tracer;
            if (which == 0) {
                BTraceConfig cfg;
                cfg.blockSize = 4096;
                cfg.activeBlocks = 2 * cores;
                const std::size_t raw = capacity / cfg.blockSize;
                cfg.numBlocks = raw - raw % cfg.activeBlocks;
                cfg.cores = cores;
                tracer = std::make_unique<BTrace>(cfg);
            } else {
                FtraceConfig cfg;
                cfg.capacityBytes = capacity;
                cfg.cores = cores;
                tracer = std::make_unique<FtraceLike>(cfg);
            }
            const auto produced = runMigratingTasks(
                *tracer, cores, events, args.seed);
            const ContinuityReport rep = analyzeContinuity(
                produced, tracer->dump(), tracer->capacityBytes());
            table.row({std::to_string(cores), tracer->name(),
                       humanBytes(rep.retainedBytes),
                       humanBytes(rep.latestFragmentBytes),
                       fmtDouble(rep.lossRate, 2)});
        }
        std::fflush(stdout);
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: the per-core tracer's useful "
                "retention shrinks ~1/cores\n(only the few cores the "
                "tasks currently occupy hold fresh data), while\n"
                "BTrace keeps the whole buffer productive regardless "
                "of core count.\n");
    return 0;
}
