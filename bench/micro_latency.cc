/**
 * @file
 * Wall-clock microbenchmarks (google-benchmark) of the five tracers'
 * record() paths with real threads. Complements the cost-model
 * latencies of Table 2 / Fig 11 with silicon numbers; on this
 * container (1 CPU) absolute values are indicative, but the ordering
 * of the cheap paths (BTrace/ftrace vs framework-heavy designs) and
 * the contention penalty of the global buffer remain visible.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/replay.h"

using namespace btrace;

namespace {

TracerFactoryOptions
microFactory()
{
    TracerFactoryOptions fo;
    fo.capacityBytes = 8u << 20;
    fo.cores = 12;
    return fo;
}

void
benchRecord(benchmark::State &state, TracerKind kind)
{
    static std::unique_ptr<Tracer> tracer;
    static std::atomic<uint64_t> stamp{0};
    if (state.thread_index() == 0) {
        tracer = makeTracer(kind, microFactory());
        stamp.store(0);
    }

    const auto core = uint16_t(state.thread_index() % 12);
    const auto thread = uint32_t(state.thread_index());
    for (auto _ : state) {
        const uint64_t s =
            stamp.fetch_add(1, std::memory_order_relaxed) + 1;
        benchmark::DoNotOptimize(tracer->record(core, thread, s, 64));
    }
    state.SetItemsProcessed(state.iterations());

    if (state.thread_index() == 0)
        tracer.reset();
}

} // namespace

BENCHMARK_CAPTURE(benchRecord, BTrace, TracerKind::BTrace);
BENCHMARK_CAPTURE(benchRecord, BBQ, TracerKind::Bbq);
BENCHMARK_CAPTURE(benchRecord, ftrace, TracerKind::Ftrace);
BENCHMARK_CAPTURE(benchRecord, LTTng, TracerKind::Lttng);
BENCHMARK_CAPTURE(benchRecord, VTrace, TracerKind::Vtrace);

BENCHMARK_CAPTURE(benchRecord, BTrace_4T, TracerKind::BTrace)
    ->Threads(4);
BENCHMARK_CAPTURE(benchRecord, BBQ_4T, TracerKind::Bbq)->Threads(4);
BENCHMARK_CAPTURE(benchRecord, LTTng_4T, TracerKind::Lttng)->Threads(4);

// Custom main instead of BENCHMARK_MAIN(): results always land in
// BENCH_latency.json (same convention as the other bench binaries)
// unless the caller passes --benchmark_out explicitly, and the shared
// --obs-* / --quick flags from run_all.sh are accepted rather than
// tripping google-benchmark's unrecognized-argument check.
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    bool has_out = false;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
        if (i > 0 && (std::strncmp(argv[i], "--obs-", 6) == 0 ||
                      std::strcmp(argv[i], "--quick") == 0))
            continue;  // harness-wide flags; no-ops here
        args.push_back(argv[i]);
    }
    std::string out_flag = "--benchmark_out=BENCH_latency.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
