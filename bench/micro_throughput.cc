/**
 * @file
 * Real-thread multi-producer throughput bench: single-entry fast path
 * vs thread-local lease batching (§4.1 amortized).
 *
 * Unlike the replay benches (virtual time, one real thread), this
 * binary spawns real producer threads that hammer one BTrace instance
 * and measures wall-clock ops/sec per thread plus sampled per-op
 * latency (p50/p99). Threads deliberately share cores two-to-one so
 * the single-entry mode pays genuine FAA contention on the shared
 * Allocated/Confirmed words; the leased mode pays the same RMWs once
 * per batch. The sharedRmws counter delta makes the amortization
 * directly visible (RMWs per event), and a BTraceAuditor pass after
 * each mode proves the accounting survived the contention.
 *
 * Exit status is nonzero when either mode records nothing or an audit
 * fails, so CI can run it as a Release-mode smoke test. Results land
 * in BENCH_throughput.json (override with --json=PATH).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/auditor.h"
#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/sampler.h"

namespace btrace {
namespace {

struct Flags
{
    unsigned threads = 8;
    double secs = 2.0;
    uint32_t leaseEntries = 32;
    uint32_t payload = 48;
    std::string jsonPath = "BENCH_throughput.json";
    bool quick = false;
    double obsInterval = 0.0;  //!< sampler period; 0 = off
    std::string obsJson;       //!< obs JSON-lines path; empty = off
    std::string backend;       //!< storage backend; empty = build default
};

Flags
parseFlags(int argc, char **argv)
{
    Flags f;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *name) -> const char * {
            const std::size_t len = std::strlen(name);
            if (std::strncmp(a, name, len) == 0 && a[len] == '=')
                return a + len + 1;
            return nullptr;
        };
        if (const char *v = val("--threads")) {
            f.threads = unsigned(std::atoi(v));
        } else if (const char *v2 = val("--secs")) {
            f.secs = std::atof(v2);
        } else if (const char *v3 = val("--lease")) {
            f.leaseEntries = uint32_t(std::atoi(v3));
        } else if (const char *v4 = val("--payload")) {
            f.payload = uint32_t(std::atoi(v4));
        } else if (const char *v5 = val("--json")) {
            f.jsonPath = v5;
        } else if (const char *v6 = val("--obs-interval")) {
            f.obsInterval = std::atof(v6);
        } else if (const char *v7 = val("--obs-json")) {
            f.obsJson = v7;
        } else if (const char *v8 = val("--backend")) {
            f.backend = v8;
        } else if (std::strcmp(a, "--quick") == 0) {
            f.quick = true;
        } else if (std::strcmp(a, "--help") == 0) {
            std::printf("flags: --threads=N --secs=S --lease=N "
                        "--payload=B --json=PATH --obs-interval=SEC "
                        "--obs-json=PATH --backend=private|shm|file "
                        "--quick\n");
            std::exit(0);
        }
    }
    if (f.threads < 1)
        f.threads = 1;
    if (f.quick)
        f.secs = std::min(f.secs, 0.5);
    return f;
}

/** Results of one mode run. */
struct ModeResult
{
    std::vector<uint64_t> opsPerThread;
    uint64_t totalOps = 0;
    double elapsedSec = 0.0;
    double opsPerSec = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    uint64_t sharedRmws = 0;       //!< counter delta across the run
    double rmwsPerOp = 0.0;
    bool auditOk = false;
    std::string auditSummary;
};

double
percentile(std::vector<double> &samples, double q)
{
    if (samples.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * double(samples.size() - 1));
    std::nth_element(samples.begin(), samples.begin() + long(idx),
                     samples.end());
    return samples[idx];
}

using Clock = std::chrono::steady_clock;

constexpr int sampleEvery = 64;

/** Spawn producers, run @p body per op until the deadline, audit. */
template <typename PerThread>
ModeResult
runMode(BTrace &bt, const Flags &f, PerThread &&perThread)
{
    ModeResult r;
    r.opsPerThread.assign(f.threads, 0);
    std::vector<std::vector<double>> samples(f.threads);
    std::atomic<bool> stop{false};
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};

    const uint64_t rmws0 = bt.countersSnapshot().sharedRmws;
    std::vector<std::thread> producers;
    producers.reserve(f.threads);
    for (unsigned i = 0; i < f.threads; ++i) {
        producers.emplace_back([&, i]() {
            samples[i].reserve(1 << 16);
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            r.opsPerThread[i] =
                perThread(i, stop, samples[i]);
        });
    }
    while (ready.load() != f.threads)
        std::this_thread::yield();
    const auto t0 = Clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::duration<double>(f.secs));
    stop.store(true, std::memory_order_release);
    for (std::thread &t : producers)
        t.join();
    r.elapsedSec = std::chrono::duration<double>(Clock::now() - t0)
                       .count();
    r.sharedRmws = bt.countersSnapshot().sharedRmws - rmws0;

    for (uint64_t ops : r.opsPerThread)
        r.totalOps += ops;
    r.opsPerSec = r.elapsedSec > 0 ? double(r.totalOps) / r.elapsedSec
                                   : 0.0;
    r.rmwsPerOp = r.totalOps > 0
                      ? double(r.sharedRmws) / double(r.totalOps)
                      : 0.0;

    std::vector<double> all;
    for (auto &s : samples)
        all.insert(all.end(), s.begin(), s.end());
    r.p50Ns = percentile(all, 0.50);
    r.p99Ns = percentile(all, 0.99);

    const AuditReport rep = BTraceAuditor(bt).audit();
    r.auditOk = rep.ok();
    r.auditSummary = rep.summary();
    return r;
}

ModeResult
runSingle(BTrace &bt, const Flags &f, unsigned cores)
{
    return runMode(bt, f, [&](unsigned i, std::atomic<bool> &stop,
                              std::vector<double> &lat) -> uint64_t {
        const auto core = uint16_t(i % cores);
        const uint32_t tid = 1000 + i;
        uint64_t stamp = uint64_t(i) << 40;
        uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const bool timed = (ops % sampleEvery) == 0;
            const auto s0 = timed ? Clock::now() : Clock::time_point{};
            if (bt.record(core, tid, ++stamp, f.payload))
                ++ops;
            if (timed) {
                lat.push_back(std::chrono::duration<double, std::nano>(
                                  Clock::now() - s0)
                                  .count());
            }
        }
        return ops;
    });
}

ModeResult
runLeased(BTrace &bt, const Flags &f, unsigned cores)
{
    return runMode(bt, f, [&](unsigned i, std::atomic<bool> &stop,
                              std::vector<double> &lat) -> uint64_t {
        const auto core = uint16_t(i % cores);
        const uint32_t tid = 2000 + i;
        uint64_t stamp = uint64_t(i) << 40;
        uint64_t ops = 0;
        Lease lease;
        while (!stop.load(std::memory_order_acquire)) {
            const bool timed = (ops % sampleEvery) == 0;
            const auto s0 = timed ? Clock::now() : Clock::time_point{};
            WriteTicket t = lease.closed()
                                ? WriteTicket{}
                                : lease.allocate(f.payload);
            if (!t.ok()) {
                lease.close();
                lease = bt.lease(core, tid, f.payload, f.leaseEntries);
                if (!lease.ok()) {
                    std::this_thread::yield();
                    continue;
                }
                t = lease.allocate(f.payload);
                if (!t.ok())
                    continue;
            }
            writeNormal(t.dst, ++stamp, core, tid, 0, f.payload);
            lease.confirm(t);
            ++ops;
            if (timed) {
                lat.push_back(std::chrono::duration<double, std::nano>(
                                  Clock::now() - s0)
                                  .count());
            }
        }
        lease.close();
        return ops;
    });
}

void
printMode(const char *name, const ModeResult &r)
{
    std::printf("%-7s %12.0f ops/s  p50 %7.0f ns  p99 %8.0f ns  "
                "%.3f shared RMWs/op  audit %s\n",
                name, r.opsPerSec, r.p50Ns, r.p99Ns, r.rmwsPerOp,
                r.auditOk ? "ok" : "FAILED");
    std::printf("        per-thread ops:");
    for (uint64_t ops : r.opsPerThread)
        std::printf(" %llu", static_cast<unsigned long long>(ops));
    std::printf("\n");
    if (!r.auditOk)
        std::printf("%s\n", r.auditSummary.c_str());
}

void
jsonMode(JsonWriter &jw, const char *name, const ModeResult &r)
{
    jw.beginObject(name);
    jw.field("total_ops", static_cast<unsigned long long>(r.totalOps));
    jw.field("ops_per_sec", r.opsPerSec);
    jw.field("p50_ns", r.p50Ns);
    jw.field("p99_ns", r.p99Ns);
    jw.field("shared_rmws",
             static_cast<unsigned long long>(r.sharedRmws));
    jw.field("rmws_per_op", r.rmwsPerOp);
    jw.field("audit_ok", r.auditOk);
    jw.beginArray("ops_per_thread");
    for (const uint64_t ops : r.opsPerThread)
        jw.element(static_cast<unsigned long long>(ops));
    jw.endArray();
    jw.endObject();
}

int
run(int argc, char **argv)
{
    const Flags f = parseFlags(argc, argv);

    // Two producers per core: the single-entry mode then contends on
    // each block's shared Allocated/Confirmed words for real.
    const unsigned cores = std::max(1u, (f.threads + 1) / 2);

    auto make = [&]() {
        BTraceConfig cfg;
        cfg.blockSize = 1 << 16;
        cfg.cores = cores;
        cfg.activeBlocks = 16 * cores;
        cfg.numBlocks = 8 * cfg.activeBlocks;
        if (!f.backend.empty() &&
            !parseStorageKind(f.backend, cfg.storage)) {
            std::fprintf(stderr, "unknown backend '%s'\n",
                         f.backend.c_str());
            std::exit(2);
        }
        return cfg;
    };

    std::printf("micro_throughput — %u threads on %u cores, "
                "payload %u B, lease %u entries, %.2f s per mode, "
                "%s storage\n",
                f.threads, cores, f.payload, f.leaseEntries, f.secs,
                storageKindName(make().storage));

    // Attach the observability plane around one mode run when asked:
    // latency histograms via the Tracer-level observer, counter rates
    // and derived gauges via BTraceObs, streamed to --obs-json (the
    // second mode appends, so one file carries both labelled runs).
    bool append = false;
    const auto withObs = [&](BTrace &bt, const char *mode,
                             auto &&body) {
        if (f.obsJson.empty() && f.obsInterval <= 0)
            return body();
        TracerObserver observer;
        bt.attachObserver(&observer);
        BTraceObs obs(bt, &observer);
        SamplerOptions so;
        so.intervalSec = f.obsInterval > 0 ? f.obsInterval : 1.0;
        so.jsonPath = f.obsJson;
        so.appendJson = append;
        so.labels = {{"bench", "micro_throughput"}, {"mode", mode}};
        append = true;
        StatsSampler sampler(obs.registry(), so);
        sampler.setHealthSource([&obs]() { return obs.healthInput(); });
        if (f.obsInterval > 0)
            sampler.start();
        const ModeResult r = body();
        if (f.obsInterval > 0)
            sampler.stop();
        else
            sampler.sampleOnce();
        bt.attachObserver(nullptr);
        return r;
    };

    // Fresh instance per mode so counters and audits are independent.
    BTrace single(make());
    const ModeResult rs = withObs(single, "single", [&]() {
        return runSingle(single, f, cores);
    });
    printMode("single", rs);

    BTrace leased(make());
    const ModeResult rl = withObs(leased, "leased", [&]() {
        return runLeased(leased, f, cores);
    });
    printMode("leased", rl);

    const double speedup =
        rs.opsPerSec > 0 ? rl.opsPerSec / rs.opsPerSec : 0.0;
    std::printf("leased/single throughput ratio: %.2fx "
                "(RMWs/op %.3f -> %.3f)\n",
                speedup, rs.rmwsPerOp, rl.rmwsPerOp);

    JsonWriter jw(f.jsonPath);
    if (!jw.ok()) {
        std::fprintf(stderr, "cannot write %s\n", f.jsonPath.c_str());
        return 1;
    }
    jw.beginObject();
    jw.field("threads", static_cast<unsigned long long>(f.threads));
    jw.field("cores", static_cast<unsigned long long>(cores));
    jw.field("payload_bytes",
             static_cast<unsigned long long>(f.payload));
    jw.field("lease_entries",
             static_cast<unsigned long long>(f.leaseEntries));
    jw.field("seconds_per_mode", f.secs);
    jw.field("speedup_leased_over_single", speedup);
    jw.beginObject("modes");
    jsonMode(jw, "single", rs);
    jsonMode(jw, "leased", rl);
    jw.endObject();
    jw.endObject();
    jw.close();
    std::printf("wrote %s\n", f.jsonPath.c_str());

    if (rs.totalOps == 0 || rl.totalOps == 0) {
        std::fprintf(stderr, "FAIL: a mode recorded zero events\n");
        return 1;
    }
    if (!rs.auditOk || !rl.auditOk) {
        std::fprintf(stderr, "FAIL: auditor found violations\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace btrace

int
main(int argc, char **argv)
{
    return btrace::run(argc, argv);
}
