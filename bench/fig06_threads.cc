/**
 * @file
 * Fig 6 reproduction: distribution of distinct trace-producing threads
 * per core — total over the 30 s run and within single seconds —
 * measured from the generated thread-level schedules of every
 * workload (box-plot five-number summaries over the 12 cores).
 */

#include <cstdio>

#include <set>

#include "bench_util.h"
#include "common/format.h"
#include "common/stats.h"
#include "sim/schedule.h"
#include "workloads/catalog.h"

using namespace btrace;

namespace {

std::string
fiveNum(SampleSet &s)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%4.0f/%4.0f/%4.0f/%4.0f/%4.0f",
                  s.percentile(0.0), s.percentile(0.25),
                  s.percentile(0.5), s.percentile(0.75),
                  s.percentile(1.0));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig 6", "distinct producing threads per core", args);

    const double duration = args.duration > 0 ? args.duration : 30.0;

    TextTable table;
    table.header({"workload", "total/30s (min/q1/med/q3/max)",
                  "per-second (min/q1/med/q3/max)"});
    for (const Workload &w : workloadCatalog()) {
        const SliceSchedule s = SliceSchedule::build(
            w, ReplayMode::ThreadLevel, duration, args.seed);

        SampleSet totals;
        SampleSet per_second;
        for (unsigned c = 0; c < kCores; ++c) {
            totals.add(double(s.distinctThreads(uint16_t(c))));
            // Count distinct threads in each one-second window.
            for (double w0 = 0.0; w0 + 1.0 <= duration; w0 += 1.0) {
                std::set<uint32_t> seen;
                double t = w0;
                while (t < w0 + 1.0) {
                    const auto run = s.runningAt(uint16_t(c), t);
                    seen.insert(run.thread);
                    t = run.sliceEnd;
                }
                per_second.add(double(seen.size()));
            }
        }
        table.row({w.name, fiveNum(totals), fiveNum(per_second)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: under load, ~30 active threads per "
                "core per second and\nhundreds of distinct threads over "
                "30 s (heavy oversubscription, §2.2);\nLockScr/Music "
                "stay far lower.\n");
    return 0;
}
