/**
 * @file
 * Table 2 reproduction: latest continuous entries (MB), loss rate,
 * fragment count, and geometric-mean recording latency for all five
 * tracers across the 21 workloads (thread-level replay, 12 MB buffer,
 * 4 KB blocks, A = 16 x C — the §5 setup).
 */

#include <cstdio>

#include "analysis/continuity.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Table 2", "tracer comparison across 21 workloads", args);

    std::vector<std::string> names;
    for (const Workload &w : workloadCatalog())
        names.push_back(w.name);

    std::vector<TracerMetrics> rows;
    for (const TracerKind kind : allTracerKinds()) {
        TracerMetrics row;
        row.tracer = tracerKindName(kind);
        for (const Workload &w : workloadCatalog()) {
            TracerFactoryOptions fo;  // 12 MB, 4 KB blocks, A = 16C
            auto tracer = makeTracer(kind, fo);
            ReplayOptions opt;
            opt.mode = ReplayMode::ThreadLevel;
            opt.rateScale = args.scale;
            opt.durationSec = args.duration;
            opt.seed = args.seed;
            ReplayResult res = replay(*tracer, w, opt);
            const ContinuityReport rep = analyzeContinuity(res);
            appendMetrics(row, rep, res.latencyNs.geoMean());
            std::fprintf(stderr, "  [%s/%s] done\n",
                         row.tracer.c_str(), w.name.c_str());
        }
        rows.push_back(std::move(row));
    }

    std::printf("%s", renderTable2(names, rows).c_str());

    // §5.2 headline numbers.
    const auto &bt = rows[0];
    const auto &bbq = rows[1];
    const auto &ft = rows[2];
    const double bt_frag = geoMean(bt.latestFragmentMb, 1e-3);
    const double bbq_frag = geoMean(bbq.latestFragmentMb, 1e-3);
    const double ft_frag = geoMean(ft.latestFragmentMb, 1e-3);
    const double bt_lat = geoMean(bt.latencyGeoNs, 1e-3);
    const double ft_lat = geoMean(ft.latencyGeoNs, 1e-3);
    std::printf("== Headline comparison (paper §5.2) ==\n");
    std::printf("latest fragment: BTrace %.1f MB vs BBQ %.1f MB "
                "(-%.1f%%; paper: -6.9%%)\n",
                bt_frag, bbq_frag, 100.0 * (1.0 - bt_frag / bbq_frag));
    std::printf("latest fragment: BTrace/ftrace = %.2fx "
                "(paper: ~2x)\n", bt_frag / ft_frag);
    std::printf("latency: BTrace %.0f ns vs ftrace %.0f ns "
                "(-%.1f%%; paper: 53 vs 63 ns, -20%%)\n",
                bt_lat, ft_lat, 100.0 * (1.0 - bt_lat / ft_lat));
    return 0;
}
