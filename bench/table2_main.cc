/**
 * @file
 * Table 2 reproduction: latest continuous entries (MB), loss rate,
 * fragment count, and geometric-mean recording latency for all five
 * tracers across the 21 workloads (thread-level replay, 12 MB buffer,
 * 4 KB blocks, A = 16 x C — the §5 setup).
 */

#include <cstdio>
#include <memory>

#include "analysis/continuity.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/stats.h"
#include "core/btrace.h"
#include "obs/btrace_metrics.h"
#include "obs/sampler.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Table 2", "tracer comparison across 21 workloads", args);

    std::vector<std::string> names;
    for (const Workload &w : workloadCatalog())
        names.push_back(w.name);

    std::vector<TracerMetrics> rows;
    bool obsAppend = false;
    for (const TracerKind kind : allTracerKinds()) {
        TracerMetrics row;
        row.tracer = tracerKindName(kind);
        for (const Workload &w : workloadCatalog()) {
            TracerFactoryOptions fo;  // 12 MB, 4 KB blocks, A = 16C
            auto tracer = makeTracer(kind, fo);

            // With --obs-json, every run appends one labelled obs
            // sample (counters, gauges, sampled write latency) so the
            // whole table leaves a machine-readable health record.
            TracerObserver observer;
            std::unique_ptr<BTraceObs> obs;
            std::unique_ptr<StatsSampler> sampler;
            if (!args.obsJson.empty()) {
                tracer->attachObserver(&observer);
                if (auto *bt = dynamic_cast<BTrace *>(tracer.get()))
                    obs = std::make_unique<BTraceObs>(*bt, &observer);
                SamplerOptions so;
                so.intervalSec =
                    args.obsInterval > 0 ? args.obsInterval : 1.0;
                so.jsonPath = args.obsJson;
                so.appendJson = obsAppend;
                so.labels = {{"bench", "table2"},
                             {"tracer", row.tracer},
                             {"workload", w.name}};
                obsAppend = true;
                if (obs) {
                    sampler = std::make_unique<StatsSampler>(
                        obs->registry(), so);
                    sampler->setHealthSource(
                        [&obs]() { return obs->healthInput(); });
                }
                if (sampler && args.obsInterval > 0)
                    sampler->start();
            }

            ReplayOptions opt;
            opt.mode = ReplayMode::ThreadLevel;
            opt.rateScale = args.scale;
            opt.durationSec = args.duration;
            opt.seed = args.seed;
            ReplayResult res = replay(*tracer, w, opt);
            if (sampler) {
                if (args.obsInterval > 0)
                    sampler->stop();
                else
                    sampler->sampleOnce();
            }
            const ContinuityReport rep = analyzeContinuity(res);
            appendMetrics(row, rep, res.latencyNs.geoMean());
            std::fprintf(stderr, "  [%s/%s] done\n",
                         row.tracer.c_str(), w.name.c_str());
        }
        rows.push_back(std::move(row));
    }

    std::printf("%s", renderTable2(names, rows).c_str());

    // §5.2 headline numbers.
    const auto &bt = rows[0];
    const auto &bbq = rows[1];
    const auto &ft = rows[2];
    const double bt_frag = geoMean(bt.latestFragmentMb, 1e-3);
    const double bbq_frag = geoMean(bbq.latestFragmentMb, 1e-3);
    const double ft_frag = geoMean(ft.latestFragmentMb, 1e-3);
    const double bt_lat = geoMean(bt.latencyGeoNs, 1e-3);
    const double ft_lat = geoMean(ft.latencyGeoNs, 1e-3);
    std::printf("== Headline comparison (paper §5.2) ==\n");
    std::printf("latest fragment: BTrace %.1f MB vs BBQ %.1f MB "
                "(-%.1f%%; paper: -6.9%%)\n",
                bt_frag, bbq_frag, 100.0 * (1.0 - bt_frag / bbq_frag));
    std::printf("latest fragment: BTrace/ftrace = %.2fx "
                "(paper: ~2x)\n", bt_frag / ft_frag);
    std::printf("latency: BTrace %.0f ns vs ftrace %.0f ns "
                "(-%.1f%%; paper: 53 vs 63 ns, -20%%)\n",
                bt_lat, ft_lat, 100.0 * (1.0 - bt_lat / ft_lat));

    JsonWriter jw("BENCH_main.json");
    if (!jw.ok()) {
        std::fprintf(stderr, "cannot write BENCH_main.json\n");
        return 1;
    }
    jw.beginObject();
    jw.field("scale", args.scale);
    jw.field("duration_sec", args.duration);
    jw.field("seed", static_cast<unsigned long long>(args.seed));
    jw.beginArray("workloads");
    for (const std::string &n : names)
        jw.element(n);
    jw.endArray();
    jw.beginObject("tracers");
    for (const TracerMetrics &row : rows) {
        jw.beginObject(row.tracer.c_str());
        const auto metric = [&jw](const char *key,
                                  const std::vector<double> &vals) {
            jw.beginArray(key);
            for (const double v : vals)
                jw.element(v);
            jw.endArray();
        };
        metric("latest_fragment_mb", row.latestFragmentMb);
        metric("loss_rate", row.lossRate);
        metric("fragments", row.fragments);
        metric("latency_geo_ns", row.latencyGeoNs);
        jw.endObject();
    }
    jw.endObject();
    jw.beginObject("headline");
    jw.field("btrace_fragment_mb", bt_frag);
    jw.field("bbq_fragment_mb", bbq_frag);
    jw.field("ftrace_fragment_mb", ft_frag);
    jw.field("btrace_latency_ns", bt_lat);
    jw.field("ftrace_latency_ns", ft_lat);
    jw.endObject();
    jw.endObject();
    jw.close();
    std::printf("wrote BENCH_main.json\n");
    return 0;
}
