/**
 * @file
 * Fig 11 reproduction: recording-latency CDFs for the eShop-2 workload
 * and an overall CDF pooled across representative workloads, per
 * tracer (model nanoseconds; see DESIGN.md §2 for the cost-model
 * substitution).
 */

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

namespace {

constexpr double axisMaxNs = 500.0;
constexpr std::size_t buckets = 100;

Histogram
latencyHistogram(TracerKind kind, const std::vector<const Workload *> &ws,
                 const BenchArgs &args)
{
    Histogram h(axisMaxNs, buckets);
    for (const Workload *w : ws) {
        TracerFactoryOptions fo;
        auto tracer = makeTracer(kind, fo);
        ReplayOptions opt;
        opt.mode = ReplayMode::ThreadLevel;
        opt.rateScale = args.scale;
        opt.durationSec = args.duration;
        opt.seed = args.seed;
        opt.keepProducedLog = false;  // only latency needed
        const ReplayResult res = replay(*tracer, *w, opt);
        for (const double v : res.latencyNs.values())
            h.add(v);
    }
    return h;
}

void
printCdf(const char *title, const std::vector<const Workload *> &ws,
         const BenchArgs &args)
{
    std::printf("\n(%s) CDF%%ile at latency (ns):\n", title);
    std::printf("%-8s", "tracer");
    for (double ns = 50; ns <= axisMaxNs; ns += 50)
        std::printf(" %5.0f", ns);
    std::printf("   p50   p99\n");
    for (const TracerKind kind : allTracerKinds()) {
        const Histogram h = latencyHistogram(kind, ws, args);
        std::printf("%-8s", tracerKindName(kind).c_str());
        for (double ns = 50; ns <= axisMaxNs; ns += 50) {
            const auto b = std::size_t(ns / axisMaxNs * buckets) - 1;
            std::printf(" %4.0f%%", 100.0 * h.cdfAt(b));
        }
        std::printf("  %4.0f  %4.0f\n", h.quantile(0.5),
                    h.quantile(0.99));
        std::fflush(stdout);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.5);
    banner("Fig 11", "recording latency CDF", args);

    const std::vector<const Workload *> eshop2 = {
        &workloadByName("eShop-2")};
    printCdf("a: eShop-2 workload", eshop2, args);

    const std::vector<const Workload *> overall = {
        &workloadByName("Desktop"), &workloadByName("LockScr"),
        &workloadByName("IM"), &workloadByName("Video-1"),
        &workloadByName("Game-1"), &workloadByName("eShop-2")};
    printCdf("b: overall", overall, args);

    std::printf("\nExpected shape: BTrace lowest at p50 and p99; ftrace "
                "close behind;\nLTTng/VTrace shifted right by framework "
                "overhead; BBQ worst, with the\neShop-2 tail stretched "
                "by contention and blocking (§5.2, Fig 11).\n");
    return 0;
}
