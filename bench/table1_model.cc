/**
 * @file
 * Table 1 reproduction: the analytical comparison of BTrace with the
 * state-of-the-art tracers (contention, utilization, effectivity
 * ratio, resizing, availability), each claim validated empirically
 * with a controlled micro-experiment.
 */

#include <cstdio>

#include "analysis/continuity.h"
#include "baselines/bbq.h"
#include "baselines/lttng_like.h"
#include "bench_util.h"
#include "common/format.h"
#include "core/btrace.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

namespace {

/** Utilization under a single hot core (validates the 1/C vs
 *  1-(C-1)/N column). */
double
singleHotCoreUtilization(TracerKind kind)
{
    TracerFactoryOptions fo;
    fo.capacityBytes = 6u << 20;
    auto tracer = makeTracer(kind, fo);

    Workload solo = workloadByName("IM");
    solo.name = "solo";
    for (unsigned c = 0; c < kCores; ++c)
        solo.ratePerSec[c] = c == 0 ? 12000.0 : 0.0;

    ReplayOptions opt;
    opt.mode = ReplayMode::CoreLevel;
    opt.durationSec = 8.0;
    const ReplayResult res = replay(*tracer, solo, opt);
    const ContinuityReport rep = analyzeContinuity(res);
    return rep.retainedBytes / double(res.capacityBytes);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Table 1", "analytical comparison, validated empirically",
           args);

    TextTable table;
    table.header({"Tracer", "Contention", "Utilization", "Effectivity",
                  "Resizing", "Availability"});
    table.row({"BBQ", "High (global)", "1", "1", "not supported",
               "blocking"});
    table.row({"ftrace", "Low (core)", "1/C", "1/C",
               "disable preemption", "disable preemption"});
    table.row({"LTTng", "Low (core)", "1/C", "1/C", "not supported",
               "dropping newest"});
    table.row({"VTrace", "Low (thread)", "1/T", "1/T", "not supported",
               "separate threads"});
    table.row({"BTrace", "Low (core)", "~1-(C-1)/N", "~1-A/N",
               "implicit reclaiming", "skipping blocked"});
    std::printf("%s", table.render().c_str());

    // --- Utilization column, measured with one hot core. -----------
    std::printf("\nutilization with a single hot core "
                "(C=12, 6 MB buffer):\n");
    const double bt_util = singleHotCoreUtilization(TracerKind::BTrace);
    const double ft_util = singleHotCoreUtilization(TracerKind::Ftrace);
    const double bbq_util = singleHotCoreUtilization(TracerKind::Bbq);
    std::printf("  BTrace %5.1f%%   ftrace %5.1f%% (bound 1/C = 8.3%%)   "
                "BBQ %5.1f%%\n", 100 * bt_util, 100 * ft_util,
                100 * bbq_util);

    // --- Analytic utilization/effectivity numbers from §3.1/§3.2. --
    std::printf("\nanalytic check (C=12, T=500, 4 KB blocks, 12 MB "
                "buffer, N=3072):\n");
    const double n = 3072, c = 12, t = 500, a16 = 16 * 12, a8c = 8 * 12;
    std::printf("  per-core buffers   : utilization 1/C  = %5.2f%%\n",
                100 / c);
    std::printf("  per-thread buffers : utilization 1/T  = %5.2f%%\n",
                100 / t);
    std::printf("  BTrace             : 1-(C-1)/N        = %5.2f%% "
                "(paper: 99.6%%)\n", 100 * (1 - (c - 1) / n));
    std::printf("  BTrace effectivity : 1-A/N (A=8xC)    = %5.2f%% "
                "(paper: 96.88%%)\n", 100 * (1 - a8c / n));
    std::printf("  BTrace effectivity : 1-A/N (A=16xC)   = %5.2f%%\n",
                100 * (1 - a16 / n));

    // --- Availability column, provoked directly. -------------------
    std::printf("\navailability under a preempted writer:\n");
    {
        BbqConfig cfg;
        cfg.blockSize = 4096;
        cfg.numBlocks = 8;
        Bbq bbq(cfg);
        WriteTicket held = bbq.allocate(0, 1, 16);
        int wrote = 0;
        for (int i = 0; i < 100; ++i) {
            WriteTicket w = bbq.allocate(1, 2, 16);
            if (w.status != AllocStatus::Ok)
                break;
            writeNormal(w.dst, uint64_t(i), 1, 2, 0, 16);
            bbq.confirm(w);
            ++wrote;
        }
        std::printf("  BBQ   : blocked after %d writes "
                    "(blocked count %llu)\n", wrote,
                    static_cast<unsigned long long>(bbq.blockedCount()));
        writeNormal(held.dst, 0, 0, 1, 0, 16);
        bbq.confirm(held);
    }
    {
        LttngConfig cfg;
        cfg.capacityBytes = 64u << 10;
        cfg.cores = 1;
        cfg.subBuffers = 2;
        LttngLike lt(cfg);
        WriteTicket held = lt.allocate(0, 1, 16);
        int wrote = 0;
        uint64_t drops = 0;
        for (int i = 0; i < 4000; ++i) {
            WriteTicket w = lt.allocate(0, 2, 64);
            if (w.status == AllocStatus::Drop) {
                drops = lt.droppedCount();
                break;
            }
            if (w.status != AllocStatus::Ok)
                break;
            writeNormal(w.dst, uint64_t(i), 0, 2, 0, 64);
            lt.confirm(w);
            ++wrote;
        }
        std::printf("  LTTng : dropped the newest after %d writes "
                    "(drops %llu)\n", wrote,
                    static_cast<unsigned long long>(drops));
        writeNormal(held.dst, 0, 0, 1, 0, 16);
        lt.confirm(held);
    }
    {
        BTraceConfig cfg;
        cfg.blockSize = 4096;
        cfg.numBlocks = 64;
        cfg.activeBlocks = 8;
        cfg.cores = 2;
        BTrace bt(cfg);
        WriteTicket held = bt.allocate(0, 1, 16);
        int wrote = 0;
        for (int i = 0; i < 5000; ++i) {
            if (!bt.record(1, 2, uint64_t(i + 1), 64))
                break;
            ++wrote;
        }
        std::printf("  BTrace: kept writing (%d writes, %llu skips, "
                    "0 drops, no blocking)\n", wrote,
                    static_cast<unsigned long long>(
                        bt.countersSnapshot().skips));
        writeNormal(held.dst, 0, 0, 1, 0, 16);
        bt.confirm(held);
    }

    // --- Resizing column. -------------------------------------------
    {
        BTraceConfig cfg;
        cfg.blockSize = 4096;
        cfg.numBlocks = 256;
        cfg.activeBlocks = 16;
        cfg.maxBlocks = 1024;
        cfg.cores = 4;
        BTrace bt(cfg);
        for (uint64_t s = 1; s <= 20000; ++s)
            bt.record(uint16_t(s % 4), 1, s, 64);
        const std::size_t before = bt.residentBytes();
        bt.resize(16);
        const std::size_t after = bt.residentBytes();
        std::printf("\nresizing (BTrace only): 1 MB -> 64 KB, resident "
                    "%s -> %s, producers kept running\n",
                    humanBytes(double(before)).c_str(),
                    humanBytes(double(after)).c_str());
    }
    return 0;
}
