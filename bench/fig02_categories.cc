/**
 * @file
 * Fig 2 reproduction: trace production speed of the modeled atrace
 * categories (MB per core per minute), with the level grouping used by
 * Fig 3. Values are model parameters calibrated to the figure's
 * relative proportions (see EXPERIMENTS.md for the scale note); the
 * bar rendering mirrors the figure.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/format.h"
#include "workloads/categories.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig 2", "trace production speed per atrace category", args);

    double max_rate = 0.0;
    for (const TraceCategory &c : categoryCatalog())
        max_rate = std::max(max_rate, c.mbPerCoreMin);

    TextTable table;
    table.header({"category", "level", "MB/core/min", "bar"});
    for (const TraceCategory &c : categoryCatalog()) {
        const int bar = int(40.0 * c.mbPerCoreMin / max_rate + 0.5);
        table.row({c.name, std::to_string(c.level),
                   fmtDouble(c.mbPerCoreMin, 1),
                   std::string(std::size_t(bar), '#')});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\ncumulative by level (drives Fig 3):\n");
    for (int level = 1; level <= 3; ++level) {
        const double rate = levelRateMbPerCoreMin(level);
        std::printf("  level-%d: %6.1f MB/core/min  -> %6.1f MB per 30 s "
                    "across 12 cores\n",
                    level, rate, rate * 12 / 2.0);
    }
    std::printf("\nExpected shape: custom energy/thermal/migration "
                "tracepoints dominate,\nfollowed by sched/idle/freq; "
                "binder categories are comparatively cheap.\n");
    return 0;
}
