/**
 * @file
 * Fig 1 reproduction: retained-event timelines over the last N written
 * events for the lock-screen scenario (idle big/middle cores) and the
 * shopping-app scenario (imbalanced speeds + oversubscription). Gaps
 * ('.') are events inside the ideal window that the tracer lost.
 */

#include <cstdio>

#include "analysis/continuity.h"
#include "analysis/gaps.h"
#include "analysis/timeline.h"
#include "bench_util.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

namespace {

void
scenario(const char *title, const char *workload, const BenchArgs &args)
{
    std::printf("\n(%s) %s\n", title, workload);
    std::printf("%-7s window(newest on the right; '#'=kept, "
                "'+'=partial, '.'=gap)%*s latest\n", "tracer", 30, "");
    for (const TracerKind kind : allTracerKinds()) {
        TracerFactoryOptions fo;  // 12 MB, the §5 setup
        auto tracer = makeTracer(kind, fo);
        ReplayOptions opt;
        opt.mode = ReplayMode::ThreadLevel;
        opt.rateScale = args.scale;
        opt.durationSec = args.duration;
        opt.seed = args.seed;
        const ReplayResult res =
            replay(*tracer, workloadByName(workload), opt);
        const Timeline tl = buildTimeline(res);
        const ContinuityReport rep = analyzeContinuity(res);
        const GapReport gaps = analyzeGaps(res.produced, res.dump, 16);
        std::printf("%-7s [%s] %5.1f MB  %s\n", res.tracerName.c_str(),
                    renderTimeline(tl, 80).c_str(),
                    rep.latestFragmentBytes / (1024.0 * 1024.0),
                    describeGaps(gaps).c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig 1", "effectiveness of tracers on replayed scenarios",
           args);
    scenario("a", "LockScr", args);
    scenario("b", "eShop-1", args);
    std::printf("\nExpected shape: BTrace's band is solid except near "
                "the oldest edge;\nftrace/LTTng show large gaps (a) and "
                "numerous small gaps (b); VTrace is\nshattered; BBQ is "
                "solid but pays the §5.2 latency cost.\n");
    return 0;
}
