/**
 * @file
 * Resize ablation (§4.4): wall-clock cost of grow/shrink under live
 * producer load, resident-memory footprint across a resize cycle, and
 * the impact on producer throughput — the capability no baseline
 * supports without disabling preemption (Table 1, "Resizing").
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "core/btrace.h"

using namespace btrace;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation", "runtime buffer resizing under load", args);

    BTraceConfig cfg;
    cfg.blockSize = 4096;
    cfg.numBlocks = 768;       // 3 MB initial
    cfg.activeBlocks = 64;
    cfg.maxBlocks = 122880;    // 480 MB ceiling
    cfg.cores = 4;
    BTrace bt(cfg);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> written{0};
    std::vector<std::thread> producers;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        producers.emplace_back([&, c]() {
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t s =
                    stamp.fetch_add(1, std::memory_order_relaxed) + 1;
                if (bt.record(uint16_t(c), c, s, 64))
                    written.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    auto throughput = [&](double window_ms) {
        const uint64_t w0 = written.load();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(int(window_ms)));
        return double(written.load() - w0) / (window_ms / 1000.0);
    };

    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const double base_tp = throughput(200);
    std::printf("baseline: N=%zu (%s), producer throughput %.2f M "
                "entries/s, resident %s\n",
                bt.numBlocks(),
                humanBytes(double(bt.capacityBytes())).c_str(),
                base_tp / 1e6,
                humanBytes(double(bt.residentBytes())).c_str());

    struct Step { const char *what; std::size_t blocks; };
    const Step steps[] = {
        {"grow  3 MB -> 48 MB", 12288},
        {"grow 48 MB -> 192 MB", 49152},
        {"shrink 192 MB -> 12 MB", 3072},
        {"shrink 12 MB -> 256 KB", 64},
        {"grow 256 KB -> 3 MB", 768},
    };
    std::printf("\n%-26s %10s %14s %16s\n", "step", "resize ms",
                "resident after", "throughput after");
    for (const Step &s : steps) {
        // Let the producers touch the current buffer first.
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        const auto t0 = Clock::now();
        bt.resize(s.blocks);
        const double ms = msSince(t0);
        const double tp = throughput(200);
        std::printf("%-26s %9.2f  %14s %13.2f M/s\n", s.what, ms,
                    humanBytes(double(bt.residentBytes())).c_str(),
                    tp / 1e6);
        std::fflush(stdout);
    }

    stop.store(true);
    for (auto &p : producers)
        p.join();

    const Dump d = bt.dump();
    uint64_t corrupt = 0;
    for (const DumpEntry &e : d.entries)
        corrupt += !e.payloadOk;
    std::printf("\nfinal dump after %llu resizes: %zu entries retained, "
                "%llu corrupt (must be 0)\n",
                static_cast<unsigned long long>(
                    bt.countersSnapshot().resizes),
                d.entries.size(),
                static_cast<unsigned long long>(corrupt));
    std::printf("\nExpected shape: resize cost stays in the millisecond "
                "range and scales\nwith the quiesce, not with buffer "
                "size; producers keep recording through\nevery step "
                "(only advancement briefly backs off); shrink returns "
                "physical\nmemory to the OS (§4.4).\n");
    return corrupt == 0 ? 0 : 1;
}
