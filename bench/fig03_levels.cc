/**
 * @file
 * Fig 3 reproduction: cumulative trace volume by level over a 30 s
 * recording vs. the latest continuous fragment each tracer retains
 * with a fixed 450 MB buffer (the horizontal lines of the figure).
 * BTrace should hold all level-3 traces of the window; ftrace only
 * ~level-2 volume.
 */

#include <cstdio>

#include "analysis/continuity.h"
#include "bench_util.h"
#include "sim/replay.h"
#include "workloads/categories.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    // Full scale is a 450 MB buffer and ~5.6M events per tracer; the
    // default runs at 0.5 scale (225 MB, same shape). Use --scale=1
    // for the paper-exact volume.
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.5);
    banner("Fig 3", "recordable trace levels with a 450 MB buffer",
           args);

    const double buffer_mb = 450.0 * args.scale;
    const double duration = args.duration > 0 ? args.duration : 30.0;

    std::printf("cumulative produced volume (MB, all 12 cores):\n");
    std::printf("%8s", "t(s)");
    for (int level = 1; level <= 3; ++level)
        std::printf("  level-%d", level);
    std::printf("\n");
    for (double t = 5.0; t <= duration + 1e-9; t += 5.0) {
        std::printf("%8.0f", t);
        for (int level = 1; level <= 3; ++level) {
            const double mb =
                levelRateMbPerCoreMin(level) * 12.0 * (t / 60.0) *
                args.scale;
            std::printf("  %7.1f", mb);
        }
        std::printf("\n");
    }

    std::printf("\nlatest continuous fragment with a %.0f MB buffer "
                "(the horizontal lines):\n", buffer_mb);
    const Workload wl = levelWorkload(3).scaled(args.scale);
    for (const TracerKind kind : allTracerKinds()) {
        TracerFactoryOptions fo;
        fo.capacityBytes = std::size_t(buffer_mb * 1024 * 1024);
        auto tracer = makeTracer(kind, fo);
        ReplayOptions opt;
        opt.mode = ReplayMode::ThreadLevel;
        opt.durationSec = duration;
        opt.seed = args.seed;
        const ReplayResult res = replay(*tracer, wl, opt);
        const ContinuityReport rep = analyzeContinuity(res);
        const double frag_mb = rep.latestFragmentBytes / (1024.0 * 1024.0);
        // Which level's full window would this fragment hold? (The
        // buffer equals the level-3 volume exactly, so BTrace's ~97 %
        // effectivity gets a small tolerance — the paper's Fig 3 line
        // sits marginally above its level-3 curve the same way.)
        int holds = 0;
        for (int level = 3; level >= 1; --level) {
            const double need = levelRateMbPerCoreMin(level) * 12.0 *
                                (duration / 60.0) * args.scale;
            if (frag_mb >= 0.95 * need) {
                holds = level;
                break;
            }
        }
        std::printf("  %-7s %7.1f MB  -> holds the full %.0f s window "
                    "up to level-%d\n",
                    res.tracerName.c_str(), frag_mb, duration, holds);
        std::fflush(stdout);
    }
    std::printf("\nExpected shape: BTrace (and BBQ) retain the whole "
                "level-3 window;\nftrace/LTTng retain roughly the "
                "level-2 volume; VTrace far less.\n");
    return 0;
}
