/**
 * @file
 * Contention-sweep bench: real-thread 1→N producer sweep with
 * cycle-accurate phase attribution (DESIGN.md §14, EXPERIMENTS.md).
 *
 * For every (backend, mode, thread-count) point this binary builds a
 * fresh BTrace, arms a fresh CostProfiler, pins each producer to a
 * core, warms up unprofiled, then hammers the instance for a fixed
 * wall interval. The output is a per-point breakdown of where the
 * nanoseconds go — claim FAA, bump serve, confirm publish, retry
 * backoff, lease renewal, control poll — for both the single-entry
 * fast path and the leased batch path, so the knee of the contention
 * curve can be attributed to a specific protocol phase instead of
 * guessed at.
 *
 * ThreadPerfCounters adds per-op hardware counters (cycles, cache
 * misses, branch misses) when perf_event_open is permitted; anywhere
 * it is not (seccomp, perf_event_paranoid, VMs) the sweep degrades to
 * TSC-only timing with a one-line warning, never a failure.
 *
 * Results land in BENCH_contention.json (override with --json=PATH)
 * in the schema scripts/check_bench_schema.py validates. Exit status
 * is nonzero when any point records nothing or fails its audit.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "bench_util.h"
#include "core/auditor.h"
#include "core/btrace.h"
#include "obs/profiler.h"

namespace btrace {
namespace {

struct Flags
{
    std::vector<unsigned> threadCounts = {1, 2, 4, 8, 16, 32, 64};
    double secs = 1.0;
    uint32_t leaseEntries = 32;
    uint32_t payload = 48;
    std::vector<std::string> backends = {"private"};
    std::string jsonPath = "BENCH_contention.json";
    bool quick = false;
    bool pin = true;
};

std::vector<std::string>
splitCsv(const char *s)
{
    std::vector<std::string> out;
    std::string cur;
    for (; *s != '\0'; ++s) {
        if (*s == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += *s;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

Flags
parseFlags(int argc, char **argv)
{
    Flags f;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *name) -> const char * {
            const std::size_t len = std::strlen(name);
            if (std::strncmp(a, name, len) == 0 && a[len] == '=')
                return a + len + 1;
            return nullptr;
        };
        if (const char *v = val("--threads")) {
            f.threadCounts.clear();
            for (const std::string &t : splitCsv(v))
                f.threadCounts.push_back(
                    std::max(1u, unsigned(std::atoi(t.c_str()))));
        } else if (const char *v2 = val("--secs")) {
            f.secs = std::atof(v2);
        } else if (const char *v3 = val("--lease")) {
            f.leaseEntries = uint32_t(std::atoi(v3));
        } else if (const char *v4 = val("--payload")) {
            f.payload = uint32_t(std::atoi(v4));
        } else if (const char *v5 = val("--backends")) {
            f.backends = splitCsv(v5);
        } else if (const char *v6 = val("--json")) {
            f.jsonPath = v6;
        } else if (std::strcmp(a, "--quick") == 0) {
            f.quick = true;
        } else if (std::strcmp(a, "--no-pin") == 0) {
            f.pin = false;
        } else if (std::strcmp(a, "--help") == 0) {
            std::printf("flags: --threads=CSV --secs=S --lease=N "
                        "--payload=B --backends=private,shm,file "
                        "--json=PATH --no-pin --quick\n");
            std::exit(0);
        }
    }
    if (f.quick) {
        f.threadCounts = {1, 2, 4};
        f.secs = std::min(f.secs, 0.3);
    }
    if (f.threadCounts.empty())
        f.threadCounts = {1};
    std::sort(f.threadCounts.begin(), f.threadCounts.end());
    f.threadCounts.erase(
        std::unique(f.threadCounts.begin(), f.threadCounts.end()),
        f.threadCounts.end());
    return f;
}

using Clock = std::chrono::steady_clock;

constexpr int sampleEvery = 64;
constexpr uint64_t warmupOps = 4096;

/** Pin the calling thread to @p cpu; best-effort, reports success. */
bool
pinSelf(unsigned cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()),
            &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
#else
    (void)cpu;
    return false;
#endif
}

/** One (mode, thread-count) measurement. */
struct PointResult
{
    unsigned threads = 0;
    unsigned cores = 0;
    uint64_t totalOps = 0;
    double elapsedSec = 0.0;
    double opsPerSec = 0.0;
    double meanNs = 0.0;  //!< sampled op latency, histogram mean
    uint64_t p50Ns = 0;
    uint64_t p99Ns = 0;
    uint64_t sharedRmws = 0;
    double rmwsPerOp = 0.0;
    bool pinned = false;  //!< every producer pinned successfully
    bool auditOk = false;
    std::string auditSummary;
    ProfileSnapshot profile;
    bool perfOk = false;  //!< every producer's counter group opened
    PerfSample perf;      //!< summed across producers when perfOk
};

std::atomic<bool> perfWarned{false};
std::string firstPerfError;

/**
 * Run @p perOp (returns true when one op completed) on @p threads
 * pinned producers against @p bt: unprofiled warmup, then a profiled
 * timed interval of @p secs.
 */
template <typename PerOp>
PointResult
runPoint(BTrace &bt, CostProfiler &prof, unsigned threads,
         unsigned cores, double secs, PerOp &&perOp)
{
    PointResult r;
    r.threads = threads;
    r.cores = cores;
    std::vector<uint64_t> ops(threads, 0);
    std::vector<PerfSample> perfSamples(threads);
    std::vector<char> perfGood(threads, 0);
    std::vector<char> pinGood(threads, 0);
    ConcurrentHistogram latNs(threads);
    std::atomic<bool> stop{false};
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};

    const uint64_t rmws0 = bt.countersSnapshot().sharedRmws;
    std::vector<std::thread> producers;
    producers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        producers.emplace_back([&, i]() {
            pinGood[i] = pinSelf(i) ? 1 : 0;
            // Warmup runs before the profiler is armed: block leases,
            // page faults, and branch predictors settle without
            // polluting the phase histograms.
            for (uint64_t w = 0;
                 w < warmupOps && !stop.load(std::memory_order_acquire);
                 ++w)
                perOp(i, ops[i]);
            ops[i] = 0;
            ThreadPerfCounters perf;
            if (perf.open()) {
                perfGood[i] = 1;
            } else if (!perfWarned.exchange(true)) {
                firstPerfError = perf.error();
                std::fprintf(stderr,
                             "note: hardware counters off — %s; "
                             "TSC-only timing\n",
                             perf.error().c_str());
            }
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            perf.reset();
            while (!stop.load(std::memory_order_acquire)) {
                const bool timed = (ops[i] % sampleEvery) == 0;
                const auto s0 =
                    timed ? Clock::now() : Clock::time_point{};
                if (perOp(i, ops[i]))
                    ++ops[i];
                if (timed) {
                    const auto ns =
                        std::chrono::duration<double, std::nano>(
                            Clock::now() - s0)
                            .count();
                    latNs.addToShard(i, uint64_t(ns));
                }
            }
            perfSamples[i] = perf.read();
        });
    }
    while (ready.load() != threads)
        std::this_thread::yield();
    // Arm only for the timed interval; warmup stayed invisible.
    bt.attachProfiler(&prof);
    const auto t0 = Clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    stop.store(true, std::memory_order_release);
    for (std::thread &t : producers)
        t.join();
    r.elapsedSec =
        std::chrono::duration<double>(Clock::now() - t0).count();
    bt.attachProfiler(nullptr);
    r.sharedRmws = bt.countersSnapshot().sharedRmws - rmws0;

    for (uint64_t o : ops)
        r.totalOps += o;
    r.opsPerSec =
        r.elapsedSec > 0 ? double(r.totalOps) / r.elapsedSec : 0.0;
    r.rmwsPerOp = r.totalOps > 0
                      ? double(r.sharedRmws) / double(r.totalOps)
                      : 0.0;
    const HistogramSnapshot h = latNs.snapshot();
    r.meanNs = h.total > 0 ? double(h.sum) / double(h.total) : 0.0;
    r.p50Ns = h.quantile(0.50);
    r.p99Ns = h.quantile(0.99);
    r.pinned = std::all_of(pinGood.begin(), pinGood.end(),
                           [](char c) { return c != 0; });
    r.perfOk = std::all_of(perfGood.begin(), perfGood.end(),
                           [](char c) { return c != 0; });
    if (r.perfOk) {
        for (const PerfSample &s : perfSamples) {
            r.perf.cycles += s.cycles;
            r.perf.cacheMisses += s.cacheMisses;
            r.perf.branchMisses += s.branchMisses;
        }
    }
    r.profile = prof.snapshot();

    const AuditReport rep = BTraceAuditor(bt).audit();
    r.auditOk = rep.ok();
    r.auditSummary = rep.summary();
    return r;
}

PointResult
runSingle(const Flags &f, const BTraceConfig &cfg, unsigned threads)
{
    BTrace bt(cfg);
    CostProfiler prof(threads);
    const auto cores = unsigned(cfg.cores);
    // One stamp slot per producer index, cache-line padded so the
    // sweep never measures its own false sharing.
    struct alignas(64) Slot
    {
        uint64_t stamp = 0;
    };
    std::vector<Slot> stamps(threads);
    for (unsigned i = 0; i < threads; ++i)
        stamps[i].stamp = (uint64_t(i) + 1) << 40;
    return runPoint(
        bt, prof, threads, cores, f.secs,
        [&bt, &f, &stamps, cores](unsigned i, uint64_t ops) {
            (void)ops;
            return bt.record(uint16_t(i % cores), 1000 + i,
                             ++stamps[i].stamp, f.payload);
        });
}

PointResult
runLeased(const Flags &f, const BTraceConfig &cfg, unsigned threads)
{
    BTrace bt(cfg);
    CostProfiler prof(threads);
    const auto cores = unsigned(cfg.cores);
    struct alignas(64) Tls
    {
        Lease lease;
        uint64_t stamp = 0;
    };
    // One cache-line-padded slot per producer index; threads never
    // share a slot.
    std::vector<Tls> tls(threads);
    PointResult r = runPoint(
        bt, prof, threads, cores, f.secs,
        [&bt, &f, &tls, cores](unsigned i, uint64_t ops) {
            (void)ops;
            Tls &t = tls[i];
            const auto core = uint16_t(i % cores);
            const uint32_t tid = 2000 + i;
            if (t.stamp == 0)
                t.stamp = (uint64_t(i) + 1) << 40;
            WriteTicket w = t.lease.closed()
                                ? WriteTicket{}
                                : t.lease.allocate(f.payload);
            if (!w.ok()) {
                t.lease.close();
                t.lease =
                    bt.lease(core, tid, f.payload, f.leaseEntries);
                if (!t.lease.ok()) {
                    std::this_thread::yield();
                    return false;
                }
                w = t.lease.allocate(f.payload);
                if (!w.ok())
                    return false;
            }
            writeNormal(w.dst, ++t.stamp, core, tid, 0, f.payload);
            t.lease.confirm(w);
            return true;
        });
    for (Tls &t : tls)
        t.lease.close();
    return r;
}

void
printPoint(const char *mode, const PointResult &r)
{
    std::printf("%-7s %3u thr %12.0f ops/s  mean %7.0f ns  "
                "p99 %8llu ns  %.3f RMWs/op  %s%s\n",
                mode, r.threads, r.opsPerSec, r.meanNs,
                static_cast<unsigned long long>(r.p99Ns), r.rmwsPerOp,
                r.auditOk ? "audit ok" : "audit FAILED",
                r.pinned ? "" : "  (unpinned)");
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const PhaseStats &p =
            r.profile.of(static_cast<ProfilePhase>(i));
        if (p.count == 0)
            continue;
        std::printf("          %-12s mean %7.1f ns  p99 %7llu ns  "
                    "(%llu probes)\n",
                    profilePhaseName(static_cast<ProfilePhase>(i)),
                    p.meanNs,
                    static_cast<unsigned long long>(p.p99Ns),
                    static_cast<unsigned long long>(p.count));
    }
    if (!r.auditOk)
        std::printf("%s\n", r.auditSummary.c_str());
}

void
jsonPoint(JsonWriter &jw, const PointResult &r)
{
    jw.beginObject();
    jw.field("threads", static_cast<unsigned long long>(r.threads));
    jw.field("cores", static_cast<unsigned long long>(r.cores));
    jw.field("total_ops", static_cast<unsigned long long>(r.totalOps));
    jw.field("elapsed_sec", r.elapsedSec);
    jw.field("ops_per_sec", r.opsPerSec);
    jw.beginObject("ns_per_op");
    jw.field("mean", r.meanNs);
    jw.field("p50", static_cast<unsigned long long>(r.p50Ns));
    jw.field("p99", static_cast<unsigned long long>(r.p99Ns));
    jw.endObject();
    jw.field("shared_rmws",
             static_cast<unsigned long long>(r.sharedRmws));
    jw.field("rmws_per_op", r.rmwsPerOp);
    jw.field("pinned", r.pinned);
    jw.field("audit_ok", r.auditOk);
    jw.beginObject("phases");
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const PhaseStats &p =
            r.profile.of(static_cast<ProfilePhase>(i));
        jw.beginObject(
            profilePhaseName(static_cast<ProfilePhase>(i)));
        jw.field("count", static_cast<unsigned long long>(p.count));
        jw.field("total_ns",
                 static_cast<unsigned long long>(p.totalNs));
        jw.field("mean_ns", p.meanNs);
        jw.field("p50_ns", static_cast<unsigned long long>(p.p50Ns));
        jw.field("p99_ns", static_cast<unsigned long long>(p.p99Ns));
        jw.endObject();
    }
    jw.endObject();
    if (r.perfOk && r.totalOps > 0) {
        jw.beginObject("perf");
        jw.field("cycles_per_op",
                 double(r.perf.cycles) / double(r.totalOps));
        jw.field("cache_misses_per_op",
                 double(r.perf.cacheMisses) / double(r.totalOps));
        jw.field("branch_misses_per_op",
                 double(r.perf.branchMisses) / double(r.totalOps));
        jw.endObject();
    }
    jw.endObject();
}

int
run(int argc, char **argv)
{
    const Flags f = parseFlags(argc, argv);

    std::printf("contention_sweep — threads {");
    for (std::size_t i = 0; i < f.threadCounts.size(); ++i)
        std::printf("%s%u", i ? "," : "", f.threadCounts[i]);
    std::printf("}, payload %u B, lease %u entries, %.2f s/point\n",
                f.payload, f.leaseEntries, f.secs);

    auto makeCfg = [&](const std::string &backend, unsigned threads) {
        BTraceConfig cfg;
        cfg.blockSize = 1 << 16;
        cfg.cores = std::max(1u, (threads + 1) / 2);
        cfg.activeBlocks = 16 * cfg.cores;
        cfg.numBlocks = 8 * cfg.activeBlocks;
        if (!parseStorageKind(backend, cfg.storage)) {
            std::fprintf(stderr, "unknown backend '%s'\n",
                         backend.c_str());
            std::exit(2);
        }
        return cfg;
    };

    // One calibration readout for the header (points calibrate once
    // process-wide anyway; this surfaces the numbers in the JSON).
    const CostProfiler calib(1);

    JsonWriter jw(f.jsonPath);
    if (!jw.ok()) {
        std::fprintf(stderr, "cannot write %s\n", f.jsonPath.c_str());
        return 1;
    }
    jw.beginObject();
    jw.field("bench", std::string("contention_sweep"));
    jw.field("schema_version", 1ull);
    jw.field("payload_bytes",
             static_cast<unsigned long long>(f.payload));
    jw.field("lease_entries",
             static_cast<unsigned long long>(f.leaseEntries));
    jw.field("seconds_per_point", f.secs);
    jw.field("quick", f.quick);
    jw.field("tsc_ns_per_tick", calib.nsPerTick());
    jw.field("probe_overhead_ns", calib.probeOverheadNs());
    jw.beginArray("thread_counts");
    for (unsigned t : f.threadCounts)
        jw.element(static_cast<unsigned long long>(t));
    jw.endArray();

    bool fail = false;
    bool anyPerf = false;
    jw.beginArray("backends");
    for (const std::string &backend : f.backends) {
        jw.beginObject();
        jw.field("backend", backend);
        jw.beginObject("modes");
        for (const char *mode : {"single", "leased"}) {
            jw.beginArray(mode);
            for (unsigned threads : f.threadCounts) {
                const BTraceConfig cfg = makeCfg(backend, threads);
                const PointResult r =
                    std::strcmp(mode, "single") == 0
                        ? runSingle(f, cfg, threads)
                        : runLeased(f, cfg, threads);
                printPoint(mode, r);
                jsonPoint(jw, r);
                anyPerf = anyPerf || r.perfOk;
                if (r.totalOps == 0) {
                    std::fprintf(stderr,
                                 "FAIL: %s/%s/%u recorded zero ops\n",
                                 backend.c_str(), mode, threads);
                    fail = true;
                }
                if (!r.auditOk) {
                    std::fprintf(
                        stderr, "FAIL: %s/%s/%u failed its audit\n",
                        backend.c_str(), mode, threads);
                    fail = true;
                }
            }
            jw.endArray();
        }
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.field("perf_counters", anyPerf);
    if (!anyPerf && !firstPerfError.empty())
        jw.field("perf_error", firstPerfError);
    jw.endObject();
    jw.close();
    std::printf("wrote %s\n", f.jsonPath.c_str());
    return fail ? 1 : 0;
}

} // namespace
} // namespace btrace

int
main(int argc, char **argv)
{
    return btrace::run(argc, argv);
}
