/**
 * @file
 * Shared helpers for the reproduction bench binaries: flag parsing
 * (--scale, --duration, --seed, --quick) and uniform headers so all
 * experiment output looks alike.
 */

#ifndef BTRACE_BENCH_BENCH_UTIL_H
#define BTRACE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace btrace {

/** Common command-line knobs for experiment binaries. */
struct BenchArgs
{
    double scale = 1.0;      //!< workload rate scale
    double duration = 0.0;   //!< seconds; 0 = workload default (30 s)
    uint64_t seed = 1;
    bool quick = false;      //!< cut runtime for CI-style smoke runs

    static BenchArgs
    parse(int argc, char **argv, double default_scale = 1.0)
    {
        BenchArgs args;
        args.scale = default_scale;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto val = [&](const char *name) -> const char * {
                const std::size_t len = std::strlen(name);
                if (std::strncmp(a, name, len) == 0 && a[len] == '=')
                    return a + len + 1;
                return nullptr;
            };
            if (const char *v = val("--scale")) {
                args.scale = std::atof(v);
            } else if (const char *v2 = val("--duration")) {
                args.duration = std::atof(v2);
            } else if (const char *v3 = val("--seed")) {
                args.seed = std::strtoull(v3, nullptr, 10);
            } else if (std::strcmp(a, "--quick") == 0) {
                args.quick = true;
            } else if (std::strcmp(a, "--help") == 0) {
                std::printf("flags: --scale=F --duration=SEC --seed=N "
                            "--quick\n");
                std::exit(0);
            }
        }
        if (args.quick) {
            args.scale *= 0.3;
            if (args.duration == 0.0)
                args.duration = 6.0;
        }
        return args;
    }
};

/** Uniform experiment banner. */
inline void
banner(const char *id, const char *title, const BenchArgs &args)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("scale=%.2f duration=%s seed=%llu\n", args.scale,
                args.duration > 0 ? std::to_string(args.duration).c_str()
                                  : "workload default",
                static_cast<unsigned long long>(args.seed));
    std::printf("==============================================="
                "=============================\n");
}

} // namespace btrace

#endif // BTRACE_BENCH_BENCH_UTIL_H
