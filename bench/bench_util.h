/**
 * @file
 * Shared helpers for the reproduction bench binaries: flag parsing
 * (--scale, --duration, --seed, --quick, --obs-interval, --obs-json),
 * uniform headers so all experiment output looks alike, and a small
 * streaming JSON writer so every bench emits machine-readable results
 * (BENCH_*.json) with the same formatting.
 */

#ifndef BTRACE_BENCH_BENCH_UTIL_H
#define BTRACE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace btrace {

/** Common command-line knobs for experiment binaries. */
struct BenchArgs
{
    double scale = 1.0;      //!< workload rate scale
    double duration = 0.0;   //!< seconds; 0 = workload default (30 s)
    uint64_t seed = 1;
    bool quick = false;      //!< cut runtime for CI-style smoke runs
    double obsInterval = 0.0; //!< sampler period; 0 = final-only
    std::string obsJson;      //!< obs JSON-lines path; empty = off

    static BenchArgs
    parse(int argc, char **argv, double default_scale = 1.0)
    {
        BenchArgs args;
        args.scale = default_scale;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto val = [&](const char *name) -> const char * {
                const std::size_t len = std::strlen(name);
                if (std::strncmp(a, name, len) == 0 && a[len] == '=')
                    return a + len + 1;
                return nullptr;
            };
            if (const char *v = val("--scale")) {
                args.scale = std::atof(v);
            } else if (const char *v2 = val("--duration")) {
                args.duration = std::atof(v2);
            } else if (const char *v3 = val("--seed")) {
                args.seed = std::strtoull(v3, nullptr, 10);
            } else if (const char *v4 = val("--obs-interval")) {
                args.obsInterval = std::atof(v4);
            } else if (const char *v5 = val("--obs-json")) {
                args.obsJson = v5;
            } else if (std::strcmp(a, "--quick") == 0) {
                args.quick = true;
            } else if (std::strcmp(a, "--help") == 0) {
                std::printf("flags: --scale=F --duration=SEC --seed=N "
                            "--obs-interval=SEC --obs-json=PATH "
                            "--quick\n");
                std::exit(0);
            }
        }
        if (args.quick) {
            args.scale *= 0.3;
            if (args.duration == 0.0)
                args.duration = 6.0;
        }
        return args;
    }
};

/**
 * Streaming writer for the BENCH_*.json result files: tracks nesting
 * and element commas so call sites only name keys and values. Output
 * is pretty-printed with two-space indents. Not a general-purpose
 * serializer — just enough for flat result dictionaries with nested
 * objects and numeric arrays.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(const std::string &path)
        : fp(std::fopen(path.c_str(), "w"))
    {
    }

    ~JsonWriter()
    {
        if (fp != nullptr)
            close();
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    bool ok() const { return fp != nullptr; }

    void
    beginObject(const char *key = nullptr)
    {
        item(key);
        std::fputs("{", fp);
        first.push_back(true);
    }

    void
    beginArray(const char *key = nullptr)
    {
        item(key);
        std::fputs("[", fp);
        first.push_back(true);
    }

    void
    endObject()
    {
        pop();
        std::fputs("}", fp);
    }

    void
    endArray()
    {
        pop();
        std::fputs("]", fp);
    }

    void
    field(const char *key, double v)
    {
        item(key);
        std::fprintf(fp, "%.4f", v);
    }

    void
    field(const char *key, unsigned long long v)
    {
        item(key);
        std::fprintf(fp, "%llu", v);
    }

    void
    field(const char *key, bool v)
    {
        item(key);
        std::fputs(v ? "true" : "false", fp);
    }

    void
    field(const char *key, const std::string &v)
    {
        item(key);
        std::fprintf(fp, "\"%s\"", escaped(v).c_str());
    }

    void
    element(double v)
    {
        item(nullptr);
        std::fprintf(fp, "%.4f", v);
    }

    void
    element(unsigned long long v)
    {
        item(nullptr);
        std::fprintf(fp, "%llu", v);
    }

    void
    element(const std::string &v)
    {
        item(nullptr);
        std::fprintf(fp, "\"%s\"", escaped(v).c_str());
    }

    /** Finish the document (closes the file; further calls invalid). */
    void
    close()
    {
        std::fputs("\n", fp);
        std::fclose(fp);
        fp = nullptr;
    }

  private:
    static std::string
    escaped(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    void
    item(const char *key)
    {
        if (!first.empty()) {
            if (!first.back())
                std::fputs(",", fp);
            first.back() = false;
            std::fprintf(fp, "\n%*s", int(2 * first.size()), "");
        }
        if (key != nullptr)
            std::fprintf(fp, "\"%s\": ", key);
    }

    void
    pop()
    {
        const bool empty = first.back();
        first.pop_back();
        if (!empty)
            std::fprintf(fp, "\n%*s", int(2 * first.size()), "");
    }

    FILE *fp;
    std::vector<bool> first;
};

/** Uniform experiment banner. */
inline void
banner(const char *id, const char *title, const BenchArgs &args)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("scale=%.2f duration=%s seed=%llu\n", args.scale,
                args.duration > 0 ? std::to_string(args.duration).c_str()
                                  : "workload default",
                static_cast<unsigned long long>(args.seed));
    std::printf("==============================================="
                "=============================\n");
}

} // namespace btrace

#endif // BTRACE_BENCH_BENCH_UTIL_H
