/**
 * @file
 * Fig 4 reproduction: average trace production speed (thousands of
 * entries per second) for each of the 12 cores across the six
 * highlighted workloads — the model parameters, validated against a
 * measured replay (counting actually produced events per core).
 */

#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "sim/replay.h"
#include "workloads/catalog.h"

using namespace btrace;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig 4", "per-core trace speed across workloads "
           "(k entries/s)", args);

    const auto workloads = fig4Workloads();

    TextTable model;
    std::vector<std::string> head = {"core (model)"};
    for (const Workload &w : workloads)
        head.push_back(w.name);
    model.header(head);
    for (unsigned c = 0; c < kCores; ++c) {
        std::vector<std::string> row = {
            std::to_string(c) +
            (c < 4 ? " (little)" : (c < 10 ? " (middle)" : " (big)"))};
        for (const Workload &w : workloads)
            row.push_back(fmtDouble(w.ratePerSec[c] / 1000.0, 1));
        model.row(std::move(row));
    }
    std::printf("%s", model.render().c_str());

    // Validation: replay each workload briefly and count events/core.
    const double duration = args.duration > 0 ? args.duration : 6.0;
    TextTable measured;
    measured.header(head);
    std::vector<std::array<double, kCores>> counts(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        TracerFactoryOptions fo;
        auto tracer = makeTracer(TracerKind::BTrace, fo);
        ReplayOptions opt;
        opt.durationSec = duration;
        opt.rateScale = args.scale;
        opt.seed = args.seed;
        const ReplayResult res = replay(*tracer, workloads[i], opt);
        counts[i].fill(0.0);
        for (const ProducedEvent &e : res.produced)
            counts[i][e.core] += 1.0;
    }
    for (unsigned c = 0; c < kCores; ++c) {
        std::vector<std::string> row = {std::to_string(c) + " (meas.)"};
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            row.push_back(fmtDouble(
                counts[i][c] / duration / args.scale / 1000.0, 1));
        }
        measured.row(std::move(row));
    }
    std::printf("\nmeasured from replay (normalized back to scale 1, "
                "includes burst troughs):\n%s", measured.render().c_str());

    std::printf("\nExpected shape: LockScr idles middle/big cores; "
                "Video-1 skews to the\nlittle cores; IM is uniform "
                "(§2.2 Observation 2, Fig 4).\n");
    return 0;
}
