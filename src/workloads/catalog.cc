#include "workloads/catalog.h"

#include "common/panic.h"
#include "common/prng.h"

namespace btrace {

namespace {

/**
 * Build a workload from per-core-class parameters. Rates are in
 * thousands of entries per second (the unit of Fig 4); thread counts
 * follow Fig 6 ("total" over 30 s, "active" within a second). A
 * deterministic +/-15 % per-core jitter keeps cores of one class from
 * being identical.
 */
Workload
make(const std::string &name, uint64_t seed,
     double little_k, double mid_k, double big_k,
     uint32_t little_total, uint32_t mid_total, uint32_t big_total,
     uint32_t little_active, uint32_t mid_active, uint32_t big_active,
     double burstiness)
{
    Workload w;
    w.name = name;
    w.seed = seed;
    w.burstiness = burstiness;

    Prng jitter(seed * 0x9e3779b97f4a7c15ull + 17);
    for (unsigned c = 0; c < kCores; ++c) {
        double rate_k = 0.0;
        uint32_t total = 0;
        uint32_t active = 0;
        switch (coreClassOf(c)) {
          case CoreClass::Little:
            rate_k = little_k;
            total = little_total;
            active = little_active;
            break;
          case CoreClass::Middle:
            rate_k = mid_k;
            total = mid_total;
            active = mid_active;
            break;
          case CoreClass::Big:
            rate_k = big_k;
            total = big_total;
            active = big_active;
            break;
        }
        const double factor = 0.85 + 0.3 * jitter.nextDouble();
        w.ratePerSec[c] = rate_k * 1000.0 * factor;
        w.totalThreads[c] = std::max<uint32_t>(
            1, uint32_t(double(total) * factor));
        w.activeThreads[c] = std::max<uint32_t>(
            1, std::min(w.totalThreads[c],
                        uint32_t(double(active) * factor)));
    }
    return w;
}

std::vector<Workload>
buildCatalog()
{
    std::vector<Workload> all;
    //                 name       seed  l-k   m-k   b-k  l-tot m-tot b-tot l-act m-act b-act burst
    all.push_back(make("Desktop",  11,  4.0,  2.5,  1.5,  300,  250,  150,  25,  20,  12, 0.30));
    all.push_back(make("Browser",  12,  8.0,  5.0,  2.0,  420,  350,  200,  35,  28,  15, 0.35));
    all.push_back(make("Camera",   13,  6.0,  7.0,  4.0,  350,  380,  220,  30,  32,  18, 0.25));
    all.push_back(make("eShop-1",  14, 10.0,  5.0,  1.5,  450,  380,  200,  38,  30,  15, 0.40));
    all.push_back(make("eShop-2",  15, 12.0,  7.0,  2.0,  600,  500,  300,  50,  42,  25, 0.45));
    all.push_back(make("Game-1",   16,  5.0,  9.0,  8.0,  380,  420,  260,  30,  36,  22, 0.20));
    all.push_back(make("Game-2",   17,  6.0, 10.0,  9.0,  400,  450,  280,  32,  38,  24, 0.20));
    all.push_back(make("IM",       18,  3.5,  3.2,  3.0,  260,  240,  200,  22,  20,  17, 0.30));
    all.push_back(make("LockScr",  19,  1.8,  0.12, 0.05, 120,   25,    8,  12,   3,   2, 0.50));
    all.push_back(make("Map",      20,  7.0,  6.0,  3.0,  380,  350,  210,  32,  29,  17, 0.30));
    all.push_back(make("Music",    21,  2.5,  1.2,  0.4,  180,  120,   60,  15,  10,   6, 0.40));
    all.push_back(make("News",     22,  5.0,  3.0,  1.2,  320,  260,  140,  27,  22,  12, 0.35));
    all.push_back(make("Photo",    23,  4.5,  5.0,  2.5,  300,  320,  180,  25,  27,  15, 0.30));
    all.push_back(make("Reader",   24,  3.0,  1.8,  0.8,  220,  170,   90,  18,  14,   8, 0.40));
    all.push_back(make("Social",   25,  7.5,  4.5,  2.0,  420,  350,  200,  35,  29,  16, 0.35));
    all.push_back(make("Video-1",  26, 14.0,  6.0,  0.6,  400,  300,  100,  34,  25,   8, 0.30));
    all.push_back(make("Video-2",  27, 11.0,  7.0,  1.5,  380,  320,  140,  32,  27,  11, 0.30));
    all.push_back(make("Video-3",  28, 16.0, 11.0,  5.0,  500,  450,  280,  42,  38,  22, 0.25));
    all.push_back(make("CPUTest",  29,  9.0, 12.0, 11.0,  200,  220,  160,  16,  18,  14, 0.10));
    all.push_back(make("MemTest",  30, 10.0, 10.0,  9.0,  180,  190,  150,  15,  16,  13, 0.10));
    all.push_back(make("SysBench", 31, 12.0, 13.0, 12.0,  260,  280,  210,  21,  23,  18, 0.15));
    return all;
}

} // namespace

const std::vector<Workload> &
workloadCatalog()
{
    static const std::vector<Workload> catalog = buildCatalog();
    return catalog;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload &w : workloadCatalog()) {
        if (w.name == name)
            return w;
    }
    BTRACE_FATAL("unknown workload name");
}

std::vector<Workload>
fig4Workloads()
{
    return {workloadByName("Desktop"), workloadByName("Video-1"),
            workloadByName("Video-2"), workloadByName("eShop-1"),
            workloadByName("LockScr"), workloadByName("IM")};
}

} // namespace btrace
