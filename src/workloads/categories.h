/**
 * @file
 * Atrace-style tracepoint categories with production rates (Fig 2)
 * and the level-1/2/3 grouping used for Fig 3.
 *
 * Rates follow the relative proportions of Fig 2 but are calibrated so
 * the level-3 aggregate reaches ~450 MB over 30 s on 12 cores, which
 * is the axis of Fig 3 (our scale substitution is noted in
 * EXPERIMENTS.md).
 */

#ifndef BTRACE_WORKLOADS_CATEGORIES_H
#define BTRACE_WORKLOADS_CATEGORIES_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace btrace {

/** One tracepoint category (an atrace tag or a custom tracepoint). */
struct TraceCategory
{
    std::string name;
    double mbPerCoreMin;  //!< mean production rate, MB per core per min
    int level;            //!< 1, 2, or 3 (Fig 3 grouping)
    uint16_t id;          //!< category id stored in entries
};

/** All modeled categories, Fig 2 order. */
const std::vector<TraceCategory> &categoryCatalog();

/** Cumulative production rate of all categories with level <= @p l. */
double levelRateMbPerCoreMin(int l);

/**
 * Composite workload producing all categories up to @p level across
 * @p cores cores, for the Fig 3 experiment. Rates are uniform across
 * cores (the figure aggregates system-wide volume).
 */
Workload levelWorkload(int level, unsigned cores = kCores);

} // namespace btrace

#endif // BTRACE_WORKLOADS_CATEGORIES_H
