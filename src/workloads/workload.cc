#include "workloads/workload.h"

#include <cmath>

#include "trace/event.h"

namespace btrace {

double
Workload::totalRatePerSec() const
{
    double sum = 0.0;
    for (double r : ratePerSec)
        sum += r;
    return sum;
}

double
Workload::meanPayloadBytes() const
{
    // Mean of a bounded Pareto on [lo, hi] with shape a != 1:
    //   E[X] = (lo^a / (1 - (lo/hi)^a)) * (a / (a-1))
    //          * (1/lo^(a-1) - 1/hi^(a-1))
    const double a = payloadShape;
    const double lo = payloadLo;
    const double hi = payloadHi;
    if (std::abs(a - 1.0) < 1e-9) {
        return lo * hi / (hi - lo) * std::log(hi / lo);
    }
    const double la = std::pow(lo, a);
    const double ratio = 1.0 - std::pow(lo / hi, a);
    return la / ratio * (a / (a - 1.0)) *
           (1.0 / std::pow(lo, a - 1.0) - 1.0 / std::pow(hi, a - 1.0));
}

double
Workload::expectedBytes() const
{
    const double burst_scale =
        (1.0 - burstiness) + burstiness * burstLowFactor;
    const double entry_bytes =
        double(EntryLayout::normalHeaderBytes) + meanPayloadBytes();
    return totalRatePerSec() * burst_scale * durationSec * entry_bytes;
}

Workload
Workload::scaled(double factor) const
{
    Workload w = *this;
    for (double &r : w.ratePerSec)
        r *= factor;
    return w;
}

} // namespace btrace
