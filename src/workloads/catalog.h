/**
 * @file
 * The 21 named workloads of the evaluation (Table 2 columns): top app
 * store applications and games, developer benchmark tools, and typical
 * usage scenarios (lock screen, desktop) — §5 "Workloads".
 */

#ifndef BTRACE_WORKLOADS_CATALOG_H
#define BTRACE_WORKLOADS_CATALOG_H

#include <vector>

#include "workloads/workload.h"

namespace btrace {

/** All 21 workloads, in Table 2 column order. */
const std::vector<Workload> &workloadCatalog();

/** Lookup by name; fatal if unknown. */
const Workload &workloadByName(const std::string &name);

/** The six workloads highlighted in Fig 4. */
std::vector<Workload> fig4Workloads();

} // namespace btrace

#endif // BTRACE_WORKLOADS_CATALOG_H
