#include "workloads/categories.h"

#include "common/panic.h"
#include "trace/event.h"

namespace btrace {

namespace {

std::vector<TraceCategory>
buildCategories()
{
    std::vector<TraceCategory> cats = {
        // Level 1: minimal events for thread-dependency analysis.
        {"binder_driver", 2.2, 1, 0},
        {"binder_lock", 0.6, 1, 0},
        // Level 2: scheduling / IRQ / frequency detail for performance
        // issues such as frame drops and audio stutter.
        {"sched", 7.0, 2, 0},
        {"irq", 2.5, 2, 0},
        {"freq", 3.5, 2, 0},
        {"idle", 4.5, 2, 0},
        {"power", 1.2, 2, 0},
        {"gfx", 2.0, 2, 0},
        {"view", 1.5, 2, 0},
        {"input", 0.3, 2, 0},
        {"am", 0.6, 2, 0},
        {"wm", 0.5, 2, 0},
        {"ss", 0.4, 2, 0},
        {"res", 0.4, 2, 0},
        {"hal", 0.9, 2, 0},
        {"dalvik", 1.1, 2, 0},
        {"network", 0.7, 2, 0},
        {"pagecache", 1.3, 2, 0},
        // Level 3: custom tracepoints with detailed reasons (energy /
        // thermal / migration decisions).
        {"energy", 20.0, 3, 0},
        {"thermal", 13.0, 3, 0},
        {"migration", 11.0, 3, 0},
    };
    for (std::size_t i = 0; i < cats.size(); ++i)
        cats[i].id = static_cast<uint16_t>(i + 1);
    return cats;
}

} // namespace

const std::vector<TraceCategory> &
categoryCatalog()
{
    static const std::vector<TraceCategory> cats = buildCategories();
    return cats;
}

double
levelRateMbPerCoreMin(int l)
{
    double sum = 0.0;
    for (const TraceCategory &c : categoryCatalog()) {
        if (c.level <= l)
            sum += c.mbPerCoreMin;
    }
    return sum;
}

Workload
levelWorkload(int level, unsigned cores)
{
    BTRACE_ASSERT(level >= 1 && level <= 3, "level must be 1..3");
    BTRACE_ASSERT(cores <= kCores, "too many cores");

    Workload w;
    w.name = "Level-" + std::to_string(level);
    w.seed = 100 + uint64_t(level);
    w.burstiness = 0.0;  // the figure models sustained production
    w.payloadLo = 16.0;
    w.payloadHi = 512.0;
    w.payloadShape = 1.1;

    const double bytes_per_core_sec =
        levelRateMbPerCoreMin(level) * 1024.0 * 1024.0 / 60.0;
    const double entry_bytes =
        double(EntryLayout::normalHeaderBytes) + w.meanPayloadBytes();

    // Real phones produce these categories with the Fig 4 skew: the
    // little cores run the hot paths while the big cores idle. The
    // weights keep the aggregate volume at the level's rate but give
    // the little cores ~2.3x the mean — which is exactly why the
    // per-core tracers' horizontal lines in Fig 3 sit so much lower
    // than BTrace's despite equal total capacity.
    auto weight = [](unsigned c) {
        switch (coreClassOf(c)) {
          case CoreClass::Little: return 3.2;
          case CoreClass::Middle: return 0.65;
          case CoreClass::Big: return 0.2;
        }
        return 1.0;
    };
    double weight_sum = 0.0;
    for (unsigned c = 0; c < cores; ++c)
        weight_sum += weight(c);

    for (unsigned c = 0; c < kCores; ++c) {
        const bool active = c < cores;
        w.ratePerSec[c] =
            active ? bytes_per_core_sec * double(cores) * weight(c) /
                         weight_sum / entry_bytes
                   : 0.0;
        w.totalThreads[c] = active ? 200 : 1;
        w.activeThreads[c] = active ? 20 : 1;
    }
    return w;
}

} // namespace btrace
