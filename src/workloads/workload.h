/**
 * @file
 * Synthetic smartphone workload model.
 *
 * The paper replays 20 traces recorded on a 12-core production phone
 * (4 little + 6 middle + 2 big cores). We do not have those traces;
 * instead each workload is described by the distributions the paper
 * reports: per-core mean production rates (Fig 4), per-core thread
 * counts — total over 30 s and concurrently active per second (Fig 6),
 * a heavy-tailed entry-size distribution, and bursty rate modulation.
 * See DESIGN.md §2 for why this preserves the evaluated behaviour.
 */

#ifndef BTRACE_WORKLOADS_WORKLOAD_H
#define BTRACE_WORKLOADS_WORKLOAD_H

#include <array>
#include <cstdint>
#include <string>

namespace btrace {

/** The paper's evaluation machine: a 12-core asymmetric SoC. */
constexpr unsigned kCores = 12;

/** Core class of the asymmetric SoC (cores 0-3 / 4-9 / 10-11). */
enum class CoreClass { Little, Middle, Big };

/** Class of core @p c on the modeled SoC. */
constexpr CoreClass
coreClassOf(unsigned c)
{
    return c < 4 ? CoreClass::Little
                 : (c < 10 ? CoreClass::Middle : CoreClass::Big);
}

/** One replayable scenario (a Table 2 column). */
struct Workload
{
    std::string name;

    /** Mean trace production rate per core, entries per second. */
    std::array<double, kCores> ratePerSec{};

    /** Distinct producing threads per core over the whole run (Fig 6
     *  "Total"). */
    std::array<uint32_t, kCores> totalThreads{};

    /** Concurrently active producing threads per core within one
     *  second (Fig 6 "Per Sec."). */
    std::array<uint32_t, kCores> activeThreads{};

    /** Bounded-Pareto payload size distribution, bytes. */
    double payloadLo = 16.0;
    double payloadHi = 512.0;
    double payloadShape = 1.1;

    /** Fraction of time spent in low-rate troughs, and the factor. */
    double burstiness = 0.3;
    double burstLowFactor = 0.2;

    double durationSec = 30.0;
    uint64_t seed = 1;

    /** Mean total production rate across all cores, entries/s. */
    double totalRatePerSec() const;

    /** Mean payload size of the bounded-Pareto distribution. */
    double meanPayloadBytes() const;

    /** Expected produced bytes over the full duration. */
    double expectedBytes() const;

    /** Scale every core's rate by @p factor (for bench --scale). */
    Workload scaled(double factor) const;
};

} // namespace btrace

#endif // BTRACE_WORKLOADS_WORKLOAD_H
