#include "daemon/daemon.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>

#include "trace/trace_file.h"

namespace btrace {

namespace {

/** mkdir -p: create every missing component of @p dir. */
Status
makeDirs(const std::string &dir)
{
    if (dir.empty() || dir == "." || dir == "/")
        return Status();
    std::string prefix;
    prefix.reserve(dir.size());
    std::size_t i = 0;
    while (i < dir.size()) {
        const std::size_t slash = dir.find('/', i + 1);
        prefix = dir.substr(0, slash == std::string::npos ? dir.size()
                                                          : slash);
        if (!prefix.empty() && prefix != "/" &&
            ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return errIo("cannot create output directory " + prefix);
        if (slash == std::string::npos)
            break;
        i = slash;
    }
    return Status();
}

} // namespace

std::string
daemonSegmentPath(const std::string &out_dir, uint64_t index)
{
    char name[64];
    std::snprintf(name, sizeof(name), "segment-%06llu.btrace",
                  static_cast<unsigned long long>(index));
    return out_dir + "/" + name;
}

Expected<std::unique_ptr<ConsumerDaemon>>
ConsumerDaemon::make(Session session, const DaemonOptions &opts)
{
    if (!session.valid())
        return errInvalidArgument("daemon needs a valid session");
    if (Status st = makeDirs(opts.outDir); !st.ok())
        return st;
    std::unique_ptr<ConsumerDaemon> d(
        new ConsumerDaemon(std::move(session), opts));
    if (Status st = d->openSegment(); !st.ok())
        return st;
    return Expected<std::unique_ptr<ConsumerDaemon>>(std::move(d));
}

ConsumerDaemon::ConsumerDaemon(Session s, const DaemonOptions &o)
    : sess(std::move(s)), opt(o)
{
}

ConsumerDaemon::~ConsumerDaemon()
{
    stop();
}

Status
ConsumerDaemon::openSegment()
{
    const std::string path = daemonSegmentPath(opt.outDir, segIndex);
    segFd = ::open(path.c_str(),
                   O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
    if (segFd < 0)
        return errIo("cannot open segment " + path);
    segHdr = SegmentHeaderV2{};
    segHdr.writerPid = uint64_t(::getpid());
    segHdr.attachGeneration = sess.generation();
    if (Status s = writeSegmentHeaderV2(segFd, segHdr); !s.ok()) {
        ::close(segFd);
        segFd = -1;
        return s;
    }
    segBytes = 0;
    ++st.segmentsOpened;
    return Status();
}

/** Stamp the clean-close flag and sync the finished segment. */
void
ConsumerDaemon::finalizeSegmentLocked()
{
    segHdr.flags |= SegmentHeaderV2::kCleanClose;
    (void)updateSegmentHeaderV2(segFd, segHdr);
    ::fsync(segFd);
}

Status
ConsumerDaemon::rotateIfNeeded()
{
    if (segBytes < opt.segmentBytes)
        return Status();
    finalizeSegmentLocked();
    ::close(segFd);
    segFd = -1;
    ++segIndex;
    if (Status s = openSegment(); !s.ok())
        return s;
    // Age out the oldest finished segments beyond the retention cap.
    if (opt.maxSegments != 0) {
        while (segIndex - oldestSegIndex > opt.maxSegments) {
            const std::string victim =
                daemonSegmentPath(opt.outDir, oldestSegIndex);
            if (::unlink(victim.c_str()) == 0)
                ++st.segmentsDeleted;
            ++oldestSegIndex;
        }
    }
    return Status();
}

Status
ConsumerDaemon::drainLocked(const Dump &d,
                            std::vector<uint32_t> &fresh)
{
    const bool sawLoss = d.overwrittenPositions != 0 ||
                         d.skippedBlocks != 0 ||
                         d.abandonedBlocks != 0;
    if (!d.entries.empty()) {
        // Records first, header second: a crash between the two
        // leaves the header *undercounting*, which the offline reader
        // reconciles (declared < scanned), never overcounting.
        if (Status s = appendTraceRecords(segFd, d.entries); !s.ok())
            return s;
        segBytes += d.entries.size() * sizeof(TraceDiskRecord);

        const uint64_t now = wallClockNs();
        if (segHdr.firstDrainUnixNs == 0)
            segHdr.firstDrainUnixNs = now;
        segHdr.lastDrainUnixNs = now;

        uint64_t newestStamp = 0;
        for (const DumpEntry &e : d.entries) {
            segHdr.noteEntry(e);
            st.payloadBytes += e.size;
            ProducerTally &tally = producers[e.thread];
            if (tally.records == 0 && tally.payloadBytes == 0)
                fresh.push_back(e.thread);
            ++tally.records;
            tally.payloadBytes += e.size;
            if (e.stamp >= kWallClockStampFloorNs) {
                if (now >= e.stamp) {
                    drainLag.add(now - e.stamp);
                    ++st.lagSampledRecords;
                } else {
                    // Drained before its own stamp: the wall clock
                    // stepped back between record and drain. A
                    // negative lag is garbage — keep it out of the
                    // histogram and count the clamp instead.
                    ++st.drainLagClamped;
                }
                if (e.stamp > newestStamp)
                    newestStamp = e.stamp;
            } else {
                ++st.lagUnstampedRecords;
            }
        }
        if (newestStamp != 0)
            lastLagNs = now > newestStamp ? now - newestStamp : 0;
    }
    segHdr.overwrittenPositions += d.overwrittenPositions;
    segHdr.skippedBlocks += d.skippedBlocks;
    segHdr.abandonedBlocks += d.abandonedBlocks;

    ++st.drains;
    st.entries += d.entries.size();
    st.overwrittenPositions += d.overwrittenPositions;
    st.skippedBlocks += d.skippedBlocks;
    st.abandonedBlocks += d.abandonedBlocks;

    if (!d.entries.empty() || sawLoss)
        return updateSegmentHeaderV2(segFd, segHdr);
    return Status();
}

Expected<uint64_t>
ConsumerDaemon::drainOnce()
{
    std::vector<uint32_t> fresh;
    MetricsRegistry *reg = nullptr;
    uint64_t n = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (segFd < 0)
            return errInvalidArgument("daemon already stopped");
        if (Status s = rotateIfNeeded(); !s.ok())
            return s;
        const Dump d =
            sess->dumpFrom(cursor, DumpOptions{opt.closeActive, false});
        if (Status s = drainLocked(d, fresh); !s.ok())
            return s;
        n = uint64_t(d.entries.size());
        reg = metricsReg;
    }
    // Outside mu: MetricsRegistry::collect() holds the registry lock
    // while running callbacks that take mu, so registering under mu
    // would invert that order (ABBA).
    exportProducers(fresh, reg);
    return Expected<uint64_t>(n);
}

SweepReport
ConsumerDaemon::sweepNow()
{
    const SweepReport r = sess.sweepDeadOwners();
    std::lock_guard<std::mutex> lock(mu);
    ++st.sweeps;
    st.reclaimedLeases += r.reclaimedLeases;
    st.reclaimedBytes += r.reclaimedBytes;
    st.clearedAttachments += r.clearedAttachments;
    return r;
}

void
ConsumerDaemon::run()
{
    const auto interval =
        std::chrono::duration<double>(opt.drainIntervalSec);
    uint64_t ticks = 0;
    while (!stopping.load(std::memory_order_acquire)) {
        (void)drainOnce();
        ++ticks;
        if (opt.sweepEveryNDrains != 0 &&
            ticks % opt.sweepEveryNDrains == 0)
            (void)sweepNow();
        std::this_thread::sleep_for(interval);
    }
}

void
ConsumerDaemon::start()
{
    if (running.exchange(true, std::memory_order_acq_rel))
        return;
    stopping.store(false, std::memory_order_release);
    worker = std::thread([this]() { run(); });
}

void
ConsumerDaemon::stop()
{
    stopping.store(true, std::memory_order_release);
    if (worker.joinable())
        worker.join();
    running.store(false, std::memory_order_release);

    std::vector<uint32_t> fresh;
    MetricsRegistry *reg = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (segFd < 0)
            return;
        // Final close-active drain so the tail of every open block
        // lands, then finalize the segment as cleanly closed.
        const Dump d = sess->dumpFrom(cursor, DumpOptions{true, false});
        (void)drainLocked(d, fresh);
        finalizeSegmentLocked();
        ::close(segFd);
        segFd = -1;
        reg = metricsReg;
    }
    exportProducers(fresh, reg);
}

DaemonStats
ConsumerDaemon::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

std::map<uint32_t, ProducerTally>
ConsumerDaemon::producerTallies() const
{
    std::lock_guard<std::mutex> lock(mu);
    return producers;
}

uint64_t
ConsumerDaemon::lastDrainLagNs() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lastLagNs;
}

std::string
ConsumerDaemon::currentSegmentPath() const
{
    std::lock_guard<std::mutex> lock(mu);
    return daemonSegmentPath(opt.outDir, segIndex);
}

void
ConsumerDaemon::registerMetrics(MetricsRegistry &registry)
{
    auto counter = [this, &registry](const char *name, const char *help,
                                     uint64_t DaemonStats::*field) {
        registry.addCounter(name, help, [this, field]() {
            std::lock_guard<std::mutex> lock(mu);
            return double(st.*field);
        });
    };
    counter("btraced_drains_total", "consumer drain passes",
            &DaemonStats::drains);
    counter("btraced_entries_total", "entries written to segments",
            &DaemonStats::entries);
    counter("btraced_segments_opened_total", "segment files opened",
            &DaemonStats::segmentsOpened);
    counter("btraced_segments_deleted_total",
            "segments aged out by retention", &DaemonStats::segmentsDeleted);
    counter("btraced_sweeps_total", "dead-producer sweep passes",
            &DaemonStats::sweeps);
    counter("btraced_reclaimed_leases_total",
            "leases reclaimed from dead producers",
            &DaemonStats::reclaimedLeases);
    counter("btraced_reclaimed_bytes_total",
            "bytes confirmed on behalf of dead producers",
            &DaemonStats::reclaimedBytes);
    counter("btraced_cleared_attachments_total",
            "crashed attachments swept from the registry",
            &DaemonStats::clearedAttachments);
    counter("btraced_overwritten_positions_total",
            "positions lost to producer overwrite (data loss)",
            &DaemonStats::overwrittenPositions);
    counter("btraced_skipped_blocks_total",
            "blocks lost to SKP markers (data loss)",
            &DaemonStats::skippedBlocks);
    counter("btraced_abandoned_blocks_total",
            "blocks abandoned by dead producers (data loss)",
            &DaemonStats::abandonedBlocks);
    counter("btraced_payload_bytes_total",
            "payload bytes drained to segments",
            &DaemonStats::payloadBytes);
    counter("btraced_lag_sampled_records_total",
            "wall-clock-stamped records fed to the drain-lag histogram",
            &DaemonStats::lagSampledRecords);
    counter("btraced_lag_unstamped_records_total",
            "logically stamped records with no wall-clock lag",
            &DaemonStats::lagUnstampedRecords);
    counter("btraced_drain_lag_clamped_total",
            "future-stamped records clamped out of the lag histogram",
            &DaemonStats::drainLagClamped);
    registry.addGauge("btraced_segment_bytes",
                      "payload bytes in the open segment", [this]() {
                          std::lock_guard<std::mutex> lock(mu);
                          return double(segBytes);
                      });
    registry.addGauge("btraced_last_drain_lag_ns",
                      "newest-record lag of the latest drain pass",
                      [this]() {
                          std::lock_guard<std::mutex> lock(mu);
                          return double(lastLagNs);
                      });
    registry.addGauge("btraced_producers_seen",
                      "distinct writer ids drained so far", [this]() {
                          std::lock_guard<std::mutex> lock(mu);
                          return double(producers.size());
                      });
    registry.addHistogram("btraced_drain_lag_ns",
                          "record-stamp to drain-time lag", &drainLag);

    // Producers drained before this call get their labeled series
    // now; later arrivals are added lazily by drainOnce (outside mu —
    // see there for the lock-order note).
    std::vector<uint32_t> known;
    {
        std::lock_guard<std::mutex> lock(mu);
        metricsReg = &registry;
        known.reserve(producers.size());
        for (const auto &kv : producers)
            known.push_back(kv.first);
    }
    exportProducers(known, &registry);
}

void
ConsumerDaemon::exportProducers(const std::vector<uint32_t> &ids,
                                MetricsRegistry *registry)
{
    if (registry == nullptr || ids.empty())
        return;
    for (const uint32_t id : ids) {
        const MetricLabels labels = {
            {"producer", std::to_string(id)}};
        registry->addCounter(
            "btraced_producer_records_total",
            "records drained, by writer id", labels, [this, id]() {
                std::lock_guard<std::mutex> lock(mu);
                const auto it = producers.find(id);
                return it == producers.end()
                           ? 0.0
                           : double(it->second.records);
            });
        registry->addCounter(
            "btraced_producer_bytes_total",
            "payload bytes drained, by writer id", labels,
            [this, id]() {
                std::lock_guard<std::mutex> lock(mu);
                const auto it = producers.find(id);
                return it == producers.end()
                           ? 0.0
                           : double(it->second.payloadBytes);
            });
    }
}

} // namespace btrace
