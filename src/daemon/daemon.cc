#include "daemon/daemon.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>

#include "trace/trace_file.h"

namespace btrace {

namespace {

/** mkdir -p: create every missing component of @p dir. */
Status
makeDirs(const std::string &dir)
{
    if (dir.empty() || dir == "." || dir == "/")
        return Status();
    std::string prefix;
    prefix.reserve(dir.size());
    std::size_t i = 0;
    while (i < dir.size()) {
        const std::size_t slash = dir.find('/', i + 1);
        prefix = dir.substr(0, slash == std::string::npos ? dir.size()
                                                          : slash);
        if (!prefix.empty() && prefix != "/" &&
            ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return errIo("cannot create output directory " + prefix);
        if (slash == std::string::npos)
            break;
        i = slash;
    }
    return Status();
}

} // namespace

std::string
daemonSegmentPath(const std::string &out_dir, uint64_t index)
{
    char name[64];
    std::snprintf(name, sizeof(name), "segment-%06llu.btrace",
                  static_cast<unsigned long long>(index));
    return out_dir + "/" + name;
}

Expected<std::unique_ptr<ConsumerDaemon>>
ConsumerDaemon::make(Session session, const DaemonOptions &opts)
{
    if (!session.valid())
        return errInvalidArgument("daemon needs a valid session");
    if (Status st = makeDirs(opts.outDir); !st.ok())
        return st;
    std::unique_ptr<ConsumerDaemon> d(
        new ConsumerDaemon(std::move(session), opts));
    if (Status st = d->openSegment(); !st.ok())
        return st;
    return Expected<std::unique_ptr<ConsumerDaemon>>(std::move(d));
}

ConsumerDaemon::ConsumerDaemon(Session s, const DaemonOptions &o)
    : sess(std::move(s)), opt(o)
{
}

ConsumerDaemon::~ConsumerDaemon()
{
    stop();
}

Status
ConsumerDaemon::openSegment()
{
    const std::string path = daemonSegmentPath(opt.outDir, segIndex);
    segFd = ::open(path.c_str(),
                   O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (segFd < 0)
        return errIo("cannot open segment " + path);
    if (Status s = writeTraceFileHeader(segFd); !s.ok()) {
        ::close(segFd);
        segFd = -1;
        return s;
    }
    segBytes = 0;
    ++st.segmentsOpened;
    return Status();
}

Status
ConsumerDaemon::rotateIfNeeded()
{
    if (segBytes < opt.segmentBytes)
        return Status();
    ::close(segFd);
    segFd = -1;
    ++segIndex;
    if (Status s = openSegment(); !s.ok())
        return s;
    // Age out the oldest finished segments beyond the retention cap.
    if (opt.maxSegments != 0) {
        while (segIndex - oldestSegIndex > opt.maxSegments) {
            const std::string victim =
                daemonSegmentPath(opt.outDir, oldestSegIndex);
            if (::unlink(victim.c_str()) == 0)
                ++st.segmentsDeleted;
            ++oldestSegIndex;
        }
    }
    return Status();
}

Expected<uint64_t>
ConsumerDaemon::drainOnce()
{
    std::lock_guard<std::mutex> lock(mu);
    if (segFd < 0)
        return errInvalidArgument("daemon already stopped");
    if (Status s = rotateIfNeeded(); !s.ok())
        return s;
    const Dump d =
        sess->dumpFrom(cursor, DumpOptions{opt.closeActive, false});
    if (!d.entries.empty()) {
        if (Status s = appendTraceRecords(segFd, d.entries); !s.ok())
            return s;
        segBytes += d.entries.size() * sizeof(TraceDiskRecord);
    }
    ++st.drains;
    st.entries += d.entries.size();
    st.overwrittenPositions += d.overwrittenPositions;
    st.skippedBlocks += d.skippedBlocks;
    st.abandonedBlocks += d.abandonedBlocks;
    return Expected<uint64_t>(uint64_t(d.entries.size()));
}

SweepReport
ConsumerDaemon::sweepNow()
{
    const SweepReport r = sess.sweepDeadOwners();
    std::lock_guard<std::mutex> lock(mu);
    ++st.sweeps;
    st.reclaimedLeases += r.reclaimedLeases;
    st.reclaimedBytes += r.reclaimedBytes;
    st.clearedAttachments += r.clearedAttachments;
    return r;
}

void
ConsumerDaemon::run()
{
    const auto interval =
        std::chrono::duration<double>(opt.drainIntervalSec);
    uint64_t ticks = 0;
    while (!stopping.load(std::memory_order_acquire)) {
        (void)drainOnce();
        ++ticks;
        if (opt.sweepEveryNDrains != 0 &&
            ticks % opt.sweepEveryNDrains == 0)
            (void)sweepNow();
        std::this_thread::sleep_for(interval);
    }
}

void
ConsumerDaemon::start()
{
    if (running.exchange(true, std::memory_order_acq_rel))
        return;
    stopping.store(false, std::memory_order_release);
    worker = std::thread([this]() { run(); });
}

void
ConsumerDaemon::stop()
{
    stopping.store(true, std::memory_order_release);
    if (worker.joinable())
        worker.join();
    running.store(false, std::memory_order_release);

    std::lock_guard<std::mutex> lock(mu);
    if (segFd < 0)
        return;
    // Final close-active drain so the tail of every open block lands.
    const Dump d = sess->dumpFrom(cursor, DumpOptions{true, false});
    if (!d.entries.empty() &&
        appendTraceRecords(segFd, d.entries).ok()) {
        segBytes += d.entries.size() * sizeof(TraceDiskRecord);
        ++st.drains;
        st.entries += d.entries.size();
        st.overwrittenPositions += d.overwrittenPositions;
        st.skippedBlocks += d.skippedBlocks;
        st.abandonedBlocks += d.abandonedBlocks;
    }
    ::fsync(segFd);
    ::close(segFd);
    segFd = -1;
}

DaemonStats
ConsumerDaemon::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

std::string
ConsumerDaemon::currentSegmentPath() const
{
    std::lock_guard<std::mutex> lock(mu);
    return daemonSegmentPath(opt.outDir, segIndex);
}

void
ConsumerDaemon::registerMetrics(MetricsRegistry &registry)
{
    auto counter = [this, &registry](const char *name, const char *help,
                                     uint64_t DaemonStats::*field) {
        registry.addCounter(name, help, [this, field]() {
            std::lock_guard<std::mutex> lock(mu);
            return double(st.*field);
        });
    };
    counter("btraced_drains_total", "consumer drain passes",
            &DaemonStats::drains);
    counter("btraced_entries_total", "entries written to segments",
            &DaemonStats::entries);
    counter("btraced_segments_opened_total", "segment files opened",
            &DaemonStats::segmentsOpened);
    counter("btraced_segments_deleted_total",
            "segments aged out by retention", &DaemonStats::segmentsDeleted);
    counter("btraced_sweeps_total", "dead-producer sweep passes",
            &DaemonStats::sweeps);
    counter("btraced_reclaimed_leases_total",
            "leases reclaimed from dead producers",
            &DaemonStats::reclaimedLeases);
    counter("btraced_reclaimed_bytes_total",
            "bytes confirmed on behalf of dead producers",
            &DaemonStats::reclaimedBytes);
    counter("btraced_cleared_attachments_total",
            "crashed attachments swept from the registry",
            &DaemonStats::clearedAttachments);
    counter("btraced_overwritten_positions_total",
            "positions lost to producer overwrite (data loss)",
            &DaemonStats::overwrittenPositions);
    counter("btraced_skipped_blocks_total",
            "blocks lost to SKP markers (data loss)",
            &DaemonStats::skippedBlocks);
    registry.addGauge("btraced_segment_bytes",
                      "payload bytes in the open segment", [this]() {
                          std::lock_guard<std::mutex> lock(mu);
                          return double(segBytes);
                      });
}

} // namespace btrace
