/**
 * @file
 * ConsumerDaemon: the collection half of btraced, the out-of-process
 * consumer (DESIGN.md §11).
 *
 * A daemon attaches to a shared arena as one more Session and runs a
 * drain loop: each tick pulls everything new through the incremental
 * consumer (dumpFrom with a persistent cursor), appends the decoded
 * entries to a bounded rotating segment file (trace_file.h format,
 * same as TracePersister), and every few ticks sweeps the arena for
 * leases held by producers that died (Session::sweepDeadOwners).
 * Producers in other processes never block on any of it — the §4.3
 * consumer contract.
 *
 * Observability rides the PR 4/5 planes: a MetricsRegistry gauge/
 * counter set (drains, entries, segments, reclaimed leases, data
 * loss) and an optional EventJournal attached to the daemon's tracer
 * view for the lifecycle timeline. Segments are written in the v2
 * format (trace_file.h): each drain appends its records and then
 * rewrites the segment header in place with the accumulated
 * provenance — writer pid, attach generation, drain window,
 * per-category tallies, loss counters — so offline analytics
 * (btrace_stats) can reconcile segments against these live counters.
 *
 * Freshness (DESIGN.md §13): for records whose stamps are wall-clock
 * nanoseconds (>= kWallClockStampFloorNs), every drain feeds
 * record-stamp → drain-time lag into a ConcurrentHistogram and tracks
 * the newest-record lag of the latest pass; logical stamps are
 * counted as unstamped instead of polluting the histogram, and
 * records drained before their own stamp (wall-clock step-back) are
 * clamped out of it and counted separately. Per-writer
 * attribution keys on DumpEntry::thread (the writer pid for
 * cross-process arenas) and exports one labeled counter series per
 * producer.
 */

#ifndef BTRACE_DAEMON_DAEMON_H
#define BTRACE_DAEMON_DAEMON_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "common/latency_histogram.h"
#include "common/status.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "trace/trace_file.h"

namespace btrace {

/** Knobs of the btraced drain loop. */
struct DaemonOptions
{
    /** Directory receiving segment files (created if missing). */
    std::string outDir = ".";
    /** Rotate to a fresh segment once the current one exceeds this. */
    std::size_t segmentBytes = 4u << 20;
    /** Keep at most this many finished segments (0 = unbounded). */
    std::size_t maxSegments = 8;
    /** Seconds between drains of the run loop. */
    double drainIntervalSec = 0.01;
    /** Sweep dead producers every N drains (0 = never). */
    unsigned sweepEveryNDrains = 16;
    /**
     * Close partially filled blocks on each drain (§4.3 close-on-read)
     * so the newest entries don't wait in their active blocks.
     */
    bool closeActive = true;
};

/** Monotonic totals of one daemon's lifetime. */
struct DaemonStats
{
    uint64_t drains = 0;
    uint64_t entries = 0;           //!< entries written to segments
    uint64_t segmentsOpened = 0;
    uint64_t segmentsDeleted = 0;   //!< rotated out by maxSegments
    uint64_t sweeps = 0;
    uint64_t reclaimedLeases = 0;
    uint64_t reclaimedBytes = 0;
    uint64_t clearedAttachments = 0;
    uint64_t overwrittenPositions = 0;  //!< data loss seen by the cursor
    uint64_t skippedBlocks = 0;  //!< blocks lost to SKP markers
    uint64_t abandonedBlocks = 0;
    uint64_t payloadBytes = 0;   //!< sum of drained DumpEntry::size
    uint64_t lagSampledRecords = 0;    //!< wall-clock stamps, lag taken
    uint64_t lagUnstampedRecords = 0;  //!< logical stamps, no lag
    /**
     * Wall-clock-stamped records drained *before* their stamp (the
     * clock stepped back between record and drain — NTP slew, manual
     * set, or a producer on a different clock). Their "negative" lag
     * is clamped out of the histogram and tallied here instead, so a
     * clock step is visible as a counter, not as a spurious pile of
     * zero-lag samples.
     */
    uint64_t drainLagClamped = 0;
};

/** Per-producer (writer pid) drain tallies. */
struct ProducerTally
{
    uint64_t records = 0;
    uint64_t payloadBytes = 0;
};

/**
 * The drain loop around one attached Session. Use either the
 * synchronous surface (drainOnce / sweepNow, caller-driven — what
 * tests and single-shot tools want) or start()/stop() for the
 * background thread btraced runs.
 */
class ConsumerDaemon
{
  public:
    /**
     * Wrap @p session (must be valid; typically Session::attachFile
     * or attachFd, but the owner session works too). Fails with
     * IoError when outDir cannot be created or the first segment
     * cannot be opened.
     */
    static Expected<std::unique_ptr<ConsumerDaemon>>
    make(Session session, const DaemonOptions &opts = {});

    ~ConsumerDaemon();

    ConsumerDaemon(const ConsumerDaemon &) = delete;
    ConsumerDaemon &operator=(const ConsumerDaemon &) = delete;

    /**
     * One synchronous drain: dumpFrom into the current segment,
     * rotating first when it is over budget. Returns the entries
     * drained this call.
     */
    Expected<uint64_t> drainOnce();

    /** One synchronous dead-producer sweep. */
    SweepReport sweepNow();

    /** Start the background drain thread (idempotent). */
    void start();

    /**
     * Stop the thread, run one final close-active drain so the tail
     * of every open block is captured, and sync the segment.
     * Idempotent; the destructor calls it.
     */
    void stop();

    DaemonStats stats() const;

    /** Per-producer tallies keyed by writer id (DumpEntry::thread). */
    std::map<uint32_t, ProducerTally> producerTallies() const;

    /** Record-stamp → drain-time lag of wall-clock-stamped records. */
    const ConcurrentHistogram &drainLagHistogram() const
    {
        return drainLag;
    }

    /** Newest-record lag of the latest drain that landed records. */
    uint64_t lastDrainLagNs() const;

    /** The daemon's own attachment (e.g. for attachJournal). */
    Session &session() { return sess; }

    /** Path of the segment currently being appended to. */
    std::string currentSegmentPath() const;

    /**
     * Register drain/reclaim counters, the drain-lag histogram, and
     * the per-producer labeled series on @p registry. Producers that
     * first appear in later drains get their series added lazily (the
     * registry must outlive the daemon's drain loop once passed here).
     */
    void registerMetrics(MetricsRegistry &registry);

  private:
    ConsumerDaemon(Session s, const DaemonOptions &o);

    Status openSegment();
    Status rotateIfNeeded();
    void finalizeSegmentLocked();
    /** Append + account one dump; new producer ids land in @p fresh. */
    Status drainLocked(const Dump &d, std::vector<uint32_t> &fresh);
    void exportProducers(const std::vector<uint32_t> &ids,
                         MetricsRegistry *registry);
    void run();

    Session sess;
    DaemonOptions opt;

    int segFd = -1;
    uint64_t segIndex = 0;       //!< index of the *open* segment
    uint64_t oldestSegIndex = 0; //!< oldest segment still on disk
    std::size_t segBytes = 0;    //!< payload bytes in the open segment
    SegmentHeaderV2 segHdr;      //!< accumulated header, mirrored on disk
    DumpCursor cursor;

    mutable std::mutex mu;       //!< serializes drains vs stop()
    DaemonStats st;
    std::map<uint32_t, ProducerTally> producers;
    MetricsRegistry *metricsReg = nullptr;  //!< set by registerMetrics
    uint64_t lastLagNs = 0;

    ConcurrentHistogram drainLag;

    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    std::thread worker;
};

/** "%s/segment-%06llu.btrace" — segment path naming, shared with tests. */
std::string daemonSegmentPath(const std::string &out_dir,
                              uint64_t index);

} // namespace btrace

#endif // BTRACE_DAEMON_DAEMON_H
