#include "common/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace btrace {

namespace {

/**
 * Stable small integer id per thread: assigned once on first use, so
 * a thread keeps hitting the same shard (and the same cache lines)
 * for its whole lifetime instead of hashing a recycled native id.
 */
unsigned
threadOrdinal()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

} // namespace

uint64_t
HistogramSnapshot::quantile(double q) const
{
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank: the smallest bucket whose cumulative count covers
    // rank ceil(q * total), with rank >= 1.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * double(total) + 0.5));
    uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen >= rank)
            return ConcurrentHistogram::bucketLowerBound(b);
    }
    return ConcurrentHistogram::bucketLowerBound(counts.size() - 1);
}

uint64_t
HistogramSnapshot::maxValue() const
{
    for (std::size_t b = counts.size(); b-- > 0;) {
        if (counts[b] != 0)
            return ConcurrentHistogram::bucketLowerBound(b);
    }
    return 0;
}

HistogramSnapshot &
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (counts.empty())
        counts.assign(other.counts.size(), 0);
    for (std::size_t b = 0;
         b < counts.size() && b < other.counts.size(); ++b)
        counts[b] += other.counts[b];
    total += other.total;
    sum += other.sum;
    return *this;
}

ConcurrentHistogram::ConcurrentHistogram(unsigned shards)
{
    if (shards == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        shards = std::clamp(hw, 2u, 16u);
    }
    nShards = shards;
    this->shards = std::make_unique<Shard[]>(nShards);
    clear();
}

std::size_t
ConcurrentHistogram::bucketOf(uint64_t v)
{
    if (v < kSubCount)
        return static_cast<std::size_t>(v);
    const unsigned exp = std::bit_width(v) - 1;  // v in [2^exp, 2^exp+1)
    if (exp > kMaxExp)
        return kBuckets - 1;  // overflow bucket
    const uint64_t sub = (v >> (exp - kSubBits)) - kSubCount;
    return kSubCount +
           std::size_t(exp - kSubBits) * kSubCount +
           static_cast<std::size_t>(sub);
}

uint64_t
ConcurrentHistogram::bucketLowerBound(std::size_t b)
{
    if (b < kSubCount)
        return b;
    if (b >= kBuckets - 1)
        return uint64_t(1) << (kMaxExp + 1);  // overflow representative
    const std::size_t i = b - kSubCount;
    const unsigned exp = kSubBits + unsigned(i / kSubCount);
    const uint64_t sub = i % kSubCount;
    return (uint64_t(kSubCount) + sub) << (exp - kSubBits);
}

unsigned
ConcurrentHistogram::shardFor() const
{
    return threadOrdinal() % nShards;
}

void
ConcurrentHistogram::add(uint64_t v)
{
    addToShard(shardFor(), v);
}

void
ConcurrentHistogram::addToShard(unsigned shard, uint64_t v)
{
    Shard &sh = shards[shard % nShards];
    sh.counts[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sh.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot
ConcurrentHistogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.counts.assign(kBuckets, 0);
    for (unsigned s = 0; s < nShards; ++s) {
        for (std::size_t b = 0; b < kBuckets; ++b) {
            snap.counts[b] +=
                shards[s].counts[b].load(std::memory_order_relaxed);
        }
        snap.sum += shards[s].sum.load(std::memory_order_relaxed);
    }
    for (const uint64_t c : snap.counts)
        snap.total += c;
    return snap;
}

uint64_t
ConcurrentHistogram::count() const
{
    uint64_t n = 0;
    for (unsigned s = 0; s < nShards; ++s)
        for (std::size_t b = 0; b < kBuckets; ++b)
            n += shards[s].counts[b].load(std::memory_order_relaxed);
    return n;
}

void
ConcurrentHistogram::clear()
{
    for (unsigned s = 0; s < nShards; ++s) {
        for (std::size_t b = 0; b < kBuckets; ++b)
            shards[s].counts[b].store(0, std::memory_order_relaxed);
        shards[s].sum.store(0, std::memory_order_relaxed);
    }
}

} // namespace btrace
