/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The replay engine and workload generator must be bit-for-bit
 * reproducible across runs and platforms, so we avoid std::mt19937
 * distribution objects (whose outputs are implementation-defined for
 * some distributions) and implement xoshiro256** plus the handful of
 * distributions we need.
 */

#ifndef BTRACE_COMMON_PRNG_H
#define BTRACE_COMMON_PRNG_H

#include <cstdint>

namespace btrace {

/** xoshiro256** 1.0 generator, seeded via splitmix64. */
class Prng
{
  public:
    explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound); bound must be non-zero. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t uniform(uint64_t lo, uint64_t hi);

    /** Exponentially distributed double with the given mean (> 0). */
    double exponential(double mean);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Bounded Pareto-ish heavy-tail sample in [lo, hi]: most samples
     * near @p lo, occasional large ones. @p shape > 0 controls the
     * tail (smaller = heavier).
     */
    double heavyTail(double lo, double hi, double shape);

  private:
    uint64_t s[4];
};

} // namespace btrace

#endif // BTRACE_COMMON_PRNG_H
