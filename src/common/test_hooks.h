/**
 * @file
 * Deterministic concurrency test hooks.
 *
 * BTrace's lock-free algorithms have a handful of critical windows —
 * between the core-local read and the Allocated fetch_add, between the
 * Confirmed lock and the Allocated reset, between the speculative copy
 * and its re-validation, ... — whose interleavings decide correctness.
 * Uncontrolled thread scheduling hits those windows rarely; tests need
 * to *force* them.
 *
 * BTRACE_TEST_YIELD(Point) marks such a window. When the build enables
 * test hooks (-DBTRACE_TEST_HOOKS=ON, the default for development and
 * CI builds; see the top-level CMakeLists.txt) the macro expands to a
 * single relaxed atomic load and a predicted-not-taken branch; with an
 * installed callback (sim::PreemptionInjector) the arriving thread can
 * be parked, released, or made to yield at exactly that point. With
 * hooks disabled the macro compiles to nothing, so release builds pay
 * zero cost.
 *
 * The callback is installed process-globally. Install/uninstall must
 * not race active tracer threads: tests install before spawning
 * producers and uninstall after joining them (PreemptionInjector's
 * constructor/destructor enforce this shape).
 */

#ifndef BTRACE_COMMON_TEST_HOOKS_H
#define BTRACE_COMMON_TEST_HOOKS_H

#include <atomic>

namespace btrace::hooks {

/** Identifies one critical window in the lock-free core. */
enum class YieldPoint : int
{
    AllocPreReserve = 0,      //!< allocate: core-local read done, Allocated FAA next
    AllocPreBoundaryConfirm,  //!< allocate: tail dummy written, its confirm next
    AllocPreStaleConfirm,     //!< allocate: stale-round dummy written, confirm next
    AdvancePostClaim,         //!< tryAdvance: global FAA done, metadata read next
    AdvancePreLock,           //!< tryAdvance: completeness checked, lock CAS next
    AdvancePreReset,          //!< tryAdvance: Confirmed locked, Allocated reset next
    AdvancePreInstall,        //!< tryAdvance: header confirmed, core-local CAS next
    ClosePreClaim,            //!< closeRound: Allocated read, claim CAS next
    ReadPostCopy,             //!< readBlock: copy done, re-validation next
    ResizePostFreeze,         //!< resize: frozen bit set, quiesce next
    ResizePreDecommit,        //!< resize: epochs synchronized, decommit next
    LeasePreClaim,            //!< lease: core-local read done, span FAA next
    LeasePreCloseConfirm,     //!< leaseClose: remainder dummied, confirm next
    ControlPreSwap,           //!< applyControl: snapshot built, pointer swap next
    Count
};

constexpr int yieldPointCount = static_cast<int>(YieldPoint::Count);

/** Callback invoked by an armed yield point; @p ctx is user state. */
using Hook = void (*)(YieldPoint point, void *ctx);

namespace detail {
// ctx is published before fn (release) and read after it (acquire on
// fn), so a hook observed non-null always sees its own context.
inline std::atomic<Hook> g_fn{nullptr};
inline std::atomic<void *> g_ctx{nullptr};
} // namespace detail

/** Install @p fn/@p ctx as the process-wide hook (nullptr clears). */
inline void
setHook(Hook fn, void *ctx)
{
    if (fn) {
        detail::g_ctx.store(ctx, std::memory_order_release);
        detail::g_fn.store(fn, std::memory_order_release);
    } else {
        detail::g_fn.store(nullptr, std::memory_order_release);
        detail::g_ctx.store(nullptr, std::memory_order_release);
    }
}

/** True iff a hook is currently installed. */
inline bool
hookInstalled()
{
    return detail::g_fn.load(std::memory_order_acquire) != nullptr;
}

/** Called by BTRACE_TEST_YIELD; near-zero cost when no hook is set. */
inline void
maybeYield(YieldPoint p)
{
    const Hook fn = detail::g_fn.load(std::memory_order_acquire);
    if (fn) [[unlikely]]
        fn(p, detail::g_ctx.load(std::memory_order_relaxed));
}

} // namespace btrace::hooks

#if defined(BTRACE_ENABLE_TEST_HOOKS) && BTRACE_ENABLE_TEST_HOOKS
#define BTRACE_TEST_YIELD(point)                                        \
    ::btrace::hooks::maybeYield(::btrace::hooks::YieldPoint::point)
#else
#define BTRACE_TEST_YIELD(point) ((void)0)
#endif

#endif // BTRACE_COMMON_TEST_HOOKS_H
