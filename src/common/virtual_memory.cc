#include "common/virtual_memory.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/panic.h"

namespace btrace {

std::size_t
VirtualSpan::pageSize()
{
    static const std::size_t sz =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return sz;
}

VirtualSpan::VirtualSpan(std::size_t max_bytes)
{
    reserved = alignUp(max_bytes, pageSize());
    BTRACE_ASSERT(reserved > 0, "empty span");
    void *p = ::mmap(nullptr, reserved, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED)
        BTRACE_FATAL("mmap failed reserving trace buffer");
    base = static_cast<uint8_t *>(p);
}

VirtualSpan::~VirtualSpan()
{
    if (base)
        ::munmap(base, reserved);
}

VirtualSpan::VirtualSpan(VirtualSpan &&other) noexcept
    : base(std::exchange(other.base, nullptr)),
      reserved(std::exchange(other.reserved, 0))
{
}

VirtualSpan &
VirtualSpan::operator=(VirtualSpan &&other) noexcept
{
    if (this != &other) {
        if (base)
            ::munmap(base, reserved);
        base = std::exchange(other.base, nullptr);
        reserved = std::exchange(other.reserved, 0);
    }
    return *this;
}

void
VirtualSpan::commit(std::size_t offset, std::size_t len)
{
    BTRACE_ASSERT(offset + len <= reserved, "commit out of range");
    if (len)
        ::madvise(base + offset, len, MADV_WILLNEED);
}

void
VirtualSpan::decommit(std::size_t offset, std::size_t len)
{
    BTRACE_ASSERT(offset + len <= reserved, "decommit out of range");
    BTRACE_ASSERT(offset % pageSize() == 0 && len % pageSize() == 0,
                  "decommit must be page-aligned");
    if (len) {
        const int rc = ::madvise(base + offset, len, MADV_DONTNEED);
        BTRACE_ASSERT(rc == 0, "madvise(MADV_DONTNEED) failed");
    }
}

std::size_t
VirtualSpan::residentBytes() const
{
    const std::size_t pages = reserved / pageSize();
    std::vector<unsigned char> vec(pages);
    if (::mincore(base, reserved, vec.data()) != 0)
        return 0;
    std::size_t resident = 0;
    for (unsigned char flag : vec)
        if (flag & 1)
            ++resident;
    return resident * pageSize();
}

} // namespace btrace
