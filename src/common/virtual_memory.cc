#include "common/virtual_memory.h"

#include <utility>

#include "common/cacheline.h"
#include "common/panic.h"

namespace btrace {

namespace {

std::unique_ptr<StorageBackend>
makePrivate(std::size_t max_bytes)
{
    StorageOptions o;
    o.kind = StorageKind::Private;
    o.bytes = max_bytes;
    return makeStorageBackend(o);
}

} // namespace

VirtualSpan::VirtualSpan(std::size_t max_bytes)
    : VirtualSpan(makePrivate(max_bytes))
{
}

VirtualSpan::VirtualSpan(std::unique_ptr<StorageBackend> b)
    : impl(std::move(b))
{
    BTRACE_ASSERT(impl != nullptr, "null storage backend");
    base = impl->data();
    reserved = impl->maxSize();
    BTRACE_ASSERT(reserved > 0, "empty span");
}

VirtualSpan::VirtualSpan(VirtualSpan &&other) noexcept
    : impl(std::move(other.impl)),
      base(std::exchange(other.base, nullptr)),
      reserved(std::exchange(other.reserved, 0))
{
}

VirtualSpan &
VirtualSpan::operator=(VirtualSpan &&other) noexcept
{
    if (this != &other) {
        impl = std::move(other.impl);
        base = std::exchange(other.base, nullptr);
        reserved = std::exchange(other.reserved, 0);
    }
    return *this;
}

void
VirtualSpan::checkRange(std::size_t offset, std::size_t len,
                        const char *what) const
{
    // Overflow-safe form of offset + len <= reserved: the naive sum
    // wraps for adversarial offsets and would wave a wild range
    // through to madvise/fallocate.
    (void)what;
    BTRACE_ASSERT(len <= reserved,
                  "span range longer than the reservation");
    BTRACE_ASSERT(offset <= reserved - len,
                  "span range leaves the reservation");
}

void
VirtualSpan::commit(std::size_t offset, std::size_t len)
{
    checkRange(offset, len, "commit");
    if (len == 0)
        return;
    // Advisory: widening to whole pages touches only pages the range
    // already overlaps.
    const std::size_t page = pageSize();
    const std::size_t lo = alignDown(offset, page);
    const std::size_t hi = alignUp(offset + len, page);
    impl->commit(lo, hi - lo);
}

void
VirtualSpan::decommit(std::size_t offset, std::size_t len)
{
    checkRange(offset, len, "decommit");
    // Destructive: shrink inward to whole pages. An edge page shared
    // with bytes outside the range stays resident — releasing it
    // would zero live data the caller never asked to drop.
    const std::size_t page = pageSize();
    const std::size_t lo = alignUp(offset, page);
    const std::size_t hi = alignDown(offset + len, page);
    if (lo < hi)
        impl->decommit(lo, hi - lo);
}

} // namespace btrace
