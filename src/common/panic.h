/**
 * @file
 * Error-handling primitives, in the spirit of gem5's logging.hh.
 *
 * btrace::panic() reports an internal invariant violation (a bug in
 * this library) and aborts. btrace::fatal() reports a condition caused
 * by the caller (bad configuration, invalid arguments) and exits.
 * BTRACE_ASSERT is an always-on invariant check used on cold paths;
 * BTRACE_DASSERT compiles away in release builds and may be used on
 * hot paths.
 */

#ifndef BTRACE_COMMON_PANIC_H
#define BTRACE_COMMON_PANIC_H

#include <cstdio>
#include <cstdlib>

namespace btrace {

/** Print an internal-bug diagnostic and abort(). */
[[noreturn]] inline void
panicAt(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "btrace panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

/** Print a user-error diagnostic and exit(1). */
[[noreturn]] inline void
fatalAt(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "btrace fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace btrace

#define BTRACE_PANIC(msg) ::btrace::panicAt(__FILE__, __LINE__, msg)
#define BTRACE_FATAL(msg) ::btrace::fatalAt(__FILE__, __LINE__, msg)

/** Always-on invariant check; use on cold paths only. */
#define BTRACE_ASSERT(cond, msg)                                        \
    do {                                                                \
        if (!(cond))                                                    \
            BTRACE_PANIC("assertion failed: " #cond " — " msg);         \
    } while (0)

/** Debug-only invariant check; safe on hot paths. */
#ifdef NDEBUG
#define BTRACE_DASSERT(cond, msg) do { (void)sizeof(cond); } while (0)
#else
#define BTRACE_DASSERT(cond, msg) BTRACE_ASSERT(cond, msg)
#endif

#endif // BTRACE_COMMON_PANIC_H
