#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/panic.h"

namespace btrace {

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    sum += x;
    logSum += std::log(std::max(x, 1e-9));
}

double
RunningStat::geoMean() const
{
    return n ? std::exp(logSum / double(n)) : 0.0;
}

void
SampleSet::ensureSorted()
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
SampleSet::percentile(double q)
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        q * double(samples.size() - 1) + 0.5);
    return samples[rank];
}

double
SampleSet::mean() const
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    return sum / double(samples.size());
}

double
SampleSet::geoMean() const
{
    return btrace::geoMean(samples);
}

Histogram::Histogram(double limit, std::size_t buckets)
    : width(limit / double(buckets)), counts(buckets, 0)
{
    BTRACE_ASSERT(limit > 0 && buckets > 0, "bad histogram geometry");
}

void
Histogram::add(double x)
{
    ++total;
    if (x < 0)
        x = 0;
    const auto idx = static_cast<std::size_t>(x / width);
    if (idx >= counts.size())
        ++past;
    else
        ++counts[idx];
}

double
Histogram::cdfAt(std::size_t i) const
{
    if (total == 0)
        return 0.0;
    uint64_t cum = 0;
    for (std::size_t b = 0; b <= i && b < counts.size(); ++b)
        cum += counts[b];
    return double(cum) / double(total);
}

double
Histogram::quantile(double q) const
{
    if (total == 0)
        return 0.0;
    const auto target = static_cast<uint64_t>(q * double(total));
    uint64_t cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        cum += counts[b];
        if (cum >= target)
            return (double(b) + 0.5) * width;
    }
    return double(counts.size()) * width;
}

double
geoMean(const std::vector<double> &xs, double floor)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs)
        logSum += std::log(std::max(x, floor));
    return std::exp(logSum / double(xs.size()));
}

} // namespace btrace
