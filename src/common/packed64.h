/**
 * @file
 * Packed 64-bit word layouts used by BTrace metadata.
 *
 * Two packings are defined:
 *
 *  - RndPos: [ Rnd:32 | Pos:32 ] — the Allocated / Confirmed words of a
 *    metadata block (§4.1 of the paper). Pos counts bytes within the
 *    data block; Rnd counts how many rounds the metadata block has been
 *    (re)used, and identifies the managed data block (§3.3).
 *
 *  - RatioPos: [ Ratio:15 | Frozen:1 | Pos:48 ] — the global and
 *    core-local ratio_and_pos words (§4.2). Pos is a monotonically
 *    increasing global block position; Ratio is the data-blocks-per-
 *    metadata-block mapping factor (§3.3); Frozen is set by the
 *    resizer to park block advancement while the mapping changes
 *    (§4.4; our elaboration, see DESIGN.md).
 *
 * Both packings place Pos in the low bits so that a fetch_add(1 or
 * size) advances Pos; an overflow into the high bits would require
 * 2^32 failed byte allocations (RndPos) or 2^48 block advancements
 * (RatioPos) and is out of scope by design.
 */

#ifndef BTRACE_COMMON_PACKED64_H
#define BTRACE_COMMON_PACKED64_H

#include <cstdint>

namespace btrace {

/** [ Rnd:32 | Pos:32 ] packing for metadata Allocated/Confirmed. */
struct RndPos
{
    uint32_t rnd = 0;  //!< metadata round (identifies the data block)
    uint32_t pos = 0;  //!< byte position / byte count within the block

    static constexpr uint64_t
    pack(uint32_t rnd, uint32_t pos)
    {
        return (uint64_t(rnd) << 32) | pos;
    }

    static constexpr RndPos
    unpack(uint64_t word)
    {
        return {uint32_t(word >> 32), uint32_t(word & 0xffffffffu)};
    }

    constexpr uint64_t packed() const { return pack(rnd, pos); }

    friend constexpr bool
    operator==(const RndPos &a, const RndPos &b) = default;
};

/** [ Ratio:15 | Frozen:1 | Pos:48 ] packing for ratio_and_pos. */
struct RatioPos
{
    static constexpr int posBits = 48;
    static constexpr uint64_t posMask = (uint64_t(1) << posBits) - 1;
    static constexpr uint64_t frozenBit = uint64_t(1) << posBits;
    static constexpr uint32_t maxRatio = (1u << 15) - 1;

    uint32_t ratio = 1;    //!< data blocks per metadata block
    bool frozen = false;   //!< resize in progress; advancement parked
    uint64_t pos = 0;      //!< monotonic global block position

    static constexpr uint64_t
    pack(uint32_t ratio, bool frozen, uint64_t pos)
    {
        return (uint64_t(ratio) << (posBits + 1)) |
               (frozen ? frozenBit : 0) | (pos & posMask);
    }

    static constexpr RatioPos
    unpack(uint64_t word)
    {
        return {uint32_t(word >> (posBits + 1)),
                (word & frozenBit) != 0, word & posMask};
    }

    constexpr uint64_t packed() const { return pack(ratio, frozen, pos); }

    friend constexpr bool
    operator==(const RatioPos &a, const RatioPos &b) = default;
};

} // namespace btrace

#endif // BTRACE_COMMON_PACKED64_H
