/**
 * @file
 * Cache-line geometry constants and padding helpers.
 */

#ifndef BTRACE_COMMON_CACHELINE_H
#define BTRACE_COMMON_CACHELINE_H

#include <cstddef>

namespace btrace {

/**
 * Assumed cache-line size. std::hardware_destructive_interference_size
 * is not consistently available across toolchains; 64 bytes matches
 * every ARM big.LITTLE and x86 part this library targets.
 */
constexpr std::size_t cacheLineSize = 64;

/** Wrap a value so each instance lives on its own cache line. */
template <typename T>
struct alignas(cacheLineSize) CacheAligned
{
    T value{};

    T *operator->() { return &value; }
    const T *operator->() const { return &value; }
    T &operator*() { return value; }
    const T &operator*() const { return value; }
};

/** Round @p n up to a multiple of @p align (power of two). */
constexpr std::size_t
alignUp(std::size_t n, std::size_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Round @p n down to a multiple of @p align (power of two). */
constexpr std::size_t
alignDown(std::size_t n, std::size_t align)
{
    return n & ~(align - 1);
}

/** True iff @p n is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace btrace

#endif // BTRACE_COMMON_CACHELINE_H
