#include "common/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace btrace {

std::string
humanBytes(double bytes)
{
    char buf[32];
    if (bytes >= 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1f GB",
                      bytes / (1024.0 * 1024.0 * 1024.0));
    } else if (bytes >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
    } else if (bytes >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    }
    return buf;
}

std::string
fmtDouble(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtCompact(double v)
{
    if (v == 0)
        return "0";
    if (v < 1000)
        return fmtDouble(v, v < 10 ? 1 : 0);
    const int exp = static_cast<int>(std::floor(std::log10(v)));
    const double mant = v / std::pow(10.0, exp);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0fe%d", mant, exp);
    return buf;
}

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    body.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::size_t cols = head.size();
    for (const auto &r : body)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    widen(head);
    for (const auto &r : body)
        widen(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            out << (i == 0 ? "| " : " | ");
            out << cell;
            out << std::string(widths[i] - cell.size(), ' ');
        }
        out << " |\n";
    };

    if (!head.empty()) {
        emit(head);
        for (std::size_t i = 0; i < cols; ++i) {
            out << (i == 0 ? "|-" : "-|-");
            out << std::string(widths[i], '-');
        }
        out << "-|\n";
    }
    for (const auto &r : body)
        emit(r);
    return out.str();
}

} // namespace btrace
