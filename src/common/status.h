/**
 * @file
 * Recoverable-error primitives for the arena create/attach/open paths.
 *
 * The tracer's internal invariants stay panics (panic.h): a violated
 * accounting invariant is a bug and must abort. But whether an arena
 * file exists, parses, or matches this build is decided by the
 * *environment*, and a session daemon that dies on a missing file is
 * useless. Those paths return Status / Expected<T> instead and let the
 * caller decide — tools map the code to a distinct process exit code
 * so scripts can tell "not found" from "corrupt" from "incompatible".
 */

#ifndef BTRACE_COMMON_STATUS_H
#define BTRACE_COMMON_STATUS_H

#include <cstdint>
#include <string>
#include <utility>

#include "common/panic.h"

namespace btrace {

/** Category of a recoverable failure. Stable; tools map to exit codes. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    InvalidArgument,  //!< caller-supplied config/arguments inconsistent
    NotFound,         //!< named arena/file does not exist
    IoError,          //!< open/mmap/ftruncate/read failed (see message)
    Corruption,       //!< object exists but its contents do not parse
    Incompatible,     //!< parses, but version/generation/geometry mismatch
    Busy,             //!< a bounded shared resource (registry) is full
    Unsupported,      //!< valid request this backend cannot serve
};

/** Stable lowercase name of a StatusCode ("ok", "not-found", ...). */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidArgument: return "invalid-argument";
    case StatusCode::NotFound: return "not-found";
    case StatusCode::IoError: return "io-error";
    case StatusCode::Corruption: return "corruption";
    case StatusCode::Incompatible: return "incompatible";
    case StatusCode::Busy: return "busy";
    case StatusCode::Unsupported: return "unsupported";
    }
    return "?";
}

/**
 * Process exit code for a failed operation, used by replay, btraced
 * and btrace_inspect so scripts can branch on the failure class:
 * 0 ok, 2 invalid-argument, 3 not-found, 4 io-error, 5 corruption,
 * 6 incompatible, 7 busy, 8 unsupported. (1 stays reserved for
 * BTRACE_FATAL and generic tool errors.)
 */
inline int
exitCodeFor(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok: return 0;
    case StatusCode::InvalidArgument: return 2;
    case StatusCode::NotFound: return 3;
    case StatusCode::IoError: return 4;
    case StatusCode::Corruption: return 5;
    case StatusCode::Incompatible: return 6;
    case StatusCode::Busy: return 7;
    case StatusCode::Unsupported: return 8;
    }
    return 1;
}

/** Outcome of a fallible operation: a code plus a human diagnostic. */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : c(code), msg(std::move(message))
    {
    }

    bool ok() const { return c == StatusCode::Ok; }
    StatusCode code() const { return c; }
    const std::string &message() const { return msg; }

    /** "not-found: no such arena: /tmp/x" (or "ok"). */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(statusCodeName(c)) + ": " + msg;
    }

  private:
    StatusCode c = StatusCode::Ok;
    std::string msg;
};

inline Status
errInvalidArgument(std::string msg)
{
    return Status(StatusCode::InvalidArgument, std::move(msg));
}

inline Status
errNotFound(std::string msg)
{
    return Status(StatusCode::NotFound, std::move(msg));
}

inline Status
errIo(std::string msg)
{
    return Status(StatusCode::IoError, std::move(msg));
}

inline Status
errCorruption(std::string msg)
{
    return Status(StatusCode::Corruption, std::move(msg));
}

inline Status
errIncompatible(std::string msg)
{
    return Status(StatusCode::Incompatible, std::move(msg));
}

inline Status
errBusy(std::string msg)
{
    return Status(StatusCode::Busy, std::move(msg));
}

inline Status
errUnsupported(std::string msg)
{
    return Status(StatusCode::Unsupported, std::move(msg));
}

/**
 * A value or the Status explaining its absence. Deliberately minimal:
 * construct from a T (success) or a non-ok Status (failure); value()
 * asserts on a failed Expected, so callers check ok() first — the
 * pattern every create/attach path in this library follows.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : val(std::move(value)), has(true) {}

    Expected(Status status) : st(std::move(status))
    {
        BTRACE_ASSERT(!st.ok(),
                      "Expected built from an ok Status carries no value");
    }

    bool ok() const { return has; }

    /** Status::ok() when a value is present. */
    const Status &status() const { return st; }

    T &
    value()
    {
        BTRACE_ASSERT(has, "value() on a failed Expected");
        return val;
    }

    const T &
    value() const
    {
        BTRACE_ASSERT(has, "value() on a failed Expected");
        return val;
    }

    /** Move the value out (consumes this Expected). */
    T
    take()
    {
        BTRACE_ASSERT(has, "take() on a failed Expected");
        has = false;
        return std::move(val);
    }

  private:
    Status st;
    T val{};
    bool has = false;
};

} // namespace btrace

#endif // BTRACE_COMMON_STATUS_H
