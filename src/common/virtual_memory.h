/**
 * @file
 * Reserved virtual-address span with explicit physical commit and
 * decommit, backing BTrace's runtime buffer resizing (§4.4).
 *
 * The paper keeps the virtual address of the trace buffer fixed at its
 * maximum size and maps/unmaps physical memory underneath. We realize
 * this with one anonymous mmap of the maximum size and
 * madvise(MADV_DONTNEED) for decommit: the mapping stays valid for the
 * whole lifetime, so a racing stale reader can never fault — it merely
 * observes zero pages — while the kernel reclaims the physical pages
 * immediately.
 */

#ifndef BTRACE_COMMON_VIRTUAL_MEMORY_H
#define BTRACE_COMMON_VIRTUAL_MEMORY_H

#include <cstddef>
#include <cstdint>

namespace btrace {

/** RAII wrapper over a reserved, resizable anonymous memory span. */
class VirtualSpan
{
  public:
    /** Reserve @p max_bytes of virtual address space (page-rounded). */
    explicit VirtualSpan(std::size_t max_bytes);
    ~VirtualSpan();

    VirtualSpan(const VirtualSpan &) = delete;
    VirtualSpan &operator=(const VirtualSpan &) = delete;
    VirtualSpan(VirtualSpan &&other) noexcept;
    VirtualSpan &operator=(VirtualSpan &&other) noexcept;

    /** Base address of the span. */
    uint8_t *data() const { return base; }

    /** Reserved (maximum) size in bytes. */
    std::size_t maxSize() const { return reserved; }

    /**
     * Hint the kernel that [offset, offset+len) will be used. Pages
     * are faulted in lazily either way; this is advisory.
     */
    void commit(std::size_t offset, std::size_t len);

    /**
     * Release the physical pages behind [offset, offset+len). The
     * virtual range stays mapped and readable (as zeros).
     */
    void decommit(std::size_t offset, std::size_t len);

    /** Resident-set size of the span in bytes (via mincore). */
    std::size_t residentBytes() const;

    /** System page size. */
    static std::size_t pageSize();

  private:
    uint8_t *base = nullptr;
    std::size_t reserved = 0;
};

} // namespace btrace

#endif // BTRACE_COMMON_VIRTUAL_MEMORY_H
