/**
 * @file
 * Reserved, resizable span over a pluggable StorageBackend, backing
 * BTrace's runtime buffer resizing (§4.4) and the multi-process /
 * persistent deployments (DESIGN.md §10).
 *
 * The paper keeps the virtual address of the trace buffer fixed at its
 * maximum size and maps/unmaps physical memory underneath. VirtualSpan
 * keeps that shape but delegates the mechanism to a StorageBackend —
 * anonymous private memory, a shared memfd arena, or a file-backed
 * ring — while owning the range validation and page rounding that the
 * backends rely on. In every backend the mapping stays valid for the
 * whole lifetime, so a racing stale reader can never fault: it merely
 * observes zero pages after a decommit.
 */

#ifndef BTRACE_COMMON_VIRTUAL_MEMORY_H
#define BTRACE_COMMON_VIRTUAL_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/storage_backend.h"

namespace btrace {

/** RAII wrapper over a reserved, resizable memory span. */
class VirtualSpan
{
  public:
    /**
     * Reserve @p max_bytes (page-rounded) of anonymous process-private
     * memory — the classic deployment, behavior-identical to every
     * release before the backend seam existed.
     */
    explicit VirtualSpan(std::size_t max_bytes);

    /** Adopt @p b as the storage; the span owns it from here. */
    explicit VirtualSpan(std::unique_ptr<StorageBackend> b);

    ~VirtualSpan() = default;

    VirtualSpan(const VirtualSpan &) = delete;
    VirtualSpan &operator=(const VirtualSpan &) = delete;
    VirtualSpan(VirtualSpan &&other) noexcept;
    VirtualSpan &operator=(VirtualSpan &&other) noexcept;

    /** Base address of the data area in this attachment. */
    uint8_t *data() const { return base; }

    /** Resolve an offset-based block address in this attachment. */
    uint8_t *resolve(BlockRef ref) const { return base + ref.offset; }

    /** Reserved (maximum) size in bytes. */
    std::size_t maxSize() const { return reserved; }

    /**
     * Hint that [offset, offset+len) will be used. The range is
     * expanded outward to page boundaries (safe: commit is advisory)
     * and must lie within the reservation. Pages are faulted in
     * lazily either way.
     */
    void commit(std::size_t offset, std::size_t len);

    /**
     * Release the physical storage behind [offset, offset+len). The
     * range stays mapped and readable (as zeros). The range is
     * shrunk *inward* to page boundaries: a partial page at either
     * end stays resident, so an unaligned decommit can never clobber
     * live data sharing its edge pages. Rejects (asserts) ranges that
     * leave the reservation, including offset+len arithmetic
     * overflow.
     */
    void decommit(std::size_t offset, std::size_t len);

    /** Resident-set size of the span in bytes (via mincore). */
    std::size_t residentBytes() const { return impl->residentBytes(); }

    /** The owning backend (never null on a live span). */
    StorageBackend *backend() const { return impl.get(); }

    /** System page size. */
    static std::size_t pageSize() { return StorageBackend::pageSize(); }

  private:
    /** Assert [offset, offset+len) fits the reservation, overflow-safe. */
    void checkRange(std::size_t offset, std::size_t len,
                    const char *what) const;

    std::unique_ptr<StorageBackend> impl;
    uint8_t *base = nullptr;    //!< cached impl->data()
    std::size_t reserved = 0;   //!< cached impl->maxSize()
};

} // namespace btrace

#endif // BTRACE_COMMON_VIRTUAL_MEMORY_H
