#include "common/storage_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/cacheline.h"
#include "common/panic.h"

namespace btrace {

namespace {

std::size_t
mincoreResident(const uint8_t *base, std::size_t len)
{
    // Chunked with a stack buffer: residentBytes() feeds the flight
    // recorder's async-safe capture path, which must not allocate.
    const std::size_t page = StorageBackend::pageSize();
    unsigned char vec[4096];
    std::size_t resident = 0;
    for (std::size_t off = 0; off < len;) {
        const std::size_t span =
            std::min(len - off, sizeof(vec) * page);
        if (::mincore(const_cast<uint8_t *>(base) + off, span, vec) != 0)
            return 0;
        const std::size_t pages = (span + page - 1) / page;
        for (std::size_t i = 0; i < pages; ++i)
            if (vec[i] & 1)
                ++resident;
        off += span;
    }
    return resident * page;
}

} // namespace

std::size_t
StorageBackend::pageSize()
{
    static const std::size_t sz =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return sz;
}

std::size_t
StorageBackend::residentBytes() const
{
    return mincoreResident(data(), maxSize());
}

const char *
storageKindName(StorageKind kind)
{
    switch (kind) {
    case StorageKind::Private: return "private";
    case StorageKind::Shm: return "shm";
    case StorageKind::File: return "file";
    }
    return "?";
}

bool
parseStorageKind(const std::string &name, StorageKind &out)
{
    if (name == "private") { out = StorageKind::Private; return true; }
    if (name == "shm") { out = StorageKind::Shm; return true; }
    if (name == "file") { out = StorageKind::File; return true; }
    return false;
}

namespace {

/** Today's anonymous mmap + MADV_DONTNEED scheme, verbatim. */
class PrivateAnonBackend final : public StorageBackend
{
  public:
    explicit PrivateAnonBackend(std::size_t bytes)
    {
        reserved = alignUp(bytes, pageSize());
        BTRACE_ASSERT(reserved > 0, "empty span");
        void *p = ::mmap(nullptr, reserved, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                         -1, 0);
        if (p == MAP_FAILED)
            BTRACE_FATAL("mmap failed reserving trace buffer");
        base = static_cast<uint8_t *>(p);
    }

    ~PrivateAnonBackend() override
    {
        if (base)
            ::munmap(base, reserved);
    }

    StorageKind kind() const override { return StorageKind::Private; }
    uint8_t *data() const override { return base; }
    std::size_t maxSize() const override { return reserved; }

    void
    commit(std::size_t offset, std::size_t len) override
    {
        if (len)
            ::madvise(base + offset, len, MADV_WILLNEED);
    }

    void
    decommit(std::size_t offset, std::size_t len) override
    {
        if (len) {
            const int rc = ::madvise(base + offset, len, MADV_DONTNEED);
            BTRACE_ASSERT(rc == 0, "madvise(MADV_DONTNEED) failed");
        }
    }

  private:
    uint8_t *base = nullptr;
    std::size_t reserved = 0;
};

/**
 * Shared arena layout and plumbing common to shm and file backends:
 * one fd, one MAP_SHARED mapping of [header page | flight region |
 * control region | data area], hole-punch decommit.
 */
class ArenaBackend : public StorageBackend
{
  public:
    ~ArenaBackend() override
    {
        if (base)
            ::munmap(base, total);
        if (fd >= 0)
            ::close(fd);
    }

    uint8_t *data() const override { return base + hdr->dataOffset; }
    std::size_t maxSize() const override { return hdr->dataBytes; }
    ArenaHeader *header() const override { return hdr; }
    uint8_t *flightRegion() const override
    {
        return base + hdr->flightOffset;
    }
    uint8_t *ctrlRegion() const override
    {
        return hdr->ctrlBytes ? base + hdr->ctrlOffset : nullptr;
    }
    int shareFd() const override { return fd; }
    uint64_t attachGeneration() const override { return gen_; }

    void
    commit(std::size_t offset, std::size_t len) override
    {
        if (len)
            ::madvise(data() + offset, len, MADV_WILLNEED);
    }

    void
    decommit(std::size_t offset, std::size_t len) override
    {
        if (!len)
            return;
        // Hole-punching releases the backing pages of a shared
        // mapping and leaves the range reading as zeros — the shared-
        // object equivalent of MADV_DONTNEED on anonymous memory.
        // Filesystems without punch support keep the storage but must
        // still honor the reads-as-zeros contract, so fall back to an
        // explicit zero fill.
        const auto file_off =
            static_cast<off_t>(hdr->dataOffset + offset);
        if (::fallocate(fd, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                        file_off, static_cast<off_t>(len)) != 0)
            std::memset(data() + offset, 0, len);
    }

    // create/attach are public: the class is TU-local (anonymous
    // namespace); only the factory functions below ever see it.

    /** Size and initialize a fresh arena on @p backing_fd (owned). */
    Status
    create(int backing_fd, std::size_t data_bytes,
           std::size_t flight_bytes, std::size_t ctrl_bytes)
    {
        const std::size_t page = pageSize();
        const std::size_t header_bytes =
            alignUp(sizeof(ArenaHeader), page);
        const std::size_t flight_cap = alignUp(flight_bytes, page);
        const std::size_t ctrl_cap = alignUp(ctrl_bytes, page);
        const std::size_t data_cap = alignUp(data_bytes, page);
        if (data_cap == 0)
            return errInvalidArgument("arena data area must be non-empty");

        fd = backing_fd;
        total = header_bytes + flight_cap + ctrl_cap + data_cap;
        if (::ftruncate(fd, static_cast<off_t>(total)) != 0)
            return errIo("ftruncate failed sizing the arena");
        if (Status st = map(); !st.ok())
            return st;

        ArenaHeader *h = new (base) ArenaHeader();
        h->version = ArenaHeader::kVersion;
        h->pageSize = static_cast<uint32_t>(page);
        h->flightOffset = header_bytes;
        h->flightCapacity = flight_cap;
        h->ctrlOffset = header_bytes + flight_cap;
        h->ctrlBytes = ctrl_cap;
        h->dataOffset = header_bytes + flight_cap + ctrl_cap;
        h->dataBytes = data_cap;
        h->generation.store(1, std::memory_order_release);
        // Stamp the magic LAST: a concurrent attacher that maps the
        // file between the ftruncate above and this store sees zeros
        // (reported as Busy, i.e. retryable), never a header that
        // claims to be valid while half-written.
        h->magic = ArenaHeader::kMagic;
        gen_ = 1;
        hdr = h;
        return Status();
    }

    /** Map and validate an existing arena on @p backing_fd (owned). */
    Status
    attach(int backing_fd)
    {
        fd = backing_fd;
        struct stat st;
        if (::fstat(fd, &st) != 0 ||
            st.st_size < static_cast<off_t>(sizeof(ArenaHeader)))
            return errCorruption(
                "arena attach: fstat failed or object too small");
        total = static_cast<std::size_t>(st.st_size);
        if (Status s = map(); !s.ok())
            return s;
        auto *h = reinterpret_cast<ArenaHeader *>(base);
        if (h->magic == 0)
            // The owner sizes the file before stamping the header, so
            // an attacher can map an all-zero prefix mid-create. That
            // is a retryable race, not a corrupt arena.
            return errBusy("arena attach: arena still initializing");
        if (h->magic != ArenaHeader::kMagic)
            return errCorruption("arena attach: bad magic");
        if (h->version != ArenaHeader::kVersion)
            return errIncompatible(
                "arena attach: unsupported arena version");
        if (h->dataOffset + h->dataBytes > total ||
            h->ctrlOffset + h->ctrlBytes > h->dataOffset)
            return errCorruption(
                "arena attach: header geometry exceeds the object");
        hdr = h;
        gen_ = hdr->generation.fetch_add(1, std::memory_order_acq_rel) +
               1;
        return Status();
    }

    Status
    map()
    {
        void *p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_NORESERVE, fd, 0);
        if (p == MAP_FAILED)
            return errIo("mmap failed mapping the arena");
        base = static_cast<uint8_t *>(p);
        return Status();
    }

    int fd = -1;
    uint8_t *base = nullptr;
    std::size_t total = 0;
    ArenaHeader *hdr = nullptr;
    uint64_t gen_ = 0;
};

class ShmArenaBackend final : public ArenaBackend
{
  public:
    StorageKind kind() const override { return StorageKind::Shm; }
};

class FileRingBackend final : public ArenaBackend
{
  public:
    ~FileRingBackend() override
    {
        // Post-mortem contract: whatever the ring holds at detach is
        // on stable storage before the mapping goes away.
        if (base)
            ::msync(base, total, MS_SYNC);
    }

    StorageKind kind() const override { return StorageKind::File; }

    void
    sync() override
    {
        ::msync(base, total, MS_ASYNC);
    }
};

} // namespace

Expected<std::unique_ptr<StorageBackend>>
tryMakeStorageBackend(const StorageOptions &o)
{
    switch (o.kind) {
    case StorageKind::Private:
        return {std::make_unique<PrivateAnonBackend>(o.bytes)};
    case StorageKind::Shm: {
        const int mfd = ::memfd_create("btrace-arena", MFD_CLOEXEC);
        if (mfd < 0)
            return errIo("memfd_create failed for the shm arena");
        auto b = std::make_unique<ShmArenaBackend>();
        if (Status st = b->create(mfd, o.bytes, o.flightBytes,
                                  o.ctrlBytes);
            !st.ok())
            return st;
        return {std::unique_ptr<StorageBackend>(std::move(b))};
    }
    case StorageKind::File: {
        int ffd;
        if (o.path.empty()) {
            // Anonymous scratch ring: same code path, no litter. Not
            // reopenable — name the file to persist it.
            char tmpl[] = "/tmp/btrace-arena-XXXXXX";
            ffd = ::mkstemp(tmpl);
            if (ffd < 0)
                return errIo("mkstemp failed for the file ring");
            ::unlink(tmpl);
        } else {
            ffd = ::open(o.path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                         0644);
            if (ffd < 0)
                return errIo("open failed for the file ring: " + o.path);
        }
        auto b = std::make_unique<FileRingBackend>();
        if (Status st = b->create(ffd, o.bytes, o.flightBytes,
                                  o.ctrlBytes);
            !st.ok())
            return st;
        return {std::unique_ptr<StorageBackend>(std::move(b))};
    }
    }
    return errInvalidArgument("unknown storage kind");
}

std::unique_ptr<StorageBackend>
makeStorageBackend(const StorageOptions &o)
{
    auto r = tryMakeStorageBackend(o);
    if (!r.ok()) {
        std::fprintf(stderr, "btrace: %s\n", r.status().toString().c_str());
        BTRACE_FATAL("storage backend creation failed");
    }
    return r.take();
}

Expected<std::unique_ptr<StorageBackend>>
tryAttachShmArena(int fd)
{
    const int dup_fd = ::fcntl(fd, F_DUPFD_CLOEXEC, 0);
    if (dup_fd < 0)
        return errIo("dup failed attaching the shm arena");
    auto b = std::make_unique<ShmArenaBackend>();
    if (Status st = b->attach(dup_fd); !st.ok())
        return st;
    return {std::unique_ptr<StorageBackend>(std::move(b))};
}

std::unique_ptr<StorageBackend>
attachShmArena(int fd)
{
    auto r = tryAttachShmArena(fd);
    if (!r.ok()) {
        std::fprintf(stderr, "btrace: %s\n", r.status().toString().c_str());
        BTRACE_FATAL("shm arena attach failed");
    }
    return r.take();
}

Expected<std::unique_ptr<StorageBackend>>
tryAttachFileArena(const std::string &path)
{
    const int ffd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (ffd < 0)
        return errNotFound("no such arena: " + path);
    auto b = std::make_unique<FileRingBackend>();
    if (Status st = b->attach(ffd); !st.ok())
        return st;
    return {std::unique_ptr<StorageBackend>(std::move(b))};
}

ArenaView::~ArenaView()
{
    if (base)
        ::munmap(base, mapped);
}

ArenaView::ArenaView(ArenaView &&other) noexcept
    : base(std::exchange(other.base, nullptr)),
      mapped(std::exchange(other.mapped, 0)),
      st(std::move(other.st))
{
}

ArenaView &
ArenaView::operator=(ArenaView &&other) noexcept
{
    if (this != &other) {
        if (base)
            ::munmap(base, mapped);
        base = std::exchange(other.base, nullptr);
        mapped = std::exchange(other.mapped, 0);
        st = std::move(other.st);
    }
    return *this;
}

ArenaView
ArenaView::open(const std::string &path)
{
    ArenaView v;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        v.st = errNotFound("cannot open " + path);
        return v;
    }
    struct stat sb;
    if (::fstat(fd, &sb) != 0 ||
        sb.st_size < static_cast<off_t>(sizeof(ArenaHeader))) {
        ::close(fd);
        v.st = errCorruption("file too small for an arena header");
        return v;
    }
    const auto len = static_cast<std::size_t>(sb.st_size);
    void *p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
        v.st = errIo("mmap failed");
        return v;
    }
    const auto *h = static_cast<const ArenaHeader *>(p);
    if (h->magic != ArenaHeader::kMagic) {
        ::munmap(p, len);
        v.st = errCorruption("bad arena magic");
        return v;
    }
    if (h->version != ArenaHeader::kVersion) {
        ::munmap(p, len);
        v.st = errIncompatible("unsupported arena version");
        return v;
    }
    if (h->dataOffset + h->dataBytes > len ||
        h->flightOffset + h->flightCapacity > h->dataOffset ||
        h->ctrlOffset + h->ctrlBytes > h->dataOffset) {
        ::munmap(p, len);
        v.st = errCorruption("arena header geometry exceeds the file");
        return v;
    }
    v.base = static_cast<uint8_t *>(p);
    v.mapped = len;
    return v;
}

const ArenaHeader *
ArenaView::hdr() const
{
    BTRACE_ASSERT(base != nullptr, "access to a failed ArenaView");
    return reinterpret_cast<const ArenaHeader *>(base);
}

uint64_t
ArenaView::generation() const
{
    return hdr()->generation.load(std::memory_order_acquire);
}

bool
ArenaView::cleanShutdown() const
{
    return hdr()->cleanShutdown.load(std::memory_order_acquire) != 0;
}

uint64_t
ArenaView::blockSize() const
{
    return hdr()->blockSize.load(std::memory_order_acquire);
}

uint64_t
ArenaView::activeBlocks() const
{
    return hdr()->activeBlocks.load(std::memory_order_acquire);
}

uint64_t
ArenaView::numBlocks() const
{
    return hdr()->numBlocks.load(std::memory_order_acquire);
}

const uint8_t *
ArenaView::data() const
{
    return base + hdr()->dataOffset;
}

std::size_t
ArenaView::dataBytes() const
{
    return hdr()->dataBytes;
}

const uint8_t *
ArenaView::block(uint64_t phys) const
{
    const uint64_t bs = blockSize();
    BTRACE_ASSERT(bs != 0, "arena records no tracer geometry");
    BTRACE_ASSERT((phys + 1) * bs <= dataBytes(),
                  "physical block outside the arena data area");
    return data() + phys * bs;
}

const uint8_t *
ArenaView::ctrlRegion() const
{
    const ArenaHeader *h = hdr();
    return h->ctrlBytes ? base + h->ctrlOffset : nullptr;
}

std::size_t
ArenaView::ctrlBytes() const
{
    return hdr()->ctrlBytes;
}

std::string
ArenaView::flightJson() const
{
    const ArenaHeader *h = hdr();
    uint64_t n = h->flightLen.load(std::memory_order_acquire);
    if (n > h->flightCapacity)
        n = h->flightCapacity;
    const char *src =
        reinterpret_cast<const char *>(base + h->flightOffset);
    return std::string(src, src + n);
}

} // namespace btrace
