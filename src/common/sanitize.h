/**
 * @file
 * Sanitizer detection and annotation shims.
 *
 * BTrace's speculative consumer (§4.3) is a seqlock: it copies block
 * data with relaxed atomic word loads while producers keep writing,
 * then re-validates the header and metadata and abandons the copy on
 * any sign of concurrent modification. Every access to shared block
 * bytes goes through `std::atomic_ref`, so the design is race-free in
 * the C++ memory model and ThreadSanitizer sees only atomic accesses.
 *
 * These shims exist for the few places where that is not enough:
 *
 *  - BTRACE_NO_SANITIZE_THREAD marks a function whose accesses are
 *    *intentionally* racy-but-validated and must not be instrumented
 *    (each use site carries its own justification comment).
 *  - btrace::tsanAcquire / tsanRelease expose the __tsan_acquire /
 *    __tsan_release annotations for teaching TSan about happens-before
 *    edges it cannot infer (e.g. ones established through validated
 *    speculative copies). No-ops outside TSan builds.
 */

#ifndef BTRACE_COMMON_SANITIZE_H
#define BTRACE_COMMON_SANITIZE_H

// --- Detection -------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define BTRACE_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BTRACE_TSAN_ENABLED 1
#endif
#endif
#ifndef BTRACE_TSAN_ENABLED
#define BTRACE_TSAN_ENABLED 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define BTRACE_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BTRACE_ASAN_ENABLED 1
#endif
#endif
#ifndef BTRACE_ASAN_ENABLED
#define BTRACE_ASAN_ENABLED 0
#endif

// --- Attributes ------------------------------------------------------

#if BTRACE_TSAN_ENABLED
#define BTRACE_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))
#else
#define BTRACE_NO_SANITIZE_THREAD
#endif

#if BTRACE_ASAN_ENABLED
#define BTRACE_NO_SANITIZE_ADDRESS __attribute__((no_sanitize_address))
#else
#define BTRACE_NO_SANITIZE_ADDRESS
#endif

// --- Happens-before annotations --------------------------------------

#if BTRACE_TSAN_ENABLED
extern "C" void __tsan_acquire(void *addr);
extern "C" void __tsan_release(void *addr);
#endif

namespace btrace {

/** Teach TSan that an acquire edge on @p addr happened here. */
inline void
tsanAcquire([[maybe_unused]] void *addr)
{
#if BTRACE_TSAN_ENABLED
    __tsan_acquire(addr);
#endif
}

/** Teach TSan that a release edge on @p addr happened here. */
inline void
tsanRelease([[maybe_unused]] void *addr)
{
#if BTRACE_TSAN_ENABLED
    __tsan_release(addr);
#endif
}

} // namespace btrace

#endif // BTRACE_COMMON_SANITIZE_H
