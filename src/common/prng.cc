#include "common/prng.h"

#include <cmath>

#include "common/panic.h"

namespace btrace {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Prng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Prng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Prng::nextBounded(uint64_t bound)
{
    BTRACE_DASSERT(bound != 0, "nextBounded(0)");
    // Lemire-style rejection-free multiply-shift; bias is < 2^-64 * bound
    // and irrelevant for simulation purposes.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double
Prng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Prng::uniform(uint64_t lo, uint64_t hi)
{
    BTRACE_DASSERT(lo <= hi, "uniform: lo > hi");
    return lo + nextBounded(hi - lo + 1);
}

double
Prng::exponential(double mean)
{
    BTRACE_DASSERT(mean > 0, "exponential: non-positive mean");
    double u = nextDouble();
    if (u >= 1.0)
        u = 0.9999999999999999;
    return -mean * std::log1p(-u);
}

bool
Prng::chance(double p)
{
    return nextDouble() < p;
}

double
Prng::heavyTail(double lo, double hi, double shape)
{
    BTRACE_DASSERT(lo > 0 && hi > lo && shape > 0, "heavyTail: bad args");
    // Inverse-CDF sampling of a bounded Pareto distribution.
    const double la = std::pow(lo, shape);
    const double ha = std::pow(hi, shape);
    const double u = nextDouble();
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
}

} // namespace btrace
