/**
 * @file
 * Lock-free, per-thread-sharded, mergeable log-linear histogram for
 * hot-path latency sampling (the observability plane, DESIGN.md §8).
 *
 * The fixed-bucket Histogram in stats.h is neither concurrent nor
 * wide-range: latency samples from a live tracer span from tens of
 * nanoseconds (fast-path write) to hundreds of milliseconds (a
 * straggler's stall), and arrive from many producer threads at once.
 * This histogram uses HdrHistogram-style log-linear buckets — each
 * power-of-two octave split into 2^kSubBits linear sub-buckets, giving
 * a bounded ~6% relative error over the full 64-bit range — and
 * shards its bucket counters so concurrent add() calls from different
 * threads rarely touch the same cache line.
 *
 * add() is a single relaxed fetch_add on the caller's shard; there is
 * no locking anywhere, so it is safe from signal-handler-like contexts
 * and adds no shared-RMW traffic to the words the tracer itself
 * contends on. Readers merge the shards into a HistogramSnapshot — a
 * plain value type with quantile extraction — which is coherent in the
 * counters-style sense: each bucket is read atomically, the set of
 * buckets is not a linearizable cut, which is fine for monitoring.
 */

#ifndef BTRACE_COMMON_LATENCY_HISTOGRAM_H
#define BTRACE_COMMON_LATENCY_HISTOGRAM_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace btrace {

/** Merged, immutable view of a ConcurrentHistogram (value type). */
struct HistogramSnapshot
{
    std::vector<uint64_t> counts;  //!< per log-linear bucket
    uint64_t total = 0;
    uint64_t sum = 0;  //!< exact sum of recorded values (Prometheus _sum)

    uint64_t count() const { return total; }

    /**
     * Value at quantile @p q in [0, 1] (nearest-rank over buckets,
     * reported as the bucket's representative value — its lower
     * bound, so quantiles never overstate). 0 when empty.
     */
    uint64_t quantile(double q) const;

    /** Largest bucket representative with a nonzero count. */
    uint64_t maxValue() const;

    /** Accumulate another snapshot of the same geometry into this. */
    HistogramSnapshot &merge(const HistogramSnapshot &other);
};

/**
 * Concurrent wide-range latency histogram. Values are unsigned (ns by
 * convention); buckets are exact below 2^kSubBits and log-linear with
 * 2^kSubBits sub-buckets per octave above, saturating at the overflow
 * bucket past 2^(kMaxExp+1).
 */
class ConcurrentHistogram
{
  public:
    static constexpr unsigned kSubBits = 4;        //!< 16 buckets/octave
    static constexpr unsigned kSubCount = 1u << kSubBits;
    /** Top octave: values up to 2^45 ns ≈ 9.7 h stay resolved. */
    static constexpr unsigned kMaxExp = 44;
    static constexpr std::size_t kBuckets =
        kSubCount + std::size_t(kMaxExp - kSubBits + 1) * kSubCount + 1;

    /** @p shards 0 picks a default sized for typical core counts. */
    explicit ConcurrentHistogram(unsigned shards = 0);

    ConcurrentHistogram(const ConcurrentHistogram &) = delete;
    ConcurrentHistogram &operator=(const ConcurrentHistogram &) = delete;

    /** Record one value. Lock-free; callable from any thread. */
    void add(uint64_t v);

    /** Record one value into an explicit shard (tests, pinned loops). */
    void addToShard(unsigned shard, uint64_t v);

    unsigned shardCount() const { return nShards; }

    /** Merge all shards into a coherent value-type snapshot. */
    HistogramSnapshot snapshot() const;

    /** Total samples across shards (relaxed sum). */
    uint64_t count() const;

    /** Reset every bucket to zero (not linearizable vs adders). */
    void clear();

    /** Bucket index of @p v. */
    static std::size_t bucketOf(uint64_t v);

    /** Lower bound (representative value) of bucket @p b. */
    static uint64_t bucketLowerBound(std::size_t b);

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> counts[kBuckets];
        std::atomic<uint64_t> sum{0};  //!< exact value sum of this shard
    };

    unsigned shardFor() const;

    unsigned nShards;
    std::unique_ptr<Shard[]> shards;
};

} // namespace btrace

#endif // BTRACE_COMMON_LATENCY_HISTOGRAM_H
