/**
 * @file
 * Plain-text output helpers shared by the bench harnesses: humanized
 * byte counts and a fixed-width table printer that mimics the layout
 * of the paper's tables.
 */

#ifndef BTRACE_COMMON_FORMAT_H
#define BTRACE_COMMON_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace btrace {

/** "12.0 MB", "4.0 KB", "873 B". */
std::string humanBytes(double bytes);

/** Fixed-precision double → string ("3.14"). */
std::string fmtDouble(double v, int precision = 2);

/** Compact scientific-ish rendering used for fragment counts ("2e4"). */
std::string fmtCompact(double v);

/**
 * Fixed-width text table. Columns are sized to the widest cell. Used
 * by every bench binary so all reproduction output looks alike.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a body row. */
    void row(std::vector<std::string> cells);

    /** Render with column separators and a header rule. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace btrace

#endif // BTRACE_COMMON_FORMAT_H
