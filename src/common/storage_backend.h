/**
 * @file
 * Storage backends for the trace buffer (DESIGN.md §10).
 *
 * The core never owns memory directly: it reserves a data area from a
 * StorageBackend and addresses blocks by *offset* into that area (a
 * BlockRef), resolving offsets to pointers per attachment. Three
 * backends implement the same contract:
 *
 *  - PrivateAnonBackend — one anonymous MAP_PRIVATE mmap with
 *    MADV_DONTNEED decommit; the process-private deployment the paper
 *    describes and the behavior of every release before this seam
 *    existed.
 *  - ShmArenaBackend — a memfd-backed shared arena. The fd can be
 *    handed to other processes (or re-attached in this one) and each
 *    attachment resolves the same offsets against its own mapping —
 *    the LTTng-session-daemon deployment shape.
 *  - FileRingBackend — the same arena layout on a named file,
 *    msync'd on close, so the ring (journal tail and flight bundle
 *    included) survives process death and `btrace_inspect --arena`
 *    can decode it post mortem.
 *
 * Arena-backed objects (shm, file) carry an ArenaHeader page before
 * the data area: magic, version, attach generation, geometry of the
 * tracer that owns the ring, and a bounded flight-recorder region.
 * The header makes a dead arena self-describing.
 *
 * Decommit contract (all backends): the released range stays mapped
 * and reads as zeros afterwards, so a racing stale reader can never
 * fault — exactly the §4.4 requirement that motivated the original
 * MADV_DONTNEED scheme.
 */

#ifndef BTRACE_COMMON_STORAGE_BACKEND_H
#define BTRACE_COMMON_STORAGE_BACKEND_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace btrace {

/** Which StorageBackend implementation backs a trace buffer. */
enum class StorageKind : uint8_t
{
    Private = 0,  //!< anonymous process-private memory (the default)
    Shm = 1,      //!< memfd shared arena, multi-attach capable
    File = 2,     //!< file-backed persistent ring
};

/** Stable lowercase name ("private", "shm", "file"). */
const char *storageKindName(StorageKind kind);

/** Parse a storageKindName() string; false on unknown input. */
bool parseStorageKind(const std::string &name, StorageKind &out);

/**
 * Offset-based block address: the byte offset of a block inside the
 * backend's data area. A BlockRef is meaningful in every attachment
 * of the same arena (and in an offline ArenaView), unlike a raw
 * pointer, which is only meaningful in the mapping that produced it.
 * Resolve with StorageBackend::data() + ref.offset per attachment.
 */
struct BlockRef
{
    uint64_t offset = 0;
};

/**
 * Header page of an arena-backed object (shm / file). Lives at file
 * offset 0; the flight region and the data area follow at the
 * page-aligned offsets recorded here. Atomic fields are written by
 * live attachments and read by concurrent attachments or an offline
 * ArenaView; std::atomic on this platform is address-free, which is
 * what makes them valid across mappings.
 */
struct ArenaHeader
{
    static constexpr uint64_t kMagic = 0x31414E4552415442ull;  // "BTARENA1"
    /** v2 added the control region (multi-process rendezvous state). */
    static constexpr uint32_t kVersion = 2;

    uint64_t magic = 0;
    uint32_t version = 0;
    uint32_t pageSize = 0;
    /** Attachments so far; creation counts as the first. */
    std::atomic<uint64_t> generation{0};
    uint64_t dataOffset = 0;      //!< arena-relative start of the data area
    uint64_t dataBytes = 0;       //!< reserved data bytes
    uint64_t flightOffset = 0;    //!< arena-relative flight region start
    uint64_t flightCapacity = 0;  //!< flight region bytes
    /** Valid bytes of the stored flight bundle (0 = none). */
    std::atomic<uint64_t> flightLen{0};
    /**
     * Control region: the tracer's shared rendezvous state — global
     * ratio_and_pos, core-local words, metadata blocks, the producer
     * attach registry, and the lease-owner table (DESIGN.md §11).
     * Zero bytes on arenas created before a tracer sized them.
     */
    uint64_t ctrlOffset = 0;
    uint64_t ctrlBytes = 0;

    // Geometry of the owning tracer, for offline decode; zero until a
    // tracer attaches.
    std::atomic<uint64_t> blockSize{0};
    std::atomic<uint64_t> activeBlocks{0};
    std::atomic<uint64_t> numBlocks{0};  //!< current N, updated on resize

    /** 1 once a tracer detached cleanly; 0 in a crashed/live arena. */
    std::atomic<uint32_t> cleanShutdown{0};
    uint32_t reserved0 = 0;
};

static_assert(sizeof(ArenaHeader) <= 128,
              "arena header must fit well inside one page");

/**
 * Abstract reserved data area with explicit physical commit/decommit.
 * All offsets are data-area-relative and must be page-aligned with
 * offset + len <= maxSize(); VirtualSpan performs the rounding and
 * range validation, so backends implement only the page-granular
 * mechanism.
 */
class StorageBackend
{
  public:
    virtual ~StorageBackend() = default;

    StorageBackend(const StorageBackend &) = delete;
    StorageBackend &operator=(const StorageBackend &) = delete;

    virtual StorageKind kind() const = 0;

    /** Attachment-local base of the data area. */
    virtual uint8_t *data() const = 0;

    /** Reserved data-area size in bytes (page multiple). */
    virtual std::size_t maxSize() const = 0;

    /** Advisory: [offset, offset+len) will be used soon. */
    virtual void commit(std::size_t offset, std::size_t len) = 0;

    /**
     * Release the physical storage behind [offset, offset+len). The
     * range stays mapped and reads as zeros afterwards.
     */
    virtual void decommit(std::size_t offset, std::size_t len) = 0;

    /** Resident physical bytes of the data area (via mincore). */
    virtual std::size_t residentBytes() const;

    /** Flush to the backing object; meaningful for File (msync). */
    virtual void sync() {}

    /** Arena header, or nullptr for the private backend. */
    virtual ArenaHeader *header() const { return nullptr; }

    /** Flight-recorder region base, or nullptr for the private backend. */
    virtual uint8_t *flightRegion() const { return nullptr; }

    /**
     * Control-region base (ArenaHeader::ctrlOffset), or nullptr for
     * the private backend and for arenas created with ctrlBytes == 0.
     */
    virtual uint8_t *ctrlRegion() const { return nullptr; }

    /**
     * Backing fd for cross-process / secondary attachment, or -1 for
     * the private backend. The fd stays owned by the backend.
     */
    virtual int shareFd() const { return -1; }

    /**
     * The unique generation number this backend drew from
     * ArenaHeader::generation when it created (1) or attached (> 1)
     * the arena; 0 for the private backend. Identifies one attachment
     * in the producer registry (arena_control.h).
     */
    virtual uint64_t attachGeneration() const { return 0; }

    /** System page size. */
    static std::size_t pageSize();

  protected:
    StorageBackend() = default;
};

/** Construction parameters for makeStorageBackend(). */
struct StorageOptions
{
    StorageKind kind = StorageKind::Private;
    /** Data-area bytes to reserve (rounded up to pages). */
    std::size_t bytes = 0;
    /**
     * File backend: backing path. Empty means an anonymous temp file
     * unlinked at creation (no litter, not reopenable). A named path
     * persists after the process exits.
     */
    std::string path;
    /** Arena backends: flight-recorder region bytes (page-rounded). */
    std::size_t flightBytes = 1u << 16;
    /**
     * Arena backends: control-region bytes (page-rounded). Zero means
     * no control region; the arena then only shares data blocks, not
     * the tracer's rendezvous state. BTrace sizes this from its
     * geometry (arena_control.h).
     */
    std::size_t ctrlBytes = 0;
};

/**
 * Build a backend. Errors (unopenable path, failed mmap/ftruncate)
 * come back as a Status instead of a panic, so a session daemon can
 * report them and keep running.
 */
Expected<std::unique_ptr<StorageBackend>>
tryMakeStorageBackend(const StorageOptions &o);

/** tryMakeStorageBackend, fatal (BTRACE_FATAL) on any error. */
std::unique_ptr<StorageBackend> makeStorageBackend(const StorageOptions &o);

/**
 * Map an existing shm arena (created by a ShmArenaBackend, obtained
 * via shareFd() or fd passing) as an additional attachment. Bumps the
 * header generation. The returned backend resolves the same BlockRef
 * offsets against its own mapping; @p fd is dup'd, the caller keeps
 * ownership of the original.
 */
Expected<std::unique_ptr<StorageBackend>> tryAttachShmArena(int fd);

/** tryAttachShmArena, fatal (BTRACE_FATAL) on any error. */
std::unique_ptr<StorageBackend> attachShmArena(int fd);

/**
 * Map an existing *named file* arena (created by a FileRingBackend)
 * as an additional attachment — the path-rendezvous used by btraced
 * and by producer processes that were not handed an fd. Bumps the
 * header generation. Unlike makeStorageBackend(StorageKind::File),
 * the file is opened as-is, never truncated or re-initialized.
 */
Expected<std::unique_ptr<StorageBackend>>
tryAttachFileArena(const std::string &path);

/**
 * Offline, read-only view of a persisted file-backed arena: validates
 * the header and exposes the flight bundle and the raw data area for
 * post-mortem decoding (`btrace_inspect --arena`). Never writes the
 * file and never bumps the generation.
 */
class ArenaView
{
  public:
    ArenaView() = default;
    ~ArenaView();

    ArenaView(ArenaView &&other) noexcept;
    ArenaView &operator=(ArenaView &&other) noexcept;
    ArenaView(const ArenaView &) = delete;
    ArenaView &operator=(const ArenaView &) = delete;

    /**
     * Open @p path; on failure returns a view with ok() == false and
     * the first problem in status() (error() is its message).
     */
    static ArenaView open(const std::string &path);

    bool ok() const { return base != nullptr; }
    const std::string &error() const { return st.message(); }
    /** Why the open failed (Status::ok() on a usable view). */
    const Status &status() const { return st; }

    uint64_t generation() const;
    bool cleanShutdown() const;
    uint64_t blockSize() const;
    uint64_t activeBlocks() const;
    uint64_t numBlocks() const;

    /** Data-area base and size. */
    const uint8_t *data() const;
    std::size_t dataBytes() const;

    /** Data of physical block @p phys (requires blockSize() != 0). */
    const uint8_t *block(uint64_t phys) const;

    /** Stored flight bundle JSON; empty if none was ever written. */
    std::string flightJson() const;

    /**
     * Control-region base (nullptr for arenas created without one)
     * and its byte size — the offline read-only view behind
     * `btrace_inspect --control` (the ControlHeader, and from layout
     * v2 the control page, live here).
     */
    const uint8_t *ctrlRegion() const;
    std::size_t ctrlBytes() const;

  private:
    const ArenaHeader *hdr() const;

    uint8_t *base = nullptr;   //!< whole-arena mapping
    std::size_t mapped = 0;
    Status st;
};

} // namespace btrace

#endif // BTRACE_COMMON_STORAGE_BACKEND_H
