/**
 * @file
 * Small statistics toolkit used by the analysis layer and benches:
 * running moments, geometric mean, percentile estimation over sample
 * vectors, and fixed-bucket histograms for latency CDFs.
 */

#ifndef BTRACE_COMMON_STATS_H
#define BTRACE_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace btrace {

/** Incremental mean / min / max / count over double samples. */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n; }
    double mean() const { return n ? sum / double(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double total() const { return sum; }

    /**
     * Geometric mean of the samples added via add(). Computed from an
     * accumulated sum of logs; samples <= 0 are clamped to @p floor.
     */
    double geoMean() const;

  private:
    std::size_t n = 0;
    double sum = 0.0;
    double logSum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Percentile over an explicit sample set. Samples are stored; call
 * percentile() after all adds (the first call sorts in place).
 */
class SampleSet
{
  public:
    void add(double x) { samples.push_back(x); sorted = false; }
    void reserve(std::size_t n) { samples.reserve(n); }

    std::size_t count() const { return samples.size(); }

    /** Value at quantile @p q in [0, 1] (nearest-rank). */
    double percentile(double q);

    double mean() const;
    double geoMean() const;

    const std::vector<double> &values() const { return samples; }

  private:
    void ensureSorted();

    std::vector<double> samples;
    bool sorted = false;
};

/**
 * Fixed-width-bucket histogram over [0, limit); values past the limit
 * land in an overflow bucket. Supports CDF extraction for Fig 11.
 */
class Histogram
{
  public:
    Histogram(double limit, std::size_t buckets);

    void add(double x);

    std::size_t count() const { return total; }
    double bucketWidth() const { return width; }
    std::size_t bucketCount() const { return counts.size(); }
    uint64_t bucketHits(std::size_t i) const { return counts.at(i); }
    uint64_t overflow() const { return past; }

    /** Cumulative fraction of samples <= upper edge of bucket @p i. */
    double cdfAt(std::size_t i) const;

    /** Approximate value at quantile @p q via linear bucket scan. */
    double quantile(double q) const;

  private:
    double width;
    std::vector<uint64_t> counts;
    uint64_t past = 0;
    std::size_t total = 0;
};

/** Geometric mean of a vector (zeros clamped to @p floor). */
double geoMean(const std::vector<double> &xs, double floor = 1e-9);

} // namespace btrace

#endif // BTRACE_COMMON_STATS_H
