/**
 * @file
 * Control file: the operator-facing reconfiguration source
 * (DESIGN.md §12.2). A flat key=value file that btraced / replay
 * parse into a ControlConfig and feed to Session::applyControl —
 * rewrite the file (or send btraced SIGHUP) and the running tracer
 * retunes without a restart.
 *
 * Grammar, one `key = value` per line, `#` comments, blank lines
 * ignored:
 *
 *     sample_rate      = 0.01      # global rate in [0, 1]
 *     category_rate.3  = 1.0       # per-slot override, slot 0..15
 *     first_k          = 10        # first-K-per-interval guarantee
 *     interval_sec     = 1.0       # first-K / budget interval
 *     record_budget    = 100000    # records per interval, 0 = off
 *     ring_min_blocks  = 192       # governor floor (multiple of A)
 *     ring_max_blocks  = 6144      # governor ceiling (multiple of A)
 *     journal          = on        # on/off/true/false/1/0
 *     watchdog         = on
 *
 * Unknown keys, malformed values, and out-of-range rates are
 * InvalidArgument with the line number — callers map that through
 * exitCodeFor like every other config error.
 */

#ifndef BTRACE_CONTROL_CONTROL_FILE_H
#define BTRACE_CONTROL_CONTROL_FILE_H

#include <string>

#include "common/status.h"
#include "control/control_config.h"

namespace btrace {

/** Parse control-file text (not a path) into a validated config. */
Expected<ControlConfig> parseControlText(const std::string &text);

/** Load and parse @p path; NotFound when it does not exist. */
Expected<ControlConfig> loadControlFile(const std::string &path);

/**
 * Poll-based change watcher: changed() stats the file and reports
 * true when the (mtime, size) pair moved since the last call — the
 * cheap primitive behind btraced's --control-file loop. A missing
 * file is "no change" until it appears.
 */
class ControlFileWatcher
{
  public:
    explicit ControlFileWatcher(std::string path_)
        : path(std::move(path_))
    {
    }

    /** True when the file changed since the previous call. */
    bool changed();

    const std::string &file() const { return path; }

  private:
    std::string path;
    long long lastMtimeNs = -1;
    long long lastSize = -1;
};

} // namespace btrace

#endif // BTRACE_CONTROL_CONTROL_FILE_H
