/**
 * @file
 * ControlPlane: owns the published ControlSnapshot chain of one
 * tracer attachment and the arena control page protocol (DESIGN.md
 * §12).
 *
 * Three reconfiguration sources converge here:
 *
 *  - programmatic: Session::applyControl() -> BTrace::applyControl()
 *    -> ControlPlane::apply();
 *  - file-driven: btraced / replay parse a control file
 *    (control/control_file.h) and call the same apply();
 *  - cross-process: apply() on a shared arena also serializes the
 *    snapshot into the arena's ControlPage; every other attachment
 *    picks it up via poll() (one relaxed load of the publish counter
 *    per poll, called from lease-renewal cadence, never per event).
 *
 * Snapshot lifetime: the plane keeps every snapshot it ever published
 * in a history vector and frees nothing until destruction. A reader
 * that loaded an old pointer therefore never races reclamation; the
 * memory cost is one small struct per *reconfiguration*, which is
 * operator-rate, not event-rate. The history also feeds
 * `btrace_inspect --control` and the version gauges.
 *
 * Default elision: a snapshot whose config is all-defaults is
 * published to the tracer as a *null* pointer, which is what keeps
 * the fast path byte-identical (sharedRmws and instruction-for-
 * instruction) to a build without the plane. The snapshot still
 * exists in history and on the arena page — version numbering is
 * unaffected.
 */

#ifndef BTRACE_CONTROL_CONTROL_PLANE_H
#define BTRACE_CONTROL_CONTROL_PLANE_H

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "control/snapshot.h"
#include "core/arena_control.h"
#include "trace/tracer.h"

namespace btrace {

/** Geometry the plane validates ring bounds against. */
struct ControlGeometry
{
    std::size_t activeBlocks = 0;  //!< A
    std::size_t maxBlocks = 0;     //!< hard ceiling (cfg.effectiveMaxBlocks)
};

class ControlPlane
{
  public:
    /**
     * Bind to @p tracer with @p page as the shared control page
     * (nullptr on the private backend). @p owner_init: wipe and
     * re-initialize the page (arena creation); otherwise adopt
     * whatever version the page currently publishes. The initial
     * config is published as version 1 by the owner.
     */
    ControlPlane(Tracer &tracer, const ControlGeometry &geometry,
                 ControlPage *page, bool owner_init,
                 const ControlConfig &initial);

    /** Detaches the published pointer from the tracer. */
    ~ControlPlane();

    ControlPlane(const ControlPlane &) = delete;
    ControlPlane &operator=(const ControlPlane &) = delete;

    /**
     * Validate @p next (ControlConfig::validate plus the ring-bound
     * geometry rules) and publish it as the next version — to this
     * tracer immediately, and to the arena control page when one is
     * bound, so other attachments converge on their next poll().
     */
    Status apply(const ControlConfig &next);

    /**
     * Pick up a version another attachment published to the arena
     * page. One relaxed load when nothing changed. Returns true when
     * a new version was adopted. Call at poll cadence (lease renewal,
     * drain ticks), never per event.
     */
    bool poll();

    /** The currently effective config (last applied or adopted). */
    ControlConfig current() const;

    /** Version of the currently effective snapshot (0 = none yet). */
    uint64_t version() const;

    /** Published snapshots, oldest first (inspection, tests). */
    std::vector<const ControlSnapshot *> history() const;

    /** The plane's decision-state tallies (metrics plane). */
    const ControlDecisionState &decisions() const { return state; }

    /** Validate ring bounds against a geometry (shared with config). */
    static Status validateBounds(const ControlConfig &c,
                                 const ControlGeometry &g);

  private:
    /** Build, chain, and swap in a snapshot for @p c. */
    void publish(const ControlConfig &c, uint64_t version,
                 bool write_page);

    /** Serialize @p s into the page entry its version claims. */
    void writePage(const ControlSnapshot &s);

    Tracer &tracer;
    ControlGeometry geo;
    ControlPage *page = nullptr;

    mutable std::mutex mu;
    std::vector<std::unique_ptr<ControlSnapshot>> snaps;
    uint64_t lastSeenPageVersion = 0;
    ControlDecisionState state;
};

} // namespace btrace

#endif // BTRACE_CONTROL_CONTROL_PLANE_H
