#include "control/control_file.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/format.h"

namespace btrace {

namespace {

std::string
trim(const std::string &s)
{
    const char *ws = " \t\r";
    const std::size_t b = s.find_first_not_of(ws);
    if (b == std::string::npos)
        return "";
    const std::size_t e = s.find_last_not_of(ws);
    return s.substr(b, e - b + 1);
}

Status
lineError(int line, const std::string &what)
{
    return errInvalidArgument("control file line " +
                              std::to_string(line) + ": " + what);
}

bool
parseDouble(const std::string &v, double &out)
{
    char *end = nullptr;
    errno = 0;
    out = std::strtod(v.c_str(), &end);
    return errno == 0 && end != nullptr && *end == '\0' && !v.empty();
}

bool
parseU64(const std::string &v, uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(v.c_str(), &end, 10);
    return errno == 0 && end != nullptr && *end == '\0' && !v.empty();
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "on" || v == "true" || v == "1") {
        out = true;
        return true;
    }
    if (v == "off" || v == "false" || v == "0") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

Expected<ControlConfig>
parseControlText(const std::string &text)
{
    ControlConfig c;
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string line = raw;
        if (const std::size_t hash = line.find('#');
            hash != std::string::npos)
            line.resize(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return lineError(lineno, "expected key = value");
        const std::string key = trim(line.substr(0, eq));
        const std::string val = trim(line.substr(eq + 1));
        if (key.empty() || val.empty())
            return lineError(lineno, "expected key = value");

        if (key == "sample_rate") {
            if (!parseDouble(val, c.sampleRate))
                return lineError(lineno, "bad number: " + val);
        } else if (key.rfind("category_rate.", 0) == 0) {
            uint64_t slot = 0;
            if (!parseU64(key.substr(14), slot) ||
                slot >= kControlCategorySlots)
                return lineError(lineno,
                                 "category slot must be 0.." +
                                     std::to_string(
                                         kControlCategorySlots - 1));
            if (!parseDouble(val, c.categoryRate[slot]))
                return lineError(lineno, "bad number: " + val);
        } else if (key == "first_k") {
            uint64_t k = 0;
            if (!parseU64(val, k) || k > 0xffffffffull)
                return lineError(lineno, "bad count: " + val);
            c.firstK = static_cast<uint32_t>(k);
        } else if (key == "interval_sec") {
            if (!parseDouble(val, c.intervalSec))
                return lineError(lineno, "bad number: " + val);
        } else if (key == "record_budget") {
            if (!parseU64(val, c.recordBudget))
                return lineError(lineno, "bad count: " + val);
        } else if (key == "ring_min_blocks") {
            uint64_t n = 0;
            if (!parseU64(val, n))
                return lineError(lineno, "bad count: " + val);
            c.ringMinBlocks = static_cast<std::size_t>(n);
        } else if (key == "ring_max_blocks") {
            uint64_t n = 0;
            if (!parseU64(val, n))
                return lineError(lineno, "bad count: " + val);
            c.ringMaxBlocks = static_cast<std::size_t>(n);
        } else if (key == "journal") {
            if (!parseBool(val, c.journalEnabled))
                return lineError(lineno, "expected on/off: " + val);
        } else if (key == "watchdog") {
            if (!parseBool(val, c.watchdogEnabled))
                return lineError(lineno, "expected on/off: " + val);
        } else {
            return lineError(lineno, "unknown key: " + key);
        }
    }
    if (Status st = c.validate(); !st.ok())
        return st;
    return Expected<ControlConfig>(c);
}

Expected<ControlConfig>
loadControlFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return errNotFound("control file not found: " + path);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return parseControlText(text);
}

bool
ControlFileWatcher::changed()
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return false;  // absent: no change until it appears
    const long long mtime_ns =
        static_cast<long long>(st.st_mtim.tv_sec) * 1000000000ll +
        st.st_mtim.tv_nsec;
    const long long size = static_cast<long long>(st.st_size);
    if (mtime_ns == lastMtimeNs && size == lastSize)
        return false;
    const bool first = lastMtimeNs < 0;
    lastMtimeNs = mtime_ns;
    lastSize = size;
    // The first successful stat primes the watcher; the initial load
    // is the caller's explicit startup step, not a "change".
    return !first;
}

} // namespace btrace
