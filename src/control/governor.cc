#include "control/governor.h"

#include <algorithm>

#include "control/snapshot.h"

namespace btrace {

const char *
governorActionName(GovernorAction a)
{
    switch (a) {
    case GovernorAction::None: return "none";
    case GovernorAction::GrowRing: return "grow_ring";
    case GovernorAction::ShrinkRing: return "shrink_ring";
    case GovernorAction::ThrottleSampling: return "throttle_sampling";
    case GovernorAction::RestoreSampling: return "restore_sampling";
    }
    return "?";
}

namespace {

/** Clamp @p target to a multiple of @p a inside [lo, hi]. */
std::size_t
alignTarget(std::size_t target, std::size_t a, std::size_t lo,
            std::size_t hi)
{
    target = target / a * a;
    return std::min(hi, std::max(lo, target));
}

} // namespace

std::vector<GovernorDecision>
Governor::evaluate(const GovernorInput &in)
{
    std::vector<GovernorDecision> out;
    if (in.numBlocks == 0 || in.activeBlocks == 0)
        return out;

    const std::size_t a = in.activeBlocks;
    const std::size_t lo =
        in.ringMinBlocks ? in.ringMinBlocks : a;
    const std::size_t hi =
        in.ringMaxBlocks ? in.ringMaxBlocks : in.numBlocks;

    lastSampleRate = in.sampleRate;
    lastRingBlocks = double(in.numBlocks);

    const uint64_t produced = in.overwrittenDelta + in.recordedDelta;
    const double loss_rate =
        produced == 0 ? 0.0
                      : double(in.overwrittenDelta) / double(produced);

    if (loss_rate > opts.lossRateGrow) {
        // Pressure: the consumer is being lapped. Capacity first,
        // fidelity second — only throttle once the ring is maxed.
        idleStreak = 0;
        calmStreak = 0;
        if (in.numBlocks < hi) {
            const std::size_t target = alignTarget(
                std::max(in.numBlocks * opts.growFactor,
                         in.numBlocks + a),
                a, lo, hi);
            if (target > in.numBlocks)
                out.push_back({GovernorAction::GrowRing, target,
                               "loss pressure: grow ring"});
        } else if (in.sampleRate > opts.throttleFloor) {
            if (preThrottleRate < 0.0)
                preThrottleRate = in.sampleRate;
            const double next = std::max(
                opts.throttleFloor, in.sampleRate * opts.throttleStep);
            out.push_back({GovernorAction::ThrottleSampling,
                           controlRateToFx(next),
                           "loss pressure at ring ceiling: throttle "
                           "before dropping"});
        }
        return out;
    }

    // Pressure-free interval.
    if (preThrottleRate >= 0.0 && ++calmStreak >= opts.restoreIntervals) {
        out.push_back({GovernorAction::RestoreSampling,
                       controlRateToFx(preThrottleRate),
                       "pressure cleared: restore sample rate"});
        preThrottleRate = -1.0;
        calmStreak = 0;
    }

    if (in.occupancy < opts.occupancyShrink && in.numBlocks > lo) {
        if (++idleStreak >= opts.shrinkIntervals) {
            const std::size_t target = alignTarget(
                in.numBlocks / 2, a, lo, std::max(lo, hi));
            if (target < in.numBlocks)
                out.push_back({GovernorAction::ShrinkRing, target,
                               "sustained low occupancy: shrink ring"});
            idleStreak = 0;
        }
    } else {
        idleStreak = 0;
    }
    return out;
}

void
Governor::actuate(BTrace &bt,
                  const std::vector<GovernorDecision> &decisions)
{
    for (const GovernorDecision &d : decisions) {
        bool ok = true;
        switch (d.action) {
        case GovernorAction::GrowRing:
        case GovernorAction::ShrinkRing: {
            const Status st =
                bt.tryResize(static_cast<std::size_t>(d.arg));
            ok = st.ok();
            if (ok) {
                lastRingBlocks = double(d.arg);
                if (d.action == GovernorAction::GrowRing)
                    ++tally.grows;
                else
                    ++tally.shrinks;
            } else {
                ++tally.failedResizes;
            }
            break;
        }
        case GovernorAction::ThrottleSampling:
        case GovernorAction::RestoreSampling: {
            ControlConfig c = bt.controlPlane().current();
            c.sampleRate = controlFxToRate(d.arg);
            ok = bt.applyControl(c).ok();
            if (ok) {
                lastSampleRate = c.sampleRate;
                if (d.action == GovernorAction::ThrottleSampling)
                    ++tally.throttles;
                else
                    ++tally.restores;
            }
            break;
        }
        case GovernorAction::None:
            continue;
        }
        ++tally.decisions;
        if (EventJournal *j = bt.attachedJournal())
            j->emit(JournalEventKind::GovernorDecision,
                    EventJournal::kNoCore,
                    static_cast<uint64_t>(d.action),
                    ok ? d.arg : 0);
    }
}

void
Governor::registerMetrics(MetricsRegistry &registry)
{
    registry.addCounter(
        "btrace_governor_decisions_total",
        "Governor decisions actuated (all actions)",
        [this] { return double(tally.decisions); });
    registry.addCounter("btrace_governor_grows_total",
                        "Ring grow actuations",
                        [this] { return double(tally.grows); });
    registry.addCounter("btrace_governor_shrinks_total",
                        "Ring shrink actuations",
                        [this] { return double(tally.shrinks); });
    registry.addCounter("btrace_governor_throttles_total",
                        "Sampling throttle actuations",
                        [this] { return double(tally.throttles); });
    registry.addCounter("btrace_governor_restores_total",
                        "Sampling restore actuations",
                        [this] { return double(tally.restores); });
    registry.addCounter(
        "btrace_governor_failed_resizes_total",
        "Resize actuations refused by the tracer (e.g. Busy)",
        [this] { return double(tally.failedResizes); });
    registry.addGauge("btrace_governor_sample_rate",
                      "Effective global sample rate the governor saw "
                      "or set last",
                      [this] { return lastSampleRate; });
    registry.addGauge("btrace_governor_ring_blocks",
                      "Ring size (blocks) the governor saw or set last",
                      [this] { return lastRingBlocks; });
}

} // namespace btrace
