/**
 * @file
 * ControlSnapshot: the versioned, immutable form of a ControlConfig
 * that the write path actually consults (DESIGN.md §12).
 *
 * Publication protocol: the ControlPlane builds a fresh snapshot per
 * applied config (rates pre-converted to 32.32 fixed point, interval
 * to nanoseconds), then swaps one atomic pointer on the tracer.
 * Snapshots are never mutated and never freed while the plane lives,
 * so a racing reader that loaded the old pointer keeps using a valid
 * object — no reclamation protocol, no reader registration.
 *
 * Fast-path contract (the same bar as the journal and observer
 * planes): when every knob is at its default the published pointer is
 * *null*, so the leased fast path pays exactly one relaxed load and a
 * predicted branch, and adds zero shared RMWs — the sharedRmws
 * counter is asserted byte-identical with and without an attached
 * plane (tests/control/ControlContract). With non-default controls,
 * the decision state (first-K words, budget word, tallies) lives in a
 * plane-owned ControlDecisionState: relaxed RMWs on plane-owned cache
 * lines, never on the tracer's shared words, and never charged to
 * sharedRmws — the §4.1 write protocol is untouched.
 *
 * The sampling decision itself is a deterministic hash of
 * (thread, stamp) against the fixed-point rate, so a replayed
 * workload samples identically run over run — no RNG state, no
 * per-thread divergence.
 */

#ifndef BTRACE_CONTROL_SNAPSHOT_H
#define BTRACE_CONTROL_SNAPSHOT_H

#include <atomic>
#include <chrono>
#include <cstdint>

#include "control/control_config.h"

namespace btrace {

/** Rate as 32.32 fixed point: 1.0 -> 2^32 (always-sample sentinel). */
constexpr uint64_t kControlRateOne = uint64_t(1) << 32;

/** Convert a probability to fixed point, clamped to [0, 2^32]. */
constexpr uint64_t
controlRateToFx(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return kControlRateOne;
    return static_cast<uint64_t>(rate * double(kControlRateOne));
}

constexpr double
controlFxToRate(uint64_t fx)
{
    return fx >= kControlRateOne ? 1.0
                                 : double(fx) / double(kControlRateOne);
}

/**
 * splitmix64 finalizer over (thread, stamp): a deterministic,
 * well-mixed 32-bit draw per event. Same inputs, same decision —
 * replay-stable sampling.
 */
inline uint32_t
controlSampleDraw(uint32_t thread, uint64_t stamp)
{
    uint64_t z = stamp + 0x9e3779b97f4a7c15ull * (uint64_t(thread) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<uint32_t>(z >> 32);
}

/**
 * Mutable decision state of one ControlPlane, shared by every
 * snapshot the plane publishes (the first-K epoch survives a rate
 * change; a republish must not reset the guarantee mid-interval).
 * Each word packs (intervalEpoch << 32 | count); tallies are plain
 * relaxed counters for the btrace_control_* metrics.
 */
struct ControlDecisionState
{
    /** Per-category-slot first-K word: epoch32 | granted-count32. */
    std::array<std::atomic<uint64_t>, kControlCategorySlots> firstK{};
    /** Global record-budget word: epoch32 | recorded-count32. */
    std::atomic<uint64_t> budget{0};

    std::atomic<uint64_t> allowed{0};       //!< events passed the gate
    std::atomic<uint64_t> sampledOut{0};    //!< shed by the sample rate
    std::atomic<uint64_t> budgetDenied{0};  //!< shed by the budget
    std::atomic<uint64_t> firstKGrants{0};  //!< granted by first-K

    static uint64_t
    pack(uint32_t epoch, uint32_t count)
    {
        return (uint64_t(epoch) << 32) | count;
    }
    static uint32_t epochOf(uint64_t w) { return uint32_t(w >> 32); }
    static uint32_t countOf(uint64_t w) { return uint32_t(w); }
};

/** Steady-clock nanoseconds (interval epochs, applied-at stamps). */
inline uint64_t
controlNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * One immutable published control version. Built only by the
 * ControlPlane; the write path reads it through a single relaxed
 * pointer load (Tracer::shouldRecord).
 */
struct ControlSnapshot
{
    uint64_t version = 0;    //!< 1-based, monotonic per arena/plane
    uint64_t appliedNs = 0;  //!< controlNowNs() at publication
    ControlConfig cfg;       //!< the knobs this version carries

    /** Per-slot effective rate in fixed point (override or global). */
    std::array<uint64_t, kControlCategorySlots> rateFx{};
    uint64_t intervalNs = 1000000000ull;

    /** Plane-owned mutable decision state (never null once published). */
    ControlDecisionState *state = nullptr;

    /** Build the derived fields from @p c (plane internals). */
    static ControlSnapshot
    build(uint64_t version, const ControlConfig &c,
          ControlDecisionState *state)
    {
        ControlSnapshot s;
        s.version = version;
        s.appliedNs = controlNowNs();
        s.cfg = c;
        const uint64_t global = controlRateToFx(c.sampleRate);
        for (std::size_t i = 0; i < kControlCategorySlots; ++i)
            s.rateFx[i] = c.categoryRate[i] < 0.0
                              ? global
                              : controlRateToFx(c.categoryRate[i]);
        s.intervalNs = static_cast<uint64_t>(c.intervalSec * 1e9);
        if (s.intervalNs == 0)
            s.intervalNs = 1;
        s.state = state;
        return s;
    }

    /** True when this version changes nothing (published as nullptr). */
    bool isDefault() const { return cfg.isDefault(); }

    /**
     * The gate: should an event of @p category from @p thread at
     * @p stamp be recorded now? Deterministic in (thread, stamp)
     * except for the wall-clock interval epochs of first-K and the
     * budget. Only relaxed operations on plane-owned state; never
     * touches tracer shared words.
     */
    bool
    shouldRecord(uint16_t category, uint32_t thread,
                 uint64_t stamp) const
    {
        const std::size_t slot = category & (kControlCategorySlots - 1);

        // First-K guarantee: the first K events of this slot in the
        // current interval are recorded regardless of the rate. A
        // lost epoch-reset CAS just means another thread reset it;
        // re-read and take the FAA path.
        uint32_t epoch = 0;
        if (cfg.firstK > 0 || cfg.recordBudget > 0)
            epoch = static_cast<uint32_t>(controlNowNs() / intervalNs);
        if (cfg.firstK > 0) {
            std::atomic<uint64_t> &w = state->firstK[slot];
            uint64_t cur = w.load(std::memory_order_relaxed);
            if (ControlDecisionState::epochOf(cur) != epoch)
                w.compare_exchange_strong(
                    cur, ControlDecisionState::pack(epoch, 0),
                    std::memory_order_relaxed,
                    std::memory_order_relaxed);
            cur = w.load(std::memory_order_relaxed);
            if (ControlDecisionState::epochOf(cur) == epoch &&
                ControlDecisionState::countOf(cur) < cfg.firstK) {
                const uint64_t prev =
                    w.fetch_add(1, std::memory_order_relaxed);
                if (ControlDecisionState::epochOf(prev) == epoch &&
                    ControlDecisionState::countOf(prev) < cfg.firstK) {
                    state->firstKGrants.fetch_add(
                        1, std::memory_order_relaxed);
                    return chargeBudget(epoch);
                }
            }
        }

        // The probabilistic gate.
        const uint64_t fx = rateFx[slot];
        if (fx < kControlRateOne &&
            controlSampleDraw(thread, stamp) >= fx) {
            state->sampledOut.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        return chargeBudget(epoch);
    }

  private:
    /** Budget check + allowed tally; @p epoch from the caller. */
    bool
    chargeBudget(uint32_t epoch) const
    {
        if (cfg.recordBudget > 0) {
            std::atomic<uint64_t> &w = state->budget;
            uint64_t cur = w.load(std::memory_order_relaxed);
            if (ControlDecisionState::epochOf(cur) != epoch)
                w.compare_exchange_strong(
                    cur, ControlDecisionState::pack(epoch, 0),
                    std::memory_order_relaxed,
                    std::memory_order_relaxed);
            const uint64_t prev =
                w.fetch_add(1, std::memory_order_relaxed);
            if (ControlDecisionState::epochOf(prev) == epoch &&
                ControlDecisionState::countOf(prev) >=
                    cfg.recordBudget) {
                state->budgetDenied.fetch_add(
                    1, std::memory_order_relaxed);
                return false;
            }
        }
        state->allowed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
};

} // namespace btrace

#endif // BTRACE_CONTROL_SNAPSHOT_H
