#include "control/control_plane.h"

#include "common/test_hooks.h"

namespace btrace {

namespace {

/** Seqlock read of one page entry; false on a torn/mid-write slot. */
bool
readEntry(const ControlPageEntry &e, uint64_t want_version,
          ControlConfig &out, uint64_t &applied_ns)
{
    for (int attempt = 0; attempt < 3; ++attempt) {
        const uint64_t s0 = e.seq.load(std::memory_order_acquire);
        if (s0 == 0 || (s0 & 1))
            continue;  // never written, or writer mid-flight
        ControlConfig c;
        uint64_t version = e.version.load(std::memory_order_relaxed);
        uint64_t applied = e.appliedNs.load(std::memory_order_relaxed);
        c.sampleRate = controlFxToRate(
            e.sampleRateFx.load(std::memory_order_relaxed));
        for (std::size_t i = 0; i < kControlCategorySlots; ++i) {
            const uint64_t fx =
                e.categoryRateFx[i].load(std::memory_order_relaxed);
            c.categoryRate[i] = fx == ControlPageEntry::kInheritRate
                                    ? -1.0
                                    : controlFxToRate(fx);
        }
        c.firstK = static_cast<uint32_t>(
            e.firstK.load(std::memory_order_relaxed));
        c.intervalSec =
            double(e.intervalNs.load(std::memory_order_relaxed)) / 1e9;
        c.recordBudget = e.recordBudget.load(std::memory_order_relaxed);
        c.ringMinBlocks = static_cast<std::size_t>(
            e.ringMinBlocks.load(std::memory_order_relaxed));
        c.ringMaxBlocks = static_cast<std::size_t>(
            e.ringMaxBlocks.load(std::memory_order_relaxed));
        const uint64_t flags = e.flags.load(std::memory_order_relaxed);
        c.journalEnabled = (flags & ControlPageEntry::kJournalFlag) != 0;
        c.watchdogEnabled =
            (flags & ControlPageEntry::kWatchdogFlag) != 0;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (e.seq.load(std::memory_order_relaxed) != s0)
            continue;  // overwritten while reading
        if (version != want_version)
            return false;  // the slot was lapped by a newer publish
        out = c;
        applied_ns = applied;
        return true;
    }
    return false;
}

} // namespace

ControlPlane::ControlPlane(Tracer &tracer_,
                           const ControlGeometry &geometry,
                           ControlPage *page_, bool owner_init,
                           const ControlConfig &initial)
    : tracer(tracer_), geo(geometry), page(page_)
{
    if (page != nullptr && owner_init) {
        // Fresh arena: wipe a previous life's page before anyone can
        // attach (the owner publishes ready only after this ctor).
        page->publishCount.store(0, std::memory_order_relaxed);
        for (ControlPageEntry &e : page->entries)
            e.seq.store(0, std::memory_order_relaxed);
    }
    if (page != nullptr && !owner_init) {
        // Attachment: adopt whatever the arena currently publishes;
        // fall back to @p initial when nothing was ever published or
        // the newest entry is torn right now (poll() converges later).
        const uint64_t v =
            page->publishCount.load(std::memory_order_acquire);
        ControlConfig c;
        uint64_t applied = 0;
        if (v > 0 &&
            readEntry(page->entries[(v - 1) % kControlHistory], v, c,
                      applied)) {
            publish(c, v, /*write_page=*/false);
            lastSeenPageVersion = v;
            return;
        }
        lastSeenPageVersion = v;
    }
    uint64_t version = 1;
    if (page != nullptr && owner_init) {
        version = page->publishCount.fetch_add(
                      1, std::memory_order_acq_rel) + 1;
        lastSeenPageVersion = version;
    }
    publish(initial, version, /*write_page=*/page != nullptr);
}

ControlPlane::~ControlPlane()
{
    tracer.setControlSnapshot(nullptr);
}

Status
ControlPlane::validateBounds(const ControlConfig &c,
                             const ControlGeometry &g)
{
    const std::size_t a = g.activeBlocks;
    if (c.ringMinBlocks != 0 &&
        (c.ringMinBlocks < a || c.ringMinBlocks % a != 0))
        return errInvalidArgument(
            "control: ringMinBlocks must be a multiple of A >= A");
    if (c.ringMaxBlocks != 0 && c.ringMaxBlocks % a != 0)
        return errInvalidArgument(
            "control: ringMaxBlocks must be a multiple of A");
    if (c.ringMaxBlocks != 0 && c.ringMaxBlocks > g.maxBlocks)
        return errInvalidArgument(
            "control: ringMaxBlocks exceeds the storage ceiling "
            "(maxBlocks)");
    return Status();
}

Status
ControlPlane::apply(const ControlConfig &next)
{
    if (Status st = next.validate(); !st.ok())
        return st;
    if (Status st = validateBounds(next, geo); !st.ok())
        return st;
    std::scoped_lock lock(mu);
    uint64_t version;
    if (page != nullptr) {
        version = page->publishCount.fetch_add(
                      1, std::memory_order_acq_rel) + 1;
        lastSeenPageVersion = version;
    } else {
        version = snaps.empty() ? 1 : snaps.back()->version + 1;
    }
    publish(next, version, /*write_page=*/page != nullptr);
    return Status();
}

bool
ControlPlane::poll()
{
    if (page == nullptr)
        return false;
    // Control-poll-phase probe (DESIGN.md §14): how much of the
    // renewal cadence goes to watching the control page.
    PhaseProbe probe(tracer.activeProfiler(),
                     ProfilePhase::ControlPoll);
    // The whole no-change path: one relaxed load and a compare.
    const uint64_t v =
        page->publishCount.load(std::memory_order_relaxed);
    std::scoped_lock lock(mu);
    if (v <= lastSeenPageVersion)
        return false;
    ControlConfig c;
    uint64_t applied = 0;
    if (!readEntry(page->entries[(v - 1) % kControlHistory], v, c,
                   applied))
        return false;  // mid-write or lapped; converge on a later poll
    lastSeenPageVersion = v;
    publish(c, v, /*write_page=*/false);
    return true;
}

ControlConfig
ControlPlane::current() const
{
    std::scoped_lock lock(mu);
    return snaps.empty() ? ControlConfig{} : snaps.back()->cfg;
}

uint64_t
ControlPlane::version() const
{
    std::scoped_lock lock(mu);
    return snaps.empty() ? 0 : snaps.back()->version;
}

std::vector<const ControlSnapshot *>
ControlPlane::history() const
{
    std::scoped_lock lock(mu);
    std::vector<const ControlSnapshot *> out;
    out.reserve(snaps.size());
    for (const auto &s : snaps)
        out.push_back(s.get());
    return out;
}

void
ControlPlane::publish(const ControlConfig &c, uint64_t version,
                      bool write_page)
{
    auto snap = std::make_unique<ControlSnapshot>(
        ControlSnapshot::build(version, c, &state));
    const ControlSnapshot *next =
        snap->isDefault() ? nullptr : snap.get();
    snaps.push_back(std::move(snap));
    if (write_page)
        writePage(*snaps.back());
    // Critical window: the snapshot exists (and, on shared arenas, is
    // already on the page) but this tracer still serves the previous
    // version. Tests park here to pin the swap ordering.
    BTRACE_TEST_YIELD(ControlPreSwap);
    // Single publication point: one release store; readers pay one
    // relaxed load. Old snapshots stay alive in `snaps`, so a reader
    // holding the previous pointer never races reclamation.
    tracer.setControlSnapshot(next);
}

void
ControlPlane::writePage(const ControlSnapshot &s)
{
    ControlPageEntry &e =
        page->entries[(s.version - 1) % kControlHistory];
    // Seqlock write: odd while mutating, then publish 2 * version.
    e.seq.store(2 * s.version - 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    e.version.store(s.version, std::memory_order_relaxed);
    e.appliedNs.store(s.appliedNs, std::memory_order_relaxed);
    e.sampleRateFx.store(controlRateToFx(s.cfg.sampleRate),
                         std::memory_order_relaxed);
    for (std::size_t i = 0; i < kControlCategorySlots; ++i)
        e.categoryRateFx[i].store(
            s.cfg.categoryRate[i] < 0.0
                ? ControlPageEntry::kInheritRate
                : controlRateToFx(s.cfg.categoryRate[i]),
            std::memory_order_relaxed);
    e.firstK.store(s.cfg.firstK, std::memory_order_relaxed);
    e.intervalNs.store(s.intervalNs, std::memory_order_relaxed);
    e.recordBudget.store(s.cfg.recordBudget, std::memory_order_relaxed);
    e.ringMinBlocks.store(s.cfg.ringMinBlocks,
                          std::memory_order_relaxed);
    e.ringMaxBlocks.store(s.cfg.ringMaxBlocks,
                          std::memory_order_relaxed);
    e.flags.store(
        (s.cfg.journalEnabled ? ControlPageEntry::kJournalFlag : 0) |
            (s.cfg.watchdogEnabled ? ControlPageEntry::kWatchdogFlag
                                   : 0),
        std::memory_order_relaxed);
    e.seq.store(2 * s.version, std::memory_order_release);
}

} // namespace btrace
