/**
 * @file
 * Governor: the metrics-driven feedback loop of the control plane
 * (DESIGN.md §12.3). It closes the loop the paper leaves to the
 * operator: watch the tracer's interval deltas, grow the ring under
 * loss pressure, shrink it under sustained idleness, and throttle
 * sampling *before* events have to be dropped.
 *
 * Shape follows HealthWatchdog: evaluate() is a pure function of one
 * interval's GovernorInput plus small streak state, and returns a list
 * of GovernorDecision values — policy only, no side effects. actuate()
 * is the separate imperative half that applies decisions to a BTrace
 * (tryResize / applyControl), journals each one as a GovernorDecision
 * lifecycle event, and keeps the btrace_governor_* tallies. Callers
 * that only want advice run evaluate() and stop there.
 *
 * Actuation priority, per interval:
 *
 *  1. loss pressure (overwritten positions, i.e. the consumer was
 *     lapped) -> GrowRing toward ringMaxBlocks;
 *  2. loss pressure at the ceiling -> ThrottleSampling stepwise down
 *     to throttleFloor ("throttle before dropping");
 *  3. pressure-free intervals while throttled -> RestoreSampling back
 *     to the pre-throttle rate;
 *  4. sustained low occupancy -> ShrinkRing toward ringMinBlocks.
 */

#ifndef BTRACE_CONTROL_GOVERNOR_H
#define BTRACE_CONTROL_GOVERNOR_H

#include <cstdint>
#include <vector>

#include "core/btrace.h"
#include "obs/metrics.h"

namespace btrace {

/** What the governor decided to do (journal arg = encoded target). */
enum class GovernorAction : uint8_t
{
    None = 0,
    GrowRing,         //!< arg = target numBlocks
    ShrinkRing,       //!< arg = target numBlocks
    ThrottleSampling, //!< arg = new rate in 32.32 fixed point
    RestoreSampling,  //!< arg = restored rate in 32.32 fixed point
};

const char *governorActionName(GovernorAction a);

/** One decision with its encoded target and human-readable cause. */
struct GovernorDecision
{
    GovernorAction action = GovernorAction::None;
    uint64_t arg = 0;          //!< blocks or fixed-point rate (see enum)
    const char *reason = "";   //!< static string, safe to keep
};

/** Policy knobs; defaults are deliberately conservative. */
struct GovernorOptions
{
    /** Loss fraction (overwritten / produced) that triggers growth. */
    double lossRateGrow = 0.01;
    /** Ring multiplication factor per grow step (aligned to A). */
    std::size_t growFactor = 2;
    /** Occupancy fraction below which an interval counts as idle. */
    double occupancyShrink = 0.10;
    /** Consecutive idle intervals before a shrink step. */
    unsigned shrinkIntervals = 3;
    /** Consecutive pressure-free intervals before restoring rate. */
    unsigned restoreIntervals = 3;
    /** Multiplied into the sample rate per throttle step. */
    double throttleStep = 0.5;
    /** The throttle never goes below this rate. */
    double throttleFloor = 0.01;
};

/**
 * One interval's observations. The caller (btraced's drain loop, a
 * test harness) computes the deltas; the governor never reads shared
 * state itself, which keeps evaluate() deterministic and testable.
 */
struct GovernorInput
{
    /** Positions overwritten unread this interval (loss signal). */
    uint64_t overwrittenDelta = 0;
    /** Events successfully recorded this interval. */
    uint64_t recordedDelta = 0;
    /** Produced-bytes / capacity for this interval, in [0, 1]. */
    double occupancy = 0.0;

    std::size_t numBlocks = 0;     //!< current ring size
    std::size_t activeBlocks = 0;  //!< A (resize alignment)
    /** Governor floor/ceiling; from ControlConfig ring bounds, with
     *  zero meaning "A" / "the storage maxBlocks ceiling". */
    std::size_t ringMinBlocks = 0;
    std::size_t ringMaxBlocks = 0;

    double sampleRate = 1.0;  //!< currently effective global rate
    uint64_t seq = 0;         //!< interval sequence (journal arg only)
};

class Governor
{
  public:
    explicit Governor(const GovernorOptions &options = {})
        : opts(options)
    {
    }

    /** Pure policy: decisions for one interval; updates streaks. */
    std::vector<GovernorDecision> evaluate(const GovernorInput &in);

    /**
     * Apply @p decisions to @p bt: GrowRing/ShrinkRing via
     * tryResize() (a refusal — e.g. Busy on a multi-attachment arena
     * — is tallied, journaled with arg 0, and skipped, never fatal),
     * Throttle/Restore via applyControl() on the tracer's current
     * config. Each actuation emits a GovernorDecision journal event
     * when a journal is attached.
     */
    void actuate(BTrace &bt,
                 const std::vector<GovernorDecision> &decisions);

    /** Register btrace_governor_* metrics (counters + gauges). */
    void registerMetrics(MetricsRegistry &registry);

    /** Tallies (also exported as metrics). */
    struct Tallies
    {
        uint64_t decisions = 0;
        uint64_t grows = 0;
        uint64_t shrinks = 0;
        uint64_t throttles = 0;
        uint64_t restores = 0;
        uint64_t failedResizes = 0;
    };
    const Tallies &tallies() const { return tally; }

  private:
    GovernorOptions opts;
    Tallies tally;

    unsigned idleStreak = 0;
    unsigned calmStreak = 0;
    /** Rate to restore once pressure clears; < 0 = not throttled. */
    double preThrottleRate = -1.0;

    /** Last-seen gauge values for the metrics plane. */
    double lastSampleRate = 1.0;
    double lastRingBlocks = 0.0;
};

} // namespace btrace

#endif // BTRACE_CONTROL_GOVERNOR_H
