/**
 * @file
 * Runtime-tunable control knobs of a tracer (DESIGN.md §12).
 *
 * A ControlConfig is the *value* side of the dynamic control plane:
 * everything an operator may retune while producers are live — sample
 * rates, the first-K-per-interval guarantee, the record-rate budget,
 * and the bounds the adaptive-sizing governor must respect. The
 * defaults mean "trace everything, never throttle, never resize":
 * a tracer whose control stays at defaults pays nothing for the plane
 * existing (the published snapshot pointer is null, see snapshot.h).
 *
 * The shape is modeled on ytsaurus's TSamplingConfig (SNIPPETS.md §3):
 * a global sample probability, per-category overrides, and a minimum
 * guaranteed trace count per interval so rare-but-important categories
 * survive aggressive downsampling.
 */

#ifndef BTRACE_CONTROL_CONTROL_CONFIG_H
#define BTRACE_CONTROL_CONTROL_CONFIG_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace btrace {

/**
 * Categories the control plane distinguishes. Event categories are
 * 16-bit; rates are kept per category modulo this slot count, so two
 * categories 16 apart share a knob. Power of two (mask, not divide).
 */
constexpr std::size_t kControlCategorySlots = 16;

/** The runtime-reconfigurable knobs. All defaults mean "no effect". */
struct ControlConfig
{
    /** Probability an event is recorded, in [0, 1]. */
    double sampleRate = 1.0;

    /**
     * Per-category override of sampleRate, indexed by
     * category % kControlCategorySlots. Negative = inherit the global
     * rate (the default for every slot).
     */
    std::array<double, kControlCategorySlots> categoryRate = [] {
        std::array<double, kControlCategorySlots> a{};
        for (double &r : a) r = -1.0;
        return a;
    }();

    /**
     * First-K guarantee: the first K events of each category slot in
     * every interval are recorded regardless of the sample rate, so a
     * rate of 0.01 still keeps at least K exemplars per interval.
     * 0 disables the guarantee.
     */
    uint32_t firstK = 0;

    /** Interval of the first-K guarantee and the record budget. */
    double intervalSec = 1.0;

    /**
     * Hard ceiling on recorded events per interval across all
     * categories (the budget of "Budgeted Dynamic Trace Structures").
     * Applied after sampling; 0 = unlimited.
     */
    uint64_t recordBudget = 0;

    /**
     * Ring-size bounds the governor may move numBlocks within, in
     * blocks. 0 = derive from the static geometry (min = initial
     * numBlocks, max = effectiveMaxBlocks). Both must be multiples of
     * activeBlocks when set.
     */
    std::size_t ringMinBlocks = 0;
    std::size_t ringMaxBlocks = 0;

    /** Tool-level toggles (btraced/replay honor them; see DESIGN.md §12). */
    bool journalEnabled = true;
    bool watchdogEnabled = true;

    /** True iff every knob still has its default (no-effect) value. */
    bool
    isDefault() const
    {
        if (sampleRate != 1.0 || firstK != 0 || recordBudget != 0 ||
            ringMinBlocks != 0 || ringMaxBlocks != 0 ||
            !journalEnabled || !watchdogEnabled)
            return false;
        for (double r : categoryRate)
            if (r >= 0.0)
                return false;
        return true;
    }

    /**
     * Self-contained validity rules (the cross-field rules against the
     * tracer geometry live in BTraceConfig::validate):
     *
     *  - sampleRate in [0, 1]; category overrides negative (inherit)
     *    or in [0, 1];
     *  - intervalSec > 0;
     *  - firstK <= recordBudget when a budget is set (the guarantee
     *    cannot exceed the interval's record capacity);
     *  - ringMinBlocks <= ringMaxBlocks when both are set.
     *
     * Returns the first violation as InvalidArgument.
     */
    Status
    validate() const
    {
        if (sampleRate < 0.0 || sampleRate > 1.0)
            return errInvalidArgument(
                "control: sampleRate must be in [0, 1]");
        for (std::size_t i = 0; i < categoryRate.size(); ++i)
            if (categoryRate[i] > 1.0)
                return errInvalidArgument(
                    "control: categoryRate[" + std::to_string(i) +
                    "] must be in [0, 1] (or negative to inherit)");
        if (!(intervalSec > 0.0))
            return errInvalidArgument(
                "control: intervalSec must be positive");
        if (recordBudget != 0 && firstK > recordBudget)
            return errInvalidArgument(
                "control: firstK exceeds the interval's record budget");
        if (ringMinBlocks != 0 && ringMaxBlocks != 0 &&
            ringMinBlocks > ringMaxBlocks)
            return errInvalidArgument(
                "control: ringMinBlocks > ringMaxBlocks");
        return Status();
    }
};

} // namespace btrace

#endif // BTRACE_CONTROL_CONTROL_CONFIG_H
