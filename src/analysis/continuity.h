/**
 * @file
 * Logic-stamp continuity analysis (§5 "Replaying setup").
 *
 * The replay engine assigns every produced event a unique,
 * monotonically increasing logic stamp; events whose stamps do not
 * appear in the dump were lost (overwritten, dropped, or stuck in an
 * unreadable block). From the produced log and a dump this module
 * computes the paper's four Table 2 metrics:
 *
 *  - latest fragment: the most recent contiguous stamp run (no holes)
 *    ending at the newest retained event, in bytes;
 *  - loss rate: the fraction of events missing within the collected
 *    range (oldest retained .. newest retained);
 *  - fragment count: number of maximal contiguous retained runs;
 *  - effectivity ratio (§2.2): latest fragment / buffer capacity.
 */

#ifndef BTRACE_ANALYSIS_CONTINUITY_H
#define BTRACE_ANALYSIS_CONTINUITY_H

#include <cstdint>
#include <vector>

#include "sim/replay.h"

namespace btrace {

/** Continuity metrics of one replay run. */
struct ContinuityReport
{
    uint64_t producedCount = 0;   //!< attempts, incl. design drops
    uint64_t retainedCount = 0;   //!< unique stamps present in the dump
    uint64_t droppedByDesign = 0; //!< events the tracer shed (Drop)
    double producedBytes = 0.0;
    double retainedBytes = 0.0;

    double latestFragmentBytes = 0.0;
    uint64_t latestFragmentCount = 0;
    double lossRate = 0.0;
    uint64_t fragments = 0;
    double effectivityRatio = 0.0;

    // Integrity diagnostics: all must be zero for a correct tracer.
    uint64_t duplicateStamps = 0;
    uint64_t unknownStamps = 0;   //!< dump stamps never produced
    uint64_t corruptPayloads = 0; //!< payload pattern mismatches
    uint64_t resurfacedDrops = 0; //!< dropped events present in dump
};

/** Analyze @p dump against the @p produced ground truth. */
ContinuityReport analyzeContinuity(
    const std::vector<ProducedEvent> &produced, const Dump &dump,
    std::size_t capacity_bytes);

/** Convenience overload for a finished replay. */
ContinuityReport analyzeContinuity(const ReplayResult &result);

} // namespace btrace

#endif // BTRACE_ANALYSIS_CONTINUITY_H
