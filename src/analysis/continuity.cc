#include "analysis/continuity.h"

#include <algorithm>

#include "common/panic.h"

namespace btrace {

ContinuityReport
analyzeContinuity(const std::vector<ProducedEvent> &produced,
                  const Dump &dump, std::size_t capacity_bytes)
{
    ContinuityReport rep;
    rep.producedCount = produced.size();

    // Stamps are 1..M in production order; index the ground truth.
    const uint64_t max_stamp = produced.size();
    std::vector<uint8_t> state(max_stamp + 1, 0);  // 1=produced 2=dropped
    std::vector<uint32_t> bytes(max_stamp + 1, 0);
    for (const ProducedEvent &e : produced) {
        BTRACE_ASSERT(e.stamp >= 1 && e.stamp <= max_stamp,
                      "non-contiguous stamp space");
        state[e.stamp] = e.dropped ? 2 : 1;
        bytes[e.stamp] = e.bytes;
        if (e.dropped)
            ++rep.droppedByDesign;
        else
            rep.producedBytes += e.bytes;
    }

    std::vector<uint8_t> retained(max_stamp + 1, 0);
    for (const DumpEntry &e : dump.entries) {
        if (e.stamp < 1 || e.stamp > max_stamp || state[e.stamp] == 0) {
            ++rep.unknownStamps;
            continue;
        }
        if (!e.payloadOk)
            ++rep.corruptPayloads;
        if (state[e.stamp] == 2)
            ++rep.resurfacedDrops;
        if (retained[e.stamp]) {
            ++rep.duplicateStamps;
            continue;
        }
        retained[e.stamp] = 1;
        ++rep.retainedCount;
        rep.retainedBytes += bytes[e.stamp];
    }

    if (rep.retainedCount == 0)
        return rep;

    uint64_t newest = max_stamp;
    while (newest >= 1 && !retained[newest])
        --newest;
    uint64_t oldest = 1;
    while (oldest <= max_stamp && !retained[oldest])
        ++oldest;

    // Latest fragment: contiguous retained run ending at the newest
    // retained stamp.
    uint64_t s = newest;
    while (s >= oldest && retained[s]) {
        rep.latestFragmentBytes += bytes[s];
        ++rep.latestFragmentCount;
        --s;
    }

    // Loss within the collected range, and fragment count.
    uint64_t in_range = 0;
    bool in_run = false;
    for (uint64_t i = oldest; i <= newest; ++i) {
        if (retained[i]) {
            ++in_range;
            if (!in_run) {
                ++rep.fragments;
                in_run = true;
            }
        } else {
            in_run = false;
        }
    }
    const uint64_t range = newest - oldest + 1;
    rep.lossRate = 1.0 - double(in_range) / double(range);
    rep.effectivityRatio =
        capacity_bytes ? rep.latestFragmentBytes / double(capacity_bytes)
                       : 0.0;
    return rep;
}

ContinuityReport
analyzeContinuity(const ReplayResult &result)
{
    return analyzeContinuity(result.produced, result.dump,
                             result.capacityBytes);
}

} // namespace btrace
