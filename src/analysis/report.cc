#include "analysis/report.h"

#include <sstream>

#include "common/format.h"
#include "common/panic.h"
#include "common/stats.h"

namespace btrace {

void
appendMetrics(TracerMetrics &row, const ContinuityReport &rep,
              double latency_geo_ns)
{
    row.latestFragmentMb.push_back(rep.latestFragmentBytes /
                                   (1024.0 * 1024.0));
    row.lossRate.push_back(rep.lossRate);
    row.fragments.push_back(double(rep.fragments));
    row.latencyGeoNs.push_back(latency_geo_ns);
}

namespace {

void
renderBlock(std::ostringstream &out, const std::string &title,
            const std::vector<std::string> &workloads,
            const std::vector<TracerMetrics> &rows,
            const std::vector<double> TracerMetrics::*field,
            std::string (*fmt)(double))
{
    out << "== " << title << " ==\n";
    TextTable table;
    std::vector<std::string> head = {"Tracer"};
    head.insert(head.end(), workloads.begin(), workloads.end());
    head.push_back("G.M.");
    table.header(std::move(head));

    for (const TracerMetrics &row : rows) {
        const auto &vals = row.*field;
        BTRACE_ASSERT(vals.size() == workloads.size(),
                      "metric vector does not match workload list");
        std::vector<std::string> cells = {row.tracer};
        for (double v : vals)
            cells.push_back(fmt(v));
        cells.push_back(fmt(geoMean(vals, 1e-3)));
        table.row(std::move(cells));
    }
    out << table.render() << "\n";
}

std::string fmtMb(double v) { return fmtDouble(v, 1); }
std::string fmtLoss(double v) { return fmtDouble(v, 2); }
std::string fmtFrag(double v) { return fmtCompact(v); }
std::string fmtLat(double v) { return fmtDouble(v, 0); }

} // namespace

std::string
renderTable2(const std::vector<std::string> &workloads,
             const std::vector<TracerMetrics> &rows)
{
    std::ostringstream out;
    renderBlock(out, "Latest continuous entries (MB) — higher is better",
                workloads, rows, &TracerMetrics::latestFragmentMb, fmtMb);
    renderBlock(out, "Loss rate — lower is better", workloads, rows,
                &TracerMetrics::lossRate, fmtLoss);
    renderBlock(out, "Number of fragments — lower is better", workloads,
                rows, &TracerMetrics::fragments, fmtFrag);
    renderBlock(out, "Recording latency, geometric mean (ns) — lower is "
                "better", workloads, rows, &TracerMetrics::latencyGeoNs,
                fmtLat);
    return out.str();
}

} // namespace btrace
