/**
 * @file
 * Gap statistics: where and how badly a trace is holed.
 *
 * The paper stresses that the per-core tracers' gaps come in two
 * kinds (Fig 1): *large* gaps a developer notices, and *numerous
 * indistinguishable small* gaps that silently mislead analysis (is
 * the missing event a non-taken branch or a drop?). This module
 * classifies every gap of a run by length and origin core so the
 * Fig 1 narrative can be quantified, not just drawn.
 */

#ifndef BTRACE_ANALYSIS_GAPS_H
#define BTRACE_ANALYSIS_GAPS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/replay.h"

namespace btrace {

/** One maximal run of missing stamps within the collected range. */
struct Gap
{
    uint64_t firstStamp = 0;
    uint64_t lastStamp = 0;
    double bytes = 0;

    uint64_t length() const { return lastStamp - firstStamp + 1; }
};

/** Classified gap statistics of one replay. */
struct GapReport
{
    std::vector<Gap> gaps;          //!< all gaps, ascending by stamp
    uint64_t smallGaps = 0;         //!< length <= smallThreshold
    uint64_t largeGaps = 0;
    double smallGapBytes = 0;
    double largeGapBytes = 0;
    uint64_t smallThreshold = 0;

    /** Largest single gap, in events (0 if none). */
    uint64_t maxGapLength() const;
};

/**
 * Build the gap report over the collected range (oldest..newest
 * retained stamp). Gaps of at most @p small_threshold events are the
 * "indistinguishable" kind.
 */
GapReport analyzeGaps(const std::vector<ProducedEvent> &produced,
                      const Dump &dump, uint64_t small_threshold = 16);

/** One-line rendering: "1234 gaps (1200 small / 34 large), max 5678". */
std::string describeGaps(const GapReport &report);

} // namespace btrace

#endif // BTRACE_ANALYSIS_GAPS_H
