/**
 * @file
 * Retained-event timelines for the Fig 1 comparison: which of the last
 * N written events (N = what the buffer could ideally hold) are still
 * present in the dump, rendered as an ASCII band where gaps show up as
 * blanks exactly like the figure's white stripes.
 */

#ifndef BTRACE_ANALYSIS_TIMELINE_H
#define BTRACE_ANALYSIS_TIMELINE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/replay.h"

namespace btrace {

/** Retention picture over the last-N-events window of one run. */
struct Timeline
{
    uint64_t windowStart = 1;  //!< oldest stamp in the window
    uint64_t windowEnd = 0;    //!< newest produced stamp (inclusive)
    /** Maximal contiguous retained stamp runs within the window. */
    std::vector<std::pair<uint64_t, uint64_t>> retainedRuns;

    uint64_t windowEvents() const
    {
        return windowEnd >= windowStart ? windowEnd - windowStart + 1 : 0;
    }

    /** Fraction of window events retained. */
    double coverage() const;
};

/**
 * Build the timeline of @p result. The window covers the newest
 * produced events whose cumulative size fits the buffer capacity —
 * "the last N written events" of Fig 1.
 */
Timeline buildTimeline(const ReplayResult &result);

/**
 * Render as a @p width-character band: '#' fully retained bucket,
 * '+' partially retained, '.' fully lost (a gap). Newest on the right,
 * as in Fig 1.
 */
std::string renderTimeline(const Timeline &timeline,
                           std::size_t width = 96);

} // namespace btrace

#endif // BTRACE_ANALYSIS_TIMELINE_H
