#include "analysis/defects.h"

#include <algorithm>
#include <map>

namespace btrace {

namespace {

std::vector<DumpEntry>
sorted(const std::vector<DumpEntry> &entries)
{
    std::vector<DumpEntry> out = entries;
    std::sort(out.begin(), out.end(),
              [](const DumpEntry &a, const DumpEntry &b) {
                  return a.stamp < b.stamp;
              });
    return out;
}

uint64_t
spanOf(const std::vector<DumpEntry> &es)
{
    if (es.empty())
        return 0;
    return es.back().stamp - es.front().stamp + 1;
}

} // namespace

double
DefectReport::ratePerMEvents() const
{
    if (windowStamps == 0)
        return 0.0;
    return double(occurrences.size()) * 1e6 / double(windowStamps);
}

DefectReport
detectMigrationStorm(const std::vector<DumpEntry> &entries,
                     uint16_t cat_idle, uint16_t cat_sched,
                     uint16_t cat_migration, uint64_t max_span)
{
    DefectReport rep;
    const auto es = sorted(entries);
    rep.windowStamps = spanOf(es);

    // Per-core progress through the idle -> sched -> migration
    // automaton, with a stamp deadline per in-flight match.
    struct State
    {
        int stage = 0;
        uint64_t start = 0;
    };
    std::map<uint16_t, State> per_core;

    for (const DumpEntry &e : es) {
        State &st = per_core[e.core];
        if (st.stage > 0 && e.stamp - st.start > max_span)
            st = State{};
        if (e.category == cat_idle) {
            st.stage = 1;
            st.start = e.stamp;
        } else if (e.category == cat_sched && st.stage == 1) {
            st.stage = 2;
        } else if (e.category == cat_migration && st.stage == 2) {
            rep.occurrences.push_back(
                DefectOccurrence{st.start, e.stamp, e.core});
            st = State{};
        }
    }
    return rep;
}

DefectReport
detectThermalBusyLoop(const std::vector<DumpEntry> &entries,
                      uint16_t cat_busy, uint16_t cat_downscale,
                      std::size_t min_burst, uint64_t max_span,
                      uint64_t lookahead)
{
    DefectReport rep;
    const auto es = sorted(entries);
    rep.windowStamps = spanOf(es);

    // Collect per-thread busy bursts.
    struct Burst
    {
        uint64_t first = 0;
        uint64_t last = 0;
        std::size_t count = 0;
    };
    std::map<uint32_t, Burst> open;
    std::vector<Burst> bursts;
    for (const DumpEntry &e : es) {
        if (e.category != cat_busy)
            continue;
        Burst &b = open[e.thread];
        if (b.count > 0 && e.stamp - b.first > max_span) {
            if (b.count >= min_burst)
                bursts.push_back(b);
            b = Burst{};
        }
        if (b.count == 0)
            b.first = e.stamp;
        b.last = e.stamp;
        ++b.count;
    }
    for (auto &[thread, b] : open) {
        if (b.count >= min_burst)
            bursts.push_back(b);
    }
    std::sort(bursts.begin(), bursts.end(),
              [](const Burst &a, const Burst &b) {
                  return a.first < b.first;
              });

    // Match each burst to a later downscale within the lookahead.
    std::vector<uint64_t> downscales;
    for (const DumpEntry &e : es) {
        if (e.category == cat_downscale)
            downscales.push_back(e.stamp);
    }
    for (const Burst &b : bursts) {
        const auto it = std::lower_bound(downscales.begin(),
                                         downscales.end(), b.last);
        if (it != downscales.end() && *it - b.last <= lookahead) {
            rep.occurrences.push_back(
                DefectOccurrence{b.first, *it, 0});
        }
    }
    return rep;
}

bool
rootCauseWithinWindow(const std::vector<DumpEntry> &entries,
                      uint16_t cat_root_cause, uint64_t min_distance)
{
    uint64_t newest = 0;
    for (const DumpEntry &e : entries)
        newest = std::max(newest, e.stamp);
    for (const DumpEntry &e : entries) {
        if (e.category == cat_root_cause &&
            newest - e.stamp >= min_distance)
            return true;
    }
    return false;
}

} // namespace btrace
