/**
 * @file
 * Defect-signature detectors — the §6 case studies as a library.
 *
 * The paper's production deployments diagnose three defect families
 * whose signatures are *sparse events spread over long windows*, which
 * is exactly what fragmented traces destroy:
 *
 *  - energy defects: repeated idle -> schedule -> migration triples on
 *    a core (threads migrated off a waking core by an over-aggressive
 *    policy);
 *  - frame drops: a periodic misbehaving thread whose activity
 *    precedes a frequency downscale long before the symptom;
 *  - silent defects: a watchdog window that must contain the root
 *    cause written tens of seconds before the report.
 *
 * Detectors run over a dump (plus the category ids the caller used)
 * and report occurrence counts and stamp spans, so examples and tests
 * can quantify "is the signature still diagnosable from this trace?".
 */

#ifndef BTRACE_ANALYSIS_DEFECTS_H
#define BTRACE_ANALYSIS_DEFECTS_H

#include <cstdint>
#include <vector>

#include "trace/tracer.h"

namespace btrace {

/** One detected occurrence of a defect signature. */
struct DefectOccurrence
{
    uint64_t firstStamp = 0;
    uint64_t lastStamp = 0;
    uint16_t core = 0;
};

/** Result of a detector pass. */
struct DefectReport
{
    std::vector<DefectOccurrence> occurrences;
    uint64_t windowStamps = 0;  //!< retained stamp span scanned

    /** Occurrences per million retained events. */
    double ratePerMEvents() const;
};

/**
 * Energy-defect detector: count idle -> sched -> migration sequences
 * on the same core within @p max_span stamps (§6 "Energy defects").
 */
DefectReport detectMigrationStorm(const std::vector<DumpEntry> &entries,
                                  uint16_t cat_idle, uint16_t cat_sched,
                                  uint16_t cat_migration,
                                  uint64_t max_span = 64);

/**
 * Frame-drop precursor: a burst of @p cat_busy events (>=
 * @p min_burst within @p max_span stamps on one thread) followed by a
 * @p cat_downscale event within @p lookahead stamps (§6 "Frame
 * drops"). Returns one occurrence per matched burst.
 */
DefectReport detectThermalBusyLoop(const std::vector<DumpEntry> &entries,
                                   uint16_t cat_busy,
                                   uint16_t cat_downscale,
                                   std::size_t min_burst = 8,
                                   uint64_t max_span = 256,
                                   uint64_t lookahead = 100000);

/**
 * Silent-defect check: is any @p cat_root_cause event retained at
 * least @p min_distance stamps before the newest retained event (the
 * watchdog report)? (§6 "Silent defects".)
 */
bool rootCauseWithinWindow(const std::vector<DumpEntry> &entries,
                           uint16_t cat_root_cause,
                           uint64_t min_distance);

} // namespace btrace

#endif // BTRACE_ANALYSIS_DEFECTS_H
