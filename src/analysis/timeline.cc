#include "analysis/timeline.h"

#include <algorithm>

#include "common/panic.h"

namespace btrace {

double
Timeline::coverage() const
{
    const uint64_t total = windowEvents();
    if (total == 0)
        return 0.0;
    uint64_t kept = 0;
    for (const auto &[lo, hi] : retainedRuns)
        kept += hi - lo + 1;
    return double(kept) / double(total);
}

Timeline
buildTimeline(const ReplayResult &result)
{
    Timeline tl;
    const auto &produced = result.produced;
    if (produced.empty())
        return tl;

    const uint64_t max_stamp = produced.size();
    std::vector<uint32_t> bytes(max_stamp + 1, 0);
    for (const ProducedEvent &e : produced)
        bytes[e.stamp] = e.bytes;

    // Window: newest events whose cumulative bytes fit the capacity.
    double acc = 0.0;
    uint64_t start = max_stamp + 1;
    while (start > 1 && acc < double(result.capacityBytes)) {
        --start;
        acc += bytes[start];
    }
    tl.windowStart = start;
    tl.windowEnd = max_stamp;

    std::vector<uint8_t> retained(max_stamp + 1, 0);
    for (const DumpEntry &e : result.dump.entries) {
        if (e.stamp >= 1 && e.stamp <= max_stamp)
            retained[e.stamp] = 1;
    }

    bool in_run = false;
    for (uint64_t s = tl.windowStart; s <= tl.windowEnd; ++s) {
        if (retained[s]) {
            if (!in_run) {
                tl.retainedRuns.emplace_back(s, s);
                in_run = true;
            } else {
                tl.retainedRuns.back().second = s;
            }
        } else {
            in_run = false;
        }
    }
    return tl;
}

std::string
renderTimeline(const Timeline &tl, std::size_t width)
{
    BTRACE_ASSERT(width >= 1, "band too narrow");
    const uint64_t total = tl.windowEvents();
    if (total == 0)
        return std::string(width, '.');

    // Per-bucket retained counts.
    std::vector<uint64_t> kept(width, 0);
    std::vector<uint64_t> size(width, 0);
    for (std::size_t b = 0; b < width; ++b) {
        const uint64_t lo = tl.windowStart + total * b / width;
        const uint64_t hi = tl.windowStart + total * (b + 1) / width;
        size[b] = hi > lo ? hi - lo : 1;
    }
    for (const auto &[lo, hi] : tl.retainedRuns) {
        for (uint64_t s = lo; s <= hi; ++s) {
            const auto b = static_cast<std::size_t>(
                (s - tl.windowStart) * width / total);
            ++kept[std::min(b, width - 1)];
        }
    }

    std::string band(width, '.');
    for (std::size_t b = 0; b < width; ++b) {
        const double frac = double(kept[b]) / double(size[b]);
        band[b] = frac >= 0.999 ? '#' : (frac > 0.0 ? '+' : '.');
    }
    return band;
}

} // namespace btrace
