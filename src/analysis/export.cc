#include "analysis/export.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/format.h"

namespace btrace {

namespace {

std::vector<DumpEntry>
prepared(const std::vector<DumpEntry> &entries, const ExportOptions &opt)
{
    std::vector<DumpEntry> out = entries;
    if (opt.sortByStamp) {
        std::sort(out.begin(), out.end(),
                  [](const DumpEntry &a, const DumpEntry &b) {
                      return a.stamp < b.stamp;
                  });
    }
    return out;
}

const TracepointRegistry &
registryOf(const ExportOptions &opt)
{
    return opt.registry ? *opt.registry : TracepointRegistry::global();
}

/** Name of @p id, or "cat-<id>" when the registry does not know it. */
std::string
nameOf(const TracepointRegistry &reg, uint16_t id)
{
    const Tracepoint &tp = reg.byId(id);
    if (id != 0 && tp.id == 0)
        return "cat-" + std::to_string(id);
    return tp.name;
}

} // namespace

namespace {

/** The entry events of exportChromeJson, without the wrapper. */
std::string
entryTraceEvents(const std::vector<DumpEntry> &entries,
                 const ExportOptions &opt)
{
    const TracepointRegistry &reg = registryOf(opt);
    std::ostringstream out;
    bool first = true;
    for (const DumpEntry &e : prepared(entries, opt)) {
        if (!first)
            out << ",";
        first = false;
        const double us = double(e.stamp) * opt.nsPerStamp / 1000.0;
        out << "{\"name\":\"" << reg.byId(e.category).name
            << "\",\"ph\":\"i\",\"s\":\"t\""
            << ",\"ts\":" << fmtDouble(us, 3)
            << ",\"pid\":" << e.core
            << ",\"tid\":" << e.thread
            << ",\"args\":{\"stamp\":" << e.stamp
            << ",\"size\":" << e.size << "}}";
    }
    return out.str();
}

} // namespace

std::string
exportChromeJson(const std::vector<DumpEntry> &entries,
                 const ExportOptions &opt)
{
    return "{\"traceEvents\":[" + entryTraceEvents(entries, opt) + "]}";
}

std::string
exportChromeJsonWithJournal(const std::vector<DumpEntry> &entries,
                            const std::vector<JournalRecord> &journal,
                            const ExportOptions &opt,
                            const TraceEventExportOptions &jopt)
{
    const std::string entry_events = entryTraceEvents(entries, opt);
    const std::string journal_events = journalTraceEvents(journal, jopt);
    std::string out = "{\"traceEvents\":[";
    out += entry_events;
    if (!entry_events.empty() && !journal_events.empty())
        out += ",";
    out += journal_events;
    out += "]}";
    return out;
}

std::string
exportCsv(const std::vector<DumpEntry> &entries, const ExportOptions &opt)
{
    const TracepointRegistry &reg = registryOf(opt);
    std::ostringstream out;
    out << "stamp,core,thread,category,category_name,size\n";
    for (const DumpEntry &e : prepared(entries, opt)) {
        out << e.stamp << ',' << e.core << ',' << e.thread << ','
            << e.category << ',' << reg.byId(e.category).name << ','
            << e.size << '\n';
    }
    return out.str();
}

std::string
summarizeDump(const Dump &dump, const ExportOptions &opt)
{
    const TracepointRegistry &reg = registryOf(opt);

    struct Tally
    {
        uint64_t count = 0;
        double bytes = 0;
    };
    std::map<uint16_t, Tally> per_core;
    std::map<uint16_t, Tally> per_cat;
    uint64_t lo = ~0ull, hi = 0;
    double total = 0;
    for (const DumpEntry &e : dump.entries) {
        auto &core_tally = per_core[e.core];
        ++core_tally.count;
        core_tally.bytes += e.size;
        auto &cat_tally = per_cat[e.category];
        ++cat_tally.count;
        cat_tally.bytes += e.size;
        lo = std::min(lo, e.stamp);
        hi = std::max(hi, e.stamp);
        total += e.size;
    }

    std::ostringstream out;
    out << "dump: " << dump.entries.size() << " entries, "
        << humanBytes(total);
    if (!dump.entries.empty())
        out << ", stamps " << lo << ".." << hi;
    out << "\nblocks: " << dump.skippedBlocks << " skipped, "
        << dump.abandonedBlocks << " abandoned, "
        << dump.unreadableBlocks << " unreadable\n";

    TextTable cores;
    cores.header({"core", "entries", "bytes"});
    for (const auto &[core, tally] : per_core) {
        cores.row({std::to_string(core), std::to_string(tally.count),
                   humanBytes(tally.bytes)});
    }
    out << "\nper core:\n" << cores.render();

    TextTable cats;
    cats.header({"category", "entries", "bytes"});
    for (const auto &[cat, tally] : per_cat) {
        cats.row({reg.byId(cat).name, std::to_string(tally.count),
                  humanBytes(tally.bytes)});
    }
    out << "\nper category:\n" << cats.render();
    return out.str();
}

} // namespace btrace
