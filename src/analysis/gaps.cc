#include "analysis/gaps.h"

#include <algorithm>
#include <sstream>

#include "common/panic.h"

namespace btrace {

uint64_t
GapReport::maxGapLength() const
{
    uint64_t best = 0;
    for (const Gap &g : gaps)
        best = std::max(best, g.length());
    return best;
}

GapReport
analyzeGaps(const std::vector<ProducedEvent> &produced, const Dump &dump,
            uint64_t small_threshold)
{
    GapReport rep;
    rep.smallThreshold = small_threshold;
    if (produced.empty())
        return rep;

    const uint64_t max_stamp = produced.size();
    std::vector<uint8_t> retained(max_stamp + 1, 0);
    std::vector<uint32_t> bytes(max_stamp + 1, 0);
    for (const ProducedEvent &e : produced) {
        BTRACE_ASSERT(e.stamp >= 1 && e.stamp <= max_stamp,
                      "non-contiguous stamp space");
        bytes[e.stamp] = e.bytes;
    }
    for (const DumpEntry &e : dump.entries) {
        if (e.stamp >= 1 && e.stamp <= max_stamp)
            retained[e.stamp] = 1;
    }

    uint64_t newest = max_stamp;
    while (newest >= 1 && !retained[newest])
        --newest;
    uint64_t oldest = 1;
    while (oldest <= max_stamp && !retained[oldest])
        ++oldest;
    if (oldest >= newest)
        return rep;

    Gap current;
    bool in_gap = false;
    for (uint64_t s = oldest; s <= newest; ++s) {
        if (!retained[s]) {
            if (!in_gap) {
                current = Gap{s, s, 0};
                in_gap = true;
            }
            current.lastStamp = s;
            current.bytes += bytes[s];
        } else if (in_gap) {
            rep.gaps.push_back(current);
            in_gap = false;
        }
    }
    BTRACE_DASSERT(!in_gap, "range must end retained");

    for (const Gap &g : rep.gaps) {
        if (g.length() <= small_threshold) {
            ++rep.smallGaps;
            rep.smallGapBytes += g.bytes;
        } else {
            ++rep.largeGaps;
            rep.largeGapBytes += g.bytes;
        }
    }
    return rep;
}

std::string
describeGaps(const GapReport &rep)
{
    std::ostringstream out;
    out << rep.gaps.size() << " gaps (" << rep.smallGaps
        << " small / " << rep.largeGaps << " large, threshold "
        << rep.smallThreshold << " events), max "
        << rep.maxGapLength() << " events";
    return out.str();
}

} // namespace btrace
