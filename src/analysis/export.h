/**
 * @file
 * Trace exporters: turn dumps into formats existing tooling eats —
 * Chrome trace-event JSON (viewable in Perfetto / chrome://tracing),
 * CSV for spreadsheets, and a per-core/per-category text rollup. The
 * tracepoint registry supplies category names.
 */

#ifndef BTRACE_ANALYSIS_EXPORT_H
#define BTRACE_ANALYSIS_EXPORT_H

#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/trace_export.h"
#include "trace/tracepoint.h"
#include "trace/tracer.h"

namespace btrace {

/** Options shared by the exporters. */
struct ExportOptions
{
    /** Registry used to resolve category names; null = global(). */
    const TracepointRegistry *registry = nullptr;
    /** Nanoseconds represented by one stamp step (synthetic clock). */
    double nsPerStamp = 1000.0;
    /** Sort entries by stamp before exporting. */
    bool sortByStamp = true;
};

/**
 * Chrome trace-event JSON ("traceEvents" array of instant events,
 * phase "i"); stamps become microsecond timestamps, cores become
 * pids, threads become tids.
 */
std::string exportChromeJson(const std::vector<DumpEntry> &entries,
                             const ExportOptions &opt = {});

/**
 * Chrome trace-event JSON combining the dumped entries (as above)
 * with the tracer's lifecycle journal (obs/trace_export.h): block
 * tracks with open→close durations, skips/resizes/watchdog trips as
 * instants. One caveat: entry stamps and journal tscs are separate
 * clocks, each zero-rebased independently — alignment between the two
 * groups is approximate, ordering within each group is exact.
 */
std::string exportChromeJsonWithJournal(
    const std::vector<DumpEntry> &entries,
    const std::vector<JournalRecord> &journal,
    const ExportOptions &opt = {},
    const TraceEventExportOptions &jopt = {});

/** CSV with header: stamp,core,thread,category,category_name,size. */
std::string exportCsv(const std::vector<DumpEntry> &entries,
                      const ExportOptions &opt = {});

/**
 * Human-readable rollup: entries and bytes per core and per category,
 * plus stamp range — the first thing a developer prints after a dump.
 */
std::string summarizeDump(const Dump &dump,
                          const ExportOptions &opt = {});

} // namespace btrace

#endif // BTRACE_ANALYSIS_EXPORT_H
