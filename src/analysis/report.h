/**
 * @file
 * Shared report assembly for the bench harnesses: Table 2-style
 * metric tables with a geometric-mean column, matching the layout of
 * the paper's evaluation tables.
 */

#ifndef BTRACE_ANALYSIS_REPORT_H
#define BTRACE_ANALYSIS_REPORT_H

#include <string>
#include <vector>

#include "analysis/continuity.h"

namespace btrace {

/** One tracer's per-workload metric vectors, Table 2 order. */
struct TracerMetrics
{
    std::string tracer;
    std::vector<double> latestFragmentMb;
    std::vector<double> lossRate;
    std::vector<double> fragments;
    std::vector<double> latencyGeoNs;
};

/** Extract the Table 2 metrics from one analyzed replay. */
void appendMetrics(TracerMetrics &row, const ContinuityReport &rep,
                   double latency_geo_ns);

/** Render the full Table 2 (four metric blocks, G.M. column). */
std::string renderTable2(const std::vector<std::string> &workloads,
                         const std::vector<TracerMetrics> &rows);

} // namespace btrace

#endif // BTRACE_ANALYSIS_REPORT_H
