#include "trace/trace_file.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

namespace btrace {

uint64_t
wallClockNs()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return uint64_t(ts.tv_sec) * 1'000'000'000ull +
           uint64_t(ts.tv_nsec);
}

Status
writeTraceFileHeader(int fd)
{
    const uint64_t magic = kTraceFileMagic;
    if (::write(fd, &magic, sizeof(magic)) != ssize_t(sizeof(magic)))
        return errIo("cannot write trace file header");
    return Status();
}

Status
writeSegmentHeaderV2(int fd, SegmentHeaderV2 &hdr)
{
    hdr.headerBytes = sizeof(SegmentHeaderV2);
    const uint64_t magic = kTraceFileMagicV2;
    if (::pwrite(fd, &magic, sizeof(magic), 0) !=
        ssize_t(sizeof(magic)))
        return errIo("cannot write segment magic");
    if (::pwrite(fd, &hdr, sizeof(hdr), sizeof(magic)) !=
        ssize_t(sizeof(hdr)))
        return errIo("cannot write segment header");
    // Leave the append offset past the header for the record stream.
    if (::lseek(fd, sizeof(magic) + sizeof(hdr), SEEK_SET) < 0)
        return errIo("cannot seek past segment header");
    return Status();
}

Status
updateSegmentHeaderV2(int fd, const SegmentHeaderV2 &hdr)
{
    // Re-stamp headerBytes: this build always writes its own layout,
    // and a caller-built header (tests, repair tools) may not have
    // been through writeSegmentHeaderV2.
    SegmentHeaderV2 h = hdr;
    h.headerBytes = sizeof(SegmentHeaderV2);
    if (::pwrite(fd, &h, sizeof(h), sizeof(uint64_t)) !=
        ssize_t(sizeof(h)))
        return errIo("cannot update segment header");
    return Status();
}

Status
appendTraceRecords(int fd, const std::vector<DumpEntry> &entries)
{
    if (entries.empty())
        return Status();
    std::vector<TraceDiskRecord> records;
    records.reserve(entries.size());
    for (const DumpEntry &e : entries)
        records.push_back(TraceDiskRecord::fromEntry(e));
    const auto bytes = records.size() * sizeof(TraceDiskRecord);
    if (::write(fd, records.data(), bytes) != ssize_t(bytes))
        return errIo("short write appending trace records");
    return Status();
}

Expected<SegmentInfo>
readSegment(const std::string &path, bool strict)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return errNotFound("no such trace file: " + path);

    SegmentInfo info;
    uint64_t magic = 0;
    if (::read(fd, &magic, sizeof(magic)) != ssize_t(sizeof(magic))) {
        ::close(fd);
        return errCorruption("not a btrace trace file: " + path);
    }
    if (magic == kTraceFileMagicV2) {
        info.version = 2;
        // headerBytes first, so a reader from this build can skip a
        // larger future header without understanding its tail.
        if (::read(fd, &info.header, sizeof(info.header)) !=
                ssize_t(sizeof(info.header)) ||
            info.header.headerBytes < sizeof(info.header)) {
            ::close(fd);
            return errCorruption("segment cut off inside its header: " +
                                 path);
        }
        if (info.header.headerBytes > sizeof(info.header) &&
            ::lseek(fd,
                    off_t(sizeof(magic)) + off_t(info.header.headerBytes),
                    SEEK_SET) < 0) {
            ::close(fd);
            return errCorruption("segment header overruns the file: " +
                                 path);
        }
    } else if (magic != kTraceFileMagic) {
        ::close(fd);
        return errCorruption("not a btrace trace file: " + path);
    }

    TraceDiskRecord rec;
    for (;;) {
        const ssize_t got = ::read(fd, &rec, sizeof(rec));
        if (got == 0)
            break;
        if (got != ssize_t(sizeof(rec))) {
            ::close(fd);
            if (strict)
                return errCorruption(
                    "torn trace record at the end of " + path);
            info.torn = true;
            info.tornTailBytes = got > 0 ? uint64_t(got) : 0;
            return Expected<SegmentInfo>(std::move(info));
        }
        info.entries.push_back(rec.toEntry());
    }
    ::close(fd);
    return Expected<SegmentInfo>(std::move(info));
}

namespace {

Expected<std::vector<DumpEntry>>
readImpl(const std::string &path, bool *torn, bool fail_on_torn)
{
    if (torn != nullptr)
        *torn = false;
    auto seg = readSegment(path, /*strict=*/fail_on_torn);
    if (!seg.ok())
        return seg.status();
    if (torn != nullptr)
        *torn = seg.value().torn;
    return Expected<std::vector<DumpEntry>>(
        std::move(seg.value().entries));
}

} // namespace

Expected<std::vector<DumpEntry>>
readTraceFile(const std::string &path)
{
    return readImpl(path, nullptr, /*fail_on_torn=*/true);
}

Expected<std::vector<DumpEntry>>
readTraceFileLossy(const std::string &path, bool *torn)
{
    return readImpl(path, torn, /*fail_on_torn=*/false);
}

} // namespace btrace
