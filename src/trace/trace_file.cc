#include "trace/trace_file.h"

#include <fcntl.h>
#include <unistd.h>

namespace btrace {

Status
writeTraceFileHeader(int fd)
{
    const uint64_t magic = kTraceFileMagic;
    if (::write(fd, &magic, sizeof(magic)) != ssize_t(sizeof(magic)))
        return errIo("cannot write trace file header");
    return Status();
}

Status
appendTraceRecords(int fd, const std::vector<DumpEntry> &entries)
{
    if (entries.empty())
        return Status();
    std::vector<TraceDiskRecord> records;
    records.reserve(entries.size());
    for (const DumpEntry &e : entries)
        records.push_back(TraceDiskRecord::fromEntry(e));
    const auto bytes = records.size() * sizeof(TraceDiskRecord);
    if (::write(fd, records.data(), bytes) != ssize_t(bytes))
        return errIo("short write appending trace records");
    return Status();
}

namespace {

Expected<std::vector<DumpEntry>>
readImpl(const std::string &path, bool *torn, bool fail_on_torn)
{
    if (torn != nullptr)
        *torn = false;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return errNotFound("no such trace file: " + path);
    uint64_t magic = 0;
    if (::read(fd, &magic, sizeof(magic)) != ssize_t(sizeof(magic)) ||
        magic != kTraceFileMagic) {
        ::close(fd);
        return errCorruption("not a btrace trace file: " + path);
    }

    std::vector<DumpEntry> out;
    TraceDiskRecord rec;
    for (;;) {
        const ssize_t got = ::read(fd, &rec, sizeof(rec));
        if (got == 0)
            break;
        if (got != ssize_t(sizeof(rec))) {
            ::close(fd);
            if (fail_on_torn)
                return errCorruption(
                    "torn trace record at the end of " + path);
            if (torn != nullptr)
                *torn = true;
            return Expected<std::vector<DumpEntry>>(std::move(out));
        }
        out.push_back(rec.toEntry());
    }
    ::close(fd);
    return Expected<std::vector<DumpEntry>>(std::move(out));
}

} // namespace

Expected<std::vector<DumpEntry>>
readTraceFile(const std::string &path)
{
    return readImpl(path, nullptr, /*fail_on_torn=*/true);
}

Expected<std::vector<DumpEntry>>
readTraceFileLossy(const std::string &path, bool *torn)
{
    return readImpl(path, torn, /*fail_on_torn=*/false);
}

} // namespace btrace
