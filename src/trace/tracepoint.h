/**
 * @file
 * Named tracepoint registry.
 *
 * Entries on the wire carry only a 16-bit category id (see event.h);
 * this registry gives ids stable names, levels (the Fig 3 grouping),
 * and human-readable descriptions, so consumers and exporters can
 * label dumps the way atrace categories label Android traces. The
 * catalog of modeled atrace categories (workloads/categories.h) can
 * be imported wholesale.
 */

#ifndef BTRACE_TRACE_TRACEPOINT_H
#define BTRACE_TRACE_TRACEPOINT_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace btrace {

/** Static description of one tracepoint (category id). */
struct Tracepoint
{
    uint16_t id = 0;
    std::string name;
    int level = 3;           //!< detail level, 1..3 (Fig 3)
    std::string description;
};

/**
 * Thread-safe id <-> name registry. Ids are dense and start at 1;
 * id 0 is reserved for "uncategorized".
 */
class TracepointRegistry
{
  public:
    /**
     * Register a tracepoint; returns its id. Re-registering the same
     * name returns the existing id (idempotent).
     */
    uint16_t registerTracepoint(const std::string &name, int level = 3,
                                const std::string &description = "");

    /** Lookup by id; returns the reserved entry 0 for unknown ids. */
    const Tracepoint &byId(uint16_t id) const;

    /** Lookup by name; returns 0 if not registered. */
    uint16_t idOf(const std::string &name) const;

    /** All registered tracepoints, id order (including entry 0). */
    std::vector<Tracepoint> all() const;

    /** Ids with level <= @p level (the cumulative Fig 3 sets). */
    std::vector<uint16_t> idsUpToLevel(int level) const;

    std::size_t size() const;

    /** Process-wide default registry. */
    static TracepointRegistry &global();

  private:
    mutable std::mutex lock;
    std::vector<Tracepoint> points{
        Tracepoint{0, "uncategorized", 3, "events without a category"}};
    std::unordered_map<std::string, uint16_t> byName;
};

} // namespace btrace

#endif // BTRACE_TRACE_TRACEPOINT_H
