#include "trace/tracer.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "control/snapshot.h"

namespace btrace {

bool
Tracer::shouldRecord(uint16_t category, uint32_t thread,
                     uint64_t stamp) const
{
    // The entire cost at defaults: one relaxed load, one branch.
    const ControlSnapshot *cs =
        control.load(std::memory_order_relaxed);
    if (cs == nullptr) [[likely]]
        return true;
    return cs->shouldRecord(category, thread, stamp);
}

void
Tracer::abandonWrite(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok,
                   "abandon without Ok");
    writeDummy(ticket.dst, ticket.entrySize);
    ticket.cost += costs.copy(8);
    confirm(ticket);
}

Lease
Tracer::lease(uint16_t core, uint32_t thread, uint32_t payload_hint,
              uint32_t n)
{
    (void)payload_hint;
    // Single-entry fallback: a budgeted pass-through so callers using
    // the lease/renew cadence drive this tracer's ordinary write path
    // one entry at a time (comparable operation counts, §5).
    Lease l;
    l.owner = this;
    l.st = AllocStatus::Ok;
    l.coreId = core;
    l.threadId = thread;
    l.budget = std::max(1u, n);
    return l;
}

Dump
Tracer::dumpFrom(DumpCursor &cursor, const DumpOptions &opts)
{
    (void)opts;
    // Trivial full-snapshot cursor: re-dump and keep entries above the
    // stamp high-water mark. Stamps are the replay's monotone logic
    // clock, so this returns exactly the new entries for every
    // baseline without per-design cursor support.
    Dump d = dump();
    uint64_t high = cursor.position;
    auto keep = d.entries.begin();
    for (const DumpEntry &e : d.entries) {
        if (e.stamp > cursor.position) {
            high = std::max(high, e.stamp);
            *keep++ = e;
        }
    }
    d.entries.erase(keep, d.entries.end());
    cursor.position = high;
    return d;
}

bool
Tracer::record(uint16_t core, uint32_t thread, uint64_t stamp,
               uint32_t payload_len, uint16_t category, double *cost_out)
{
    // Control-plane sampling gate. A sampled-out event is shed
    // *deliberately* — the caller is told true (not a drop), and loss
    // accounting is untouched: sampling is policy, dropping is
    // failure.
    if (!shouldRecord(category, thread, stamp)) {
        if (cost_out)
            *cost_out = 0.0;
        return true;
    }
    ScopedWrite w(*this, core, thread, payload_len,
                  ScopedWrite::Blocking);
    if (!w.ok()) {
        if (cost_out)
            *cost_out = w.cost();
        return false;  // Drop: shed by design
    }
    w.fill(stamp, category);
    w.commit();
    if (cost_out)
        *cost_out = w.cost();
    // Self-observation: 1-in-K sampled latency of successful writes
    // (observer.h). The skip path is a TLS tick and a branch; no
    // shared RMW is ever added to the tracer's own accounting.
    if (TracerObserver *o = attachedObserver())
        o->maybeRecordSample(w.cost());
    return true;
}

ScopedWrite::ScopedWrite(Tracer &t, uint16_t core, uint32_t thread,
                         uint32_t payload_len, Policy policy)
    : tracer(&t), payloadLen(payload_len),
      exceptionsOnEntry(std::uncaught_exceptions())
{
    // Each failed acquire costs the caller a spin-and-backoff before
    // the next attempt; charging it here keeps latency distributions
    // honest about contention instead of resetting per attempt.
    double accrued = 0.0;
    for (;;) {
        ticket = t.allocate(core, thread, payload_len);
        ticket.cost += accrued;
        if (ticket.status != AllocStatus::Retry ||
            policy == NonBlocking)
            return;
        accrued = ticket.cost + t.model().retryBackoff;
        // Retry-phase probe: the backoff yield between failed
        // acquires. The allocate() above carries its own claim/retry
        // probes, so only the wait itself is attributed here.
        PhaseProbe probe(t.activeProfiler(), ProfilePhase::Retry);
        std::this_thread::yield();
    }
}

ScopedWrite::ScopedWrite(Lease &l, uint32_t payload_len)
    : lease(&l), payloadLen(payload_len),
      exceptionsOnEntry(std::uncaught_exceptions())
{
    ticket = l.allocate(payload_len);
}

ScopedWrite::~ScopedWrite()
{
    if (!ok() || done)
        return;
    if (std::uncaught_exceptions() > exceptionsOnEntry)
        abandon();
    else
        commit();
}

void
ScopedWrite::fill(uint64_t stamp, uint16_t category)
{
    BTRACE_DASSERT(ok(), "fill without Ok");
    writeNormal(ticket.dst, stamp, ticket.core, ticket.thread, category,
                payloadLen);
    const CostModel &m = lease ? lease->model() : tracer->model();
    ticket.cost += m.copy(ticket.entrySize);
}

void
ScopedWrite::commit()
{
    if (!ok() || done)
        return;
    done = true;
    if (lease)
        lease->confirm(ticket);
    else
        tracer->confirm(ticket);
}

void
ScopedWrite::abandon()
{
    if (!ok() || done)
        return;
    done = true;
    if (lease)
        lease->abandon(ticket);
    else
        tracer->abandonWrite(ticket);
}

} // namespace btrace
