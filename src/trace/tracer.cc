#include "trace/tracer.h"

#include <thread>

namespace btrace {

bool
Tracer::record(uint16_t core, uint32_t thread, uint64_t stamp,
               uint32_t payload_len, uint16_t category, double *cost_out)
{
    WriteTicket ticket;
    for (;;) {
        ticket = allocate(core, thread, payload_len);
        if (ticket.status == AllocStatus::Ok)
            break;
        if (ticket.status == AllocStatus::Drop) {
            if (cost_out)
                *cost_out = ticket.cost;
            return false;
        }
        std::this_thread::yield();
    }

    writeNormal(ticket.dst, stamp, core, thread, category, payload_len);
    ticket.cost += costs.copy(ticket.entrySize);
    confirm(ticket);
    if (cost_out)
        *cost_out = ticket.cost;
    return true;
}

} // namespace btrace
