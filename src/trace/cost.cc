#include "trace/cost.h"

#include <algorithm>

namespace btrace {

const CostModel &
CostModel::def()
{
    static const CostModel model;
    return model;
}

double
CostModel::contention(std::size_t contenders) const
{
    // Cache-line ping-pong grows roughly linearly with the number of
    // concurrent writers until the interconnect saturates; cap at 16.
    const auto capped = std::min<std::size_t>(contenders, 16);
    return contentionPenalty * double(capped);
}

} // namespace btrace
