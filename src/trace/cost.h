/**
 * @file
 * Latency cost model for deterministic replay.
 *
 * The paper measures recording latency on a 12-core smartphone. This
 * container has one CPU, so absolute wall-clock numbers cannot be
 * reproduced; instead each tracer charges an explicit cost (in
 * nanoseconds) per operation on its write path, built from the
 * constants below. The constants are calibrated against published
 * figures: ~10 ns for an uncontended atomic RMW on a cache-hot line,
 * tens of ns extra when the line bounces between cores, ~200-300 ns
 * per-event framework overhead for LTTng-UST / VampirTrace. The
 * *shape* of the comparison (who is faster, by what factor, where the
 * spikes are) derives from the operation counts of each design, which
 * are real; only the unit costs are modeled. See DESIGN.md §2.
 */

#ifndef BTRACE_TRACE_COST_H
#define BTRACE_TRACE_COST_H

#include <cstddef>

namespace btrace {

/** Unit costs, in nanoseconds, charged by tracers during replay. */
struct CostModel
{
    double tscRead = 8.0;          //!< timestamp counter read
    double atomicLocal = 9.0;      //!< RMW on a core-local (hot) line
    double atomicShared = 26.0;    //!< RMW on a line shared across cores
    double contentionPenalty = 22.0; //!< extra per concurrent contender
    double perByte = 0.12;         //!< copy cost per payload byte
    double preemptToggle = 4.0;    //!< preempt_disable + enable (kernel)
    double tlsLookup = 14.0;       //!< userspace TLS/context lookup
    double setupOverhead = 12.0;   //!< call/branch/encode boilerplate
    double retryBackoff = 90.0;    //!< one failed acquire + backoff loop
    double lttngFramework = 150.0; //!< CTF serialization, clock sync
    double vtraceFramework = 210.0; //!< OTF encoding, counter sampling
    double leaseBump = 2.0;        //!< bump-pointer serve from an open lease

    /** The default model used by all benches. */
    static const CostModel &def();

    /** Cost of copying @p bytes into the buffer. */
    double copy(std::size_t bytes) const { return perByte * double(bytes); }

    /**
     * Per-entry cost of serving from an @p n entry lease: the open
     * and close RMWs (one reserve, one publish) amortized across the
     * batch, plus the bump-pointer arithmetic each entry pays. With
     * n == 1 this degenerates to the two-RMW single-entry fast path.
     */
    double
    amortizedClaim(std::size_t n) const
    {
        const double rmw = 2.0 * atomicLocal;
        return n ? rmw / double(n) + leaseBump : rmw + leaseBump;
    }

    /**
     * Contention charge for an RMW on a shared line with @p contenders
     * other writers in flight (capped to keep the model bounded).
     */
    double contention(std::size_t contenders) const;
};

} // namespace btrace

#endif // BTRACE_TRACE_COST_H
