#include "trace/segment_stats.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace btrace {

namespace {

/** Parse "segment-NNNNNN.btrace"; false when the name is foreign. */
bool
parseSegmentName(const char *name, uint64_t &index)
{
    static const char prefix[] = "segment-";
    static const char suffix[] = ".btrace";
    const std::size_t len = std::strlen(name);
    if (len <= sizeof(prefix) - 1 + sizeof(suffix) - 1)
        return false;
    if (std::strncmp(name, prefix, sizeof(prefix) - 1) != 0)
        return false;
    if (std::strcmp(name + len - (sizeof(suffix) - 1), suffix) != 0)
        return false;
    uint64_t v = 0;
    const char *p = name + sizeof(prefix) - 1;
    const char *end = name + len - (sizeof(suffix) - 1);
    if (p == end)
        return false;
    for (; p != end; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + uint64_t(*p - '0');
    }
    index = v;
    return true;
}

std::string
fmtU64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
fmtF(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

Expected<std::vector<SegmentFile>>
listSegmentFiles(const std::string &dirOrFile)
{
    struct stat sb;
    if (::stat(dirOrFile.c_str(), &sb) != 0)
        return errNotFound("no such segment path: " + dirOrFile);
    std::vector<SegmentFile> out;
    if (!S_ISDIR(sb.st_mode)) {
        SegmentFile f;
        f.path = dirOrFile;
        out.push_back(std::move(f));
        return Expected<std::vector<SegmentFile>>(std::move(out));
    }
    DIR *d = ::opendir(dirOrFile.c_str());
    if (d == nullptr)
        return errIo("cannot open segment directory: " + dirOrFile);
    while (struct dirent *e = ::readdir(d)) {
        uint64_t index = 0;
        if (!parseSegmentName(e->d_name, index))
            continue;
        SegmentFile f;
        f.path = dirOrFile + "/" + e->d_name;
        f.index = index;
        f.indexed = true;
        out.push_back(std::move(f));
    }
    ::closedir(d);
    std::sort(out.begin(), out.end(),
              [](const SegmentFile &a, const SegmentFile &b) {
                  return a.index < b.index;
              });
    return Expected<std::vector<SegmentFile>>(std::move(out));
}

SegmentAggregator::SegmentAggregator(double bucketSec)
    : bucketNs(bucketSec > 0.0 ? uint64_t(bucketSec * 1e9) : 0)
{
}

void
SegmentAggregator::recomputeGaps()
{
    std::sort(indices.begin(), indices.end());
    st.rotationGaps = 0;
    st.missingIndices = 0;
    for (std::size_t i = 1; i < indices.size(); ++i) {
        if (indices[i] > indices[i - 1] + 1) {
            ++st.rotationGaps;
            st.missingIndices += indices[i] - indices[i - 1] - 1;
        }
    }
}

void
SegmentAggregator::addSegment(const SegmentInfo &info,
                              const SegmentFile &file)
{
    ++st.segmentsScanned;
    if (file.indexed) {
        indices.push_back(file.index);
        recomputeGaps();
    }
    if (info.version >= 2) {
        ++st.v2Segments;
        const SegmentHeaderV2 &h = info.header;
        if ((h.flags & SegmentHeaderV2::kCleanClose) == 0)
            ++st.dirtySegments;
        st.declaredRecords += h.recordCount;
        st.declaredPayloadBytes += h.payloadBytes;
        st.overwrittenPositions += h.overwrittenPositions;
        st.skippedBlocks += h.skippedBlocks;
        st.abandonedBlocks += h.abandonedBlocks;
        if (h.firstDrainUnixNs != 0 &&
            (st.firstDrainUnixNs == 0 ||
             h.firstDrainUnixNs < st.firstDrainUnixNs))
            st.firstDrainUnixNs = h.firstDrainUnixNs;
        if (h.lastDrainUnixNs > st.lastDrainUnixNs)
            st.lastDrainUnixNs = h.lastDrainUnixNs;
    } else {
        ++st.v1Segments;
    }
    if (info.torn) {
        ++st.tornSegments;
        st.tornTailBytes += info.tornTailBytes;
    }
    for (const DumpEntry &e : info.entries) {
        ++st.records;
        st.payloadBytes += e.size;
        if (e.stamp < st.minStamp)
            st.minStamp = e.stamp;
        if (e.stamp > st.maxStamp)
            st.maxStamp = e.stamp;
        CategoryStats &c = st.categories[e.category];
        ++c.records;
        c.payloadBytes += e.size;
        ProducerStats &p = st.producers[e.thread];
        ++p.records;
        p.payloadBytes += e.size;
        if (e.stamp < p.minStamp)
            p.minStamp = e.stamp;
        if (e.stamp > p.maxStamp)
            p.maxStamp = e.stamp;
        if (e.stamp >= kWallClockStampFloorNs) {
            ++st.wallStampedRecords;
            if (bucketNs != 0) {
                ThroughputBucket &b =
                    st.buckets[e.stamp - e.stamp % bucketNs];
                ++b.records;
                b.payloadBytes += e.size;
            }
        }
    }
}

Status
SegmentAggregator::addFile(const SegmentFile &file, bool strict)
{
    auto seg = readSegment(file.path, strict);
    if (!seg.ok()) {
        ++st.segmentsScanned;
        ++st.unreadableSegments;
        if (file.indexed) {
            indices.push_back(file.index);
            recomputeGaps();
        }
        return seg.status();
    }
    addSegment(seg.value(), file);
    return Status();
}

Status
SegmentAggregator::addAll(const std::string &dirOrFile, bool strict)
{
    auto files = listSegmentFiles(dirOrFile);
    if (!files.ok())
        return files.status();
    Status first;
    for (const SegmentFile &f : files.value()) {
        Status s = addFile(f, strict);
        if (!s.ok() && first.ok())
            first = s;
    }
    return first;
}

namespace {

/** The observation window, for rate computation: drain window when v2
 * headers declared one, else the wall-stamp span, else zero. */
double
observationSeconds(const SegmentDirStats &st)
{
    if (st.lastDrainUnixNs > st.firstDrainUnixNs &&
        st.firstDrainUnixNs != 0)
        return double(st.lastDrainUnixNs - st.firstDrainUnixNs) / 1e9;
    if (st.wallStampedRecords != 0 && st.maxStamp > st.minStamp &&
        st.minStamp >= kWallClockStampFloorNs)
        return double(st.maxStamp - st.minStamp) / 1e9;
    return 0.0;
}

template <typename Map, typename Cmp>
std::vector<typename Map::const_iterator>
topRows(const Map &m, std::size_t topN, Cmp cmp)
{
    std::vector<typename Map::const_iterator> rows;
    rows.reserve(m.size());
    for (auto it = m.begin(); it != m.end(); ++it)
        rows.push_back(it);
    std::sort(rows.begin(), rows.end(), cmp);
    if (topN != 0 && rows.size() > topN)
        rows.resize(topN);
    return rows;
}

} // namespace

std::string
SegmentAggregator::renderTable(std::size_t topN) const
{
    std::string out;
    out.reserve(2048);
    char line[256];
    const auto add = [&](const char *fmt, auto... args) {
        std::snprintf(line, sizeof(line), fmt, args...);
        out += line;
    };

    add("segments: %" PRIu64 " scanned (%" PRIu64 " v1, %" PRIu64
        " v2), %" PRIu64 " torn, %" PRIu64 " dirty, %" PRIu64
        " unreadable\n",
        st.segmentsScanned, st.v1Segments, st.v2Segments,
        st.tornSegments, st.dirtySegments, st.unreadableSegments);
    add("rotation: %" PRIu64 " gap(s), %" PRIu64
        " segment(s) aged out by retention\n",
        st.rotationGaps, st.missingIndices);
    add("records: %" PRIu64 " (%" PRIu64 " payload bytes)",
        st.records, st.payloadBytes);
    if (st.records != 0)
        add(", stamps %" PRIu64 " .. %" PRIu64, st.minStamp,
            st.maxStamp);
    out += "\n";
    const double window = observationSeconds(st);
    if (window > 0.0)
        add("window: %.3f s -> %.1f records/s, %.1f bytes/s\n", window,
            double(st.records) / window,
            double(st.payloadBytes) / window);

    out += "\nretention quality:\n";
    add("  declared by headers   %" PRIu64 " records, %" PRIu64
        " bytes\n",
        st.declaredRecords, st.declaredPayloadBytes);
    add("  found by scan         %" PRIu64 " records, %" PRIu64
        " bytes%s\n",
        st.records, st.payloadBytes,
        st.headerScanMismatch() ? "   << MISMATCH" : "");
    add("  overwritten positions %" PRIu64 "\n",
        st.overwrittenPositions);
    add("  skipped blocks        %" PRIu64 "\n", st.skippedBlocks);
    add("  abandoned blocks      %" PRIu64 "\n", st.abandonedBlocks);
    add("  torn tail bytes       %" PRIu64 "\n", st.tornTailBytes);
    const uint64_t lost = st.overwrittenPositions + st.skippedBlocks;
    const double denom = double(st.records) + double(lost);
    add("  retained ratio        %.6f\n",
        denom > 0.0 ? double(st.records) / denom : 1.0);

    if (!st.categories.empty()) {
        add("\ntop categories (%zu of %zu):\n",
            std::min<std::size_t>(topN, st.categories.size()),
            st.categories.size());
        add("  %8s %12s %14s %8s\n", "category", "records", "bytes",
            "share");
        for (auto it : topRows(
                 st.categories, topN, [](auto a, auto b) {
                     return a->second.records > b->second.records;
                 }))
            add("  %8u %12" PRIu64 " %14" PRIu64 " %7.3f%%\n",
                unsigned(it->first), it->second.records,
                it->second.payloadBytes,
                st.records != 0 ? 100.0 * double(it->second.records) /
                                      double(st.records)
                                : 0.0);
    }

    if (!st.producers.empty()) {
        add("\ntop producers (%zu of %zu):\n",
            std::min<std::size_t>(topN, st.producers.size()),
            st.producers.size());
        add("  %10s %12s %14s %12s\n", "producer", "records", "bytes",
            "records/s");
        for (auto it : topRows(
                 st.producers, topN, [](auto a, auto b) {
                     return a->second.records > b->second.records;
                 }))
            add("  %10u %12" PRIu64 " %14" PRIu64 " %12.1f\n",
                it->first, it->second.records,
                it->second.payloadBytes,
                window > 0.0 ? double(it->second.records) / window
                             : 0.0);
    }

    if (!st.buckets.empty()) {
        add("\nthroughput (%zu bucket(s) of %.3f s):\n",
            st.buckets.size(), double(bucketNs) / 1e9);
        add("  %20s %12s %14s\n", "bucket start (ns)", "records",
            "bytes");
        std::size_t shown = 0;
        for (const auto &kv : st.buckets) {
            if (topN != 0 && shown++ >= topN) {
                add("  ... (%zu more)\n", st.buckets.size() - topN);
                break;
            }
            add("  %20" PRIu64 " %12" PRIu64 " %14" PRIu64 "\n",
                kv.first, kv.second.records, kv.second.payloadBytes);
        }
    }
    return out;
}

std::string
SegmentAggregator::renderJson(std::size_t topN) const
{
    std::string out;
    out.reserve(2048);
    out += "{\"btrace_stats_version\":1,";

    out += "\"segments\":{";
    out += "\"scanned\":" + fmtU64(st.segmentsScanned);
    out += ",\"v1\":" + fmtU64(st.v1Segments);
    out += ",\"v2\":" + fmtU64(st.v2Segments);
    out += ",\"torn\":" + fmtU64(st.tornSegments);
    out += ",\"dirty\":" + fmtU64(st.dirtySegments);
    out += ",\"unreadable\":" + fmtU64(st.unreadableSegments);
    out += ",\"rotation_gaps\":" + fmtU64(st.rotationGaps);
    out += ",\"missing_indices\":" + fmtU64(st.missingIndices);
    out += "},";

    out += "\"totals\":{";
    out += "\"records\":" + fmtU64(st.records);
    out += ",\"payload_bytes\":" + fmtU64(st.payloadBytes);
    out += ",\"wall_stamped_records\":" + fmtU64(st.wallStampedRecords);
    out += ",\"min_stamp\":" + fmtU64(st.records ? st.minStamp : 0);
    out += ",\"max_stamp\":" + fmtU64(st.maxStamp);
    out += ",\"first_drain_unix_ns\":" + fmtU64(st.firstDrainUnixNs);
    out += ",\"last_drain_unix_ns\":" + fmtU64(st.lastDrainUnixNs);
    out += "},";

    const uint64_t lost = st.overwrittenPositions + st.skippedBlocks;
    const double denom = double(st.records) + double(lost);
    out += "\"retention\":{";
    out += "\"declared_records\":" + fmtU64(st.declaredRecords);
    out += ",\"declared_payload_bytes\":" +
           fmtU64(st.declaredPayloadBytes);
    out += ",\"overwritten_positions\":" +
           fmtU64(st.overwrittenPositions);
    out += ",\"skipped_blocks\":" + fmtU64(st.skippedBlocks);
    out += ",\"abandoned_blocks\":" + fmtU64(st.abandonedBlocks);
    out += ",\"torn_tail_bytes\":" + fmtU64(st.tornTailBytes);
    out += ",\"header_scan_mismatch\":";
    out += st.headerScanMismatch() ? "true" : "false";
    out += ",\"retained_ratio\":" +
           fmtF(denom > 0.0 ? double(st.records) / denom : 1.0);
    out += "},";

    const double window = observationSeconds(st);
    out += "\"window_sec\":" + fmtF(window) + ",";

    out += "\"categories\":[";
    {
        bool first = true;
        for (auto it : topRows(
                 st.categories, topN, [](auto a, auto b) {
                     return a->second.records > b->second.records;
                 })) {
            if (!first) out += ",";
            first = false;
            out += "{\"category\":" + fmtU64(it->first);
            out += ",\"records\":" + fmtU64(it->second.records);
            out += ",\"payload_bytes\":" +
                   fmtU64(it->second.payloadBytes);
            out += ",\"share\":" +
                   fmtF(st.records != 0
                            ? double(it->second.records) /
                                  double(st.records)
                            : 0.0);
            out += "}";
        }
    }
    out += "],\"categories_truncated\":";
    out += (topN != 0 && st.categories.size() > topN) ? "true"
                                                      : "false";
    out += ",";

    out += "\"producers\":[";
    {
        bool first = true;
        for (auto it : topRows(
                 st.producers, topN, [](auto a, auto b) {
                     return a->second.records > b->second.records;
                 })) {
            if (!first) out += ",";
            first = false;
            out += "{\"producer\":" + fmtU64(it->first);
            out += ",\"records\":" + fmtU64(it->second.records);
            out += ",\"payload_bytes\":" +
                   fmtU64(it->second.payloadBytes);
            out += ",\"rate_per_sec\":" +
                   fmtF(window > 0.0
                            ? double(it->second.records) / window
                            : 0.0);
            out += "}";
        }
    }
    out += "],\"producers_truncated\":";
    out += (topN != 0 && st.producers.size() > topN) ? "true"
                                                     : "false";
    out += ",";

    out += "\"buckets\":[";
    {
        bool first = true;
        for (const auto &kv : st.buckets) {
            if (!first) out += ",";
            first = false;
            out += "{\"start_ns\":" + fmtU64(kv.first);
            out += ",\"records\":" + fmtU64(kv.second.records);
            out += ",\"payload_bytes\":" +
                   fmtU64(kv.second.payloadBytes);
            out += "}";
        }
    }
    out += "]}";
    return out;
}

} // namespace btrace
