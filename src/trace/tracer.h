/**
 * @file
 * Common tracer interface implemented by BTrace and all baselines.
 *
 * The write path is split into allocate() and confirm() so that the
 * replay engine can model a thread being preempted *between* the two
 * (the core oversubscription problem of §2.2, Observation 2). The
 * caller writes the entry via writeNormal() into the ticket's buffer
 * between the two calls. ScopedWrite wraps the pair in an RAII guard
 * that auto-confirms (or, on exception unwind, auto-abandons by
 * dummy-filling the granted space so the accounting stays complete).
 *
 * allocate() never blocks: it returns Ok with a buffer, Retry when the
 * design would block (BBQ behind a preempted writer, BTrace with every
 * metadata block in flight), or Drop when the design sheds the event
 * (LTTng-style drop-newest). Costs in nanoseconds, per the CostModel,
 * accumulate in the ticket.
 *
 * Batch writers use lease(): one claim amortized over up to @c n
 * entries. BTrace implements it with a single shared RMW per lease
 * (bump-pointer serves in between, §4.1 amortized); every other
 * tracer inherits the single-entry fallback, which serves each entry
 * through its ordinary allocate()/confirm() pair — so cross-tracer
 * comparisons stay apples-to-apples.
 */

#ifndef BTRACE_TRACE_TRACER_H
#define BTRACE_TRACE_TRACER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/panic.h"
#include "obs/profiler.h"
#include "trace/cost.h"
#include "trace/event.h"
#include "trace/observer.h"

namespace btrace {

/** Outcome of an allocate() call. */
enum class AllocStatus
{
    Ok,     //!< space granted; write then confirm()
    Retry,  //!< would block; try again later (caller decides when)
    Drop,   //!< event shed by design; never retried
};

/**
 * Tracer-private state carried between allocate() and confirm().
 * Opaque to callers; implementations name their use of each field
 * instead of multiplexing raw cookie words.
 */
struct TicketHandle
{
    uint32_t slot = 0;  //!< metadata / block / core index
    uint32_t aux = 0;   //!< generation, sub-buffer, or round tag
};

/** State handed from allocate() to confirm(). */
struct WriteTicket
{
    AllocStatus status = AllocStatus::Retry;
    uint8_t *dst = nullptr;    //!< where to write the entry
    uint32_t entrySize = 0;    //!< total entry bytes granted
    uint16_t core = 0;
    uint32_t thread = 0;
    double cost = 0.0;         //!< ns accumulated so far
    TicketHandle handle;       //!< tracer-private (see TicketHandle)
    bool leased = false;       //!< served from a Lease; confirm there

    bool ok() const { return status == AllocStatus::Ok; }
};

/** One decoded entry of a dump, ready for continuity analysis. */
struct DumpEntry
{
    uint64_t stamp = 0;
    uint32_t size = 0;         //!< total entry bytes
    uint16_t core = 0;
    uint32_t thread = 0;
    uint16_t category = 0;
    bool payloadOk = true;
};

/** A consumer snapshot plus bookkeeping about what was readable. */
struct Dump
{
    std::vector<DumpEntry> entries;
    uint64_t skippedBlocks = 0;    //!< blocks lost to SKP markers
    uint64_t abandonedBlocks = 0;  //!< speculative reads that failed
    uint64_t unreadableBlocks = 0; //!< unconfirmed / in-flight blocks
    /**
     * Incremental reads only (dumpFrom): positions whose data the
     * producers lapped — between the caller's cursor and the
     * overwrite frontier before this read started, or overtaken by a
     * full buffer lap while the read was in flight. Permanently gone
     * data, not merely unreadable right now. Zero when the consumer
     * kept up.
     */
    uint64_t overwrittenPositions = 0;
};

/**
 * Opaque incremental-read position for Tracer::dumpFrom(). Value-
 * initialize to start from the beginning; the tracer owns the meaning
 * of the fields (BTrace: a global block position; the baseline
 * fallback: a stamp high-water mark). Reuse the same cursor across
 * calls to receive only new data.
 */
struct DumpCursor
{
    uint64_t position = 0;  //!< tracer-private progress marker
};

/**
 * Behavior switches for Tracer::dumpFrom(). The default (both off) is
 * the conservative streaming read: completed blocks only, stop at the
 * first still-open block.
 */
struct DumpOptions
{
    /**
     * Close partially filled blocks whose writes are all confirmed,
     * then read them (§4.3 non-filled handling): the newest entries
     * are returned now and producers move on to fresh blocks. Blocks
     * with unconfirmed in-flight writes are always left alone.
     */
    bool closeActive = false;
    /**
     * Snapshot-peek mode: read open blocks *without* closing them and
     * keep walking past them instead of stopping. Entries of a block
     * read this way will be returned again by a later pass once the
     * block completes, and the pass performs no loss accounting —
     * this is what makes dump() a plain non-destructive snapshot.
     * Mutually exclusive with closeActive (closeActive wins).
     */
    bool readOpen = false;
};

class Tracer;
struct ControlSnapshot;

/**
 * A claim on up to @c n entry slots, served without per-entry shared
 * RMWs when the tracer supports batching (BTrace: one Allocated
 * fetch_add per lease, plain bump-pointer arithmetic in between, one
 * Confirmed fetch_add at close). Obtained from Tracer::lease().
 *
 * Lifecycle: allocate() entries until it reports Retry (span
 * exhausted), then close() — or let the destructor close. close()
 * publishes every confirmed entry and dummy-fills the unused
 * remainder, so the accounting invariant (every byte confirmed
 * exactly once) holds regardless of how much of the lease was used.
 * An abandoned-but-destructed lease therefore costs only its unused
 * bytes; a lease whose owner never returns leaves its block
 * unconfirmed and the block is sacrificed exactly like one held by a
 * preempted single-entry writer (§3.4).
 *
 * A lease is bound to the (core, thread) it was opened for. A thread
 * migrating cores should close() and re-lease on the new core; writes
 * through a stale lease stay correct (the claimed span is private)
 * but lose core locality.
 *
 * Move-only; moving transfers the close obligation.
 */
class Lease
{
  public:
    Lease() = default;

    Lease(Lease &&other) noexcept { moveFrom(other); }

    Lease &
    operator=(Lease &&other) noexcept
    {
        if (this != &other) {
            close();
            moveFrom(other);
        }
        return *this;
    }

    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    ~Lease() { close(); }

    AllocStatus status() const { return st; }
    bool ok() const { return st == AllocStatus::Ok; }
    /** True once close() ran (or the lease was never granted). */
    bool closed() const { return owner == nullptr; }
    /** True when served by bump-pointer (no per-entry shared RMWs). */
    bool batched() const { return base != nullptr; }
    uint16_t core() const { return coreId; }
    uint32_t thread() const { return threadId; }
    uint32_t remainingBytes() const { return len - used; }
    /** Entries served so far. */
    uint32_t entries() const { return served; }
    /** ns charged for open/serve/close so far. */
    double cost() const { return costNs; }

    /** Cost model of the granting tracer (lease must be open). */
    const CostModel &model() const;

    /**
     * Serve one entry of @p payload_len payload bytes from the lease.
     * Returns a Retry ticket when the remaining span cannot fit the
     * entry (close() and open a fresh lease) or when the lease itself
     * was not granted.
     */
    WriteTicket allocate(uint32_t payload_len);

    /** Publish an entry served by this lease (no shared RMW). */
    void confirm(WriteTicket &ticket);

    /**
     * Give up on an entry served by this lease: dummy-fill its space
     * and account it confirmed, so the block still completes.
     */
    void abandon(WriteTicket &ticket);

    /**
     * Return the unused span and publish the lease's confirmed bytes
     * with one shared RMW (batched tracers). Idempotent; the
     * destructor calls it.
     */
    void close();

  private:
    friend class Tracer;

    void
    moveFrom(Lease &other) noexcept
    {
        owner = other.owner;
        st = other.st;
        coreId = other.coreId;
        threadId = other.threadId;
        base = other.base;
        len = other.len;
        used = other.used;
        confirmedBytes = other.confirmedBytes;
        dummyBytes = other.dummyBytes;
        served = other.served;
        budget = other.budget;
        handle = other.handle;
        costNs = other.costNs;
        other.owner = nullptr;
        other.base = nullptr;
        other.st = AllocStatus::Retry;
    }

    Tracer *owner = nullptr;       //!< null once closed / never granted
    AllocStatus st = AllocStatus::Retry;
    uint16_t coreId = 0;
    uint32_t threadId = 0;
    uint8_t *base = nullptr;       //!< leased span; null = fallback mode
    uint32_t len = 0;              //!< bytes leased (batched mode)
    uint32_t used = 0;             //!< bytes bump-allocated so far
    uint32_t confirmedBytes = 0;   //!< bytes confirmed through the lease
    uint32_t dummyBytes = 0;       //!< abandoned-entry bytes dummy-filled
    uint32_t served = 0;           //!< entries handed out
    uint32_t budget = 0;           //!< fallback mode: entries remaining
    TicketHandle handle;           //!< tracer-private
    double costNs = 0.0;
};

/**
 * Abstract tracer. Implementations: core/BTrace, baselines/Bbq,
 * baselines/FtraceLike, baselines/LttngLike, baselines/VtraceLike.
 */
class Tracer
{
  public:
    explicit Tracer(const CostModel &model = CostModel::def())
        : costs(model) {}
    virtual ~Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Short identifier used in reports ("BTrace", "ftrace", ...). */
    virtual std::string name() const = 0;

    /**
     * True iff the design disables preemption around the write path
     * (ftrace in the kernel). The replay engine then never models a
     * context switch between allocate() and confirm() — at the cost
     * charged by the tracer. Infeasible for userspace tracers (§2.2).
     */
    virtual bool disablesPreemption() const { return false; }

    /** Total data-buffer capacity in bytes. */
    virtual std::size_t capacityBytes() const = 0;

    /**
     * Reserve space for a normal entry with @p payload_len payload
     * bytes, to be produced by @p thread running on @p core.
     */
    virtual WriteTicket allocate(uint16_t core, uint32_t thread,
                                 uint32_t payload_len) = 0;

    /** Publish a previously allocated entry; adds cost to the ticket. */
    virtual void confirm(WriteTicket &ticket) = 0;

    /**
     * Give up on an allocated-but-unwritten ticket: dummy-fill the
     * granted space and confirm it, so designs with completeness
     * accounting (BTrace) still close their blocks.
     */
    virtual void abandonWrite(WriteTicket &ticket);

    /**
     * Claim a lease sized for @p n entries of @p payload_hint payload
     * bytes each, for @p thread on @p core. The span also serves
     * entries of other sizes while they fit. Tracers without batching
     * inherit a fallback lease that forwards every entry to
     * allocate()/confirm() (and reports exhaustion after @p n entries
     * so renewal-driven callers behave uniformly).
     */
    virtual Lease lease(uint16_t core, uint32_t thread,
                        uint32_t payload_hint, uint32_t n);

    /** Non-destructive consumer snapshot of the retained entries. */
    virtual Dump dump() = 0;

    /**
     * Incremental consumer read: return entries that appeared since
     * the last call with the same @p cursor, advancing the cursor.
     * @p opts selects close-on-read or snapshot-peek behavior for
     * tracers that support it (BTrace). The base implementation is a
     * trivial full-snapshot cursor — dump() filtered to stamps above
     * the cursor's high-water mark — so callers can stream from any
     * tracer without special-casing BTrace.
     */
    virtual Dump dumpFrom(DumpCursor &cursor,
                          const DumpOptions &opts = {});

    /**
     * Convenience blocking write: allocate (spinning on Retry, with
     * each spin charged at CostModel::retryBackoff), fill, confirm.
     * Returns false iff the event was dropped by design. Total
     * charged cost is returned through @p cost_out if non-null.
     */
    bool record(uint16_t core, uint32_t thread, uint64_t stamp,
                uint32_t payload_len, uint16_t category = 0,
                double *cost_out = nullptr);

    const CostModel &model() const { return costs; }

    /**
     * Attach (or detach, with nullptr) a self-observation collector.
     * The observer must outlive its attachment; it samples record()
     * latency and lease-close cost 1-in-K per thread (observer.h) and
     * works identically for BTrace and every baseline, so cross-design
     * dashboards read one schema. Attachment itself is wait-free.
     */
    void
    attachObserver(TracerObserver *o)
    {
        observer.store(o, std::memory_order_release);
    }

    /** Currently attached observer, or nullptr. */
    TracerObserver *
    attachedObserver() const
    {
        return observer.load(std::memory_order_acquire);
    }

    /**
     * Publish @p s as the effective control snapshot (control plane
     * internals — ControlPlane::publish is the only intended caller;
     * nullptr means controls-at-defaults, the common case). The
     * snapshot must stay valid until replaced *and* every reader that
     * may have loaded it is done — the ControlPlane guarantees this
     * by never freeing published snapshots (DESIGN.md §12).
     */
    void
    setControlSnapshot(const ControlSnapshot *s)
    {
        control.store(s, std::memory_order_release);
    }

    /** Currently effective control snapshot, or nullptr (defaults). */
    const ControlSnapshot *
    controlSnapshot() const
    {
        return control.load(std::memory_order_acquire);
    }

    /**
     * The control plane's sampling gate: true when an event of
     * @p category from @p thread at @p stamp should be recorded.
     * record() consults it internally; lease-path callers (the replay
     * engine, btrace_producer) call it before allocating an entry.
     * With controls at defaults this is one relaxed load and a
     * predicted-not-taken branch — zero shared RMWs, the same bar as
     * the journal and observer planes.
     */
    bool shouldRecord(uint16_t category, uint32_t thread,
                      uint64_t stamp) const;

    /**
     * Attach (or detach, with nullptr) the cost-attribution profiler
     * (obs/profiler.h, DESIGN.md §14). Armed like the journal: every
     * fast-path probe site pays one relaxed load and a branch when
     * detached, and an attached profiler only ever writes its own
     * per-thread histogram shards — zero shared RMWs either way
     * (asserted by ProfilerContract). The profiler must outlive its
     * attachment.
     */
    void
    attachProfiler(CostProfiler *p)
    {
        profiler.store(p, std::memory_order_release);
    }

    /** Armed profiler, or nullptr; the single probe-arming load. */
    CostProfiler *
    activeProfiler() const
    {
        return profiler.load(std::memory_order_relaxed);
    }

  protected:
    friend class Lease;

    /**
     * Batched-lease publish hook: return the unused span and confirm
     * the lease's bytes. Only tracers that grant batched leases (base
     * != nullptr) need to override.
     */
    virtual void leaseClose(Lease &l) { (void)l; }

    /** Build a granted batched lease (implementation helper). */
    static Lease
    grantLease(Tracer &t, uint16_t core, uint32_t thread, uint8_t *base,
               uint32_t len, TicketHandle handle, double cost)
    {
        Lease l;
        l.owner = &t;
        l.st = AllocStatus::Ok;
        l.coreId = core;
        l.threadId = thread;
        l.base = base;
        l.len = len;
        l.handle = handle;
        l.costNs = cost;
        return l;
    }

    /** Build a denied lease carrying @p st and the accrued cost. */
    static Lease
    deniedLease(AllocStatus st, double cost)
    {
        Lease l;
        l.st = st;
        l.costNs = cost;
        return l;
    }

    /** Read-only view of a lease for leaseClose() implementations. */
    struct LeaseView
    {
        uint8_t *base;
        uint32_t len;
        uint32_t used;
        uint32_t confirmedBytes;
        uint32_t dummyBytes;
        uint32_t served;
        uint16_t core;
        TicketHandle handle;
    };

    static LeaseView
    viewOf(const Lease &l)
    {
        return {l.base, l.len,    l.used, l.confirmedBytes,
                l.dummyBytes, l.served, l.coreId, l.handle};
    }

    /** Add @p ns to a lease's accumulated cost (from leaseClose). */
    static void
    chargeLease(Lease &l, double ns)
    {
        l.costNs += ns;
    }

    const CostModel &costs;

  private:
    std::atomic<TracerObserver *> observer{nullptr};
    /** Effective control snapshot; nullptr = all-defaults (no gate). */
    std::atomic<const ControlSnapshot *> control{nullptr};
    /** Armed cost profiler; nullptr = probes disarmed (the default). */
    std::atomic<CostProfiler *> profiler{nullptr};
};

inline const CostModel &
Lease::model() const
{
    BTRACE_DASSERT(owner != nullptr, "model() on a closed lease");
    return owner->costs;
}

inline WriteTicket
Lease::allocate(uint32_t payload_len)
{
    WriteTicket ticket;
    ticket.core = coreId;
    ticket.thread = threadId;
    if (st != AllocStatus::Ok || owner == nullptr) {
        ticket.status = st == AllocStatus::Ok ? AllocStatus::Retry : st;
        return ticket;
    }
    if (base == nullptr) {
        // Fallback mode: one ordinary allocate per entry. Report
        // exhaustion after the budgeted entry count so callers renew
        // on the same cadence as with a batched lease.
        if (budget == 0) {
            ticket.status = AllocStatus::Retry;
            return ticket;
        }
        ticket = owner->allocate(coreId, threadId, payload_len);
        if (ticket.status == AllocStatus::Ok) {
            --budget;
            ++served;
            costNs += ticket.cost;
        }
        return ticket;
    }
    // Bump-phase probe (DESIGN.md §14): covers the span check and the
    // pointer arithmetic below. Disarmed this is one relaxed load and
    // a branch; armed it is two TSC reads into a thread-local shard.
    PhaseProbe probe(owner->activeProfiler(), ProfilePhase::Bump);
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));
    if (used + need > len) {
        ticket.status = AllocStatus::Retry;  // span exhausted; renew
        return ticket;
    }
    // Fast path of the fast path: serve from the leased span with
    // plain arithmetic — no shared RMW, no CAS, no counter traffic.
    ticket.dst = base + used;
    ticket.entrySize = need;
    ticket.leased = true;
    ticket.status = AllocStatus::Ok;
    ticket.cost = owner->costs.tscRead + owner->costs.leaseBump;
    used += need;
    ++served;
    costNs += ticket.cost;
    return ticket;
}

inline void
Lease::confirm(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok,
                   "lease confirm without Ok");
    if (!ticket.leased) {
        owner->confirm(ticket);
        costNs += ticket.cost;
        return;
    }
    confirmedBytes += ticket.entrySize;  // published in bulk at close()
}

inline void
Lease::abandon(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok,
                   "lease abandon without Ok");
    if (!ticket.leased) {
        owner->abandonWrite(ticket);
        costNs += ticket.cost;
        return;
    }
    writeDummy(ticket.dst, ticket.entrySize);
    confirmedBytes += ticket.entrySize;
    dummyBytes += ticket.entrySize;
}

inline void
Lease::close()
{
    if (owner == nullptr)
        return;
    const double before = costNs;
    if (base != nullptr)
        owner->leaseClose(*this);
    if (TracerObserver *o = owner->attachedObserver())
        o->maybeLeaseCloseSample(costNs - before);
    owner = nullptr;
    base = nullptr;
}

/**
 * RAII guard over one two-phase write: allocates in the constructor,
 * auto-confirms when the scope exits normally, and auto-abandons
 * (dummy-fills the granted space) when the scope unwinds through an
 * exception — the granted bytes are accounted either way, so a block
 * is never left incomplete by an early exit.
 *
 * Construct from a Tracer (optionally Blocking: spin on Retry with
 * each spin charged at CostModel::retryBackoff) or from an open
 * Lease (served by the lease's bump path when batched).
 */
class ScopedWrite
{
  public:
    enum Policy
    {
        NonBlocking,  //!< surface Retry to the caller
        Blocking,     //!< spin on Retry (charged per spin)
    };

    ScopedWrite(Tracer &t, uint16_t core, uint32_t thread,
                uint32_t payload_len, Policy policy = NonBlocking);

    ScopedWrite(Lease &lease, uint32_t payload_len);

    ScopedWrite(const ScopedWrite &) = delete;
    ScopedWrite &operator=(const ScopedWrite &) = delete;

    ~ScopedWrite();

    AllocStatus status() const { return ticket.status; }
    bool ok() const { return ticket.status == AllocStatus::Ok; }
    uint8_t *data() const { return ticket.dst; }
    uint32_t size() const { return ticket.entrySize; }
    double cost() const { return ticket.cost; }

    /** Write a normal entry into the granted space (charges copy). */
    void fill(uint64_t stamp, uint16_t category = 0);

    /** Confirm now instead of at scope exit. Idempotent. */
    void commit();

    /** Dummy-fill and confirm the granted space now. Idempotent. */
    void abandon();

  private:
    Tracer *tracer = nullptr;
    Lease *lease = nullptr;
    WriteTicket ticket;
    uint32_t payloadLen = 0;
    bool done = false;
    int exceptionsOnEntry = 0;
};

} // namespace btrace

#endif // BTRACE_TRACE_TRACER_H
