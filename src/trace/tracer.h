/**
 * @file
 * Common tracer interface implemented by BTrace and all baselines.
 *
 * The write path is split into allocate() and confirm() so that the
 * replay engine can model a thread being preempted *between* the two
 * (the core oversubscription problem of §2.2, Observation 2). The
 * caller writes the entry via writeNormal() into the ticket's buffer
 * between the two calls.
 *
 * allocate() never blocks: it returns Ok with a buffer, Retry when the
 * design would block (BBQ behind a preempted writer, BTrace with every
 * metadata block in flight), or Drop when the design sheds the event
 * (LTTng-style drop-newest). Costs in nanoseconds, per the CostModel,
 * accumulate in the ticket.
 */

#ifndef BTRACE_TRACE_TRACER_H
#define BTRACE_TRACE_TRACER_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/cost.h"
#include "trace/event.h"

namespace btrace {

/** Outcome of an allocate() call. */
enum class AllocStatus
{
    Ok,     //!< space granted; write then confirm()
    Retry,  //!< would block; try again later (caller decides when)
    Drop,   //!< event shed by design; never retried
};

/** State handed from allocate() to confirm(). */
struct WriteTicket
{
    AllocStatus status = AllocStatus::Retry;
    uint8_t *dst = nullptr;    //!< where to write the entry
    uint32_t entrySize = 0;    //!< total entry bytes granted
    uint16_t core = 0;
    uint32_t thread = 0;
    double cost = 0.0;         //!< ns accumulated so far
    uint64_t cookie = 0;       //!< tracer-private
    uint64_t cookie2 = 0;      //!< tracer-private
};

/** One decoded entry of a dump, ready for continuity analysis. */
struct DumpEntry
{
    uint64_t stamp = 0;
    uint32_t size = 0;         //!< total entry bytes
    uint16_t core = 0;
    uint32_t thread = 0;
    uint16_t category = 0;
    bool payloadOk = true;
};

/** A consumer snapshot plus bookkeeping about what was readable. */
struct Dump
{
    std::vector<DumpEntry> entries;
    uint64_t skippedBlocks = 0;    //!< blocks lost to SKP markers
    uint64_t abandonedBlocks = 0;  //!< speculative reads that failed
    uint64_t unreadableBlocks = 0; //!< unconfirmed / in-flight blocks
    /**
     * Incremental reads only (BTrace::dumpSince): number of global
     * block positions between the caller's cursor and the overwrite
     * frontier that producers lapped before this read — data that is
     * permanently gone, not merely unreadable right now. Zero when the
     * consumer kept up.
     */
    uint64_t overwrittenPositions = 0;
};

/**
 * Abstract tracer. Implementations: core/BTrace, baselines/Bbq,
 * baselines/FtraceLike, baselines/LttngLike, baselines/VtraceLike.
 */
class Tracer
{
  public:
    explicit Tracer(const CostModel &model = CostModel::def())
        : costs(model) {}
    virtual ~Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Short identifier used in reports ("BTrace", "ftrace", ...). */
    virtual std::string name() const = 0;

    /**
     * True iff the design disables preemption around the write path
     * (ftrace in the kernel). The replay engine then never models a
     * context switch between allocate() and confirm() — at the cost
     * charged by the tracer. Infeasible for userspace tracers (§2.2).
     */
    virtual bool disablesPreemption() const { return false; }

    /** Total data-buffer capacity in bytes. */
    virtual std::size_t capacityBytes() const = 0;

    /**
     * Reserve space for a normal entry with @p payload_len payload
     * bytes, to be produced by @p thread running on @p core.
     */
    virtual WriteTicket allocate(uint16_t core, uint32_t thread,
                                 uint32_t payload_len) = 0;

    /** Publish a previously allocated entry; adds cost to the ticket. */
    virtual void confirm(WriteTicket &ticket) = 0;

    /** Non-destructive consumer snapshot of the retained entries. */
    virtual Dump dump() = 0;

    /**
     * Convenience blocking write: allocate (spinning on Retry), fill,
     * confirm. Returns false iff the event was dropped by design.
     * Total charged cost is returned through @p cost_out if non-null.
     */
    bool record(uint16_t core, uint32_t thread, uint64_t stamp,
                uint32_t payload_len, uint16_t category = 0,
                double *cost_out = nullptr);

    const CostModel &model() const { return costs; }

  protected:
    const CostModel &costs;
};

} // namespace btrace

#endif // BTRACE_TRACE_TRACER_H
