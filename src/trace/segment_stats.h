/**
 * @file
 * Offline analytics over a directory of rotated trace segments — the
 * library half of tools/btrace_stats, in the spirit of Apache Traffic
 * Server's traffic_logstats (DESIGN.md §13).
 *
 * The aggregator folds SegmentInfo scans (trace_file.h, v1 and v2)
 * into one SegmentDirStats: per-category and per-producer record/byte
 * tallies, time-bucketed throughput over wall-clock-stamped records,
 * and a retention-quality account that reconciles what the segments
 * *declare* (v2 headers: drain-side loss counters, record counts)
 * against what the record scan actually finds (torn tails, truncated
 * appends) and against the segment numbering itself (rotation gaps
 * where retention unlinked files between the survivors).
 *
 * Everything here is plain offline file reading — no arena access, no
 * shared state with a live tracer.
 */

#ifndef BTRACE_TRACE_SEGMENT_STATS_H
#define BTRACE_TRACE_SEGMENT_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace_file.h"

namespace btrace {

/** One segment file discovered on disk. */
struct SegmentFile
{
    std::string path;
    uint64_t index = 0;    //!< parsed from segment-NNNNNN.btrace
    bool indexed = false;  //!< false: name carries no rotation index
};

/**
 * Find segment files. A directory yields every "segment-*.btrace"
 * inside it, sorted by rotation index; a regular file yields itself
 * (unindexed). NotFound when the path does not exist.
 */
Expected<std::vector<SegmentFile>>
listSegmentFiles(const std::string &dirOrFile);

/** Per-category tallies. */
struct CategoryStats
{
    uint64_t records = 0;
    uint64_t payloadBytes = 0;
};

/** Per-producer (record thread id; the writer pid under btraced). */
struct ProducerStats
{
    uint64_t records = 0;
    uint64_t payloadBytes = 0;
    uint64_t minStamp = UINT64_MAX;
    uint64_t maxStamp = 0;
};

/** One throughput bucket over wall-clock-stamped records. */
struct ThroughputBucket
{
    uint64_t records = 0;
    uint64_t payloadBytes = 0;
};

/** Everything the aggregator knows after scanning a segment set. */
struct SegmentDirStats
{
    // Segment inventory.
    uint64_t segmentsScanned = 0;
    uint64_t v1Segments = 0;
    uint64_t v2Segments = 0;
    uint64_t tornSegments = 0;    //!< record stream ends mid-record
    uint64_t dirtySegments = 0;   //!< v2 without the clean-close flag
    uint64_t unreadableSegments = 0;  //!< bad magic / truncated header
    uint64_t rotationGaps = 0;    //!< runs of unlinked indices
    uint64_t missingIndices = 0;  //!< total indices retention removed

    // Scanned truth.
    uint64_t records = 0;
    uint64_t payloadBytes = 0;
    uint64_t wallStampedRecords = 0;  //!< stamps >= the wall-clock floor
    uint64_t minStamp = UINT64_MAX;
    uint64_t maxStamp = 0;
    uint64_t tornTailBytes = 0;

    // Declared by v2 headers (drain-side accounting).
    uint64_t declaredRecords = 0;
    uint64_t declaredPayloadBytes = 0;
    uint64_t overwrittenPositions = 0;
    uint64_t skippedBlocks = 0;
    uint64_t abandonedBlocks = 0;
    uint64_t firstDrainUnixNs = 0;
    uint64_t lastDrainUnixNs = 0;

    std::map<uint16_t, CategoryStats> categories;
    std::map<uint32_t, ProducerStats> producers;
    /** bucket start (unix ns, multiple of the bucket width) → tallies */
    std::map<uint64_t, ThroughputBucket> buckets;

    /** Declared record count disagrees with the scan (torn tail or a
     * writer killed between append and header rewrite). */
    bool
    headerScanMismatch() const
    {
        return v2Segments != 0 && declaredRecords != records;
    }
};

/**
 * Incremental segment-set aggregator. Feed files (or pre-read
 * SegmentInfo values) in any order; stats() is valid at any point.
 */
class SegmentAggregator
{
  public:
    /** @p bucketSec sizes the throughput buckets (<= 0: disabled). */
    explicit SegmentAggregator(double bucketSec = 1.0);

    /**
     * Read and fold one segment file. Unreadable files (missing, bad
     * magic, truncated v2 header) are *counted* — the retention report
     * owes the operator that number — and reported back as the error.
     */
    Status addFile(const SegmentFile &file, bool strict = false);

    /** Fold an already-decoded segment. */
    void addSegment(const SegmentInfo &info, const SegmentFile &file);

    /** Scan @p dirOrFile and fold everything found. */
    Status addAll(const std::string &dirOrFile, bool strict = false);

    const SegmentDirStats &stats() const { return st; }

    /** Human-readable report (top-N rows per table). */
    std::string renderTable(std::size_t topN = 10) const;

    /**
     * The stable JSON document (schema btrace_stats_version 1,
     * validated by scripts/check_stats_schema.py).
     */
    std::string renderJson(std::size_t topN = 10) const;

  private:
    uint64_t bucketNs;
    SegmentDirStats st;
    std::vector<uint64_t> indices;  //!< rotation indices seen

    void recomputeGaps();
};

} // namespace btrace

#endif // BTRACE_TRACE_SEGMENT_STATS_H
