#include "trace/event.h"

#include <atomic>

namespace btrace {

namespace {

// Blocks are written by producers while consumers read them
// speculatively (§4.3). All word accesses go through relaxed atomics
// so the seqlock-style validation is race-free; torn *logical* content
// is caught by the post-copy metadata/header re-check.

void
storeWord(uint8_t *dst, uint64_t word)
{
    std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t *>(dst))
        .store(word, std::memory_order_relaxed);
}

uint64_t
loadWord(const uint8_t *src)
{
    return std::atomic_ref<const uint64_t>(
               *reinterpret_cast<const uint64_t *>(src))
        .load(std::memory_order_relaxed);
}

} // namespace

void
writeNormal(uint8_t *dst, uint64_t stamp, uint16_t core, uint32_t thread,
            uint16_t category, std::size_t payload_len)
{
    const auto size = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));
    storeWord(dst, Descriptor::pack(EntryType::Normal, category, size));
    storeWord(dst + 8, stamp);
    storeWord(dst + 16, Origin::pack(core, thread));
    uint8_t *payload = dst + EntryLayout::normalHeaderBytes;
    const std::size_t padded = size - EntryLayout::normalHeaderBytes;
    for (std::size_t w = 0; w < padded; w += 8) {
        uint64_t word = 0;
        for (std::size_t b = 0; b < 8; ++b) {
            const std::size_t i = w + b;
            const uint8_t byte =
                i < payload_len ? payloadByte(stamp, i) : 0;
            word |= uint64_t(byte) << (8 * b);
        }
        storeWord(payload + w, word);
    }
}

void
writeDummy(uint8_t *dst, std::size_t len)
{
    BTRACE_DASSERT(len >= EntryLayout::dummyMinBytes &&
                   len % EntryLayout::align == 0, "bad dummy length");
    storeWord(dst, Descriptor::pack(EntryType::Dummy, 0,
                                    static_cast<uint32_t>(len)));
}

void
writeBlockHeader(uint8_t *dst, uint64_t pos)
{
    storeWord(dst, Descriptor::pack(EntryType::BlockHeader, 0,
                                    EntryLayout::blockHeaderBytes));
    storeWord(dst + 8, pos);
}

void
writeSkipMarker(uint8_t *dst, uint64_t pos)
{
    storeWord(dst, Descriptor::pack(EntryType::Skip, 0,
                                    EntryLayout::skipBytes));
    storeWord(dst + 8, pos);
}

bool
EntryCursor::next(EntryView &out)
{
    if (cur >= end || damaged)
        return false;
    if (std::size_t(end - cur) < 8) {
        damaged = true;
        return false;
    }

    const uint64_t word0 = loadWord(cur);
    if (!Descriptor::validMagic(word0)) {
        damaged = true;
        return false;
    }
    const Descriptor desc = Descriptor::unpack(word0);
    if (desc.size < 8 || desc.size % EntryLayout::align != 0 ||
        desc.size > std::size_t(end - cur)) {
        damaged = true;
        return false;
    }

    out = EntryView{};
    out.type = desc.type;
    out.category = desc.category;
    out.size = desc.size;

    switch (desc.type) {
      case EntryType::Normal: {
        if (desc.size < EntryLayout::normalHeaderBytes) {
            damaged = true;
            return false;
        }
        out.stamp = loadWord(cur + 8);
        const Origin origin = Origin::unpack(loadWord(cur + 16));
        out.core = origin.core;
        out.thread = origin.thread;
        out.payloadOk = true;
        const uint8_t *payload = cur + EntryLayout::normalHeaderBytes;
        const std::size_t padded =
            desc.size - EntryLayout::normalHeaderBytes;
        // Verify up to the first 16 payload bytes; enough to catch torn
        // or stale data without a full re-hash on every dump.
        const std::size_t check = padded < 16 ? padded : 16;
        for (std::size_t i = 0; i < check; ++i) {
            if (payload[i] != payloadByte(out.stamp, i) && payload[i] != 0) {
                out.payloadOk = false;
                break;
            }
        }
        break;
      }
      case EntryType::Dummy:
        break;
      case EntryType::BlockHeader:
      case EntryType::Skip:
        if (desc.size < 16) {
            damaged = true;
            return false;
        }
        out.stamp = loadWord(cur + 8);
        break;
      default:
        damaged = true;
        return false;
    }

    cur += desc.size;
    return true;
}

} // namespace btrace
