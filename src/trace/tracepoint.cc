#include "trace/tracepoint.h"

#include "common/panic.h"

namespace btrace {

uint16_t
TracepointRegistry::registerTracepoint(const std::string &name, int level,
                                       const std::string &description)
{
    BTRACE_ASSERT(!name.empty(), "tracepoint name must be non-empty");
    BTRACE_ASSERT(level >= 1 && level <= 3, "tracepoint level is 1..3");
    std::scoped_lock guard(lock);
    const auto it = byName.find(name);
    if (it != byName.end())
        return it->second;
    BTRACE_ASSERT(points.size() <= 0xffff, "tracepoint id space full");
    const auto id = static_cast<uint16_t>(points.size());
    points.push_back(Tracepoint{id, name, level, description});
    byName.emplace(name, id);
    return id;
}

const Tracepoint &
TracepointRegistry::byId(uint16_t id) const
{
    std::scoped_lock guard(lock);
    return id < points.size() ? points[id] : points[0];
}

uint16_t
TracepointRegistry::idOf(const std::string &name) const
{
    std::scoped_lock guard(lock);
    const auto it = byName.find(name);
    return it == byName.end() ? 0 : it->second;
}

std::vector<Tracepoint>
TracepointRegistry::all() const
{
    std::scoped_lock guard(lock);
    return points;
}

std::vector<uint16_t>
TracepointRegistry::idsUpToLevel(int level) const
{
    std::scoped_lock guard(lock);
    std::vector<uint16_t> ids;
    for (const Tracepoint &tp : points) {
        if (tp.id != 0 && tp.level <= level)
            ids.push_back(tp.id);
    }
    return ids;
}

std::size_t
TracepointRegistry::size() const
{
    std::scoped_lock guard(lock);
    return points.size();
}

TracepointRegistry &
TracepointRegistry::global()
{
    static TracepointRegistry registry;
    return registry;
}

} // namespace btrace
