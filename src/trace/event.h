/**
 * @file
 * Wire format of trace entries, shared by BTrace and all baseline
 * tracers so dumps can be analyzed uniformly.
 *
 * Entries are 8-byte aligned and start with a 64-bit descriptor word:
 *
 *     [ magic:8 | type:8 | category:16 | size:32 ]
 *
 * where size is the total entry size in bytes (a multiple of 8,
 * including the descriptor). Four entry types exist:
 *
 *  - Normal:      descriptor, stamp word, origin word, payload bytes.
 *  - Dummy:       descriptor only; fills unusable space (§4.1).
 *  - BlockHeader: descriptor + global block position (§4.2, step 5).
 *  - Skip:        descriptor + skipped position; marks a sacrificed
 *                 block (§3.4).
 *
 * Normal payload bytes follow a deterministic pattern derived from the
 * stamp so that consumers can detect torn or corrupted entries.
 */

#ifndef BTRACE_TRACE_EVENT_H
#define BTRACE_TRACE_EVENT_H

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/cacheline.h"
#include "common/panic.h"

namespace btrace {

/** Entry type tags stored in the descriptor word. */
enum class EntryType : uint8_t
{
    Normal = 1,
    Dummy = 2,
    BlockHeader = 3,
    Skip = 4,
};

/** Entry geometry constants. */
struct EntryLayout
{
    static constexpr uint8_t magic = 0xB7;
    static constexpr std::size_t align = 8;
    static constexpr std::size_t normalHeaderBytes = 24;
    static constexpr std::size_t dummyMinBytes = 8;
    static constexpr std::size_t blockHeaderBytes = 16;
    static constexpr std::size_t skipBytes = 16;

    /** Total size of a normal entry for @p payload_len payload bytes. */
    static constexpr std::size_t
    normalSize(std::size_t payload_len)
    {
        return normalHeaderBytes + alignUp(payload_len, align);
    }
};

/** Pack / unpack the descriptor word. */
struct Descriptor
{
    EntryType type = EntryType::Dummy;
    uint16_t category = 0;
    uint32_t size = 0;

    static constexpr uint64_t
    pack(EntryType type, uint16_t category, uint32_t size)
    {
        return (uint64_t(EntryLayout::magic) << 56) |
               (uint64_t(static_cast<uint8_t>(type)) << 48) |
               (uint64_t(category) << 32) | size;
    }

    static constexpr Descriptor
    unpack(uint64_t word)
    {
        return {static_cast<EntryType>((word >> 48) & 0xff),
                uint16_t((word >> 32) & 0xffff),
                uint32_t(word & 0xffffffffu)};
    }

    static constexpr bool
    validMagic(uint64_t word)
    {
        return (word >> 56) == EntryLayout::magic;
    }
};

/** Origin word packing for normal entries. */
struct Origin
{
    uint16_t core = 0;
    uint32_t thread = 0;

    static constexpr uint64_t
    pack(uint16_t core, uint32_t thread)
    {
        return (uint64_t(core) << 32) | thread;
    }

    static constexpr Origin
    unpack(uint64_t word)
    {
        return {uint16_t((word >> 32) & 0xffff), uint32_t(word)};
    }
};

/** Deterministic payload byte pattern for entry @p stamp. */
inline uint8_t
payloadByte(uint64_t stamp, std::size_t index)
{
    return static_cast<uint8_t>(stamp * 31 + index * 7 + 0x5a);
}

/** Write a normal entry of normalSize(payload_len) bytes at @p dst. */
void writeNormal(uint8_t *dst, uint64_t stamp, uint16_t core,
                 uint32_t thread, uint16_t category,
                 std::size_t payload_len);

/** Write a dummy entry spanning exactly @p len bytes (len >= 8). */
void writeDummy(uint8_t *dst, std::size_t len);

/** Write a block-header entry carrying global position @p pos. */
void writeBlockHeader(uint8_t *dst, uint64_t pos);

/** Write a skip marker carrying the skipped position @p pos. */
void writeSkipMarker(uint8_t *dst, uint64_t pos);

/** Decoded view of one entry, produced by EntryCursor. */
struct EntryView
{
    EntryType type;
    uint16_t category;
    uint32_t size;          //!< total entry bytes
    uint64_t stamp;         //!< Normal: logic stamp; Header/Skip: position
    uint16_t core;
    uint32_t thread;
    bool payloadOk;         //!< Normal: payload pattern verified
};

/**
 * Sequential decoder over a byte range holding packed entries.
 * Returns false from next() at end of range or on malformed data
 * (malformed() tells which).
 */
class EntryCursor
{
  public:
    EntryCursor(const uint8_t *data, std::size_t len)
        : cur(data), end(data + len) {}

    /** Decode the next entry into @p out; false at end / on damage. */
    bool next(EntryView &out);

    /** True iff decoding stopped because of malformed bytes. */
    bool malformed() const { return damaged; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return std::size_t(end - cur); }

  private:
    const uint8_t *cur;
    const uint8_t *end;
    bool damaged = false;
};

} // namespace btrace

#endif // BTRACE_TRACE_EVENT_H
