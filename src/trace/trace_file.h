/**
 * @file
 * The on-disk trace file format ("BTBTRPv1") shared by TracePersister
 * and the btraced consumer daemon's rotating segments: an 8-byte magic
 * followed by fixed 24-byte records, one per DumpEntry. Writers append
 * with plain write(2); readers get every fully written record of a
 * file that was cut off mid-write (truncated tails surface as
 * Corruption, not a crash), which is what a crash-robust collector
 * needs.
 */

#ifndef BTRACE_TRACE_TRACE_FILE_H
#define BTRACE_TRACE_TRACE_FILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/tracer.h"

namespace btrace {

/** File magic of a persisted trace ("BTBTRPv1"). */
constexpr uint64_t kTraceFileMagic = 0x31765052'54425442ull;

/** Fixed 24-byte on-disk record. */
struct TraceDiskRecord
{
    uint64_t stamp;
    uint32_t size;
    uint16_t core;
    uint16_t category;
    uint32_t thread;
    uint32_t flags;  // bit 0: payloadOk

    static TraceDiskRecord
    fromEntry(const DumpEntry &e)
    {
        return TraceDiskRecord{e.stamp,    e.size,
                               e.core,     e.category,
                               e.thread,   e.payloadOk ? 1u : 0u};
    }

    DumpEntry
    toEntry() const
    {
        return DumpEntry{stamp, size,     core,
                         thread, category, (flags & 1u) != 0};
    }
};

static_assert(sizeof(TraceDiskRecord) == 24,
              "disk record must be packed");

/** Write the 8-byte magic to @p fd (fresh file / segment). */
Status writeTraceFileHeader(int fd);

/** Append @p entries as records to @p fd; short writes are IoError. */
Status appendTraceRecords(int fd, const std::vector<DumpEntry> &entries);

/**
 * Read a persisted trace file back. NotFound for a missing path,
 * Corruption for a bad magic or a torn (non-record-multiple) tail —
 * in the torn case every complete record before the tear was already
 * appended to the result by the time the error is built, so callers
 * that want best-effort recovery can keep value() semantics by
 * reading through readTraceFileLossy().
 */
Expected<std::vector<DumpEntry>> readTraceFile(const std::string &path);

/**
 * Best-effort variant: same decoding, but a torn tail is reported via
 * @p torn (when non-null) instead of failing the whole read. Missing
 * files and bad magic still fail.
 */
Expected<std::vector<DumpEntry>>
readTraceFileLossy(const std::string &path, bool *torn);

} // namespace btrace

#endif // BTRACE_TRACE_TRACE_FILE_H
