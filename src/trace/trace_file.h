/**
 * @file
 * The on-disk trace file format shared by TracePersister and the
 * btraced consumer daemon's rotating segments.
 *
 * Two versions share one record shape (fixed 24-byte records, one per
 * DumpEntry, appended with plain write(2)):
 *
 *  - "BTBTRPv1": an 8-byte magic followed directly by records. What
 *    every release up to PR 8 wrote; still fully readable.
 *  - "BTBTRPv2": the magic, then a fixed SegmentHeaderV2 carrying the
 *    segment's provenance (writer pid + attach generation), its drain
 *    wall-clock window, per-category record/byte tallies, and the loss
 *    accounting the drain observed (overwritten positions, skipped
 *    blocks) — then records. The writer rewrites the header in place
 *    (pwrite) after every drain, so even a SIGKILLed daemon leaves
 *    behind declared totals at most one drain stale; readers reconcile
 *    the declaration against the record scan (segment_stats.h).
 *
 * Readers get every fully written record of a file that was cut off
 * mid-write (truncated tails surface as Corruption in strict mode and
 * as a reported torn tail in lossy mode), which is what a crash-robust
 * collector needs.
 */

#ifndef BTRACE_TRACE_TRACE_FILE_H
#define BTRACE_TRACE_TRACE_FILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/tracer.h"

namespace btrace {

/** File magic of a v1 persisted trace ("BTBTRPv1"). */
constexpr uint64_t kTraceFileMagic = 0x31765052'54425442ull;

/** File magic of a v2 segment ("BTBTRPv2"). */
constexpr uint64_t kTraceFileMagicV2 = 0x32765052'54425442ull;

/** Fixed 24-byte on-disk record. */
struct TraceDiskRecord
{
    uint64_t stamp;
    uint32_t size;
    uint16_t core;
    uint16_t category;
    uint32_t thread;
    uint32_t flags;  // bit 0: payloadOk

    static TraceDiskRecord
    fromEntry(const DumpEntry &e)
    {
        return TraceDiskRecord{e.stamp,    e.size,
                               e.core,     e.category,
                               e.thread,   e.payloadOk ? 1u : 0u};
    }

    DumpEntry
    toEntry() const
    {
        return DumpEntry{stamp, size,     core,
                         thread, category, (flags & 1u) != 0};
    }
};

static_assert(sizeof(TraceDiskRecord) == 24,
              "disk record must be packed");

/** Category slots tallied per segment; higher ids pool into "other". */
constexpr std::size_t kSegmentCategorySlots = 16;

/**
 * Stamps at or above this value are treated as CLOCK_REALTIME
 * nanoseconds (~2017-07 onward) by the freshness/lag machinery;
 * smaller stamps are logical sequence numbers and carry no wall-clock
 * meaning.
 */
constexpr uint64_t kWallClockStampFloorNs =
    1'500'000'000ull * 1'000'000'000ull;

/** CLOCK_REALTIME now, in nanoseconds. */
uint64_t wallClockNs();

/**
 * The fixed per-segment provenance block of a v2 segment, stored
 * immediately after the magic and rewritten in place by the writer
 * after every drain. All counters describe *this* segment only; the
 * loss fields are the drain-side accounting (Dump bookkeeping) for
 * the drains that landed here.
 */
struct SegmentHeaderV2
{
    /** On-disk size of this header; readers skip exactly this many. */
    uint32_t headerBytes = 0;
    uint32_t flags = 0;
    uint64_t writerPid = 0;         //!< pid of the draining process
    uint64_t attachGeneration = 0;  //!< writer's arena attach draw
    uint64_t firstDrainUnixNs = 0;  //!< wall clock of the first drain
    uint64_t lastDrainUnixNs = 0;   //!< wall clock of the latest drain
    uint64_t recordCount = 0;
    uint64_t payloadBytes = 0;      //!< sum of DumpEntry::size
    uint64_t overwrittenPositions = 0;  //!< data loss seen by the cursor
    uint64_t skippedBlocks = 0;         //!< blocks lost to SKP markers
    uint64_t abandonedBlocks = 0;
    uint64_t minStamp = UINT64_MAX;  //!< UINT64_MAX while empty
    uint64_t maxStamp = 0;
    uint64_t categoryRecords[kSegmentCategorySlots] = {};
    uint64_t categoryBytes[kSegmentCategorySlots] = {};
    uint64_t otherCategoryRecords = 0;  //!< categories >= the slot count
    uint64_t otherCategoryBytes = 0;
    uint64_t reserved[6] = {};

    /** The writer finalized this segment (rotation or clean stop). */
    static constexpr uint32_t kCleanClose = 1u << 0;

    /** Fold one drained entry into the tallies. */
    void
    noteEntry(const DumpEntry &e)
    {
        ++recordCount;
        payloadBytes += e.size;
        if (e.stamp < minStamp)
            minStamp = e.stamp;
        if (e.stamp > maxStamp)
            maxStamp = e.stamp;
        if (e.category < kSegmentCategorySlots) {
            ++categoryRecords[e.category];
            categoryBytes[e.category] += e.size;
        } else {
            ++otherCategoryRecords;
            otherCategoryBytes += e.size;
        }
    }
};

static_assert(sizeof(SegmentHeaderV2) == 416,
              "segment header layout is part of the on-disk format");

/** Write the v1 8-byte magic to @p fd (fresh file / segment). */
Status writeTraceFileHeader(int fd);

/**
 * Start a v2 segment: write the magic and @p hdr at offset 0. The
 * header's headerBytes field is stamped by this call.
 */
Status writeSegmentHeaderV2(int fd, SegmentHeaderV2 &hdr);

/**
 * Rewrite the header of a v2 segment in place (pwrite at the fixed
 * offset past the magic); record appends via write(2) are unaffected.
 */
Status updateSegmentHeaderV2(int fd, const SegmentHeaderV2 &hdr);

/** Append @p entries as records to @p fd; short writes are IoError. */
Status appendTraceRecords(int fd, const std::vector<DumpEntry> &entries);

/** One decoded segment file: declared header (v2) plus the scan. */
struct SegmentInfo
{
    uint32_t version = 1;      //!< 1 or 2
    SegmentHeaderV2 header{};  //!< all-zero (minStamp aside) for v1
    std::vector<DumpEntry> entries;
    bool torn = false;         //!< file ended mid-record
    uint64_t tornTailBytes = 0;  //!< bytes of the torn partial record
};

/**
 * Decode a segment of either version. NotFound for a missing path;
 * Corruption for a bad magic or a v2 file cut off inside its header.
 * A torn record tail is Corruption when @p strict, otherwise reported
 * through SegmentInfo::torn/tornTailBytes with every complete record
 * decoded.
 */
Expected<SegmentInfo> readSegment(const std::string &path,
                                  bool strict = false);

/**
 * Read a persisted trace file back (either version; v2 headers are
 * skipped). NotFound for a missing path, Corruption for a bad magic
 * or a torn (non-record-multiple) tail.
 */
Expected<std::vector<DumpEntry>> readTraceFile(const std::string &path);

/**
 * Best-effort variant: same decoding, but a torn tail is reported via
 * @p torn (when non-null) instead of failing the whole read. Missing
 * files and bad magic still fail.
 */
Expected<std::vector<DumpEntry>>
readTraceFileLossy(const std::string &path, bool *torn);

} // namespace btrace

#endif // BTRACE_TRACE_TRACE_FILE_H
