/**
 * @file
 * Tracer-level self-observation hook (the observability plane,
 * DESIGN.md §8).
 *
 * A TracerObserver attached to any Tracer — BTrace or a baseline —
 * collects sampled write-path latency into lock-free wide-range
 * histograms, so dashboards compare designs like-for-like through one
 * hook instead of per-design instrumentation. Sampling is 1-in-K per
 * thread (a thread-local tick, no shared state on the skip path), so
 * the overhead on the hot path is one TLS increment and a predicted
 * branch for K-1 out of K events, and one relaxed sharded fetch_add
 * for the Kth. The observer never touches the tracer's own shared
 * words: attaching it must leave sharedRmws-per-event unchanged
 * (asserted by tests/obs).
 *
 * The samples() counter is the obs-overhead meter: it counts exactly
 * the events that paid for a histogram update, so the observability
 * layer's own cost is itself observable.
 */

#ifndef BTRACE_TRACE_OBSERVER_H
#define BTRACE_TRACE_OBSERVER_H

#include <atomic>
#include <cstdint>

#include "common/latency_histogram.h"

namespace btrace {

/** Sampled latency collector attachable to a Tracer. */
class TracerObserver
{
  public:
    /**
     * @p sample_every one event in K is measured (1 = every event);
     * @p shards forwarded to the histograms (0 = default).
     */
    explicit TracerObserver(uint32_t sample_every = 64,
                            unsigned shards = 0)
        : recordNs(shards), leaseCloseNs(shards),
          everyK(sample_every ? sample_every : 1)
    {
    }

    /** Model-ns latency of sampled successful record() calls. */
    ConcurrentHistogram recordNs;
    /** Model-ns cost of sampled lease close() calls. */
    ConcurrentHistogram leaseCloseNs;

    uint32_t sampleEvery() const { return everyK; }

    /** Events that actually paid for a histogram update (obs cost). */
    uint64_t samples() const
    {
        return nSamples.load(std::memory_order_relaxed);
    }

    /**
     * Advance this thread's sampling tick; true on the 1-in-K hit.
     * The tick is per thread and shared across observers, which keeps
     * the skip path free of any per-observer state.
     */
    bool
    shouldSample()
    {
        thread_local uint64_t tick = 0;
        return (tick++ % everyK) == 0;
    }

    /** Record a sampled write latency (caller already won the 1-in-K). */
    void
    recordSample(double ns)
    {
        recordNs.add(clampNs(ns));
        nSamples.fetch_add(1, std::memory_order_relaxed);
    }

    /** Record a sampled lease-close cost. */
    void
    leaseCloseSample(double ns)
    {
        leaseCloseNs.add(clampNs(ns));
        nSamples.fetch_add(1, std::memory_order_relaxed);
    }

    /** Combined 1-in-K gate + record-path sample. */
    void
    maybeRecordSample(double ns)
    {
        if (shouldSample())
            recordSample(ns);
    }

    /** Combined 1-in-K gate + lease-close sample. */
    void
    maybeLeaseCloseSample(double ns)
    {
        if (shouldSample())
            leaseCloseSample(ns);
    }

  private:
    static uint64_t
    clampNs(double ns)
    {
        return ns <= 0.0 ? 0 : static_cast<uint64_t>(ns);
    }

    uint32_t everyK;
    std::atomic<uint64_t> nSamples{0};
};

} // namespace btrace

#endif // BTRACE_TRACE_OBSERVER_H
